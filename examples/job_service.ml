(* The job service as a library: two tenants share one simulated QPU
   through the submit/await API — weighted fair scheduling, cross-request
   shot batching and the result cache, all in-process (docs/service.md).

     dune exec examples/job_service.exe *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner
module Service = Qca_service.Service
module Engine = Qca_qx.Engine

let measured n base =
  Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

let () =
  (* One canonical run request: a Job_spec names the circuit and every
     execution parameter. The same record drives Runner.run, qxc run and
     the service. *)
  let ghz_spec seed =
    { (Job_spec.of_circuit (measured 4 (Library.ghz 4))) with
      Job_spec.shots = 2048; seed = Some seed }
  in

  (* Alice pays for twice the throughput of Bob. *)
  let config =
    { Service.default_config with
      Service.slice_shots = 256;
      quotas = [ ("alice", { Service.default_quota with Service.weight = 2.0 }) ] }
  in
  let svc = Service.create ~config () in

  let submit tenant spec =
    match Service.submit svc ~tenant spec with
    | Ok h -> h
    | Error e -> failwith (Qca_util.Error.to_string e)
  in
  let a1 = submit "alice" (ghz_spec 1) in
  let a2 = submit "alice" (ghz_spec 2) in
  let b1 = submit "bob" (ghz_spec 3) in

  (* await drives the cooperative scheduler until the job finishes; the
     other tenants' jobs make proportional progress meanwhile. *)
  let show name h =
    match Service.await svc h with
    | Error e -> Printf.printf "%-8s failed: %s\n" name (Qca_util.Error.to_string e)
    | Ok o ->
        Printf.printf "%-8s" name;
        List.iter (fun (k, c) -> Printf.printf " %s:%d" k c) o.Runner.histogram;
        let cache = o.Runner.report.Engine.cache in
        if cache.Engine.cache_hits > 0 then print_string "  (result cache)"
        else if cache.Engine.cache_shared > 0 then print_string "  (shared analysis)";
        print_newline ()
  in
  print_endline "three jobs, two tenants, one QPU:";
  show "alice/1" a1;
  show "alice/2" a2;
  show "bob/1" b1;

  (* Resubmitting alice's exact job is free: the result cache is keyed on
     (circuit digest, route, seed, shots, ...). *)
  show "alice/1'" (submit "alice" (ghz_spec 1));

  (* The schedule itself: one (tenant, job) pair per 256-shot slice.
     Weight 2 buys alice two slices for each of bob's. *)
  print_endline "\nslice schedule (tenant/job):";
  List.iter
    (fun (tenant, id) -> Printf.printf " %s/%d" tenant id)
    (Service.execution_log svc);
  print_newline ();

  print_endline "\nservice counters:";
  print_endline (Service.stats_to_json svc)
