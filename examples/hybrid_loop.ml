(* Figure 8's hybrid quantum-classical execution model, made concrete: the
   classical Host CPU owns the optimisation loop and repeatedly offloads
   short QAOA circuits to the quantum accelerator, which returns measured
   expectations; the classical logic suggests the next parameters.

     dune exec examples/hybrid_loop.exe *)

module Ising = Qca_anneal.Ising
module Problems = Qca_anneal.Problems
module Qubo = Qca_anneal.Qubo
module Qaoa = Qca_qaoa.Qaoa
module Accelerator = Qca.Accelerator
module Host = Qca.Host
module Optimize = Qca_util.Optimize
module Rng = Qca_util.Rng

let () =
  (* The problem: max-cut on a small ring-with-chords graph. *)
  let rng = Rng.create 88 in
  let graph = Problems.random_max_cut_instance (Rng.create 31) ~vertices:8 ~edge_probability:0.45 in
  let qubo = Problems.max_cut graph in
  let model, offset = Ising.of_qubo qubo in
  let _, exact = Qubo.brute_force qubo in
  ignore offset;
  Printf.printf "max-cut instance: 8 vertices, %d edges; exact optimum cut = %.0f\n"
    (List.length (Qca_util.Graph.edges graph))
    (-.exact);

  (* The quantum accelerator: its payload evaluates one QAOA circuit. *)
  let evaluations = ref 0 in
  let energies = lazy (Array.init (1 lsl model.Ising.n) (Qaoa.spin_energy_of_basis model)) in
  ignore (Lazy.force energies);
  let quantum_payload arg =
    incr evaluations;
    (* arg encodes "gamma,beta"; returns the measured <H>. *)
    match String.split_on_char ',' arg with
    | [ g; b ] ->
        let params =
          { Qaoa.gammas = [| float_of_string g |]; betas = [| float_of_string b |] }
        in
        Printf.sprintf "%.6f" (Qaoa.expectation model params)
    | _ -> invalid_arg "payload: expected gamma,beta"
  in
  let qpu =
    Accelerator.make ~payload:quantum_payload ~name:"qpu0" ~kind:Accelerator.Quantum_gate
      ~speed_factor:1000.0 ~offload_overhead:1.0 ()
  in

  (* The classical optimiser in the Host CPU: every objective evaluation is
     an explicit offload through the heterogeneous runtime. *)
  let objective v =
    let arg = Printf.sprintf "%f,%f" v.(0) v.(1) in
    let exec = Host.run ~accelerators:[ qpu ] [ Host.Offload ("qpu0", "qaoa", 5.0, arg) ] in
    match exec.Host.outputs with
    | [ (_, output) ] -> float_of_string output
    | _ -> assert false
  in
  let best, value =
    Optimize.nelder_mead ~max_iter:120 objective [| Rng.float rng 1.0; Rng.float rng 1.0 |]
  in
  Printf.printf "hybrid loop converged: gamma=%.4f beta=%.4f, <H> = %.4f after %d offloads\n"
    best.(0) best.(1) value !evaluations;

  (* Sample the optimised circuit and read out the cut. *)
  let params = { Qaoa.gammas = [| best.(0) |]; betas = [| best.(1) |] } in
  let state = Qaoa.evolve model params in
  let best_bits = ref [||] and best_cut = ref neg_infinity in
  let sampler = Qca_qx.State.sampler state in
  for _ = 1 to 512 do
    let basis = Qca_qx.State.sampler_draw sampler rng in
    let bits = Array.init model.Ising.n (fun q -> (basis lsr q) land 1) in
    let cut = Problems.cut_value graph bits in
    if cut > !best_cut then begin
      best_cut := cut;
      best_bits := bits
    end
  done;
  Printf.printf "best sampled cut: %.0f (exact maximum %.0f)\n" !best_cut (-.exact);
  Printf.printf "partition: %s\n"
    (String.concat ""
       (List.map string_of_int (Array.to_list !best_bits)))
