(* qxc: compile and execute cQASM programs on the QX simulator through the
   OpenQL-style compiler and, optionally, the micro-architecture model.

   Every execution subcommand builds one Qca.Job_spec.t and dispatches it
   through Qca.Runner — the same path the qxd job service uses — so `run`,
   `exec` and `submit` share seed semantics, fault handling and the
   metrics schema. The flag vocabulary is likewise shared: the [common]
   record below is the one parser for --platform/--mode/--shots/--seed/
   --noise/--json/--metrics/--trace/--fault-* across check, run, compile,
   exec and submit. *)

module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Engine = Qca_qx.Engine
module Compiler = Qca_compiler.Compiler
module Mapping = Qca_compiler.Mapping
module Eqasm = Qca_compiler.Eqasm
module Controller = Qca_microarch.Controller
module Rng = Qca_util.Rng
module Error = Qca_util.Error
module Diagnostic = Qca_analysis.Diagnostic
module Verify = Qca_analysis.Verify
module Estimate = Qca_analysis.Estimate
module Error_budget = Qca.Error_budget
module Platform = Qca_compiler.Platform
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner
module Spool = Qca_service.Spool

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let load_program path =
  try Ok (Cqasm.parse (read_file path)) with
  | Qca_util.Error.Error { kind = Qca_util.Error.Syntax { line; reason; _ }; _ } ->
      Error (Printf.sprintf "%s:%d: parse error: %s" path line reason)
  | Sys_error msg -> Error msg
  | Invalid_argument msg -> Error (Printf.sprintf "%s: %s" path msg)

let load_circuit path = Result.map Cqasm.flatten (load_program path)

(* --- the shared flag spec (one parser for every subcommand) --- *)

type common = {
  shots : int;
  seed : int;
  noise : float option;
  platform : string option;
  mode : string;
  route : string;
  json : bool;
  metrics : string option;
  trace : string option;
  fault_rate : float option;
  fault_seed : int;
  max_retries : int;
}

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"cQASM source file.")

let shots_arg =
  Arg.(value & opt int 1024 & info [ "shots" ] ~docv:"N" ~doc:"Number of shots.")

let seed_arg =
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let noise_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "noise" ] ~docv:"P" ~doc:"Depolarising error rate for realistic qubits.")

let platform_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "platform" ] ~docv:"NAME"
        ~doc:"Target platform: superconducting, semiconducting or perfect.")

let mode_arg =
  Arg.(
    value
    & opt string "realistic"
    & info [ "mode" ] ~docv:"MODE" ~doc:"Qubit model: perfect, realistic or real.")

let route_arg =
  Arg.(
    value
    & opt string "sabre"
    & info [ "route" ] ~docv:"STRATEGY"
        ~doc:
          "Routing strategy for compiled (--platform) paths: sabre (default, \
           lookahead router), greedy (the historical baseline) or \
           lookahead[:K] (score the next K two-qubit gates). See \
           docs/compiler.md.")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the per-run metrics report as JSON to $(docv) ('-' for stdout).")

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Trace the run through every stack layer (compiler passes, engine \
           phases, micro-architecture). With no $(docv) (or '-') print a \
           span-tree summary after the results; with $(docv) write Chrome \
           trace_event JSON loadable in chrome://tracing or Perfetto. See \
           docs/observability.md.")

let fault_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Inject controller/backend faults with per-site probability $(docv) \
           (see docs/resilience.md). Off when absent.")

let fault_seed_arg =
  Arg.(
    value
    & opt int Qca_util.Fault.default_seed
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for the fault injector's own RNG stream.")

let max_retries_arg =
  Arg.(
    value
    & opt int Qca_util.Resilience.default_policy.Qca_util.Resilience.max_retries
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Retries per shot before it counts as faulted.")

let common_term =
  let make shots seed noise platform mode route json metrics trace fault_rate
      fault_seed max_retries =
    {
      shots;
      seed;
      noise;
      platform;
      mode;
      route;
      json;
      metrics;
      trace;
      fault_rate;
      fault_seed;
      max_retries;
    }
  in
  Term.(
    const make $ shots_arg $ seed_arg $ noise_arg $ platform_arg $ mode_arg
    $ route_arg $ json_flag $ metrics_arg $ trace_arg $ fault_rate_arg
    $ fault_seed_arg $ max_retries_arg)

(* --route parsed once per command; a bad strategy is a usage error. *)
let router_of_common common = Mapping.strategy_of_string common.route

(* Build the canonical run-request from the shared flags. *)
let spec_of_common common ~label ~route ~plan ~fusion =
  let base = Job_spec.make ~label (Job_spec.Circuit (Circuit.create 1)) in
  {
    base with
    Job_spec.route;
    shots = common.shots;
    seed = Some common.seed;
    noise = common.noise;
    plan;
    fusion;
    fault_rate = common.fault_rate;
    fault_seed = common.fault_seed;
    max_retries = common.max_retries;
  }

let write_json_line dest line =
  match dest with
  | None -> 0
  | Some "-" ->
      print_endline line;
      0
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc;
        0
      with Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        1)

let write_metrics dest report =
  write_json_line dest (Engine.report_to_json report)

(* --metrics with the static estimate of the same spec spliced in, so the
   observed counters and the predicted costs land in one document and can
   be diffed directly (docs/estimate.md). *)
let write_metrics_with_estimate dest spec report =
  match dest with
  | None -> 0
  | Some _ ->
      let base = Engine.report_to_json report in
      let line =
        match Job_spec.estimate spec with
        | Error _ -> base
        | Ok est ->
            String.sub base 0 (String.length base - 1)
            ^ ",\"estimate\":" ^ Estimate.to_json est ^ "}"
      in
      write_json_line dest line

(* Run [body] with a trace collector installed when --trace was given, then
   export: bare --trace prints the span tree, --trace=FILE writes Chrome
   JSON. The body's exit code wins over the export's. *)
let with_trace dest body =
  match dest with
  | None -> body ()
  | Some target ->
      let collector = Qca_util.Trace.make_collector () in
      let code = Qca_util.Trace.collecting collector body in
      let export_code =
        match target with
        | "-" ->
            print_string (Qca_util.Trace.to_tree_string collector);
            0
        | path -> (
            try
              let oc = open_out path in
              output_string oc (Qca_util.Trace.to_chrome_json collector);
              close_out oc;
              0
            with Sys_error msg ->
              Printf.eprintf "cannot write trace: %s\n" msg;
              1)
      in
      if code <> 0 then code else export_code

(* --- static checker (docs/analysis.md) --- *)

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static checker (docs/analysis.md) on the source before \
           proceeding. Diagnostics go to stderr; error-severity findings \
           abort with exit 2.")

let lint_json_flag =
  Arg.(
    value & flag
    & info [ "lint-json" ]
        ~doc:"Like $(b,--lint) but emit the diagnostics as a JSON array.")

(* Returns false when error-severity findings should abort the command. *)
let run_lint ~lint ~lint_json ?platform program =
  if not (lint || lint_json) then true
  else begin
    let diags = Verify.source_check ?platform program in
    if lint_json then prerr_endline (Diagnostic.json_of_list diags)
    else prerr_string (Diagnostic.render diags);
    Diagnostic.exit_code diags < 2
  end

let check_shots shots =
  if shots <= 0 then (
    Printf.eprintf "--shots must be positive (got %d)\n" shots;
    false)
  else true

let print_resilience gate report =
  if gate then begin
    let r = report.Engine.resilience in
    let fires =
      List.fold_left (fun acc (_, c) -> acc + c) 0 r.Engine.faults_injected
    in
    Printf.printf
      "# resilience: %d fault fires, %d retries, %d faulted shots, backoff %d ns%s\n"
      fires r.Engine.retries r.Engine.faulted_shots r.Engine.backoff_ns
      (match r.Engine.degraded with
      | None -> ""
      | Some msg -> Printf.sprintf " (degraded: %s)" msg)
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let histogram_json hist =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) hist)
  ^ "}"

(* --- check --- *)

let check_command common file no_verify =
  let json = common.json in
  let finish source report =
    let passes = match report with None -> [] | Some r -> r.Verify.passes in
    let all = source @ (match report with None -> [] | Some r -> r.Verify.final) in
    if json then begin
      let pass_json (p : Verify.pass_report) =
        Printf.sprintf "{\"pass\":\"%s\",\"introduced\":[%s],\"diagnostics\":%s}"
          (Diagnostic.json_escape p.Verify.pass_name)
          (String.concat ","
             (List.map
                (fun c -> "\"" ^ Diagnostic.json_escape c ^ "\"")
                p.Verify.introduced))
          (Diagnostic.json_of_list p.Verify.diagnostics)
      in
      Printf.printf
        "{\"file\":\"%s\",\"diagnostics\":%s,\"passes\":[%s],\"summary\":\"%s\"}\n"
        (Diagnostic.json_escape file)
        (Diagnostic.json_of_list all)
        (String.concat "," (List.map pass_json passes))
        (Diagnostic.json_escape (Diagnostic.summary all))
    end
    else begin
      List.iter (fun d -> print_endline (Diagnostic.to_string d)) source;
      (match report with None -> () | Some r -> print_string (Verify.render r));
      Printf.printf "%s: %s\n" file (Diagnostic.summary all)
    end;
    Diagnostic.exit_code all
  in
  (* Bad flag values go through [finish] like any other finding (code X02)
     so --json always emits exactly one JSON document, on every exit
     path. *)
  let flag_error msg =
    finish
      [ Diagnostic.make Diagnostic.Error ~code:"X02" ~check:"invalid-flag" ~site:file msg ]
      None
  in
  match load_program file with
  | Error msg ->
      finish
        [ Diagnostic.make Diagnostic.Error ~code:"X01" ~check:"parse-error" ~site:file msg ]
        None
  | Ok program -> (
      let resources ?platform () =
        Estimate.check ?platform (Estimate.of_program ~shots:common.shots program)
      in
      match common.platform with
      | None -> finish (Verify.source_check program @ resources ()) None
      | Some pname -> (
          let circuit = Cqasm.flatten program in
          match
            ( Spool.platform_of_string pname (Circuit.qubit_count circuit),
              Spool.mode_of_string common.mode )
          with
          | Error msg, _ | _, Error msg -> flag_error msg
          | Ok platform, Ok mode -> (
              match router_of_common common with
              | Error msg -> flag_error msg
              | Ok strategy ->
                  let source =
                    Verify.source_check ~platform program @ resources ~platform ()
                  in
                  (* Source errors (e.g. out-of-range operands) would make
                     the compiler itself raise; report them without
                     verifying. *)
                  if no_verify || Diagnostic.exit_code source = 2 then
                    finish source None
                  else
                    let _out, report =
                      Verify.compile ~strategy platform mode circuit
                    in
                    finish source (Some report))))

let no_verify_flag =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"With $(b,--platform): skip the per-pass verifier, source checks only.")

let check_term = Term.(const check_command $ common_term $ file_arg $ no_verify_flag)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a cQASM program (exit 0 clean / 1 warnings / 2 errors). \
          See docs/analysis.md for the check catalogue.")
    check_term

(* --- run --- *)

let plan_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", None);
             ("sampled", Some Engine.Sampled);
             ("trajectory", Some Engine.Trajectory);
             ("clifford", Some Engine.Clifford);
           ])
        None
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Simulation plan: $(b,auto) (the planner picks the cheapest sound \
           backend; default), $(b,sampled) (single state-vector pass), \
           $(b,trajectory) (per-shot state-vector runs) or $(b,clifford) \
           (stabilizer tableau). Forcing a plan the circuit cannot soundly \
           use fails with a structured error.")

(* --plan wins over the historical --trajectory shorthand when both are
   given (they can only conflict if --plan is sampled/clifford, which the
   structured engine errors already report per-circuit). *)
let resolve_plan plan trajectory =
  match plan with
  | Some _ -> plan
  | None -> if trajectory then Some Engine.Trajectory else None

(* --- estimate (static resource estimator, docs/estimate.md) --- *)

let target_error_arg =
  Arg.(
    value
    & opt float 1e-9
    & info [ "target-error" ] ~docv:"P"
        ~doc:
          "Total logical failure probability the fault-tolerant projection \
           must meet (drives the surface-code distance search).")

let physical_error_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "physical-error" ] ~docv:"P"
        ~doc:
          "Physical error rate assumed by the fault-tolerant projection. \
           Defaults to the platform's worst gate error (with --platform) or \
           1e-3.")

let estimate_command common file plan target_error physical_error =
  let finish est_ft diags =
    if common.json then begin
      let est_json, ft_json =
        match est_ft with
        | None -> ("null", "null")
        | Some (est, ft) -> (Estimate.to_json est, Error_budget.ft_to_json ft)
      in
      Printf.printf
        "{\"file\":\"%s\",\"estimate\":%s,\"ft\":%s,\"diagnostics\":%s,\"summary\":\"%s\"}\n"
        (Diagnostic.json_escape file) est_json ft_json
        (Diagnostic.json_of_list diags)
        (Diagnostic.json_escape (Diagnostic.summary diags))
    end
    else begin
      (match est_ft with
      | None -> ()
      | Some (est, ft) ->
          print_string (Estimate.render est);
          Printf.printf "fault-tolerant:    %s\n" (Error_budget.ft_to_string ft));
      List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
      Printf.printf "%s: %s\n" file (Diagnostic.summary diags)
    end;
    Diagnostic.exit_code diags
  in
  let flag_error msg =
    finish None
      [ Diagnostic.make Diagnostic.Error ~code:"X02" ~check:"invalid-flag" ~site:file msg ]
  in
  if common.shots <= 0 then
    flag_error (Printf.sprintf "--shots must be positive (got %d)" common.shots)
  else
    match load_program file with
    | Error msg ->
        finish None
          [ Diagnostic.make Diagnostic.Error ~code:"X01" ~check:"parse-error" ~site:file msg ]
    | Ok program -> (
        let platform =
          match common.platform with
          | None -> Ok None
          | Some pname ->
              Result.map Option.some
                (Spool.platform_of_string pname program.Cqasm.qubit_count)
        in
        match platform with
        | Error msg -> flag_error msg
        | Ok platform ->
            (* The plan prediction follows Job_spec.estimate's notion of
               "noisy": --noise forces trajectories on the direct route,
               and a compiled target's own model does the same. *)
            let noisy =
              common.noise <> None
              || (match platform with
                 | Some p -> not (Qca_qx.Noise.is_ideal p.Platform.noise)
                 | None -> false)
            in
            let est =
              Estimate.of_program ~shots:common.shots ~noisy ?plan program
            in
            let physical_error =
              match physical_error with
              | Some p -> p
              | None -> (
                  match platform with
                  | Some p ->
                      let n = p.Platform.noise in
                      let worst =
                        Float.max n.Qca_qx.Noise.single_qubit_error
                          n.Qca_qx.Noise.two_qubit_error
                      in
                      if worst > 0. then worst else 1e-3
                  | None -> 1e-3)
            in
            let ft =
              Error_budget.fault_tolerant ~target:target_error ~physical_error
                ~logical_qubits:(max 1 est.Estimate.qubits_used)
                ~depth:est.Estimate.depth ()
            in
            finish (Some (est, ft)) (Estimate.check ?platform est))

let estimate_term =
  Term.(
    const estimate_command $ common_term $ file_arg $ plan_arg
    $ target_error_arg $ physical_error_arg)

let estimate_cmd =
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Statically estimate a program's resources without running it: gate \
          classes, logical depth, predicted simulation plan and cost, plus a \
          fault-tolerant (surface-code) projection. Repeated subcircuits are \
          costed symbolically, so a million-round QEC program estimates in \
          milliseconds. Exit follows the diagnostic ladder of $(b,check) \
          (codes R01-R04, docs/estimate.md).")
    estimate_term

let run_command common file plan trajectory no_fusion lint lint_json =
  if not (check_shots common.shots) then 1
  else
    match load_program file with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok program when not (run_lint ~lint ~lint_json program) -> 2
    | Ok program -> (
        let circuit = Cqasm.flatten program in
        match
          Result.bind (router_of_common common) (fun router ->
              Spool.route_of_names ~router ~platform:common.platform
                ~mode:common.mode ~ladder:true
                ~qubits:(Circuit.qubit_count circuit) ())
        with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok route ->
            with_trace common.trace (fun () ->
                let spec =
                  {
                    (spec_of_common common ~label:(Circuit.name circuit) ~route
                       ~plan:(resolve_plan plan trajectory)
                       ~fusion:(not no_fusion))
                    with
                    Job_spec.payload = Job_spec.Circuit circuit;
                  }
                in
                match Runner.run spec with
                | Error e ->
                    Printf.eprintf "qxc: error: %s\n" (Error.to_string e);
                    2
                | Ok o ->
                    let report = o.Runner.report in
                    if common.json then
                      Printf.printf "{\"histogram\":%s,\"report\":%s}\n"
                        (histogram_json o.Runner.histogram)
                        (Engine.report_to_json report)
                    else begin
                      Printf.printf "# %d qubits, %d instructions, %d shots\n"
                        (Circuit.qubit_count circuit) (Circuit.length circuit)
                        common.shots;
                      Printf.printf "# plan: %s (%s)\n"
                        (Engine.plan_to_string report.Engine.plan)
                        report.Engine.plan_reason;
                      print_resilience (common.fault_rate <> None) report;
                      List.iter
                        (fun (key, count) ->
                          Printf.printf "%s  %6d  %.4f\n" key count
                            (float_of_int count /. float_of_int common.shots))
                        o.Runner.histogram
                    end;
                    write_metrics_with_estimate common.metrics spec report))

let trajectory_flag =
  Arg.(
    value & flag
    & info [ "trajectory" ]
        ~doc:
          "Force the per-shot trajectory plan even when single-pass sampling \
           applies (shorthand for $(b,--plan)=$(b,trajectory)).")

let no_fusion_flag =
  Arg.(
    value & flag
    & info [ "no-fusion" ]
        ~doc:
          "Disable the gate-fusion pre-pass (results are bit-identical either way; \
           this only affects speed and the fusion metrics).")

let run_term =
  Term.(
    const run_command $ common_term $ file_arg $ plan_arg $ trajectory_flag
    $ no_fusion_flag $ lint_flag $ lint_json_flag)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a cQASM program on the QX simulator. With $(b,--platform), \
          compile first and execute through the full stack (with the \
          degradation ladder).")
    run_term

(* --- compile --- *)

(* Per-pass gate/depth deltas for --metrics: each row's counts describe the
   circuit after that pass, so the delta is simply row minus previous row
   (the Full optimizer's "pre-opt/<pass>"/"optimize/<pass>" rows land
   between their neighbours in pipeline order). *)
let compile_metrics_json (out : Compiler.output) =
  let rows_rev, _ =
    List.fold_left
      (fun (acc, prev) (p : Compiler.pass_stat) ->
        let d_gates, d_depth =
          match prev with
          | None -> (0, 0)
          | Some (g, d) -> (p.Compiler.gates - g, p.Compiler.depth - d)
        in
        ( Printf.sprintf
            "{\"pass\":\"%s\",\"gates\":%d,\"two_qubit\":%d,\"depth\":%d,\"d_gates\":%d,\"d_depth\":%d,\"note\":\"%s\"}"
            (json_escape p.Compiler.pass_name)
            p.Compiler.gates p.Compiler.two_qubit_gates p.Compiler.depth
            d_gates d_depth
            (json_escape p.Compiler.note)
          :: acc,
          Some (p.Compiler.gates, p.Compiler.depth) ))
      ([], None) out.Compiler.passes
  in
  let totals =
    match (out.Compiler.passes, List.rev out.Compiler.passes) with
    | first :: _, last :: _ ->
        Printf.sprintf
          "{\"gates_in\":%d,\"gates_out\":%d,\"d_gates\":%d,\"depth_in\":%d,\"depth_out\":%d,\"d_depth\":%d}"
          first.Compiler.gates last.Compiler.gates
          (last.Compiler.gates - first.Compiler.gates)
          first.Compiler.depth last.Compiler.depth
          (last.Compiler.depth - first.Compiler.depth)
    | _ -> "null"
  in
  Printf.sprintf "{\"platform\":\"%s\",\"mode\":\"%s\",\"passes\":[%s],\"total\":%s}"
    (json_escape out.Compiler.platform.Qca_compiler.Platform.name)
    (Compiler.mode_to_string out.Compiler.mode)
    (String.concat "," (List.rev rows_rev))
    totals

let compile_command common file emit_eqasm lint lint_json =
  match load_program file with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok program -> (
      let circuit = Cqasm.flatten program in
      let platform_name = Option.value ~default:"superconducting" common.platform in
      match
        ( Spool.platform_of_string platform_name (Circuit.qubit_count circuit),
          Spool.mode_of_string common.mode,
          router_of_common common )
      with
      | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
          prerr_endline msg;
          1
      | Ok platform, Ok mode, Ok strategy ->
          if not (run_lint ~lint ~lint_json ~platform program) then 2
          else begin
            (* With linting on, compile under the pass-verifier so a pass
               that introduces a violation is named on stderr. *)
            let out, verified =
              if lint || lint_json then
                let out, report = Verify.compile ~strategy platform mode circuit in
                (out, Some report)
              else (Compiler.compile ~strategy platform mode circuit, None)
            in
            (match verified with
            | Some r when r.Verify.final <> [] -> prerr_string (Verify.render r)
            | _ -> ());
            print_string (Compiler.report out);
            print_newline ();
            if emit_eqasm then begin
              match out.Compiler.eqasm with
              | Some program -> print_string (Eqasm.to_string program)
              | None -> print_endline "# perfect mode: no eQASM emitted"
            end
            else print_string out.Compiler.cqasm;
            let metrics_code =
              write_json_line common.metrics (compile_metrics_json out)
            in
            match verified with
            | Some r when Diagnostic.exit_code r.Verify.final = 2 -> 2
            | _ -> metrics_code
          end)

let eqasm_flag =
  Arg.(value & flag & info [ "eqasm" ] ~doc:"Emit eQASM instead of cQASM.")

let compile_term =
  Term.(
    const compile_command $ common_term $ file_arg $ eqasm_flag $ lint_flag
    $ lint_json_flag)

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a cQASM program for a platform and qubit model.")
    compile_term

(* --- exec (through the micro-architecture) --- *)

let exec_command common plan file =
  if not (check_shots common.shots) then 1
  else
    match load_circuit file with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok circuit -> (
        let platform_name =
          Option.value ~default:"superconducting" common.platform
        in
        match
          Result.bind (router_of_common common) (fun router ->
              Spool.route_of_names ~router ~platform:(Some platform_name)
                ~mode:"real" ~ladder:false
                ~qubits:(Circuit.qubit_count circuit) ())
        with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok route ->
            with_trace common.trace (fun () ->
                let spec =
                  {
                    (spec_of_common common ~label:(Circuit.name circuit) ~route
                       ~plan ~fusion:true)
                    with
                    Job_spec.payload = Job_spec.Circuit circuit;
                  }
                in
                match Runner.run spec with
                | Error e ->
                    Printf.eprintf "%s\n" (Error.to_string e);
                    1
                | Ok o ->
                    if common.json then
                      Printf.printf "{\"histogram\":%s,\"report\":%s}\n"
                        (histogram_json o.Runner.histogram)
                        (Engine.report_to_json o.Runner.report)
                    else begin
                      (match o.Runner.microarch_stats with
                      | Some s ->
                          Printf.printf
                            "# microarch: %d bundles, %d micro-ops, %d ns, peak \
                             queue %d, %d violations\n"
                            s.Controller.bundles_issued s.Controller.micro_ops
                            s.Controller.total_ns s.Controller.peak_queue_depth
                            s.Controller.timing_violations
                      | None -> ());
                      print_resilience (common.fault_rate <> None) o.Runner.report;
                      List.iter
                        (fun (key, count) -> Printf.printf "%s  %6d\n" key count)
                        o.Runner.histogram
                    end;
                    write_metrics common.metrics o.Runner.report))

let exec_term = Term.(const exec_command $ common_term $ plan_arg $ file_arg)

let exec_cmd =
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute through the cycle-accurate micro-architecture (real qubits).")
    exec_term

(* --- submit / status / cancel (the qxd spool client) --- *)

let spool_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "spool" ] ~docv:"DIR" ~doc:"Spool directory shared with $(b,qxd serve).")

let tenant_arg =
  Arg.(
    value
    & opt string "default"
    & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant the job is accounted to.")

let priority_arg =
  Arg.(
    value
    & opt int 0
    & info [ "priority" ] ~docv:"P"
        ~doc:"Scheduling priority within the tenant (lower runs sooner).")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget: the job fails with a structured \
           deadline-exceeded error if it is still unfinished $(docv) \
           milliseconds after it starts (checked at scheduler slice \
           boundaries).")

let durable_flag =
  Arg.(
    value & flag
    & info [ "durable" ]
        ~doc:
          "fsync the job file and the spool directories around the atomic \
           rename, so the submission survives power loss.")

let submit_command common dir tenant priority deadline_ms durable file plan
    trajectory no_fusion =
  if not (check_shots common.shots) then 1
  else
    match load_circuit file with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok circuit -> (
        match
          Result.bind (router_of_common common) (fun router ->
              Spool.route_of_names ~router ~platform:common.platform
                ~mode:common.mode ~ladder:true
                ~qubits:(Circuit.qubit_count circuit) ())
        with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok route -> (
            let spec =
              {
                (spec_of_common common ~label:(Circuit.name circuit) ~route
                   ~plan:(resolve_plan plan trajectory)
                   ~fusion:(not no_fusion))
                with
                Job_spec.payload = Job_spec.Circuit circuit;
                priority;
                deadline_ms;
              }
            in
            match Spool.submit ~durable ~dir ~tenant spec with
            | Error e ->
                Printf.eprintf "qxc: error: %s\n" (Error.to_string e);
                1
            | Ok id ->
                if common.json then
                  Printf.printf "{\"id\":\"%s\",\"tenant\":\"%s\"}\n" id
                    (json_escape tenant)
                else Printf.printf "submitted %s\n" id;
                0))

let submit_term =
  Term.(
    const submit_command $ common_term $ spool_arg $ tenant_arg $ priority_arg
    $ deadline_arg $ durable_flag $ file_arg $ plan_arg $ trajectory_flag
    $ no_fusion_flag)

let submit_cmd =
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Queue a cQASM program on a $(b,qxd) spool and print the job id. The \
          job carries the same flags as $(b,run); poll it with $(b,status).")
    submit_term

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Job id.")

let id_opt_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"ID"
        ~doc:"Job id; omit it to report the daemon and queue depths instead.")

(* Spool-wide status: daemon liveness (from DIR/daemon.json) plus queue
   depths. This is the operator's `is my daemon up?` probe. *)
let spool_status json dir =
  let inbox = List.length (Spool.pending_ids ~dir) in
  let active = List.length (Spool.active ~dir) in
  match Spool.read_heartbeat ~dir with
  | None ->
      if json then
        Printf.printf "{\"daemon\":null,\"inbox\":%d,\"active\":%d}\n" inbox
          active
      else begin
        Printf.printf "daemon: none\n";
        Printf.printf "inbox:  %d queued, active: %d journaled\n" inbox active
      end;
      0
  | Some hb ->
      let alive = Spool.pid_alive hb.Spool.hb_pid in
      if json then
        Printf.printf
          "{\"daemon\":{\"pid\":%d,\"state\":\"%s\",\"alive\":%b},\"inbox\":%d,\"active\":%d}\n"
          hb.Spool.hb_pid
          (json_escape hb.Spool.hb_state)
          alive inbox active
      else begin
        Printf.printf "daemon: pid %d %s (%s)\n" hb.Spool.hb_pid
          hb.Spool.hb_state
          (if alive then "alive" else "dead");
        Printf.printf "inbox:  %d queued, active: %d journaled\n" inbox active
      end;
      0

let status_command json dir id =
  match id with
  | None -> spool_status json dir
  | Some id -> (
      match Spool.read_result ~dir id with
      | Some line ->
          print_string line;
          0
      | None ->
          if Spool.in_inbox ~dir id then begin
            if json then
              Printf.printf "{\"id\":\"%s\",\"status\":\"queued\"}\n" id
            else Printf.printf "%s queued\n" id;
            0
          end
          else
            match Spool.in_active ~dir id with
            | Some c ->
                if json then
                  Printf.printf
                    "{\"id\":\"%s\",\"status\":\"running\",\"attempt\":%d,\"pid\":%d}\n"
                    id c.Spool.attempt c.Spool.claim_pid
                else
                  Printf.printf "%s running (attempt %d, pid %d)\n" id
                    c.Spool.attempt c.Spool.claim_pid;
                0
            | None ->
                if Spool.cancel_requested ~dir id then begin
                  if json then
                    Printf.printf "{\"id\":\"%s\",\"status\":\"cancelling\"}\n" id
                  else Printf.printf "%s cancelling\n" id;
                  0
                end
                else begin
                  Printf.eprintf "unknown job %s\n" id;
                  1
                end)

let status_term = Term.(const status_command $ json_flag $ spool_arg $ id_opt_arg)

let status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Report a submitted job (queued, running, cancelling or its result) \
          — or, with no ID, the daemon heartbeat and queue depths.")
    status_term

let cancel_command dir id =
  if Spool.request_cancel ~dir id then begin
    Printf.printf "cancel requested for %s\n" id;
    0
  end
  else begin
    Printf.eprintf "%s already finished\n" id;
    1
  end

let cancel_term = Term.(const cancel_command $ spool_arg $ id_arg)

let cancel_cmd =
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Request cancellation of a queued or running job (fails once a result \
          is published).")
    cancel_term

(* --- qisa --- *)

let qisa_command common file qubits tech_name =
  match (try Ok (read_file file) with Sys_error m -> Error m) with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok source -> (
      let technology = Spool.technology_of_platform tech_name in
      let cycle_ns = if tech_name = "semiconducting" then 100 else 20 in
      match
        Qca_microarch.Qisa.parse ~name:(Filename.basename file) ~qubit_count:qubits
          ~cycle_ns source
      with
      | exception Qca_microarch.Qisa.Parse_error (line, msg) ->
          Printf.eprintf "%s:%d: %s\n" file line msg;
          1
      | exception Invalid_argument msg ->
          prerr_endline msg;
          1
      | program ->
          let rng = Rng.create common.seed in
          let counts = Hashtbl.create 16 in
          let last = ref None in
          for _ = 1 to common.shots do
            let result = Qca_microarch.Qisa.execute ~rng technology program in
            last := Some result;
            let key =
              String.concat ","
                (List.map string_of_int
                   (Array.to_list (Array.sub result.Qca_microarch.Qisa.registers 0 8)))
            in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          done;
          (match !last with
          | Some result ->
              Printf.printf "# %d classical instructions retired (last run)\n"
                result.Qca_microarch.Qisa.executed
          | None -> ());
          print_endline "# register file r0..r7 -> count";
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> List.iter (fun (key, count) -> Printf.printf "[%s]  %d\n" key count);
          0)

let qubits_arg =
  Arg.(value & opt int 2 & info [ "qubits" ] ~docv:"N" ~doc:"Qubit count for QISA programs.")

let tech_arg =
  Arg.(
    value
    & opt string "superconducting"
    & info [ "technology" ] ~docv:"TECH" ~doc:"Micro-architecture technology.")

let qisa_term = Term.(const qisa_command $ common_term $ file_arg $ qubits_arg $ tech_arg)

let qisa_cmd =
  Cmd.v
    (Cmd.info "qisa"
       ~doc:"Assemble and execute a QISA program (classical + quantum ISA, Figure 5).")
    qisa_term

(* --- info --- *)

let info_command file =
  match load_circuit file with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok circuit ->
      Printf.printf "name:          %s\n" (Circuit.name circuit);
      Printf.printf "qubits:        %d\n" (Circuit.qubit_count circuit);
      Printf.printf "instructions:  %d\n" (Circuit.length circuit);
      Printf.printf "gates:         %d\n" (Circuit.gate_count circuit);
      Printf.printf "two-qubit:     %d\n" (Circuit.two_qubit_gate_count circuit);
      Printf.printf "depth:         %d\n" (Circuit.depth circuit);
      Printf.printf "qubits used:   %s\n"
        (String.concat ", " (List.map string_of_int (Circuit.qubits_used circuit)));
      0

let info_term = Term.(const info_command $ file_arg)
let info_cmd = Cmd.v (Cmd.info "info" ~doc:"Print circuit statistics.") info_term

let () =
  let doc = "full-stack quantum accelerator toolchain (cQASM/eQASM/QX)" in
  let main =
    Cmd.group (Cmd.info "qxc" ~version:"1.0" ~doc)
      [
        run_cmd; compile_cmd; check_cmd; estimate_cmd; exec_cmd; submit_cmd;
        status_cmd; cancel_cmd; qisa_cmd; info_cmd;
      ]
  in
  (* Structured errors escaping a subcommand become a one-line diagnostic
     rather than an OCaml backtrace. *)
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Qca_util.Error.Error e ->
      Printf.eprintf "qxc: error: %s\n" (Qca_util.Error.to_string e);
      exit 2
  | exception Failure msg ->
      Printf.eprintf "qxc: error: %s\n" msg;
      exit 2
