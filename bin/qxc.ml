(* qxc: compile and execute cQASM programs on the QX simulator through the
   OpenQL-style compiler and, optionally, the micro-architecture model. *)

module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Engine = Qca_qx.Engine
module Noise = Qca_qx.Noise
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Eqasm = Qca_compiler.Eqasm
module Controller = Qca_microarch.Controller
module Rng = Qca_util.Rng
module Diagnostic = Qca_analysis.Diagnostic
module Verify = Qca_analysis.Verify

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let load_program path =
  try Ok (Cqasm.parse (read_file path)) with
  | Qca_util.Error.Error { kind = Qca_util.Error.Syntax { line; reason; _ }; _ } ->
      Error (Printf.sprintf "%s:%d: parse error: %s" path line reason)
  | Sys_error msg -> Error msg
  | Invalid_argument msg -> Error (Printf.sprintf "%s: %s" path msg)

let load_circuit path = Result.map Cqasm.flatten (load_program path)

let platform_of_string name qubits =
  match name with
  | "superconducting" -> Ok Platform.superconducting_17
  | "semiconducting" -> Ok Platform.semiconducting_4
  | "perfect" -> Ok (Platform.perfect qubits)
  | other -> Error (Printf.sprintf "unknown platform '%s'" other)

let mode_of_string = function
  | "perfect" -> Ok Compiler.Perfect
  | "realistic" -> Ok Compiler.Realistic
  | "real" -> Ok Compiler.Real
  | other -> Error (Printf.sprintf "unknown mode '%s'" other)

(* --- common args --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"cQASM source file.")

let shots_arg =
  Arg.(value & opt int 1024 & info [ "shots" ] ~docv:"N" ~doc:"Number of shots.")

let seed_arg =
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let noise_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "noise" ] ~docv:"P" ~doc:"Depolarising error rate for realistic qubits.")

let platform_arg =
  Arg.(
    value
    & opt string "superconducting"
    & info [ "platform" ] ~docv:"NAME"
        ~doc:"Target platform: superconducting, semiconducting or perfect.")

let mode_arg =
  Arg.(
    value
    & opt string "realistic"
    & info [ "mode" ] ~docv:"MODE" ~doc:"Qubit model: perfect, realistic or real.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the per-run metrics report as JSON to $(docv) ('-' for stdout).")

let write_metrics dest report =
  match dest with
  | None -> 0
  | Some "-" ->
      print_endline (Engine.report_to_json report);
      0
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Engine.report_to_json report);
        output_char oc '\n';
        close_out oc;
        0
      with Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        1)

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Trace the run through every stack layer (compiler passes, engine \
           phases, micro-architecture). With no $(docv) (or '-') print a \
           span-tree summary after the results; with $(docv) write Chrome \
           trace_event JSON loadable in chrome://tracing or Perfetto. See \
           docs/observability.md.")

(* Run [body] with a trace collector installed when --trace was given, then
   export: bare --trace prints the span tree, --trace=FILE writes Chrome
   JSON. The body's exit code wins over the export's. *)
let with_trace dest body =
  match dest with
  | None -> body ()
  | Some target ->
      let collector = Qca_util.Trace.make_collector () in
      let code = Qca_util.Trace.collecting collector body in
      let export_code =
        match target with
        | "-" ->
            print_string (Qca_util.Trace.to_tree_string collector);
            0
        | path -> (
            try
              let oc = open_out path in
              output_string oc (Qca_util.Trace.to_chrome_json collector);
              close_out oc;
              0
            with Sys_error msg ->
              Printf.eprintf "cannot write trace: %s\n" msg;
              1)
      in
      if code <> 0 then code else export_code

(* --- static checker (docs/analysis.md) --- *)

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static checker (docs/analysis.md) on the source before \
           proceeding. Diagnostics go to stderr; error-severity findings \
           abort with exit 2.")

let lint_json_flag =
  Arg.(
    value & flag
    & info [ "lint-json" ]
        ~doc:"Like $(b,--lint) but emit the diagnostics as a JSON array.")

(* Returns false when error-severity findings should abort the command. *)
let run_lint ~lint ~lint_json ?platform program =
  if not (lint || lint_json) then true
  else begin
    let diags = Verify.source_check ?platform program in
    if lint_json then prerr_endline (Diagnostic.json_of_list diags)
    else prerr_string (Diagnostic.render diags);
    Diagnostic.exit_code diags < 2
  end

let check_shots shots =
  if shots <= 0 then (
    Printf.eprintf "--shots must be positive (got %d)\n" shots;
    false)
  else true

(* --- fault injection args --- *)

let fault_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Inject controller/backend faults with per-site probability $(docv) \
           (see docs/resilience.md). Off when absent.")

let fault_seed_arg =
  Arg.(
    value
    & opt int Qca_util.Fault.default_seed
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for the fault injector's own RNG stream.")

let max_retries_arg =
  Arg.(
    value
    & opt int Qca_util.Resilience.default_policy.Qca_util.Resilience.max_retries
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Retries per shot before it counts as faulted.")

let make_faults rate seed =
  match rate with
  | None -> None
  | Some p -> Some (Qca_util.Fault.make ~seed (Qca_util.Fault.uniform p))

let make_policy retries =
  { Qca_util.Resilience.default_policy with Qca_util.Resilience.max_retries = retries }

let print_resilience faults report =
  match faults with
  | None -> ()
  | Some _ ->
      let r = report.Engine.resilience in
      let fires =
        List.fold_left (fun acc (_, c) -> acc + c) 0 r.Engine.faults_injected
      in
      Printf.printf
        "# resilience: %d fault fires, %d retries, %d faulted shots, backoff %d ns%s\n"
        fires r.Engine.retries r.Engine.faulted_shots r.Engine.backoff_ns
        (match r.Engine.degraded with
        | None -> ""
        | Some msg -> Printf.sprintf " (degraded: %s)" msg)

(* --- check --- *)

let check_command file platform_name mode_name json no_verify =
  let finish source report =
    let passes = match report with None -> [] | Some r -> r.Verify.passes in
    let all = source @ (match report with None -> [] | Some r -> r.Verify.final) in
    if json then begin
      let pass_json (p : Verify.pass_report) =
        Printf.sprintf "{\"pass\":\"%s\",\"introduced\":[%s],\"diagnostics\":%s}"
          (Diagnostic.json_escape p.Verify.pass_name)
          (String.concat ","
             (List.map
                (fun c -> "\"" ^ Diagnostic.json_escape c ^ "\"")
                p.Verify.introduced))
          (Diagnostic.json_of_list p.Verify.diagnostics)
      in
      Printf.printf
        "{\"file\":\"%s\",\"diagnostics\":%s,\"passes\":[%s],\"summary\":\"%s\"}\n"
        (Diagnostic.json_escape file)
        (Diagnostic.json_of_list all)
        (String.concat "," (List.map pass_json passes))
        (Diagnostic.json_escape (Diagnostic.summary all))
    end
    else begin
      List.iter (fun d -> print_endline (Diagnostic.to_string d)) source;
      (match report with None -> () | Some r -> print_string (Verify.render r));
      Printf.printf "%s: %s\n" file (Diagnostic.summary all)
    end;
    Diagnostic.exit_code all
  in
  match load_program file with
  | Error msg ->
      finish
        [ Diagnostic.make Diagnostic.Error ~code:"X01" ~check:"parse-error" ~site:file msg ]
        None
  | Ok program -> (
      match platform_name with
      | None -> finish (Verify.source_check program) None
      | Some pname -> (
          let circuit = Cqasm.flatten program in
          match
            ( platform_of_string pname (Circuit.qubit_count circuit),
              mode_of_string mode_name )
          with
          | Error msg, _ | _, Error msg ->
              prerr_endline msg;
              2
          | Ok platform, Ok mode ->
              let source = Verify.source_check ~platform program in
              (* Source errors (e.g. out-of-range operands) would make the
                 compiler itself raise; report them without verifying. *)
              if no_verify || Diagnostic.exit_code source = 2 then finish source None
              else
                let _out, report = Verify.compile platform mode circuit in
                finish source (Some report)))

let check_platform_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "platform" ] ~docv:"NAME"
        ~doc:
          "Also compile for $(docv) (superconducting, semiconducting or perfect) \
           with the pass-verifier on, reporting which pass introduced each \
           violation.")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let no_verify_flag =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"With $(b,--platform): skip the per-pass verifier, source checks only.")

let check_term =
  Term.(
    const check_command $ file_arg $ check_platform_arg $ mode_arg $ json_flag
    $ no_verify_flag)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a cQASM program (exit 0 clean / 1 warnings / 2 errors). \
          See docs/analysis.md for the check catalogue.")
    check_term

(* --- run --- *)

let run_command file shots seed noise trajectory no_fusion metrics trace fault_rate
    fault_seed max_retries lint lint_json =
  if not (check_shots shots) then 1
  else
    match load_program file with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok program when not (run_lint ~lint ~lint_json program) -> 2
    | Ok program ->
      let circuit = Cqasm.flatten program in
      with_trace trace (fun () ->
          let noise =
            match noise with Some p -> Noise.depolarizing p | None -> Noise.ideal
          in
          let plan = if trajectory then Some Engine.Trajectory else None in
          let faults = make_faults fault_rate fault_seed in
          let policy = make_policy max_retries in
          let result =
            Engine.run ~noise ~seed ?plan ~shots ?faults ~policy ~fusion:(not no_fusion)
              circuit
          in
          let report = result.Engine.report in
          Printf.printf "# %d qubits, %d instructions, %d shots\n"
            (Circuit.qubit_count circuit) (Circuit.length circuit) shots;
          Printf.printf "# plan: %s (%s)\n"
            (Engine.plan_to_string report.Engine.plan)
            report.Engine.plan_reason;
          print_resilience faults report;
          List.iter
            (fun (key, count) ->
              Printf.printf "%s  %6d  %.4f\n" key count
                (float_of_int count /. float_of_int shots))
            result.Engine.histogram;
          write_metrics metrics report)

let trajectory_flag =
  Arg.(
    value & flag
    & info [ "trajectory" ]
        ~doc:"Force the per-shot trajectory plan even when single-pass sampling applies.")

let no_fusion_flag =
  Arg.(
    value & flag
    & info [ "no-fusion" ]
        ~doc:
          "Disable the gate-fusion pre-pass (results are bit-identical either way; \
           this only affects speed and the fusion metrics).")

let run_term =
  Term.(
    const run_command $ file_arg $ shots_arg $ seed_arg $ noise_arg $ trajectory_flag
    $ no_fusion_flag $ metrics_arg $ trace_arg $ fault_rate_arg $ fault_seed_arg
    $ max_retries_arg $ lint_flag $ lint_json_flag)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Execute a cQASM program on the QX simulator.") run_term

(* --- compile --- *)

let compile_command file platform_name mode_name emit_eqasm lint lint_json =
  match load_program file with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok program -> (
      let circuit = Cqasm.flatten program in
      match
        ( platform_of_string platform_name (Circuit.qubit_count circuit),
          mode_of_string mode_name )
      with
      | Error msg, _ | _, Error msg ->
          prerr_endline msg;
          1
      | Ok platform, Ok mode ->
          if not (run_lint ~lint ~lint_json ~platform program) then 2
          else begin
            (* With linting on, compile under the pass-verifier so a pass
               that introduces a violation is named on stderr. *)
            let out, verified =
              if lint || lint_json then
                let out, report = Verify.compile platform mode circuit in
                (out, Some report)
              else (Compiler.compile platform mode circuit, None)
            in
            (match verified with
            | Some r when r.Verify.final <> [] -> prerr_string (Verify.render r)
            | _ -> ());
            print_string (Compiler.report out);
            print_newline ();
            if emit_eqasm then begin
              match out.Compiler.eqasm with
              | Some program -> print_string (Eqasm.to_string program)
              | None -> print_endline "# perfect mode: no eQASM emitted"
            end
            else print_string out.Compiler.cqasm;
            match verified with
            | Some r when Diagnostic.exit_code r.Verify.final = 2 -> 2
            | _ -> 0
          end)

let eqasm_flag =
  Arg.(value & flag & info [ "eqasm" ] ~doc:"Emit eQASM instead of cQASM.")

let compile_term =
  Term.(
    const compile_command $ file_arg $ platform_arg $ mode_arg $ eqasm_flag $ lint_flag
    $ lint_json_flag)

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a cQASM program for a platform and qubit model.")
    compile_term

(* --- exec (through the micro-architecture) --- *)

let exec_command file platform_name shots seed metrics trace fault_rate
    fault_seed max_retries =
  if not (check_shots shots) then 1
  else
    match load_circuit file with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok circuit -> (
      match platform_of_string platform_name (Circuit.qubit_count circuit) with
      | Error msg ->
          prerr_endline msg;
          1
      | Ok platform ->
          with_trace trace (fun () ->
              let out = Compiler.compile platform Compiler.Real circuit in
              match out.Compiler.eqasm with
              | None ->
                  prerr_endline "no eQASM produced";
                  1
              | Some program ->
                  let technology =
                    if platform_name = "semiconducting" then Controller.semiconducting
                    else Controller.superconducting
                  in
                  let faults = make_faults fault_rate fault_seed in
                  let policy = make_policy max_retries in
                  let r =
                    Controller.run_shots ~noise:platform.Platform.noise ~seed ~shots
                      ?faults ~policy technology program
                  in
                  let s = r.Controller.last.Controller.stats in
                  Printf.printf
                    "# microarch: %d bundles, %d micro-ops, %d ns, peak queue %d, %d \
                     violations\n"
                    s.Controller.bundles_issued s.Controller.micro_ops
                    s.Controller.total_ns s.Controller.peak_queue_depth
                    s.Controller.timing_violations;
                  print_resilience faults r.Controller.report;
                  List.iter
                    (fun (key, count) -> Printf.printf "%s  %6d\n" key count)
                    r.Controller.histogram;
                  write_metrics metrics r.Controller.report))

let exec_term =
  Term.(
    const exec_command $ file_arg $ platform_arg $ shots_arg $ seed_arg $ metrics_arg
    $ trace_arg $ fault_rate_arg $ fault_seed_arg $ max_retries_arg)

let exec_cmd =
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute through the cycle-accurate micro-architecture (real qubits).")
    exec_term

(* --- qisa --- *)

let qisa_command file qubits shots seed tech_name =
  match (try Ok (read_file file) with Sys_error m -> Error m) with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok source -> (
      let technology =
        if tech_name = "semiconducting" then Qca_microarch.Controller.semiconducting
        else Qca_microarch.Controller.superconducting
      in
      let cycle_ns = if tech_name = "semiconducting" then 100 else 20 in
      match
        Qca_microarch.Qisa.parse ~name:(Filename.basename file) ~qubit_count:qubits
          ~cycle_ns source
      with
      | exception Qca_microarch.Qisa.Parse_error (line, msg) ->
          Printf.eprintf "%s:%d: %s\n" file line msg;
          1
      | exception Invalid_argument msg ->
          prerr_endline msg;
          1
      | program ->
          let rng = Rng.create seed in
          let counts = Hashtbl.create 16 in
          let last = ref None in
          for _ = 1 to shots do
            let result = Qca_microarch.Qisa.execute ~rng technology program in
            last := Some result;
            let key =
              String.concat ","
                (List.map string_of_int
                   (Array.to_list (Array.sub result.Qca_microarch.Qisa.registers 0 8)))
            in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          done;
          (match !last with
          | Some result ->
              Printf.printf "# %d classical instructions retired (last run)\n"
                result.Qca_microarch.Qisa.executed
          | None -> ());
          print_endline "# register file r0..r7 -> count";
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> List.iter (fun (key, count) -> Printf.printf "[%s]  %d\n" key count);
          0)

let qubits_arg =
  Arg.(value & opt int 2 & info [ "qubits" ] ~docv:"N" ~doc:"Qubit count for QISA programs.")

let tech_arg =
  Arg.(
    value
    & opt string "superconducting"
    & info [ "technology" ] ~docv:"TECH" ~doc:"Micro-architecture technology.")

let qisa_term =
  Term.(const qisa_command $ file_arg $ qubits_arg $ shots_arg $ seed_arg $ tech_arg)

let qisa_cmd =
  Cmd.v
    (Cmd.info "qisa"
       ~doc:"Assemble and execute a QISA program (classical + quantum ISA, Figure 5).")
    qisa_term

(* --- info --- *)

let info_command file =
  match load_circuit file with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok circuit ->
      Printf.printf "name:          %s\n" (Circuit.name circuit);
      Printf.printf "qubits:        %d\n" (Circuit.qubit_count circuit);
      Printf.printf "instructions:  %d\n" (Circuit.length circuit);
      Printf.printf "gates:         %d\n" (Circuit.gate_count circuit);
      Printf.printf "two-qubit:     %d\n" (Circuit.two_qubit_gate_count circuit);
      Printf.printf "depth:         %d\n" (Circuit.depth circuit);
      Printf.printf "qubits used:   %s\n"
        (String.concat ", " (List.map string_of_int (Circuit.qubits_used circuit)));
      0

let info_term = Term.(const info_command $ file_arg)
let info_cmd = Cmd.v (Cmd.info "info" ~doc:"Print circuit statistics.") info_term

let () =
  let doc = "full-stack quantum accelerator toolchain (cQASM/eQASM/QX)" in
  let main =
    Cmd.group (Cmd.info "qxc" ~version:"1.0" ~doc)
      [ run_cmd; compile_cmd; check_cmd; exec_cmd; qisa_cmd; info_cmd ]
  in
  (* Structured errors escaping a subcommand become a one-line diagnostic
     rather than an OCaml backtrace. *)
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Qca_util.Error.Error e ->
      Printf.eprintf "qxc: error: %s\n" (Qca_util.Error.to_string e);
      exit 2
  | exception Failure msg ->
      Printf.eprintf "qxc: error: %s\n" msg;
      exit 2
