(* qxd: the multi-tenant quantum job daemon.

   `qxd serve --spool DIR` turns a spool directory (populated by
   `qxc submit`) into a running Qca_service.Service instance: inbox
   entries are claimed into the DIR/active journal, admitted under
   their tenant, scheduled by weighted fair queuing, and published as
   one JSON line each under DIR/results/. There is no network; the
   filesystem is the protocol (docs/service.md).

   Crash safety: a job is either in inbox/ (unclaimed), journaled in
   active/ (claimed, possibly running), or terminal (results/ or
   failed/). The daemon never deletes a job file before its result
   exists, so a crash at any point leaves the job recoverable; startup
   recovery re-executes orphaned journal entries bit-identically and
   retires jobs that crash the daemon more than --max-attempts times
   (docs/resilience.md). *)

module Engine = Qca_qx.Engine
module Error = Qca_util.Error
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner
module Service = Qca_service.Service
module Spool = Qca_service.Spool

open Cmdliner

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let histogram_json hist =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) hist)
  ^ "}"

let result_line ~id ~tenant ~label status body =
  Printf.sprintf "{\"id\":\"%s\",\"tenant\":\"%s\",\"label\":\"%s\",\"status\":\"%s\"%s}"
    (json_escape id) (json_escape tenant) (json_escape label) status body

let done_line ~id ~tenant ~label (o : Runner.outcome) =
  result_line ~id ~tenant ~label "done"
    (Printf.sprintf ",\"histogram\":%s,\"report\":%s"
       (histogram_json o.Runner.histogram)
       (Engine.report_to_json o.Runner.report))

let error_line ~id ~tenant ~label status (e : Error.t) =
  result_line ~id ~tenant ~label status
    (Printf.sprintf ",\"error\":{\"kind\":\"%s\",\"message\":\"%s\"}"
       (json_escape (Error.kind_label e.Error.kind))
       (json_escape (Error.to_string e)))

(* One admitted job the daemon is tracking: spool id + service handle. *)
type tracked = {
  tr_id : string;
  tr_tenant : string;
  tr_label : string;
  tr_handle : Service.handle;
  mutable tr_published : bool;
}

let serve_command dir once interval workers max_queue degrade_above slice_shots
    cache_capacity max_bytes max_sim_ns max_attempts durable verbose print_stats =
  Spool.init dir;
  let pid = Unix.getpid () in
  let say fmt =
    Printf.ksprintf (fun s -> if verbose then print_endline ("qxd: " ^ s)) fmt
  in
  (* Refuse to double-serve a spool another live daemon owns: two
     daemons would race on claims and publish duplicate results. *)
  (match Spool.read_heartbeat ~dir with
  | Some hb
    when hb.Spool.hb_pid <> pid
         && Spool.pid_alive hb.Spool.hb_pid
         && (String.equal hb.Spool.hb_state "serving"
            || String.equal hb.Spool.hb_state "draining") ->
      Printf.eprintf "qxd: spool %s is already served by pid %d\n" dir
        hb.Spool.hb_pid;
      exit 1
  | _ -> ());
  let started_at_ms = Spool.now_ms () in
  let heartbeat state = Spool.write_heartbeat ~dir ~pid ~state ~started_at_ms in
  heartbeat "starting";
  let swept = Spool.sweep_tmp ~dir in
  if swept > 0 then say "swept %d stale tmp file(s)" swept;
  let config =
    {
      Service.default_config with
      Service.workers;
      max_queue;
      degrade_above;
      slice_shots;
      cache_capacity;
      admission_max_bytes = max_bytes;
      admission_max_ns = max_sim_ns;
    }
  in
  let service = Service.create ~config () in
  let tracked = ref [] (* newest first; published in id order *) in
  let publish_line id line =
    (* The result file is the commit point: write it first, then clear
       the journal entry and any consumed cancel marker. Re-crashing
       between these steps is safe — recovery sees the result and
       finishes the cleanup without re-running the job. *)
    Spool.write_result ~durable ~dir ~id line;
    Spool.complete ~dir id;
    Spool.clear_cancel ~dir id
  in
  (* Admit one claimed (journaled) entry into the service. The cancel
     marker is honoured even though the job is already claimed: a
     cancel that raced the claim still wins as long as execution has
     not finished. *)
  let admit_entry ~id ~attempt entry =
    match entry with
    | Error e ->
        say "rejected malformed job %s" id;
        publish_line id (error_line ~id ~tenant:"unknown" ~label:"?" "rejected" e)
    | Ok { Spool.entry_id = _; tenant; spec } ->
        let label = spec.Job_spec.label in
        if Spool.cancel_requested ~dir id then begin
          say "cancelled %s before execution" id;
          publish_line id (result_line ~id ~tenant ~label "cancelled" "")
        end
        else begin
          match Service.submit service ~tenant spec with
          | Ok h ->
              if attempt > 1 then
                say "admitted %s (%s, %d shots, attempt %d)" id tenant
                  spec.Job_spec.shots attempt
              else
                say "admitted %s (%s, %d shots)" id tenant spec.Job_spec.shots;
              tracked :=
                {
                  tr_id = id;
                  tr_tenant = tenant;
                  tr_label = label;
                  tr_handle = h;
                  tr_published = false;
                }
                :: !tracked
          | Error e ->
              say "refused %s (%s): %s" id tenant (Error.kind_label e.Error.kind);
              publish_line id (error_line ~id ~tenant ~label "rejected" e)
        end
  in
  let recover () =
    List.iter
      (fun r ->
        match r with
        | Spool.Already_published id ->
            say "recovered %s: result already published" id
        | Spool.Busy { id; owner } ->
            say "leaving %s alone: claimed by live pid %d" id owner
        | Spool.Poison { id; attempts; tenant; label } ->
            say "retiring poison job %s after %d attempts" id attempts;
            let e =
              Error.make ~site:"qxd.recover"
                ~context:[ ("job", id); ("tenant", tenant) ]
                (Error.Crash_loop { attempts })
            in
            publish_line id (error_line ~id ~tenant ~label "failed" e)
        | Spool.Replay { id; entry; attempt } ->
            say "replaying %s (attempt %d)" id attempt;
            admit_entry ~id ~attempt entry)
      (Spool.recover ~dir ~pid ~max_attempts)
  in
  (* Reject an inbox entry without ever claiming it: result first (the
     commit point), then drop the inbox file. A crash in between leaves
     both; the result-exists guard below finishes the cleanup. *)
  let reject_preclaim ~id ~tenant ~label e =
    Spool.write_result ~durable ~dir ~id (error_line ~id ~tenant ~label "rejected" e);
    Spool.consume ~dir id;
    Spool.clear_cancel ~dir id
  in
  let claim_inbox () =
    List.iter
      (fun (id, entry) ->
        if Spool.read_result ~dir id <> None then
          (* A previous run published this id (e.g. crashed between a
             pre-claim rejection's result write and the inbox removal):
             the result is the commit point, so just finish the cleanup. *)
          Spool.consume ~dir id
        else
          let rejected =
            (* The admission oracle runs before the claim, so an
               infeasible job is never journaled: no attempt is spent,
               recovery never replays it. *)
            match entry with
            | Ok { Spool.tenant; spec; _ } -> (
                match Service.preflight service spec with
                | Ok () -> false
                | Error e ->
                    say "rejected %s pre-claim (%s): %s" id tenant
                      (Error.kind_label e.Error.kind);
                    reject_preclaim ~id ~tenant ~label:spec.Job_spec.label e;
                    true)
            | Error _ -> false
          in
          if not rejected then
            if Spool.claim ~dir ~pid id then admit_entry ~id ~attempt:1 entry)
      (Spool.pending_ids ~dir)
  in
  let apply_cancels () =
    List.iter
      (fun tr ->
        if (not tr.tr_published) && Spool.cancel_requested ~dir tr.tr_id then
          if Service.cancel service tr.tr_handle then
            say "cancelled %s" tr.tr_id)
      !tracked
  in
  let publish () =
    List.iter
      (fun tr ->
        if not tr.tr_published then
          let line =
            match Service.poll service tr.tr_handle with
            | Service.Queued _ | Service.Running _ -> None
            | Service.Done o ->
                Some
                  (done_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label o)
            | Service.Failed e ->
                Some
                  (error_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label "failed" e)
            | Service.Cancelled ->
                Some
                  (result_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label "cancelled" "")
          in
          match line with
          | None -> ()
          | Some line ->
              publish_line tr.tr_id line;
              tr.tr_published <- true;
              say "published %s" tr.tr_id)
      (List.sort (fun a b -> compare a.tr_id b.tr_id) !tracked)
  in
  let finish () =
    if print_stats then print_endline (Service.stats_to_json service);
    0
  in
  if once then begin
    (* Drain mode: recover the journal, take everything currently
       spooled, honour cancel markers present now, run to completion,
       publish, exit. *)
    recover ();
    claim_inbox ();
    apply_cancels ();
    let rec pump () =
      if Service.step service then begin
        apply_cancels ();
        publish ();
        pump ()
      end
    in
    pump ();
    publish ();
    heartbeat "stopped";
    finish ()
  end
  else begin
    let drain = ref false in
    let on_signal _ =
      if !drain then
        (* Second signal: stop now. In-flight jobs stay journaled and
           are replayed by the next daemon's recovery. *)
        Stdlib.exit 130
      else drain := true
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    recover ();
    say "serving %s (%d workers, queue %d)" dir config.Service.workers
      config.Service.max_queue;
    heartbeat "serving";
    let stop = ref false in
    while not !stop do
      if not !drain then claim_inbox ();
      apply_cancels ();
      let progressed = Service.step service in
      publish ();
      heartbeat (if !drain then "draining" else "serving");
      if !drain then begin
        (* Graceful drain: no new claims; finish what is in flight,
           publish it, then leave. *)
        if not progressed then begin
          say "drained";
          stop := true
        end
      end
      else if not progressed then Unix.sleepf interval
    done;
    publish ();
    heartbeat "drained";
    finish ()
  end

let spool_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "spool" ] ~docv:"DIR" ~doc:"Spool directory shared with $(b,qxc submit).")

let once_flag =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Drain the spool and exit instead of serving forever (used by tests \
           and batch pipelines).")

let interval_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "poll-interval" ] ~docv:"SECONDS"
        ~doc:"Idle sleep between spool scans.")

let workers_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.workers
    & info [ "workers" ] ~docv:"N" ~doc:"Scheduler slices per tick.")

let max_queue_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.max_queue
    & info [ "max-queue" ] ~docv:"N"
        ~doc:"Global backlog capacity; submissions beyond it are rejected.")

let degrade_above_arg =
  Arg.(
    value
    & opt int
        Qca_service.Service.default_config.Qca_service.Service.degrade_above
    & info [ "degrade-above" ] ~docv:"N"
        ~doc:
          "Backlog at which new jobs are admitted degraded (shot cap / \
           realistic-QX fallback) before the queue rejects outright.")

let slice_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.slice_shots
    & info [ "slice-shots" ] ~docv:"N"
        ~doc:"Preemption granularity: shots per scheduler slice.")

let cache_arg =
  Arg.(
    value
    & opt int
        Qca_service.Service.default_config.Qca_service.Service.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (0 disables).")

let max_bytes_arg =
  Arg.(
    value
    & opt float
        Qca_service.Service.default_config
          .Qca_service.Service.admission_max_bytes
    & info [ "max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Admission-oracle cap on a job's estimated simulation state \
           memory; infeasible jobs are rejected before they are claimed \
           (0 disables; docs/estimate.md).")

let max_sim_ns_arg =
  Arg.(
    value
    & opt float
        Qca_service.Service.default_config.Qca_service.Service.admission_max_ns
    & info [ "max-sim-ns" ] ~docv:"NS"
        ~doc:
          "Admission-oracle cap on a job's estimated simulation time; \
           direct jobs over it are degraded (shot budget capped), the \
           rest rejected pre-claim (0 disables).")

let max_attempts_arg =
  Arg.(
    value
    & opt int 3
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Execution attempts a job may consume (claims plus recovery \
           replays) before it is retired to failed/ as poison.")

let durable_flag =
  Arg.(
    value & flag
    & info [ "durable" ]
        ~doc:
          "fsync result files and spool directories around atomic renames, \
           so published results survive power loss.")

let verbose_flag =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate admissions and publications.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the service counters as JSON on exit (schema in docs/service.md).")

let serve_term =
  Term.(
    const serve_command $ spool_arg $ once_flag $ interval_arg $ workers_arg
    $ max_queue_arg $ degrade_above_arg $ slice_arg $ cache_arg
    $ max_bytes_arg $ max_sim_ns_arg $ max_attempts_arg $ durable_flag
    $ verbose_flag $ stats_flag)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a spool directory: claim submitted jobs into the durable \
          journal, schedule them fairly under their tenants, publish results; \
          recover orphaned jobs from a previous crash first.")
    serve_term

let () =
  let doc = "multi-tenant quantum job service daemon" in
  let main = Cmd.group (Cmd.info "qxd" ~version:"1.0" ~doc) [ serve_cmd ] in
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Qca_util.Error.Error e ->
      Printf.eprintf "qxd: error: %s\n" (Qca_util.Error.to_string e);
      exit 2
  | exception Failure msg ->
      Printf.eprintf "qxd: error: %s\n" msg;
      exit 2
