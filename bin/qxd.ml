(* qxd: the multi-tenant quantum job daemon.

   `qxd serve --spool DIR` turns a spool directory (populated by
   `qxc submit`) into a running Qca_service.Service instance: inbox
   entries are admitted under their tenant, scheduled by weighted fair
   queuing, and published as one JSON line each under DIR/results/.
   There is no network; the filesystem is the protocol (docs/service.md). *)

module Engine = Qca_qx.Engine
module Error = Qca_util.Error
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner
module Service = Qca_service.Service
module Spool = Qca_service.Spool

open Cmdliner

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let histogram_json hist =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) hist)
  ^ "}"

let result_line ~id ~tenant ~label status body =
  Printf.sprintf "{\"id\":\"%s\",\"tenant\":\"%s\",\"label\":\"%s\",\"status\":\"%s\"%s}"
    (json_escape id) (json_escape tenant) (json_escape label) status body

let done_line ~id ~tenant ~label (o : Runner.outcome) =
  result_line ~id ~tenant ~label "done"
    (Printf.sprintf ",\"histogram\":%s,\"report\":%s"
       (histogram_json o.Runner.histogram)
       (Engine.report_to_json o.Runner.report))

let error_line ~id ~tenant ~label status (e : Error.t) =
  result_line ~id ~tenant ~label status
    (Printf.sprintf ",\"error\":{\"kind\":\"%s\",\"message\":\"%s\"}"
       (json_escape (Error.kind_label e.Error.kind))
       (json_escape (Error.to_string e)))

(* One admitted job the daemon is tracking: spool id + service handle. *)
type tracked = {
  tr_id : string;
  tr_tenant : string;
  tr_label : string;
  tr_handle : Service.handle;
  mutable tr_published : bool;
}

let serve_command dir once interval workers max_queue degrade_above slice_shots
    cache_capacity verbose print_stats =
  Spool.init dir;
  let config =
    {
      Service.default_config with
      Service.workers;
      max_queue;
      degrade_above;
      slice_shots;
      cache_capacity;
    }
  in
  let service = Service.create ~config () in
  let tracked = ref [] (* newest first; published in id order *) in
  let say fmt =
    Printf.ksprintf (fun s -> if verbose then print_endline ("qxd: " ^ s)) fmt
  in
  let admit_inbox () =
    List.iter
      (fun (id, entry) ->
        Spool.consume ~dir id;
        match entry with
        | Error e ->
            say "rejected malformed job %s" id;
            Spool.write_result ~dir ~id
              (error_line ~id ~tenant:"unknown" ~label:"?" "rejected" e)
        | Ok { Spool.entry_id = _; tenant; spec } -> (
            match Service.submit service ~tenant spec with
            | Ok h ->
                say "admitted %s (%s, %d shots)" id tenant spec.Job_spec.shots;
                tracked :=
                  {
                    tr_id = id;
                    tr_tenant = tenant;
                    tr_label = spec.Job_spec.label;
                    tr_handle = h;
                    tr_published = false;
                  }
                  :: !tracked
            | Error e ->
                say "refused %s (%s): %s" id tenant (Error.kind_label e.Error.kind);
                Spool.write_result ~dir ~id
                  (error_line ~id ~tenant ~label:spec.Job_spec.label "rejected" e)))
      (List.map
         (fun r ->
           match r with
           | Ok e -> (e.Spool.entry_id, Ok e)
           | Error err -> (
               (* Recover the id from the error context so the rejection
                  can still be published. *)
               match List.assoc_opt "job" err.Error.context with
               | Some id -> (id, Error err)
               | None -> ("unknown", Error err)))
         (Spool.pending ~dir))
  in
  let apply_cancels () =
    List.iter
      (fun tr ->
        if (not tr.tr_published) && Spool.cancel_requested ~dir tr.tr_id then
          if Service.cancel service tr.tr_handle then
            say "cancelled %s" tr.tr_id)
      !tracked
  in
  let publish () =
    List.iter
      (fun tr ->
        if not tr.tr_published then
          let line =
            match Service.poll service tr.tr_handle with
            | Service.Queued _ | Service.Running _ -> None
            | Service.Done o ->
                Some
                  (done_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label o)
            | Service.Failed e ->
                Some
                  (error_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label "failed" e)
            | Service.Cancelled ->
                Some
                  (result_line ~id:tr.tr_id ~tenant:tr.tr_tenant
                     ~label:tr.tr_label "cancelled" "")
          in
          match line with
          | None -> ()
          | Some line ->
              Spool.write_result ~dir ~id:tr.tr_id line;
              tr.tr_published <- true;
              say "published %s" tr.tr_id)
      (List.sort (fun a b -> compare a.tr_id b.tr_id) !tracked)
  in
  let finish () =
    if print_stats then print_endline (Service.stats_to_json service);
    0
  in
  if once then begin
    (* Drain mode: take everything currently spooled, honour cancel
       markers present now, run to completion, publish, exit. *)
    admit_inbox ();
    apply_cancels ();
    let rec pump () =
      if Service.step service then begin
        apply_cancels ();
        pump ()
      end
    in
    pump ();
    publish ();
    finish ()
  end
  else begin
    let stop = ref false in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> stop := true));
    say "serving %s (%d workers, queue %d)" dir config.Service.workers
      config.Service.max_queue;
    while not !stop do
      admit_inbox ();
      apply_cancels ();
      let progressed = Service.step service in
      publish ();
      if not progressed then Unix.sleepf interval
    done;
    finish ()
  end

let spool_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "spool" ] ~docv:"DIR" ~doc:"Spool directory shared with $(b,qxc submit).")

let once_flag =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Drain the spool and exit instead of serving forever (used by tests \
           and batch pipelines).")

let interval_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "poll-interval" ] ~docv:"SECONDS"
        ~doc:"Idle sleep between spool scans.")

let workers_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.workers
    & info [ "workers" ] ~docv:"N" ~doc:"Scheduler slices per tick.")

let max_queue_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.max_queue
    & info [ "max-queue" ] ~docv:"N"
        ~doc:"Global backlog capacity; submissions beyond it are rejected.")

let degrade_above_arg =
  Arg.(
    value
    & opt int
        Qca_service.Service.default_config.Qca_service.Service.degrade_above
    & info [ "degrade-above" ] ~docv:"N"
        ~doc:
          "Backlog at which new jobs are admitted degraded (shot cap / \
           realistic-QX fallback) before the queue rejects outright.")

let slice_arg =
  Arg.(
    value
    & opt int Qca_service.Service.default_config.Qca_service.Service.slice_shots
    & info [ "slice-shots" ] ~docv:"N"
        ~doc:"Preemption granularity: shots per scheduler slice.")

let cache_arg =
  Arg.(
    value
    & opt int
        Qca_service.Service.default_config.Qca_service.Service.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (0 disables).")

let verbose_flag =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate admissions and publications.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the service counters as JSON on exit (schema in docs/service.md).")

let serve_term =
  Term.(
    const serve_command $ spool_arg $ once_flag $ interval_arg $ workers_arg
    $ max_queue_arg $ degrade_above_arg $ slice_arg $ cache_arg $ verbose_flag
    $ stats_flag)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a spool directory: admit submitted jobs under their tenants, \
          schedule them fairly, publish results.")
    serve_term

let () =
  let doc = "multi-tenant quantum job service daemon" in
  let main = Cmd.group (Cmd.info "qxd" ~version:"1.0" ~doc) [ serve_cmd ] in
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Qca_util.Error.Error e ->
      Printf.eprintf "qxd: error: %s\n" (Qca_util.Error.to_string e);
      exit 2
  | exception Failure msg ->
      Printf.eprintf "qxd: error: %s\n" msg;
      exit 2
