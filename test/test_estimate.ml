(* Static-estimator suite (`dune build @estimate`): the abstract
   interpretation must agree with the concrete artefacts it predicts —
   circuit accessors for counts and depth, instrumented engine runs for
   gate applications, the planner for plan choice — and the symbolic
   repeated-subcircuit path must agree with the unrolled ground truth.
   The admission-oracle behaviour built on top lives in test_service.ml. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Library = Qca_circuit.Library
module Engine = Qca_qx.Engine
module Noise = Qca_qx.Noise
module Estimate = Qca_analysis.Estimate
module Error_budget = Qca.Error_budget
module Code = Qca_qec.Code
module Rng = Qca_util.Rng

(* --- random circuits with every instruction kind the estimator tallies --- *)

let unitary_pool =
  [|
    Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdag; Gate.T;
    Gate.Tdag; Gate.X90; Gate.Xm90; Gate.Y90; Gate.Ym90; Gate.Rx 0.3;
    Gate.Ry 0.7; Gate.Rz 1.1; Gate.Cnot; Gate.Cz; Gate.Swap;
    Gate.Cphase 0.5; Gate.Crk 2; Gate.Toffoli;
  |]

let random_operands rng n arity =
  let ops = Array.make arity 0 in
  let rec pick i =
    if i < arity then begin
      let q = Rng.int rng n in
      if Array.exists (fun o -> o = q) (Array.sub ops 0 i) then pick i
      else begin
        ops.(i) <- q;
        pick (i + 1)
      end
    end
  in
  pick 0;
  ops

let random_instr rng n =
  match Rng.int rng 10 with
  | 0 -> Gate.Prep (Rng.int rng n)
  | 1 -> Gate.Measure (Rng.int rng n)
  | 2 -> Gate.Barrier (random_operands rng n (1 + Rng.int rng n))
  | 3 ->
      let u = unitary_pool.(Rng.int rng (Array.length unitary_pool)) in
      Gate.Conditional (Rng.int rng n, u, random_operands rng n (Gate.arity u))
  | _ ->
      let u = unitary_pool.(Rng.int rng (Array.length unitary_pool)) in
      Gate.Unitary (u, random_operands rng n (Gate.arity u))

let random_mixed_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 6 in
  let len = Rng.int rng 60 in
  Circuit.of_list n (List.init len (fun _ -> random_instr rng n))

(* --- counts and depth against the circuit's own accessors --- *)

let prop_counts_match_circuit =
  QCheck.Test.make ~name:"static counts/depth = circuit accessors" ~count:200
    QCheck.(int_range 0 99_999)
    (fun seed ->
      let c = random_mixed_circuit seed in
      let est = Estimate.of_circuit c in
      est.Estimate.instructions = Circuit.length c
      && est.Estimate.gates = Circuit.gate_count c
      && Estimate.classes_total est.Estimate.classes = est.Estimate.gates
      && est.Estimate.depth = Circuit.depth c
      && est.Estimate.depth_exact
      && est.Estimate.qubits_used = List.length (Circuit.qubits_used c))

(* --- gate applications against an instrumented trajectory run --- *)

let prop_counts_match_engine =
  QCheck.Test.make ~name:"static gates/measures = engine counters (1 shot)"
    ~count:60
    QCheck.(int_range 0 99_999)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 5 in
      let base = Library.random_circuit rng ~qubits:n ~gates:(Rng.int rng 40) in
      let c =
        Circuit.append base
          (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
      in
      let est = Estimate.of_circuit c in
      let r = Engine.run ~seed:7 ~plan:Engine.Trajectory ~shots:1 c in
      let applied =
        List.fold_left (fun acc (_, k) -> acc + k) 0
          r.Engine.report.Engine.gate_applies
      in
      applied = est.Estimate.gates
      && r.Engine.report.Engine.measurements = est.Estimate.measurements)

(* --- symbolic repetition = unrolled ground truth --- *)

let program_of subcircuits qubit_count =
  { Cqasm.qubit_count; error_model = None; subcircuits }

let prop_symbolic_equals_unrolled =
  (* Iteration counts straddle the direct-iteration cap (256) so both the
     concrete walk and the converge-and-extrapolate path are exercised. *)
  QCheck.Test.make ~name:"repeat-symbolic estimate = unrolled estimate"
    ~count:120
    QCheck.(pair (int_range 0 99_999) (oneofl [ 1; 2; 7; 63; 256; 300; 977 ]))
    (fun (seed, iters) ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 4 in
      let body _ =
        Circuit.of_list n
          (List.init (1 + Rng.int rng 12) (fun _ -> random_instr rng n))
      in
      let program =
        program_of
          [ ("init", 1, body ()); ("cycle", iters, body ()); ("tail", 1, body ()) ]
          n
      in
      let sym = Estimate.of_program program in
      let unrolled = Estimate.of_circuit (Cqasm.flatten program) in
      sym.Estimate.instructions = unrolled.Estimate.instructions
      && sym.Estimate.gates = unrolled.Estimate.gates
      && sym.Estimate.classes = unrolled.Estimate.classes
      && sym.Estimate.conditionals = unrolled.Estimate.conditionals
      && sym.Estimate.measurements = unrolled.Estimate.measurements
      && sym.Estimate.preps = unrolled.Estimate.preps
      && sym.Estimate.barriers = unrolled.Estimate.barriers
      && sym.Estimate.qubits_used = unrolled.Estimate.qubits_used
      && (not sym.Estimate.depth_exact)
         || sym.Estimate.depth = unrolled.Estimate.depth)

(* --- plan prediction = the planner's actual choice --- *)

let corpus () =
  let measured n base =
    Circuit.append base
      (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
  in
  [
    ("bell", measured 2 (Library.bell ()));
    ("ghz5", measured 5 (Library.ghz 5));
    ("teleport", Library.teleport ());
    ("teleport-clifford", Library.teleport ~prepare:Gate.H ());
    ("qft4", measured 4 (Library.qft 4));
    ( "random8x40",
      measured 8 (Library.random_circuit (Rng.create 303) ~qubits:8 ~gates:40)
    );
    ("qec-surface17-r2", Qca.Qec_run.cycle_circuit ~rounds:2 Code.surface_17);
  ]

let test_plan_prediction () =
  List.iter
    (fun (name, circuit) ->
      List.iter
        (fun shots ->
          let predicted = (Estimate.of_circuit ~shots circuit).Estimate.plan in
          let actual, _ = Engine.analyse ~shots circuit in
          Alcotest.(check string)
            (Printf.sprintf "%s @ %d shots" name shots)
            (Engine.plan_to_string actual)
            (Engine.plan_to_string predicted))
        [ 16; 1024; 100_000 ];
      let noisy = Estimate.of_circuit ~noisy:true circuit in
      Alcotest.(check string)
        (name ^ ": noise forces trajectories") "trajectory"
        (Engine.plan_to_string noisy.Estimate.plan))
    (corpus ())

let prop_plan_prediction_random =
  QCheck.Test.make ~name:"plan prediction = Engine.analyse (random)" ~count:100
    QCheck.(int_range 0 99_999)
    (fun seed ->
      let c = random_mixed_circuit seed in
      let shots = 1 + (seed mod 4096) in
      let predicted = (Estimate.of_circuit ~shots c).Estimate.plan in
      let actual, _ = Engine.analyse ~shots c in
      predicted = actual)

(* --- the acceptance benchmark: a million-round QEC program, symbolically --- *)

let test_symbolic_qec_million_rounds () =
  let rounds = 1_000_000 in
  let round = Qca.Qec_run.cycle_circuit ~rounds:1 Code.surface_17 in
  let program = program_of [ ("cycle", rounds, round) ] 17 in
  let t0 = Unix.gettimeofday () in
  let est = Estimate.of_program program in
  let elapsed = Unix.gettimeofday () -. t0 in
  let per_round = Estimate.of_circuit round in
  Alcotest.(check int)
    "instructions scale linearly"
    (rounds * per_round.Estimate.instructions)
    est.Estimate.instructions;
  Alcotest.(check int)
    "gates scale linearly"
    (rounds * per_round.Estimate.gates)
    est.Estimate.gates;
  Alcotest.(check int)
    "measurements scale linearly"
    (rounds * per_round.Estimate.measurements)
    est.Estimate.measurements;
  Alcotest.(check bool) "depth is exact" true est.Estimate.depth_exact;
  (* The depth recurrence is linear once the busy profile stabilises:
     flattening k and k+1 rounds pins the per-round increment the symbolic
     walk must reproduce at a million rounds. *)
  let depth_at k =
    Circuit.depth (Cqasm.flatten (program_of [ ("cycle", k, round) ] 17))
  in
  let d4 = depth_at 4 and d5 = depth_at 5 in
  Alcotest.(check int)
    "depth extrapolates the concrete recurrence"
    (d4 + ((rounds - 4) * (d5 - d4)))
    est.Estimate.depth;
  (* The point of the symbolic path: O(body), not O(body * rounds). The
     bound is generous (the acceptance target is 50ms) to stay robust on
     loaded CI machines. *)
  Alcotest.(check bool)
    (Printf.sprintf "estimated in %.1f ms" (elapsed *. 1e3))
    true (elapsed < 1.0)

(* --- the fault-tolerant projection --- *)

let test_ft_footprint_matches_code () =
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "rotated surface d=%d physical qubits" d)
        ((2 * d * d) - 1)
        (Code.physical_qubits (Code.rotated_surface d)))
    [ 3; 5 ];
  let ft =
    Error_budget.fault_tolerant ~target:1e-9 ~physical_error:1e-3
      ~logical_qubits:5 ~depth:100 ()
  in
  Alcotest.(check bool) "feasible at p=1e-3" true ft.Error_budget.feasible;
  Alcotest.(check int) "footprint = logical * (2d^2 - 1)"
    (5 * ((2 * ft.Error_budget.distance * ft.Error_budget.distance) - 1))
    ft.Error_budget.ft_physical_qubits;
  Alcotest.(check int) "cycles = depth * d"
    (100 * ft.Error_budget.distance)
    ft.Error_budget.cycles;
  Alcotest.(check bool) "meets the target" true
    (ft.Error_budget.logical_error <= 1e-9)

let test_ft_distance_monotone () =
  let distance target =
    (Error_budget.fault_tolerant ~target ~physical_error:1e-3
       ~logical_qubits:3 ~depth:50 ())
      .Error_budget.distance
  in
  let ds = List.map distance [ 1e-3; 1e-6; 1e-9; 1e-12 ] in
  Alcotest.(check bool)
    "tighter targets need larger distances" true
    (List.sort compare ds = ds);
  List.iter
    (fun d -> Alcotest.(check bool) "odd distance" true (d mod 2 = 1))
    ds

let test_ft_above_threshold_infeasible () =
  let ft =
    Error_budget.fault_tolerant ~target:1e-9 ~physical_error:0.02
      ~logical_qubits:1 ~depth:1 ()
  in
  Alcotest.(check bool) "above threshold: no distance helps" false
    ft.Error_budget.feasible

(* --- resource diagnostics --- *)

let test_check_memory_and_runtime () =
  (* 40 qubits with a T gate: no Clifford escape hatch, 2^40 amplitudes,
     16 TiB — the R03 admission wall. *)
  let big = Circuit.of_list 40 [ Gate.Unitary (Gate.T, [| 0 |]) ] in
  let est = Estimate.of_circuit big in
  let codes ds = List.map (fun d -> d.Qca_analysis.Diagnostic.code) ds in
  let ds = Estimate.check est in
  Alcotest.(check bool) "R03 fires" true (List.mem "R03" (codes ds));
  Alcotest.(check int) "R03 is an error" 2
    (Qca_analysis.Diagnostic.exit_code ds);
  let small = Estimate.of_circuit (Library.bell ()) in
  Alcotest.(check (list string)) "bell is clean" [] (codes (Estimate.check small))

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_estimate"
    [
      ( "abstract-interpretation",
        [
          qtest prop_counts_match_circuit;
          qtest prop_counts_match_engine;
          qtest prop_symbolic_equals_unrolled;
        ] );
      ( "plan-prediction",
        [
          Alcotest.test_case "corpus plans match the planner" `Quick
            test_plan_prediction;
          qtest prop_plan_prediction_random;
        ] );
      ( "symbolic-qec",
        [
          Alcotest.test_case "surface-17 at a million rounds" `Quick
            test_symbolic_qec_million_rounds;
        ] );
      ( "fault-tolerant",
        [
          Alcotest.test_case "footprint matches Qca_qec.Code" `Quick
            test_ft_footprint_matches_code;
          Alcotest.test_case "distance monotone in target" `Quick
            test_ft_distance_monotone;
          Alcotest.test_case "above threshold is infeasible" `Quick
            test_ft_above_threshold_infeasible;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "R03 memory wall" `Quick
            test_check_memory_and_runtime;
        ] );
    ]
