The static checker end to end (docs/analysis.md). A deliberately unhealthy
program trips six distinct check codes across all severities:

  $ cat > unhealthy.qasm <<'QASM'
  > version 1.0
  > qubits 4
  > 
  > .main
  >   prep_z q[0]
  >   h q[0]
  >   h q[0]
  >   rx q[1], nan
  >   measure q[1]
  >   x q[1]
  >   measure q[1]
  > 
  > .main
  >   x q[0]
  > QASM

  $ qxc check unhealthy.qasm
  error[C07 non-finite-angle] circuit[3]: rx has a non-finite rotation angle (nan) (fix: replace the angle with a finite value)
  warning[C03 use-after-measure] circuit[5]: x q[1] acts on qubit 1 after it was measured, without a reset (fix: insert 'prep_z q[1]' before reuse)
  hint[C04 measure-never-read] circuit[4]: result of measuring qubit 1 is overwritten at circuit[6] before being read (fix: drop this measurement or branch on b[1] before re-measuring)
  hint[C05 unused-qubit] circuit: 2 of 4 declared qubits never used: {2, 3} (fix: declare 'qubits 2' or use the idle qubits)
  hint[C06 redundant-pair] circuit[1]: adjacent self-inverse pair: h q[0] here and at circuit[2] cancel (fix: remove both gates)
  warning[P03 duplicate-kernel] .main: subcircuit name 'main' is declared more than once (fix: rename one of the subcircuits)
  unhealthy.qasm: 1 error, 2 warnings, 3 hints
  [2]

The same report as JSON (one object per diagnostic):

  $ qxc check unhealthy.qasm --json | tr ',' '\n' | grep -c '"code"'
  6

Warnings alone exit 1; a clean program exits 0:

  $ cat > warn.qasm <<'QASM'
  > version 1.0
  > qubits 1
  >   measure q[0]
  >   x q[0]
  > QASM

  $ qxc check warn.qasm
  warning[C03 use-after-measure] circuit[1]: x q[0] acts on qubit 0 after it was measured, without a reset (fix: insert 'prep_z q[0]' before reuse)
  warn.qasm: 0 errors, 1 warning, 0 hints
  [1]

  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > 
  > .bell
  >   prep_z q[0]
  >   prep_z q[1]
  >   h q[0]
  >   cnot q[0], q[1]
  >   measure q[0]
  >   measure q[1]
  > QASM

  $ qxc check bell.qasm
  bell.qasm: clean

With --platform the program is compiled under the pass-verifier: every
pass artifact is re-checked (platform conformance after mapping, schedule
exclusivity, eQASM timing windows) and a violating pass would be named:

  $ qxc check bell.qasm --platform superconducting
  pass input        clean
  pass pre-opt      clean
  pass decompose    clean
  pass map/route    clean
  pass expand-swaps clean
  pass optimize     clean
  pass schedule     clean
  pass eqasm        clean
  verifier: clean
  bell.qasm: clean

  $ qxc check bell.qasm --platform perfect --mode perfect --json | tr ',' '\n' | grep -c '"pass"'
  3

Unparseable input is itself a diagnostic (X01), not a crash:

  $ cat > broken.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > frobnicate q[0]
  > QASM

  $ qxc check broken.qasm
  error[X01 parse-error] broken.qasm: broken.qasm:3: parse error: unknown mnemonic 'frobnicate'
  broken.qasm: 1 error, 0 warnings, 0 hints
  [2]

run/compile take --lint (diagnostics on stderr; errors abort with exit 2
before any simulation):

  $ qxc run unhealthy.qasm --shots 10 --lint 2>/dev/null
  [2]

  $ qxc run bell.qasm --shots 10 --seed 7 --lint 2>/dev/null
  # 2 qubits, 6 instructions, 10 shots
  # plan: sampled (terminal unconditioned measurements)
  00       8  0.8000
  11       2  0.2000

  $ qxc compile bell.qasm --platform semiconducting --lint 2>lint.err >compile.out; echo exit=$?
  exit=0
  $ cat lint.err
  clean

The cQASM the compiler emits for a platform is itself diagnostic-clean at
error severity (hints about physical-level structure are acceptable):

  $ qxc compile bell.qasm --platform superconducting | sed -n '/^version/,$p' > physical.qasm
  $ qxc check physical.qasm; test $? -lt 2 && echo no-errors
  hint[C05 unused-qubit] circuit: 15 of 17 declared qubits never used: {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16} (fix: declare 'qubits 2' or use the idle qubits)
  physical.qasm: 0 errors, 0 warnings, 1 hint
  no-errors

So is the program the quickstart example prints (the paper's GHZ logic):

  $ ../../examples/quickstart.exe | awk '/^=== perfect/{exit} /^version/{on=1} on' > quickstart.qasm
  $ qxc check quickstart.qasm
  quickstart.qasm: clean
