The qxc CLI end to end. Create a Bell program:

  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > 
  > .entangle
  >   h q[0]
  >   cnot q[0], q[1]
  > 
  > .readout
  >   measure q[0]
  >   measure q[1]
  > QASM

Inspect it:

  $ qxc info bell.qasm
  name:          circuit
  qubits:        2
  instructions:  4
  gates:         2
  two-qubit:     1
  depth:         3
  qubits used:   0, 1

Run on perfect qubits (fixed seed, deterministic histogram). Terminal
measurements take the engine's single-pass sampled plan:

  $ qxc run bell.qasm --shots 1000 --seed 7
  # 2 qubits, 4 instructions, 1000 shots
  # plan: sampled (terminal unconditioned measurements)
  00     525  0.5250
  11     475  0.4750

Forcing the per-shot trajectory plan is still possible:

  $ qxc run bell.qasm --shots 1000 --seed 7 --trajectory | head -2
  # 2 qubits, 4 instructions, 1000 shots
  # plan: trajectory (trajectory plan forced by caller)

With depolarising noise, anticorrelated outcomes leak in (and the run
falls back to trajectories):

  $ qxc run bell.qasm --shots 1000 --seed 7 --noise 0.05 | head -2
  # 2 qubits, 4 instructions, 1000 shots
  # plan: trajectory (stochastic noise model)

  $ qxc run bell.qasm --shots 1000 --seed 7 --noise 0.05 | tail -n +3 | wc -l | tr -d ' '
  4

The per-run metrics report is available as JSON:

  $ qxc run bell.qasm --shots 1000 --seed 7 --metrics - | tail -1 | tr ',' '\n' | grep -E 'plan|shots|"h"|"cnot"|measurements'
  {"plan":"sampled"
  "plan_reason":"terminal unconditioned measurements"
  "shots":1000
  "measurements":2000
  "gate_applies":{"cnot":1
  "h":1}
  "faulted_shots":0
  "cnot":1
  "measurements":2
  "plan":"sampled"
  "plan_reason":"terminal unconditioned measurements"
  "shots":1000

Every counter family — fusion, fault/retry and the job-service cache —
rides under one stable "counters" object (schema in docs/engine.md):

  $ qxc run bell.qasm --shots 100 --seed 7 --metrics - | tail -1 | grep -o '"counters":{"fusion":{[^}]*},"resilience":{"faults":{[^}]*},[^}]*},"cache":{[^}]*}}'
  "counters":{"fusion":{"gates_in":2,"kernels":2,"fused_1q":0,"fused_diag":0},"resilience":{"faults":{},"retries":0,"faulted_shots":0,"backoff_ns":0,"degraded":null},"cache":{"hits":0,"shared":0}}

Fusion statistics (logical gates in vs kernel sweeps executed) ride in the
same report: a chain of diagonal gates coalesces into one sweep, and
--no-fusion turns the pass off (results are bit-identical either way):

  $ cat > tchain.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > t q[0]
  > t q[0]
  > cz q[0], q[1]
  > rz q[1], 0.5
  > h q[0]
  > measure q[0]
  > measure q[1]
  > QASM

  $ qxc run tchain.qasm --shots 100 --seed 2 --metrics - | tail -1 | tr ',' '\n' | grep -E 'fusion|kernels|fused'
  "counters":{"fusion":{"gates_in":5
  "kernels":2
  "fused_1q":0
  "fused_diag":1}

  $ qxc run tchain.qasm --no-fusion --shots 100 --seed 2 --metrics - | tail -1 | tr ',' '\n' | grep -E 'fusion|kernels|fused'
  "counters":{"fusion":{"gates_in":5
  "kernels":5
  "fused_1q":0
  "fused_diag":0}

  $ qxc run tchain.qasm --shots 100 --seed 2 | tail -n +3 > fused.out
  $ qxc run tchain.qasm --no-fusion --shots 100 --seed 2 | tail -n +3 > unfused.out
  $ diff fused.out unfused.out

Compile for the superconducting platform:

  $ qxc compile bell.qasm --platform superconducting | head -9
  compile circuit on superconducting-17 (realistic mode)
  pass              gates       2q    depth  notes
  input                 2        1        3  
  pre-opt               2        1        3  cancelled=0 merged=0 dropped=0 conj=0 euler=0 blocks=0
  decompose             7        1        6  
  map/route             7        1        6  swaps=0
  expand-swaps          7        1        6  
  optimize              7        1        6  cancelled=0 merged=0 dropped=0 conj=0 euler=0 blocks=0
  schedule: makespan=21 cycles, parallelism=1.81, peak=2

Emit eQASM (mask registers get allocated):

  $ qxc compile bell.qasm --platform superconducting --eqasm | grep -c 'SMIS\|SMIT'
  3

Execute through the cycle-accurate micro-architecture:

  $ qxc exec bell.qasm --shots 50 --seed 3 | head -1
  # microarch: 6 bundles, 10 micro-ops, 420 ns, peak queue 1, 0 violations

A QISA program with run-time control (repeat until success):

  $ cat > rus.qisa <<'QISA'
  > LDI r0, 0
  > LDI r1, 1
  > SMIS s0, {0}
  > try:
  > ADD r0, r0, r1
  > 1: prepz s0
  > 1: y90 s0
  > 1: measz s0
  > FMR r2, q0
  > CMP r2, r1
  > BR.ne try
  > HALT
  > QISA

  $ qxc qisa rus.qisa --qubits 1 --shots 20 --seed 5 | head -2
  # 28 classical instructions retired (last run)
  # register file r0..r7 -> count

Fault injection is off by default; attaching an injector surfaces the
resilience counters (same seed, same histogram — the injector has its own
RNG stream and transient faults are retried):

  $ qxc run bell.qasm --shots 1000 --seed 7 --fault-rate 0.002 | head -4
  # 2 qubits, 4 instructions, 1000 shots
  # plan: sampled (terminal unconditioned measurements)
  # resilience: 2 fault fires, 2 retries, 0 faulted shots, backoff 200 ns
  00     525  0.5250

  $ qxc exec bell.qasm --shots 50 --seed 3 --fault-rate 0.01 | head -2
  # microarch: 6 bundles, 10 micro-ops, 420 ns, peak queue 1, 0 violations
  # resilience: 27 fault fires, 27 retries, 0 faulted shots, backoff 3700 ns

Structured errors escaping a subcommand become a one-line diagnostic with
a distinct exit code, not a backtrace:

  $ cat > loop.qisa <<'QISA'
  > LDI r0, 0
  > loop:
  > ADD r0, r0, r0
  > BR.always loop
  > HALT
  > QISA

  $ qxc qisa loop.qisa --qubits 1 --shots 1 --seed 5
  qxc: error: Qisa.execute: did not converge: step budget exceeded [program=loop.qisa max_steps=100000]
  [2]

Parse errors carry line numbers:

  $ cat > bad.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > frobnicate q[0]
  > QASM

  $ qxc run bad.qasm
  bad.qasm:3: parse error: unknown mnemonic 'frobnicate'
  [1]

Every fixture in this suite goes through the static checker (see
docs/analysis.md and test/lint.t for the full catalogue). The shipped
programs are clean; the unparseable one is reported as X01:

  $ qxc check bell.qasm
  bell.qasm: clean

  $ qxc check tchain.qasm
  tchain.qasm: clean

  $ qxc check bell.qasm --platform superconducting | tail -2
  verifier: clean
  bell.qasm: clean

  $ qxc check bad.qasm; echo "exit=$?"
  error[X01 parse-error] bad.qasm: bad.qasm:3: parse error: unknown mnemonic 'frobnicate'
  bad.qasm: 1 error, 0 warnings, 0 hints
  exit=2

Tracing: bare --trace prints a per-layer span tree (after the results) plus
counters. Wall-clock times vary run to run, so strip them; the span names,
attributes, counters and simulated-ns are deterministic for a fixed seed:

  $ qxc run bell.qasm --shots 1000 --seed 7 --trace | sed -E 's/ \[[0-9.]+ms\]$//'
  # 2 qubits, 4 instructions, 1000 shots
  # plan: sampled (terminal unconditioned measurements)
  00     525  0.5250
  11     475  0.4750
  - engine.run plan=sampled shots=1000 qubits=2 instructions=4
    - engine.analyse plan=sampled reason=terminal unconditioned measurements
    - engine.fuse fusion=true gates_in=2 kernels=2 fused_1q=0 fused_diag=0
    - engine.simulate gate_applies=2
    - engine.sample shots=1000
  counters:
    qx.apply.cnot 1
    qx.apply.h 1
    qx.fusion.gates_in 2
    qx.fusion.kernels 2
    qx.measure 2000

Through the micro-architecture the same flag shows every layer: compiler
passes with gate-count deltas, then one (collapsed) session per shot with
pulse-level counters:

  $ qxc exec bell.qasm --shots 20 --seed 3 --trace | sed -E 's/ \[[0-9.]+ms\]$//'
  # microarch: 6 bundles, 10 micro-ops, 420 ns, peak queue 1, 0 violations
  ---------------11      10
  ---------------00       9
  ---------------01       1
  - compiler.compile platform=superconducting-17 mode=real
    - compiler.pre-opt gates_in=2 gates_out=2 cancelled=0 merged=0 conjugated=0 euler=0 blocks=0 rounds=0
    - compiler.decompose gates_in=2 gates_out=7 two_qubit=1 depth=6
    - compiler.map gates_in=7 gates_out=7 swaps=0
    - compiler.expand-swaps gates_in=7 gates_out=7 two_qubit=1 depth=6
    - compiler.optimize gates_in=7 gates_out=7 cancelled=0 merged=0 conjugated=0 euler=0 blocks=0 rounds=0
    - compiler.schedule makespan_cycles=21
    - compiler.eqasm bundles=6 quantum_ops=9 duration_ns=420
  - microarch.run_shots technology=superconducting shots=20 qubits=17
    - microarch.session x20 bundles=120 micro_ops=200 phase_updates=60 peak_queue=20 timing_violations=0 sim=8400ns
  counters:
    microarch.bundle 120
    microarch.micro_op 200
    microarch.phase_update 60
    microarch.pulse 140

--trace=FILE writes Chrome trace_event JSON (load in chrome://tracing or
Perfetto) without disturbing the normal output or the histogram:

  $ qxc run bell.qasm --shots 1000 --seed 7 --trace=bell_trace.json
  # 2 qubits, 4 instructions, 1000 shots
  # plan: sampled (terminal unconditioned measurements)
  00     525  0.5250
  11     475  0.4750

  $ head -c 15 bell_trace.json; echo
  {"traceEvents":

  $ grep -c '"ph":"X"' bell_trace.json
  5

  $ grep -c '"ph":"C"' bell_trace.json
  5
