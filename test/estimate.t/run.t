The static resource estimator: gate classes, depth, predicted plan and
simulation cost without running anything, a fault-tolerant projection,
and the admission oracle that guards the daemon (docs/estimate.md).

  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > h q[0]
  > cnot q[0], q[1]
  > measure q[0]
  > measure q[1]
  > QASM

The text report:

  $ qxc estimate bell.qasm --shots 100
  qubits:             2 (2 used)
  instructions:       4
  gates:              2
    t:                0
    toffoli:          0
    2q clifford:      1
    1q clifford:      1
    rotations:        0
  conditionals:       0
  measurements:       2
  preps:              0
  depth:              3
  clifford fraction:  100.0%
  plan:               sampled (terminal unconditioned measurements)
  shots:              100
  state memory:       64 B
  est sim time:       5.10 us
  fault-tolerant:    rotated-surface d=17: 2 logical -> 1154 physical qubits, 51 cycles (5.1e+04 ns), p_L 6e-10 (target 1e-09 at p=0.001)
  bell.qasm: clean

The same report as one JSON document:

  $ qxc estimate bell.qasm --shots 100 --json
  {"file":"bell.qasm","estimate":{"qubits":2,"qubits_used":2,"instructions":4,"gates":2,"classes":{"t":0,"toffoli":0,"cnot":1,"clifford_1q":1,"rotations":0},"conditionals":0,"measurements":2,"preps":0,"barriers":0,"depth":3,"depth_exact":true,"clifford_fraction":1,"plan":"sampled","plan_reason":"terminal unconditioned measurements","shots":100,"amplitudes":4,"state_bytes":64,"sim_ns":5104},"ft":{"code":"rotated-surface","distance":17,"logical_qubits":2,"physical_qubits":1154,"cycles":51,"runtime_ns":51000,"logical_error":6e-10,"target":1e-09,"physical_error":0.001,"feasible":true},"diagnostics":[],"summary":"clean"}

A million-round surface-code memory experiment is costed symbolically —
counts scale linearly, the depth walk extrapolates the per-round shift,
and the whole estimate is O(body), not O(body * rounds):

  $ cat > surface.qasm <<'QASM'
  > version 1.0
  > qubits 17
  > .init
  > prep_z q[0]
  > .cycle(1000000)
  > h q[1]
  > cnot q[1], q[0]
  > cnot q[1], q[2]
  > h q[1]
  > measure q[1]
  > QASM

  $ qxc estimate surface.qasm | head -3
  qubits:             17 (3 used)
  instructions:       5000001
  gates:              4000000
  $ qxc estimate surface.qasm --json | grep -o '"depth":5000000,"depth_exact":true'
  "depth":5000000,"depth_exact":true

The diagnostic exit ladder matches qxc check: a 40-qubit non-Clifford
program needs a 16 TiB state vector, which trips the R03 memory wall
(error, exit 2):

  $ cat > wide.qasm <<'QASM'
  > version 1.0
  > qubits 40
  > t q[0]
  > measure q[0]
  > QASM

  $ qxc estimate wide.qasm
  qubits:             40 (1 used)
  instructions:       2
  gates:              1
    t:                1
    toffoli:          0
    2q clifford:      0
    1q clifford:      0
    rotations:        0
  conditionals:       0
  measurements:       1
  preps:              0
  depth:              2
  clifford fraction:  0.0%
  plan:               sampled (terminal unconditioned measurements)
  shots:              1024
  state memory:       16384.0 GiB
  est sim time:       15393.16 s
  fault-tolerant:    rotated-surface d=17: 1 logical -> 577 physical qubits, 34 cycles (3.4e+04 ns), p_L 2e-10 (target 1e-09 at p=0.001)
  error[R03 estimated-memory] estimate: estimated sampled plan needs 16384.0 GiB of state but the host budget is 8.0 GiB (fix: reduce the register below 30 qubits (or keep the circuit all-Clifford for the tableau plan))
  warning[R04 estimated-runtime] estimate: estimated simulation time 15393.16 s exceeds the 60.00 s budget (fix: reduce shots or gate count)
  wide.qasm: 1 error, 1 warning, 0 hints
  [2]

qxc check appends the same resource diagnostics to its source findings:

  $ qxc check wide.qasm
  hint[C05 unused-qubit] circuit: 39 of 40 declared qubits never used: {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39} (fix: declare 'qubits 1' or use the idle qubits)
  error[R03 estimated-memory] estimate: estimated sampled plan needs 16384.0 GiB of state but the host budget is 8.0 GiB (fix: reduce the register below 30 qubits (or keep the circuit all-Clifford for the tableau plan))
  warning[R04 estimated-runtime] estimate: estimated simulation time 15393.16 s exceeds the 60.00 s budget (fix: reduce shots or gate count)
  wide.qasm: 1 error, 1 warning, 1 hint
  [2]

Bad flag values are diagnostics too (X02), so --json emits exactly one
JSON document on every exit path:

  $ qxc estimate bell.qasm --platform nope --json
  {"file":"bell.qasm","estimate":null,"ft":null,"diagnostics":[{"severity":"error","code":"X02","check":"invalid-flag","site":"bell.qasm","message":"unknown platform 'nope'"}],"summary":"1 error, 0 warnings, 0 hints"}
  [2]
  $ qxc check bell.qasm --platform nope --json
  {"file":"bell.qasm","diagnostics":[{"severity":"error","code":"X02","check":"invalid-flag","site":"bell.qasm","message":"unknown platform 'nope'"}],"passes":[],"summary":"1 error, 0 warnings, 0 hints"}
  [2]

The daemon runs the estimate oracle on every inbox entry before claiming
it: the infeasible job is rejected with a durable result and never
occupies a worker, while the feasible one runs normally.

  $ qxc submit wide.qasm --spool spool --tenant alice --seed 1
  submitted 000001
  $ qxc submit bell.qasm --spool spool --tenant alice --seed 2 --shots 100
  submitted 000002

  $ qxd serve --spool spool --once --verbose --max-bytes 1000000 --stats
  qxd: rejected 000001 pre-claim (alice): resource-exceeded
  qxd: admitted 000002 (alice, 100 shots)
  qxd: published 000002
  {"service":{"submitted":2,"accepted":1,"completed":1,"failed":0,"deadline_exceeded":0,"cancelled":0,"rejected":1,"rejected_estimate":1,"degraded":0,"cache_hits":0,"shared_analyses":0,"slices":1,"tenants":{"alice":1}}}

The rejection is a structured result the client can read back:

  $ qxc status 000001 --spool spool | grep -o '"status":"rejected","error":{"kind":"resource-exceeded"'
  "status":"rejected","error":{"kind":"resource-exceeded"

  $ qxc status 000002 --spool spool | grep -o '"status":"done"'
  "status":"done"

Nothing is left queued or journaled — the rejected job was consumed
without ever being claimed:

  $ qxc status --spool spool --json | grep -o '"inbox":0,"active":0'
  "inbox":0,"active":0
