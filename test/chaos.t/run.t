Deterministic chaos harness for the crash-safe daemon (docs/resilience.md):
QCA_CRASH_AT=site:k aborts the qxd process (exit 70) at the k-th hit of a
named kill point. We crash the daemon at every lifecycle site, restart it,
and assert that every job reaches exactly one terminal state with
histograms bit-identical to an uncrashed baseline.

  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > h q[0]
  > cnot q[0], q[1]
  > measure q[0]
  > measure q[1]
  > QASM

The uncrashed baseline: two seeded jobs, one clean drain.

  $ qxc submit bell.qasm --spool base --tenant alice --shots 400 --seed 7
  submitted 000001
  $ qxc submit bell.qasm --spool base --tenant bob --shots 400 --seed 8
  submitted 000002
  $ qxd serve --spool base --once
  $ qxc status 000001 --spool base | grep -o '"histogram":{[^}]*}'
  "histogram":{"00":203,"11":197}
  $ qxc status 000002 --spool base | grep -o '"histogram":{[^}]*}'
  "histogram":{"11":209,"00":191}

Crash at every kill point, then restart cleanly. Whatever the site —
before the claim rename, after the journal write, mid-execution, or on
either side of the result write — the restarted daemon recovers the
journal and finishes the work: 2 results, 0 journal entries, 0 poison
files, and the exact baseline histograms.

  $ for site in claim-pre claim-post slice publish-pre publish-post; do
  >   qxc submit bell.qasm --spool chaos-$site --tenant alice --shots 400 --seed 7 >/dev/null
  >   qxc submit bell.qasm --spool chaos-$site --tenant bob --shots 400 --seed 8 >/dev/null
  >   QCA_CRASH_AT=$site:1 qxd serve --spool chaos-$site --once 2>/dev/null
  >   code=$?
  >   qxd serve --spool chaos-$site --once
  >   echo "$site: crash=$code results=$(ls chaos-$site/results | wc -l) active=$(ls chaos-$site/active | wc -l) failed=$(ls chaos-$site/failed | wc -l)"
  >   echo "  000001 $(qxc status 000001 --spool chaos-$site | grep -o '"histogram":{[^}]*}')"
  >   echo "  000002 $(qxc status 000002 --spool chaos-$site | grep -o '"histogram":{[^}]*}')"
  > done
  claim-pre: crash=70 results=2 active=0 failed=0
    000001 "histogram":{"00":203,"11":197}
    000002 "histogram":{"11":209,"00":191}
  claim-post: crash=70 results=2 active=0 failed=0
    000001 "histogram":{"00":203,"11":197}
    000002 "histogram":{"11":209,"00":191}
  slice: crash=70 results=2 active=0 failed=0
    000001 "histogram":{"00":203,"11":197}
    000002 "histogram":{"11":209,"00":191}
  publish-pre: crash=70 results=2 active=0 failed=0
    000001 "histogram":{"00":203,"11":197}
    000002 "histogram":{"11":209,"00":191}
  publish-post: crash=70 results=2 active=0 failed=0
    000001 "histogram":{"00":203,"11":197}
    000002 "histogram":{"11":209,"00":191}

A job that crashes the daemon on every attempt is poison. With
--max-attempts 2 the first crash consumes attempt 1, the recovery replay
consumes attempt 2, and the next recovery retires the job to failed/ with
a structured crash-loop result instead of crash-looping forever.

  $ qxc submit bell.qasm --spool poison --tenant alice --shots 400 --seed 7
  submitted 000001
  $ QCA_CRASH_AT=slice:1 qxd serve --spool poison --once --max-attempts 2 2>/dev/null
  [70]

Between crashes the heartbeat file pins the blast radius: the dead
daemon's pid and the journaled job are visible to the operator.

  $ qxc status --spool poison | sed 's/pid [0-9]*/pid PID/'
  daemon: pid PID starting (dead)
  inbox:  0 queued, active: 1 journaled
  $ qxc status 000001 --spool poison | sed 's/pid [0-9]*/pid PID/'
  000001 running (attempt 1, pid PID)

  $ QCA_CRASH_AT=slice:1 qxd serve --spool poison --once --max-attempts 2 2>/dev/null
  [70]

A stale staging file (a submitter that died mid-write) is swept at
startup; the clean restart then retires the poison job.

  $ touch poison/tmp/stale-0042.job
  $ qxd serve --spool poison --once --max-attempts 2 --verbose
  qxd: swept 1 stale tmp file(s)
  qxd: retiring poison job 000001 after 2 attempts

  $ qxc status 000001 --spool poison | grep -o '"status":"[a-z]*"\|"kind":"[a-z-]*"'
  "status":"failed"
  "kind":"crash-loop"
  $ ls poison/failed
  000001.job

A cancel marker that lands after the claim but before execution still
wins: the claimed job is published as cancelled, the journal entry and
the consumed marker are both cleaned up.

  $ qxc submit bell.qasm --spool race --tenant alice --shots 400 --seed 7
  submitted 000001
  $ QCA_CRASH_AT=slice:1 qxd serve --spool race --once 2>/dev/null
  [70]
  $ qxc cancel 000001 --spool race
  cancel requested for 000001
  $ qxd serve --spool race --once
  $ qxc status 000001 --spool race | grep -o '"status":"cancelled"'
  "status":"cancelled"
  $ echo "active=$(ls race/active | wc -l) cancel=$(ls race/cancel | wc -l)"
  active=0 cancel=0
