(* Tests for the multi-tenant job service: bit-identity of sliced/batched
   execution, the result cache, quotas, weighted fairness, backpressure
   degradation, cancellation, and the qxc<->qxd spool protocol. *)

module Service = Qca_service.Service
module Spool = Qca_service.Spool
module Job_spec = Qca.Job_spec
module Runner = Qca.Runner
module Engine = Qca_qx.Engine
module Circuit = Qca_circuit.Circuit
module Gate = Qca_circuit.Gate
module Library = Qca_circuit.Library
module Error = Qca_util.Error
module Fault = Qca_util.Fault

let measured_all n base =
  Circuit.append base
    (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

let bell () = measured_all 2 (Library.bell ())
let ghz n = measured_all n (Library.ghz n)

(* Histograms compared as canonical (key-sorted) multisets: the service
   merges slice histograms through its own table, so count-tied keys may
   legally order differently than a single engine run. *)
let canon h = List.sort compare h

let total h = List.fold_left (fun acc (_, c) -> acc + c) 0 h

let spec ?(shots = 1000) ?seed ?noise ?(trajectory = false) ?deadline_ms circuit
    =
  let base = Job_spec.of_circuit circuit in
  {
    base with
    Job_spec.shots;
    seed;
    noise;
    plan = (if trajectory then Some Qca_qx.Engine.Trajectory else None);
    deadline_ms;
  }

let submit_ok svc ~tenant s =
  match Service.submit svc ~tenant s with
  | Ok h -> h
  | Error e -> Alcotest.failf "submit failed: %s" (Error.to_string e)

let await_ok svc h =
  match Service.await svc h with
  | Ok o -> o
  | Error e -> Alcotest.failf "await failed: %s" (Error.to_string e)

let hist_testable = Alcotest.(list (pair string int))

(* --- bit-identity of the service execution paths --- *)

let test_batched_bit_identity () =
  (* slice_shots 64 over 1000 shots: the job crosses ~16 scheduler slices,
     sampling from a shared distribution with its own threaded RNG. *)
  let config = { Service.default_config with Service.slice_shots = 64 } in
  let svc = Service.create ~config () in
  let h = submit_ok svc ~tenant:"alice" (spec ~seed:7 (bell ())) in
  let o = await_ok svc h in
  let direct = Engine.run ~seed:7 ~shots:1000 (bell ()) in
  Alcotest.check hist_testable "sliced sampling == one engine run"
    (canon direct.Engine.histogram)
    (canon o.Runner.histogram);
  Alcotest.(check int) "report shots" 1000 o.Runner.report.Engine.shots

let test_trajectory_bit_identity () =
  let config = { Service.default_config with Service.slice_shots = 16 } in
  let svc = Service.create ~config () in
  let h =
    submit_ok svc ~tenant:"alice" (spec ~shots:100 ~seed:11 ~trajectory:true (bell ()))
  in
  let o = await_ok svc h in
  let direct =
    Engine.run ~seed:11 ~plan:Engine.Trajectory ~shots:100 (bell ())
  in
  Alcotest.check hist_testable "sliced trajectories == one engine run"
    (canon direct.Engine.histogram)
    (canon o.Runner.histogram);
  Alcotest.(check int) "merged report shots" 100 o.Runner.report.Engine.shots

let test_noisy_bit_identity () =
  let config = { Service.default_config with Service.slice_shots = 32 } in
  let svc = Service.create ~config () in
  let h =
    submit_ok svc ~tenant:"alice" (spec ~shots:100 ~seed:3 ~noise:0.05 (bell ()))
  in
  let o = await_ok svc h in
  let direct =
    Engine.run ~noise:(Qca_qx.Noise.depolarizing 0.05) ~seed:3 ~shots:100
      (bell ())
  in
  Alcotest.check hist_testable "sliced noisy run == one engine run"
    (canon direct.Engine.histogram)
    (canon o.Runner.histogram)

(* --- result cache and cross-request shot batching --- *)

let test_cache_hit () =
  let svc = Service.create () in
  let s = spec ~seed:5 (bell ()) in
  let o1 = await_ok svc (submit_ok svc ~tenant:"alice" s) in
  let o2 = await_ok svc (submit_ok svc ~tenant:"bob" s) in
  Alcotest.check hist_testable "identical histograms"
    (canon o1.Runner.histogram) (canon o2.Runner.histogram);
  Alcotest.(check int) "first run is not a hit" 0
    o1.Runner.report.Engine.cache.Engine.cache_hits;
  Alcotest.(check int) "second run served from cache" 1
    o2.Runner.report.Engine.cache.Engine.cache_hits;
  Alcotest.(check int) "stats count the hit" 1 (Service.stats svc).Service.cache_hits

let test_cache_seed_miss () =
  let svc = Service.create () in
  let _ = await_ok svc (submit_ok svc ~tenant:"alice" (spec ~seed:5 (bell ()))) in
  let _ = await_ok svc (submit_ok svc ~tenant:"alice" (spec ~seed:6 (bell ()))) in
  Alcotest.(check int) "different seed misses" 0
    (Service.stats svc).Service.cache_hits

let test_unseeded_not_cached () =
  let svc = Service.create () in
  let _ = await_ok svc (submit_ok svc ~tenant:"alice" (spec (bell ()))) in
  let _ = await_ok svc (submit_ok svc ~tenant:"alice" (spec (bell ()))) in
  Alcotest.(check int) "unseeded jobs never hit the cache" 0
    (Service.stats svc).Service.cache_hits

let test_shared_distribution () =
  let svc = Service.create () in
  let h1 = submit_ok svc ~tenant:"alice" (spec ~seed:1 (ghz 4)) in
  let h2 = submit_ok svc ~tenant:"bob" (spec ~seed:2 (ghz 4)) in
  let o1 = await_ok svc h1 and o2 = await_ok svc h2 in
  Alcotest.(check int) "one analysis shared" 1
    (Service.stats svc).Service.shared_analyses;
  (* Sharing the distribution must not perturb either job's results. *)
  let d1 = Engine.run ~seed:1 ~shots:1000 (ghz 4) in
  let d2 = Engine.run ~seed:2 ~shots:1000 (ghz 4) in
  Alcotest.check hist_testable "job 1 bit-identical"
    (canon d1.Engine.histogram) (canon o1.Runner.histogram);
  Alcotest.check hist_testable "job 2 bit-identical"
    (canon d2.Engine.histogram) (canon o2.Runner.histogram);
  Alcotest.(check int) "share recorded in the report" 1
    o2.Runner.report.Engine.cache.Engine.cache_shared

(* --- quotas and backpressure --- *)

let test_tenant_quota () =
  let config =
    {
      Service.default_config with
      Service.default_quota =
        { Service.default_quota with Service.max_queued = 2 };
    }
  in
  let svc = Service.create ~config () in
  let _ = submit_ok svc ~tenant:"greedy" (spec ~seed:1 (bell ())) in
  let _ = submit_ok svc ~tenant:"greedy" (spec ~seed:2 (bell ())) in
  (match Service.submit svc ~tenant:"greedy" (spec ~seed:3 (bell ())) with
  | Ok _ -> Alcotest.fail "third job should exceed the quota"
  | Error e -> (
      match e.Error.kind with
      | Error.Quota_exceeded { tenant; queued; limit } ->
          Alcotest.(check string) "tenant named" "greedy" tenant;
          Alcotest.(check int) "queued" 2 queued;
          Alcotest.(check int) "limit" 2 limit
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  (* Another tenant is unaffected. *)
  let _ = submit_ok svc ~tenant:"polite" (spec ~seed:4 (bell ())) in
  Alcotest.(check int) "one rejection" 1 (Service.stats svc).Service.rejected

let test_overload_ladder () =
  (* degrade_above 2, max_queue 4: jobs 3 and 4 are admitted degraded
     (shot cap), job 5 is rejected with a structured Overloaded error —
     degraded-then-rejected, never a crash. *)
  let config =
    {
      Service.default_config with
      Service.max_queue = 4;
      degrade_above = 2;
      degraded_shot_cap = 50;
    }
  in
  let svc = Service.create ~config () in
  let handles =
    List.map
      (fun seed -> submit_ok svc ~tenant:"flood" (spec ~seed (bell ())))
      [ 1; 2; 3; 4 ]
  in
  (match Service.submit svc ~tenant:"flood" (spec ~seed:5 (bell ())) with
  | Ok _ -> Alcotest.fail "fifth job should be rejected"
  | Error e -> (
      match e.Error.kind with
      | Error.Overloaded { queued; capacity } ->
          Alcotest.(check int) "queued" 4 queued;
          Alcotest.(check int) "capacity" 4 capacity;
          Alcotest.(check bool) "overload is transient" true e.Error.transient
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  let outcomes = List.map (await_ok svc) handles in
  let degraded =
    List.filter
      (fun o ->
        o.Runner.report.Engine.resilience.Engine.degraded <> None)
      outcomes
  in
  Alcotest.(check int) "two jobs admitted degraded" 2 (List.length degraded);
  List.iter
    (fun o ->
      Alcotest.(check int) "degraded job ran capped shots" 50
        (total o.Runner.histogram))
    degraded;
  let s = Service.stats svc in
  Alcotest.(check int) "stats.degraded" 2 s.Service.degraded;
  Alcotest.(check int) "stats.rejected" 1 s.Service.rejected

(* --- the static-estimate admission oracle (docs/estimate.md) --- *)

(* 20 qubits with a T gate: non-Clifford, so the state vector is the only
   backend and the estimate is 2^20 * 16 bytes — over a 1 MB cap. *)
let wide_t () =
  measured_all 20
    (Circuit.of_list 20 [ Gate.Unitary (Gate.T, [| 0 |]) ])

let test_admission_memory_rejection () =
  let config =
    { Service.default_config with Service.admission_max_bytes = 1e6 }
  in
  let svc = Service.create ~config () in
  (match Service.submit svc ~tenant:"alice" (spec ~seed:1 (wide_t ())) with
  | Ok _ -> Alcotest.fail "oversized job should be rejected pre-admission"
  | Error e -> (
      match e.Error.kind with
      | Error.Resource_exceeded { resource; needed; limit } ->
          Alcotest.(check string) "resource named" "memory-bytes" resource;
          Alcotest.(check bool) "needed over limit" true (needed > limit);
          Alcotest.(check bool) "estimate rejection is terminal" false
            e.Error.transient
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  (* A small job on the same service is untouched. *)
  let h = submit_ok svc ~tenant:"alice" (spec ~seed:2 (bell ())) in
  let _ = await_ok svc h in
  let s = Service.stats svc in
  Alcotest.(check int) "stats.rejected" 1 s.Service.rejected;
  Alcotest.(check int) "stats.rejected_estimate" 1 s.Service.rejected_estimate;
  Alcotest.(check int) "stats.completed" 1 s.Service.completed

let test_admission_time_degrade () =
  (* A direct job whose full shot budget blows the time cap is degraded —
     shots capped to fit — rather than rejected; the note rides the same
     resilience field as the backpressure ladder. *)
  let c = bell () in
  let per_shot_ns =
    match Job_spec.estimate (spec ~shots:1 ~seed:1 ~trajectory:true c) with
    | Ok est -> est.Qca_analysis.Estimate.sim_ns
    | Error e -> Alcotest.failf "estimate failed: %s" (Error.to_string e)
  in
  let config =
    {
      Service.default_config with
      Service.admission_max_ns = per_shot_ns *. 10.5;
    }
  in
  let svc = Service.create ~config () in
  let h =
    submit_ok svc ~tenant:"alice"
      (spec ~shots:1000 ~seed:1 ~trajectory:true c)
  in
  let o = await_ok svc h in
  (match o.Runner.report.Engine.resilience.Engine.degraded with
  | Some note ->
      Alcotest.(check bool) "note names the admission estimate" true
        (String.length note >= 18
        && String.sub note 0 18 = "admission estimate")
  | None -> Alcotest.fail "time-capped job should carry a degradation note");
  Alcotest.(check bool) "shots were capped" true (total o.Runner.histogram < 1000);
  let s = Service.stats svc in
  Alcotest.(check int) "stats.degraded" 1 s.Service.degraded;
  Alcotest.(check int) "stats.rejected_estimate" 0 s.Service.rejected_estimate

let test_preflight_accounting () =
  let config =
    { Service.default_config with Service.admission_max_bytes = 1e6 }
  in
  let svc = Service.create ~config () in
  (* Ok performs no accounting: the later submit owns the counters. *)
  (match Service.preflight svc (spec ~seed:1 (bell ())) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "small job failed preflight: %s" (Error.to_string e));
  Alcotest.(check int) "ok preflight is unaccounted" 0
    (Service.stats svc).Service.submitted;
  (* An Error is accounted exactly as a rejected submission. *)
  (match Service.preflight svc (spec ~seed:2 (wide_t ())) with
  | Ok () -> Alcotest.fail "oversized job should fail preflight"
  | Error e -> (
      match e.Error.kind with
      | Error.Resource_exceeded _ -> ()
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  let s = Service.stats svc in
  Alcotest.(check int) "submitted" 1 s.Service.submitted;
  Alcotest.(check int) "rejected" 1 s.Service.rejected;
  Alcotest.(check int) "rejected_estimate" 1 s.Service.rejected_estimate

(* --- cancellation --- *)

let test_cancel_while_queued () =
  let svc = Service.create () in
  let h1 = submit_ok svc ~tenant:"alice" (spec ~seed:1 (bell ())) in
  let h2 = submit_ok svc ~tenant:"alice" (spec ~seed:2 (bell ())) in
  Alcotest.(check bool) "cancel queued job" true (Service.cancel svc h2);
  (match Service.await svc h2 with
  | Ok _ -> Alcotest.fail "cancelled job must not complete"
  | Error e -> (
      match e.Error.kind with
      | Error.Cancelled _ -> ()
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  let _ = await_ok svc h1 in
  Alcotest.(check bool) "double cancel is a no-op" false (Service.cancel svc h2);
  Alcotest.(check int) "stats.cancelled" 1 (Service.stats svc).Service.cancelled

let test_cancel_while_running () =
  let config = { Service.default_config with Service.slice_shots = 64 } in
  let svc = Service.create ~config () in
  let h = submit_ok svc ~tenant:"alice" (spec ~seed:1 (bell ())) in
  ignore (Service.step svc);
  (match Service.poll svc h with
  | Service.Running { done_shots; total_shots } ->
      Alcotest.(check bool) "made partial progress" true
        (done_shots > 0 && done_shots < total_shots)
  | _ -> Alcotest.fail "job should be mid-flight after one step");
  Alcotest.(check bool) "cancel running job" true (Service.cancel svc h);
  (match Service.poll svc h with
  | Service.Cancelled -> ()
  | _ -> Alcotest.fail "job should report cancelled");
  Service.drain svc;
  Alcotest.(check int) "no completion recorded" 0
    (Service.stats svc).Service.completed

let test_cancel_completed_fails () =
  let svc = Service.create () in
  let h = submit_ok svc ~tenant:"alice" (spec ~seed:1 (bell ())) in
  let _ = await_ok svc h in
  Alcotest.(check bool) "too late to cancel" false (Service.cancel svc h)

(* --- fairness --- *)

let test_weighted_fairness () =
  (* heavy (weight 3) and light (weight 1) each submit one 16-slice job;
     WFQ must complete heavy's job well before light's. *)
  let config =
    {
      Service.default_config with
      Service.slice_shots = 64;
      workers = 1;
      quotas =
        [
          ("heavy", { Service.default_quota with Service.weight = 3.0 });
          ("light", Service.default_quota);
        ];
    }
  in
  let svc = Service.create ~config () in
  let hh = submit_ok svc ~tenant:"heavy" (spec ~seed:1 ~shots:1024 (bell ())) in
  let hl = submit_ok svc ~tenant:"light" (spec ~seed:2 ~shots:1024 (bell ())) in
  let _ = await_ok svc hh and _ = await_ok svc hl in
  let log = Service.execution_log svc in
  let last_index tenant =
    List.mapi (fun i (t, _) -> (i, t)) log
    |> List.filter (fun (_, t) -> t = tenant)
    |> List.map fst |> List.fold_left max 0
  in
  Alcotest.(check bool) "heavy tenant finishes first" true
    (last_index "heavy" < last_index "light");
  let heavy_early =
    List.filteri (fun i _ -> i < 8) log
    |> List.filter (fun (t, _) -> t = "heavy")
    |> List.length
  in
  Alcotest.(check bool) "heavy gets the 3:1 share early" true (heavy_early >= 5)

let prop_no_tenant_starves =
  QCheck.Test.make ~name:"WFQ: every tenant's first slice lands in round one"
    ~count:30
    QCheck.(pair (int_range 2 4) (int_range 1 3))
    (fun (tenants, jobs_each) ->
      let config =
        { Service.default_config with Service.slice_shots = 64; workers = 1 }
      in
      let svc = Service.create ~config () in
      let handles = ref [] in
      for t = 0 to tenants - 1 do
        for j = 0 to jobs_each - 1 do
          let tenant = Printf.sprintf "tenant-%d" t in
          let s = spec ~seed:((t * 100) + j) ~shots:256 (ghz 3) in
          handles := (tenant, submit_ok svc ~tenant s) :: !handles
        done
      done;
      Service.drain svc;
      (* no starvation: every accepted job completed *)
      let all_done =
        List.for_all
          (fun (_, h) ->
            match Service.poll svc h with Service.Done _ -> true | _ -> false)
          !handles
      in
      (* fairness: with equal weights, the first [tenants] slices contain
         every tenant exactly once (round-robin over virtual time) *)
      let log = Service.execution_log svc in
      let first_round =
        List.filteri (fun i _ -> i < tenants) log |> List.map fst
      in
      let distinct = List.sort_uniq compare first_round in
      all_done && List.length distinct = tenants)

let prop_cache_key_soundness =
  QCheck.Test.make
    ~name:"cache: same digest+seed+shots hits bit-identically, new seed misses"
    ~count:25
    QCheck.(pair (int_range 0 9999) (int_range 50 200))
    (fun (seed, shots) ->
      let svc = Service.create () in
      let s = spec ~seed ~shots (ghz 3) in
      let o1 = await_ok svc (submit_ok svc ~tenant:"a" s) in
      let o2 = await_ok svc (submit_ok svc ~tenant:"b" s) in
      let hits_after_same = (Service.stats svc).Service.cache_hits in
      let s' = spec ~seed:(seed + 1) ~shots (ghz 3) in
      let _ = await_ok svc (submit_ok svc ~tenant:"a" s') in
      let hits_after_diff = (Service.stats svc).Service.cache_hits in
      canon o1.Runner.histogram = canon o2.Runner.histogram
      && hits_after_same = 1
      && hits_after_diff = 1)

let prop_cancel_queued_or_running =
  QCheck.Test.make ~name:"cancel: queued or running, never after completion"
    ~count:30
    QCheck.(int_range 0 20)
    (fun steps ->
      let config = { Service.default_config with Service.slice_shots = 32 } in
      let svc = Service.create ~config () in
      let h = submit_ok svc ~tenant:"a" (spec ~seed:1 ~shots:512 (bell ())) in
      for _ = 1 to steps do
        ignore (Service.step svc)
      done;
      let finished =
        match Service.poll svc h with Service.Done _ -> true | _ -> false
      in
      let cancelled = Service.cancel svc h in
      (* exactly one of: cancel succeeded, or the job already finished *)
      cancelled <> finished
      &&
      match Service.poll svc h with
      | Service.Cancelled -> cancelled
      | Service.Done _ -> finished
      | _ -> false)

(* --- the spool protocol --- *)

let temp_spool name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  (* start from a clean slate: the spool layout is flat, so removing the
     files in each subdirectory is a full reset *)
  List.iter
    (fun sub ->
      let d = Filename.concat dir sub in
      if Sys.file_exists d && Sys.is_directory d then
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d))
    [ "inbox"; "active"; "results"; "failed"; "cancel"; "tmp" ];
  Spool.init dir;
  dir

let test_spool_roundtrip () =
  let s =
    {
      (spec ~seed:42 ~shots:500 (bell ())) with
      Job_spec.label = "bell-roundtrip";
      priority = 2;
      fault_rate = Some 0.05;
      fault_seed = 9;
    }
  in
  match Spool.encode ~tenant:"alice" s with
  | Error e -> Alcotest.failf "encode failed: %s" (Error.to_string e)
  | Ok text -> (
      match Spool.decode ~id:"000042" text with
      | Error e -> Alcotest.failf "decode failed: %s" (Error.to_string e)
      | Ok entry ->
          Alcotest.(check string) "tenant" "alice" entry.Spool.tenant;
          Alcotest.(check string) "id" "000042" entry.Spool.entry_id;
          let d = entry.Spool.spec in
          Alcotest.(check int) "shots" 500 d.Job_spec.shots;
          Alcotest.(check (option int)) "seed" (Some 42) d.Job_spec.seed;
          Alcotest.(check int) "priority" 2 d.Job_spec.priority;
          Alcotest.(check (option (float 1e-9))) "fault rate" (Some 0.05)
            d.Job_spec.fault_rate;
          Alcotest.(check int) "fault seed" 9 d.Job_spec.fault_seed;
          (* the payload survives as an equivalent circuit *)
          let c1 = Result.get_ok (Job_spec.resolve s) in
          let c2 = Result.get_ok (Job_spec.resolve d) in
          Alcotest.(check string) "circuit digest survives"
            (Job_spec.digest c1) (Job_spec.digest c2))

let test_spool_queue_cycle () =
  let dir = temp_spool "qca-spool-cycle" in
  let s = spec ~seed:7 ~shots:100 (bell ()) in
  let id =
    match Spool.submit ~dir ~tenant:"alice" s with
    | Ok id -> id
    | Error e -> Alcotest.failf "spool submit failed: %s" (Error.to_string e)
  in
  Alcotest.(check bool) "in inbox" true (Spool.in_inbox ~dir id);
  (match Spool.pending ~dir with
  | [ Ok entry ] ->
      Alcotest.(check string) "entry id" id entry.Spool.entry_id;
      Alcotest.(check string) "tenant" "alice" entry.Spool.tenant
  | _ -> Alcotest.fail "expected exactly one pending entry");
  Spool.consume ~dir id;
  Alcotest.(check bool) "consumed" false (Spool.in_inbox ~dir id);
  Spool.write_result ~dir ~id "{\"status\":\"done\"}";
  (match Spool.read_result ~dir id with
  | Some line ->
      Alcotest.(check bool) "result readable" true
        (String.length (String.trim line) > 0)
  | None -> Alcotest.fail "result missing");
  Alcotest.(check bool) "cancel after result fails" false
    (Spool.request_cancel ~dir id)

let test_spool_decode_rejects_garbage () =
  (match Spool.decode ~id:"000001" "tenant=alice\nno separator" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing separator must fail");
  match Spool.decode ~id:"000002" "wibble=1\n---\nversion 1.0\nqubits 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown keys must fail"

(* --- deadlines --- *)

let test_deadline_exceeded () =
  (* deadline 0: the budget is exhausted before the first slice, so the
     check at the slice boundary fails the job deterministically. *)
  let svc = Service.create () in
  let h = submit_ok svc ~tenant:"alice" (spec ~seed:1 ~deadline_ms:0 (bell ())) in
  (match Service.await svc h with
  | Ok _ -> Alcotest.fail "deadline-0 job must not complete"
  | Error e -> (
      match e.Error.kind with
      | Error.Deadline_exceeded { deadline_ms; _ } ->
          Alcotest.(check int) "deadline echoed" 0 deadline_ms
      | _ -> Alcotest.failf "wrong error: %s" (Error.to_string e)));
  let s = Service.stats svc in
  Alcotest.(check int) "stats.deadline_exceeded" 1 s.Service.deadline_exceeded;
  Alcotest.(check int) "also counted failed" 1 s.Service.failed

let test_deadline_generous_completes () =
  let svc = Service.create () in
  let h =
    submit_ok svc ~tenant:"alice" (spec ~seed:7 ~deadline_ms:3_600_000 (bell ()))
  in
  let o = await_ok svc h in
  let direct = Engine.run ~seed:7 ~shots:1000 (bell ()) in
  Alcotest.check hist_testable "an unexercised deadline changes nothing"
    (canon direct.Engine.histogram)
    (canon o.Runner.histogram);
  Alcotest.(check int) "no deadline failures" 0
    (Service.stats svc).Service.deadline_exceeded

let test_deadline_spool_roundtrip () =
  let s = { (spec ~seed:5 ~deadline_ms:250 (bell ())) with Job_spec.label = "dl" } in
  match Spool.encode ~tenant:"alice" s with
  | Error e -> Alcotest.failf "encode failed: %s" (Error.to_string e)
  | Ok text -> (
      match Spool.decode ~id:"000001" text with
      | Error e -> Alcotest.failf "decode failed: %s" (Error.to_string e)
      | Ok entry ->
          Alcotest.(check (option int)) "deadline survives the header"
            (Some 250) entry.Spool.spec.Job_spec.deadline_ms)

(* --- the durable lifecycle journal --- *)

(* A pid far above any live process: claims owned by it read as orphaned
   (the probe's kill-0 reports ESRCH), which is exactly what a crashed
   daemon leaves behind. *)
let dead_pid = 999_999_999

let run_entry (entry : Spool.entry) =
  match Runner.run entry.Spool.spec with
  | Ok o -> o
  | Error e -> Alcotest.failf "replay run failed: %s" (Error.to_string e)

let test_journal_replay_bit_identity () =
  let dir = temp_spool "qca-spool-replay" in
  let s = spec ~seed:7 ~shots:300 (bell ()) in
  let id = Result.get_ok (Spool.submit ~dir ~tenant:"alice" s) in
  Alcotest.(check bool) "claimed" true (Spool.claim ~dir ~pid:dead_pid id);
  Alcotest.(check bool) "left the inbox" false (Spool.in_inbox ~dir id);
  Alcotest.(check (list string)) "journaled" [ id ] (Spool.active ~dir);
  let me = Unix.getpid () in
  (match Spool.recover ~dir ~pid:me ~max_attempts:3 with
  | [ Spool.Replay { id = rid; entry = Ok entry; attempt } ] ->
      Alcotest.(check string) "same id" id rid;
      Alcotest.(check int) "attempt bumped" 2 attempt;
      (match Spool.read_claim ~dir id with
      | Some c ->
          Alcotest.(check int) "claim re-owned" me c.Spool.claim_pid;
          Alcotest.(check int) "claim attempt" 2 c.Spool.attempt
      | None -> Alcotest.fail "claim sidecar missing after recovery");
      (* the replay is bit-identical to an uncrashed run *)
      let o = run_entry entry in
      let direct = Engine.run ~seed:7 ~shots:300 (bell ()) in
      Alcotest.check hist_testable "replay == uncrashed run"
        (canon direct.Engine.histogram)
        (canon o.Runner.histogram)
  | rs -> Alcotest.failf "expected one replay, got %d entries" (List.length rs));
  Spool.write_result ~dir ~id "{\"status\":\"done\"}";
  Spool.complete ~dir id;
  Alcotest.(check (list string)) "journal cleared" [] (Spool.active ~dir)

let test_recover_already_published () =
  let dir = temp_spool "qca-spool-published" in
  let id =
    Result.get_ok (Spool.submit ~dir ~tenant:"alice" (spec ~seed:1 (bell ())))
  in
  ignore (Spool.claim ~dir ~pid:dead_pid id);
  (* the crash hit between the result write and the journal cleanup *)
  Spool.write_result ~dir ~id "{\"status\":\"done\"}";
  (match Spool.recover ~dir ~pid:(Unix.getpid ()) ~max_attempts:3 with
  | [ Spool.Already_published rid ] -> Alcotest.(check string) "id" id rid
  | _ -> Alcotest.fail "expected Already_published");
  Alcotest.(check (list string)) "journal cleared, not re-run" []
    (Spool.active ~dir)

let test_recover_poison_after_cap () =
  let dir = temp_spool "qca-spool-poison" in
  let id =
    Result.get_ok (Spool.submit ~dir ~tenant:"alice" (spec ~seed:1 (bell ())))
  in
  ignore (Spool.claim ~dir ~pid:dead_pid id);
  let me = Unix.getpid () in
  (* two recoveries consume attempts 2 and 3; the third trips the cap *)
  (match Spool.recover ~dir ~pid:me ~max_attempts:3 with
  | [ Spool.Replay { attempt = 2; _ } ] -> ()
  | _ -> Alcotest.fail "first recovery should replay (attempt 2)");
  (match Spool.recover ~dir ~pid:me ~max_attempts:3 with
  | [ Spool.Replay { attempt = 3; _ } ] -> ()
  | _ -> Alcotest.fail "second recovery should replay (attempt 3)");
  (match Spool.recover ~dir ~pid:me ~max_attempts:3 with
  | [ Spool.Poison { id = rid; attempts; tenant; _ } ] ->
      Alcotest.(check string) "id" id rid;
      Alcotest.(check int) "attempts recorded" 3 attempts;
      Alcotest.(check string) "tenant decoded for the error" "alice" tenant
  | _ -> Alcotest.fail "third recovery should retire the job as poison");
  Alcotest.(check (list string)) "journal cleared" [] (Spool.active ~dir);
  Alcotest.(check bool) "job file rests in failed/" true
    (Sys.file_exists (Filename.concat (Filename.concat dir "failed") (id ^ ".job")))

let test_recover_respects_live_owner () =
  let dir = temp_spool "qca-spool-busy" in
  let id =
    Result.get_ok (Spool.submit ~dir ~tenant:"alice" (spec ~seed:1 (bell ())))
  in
  (* pid 1 is always alive (kill-0 reports EPERM, which means exists) *)
  ignore (Spool.claim ~dir ~pid:1 id);
  (match Spool.recover ~dir ~pid:(Unix.getpid ()) ~max_attempts:3 with
  | [ Spool.Busy { id = rid; owner } ] ->
      Alcotest.(check string) "id" id rid;
      Alcotest.(check int) "owner reported" 1 owner
  | _ -> Alcotest.fail "a live owner's claim must be left alone");
  (match Spool.read_claim ~dir id with
  | Some c -> Alcotest.(check int) "claim untouched" 1 c.Spool.claim_pid
  | None -> Alcotest.fail "claim missing");
  Alcotest.(check (list string)) "still journaled" [ id ] (Spool.active ~dir)

let test_cancel_after_claim_still_wins () =
  let dir = temp_spool "qca-spool-cancel-race" in
  let id =
    Result.get_ok (Spool.submit ~dir ~tenant:"alice" (spec ~seed:1 (bell ())))
  in
  ignore (Spool.claim ~dir ~pid:dead_pid id);
  (* no result yet, so the cancel lands even though the job is claimed *)
  Alcotest.(check bool) "cancel accepted after claim" true
    (Spool.request_cancel ~dir id);
  Alcotest.(check bool) "marker visible" true (Spool.cancel_requested ~dir id);
  (* the daemon publishes the cancellation and cleans both artefacts up *)
  Spool.write_result ~dir ~id "{\"status\":\"cancelled\"}";
  Spool.complete ~dir id;
  Spool.clear_cancel ~dir id;
  Alcotest.(check bool) "marker consumed, not leaked" false
    (Spool.cancel_requested ~dir id);
  Alcotest.(check (list string)) "journal cleared" [] (Spool.active ~dir);
  Alcotest.(check bool) "cancel after the result is refused" false
    (Spool.request_cancel ~dir id)

let test_sweep_tmp () =
  let dir = temp_spool "qca-spool-sweep" in
  let tmp = Filename.concat dir "tmp" in
  List.iter
    (fun f -> close_out (open_out (Filename.concat tmp f)))
    [ "stale-1.job"; "stale-2.json" ];
  Alcotest.(check int) "two stale files swept" 2 (Spool.sweep_tmp ~dir);
  Alcotest.(check int) "second sweep finds nothing" 0 (Spool.sweep_tmp ~dir)

let test_durable_submit_roundtrip () =
  let dir = temp_spool "qca-spool-durable" in
  let s = spec ~seed:11 ~shots:200 (bell ()) in
  let id = Result.get_ok (Spool.submit ~durable:true ~dir ~tenant:"alice" s) in
  (match Spool.pending ~dir with
  | [ Ok entry ] ->
      Alcotest.(check string) "id" id entry.Spool.entry_id;
      Alcotest.(check (option int)) "seed survives" (Some 11)
        entry.Spool.spec.Job_spec.seed
  | _ -> Alcotest.fail "durable submit must land in the inbox");
  Spool.write_result ~durable:true ~dir ~id "{\"status\":\"done\"}";
  Alcotest.(check bool) "durable result readable" true
    (Spool.read_result ~dir id <> None)

let test_heartbeat_roundtrip () =
  let dir = temp_spool "qca-spool-heartbeat" in
  let me = Unix.getpid () in
  Spool.write_heartbeat ~dir ~pid:me ~state:"serving" ~started_at_ms:123;
  (match Spool.read_heartbeat ~dir with
  | Some hb ->
      Alcotest.(check int) "pid" me hb.Spool.hb_pid;
      Alcotest.(check string) "state" "serving" hb.Spool.hb_state;
      Alcotest.(check int) "started" 123 hb.Spool.hb_started_at_ms;
      Alcotest.(check bool) "this process is alive" true
        (Spool.pid_alive hb.Spool.hb_pid)
  | None -> Alcotest.fail "heartbeat missing");
  Alcotest.(check bool) "a dead pid reads dead" false (Spool.pid_alive dead_pid)

let prop_replay_bit_identity =
  QCheck.Test.make
    ~name:"journal: recovery replay is bit-identical to the uncrashed run"
    ~count:20
    QCheck.(pair (int_range 0 9999) (int_range 50 300))
    (fun (seed, shots) ->
      let dir = temp_spool "qca-spool-replay-prop" in
      let s = spec ~seed ~shots (ghz 3) in
      let id = Result.get_ok (Spool.submit ~dir ~tenant:"p" s) in
      ignore (Spool.claim ~dir ~pid:dead_pid id);
      match Spool.recover ~dir ~pid:(Unix.getpid ()) ~max_attempts:3 with
      | [ Spool.Replay { entry = Ok entry; attempt = 2; _ } ] ->
          let o = run_entry entry in
          let direct = Engine.run ~seed ~shots (ghz 3) in
          canon o.Runner.histogram = canon direct.Engine.histogram
      | _ -> false)

(* The robustness machinery must be ~free when dormant: a disabled kill
   point is one ref read, and must cost well under 5% of even the
   cheapest job the service handles (a cache hit). *)
let test_disabled_crash_point_overhead () =
  Fault.set_crash_at None;
  let calls = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    Fault.crash_point "slice"
  done;
  let per_call = (Unix.gettimeofday () -. t0) /. float_of_int calls in
  let svc = Service.create () in
  let s = spec ~seed:5 (bell ()) in
  let _ = await_ok svc (submit_ok svc ~tenant:"a" s) in
  let jobs = 200 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to jobs do
    ignore (await_ok svc (submit_ok svc ~tenant:"a" s))
  done;
  let per_hot_job = (Unix.gettimeofday () -. t1) /. float_of_int jobs in
  Alcotest.(check bool)
    (Printf.sprintf "disabled kill point (%.1f ns) < 5%% of a cache-hot job (%.0f ns)"
       (per_call *. 1e9) (per_hot_job *. 1e9))
    true
    (per_call < 0.05 *. per_hot_job)

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_service"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "batched sampling" `Quick test_batched_bit_identity;
          Alcotest.test_case "sliced trajectories" `Quick
            test_trajectory_bit_identity;
          Alcotest.test_case "sliced noisy run" `Quick test_noisy_bit_identity;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit" `Quick test_cache_hit;
          Alcotest.test_case "seed miss" `Quick test_cache_seed_miss;
          Alcotest.test_case "unseeded uncached" `Quick test_unseeded_not_cached;
          Alcotest.test_case "shared distribution" `Quick
            test_shared_distribution;
        ] );
      ( "admission",
        [
          Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
          Alcotest.test_case "overload ladder" `Quick test_overload_ladder;
          Alcotest.test_case "estimate oracle: memory rejection" `Quick
            test_admission_memory_rejection;
          Alcotest.test_case "estimate oracle: time degrade" `Quick
            test_admission_time_degrade;
          Alcotest.test_case "estimate oracle: preflight accounting" `Quick
            test_preflight_accounting;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "while queued" `Quick test_cancel_while_queued;
          Alcotest.test_case "while running" `Quick test_cancel_while_running;
          Alcotest.test_case "after completion" `Quick
            test_cancel_completed_fails;
        ] );
      ( "fairness",
        [ Alcotest.test_case "weighted shares" `Quick test_weighted_fairness ] );
      ( "properties",
        List.map qtest
          [
            prop_no_tenant_starves;
            prop_cache_key_soundness;
            prop_cancel_queued_or_running;
          ] );
      ( "spool",
        [
          Alcotest.test_case "roundtrip" `Quick test_spool_roundtrip;
          Alcotest.test_case "queue cycle" `Quick test_spool_queue_cycle;
          Alcotest.test_case "garbage rejected" `Quick
            test_spool_decode_rejects_garbage;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "exhausted budget fails" `Quick
            test_deadline_exceeded;
          Alcotest.test_case "generous budget is inert" `Quick
            test_deadline_generous_completes;
          Alcotest.test_case "header roundtrip" `Quick
            test_deadline_spool_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay bit-identity" `Quick
            test_journal_replay_bit_identity;
          Alcotest.test_case "already published" `Quick
            test_recover_already_published;
          Alcotest.test_case "poison after attempt cap" `Quick
            test_recover_poison_after_cap;
          Alcotest.test_case "live owner respected" `Quick
            test_recover_respects_live_owner;
          Alcotest.test_case "cancel/claim race" `Quick
            test_cancel_after_claim_still_wins;
          Alcotest.test_case "tmp sweep" `Quick test_sweep_tmp;
          Alcotest.test_case "durable submit" `Quick
            test_durable_submit_roundtrip;
          Alcotest.test_case "heartbeat" `Quick test_heartbeat_roundtrip;
          Alcotest.test_case "disabled kill-point overhead" `Quick
            test_disabled_crash_point_overhead;
        ] );
      ( "journal-properties",
        List.map qtest [ prop_replay_bit_identity ] );
    ]
