(* Tests for the micro-architecture: ADI, micro-code, timing queues and the
   cycle-accurate controller executing eQASM on QX. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Eqasm = Qca_compiler.Eqasm
module Adi = Qca_microarch.Adi
module Microcode = Qca_microarch.Microcode
module Timing_queue = Qca_microarch.Timing_queue
module Controller = Qca_microarch.Controller
module State = Qca_qx.State
module Sim = Qca_qx.Sim
module Rng = Qca_util.Rng

(* --- ADI --- *)

let test_gaussian_envelope () =
  let env = Adi.gaussian_envelope ~duration_ns:20 ~amplitude:0.5 in
  Alcotest.(check int) "length" 20 (Array.length env);
  let peak = Array.fold_left Float.max neg_infinity env in
  Alcotest.(check (float 1e-2)) "peak near amplitude" 0.5 peak;
  Alcotest.(check bool) "edges low" true (env.(0) < 0.1)

let test_square_envelope () =
  let env = Adi.square_envelope ~duration_ns:10 ~amplitude:0.8 in
  Alcotest.(check (float 1e-9)) "flat top" 0.8 env.(5);
  Alcotest.(check bool) "ramps" true (env.(0) < 0.8)

let test_libraries_complete () =
  let required = [ "x90"; "mx90"; "y90"; "my90"; "cz"; "measz"; "prepz" ] in
  let check_lib name lib =
    List.iter
      (fun pulse ->
        Alcotest.(check bool) (name ^ " has " ^ pulse) true (Adi.find lib pulse <> None))
      required
  in
  check_lib "superconducting" (Adi.superconducting_library ());
  check_lib "semiconducting" (Adi.semiconducting_library ())

let test_technologies_differ () =
  let sc = Adi.superconducting_library () and semi = Adi.semiconducting_library () in
  match Adi.find sc "cz", Adi.find semi "cz" with
  | Some a, Some b ->
      Alcotest.(check bool) "durations differ" true (a.Adi.duration_ns <> b.Adi.duration_ns)
  | _ -> Alcotest.fail "cz missing"

let test_pulse_energy_positive () =
  let lib = Adi.superconducting_library () in
  List.iter
    (fun name ->
      match Adi.find lib name with
      | Some p -> Alcotest.(check bool) (name ^ " energy") true (Adi.energy p > 0.0)
      | None -> Alcotest.fail "missing pulse")
    (Adi.names lib)

(* --- microcode --- *)

let test_microcode_lookup () =
  (match Microcode.lookup Microcode.superconducting_table "x90" with
  | Some cw -> Alcotest.(check string) "pulse" "x90" cw.Microcode.pulse_name
  | None -> Alcotest.fail "x90 missing");
  Alcotest.(check bool) "unknown absent" true
    (Microcode.lookup Microcode.superconducting_table "frobnicate" = None)

let test_microcode_opcodes_disjoint () =
  (* Same mnemonics, different opcodes: the retargeting claim. *)
  List.iter
    (fun m ->
      match
        ( Microcode.lookup Microcode.superconducting_table m,
          Microcode.lookup Microcode.semiconducting_table m )
      with
      | Some a, Some b ->
          Alcotest.(check bool) (m ^ " retargeted") true (a.Microcode.opcode <> b.Microcode.opcode)
      | _ -> Alcotest.fail (m ^ " missing from a table"))
    (Microcode.mnemonics Microcode.superconducting_table)

let test_microcode_translate_fanout () =
  let mops =
    Microcode.translate Microcode.superconducting_table ~time_ns:100 ~mnemonic:"x90"
      ~angle:None ~qubits:[ 0; 3; 5 ]
  in
  Alcotest.(check int) "one per qubit" 3 (List.length mops);
  List.iter
    (fun (m : Microcode.micro_op) -> Alcotest.(check int) "time" 100 m.Microcode.time_ns)
    mops

(* --- timing queues --- *)

let make_mop time qubit =
  match
    Microcode.translate Microcode.superconducting_table ~time_ns:time ~mnemonic:"x90"
      ~angle:None ~qubits:[ qubit ]
  with
  | [ m ] -> m
  | _ -> assert false

let test_queue_time_order () =
  let q = Timing_queue.create ~channel:0 in
  Timing_queue.push q (make_mop 50 0);
  Timing_queue.push q (make_mop 10 0);
  Timing_queue.push q (make_mop 30 0);
  let events = Timing_queue.drain_all q in
  let times = List.map (fun e -> e.Timing_queue.time_ns) events in
  Alcotest.(check (list int)) "sorted" [ 10; 30; 50 ] times

let test_queue_drain_until () =
  let q = Timing_queue.create ~channel:0 in
  List.iter (fun t -> Timing_queue.push q (make_mop t 0)) [ 10; 20; 30; 40 ];
  let ready = Timing_queue.drain_until q 25 in
  Alcotest.(check int) "two ready" 2 (List.length ready);
  Alcotest.(check int) "two pending" 2 (Timing_queue.pending q)

let test_queue_violation_detection () =
  let q = Timing_queue.create ~channel:0 in
  Timing_queue.push q (make_mop 100 0);
  ignore (Timing_queue.drain_all q);
  Timing_queue.push q (make_mop 50 0);
  Alcotest.(check int) "violation" 1 (Timing_queue.violations q)

let test_queue_peak_depth () =
  let q = Timing_queue.create ~channel:0 in
  List.iter (fun t -> Timing_queue.push q (make_mop t 0)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "peak" 5 (Timing_queue.peak_depth q);
  ignore (Timing_queue.drain_all q);
  Alcotest.(check int) "peak sticky" 5 (Timing_queue.peak_depth q)

let test_pool_routing () =
  let pool = Timing_queue.create_pool ~channels:4 in
  Timing_queue.push_pool pool (make_mop 10 2);
  Timing_queue.push_pool pool (make_mop 20 0);
  Alcotest.(check int) "channel 2" 1 (Timing_queue.pending (Timing_queue.queue pool 2));
  Alcotest.(check int) "channel 1 empty" 0 (Timing_queue.pending (Timing_queue.queue pool 1));
  let total, peak, violations = Timing_queue.pool_stats pool in
  Alcotest.(check int) "total" 2 total;
  Alcotest.(check int) "peak" 1 peak;
  Alcotest.(check int) "violations" 0 violations

(* --- controller end-to-end --- *)

let compile_for platform circuit =
  let out = Compiler.compile platform Compiler.Realistic circuit in
  match out.Compiler.eqasm with
  | Some program -> (out, program)
  | None -> Alcotest.fail "expected eqasm"

let bell_with_measure () =
  Circuit.append (Library.bell ()) (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])

let test_controller_runs_bell () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let correlated = ref 0 and total = 200 in
  let rng = Rng.create 5150 in
  for _ = 1 to total do
    let result = Controller.run ~rng Controller.superconducting program in
    let c = result.Controller.outcome.Sim.classical in
    if c.(0) >= 0 && c.(0) = c.(1) then incr correlated
  done;
  Alcotest.(check int) "bell always correlated (ideal)" total !correlated

let test_controller_trace_ordering () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let result = Controller.run Controller.superconducting program in
  let rec ordered = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
        a.Controller.time_ns <= b.Controller.time_ns && ordered rest
  in
  Alcotest.(check bool) "trace time-ordered" true (ordered result.Controller.trace);
  Alcotest.(check bool) "no violations" true
    (result.Controller.stats.Controller.timing_violations = 0)

let test_controller_rz_is_software () =
  (* A circuit with h gates decomposes into rz + y90; rz must produce frame
     updates, not pulses. *)
  let circuit = Circuit.of_list 2 [ Gate.Unitary (Gate.H, [| 0 |]) ] in
  let _, program = compile_for Platform.superconducting_17 circuit in
  let result = Controller.run Controller.superconducting program in
  Alcotest.(check bool) "software phase updates" true
    (result.Controller.stats.Controller.software_phase_updates > 0);
  List.iter
    (fun e ->
      Alcotest.(check bool) "no idle pulses in trace" true
        (e.Controller.pulse_name <> "idle"))
    result.Controller.trace

let test_retargeting_same_program_shape () =
  (* The same logical circuit compiled for the two technologies: identical
     functional outcome, different wall-clock (semiconducting is slower). *)
  let circuit =
    Circuit.append (Library.ghz 3) (Circuit.of_list 3 [ Gate.Measure 0; Gate.Measure 1; Gate.Measure 2 ])
  in
  let _, program_sc = compile_for Platform.superconducting_17 circuit in
  let semi4 = Platform.semiconducting_4 in
  let _, program_semi = compile_for semi4 circuit in
  let rng1 = Rng.create 9 and rng2 = Rng.create 9 in
  let r_sc = Controller.run ~rng:rng1 Controller.superconducting program_sc in
  let r_semi = Controller.run ~rng:rng2 Controller.semiconducting program_semi in
  let bits r = Array.to_list (Array.sub r.Controller.outcome.Sim.classical 0 3) in
  let correlated r =
    match bits r with [ a; b; c ] -> a = b && b = c | _ -> false
  in
  Alcotest.(check bool) "sc correlated" true (correlated r_sc);
  Alcotest.(check bool) "semi correlated" true (correlated r_semi);
  Alcotest.(check bool) "semi slower" true
    (r_semi.Controller.stats.Controller.total_ns > r_sc.Controller.stats.Controller.total_ns)

let test_controller_matches_direct_simulation () =
  (* Ideal-qubit execution through the whole microarch pipeline must agree
     with running the compiled circuit directly on QX. *)
  let circuit = Library.ghz 4 in
  let out, program = compile_for Platform.superconducting_17 circuit in
  let result = Controller.run Controller.superconducting program in
  let direct = Sim.run out.Compiler.physical in
  Alcotest.(check (float 1e-9)) "same state" 1.0
    (State.fidelity result.Controller.outcome.Sim.state direct.Sim.state)

let test_controller_stats_sane () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let result = Controller.run Controller.superconducting program in
  let s = result.Controller.stats in
  Alcotest.(check bool) "bundles" true (s.Controller.bundles_issued > 0);
  Alcotest.(check bool) "micro ops" true (s.Controller.micro_ops > 0);
  Alcotest.(check bool) "nonzero duration" true (s.Controller.total_ns > 0);
  Alcotest.(check int) "duration = makespan * cycle" (program.Eqasm.makespan_cycles * 20)
    s.Controller.total_ns

let test_teleportation_through_microarch () =
  (* Conditional corrections (fast feedback) must survive compile -> eQASM ->
     micro-architecture execution: Bob's qubit ends in the payload state. *)
  let theta = 1.234 in
  let expected = sin (theta /. 2.0) ** 2.0 in
  let circuit =
    Circuit.append
      (Library.teleport ~prepare:(Qca_circuit.Gate.Ry theta) ())
      (Circuit.of_list 3 [ Gate.Measure 2 ])
  in
  let _, program = compile_for Platform.superconducting_17 circuit in
  let rng = Rng.create 777 in
  let shots = 600 in
  let ones = ref 0 in
  for _ = 1 to shots do
    let result = Controller.run ~rng Controller.superconducting program in
    if result.Controller.outcome.Sim.classical.(2) = 1 then incr ones
  done;
  Alcotest.(check (float 0.05)) "teleported through the stack" expected
    (float_of_int !ones /. float_of_int shots)

let test_trace_rendering () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let result = Controller.run Controller.superconducting program in
  let text = Controller.trace_to_string result in
  Alcotest.(check bool) "has header" true (String.length text > 20)

(* --- QISA --- *)

module Qisa = Qca_microarch.Qisa
module Eqasm2 = Qca_compiler.Eqasm

let qop ?condition ?(two_qubit = false) ?(angle : float option) mnemonic mask =
  { Eqasm2.mnemonic; angle; mask; two_qubit; condition }

let test_qisa_classical_arithmetic () =
  let p =
    Qisa.assemble ~name:"arith" ~qubit_count:1 ~cycle_ns:20
      [
        Qisa.Ldi (0, 5);
        Qisa.Ldi (1, 7);
        Qisa.Add (2, 0, 1);
        Qisa.Sub (3, 2, 0);
        Qisa.Mov (4, 3);
        Qisa.Halt;
      ]
  in
  let r = Qisa.execute Controller.superconducting p in
  Alcotest.(check int) "add" 12 r.Qisa.registers.(2);
  Alcotest.(check int) "sub" 7 r.Qisa.registers.(3);
  Alcotest.(check int) "mov" 7 r.Qisa.registers.(4)

let test_qisa_loop () =
  (* sum 1..10 with a classical loop *)
  let p =
    Qisa.assemble ~name:"sum" ~qubit_count:1 ~cycle_ns:20
      [
        Qisa.Ldi (0, 0);
        (* acc *)
        Qisa.Ldi (1, 10);
        (* counter *)
        Qisa.Ldi (2, 0);
        (* zero *)
        Qisa.Label "loop";
        Qisa.Add (0, 0, 1);
        Qisa.Ldi (3, 1);
        Qisa.Sub (1, 1, 3);
        Qisa.Cmp (1, 2);
        Qisa.Br (Qisa.Ne, "loop");
        Qisa.Halt;
      ]
  in
  let r = Qisa.execute Controller.superconducting p in
  Alcotest.(check int) "sum 1..10" 55 r.Qisa.registers.(0)

let test_qisa_validation () =
  (match
     Qisa.assemble ~name:"bad" ~qubit_count:1 ~cycle_ns:20 [ Qisa.Br (Qisa.Always, "nowhere") ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown label accepted");
  (match Qisa.assemble ~name:"bad" ~qubit_count:1 ~cycle_ns:20 [ Qisa.Ldi (99, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad register accepted");
  match Qisa.assemble ~name:"bad" ~qubit_count:1 ~cycle_ns:20 [ Qisa.Fmr (0, 5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad qubit accepted"

let test_qisa_repeat_until_success () =
  (* Put a qubit in |+>, measure, repeat until the result is 1; count the
     attempts — classic run-time control the compiler cannot unroll. *)
  let p =
    Qisa.assemble ~name:"rus" ~qubit_count:1 ~cycle_ns:20
      [
        Qisa.Ldi (0, 0);
        (* attempt counter *)
        Qisa.Ldi (1, 1);
        (* constant 1 *)
        Qisa.Quantum (Eqasm2.Smis (0, [ 0 ]));
        Qisa.Label "try";
        Qisa.Add (0, 0, 1);
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "prepz" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "y90" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "measz" 0 ]));
        Qisa.Fmr (2, 0);
        Qisa.Cmp (2, 1);
        Qisa.Br (Qisa.Ne, "try");
        Qisa.Halt;
      ]
  in
  let rng = Rng.create 99 in
  let attempts = ref [] in
  for _ = 1 to 50 do
    let r = Qisa.execute ~rng Controller.superconducting p in
    Alcotest.(check int) "final measurement is 1" 1 r.Qisa.registers.(2);
    attempts := r.Qisa.registers.(0) :: !attempts
  done;
  let mean =
    float_of_int (List.fold_left ( + ) 0 !attempts) /. 50.0
  in
  (* geometric with p = 1/2: mean 2 *)
  Alcotest.(check bool) (Printf.sprintf "mean attempts ~2 (%.2f)" mean) true
    (mean > 1.4 && mean < 2.8)

let test_qisa_active_reset () =
  (* Flip to |1>, measure, then FMR + branch to apply a correcting X only
     when needed: the qubit must end in |0>. *)
  let p =
    Qisa.assemble ~name:"active-reset" ~qubit_count:1 ~cycle_ns:20
      [
        Qisa.Ldi (1, 1);
        Qisa.Quantum (Eqasm2.Smis (0, [ 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "x90" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "x90" 0 ]));
        (* now |1> *)
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "measz" 0 ]));
        Qisa.Fmr (2, 0);
        Qisa.Cmp (2, 1);
        Qisa.Br (Qisa.Ne, "done");
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "x90" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "x90" 0 ]));
        Qisa.Label "done";
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "measz" 0 ]));
        Qisa.Fmr (3, 0);
        Qisa.Halt;
      ]
  in
  let rng = Rng.create 101 in
  for _ = 1 to 20 do
    let r = Qisa.execute ~rng Controller.superconducting p in
    Alcotest.(check int) "reset to 0" 0 r.Qisa.registers.(3)
  done

let test_qisa_step_budget () =
  let p =
    Qisa.assemble ~name:"spin" ~qubit_count:1 ~cycle_ns:20
      [ Qisa.Label "forever"; Qisa.Br (Qisa.Always, "forever") ]
  in
  match Qisa.execute ~max_steps:1000 Controller.superconducting p with
  | exception Qca_util.Error.Error e ->
      Alcotest.(check string) "error site" "Qisa.execute" e.Qca_util.Error.site;
      Alcotest.(check bool) "non-convergence kind" true
        (match e.Qca_util.Error.kind with
        | Qca_util.Error.Non_convergence _ -> true
        | _ -> false)
  | _ -> Alcotest.fail "infinite loop not caught"

let test_qisa_parse_roundtrip () =
  (* assemble -> to_string -> parse -> execute must behave identically *)
  let original =
    Qisa.assemble ~name:"rt" ~qubit_count:1 ~cycle_ns:20
      [
        Qisa.Ldi (0, 0);
        Qisa.Ldi (1, 1);
        Qisa.Quantum (Eqasm2.Smis (0, [ 0 ]));
        Qisa.Label "try";
        Qisa.Add (0, 0, 1);
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "prepz" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "y90" 0 ]));
        Qisa.Quantum (Eqasm2.Bundle (1, [ qop "measz" 0 ]));
        Qisa.Fmr (2, 0);
        Qisa.Cmp (2, 1);
        Qisa.Br (Qisa.Ne, "try");
        Qisa.Halt;
      ]
  in
  let text = Qisa.to_string original in
  let reparsed = Qisa.parse ~name:"rt" ~qubit_count:1 ~cycle_ns:20 text in
  let run p seed =
    let r = Qisa.execute ~rng:(Rng.create seed) Controller.superconducting p in
    (r.Qisa.registers.(0), r.Qisa.registers.(2))
  in
  for seed = 1 to 10 do
    Alcotest.(check (pair int int))
      (Printf.sprintf "same behaviour seed %d" seed)
      (run original seed) (run reparsed seed)
  done

let test_qisa_parse_conditional_op () =
  let source = "SMIS s0, {0}\n1: measz s0\n1: [if r0] x90 s0\nHALT\n" in
  (* just check it assembles; r0 = 0 so the conditional op exists but the
     controller gates on classical bit 0 of qubit 0 *)
  let p = Qisa.parse ~name:"cond" ~qubit_count:1 ~cycle_ns:20 source in
  let r = Qisa.execute ~rng:(Rng.create 3) Controller.superconducting p in
  Alcotest.(check bool) "executes" true (r.Qisa.executed > 0)

let test_qisa_parse_errors () =
  let expect src =
    match Qisa.parse ~name:"bad" ~qubit_count:1 ~cycle_ns:20 src with
    | exception Qisa.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("accepted: " ^ src)
  in
  expect "FROB r0, r1\n";
  expect "LDI r0\n";
  expect "BR.xx somewhere\n";
  expect "BR.ne nowhere\n"

let test_qisa_to_string () =
  let p =
    Qisa.assemble ~name:"show" ~qubit_count:1 ~cycle_ns:20
      [ Qisa.Ldi (0, 1); Qisa.Label "l"; Qisa.Br (Qisa.Always, "l") ]
  in
  let text = Qisa.to_string p in
  Alcotest.(check bool) "mentions LDI" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 3 <= String.length text && (String.sub text i 3 = "LDI" || contains (i + 1))
    in
    contains 0)

(* --- resilience through the controller --- *)

module Fault = Qca_util.Fault
module Engine = Qca_qx.Engine

let test_run_shots_fault_off_identical () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let base =
    Controller.run_shots ~seed:42 ~shots:64 Controller.superconducting program
  in
  let off =
    Controller.run_shots ~seed:42 ~shots:64 ~faults:(Fault.make Fault.off)
      Controller.superconducting program
  in
  Alcotest.(check (list (pair string int))) "identical histograms"
    base.Controller.histogram off.Controller.histogram;
  Alcotest.(check int) "nothing faulted" 0
    off.Controller.report.Engine.resilience.Engine.faulted_shots

let test_run_shots_fault_accounting () =
  let _, program = compile_for Platform.superconducting_17 (bell_with_measure ()) in
  let shots = 100 in
  let faults = Fault.make ~seed:8 (Fault.uniform 0.02) in
  let r =
    Controller.run_shots ~seed:21 ~shots ~faults Controller.superconducting program
  in
  let res = r.Controller.report.Engine.resilience in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Controller.histogram in
  Alcotest.(check int) "faulted + histogram = shots" shots
    (res.Engine.faulted_shots + total);
  Alcotest.(check bool) "fires recorded" true (Fault.total faults > 0);
  Alcotest.(check bool) "retries recorded" true (res.Engine.retries > 0)

let test_unknown_mnemonic_structured () =
  match Microcode.translate Microcode.superconducting_table ~time_ns:0
          ~mnemonic:"frobnicate" ~angle:None ~qubits:[ 0 ]
  with
  | exception Qca_util.Error.Error e ->
      Alcotest.(check bool) "unknown mnemonic kind" true
        (match e.Qca_util.Error.kind with
        | Qca_util.Error.Unknown_mnemonic "frobnicate" -> true
        | _ -> false);
      Alcotest.(check bool) "permanent" false e.Qca_util.Error.transient
  | _ -> Alcotest.fail "unknown mnemonic accepted"

let () =
  Alcotest.run "qca_microarch"
    [
      ( "adi",
        [
          Alcotest.test_case "gaussian envelope" `Quick test_gaussian_envelope;
          Alcotest.test_case "square envelope" `Quick test_square_envelope;
          Alcotest.test_case "libraries complete" `Quick test_libraries_complete;
          Alcotest.test_case "technologies differ" `Quick test_technologies_differ;
          Alcotest.test_case "pulse energy" `Quick test_pulse_energy_positive;
        ] );
      ( "microcode",
        [
          Alcotest.test_case "lookup" `Quick test_microcode_lookup;
          Alcotest.test_case "opcodes disjoint" `Quick test_microcode_opcodes_disjoint;
          Alcotest.test_case "translate fanout" `Quick test_microcode_translate_fanout;
        ] );
      ( "timing-queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "drain until" `Quick test_queue_drain_until;
          Alcotest.test_case "violations" `Quick test_queue_violation_detection;
          Alcotest.test_case "peak depth" `Quick test_queue_peak_depth;
          Alcotest.test_case "pool routing" `Quick test_pool_routing;
        ] );
      ( "controller",
        [
          Alcotest.test_case "runs bell" `Quick test_controller_runs_bell;
          Alcotest.test_case "trace ordering" `Quick test_controller_trace_ordering;
          Alcotest.test_case "rz is software" `Quick test_controller_rz_is_software;
          Alcotest.test_case "retargeting" `Quick test_retargeting_same_program_shape;
          Alcotest.test_case "matches direct sim" `Quick test_controller_matches_direct_simulation;
          Alcotest.test_case "stats sane" `Quick test_controller_stats_sane;
          Alcotest.test_case "teleportation e2e" `Quick test_teleportation_through_microarch;
          Alcotest.test_case "trace rendering" `Quick test_trace_rendering;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "fault off identical" `Quick
            test_run_shots_fault_off_identical;
          Alcotest.test_case "fault accounting" `Quick test_run_shots_fault_accounting;
          Alcotest.test_case "unknown mnemonic structured" `Quick
            test_unknown_mnemonic_structured;
        ] );
      ( "qisa",
        [
          Alcotest.test_case "arithmetic" `Quick test_qisa_classical_arithmetic;
          Alcotest.test_case "loop" `Quick test_qisa_loop;
          Alcotest.test_case "validation" `Quick test_qisa_validation;
          Alcotest.test_case "repeat until success" `Quick test_qisa_repeat_until_success;
          Alcotest.test_case "active reset" `Quick test_qisa_active_reset;
          Alcotest.test_case "step budget" `Quick test_qisa_step_budget;
          Alcotest.test_case "to_string" `Quick test_qisa_to_string;
          Alcotest.test_case "parse roundtrip" `Quick test_qisa_parse_roundtrip;
          Alcotest.test_case "parse conditional" `Quick test_qisa_parse_conditional_op;
          Alcotest.test_case "parse errors" `Quick test_qisa_parse_errors;
        ] );
    ]
