version 1.0
# Bell pair: the two-qubit hello world (lint corpus).
qubits 2

.prepare
  prep_z q[0]
  prep_z q[1]
  h q[0]
  cnot q[0], q[1]

.readout
  measure q[0]
  measure q[1]
