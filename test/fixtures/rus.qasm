version 1.0
# Repeat-until-success shape: measure, reset, retry. The explicit prep_z
# between reuse keeps the checker quiet (lint corpus).
qubits 2

.attempt(3)
  prep_z q[0]
  h q[0]
  cnot q[0], q[1]
  measure q[0]
  c-x b[0], q[1]

.readout
  measure q[1]
