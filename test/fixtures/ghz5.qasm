version 1.0
# Five-qubit GHZ chain (lint corpus).
qubits 5

.entangle
  h q[0]
  cnot q[0], q[1]
  cnot q[1], q[2]
  cnot q[2], q[3]
  cnot q[3], q[4]

.readout
  measure_all
