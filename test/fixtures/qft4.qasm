version 1.0
# Four-qubit QFT with controlled phases and final swaps (lint corpus).
qubits 4

.qft
  h q[0]
  cr q[1], q[0], 2
  cr q[2], q[0], 3
  cr q[3], q[0], 4
  h q[1]
  cr q[2], q[1], 2
  cr q[3], q[1], 3
  h q[2]
  cr q[3], q[2], 2
  h q[3]
  swap q[0], q[3]
  swap q[1], q[2]

.readout
  measure_all
