version 1.0
# Teleportation with mid-circuit measurement and binary-controlled
# corrections: exercises the checker's fast-feedback exemption (no C03)
# and read-before-overwrite logic (no C04). Lint corpus.
qubits 3

.prepare
  prep_z q[0]
  prep_z q[1]
  prep_z q[2]
  ry q[0], 1.047198
  h q[1]
  cnot q[1], q[2]

.bell_measure
  cnot q[0], q[1]
  h q[0]
  measure q[0]
  measure q[1]

.correct
  c-x b[1], q[2]
  c-z b[0], q[2]
  measure q[2]
