(* Tests for the OpenQL-style compiler: platforms and decomposition.
   Scheduling/mapping/eQASM tests are added alongside those passes. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Platform = Qca_compiler.Platform
module Decompose = Qca_compiler.Decompose
module Matrix = Qca_util.Matrix
module Rng = Qca_util.Rng

(* --- platform --- *)

let test_perfect_platform () =
  let p = Platform.perfect 5 in
  Alcotest.(check bool) "supports toffoli" true (Platform.supports p Gate.Toffoli);
  Alcotest.(check bool) "all coupled" true (Platform.are_coupled p 0 4);
  Alcotest.(check bool) "no self coupling" false (Platform.are_coupled p 2 2)

let test_superconducting_platform () =
  let p = Platform.superconducting_17 in
  Alcotest.(check bool) "supports x90" true (Platform.supports p Gate.X90);
  Alcotest.(check bool) "no native toffoli" false (Platform.supports p Gate.Toffoli);
  Alcotest.(check bool) "no native h" false (Platform.supports p Gate.H);
  let g = Platform.connectivity p in
  Alcotest.(check bool) "connected" true (Qca_util.Graph.is_connected g);
  Alcotest.(check int) "17 qubits" 17 (Qca_util.Graph.size g)

let test_durations () =
  let p = Platform.superconducting_17 in
  Alcotest.(check int) "cz 40ns = 2 cycles" 2
    (Platform.duration_cycles p (Gate.Unitary (Gate.Cz, [| 0; 1 |])));
  Alcotest.(check int) "measure 300ns = 15 cycles" 15
    (Platform.duration_cycles p (Gate.Measure 0));
  Alcotest.(check int) "rz virtual but >= 1 cycle" 1
    (Platform.duration_cycles p (Gate.Unitary (Gate.Rz 0.3, [| 0 |])))

let test_semiconducting_differs () =
  let sc = Platform.superconducting_17 and semi = Platform.semiconducting_4 in
  let cz = Gate.Unitary (Gate.Cz, [| 0; 1 |]) in
  Alcotest.(check bool) "semi slower" true
    (Platform.duration_ns semi cz > Platform.duration_ns sc cz)

(* --- decomposition identities, gate by gate --- *)

let check_identity u =
  let ops = Array.init (Gate.arity u) (fun i -> i) in
  let original = Circuit.of_list (Gate.arity u) [ Gate.Unitary (u, ops) ] in
  let expanded = Circuit.of_list (Gate.arity u) (Decompose.expand u ops) in
  Alcotest.(check bool)
    (Printf.sprintf "%s decomposition" (Gate.name u))
    true
    (Decompose.check_equivalent original expanded)

let test_single_qubit_identities () =
  List.iter check_identity
    [ Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdag; Gate.T; Gate.Tdag;
      Gate.Rx 0.731; Gate.Ry (-1.27); Gate.Rz 2.5 ]

let test_two_qubit_identities () =
  List.iter check_identity
    [ Gate.Cnot; Gate.Swap; Gate.Cphase 1.1; Gate.Cphase (-0.4); Gate.Crk 2; Gate.Crk 4 ]

let test_toffoli_identity () = check_identity Gate.Toffoli

let test_expand_empty_for_identity_gate () =
  Alcotest.(check int) "i drops" 0 (List.length (Decompose.expand Gate.I [| 0 |]))

(* --- full decomposition pass --- *)

let test_run_produces_primitives_only () =
  let p = Platform.superconducting_17 in
  let circuits = [ Library.bell (); Library.ghz 5; Library.qft 4; Library.cuccaro_adder 2 ] in
  List.iter
    (fun circuit ->
      (* Re-home the circuit on the platform's 17 qubits. *)
      let widened =
        Circuit.of_list ~name:(Circuit.name circuit) 17 (Circuit.instructions circuit)
      in
      let lowered = Decompose.run p widened in
      List.iter
        (fun instr ->
          match instr with
          | Gate.Unitary (u, _) | Gate.Conditional (_, u, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s native in %s" (Gate.name u) (Circuit.name circuit))
                true (Platform.supports p u)
          | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> ())
        (Circuit.instructions lowered))
    circuits

let test_run_preserves_semantics () =
  let p = Platform.superconducting_17 in
  List.iter
    (fun circuit ->
      let lowered = Decompose.run p circuit in
      Alcotest.(check bool)
        (Circuit.name circuit ^ " semantics preserved")
        true
        (Decompose.check_equivalent circuit lowered))
    [ Library.bell (); Library.qft 3; Library.ghz 4 ]

let test_run_noop_on_perfect () =
  let p = Platform.perfect 4 in
  let circuit = Library.qft 4 in
  let lowered = Decompose.run p circuit in
  Alcotest.(check bool) "unchanged" true (Circuit.equal circuit lowered)

let prop_decompose_preserves_random_circuits =
  QCheck.Test.make ~name:"decompose preserves random circuits" ~count:30
    (QCheck.make
       ~print:(fun (s, q, g) -> Printf.sprintf "seed=%d q=%d g=%d" s q g)
       QCheck.Gen.(triple (int_range 0 9999) (int_range 2 4) (int_range 1 15)))
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let platform =
        { (Platform.perfect qubits) with Platform.primitives = [ "i"; "x90"; "mx90"; "y90"; "my90"; "rz"; "cz" ] }
      in
      let lowered = Decompose.run platform circuit in
      Decompose.check_equivalent circuit lowered)

(* --- optimize --- *)

module Optimize = Qca_compiler.Optimize
module Schedule = Qca_compiler.Schedule
module Mapping = Qca_compiler.Mapping
module Eqasm = Qca_compiler.Eqasm
module Compiler = Qca_compiler.Compiler
module State = Qca_qx.State
module Sim = Qca_qx.Sim

let test_optimize_cancels_pairs () =
  let c =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.H, [| 0 |]);
        Gate.Unitary (Gate.H, [| 0 |]);
        Gate.Unitary (Gate.Cnot, [| 0; 1 |]);
        Gate.Unitary (Gate.Cnot, [| 0; 1 |]);
      ]
  in
  let optimized, stats = Optimize.run c in
  Alcotest.(check int) "all gone" 0 (Circuit.gate_count optimized);
  Alcotest.(check int) "two pairs" 2 stats.Optimize.removed_pairs

let test_optimize_respects_interference () =
  (* H q0; X q0; H q0 must NOT cancel the two H gates around the X. The
     basic sweep leaves all three; the full pipeline may legally rewrite
     the triple via H-conjugation (H·X·H = Z) but must stay equivalent. *)
  let c =
    Circuit.of_list 1
      [
        Gate.Unitary (Gate.H, [| 0 |]);
        Gate.Unitary (Gate.X, [| 0 |]);
        Gate.Unitary (Gate.H, [| 0 |]);
      ]
  in
  let basic, _ = Optimize.run_basic c in
  Alcotest.(check int) "basic: nothing removed" 3 (Circuit.gate_count basic);
  let optimized, stats = Optimize.run c in
  Alcotest.(check bool) "pipeline result equivalent" true
    (Decompose.check_equivalent c optimized);
  Alcotest.(check int) "conjugated to Z" 1 stats.Optimize.conjugations;
  Alcotest.(check int) "single gate" 1 (Circuit.gate_count optimized)

let test_optimize_merges_rotations () =
  let c =
    Circuit.of_list 1
      [ Gate.Unitary (Gate.Rz 0.4, [| 0 |]); Gate.Unitary (Gate.Rz 0.6, [| 0 |]) ]
  in
  let optimized, stats = Optimize.run c in
  Alcotest.(check int) "merged" 1 stats.Optimize.merged_rotations;
  match Circuit.instructions optimized with
  | [ Gate.Unitary (Gate.Rz t, _) ] -> Alcotest.(check (float 1e-9)) "sum" 1.0 t
  | _ -> Alcotest.fail "expected single rz"

let test_optimize_drops_null_rotations () =
  let c =
    Circuit.of_list 1
      [ Gate.Unitary (Gate.Rz 1.0, [| 0 |]); Gate.Unitary (Gate.Rz (-1.0), [| 0 |]) ]
  in
  let optimized, _ = Optimize.run c in
  Alcotest.(check int) "rotations vanish" 0 (Circuit.gate_count optimized)

let test_optimize_sdag_s_cancel () =
  let c =
    Circuit.of_list 1 [ Gate.Unitary (Gate.S, [| 0 |]); Gate.Unitary (Gate.Sdag, [| 0 |]) ]
  in
  let optimized, _ = Optimize.run c in
  Alcotest.(check int) "cancelled" 0 (Circuit.gate_count optimized)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves semantics" ~count:50
    (QCheck.make
       ~print:(fun (s, q, g) -> Printf.sprintf "seed=%d q=%d g=%d" s q g)
       QCheck.Gen.(triple (int_range 0 9999) (int_range 2 4) (int_range 1 25)))
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let optimized = Optimize.run_circuit circuit in
      Circuit.gate_count optimized = 0
      && Circuit.gate_count circuit = 0
      || Decompose.check_equivalent circuit optimized)

(* --- schedule --- *)

let test_schedule_parallel_singles () =
  let p = Platform.perfect 4 in
  let c =
    Circuit.of_list 4 (List.init 4 (fun q -> Gate.Unitary (Gate.H, [| q |])))
  in
  let s = Schedule.run p c in
  Alcotest.(check int) "fully parallel" 1 s.Schedule.makespan;
  Alcotest.(check int) "peak 4" 4 (Schedule.max_concurrency s)

let test_schedule_dependency_chain () =
  let p = Platform.perfect 2 in
  let s = Schedule.run p (Library.bell ()) in
  Alcotest.(check int) "serial" 2 s.Schedule.makespan;
  Alcotest.(check bool) "valid" true (Schedule.validate s)

let test_schedule_durations_respected () =
  let p = Platform.superconducting_17 in
  let c =
    Circuit.of_list 17
      [ Gate.Unitary (Gate.Cz, [| 0; 1 |]); Gate.Unitary (Gate.X90, [| 0 |]) ]
  in
  let s = Schedule.run p c in
  (* cz lasts 2 cycles; x90 on q0 must start at cycle 2 *)
  (match s.Schedule.entries with
  | [ e1; e2 ] ->
      Alcotest.(check int) "cz at 0" 0 e1.Schedule.start_cycle;
      Alcotest.(check int) "x90 at 2" 2 e2.Schedule.start_cycle
  | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check bool) "valid" true (Schedule.validate s)

let test_schedule_two_qubit_limit () =
  let p = Platform.perfect 6 in
  let c =
    Circuit.of_list 6
      [
        Gate.Unitary (Gate.Cnot, [| 0; 1 |]);
        Gate.Unitary (Gate.Cnot, [| 2; 3 |]);
        Gate.Unitary (Gate.Cnot, [| 4; 5 |]);
      ]
  in
  let unconstrained = Schedule.run p c in
  Alcotest.(check int) "parallel" 1 unconstrained.Schedule.makespan;
  let constrained = Schedule.run ~max_parallel_two_qubit:1 p c in
  Alcotest.(check int) "serialised" 3 constrained.Schedule.makespan;
  Alcotest.(check bool) "valid" true (Schedule.validate constrained)

let test_schedule_alap_same_makespan () =
  let p = Platform.superconducting_17 in
  let circuit = Decompose.run p (Circuit.of_list 17 (Circuit.instructions (Library.ghz 5))) in
  let asap = Schedule.run ~policy:Schedule.Asap p circuit in
  let alap = Schedule.run ~policy:Schedule.Alap p circuit in
  Alcotest.(check int) "same makespan" asap.Schedule.makespan alap.Schedule.makespan;
  Alcotest.(check bool) "alap valid" true (Schedule.validate alap);
  (* ALAP must not start anything earlier than ASAP does *)
  let first_start s =
    List.fold_left (fun acc (e : Schedule.entry) -> min acc e.Schedule.start_cycle)
      max_int s.Schedule.entries
  in
  Alcotest.(check bool) "alap starts later or equal" true
    (first_start alap >= first_start asap)

let test_schedule_barrier_synchronises () =
  let p = Platform.perfect 2 in
  let c =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.H, [| 0 |]);
        Gate.Barrier [| 0; 1 |];
        Gate.Unitary (Gate.H, [| 1 |]);
      ]
  in
  let s = Schedule.run p c in
  match s.Schedule.entries with
  | [ _; _; e3 ] ->
      Alcotest.(check bool) "h q1 after barrier" true (e3.Schedule.start_cycle >= 2)
  | _ -> Alcotest.fail "expected three entries"

(* --- mapping --- *)

let line_platform n =
  let g = Qca_util.Graph.create n in
  for v = 0 to n - 2 do
    Qca_util.Graph.add_edge g v (v + 1) 1.0
  done;
  { (Platform.perfect n) with Platform.topology = Platform.Custom g }

let test_mapping_no_swaps_when_adjacent () =
  let p = line_platform 4 in
  let c = Circuit.of_list 4 [ Gate.Unitary (Gate.Cnot, [| 0; 1 |]) ] in
  let r = Mapping.run p c in
  Alcotest.(check int) "no swaps" 0 r.Mapping.swaps_added

let test_mapping_inserts_swaps () =
  let p = line_platform 4 in
  let c = Circuit.of_list 4 [ Gate.Unitary (Gate.Cnot, [| 0; 3 |]) ] in
  let r = Mapping.run p c in
  Alcotest.(check int) "two swaps on a line" 2 r.Mapping.swaps_added;
  (* Every 2q gate in the output must touch coupled physical qubits. *)
  List.iter
    (fun instr ->
      match instr with
      | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u = 2 ->
          Alcotest.(check bool) "coupled" true (Platform.are_coupled p ops.(0) ops.(1))
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ -> ())
    (Circuit.instructions r.Mapping.circuit)

(* Semantics: simulate routed circuit, undo the final layout permutation,
   compare with the original state. *)
let mapping_preserves_semantics p circuit r =
  let original = (Sim.run circuit).Sim.state in
  let routed = (Sim.run r.Mapping.circuit).Sim.state in
  (* Build permutation: logical qubit l lives at physical r.final_layout.(l). *)
  let n = Circuit.qubit_count circuit in
  let phys_n = p.Platform.qubit_count in
  let dim = 1 lsl phys_n in
  let ok = ref true in
  for basis = 0 to (1 lsl n) - 1 do
    (* physical basis index corresponding to logical basis *)
    let phys_basis = ref 0 in
    for l = 0 to n - 1 do
      if basis land (1 lsl l) <> 0 then
        phys_basis := !phys_basis lor (1 lsl r.Mapping.final_layout.(l))
    done;
    let a = State.amplitude original basis in
    let b = State.amplitude routed !phys_basis in
    if not (Qca_util.Cplx.approx_equal ~eps:1e-7 a b) then ok := false
  done;
  (* All other physical amplitudes must be ~0. *)
  for k = 0 to dim - 1 do
    ignore k
  done;
  !ok

let test_mapping_preserves_semantics () =
  let p = line_platform 4 in
  let c = Library.ghz 4 in
  let r = Mapping.run p c in
  Alcotest.(check bool) "semantics" true (mapping_preserves_semantics p c r)

let test_mapping_lookahead_not_worse_much () =
  let p = line_platform 6 in
  let rng = Rng.create 2024 in
  let c = Library.random_circuit rng ~qubits:6 ~gates:40 in
  let greedy = Mapping.run ~strategy:Mapping.Greedy p c in
  let look = Mapping.run ~strategy:(Mapping.Lookahead 5) p c in
  Alcotest.(check bool) "lookahead preserves semantics" true
    (mapping_preserves_semantics p c look);
  Alcotest.(check bool) "both route" true
    (greedy.Mapping.swaps_added >= 0 && look.Mapping.swaps_added >= 0)

let test_mapping_by_degree_placement () =
  let p = line_platform 5 in
  let c = Library.ghz 5 in
  let r = Mapping.run ~placement:Mapping.By_degree p c in
  Alcotest.(check bool) "semantics under heuristic placement" true
    (mapping_preserves_semantics p c r)

let test_mapping_all_to_all_no_swaps () =
  let p = Platform.perfect 8 in
  let rng = Rng.create 7 in
  let c = Library.random_circuit rng ~qubits:8 ~gates:60 in
  let r = Mapping.run p c in
  Alcotest.(check int) "no swaps needed" 0 r.Mapping.swaps_added

let test_mapping_rejects_toffoli () =
  let p = line_platform 4 in
  let c = Circuit.of_list 4 [ Gate.Unitary (Gate.Toffoli, [| 0; 1; 2 |]) ] in
  match Mapping.run p c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* --- eqasm --- *)

let test_eqasm_structure () =
  let p = Platform.superconducting_17 in
  let circuit = Decompose.run p (Circuit.of_list 17 (Circuit.instructions (Library.bell ()))) in
  let s = Schedule.run p circuit in
  let program = Eqasm.of_schedule p s in
  let stats = Eqasm.stats program in
  Alcotest.(check bool) "has bundles" true (stats.Eqasm.bundle_count > 0);
  Alcotest.(check bool) "uses masks" true (stats.Eqasm.mask_registers_used > 0);
  Alcotest.(check int) "duration" (s.Schedule.makespan * 20) stats.Eqasm.duration_ns;
  let text = Eqasm.to_string program in
  Alcotest.(check bool) "mentions SMIS" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 4 <= String.length text && (String.sub text i 4 = "SMIS" || contains (i + 1))
    in
    contains 0)

let test_eqasm_pre_intervals_sum () =
  let p = Platform.superconducting_17 in
  let circuit = Decompose.run p (Circuit.of_list 17 (Circuit.instructions (Library.ghz 4))) in
  let s = Schedule.run p circuit in
  let program = Eqasm.of_schedule p s in
  let sum =
    List.fold_left
      (fun acc instr ->
        match instr with
        | Eqasm.Bundle (pre, _) -> acc + pre
        | Eqasm.Qwait n -> acc + n
        | Eqasm.Smis _ | Eqasm.Smit _ -> acc)
      0 program.Eqasm.instructions
  in
  Alcotest.(check int) "timing adds up to makespan" s.Schedule.makespan sum

(* --- end to end --- *)

let test_compile_perfect_bell () =
  let p = Platform.perfect 2 in
  let out = Compiler.compile p Compiler.Perfect (Library.bell ()) in
  Alcotest.(check bool) "no eqasm" true (out.Compiler.eqasm = None);
  Alcotest.(check int) "makespan 2" 2 out.Compiler.schedule.Schedule.makespan

let test_compile_realistic_bell_runs () =
  let p = Platform.superconducting_17 in
  let circuit =
    Circuit.append (Library.bell ())
      (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
  in
  let out = Compiler.compile p Compiler.Realistic circuit in
  Alcotest.(check bool) "eqasm present" true (out.Compiler.eqasm <> None);
  let rng = Rng.create 31337 in
  let hist = Compiler.execute ~shots:400 ~rng out in
  (* Bell correlations should dominate despite realistic noise. *)
  let correlated =
    List.fold_left
      (fun acc (key, count) ->
        let c0 = key.[String.length key - 1] and c1 = key.[String.length key - 2] in
        if c0 = c1 && c0 <> '-' then acc + count else acc)
      0 hist
  in
  Alcotest.(check bool) "mostly correlated" true (float_of_int correlated /. 400.0 > 0.8)

let test_compile_report_nonempty () =
  let p = Platform.superconducting_17 in
  let out = Compiler.compile p Compiler.Realistic (Library.ghz 4) in
  let text = Compiler.report out in
  Alcotest.(check bool) "report has passes" true (String.length text > 100);
  Alcotest.(check bool) "multiple passes" true (List.length out.Compiler.passes >= 4)

let test_compile_preserves_semantics_via_sim () =
  (* Perfect-mode compile of QFT must leave the state unchanged. *)
  let p = Platform.perfect 4 in
  let circuit = Library.qft 4 in
  let out = Compiler.compile p Compiler.Perfect circuit in
  let a = (Sim.run circuit).Sim.state in
  let b = (Sim.run out.Compiler.physical).Sim.state in
  Alcotest.(check (float 1e-9)) "fidelity 1" 1.0 (State.fidelity a b)

(* --- pipeline-wide properties --- *)

let arb_seeded =
  QCheck.make
    ~print:(fun (s, q, g) -> Printf.sprintf "seed=%d q=%d g=%d" s q g)
    QCheck.Gen.(triple (int_range 0 99999) (int_range 2 8) (int_range 1 50))

let prop_schedule_always_valid =
  QCheck.Test.make ~name:"schedules are always valid" ~count:60 arb_seeded
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let widened = Circuit.of_list 17 (Circuit.instructions circuit) in
      let lowered = Decompose.run Platform.superconducting_17 widened in
      let asap = Schedule.run ~policy:Schedule.Asap Platform.superconducting_17 lowered in
      let alap = Schedule.run ~policy:Schedule.Alap Platform.superconducting_17 lowered in
      Schedule.validate asap && Schedule.validate alap
      && asap.Schedule.makespan = alap.Schedule.makespan)

let prop_eqasm_timing_consistent =
  QCheck.Test.make ~name:"eqasm pre-intervals sum to makespan" ~count:60 arb_seeded
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let widened = Circuit.of_list 17 (Circuit.instructions circuit) in
      let lowered = Decompose.run Platform.superconducting_17 widened in
      let s = Schedule.run Platform.superconducting_17 lowered in
      let program = Eqasm.of_schedule Platform.superconducting_17 s in
      let sum =
        List.fold_left
          (fun acc instr ->
            match instr with
            | Eqasm.Bundle (pre, _) -> acc + pre
            | Eqasm.Qwait n -> acc + n
            | Eqasm.Smis _ | Eqasm.Smit _ -> acc)
          0 program.Eqasm.instructions
      in
      sum = s.Schedule.makespan)

let line_platform_n n =
  let g = Qca_util.Graph.create n in
  for v = 0 to n - 2 do
    Qca_util.Graph.add_edge g v (v + 1) 1.0
  done;
  { (Platform.perfect n) with Platform.topology = Platform.Custom g }

let prop_mapping_preserves_semantics_random =
  QCheck.Test.make ~name:"routing preserves semantics on random circuits" ~count:40
    (QCheck.make
       ~print:(fun (s, g) -> Printf.sprintf "seed=%d g=%d" s g)
       QCheck.Gen.(pair (int_range 0 99999) (int_range 1 30)))
    (fun (seed, gates) ->
      let qubits = 5 in
      let p = line_platform_n qubits in
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let r = Mapping.run p circuit in
      let original = (Sim.run circuit).Sim.state in
      let routed = (Sim.run r.Mapping.circuit).Sim.state in
      let ok = ref true in
      for basis = 0 to (1 lsl qubits) - 1 do
        let phys_basis = ref 0 in
        for l = 0 to qubits - 1 do
          if basis land (1 lsl l) <> 0 then
            phys_basis := !phys_basis lor (1 lsl r.Mapping.final_layout.(l))
        done;
        if
          not
            (Qca_util.Cplx.approx_equal ~eps:1e-7 (State.amplitude original basis)
               (State.amplitude routed !phys_basis))
        then ok := false
      done;
      !ok)

let prop_full_compile_executes =
  QCheck.Test.make ~name:"full realistic compile always executes" ~count:25 arb_seeded
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let out = Compiler.compile Platform.superconducting_17 Compiler.Realistic circuit in
      (* executing the physical circuit on ideal qubits must preserve norm *)
      let result = Sim.run out.Compiler.physical in
      Float.abs (State.norm result.Sim.state -. 1.0) < 1e-9
      && out.Compiler.eqasm <> None)

(* --- OpenQL frontend --- *)

module Openql = Qca_compiler.Openql

let test_openql_bell () =
  let k = Openql.kernel ~name:"entangle" ~qubits:2 in
  Openql.h k 0;
  Openql.cnot k 0 1;
  Openql.measure_all k;
  let p = Openql.program ~name:"bell" ~qubits:2 in
  Openql.add_kernel p k;
  let hist = Openql.simulate ~rng:(Rng.create 3) ~shots:500 p in
  List.iter
    (fun (key, _) ->
      Alcotest.(check bool) ("correlated: " ^ key) true (key = "00" || key = "11"))
    hist

let test_openql_for_loop () =
  let flip = Openql.kernel ~name:"flip" ~qubits:1 in
  Openql.x flip 0;
  let p = Openql.program ~name:"triple-flip" ~qubits:1 in
  Openql.for_loop p ~count:3 flip;
  let circuit = Openql.to_circuit p in
  Alcotest.(check int) "3 gates" 3 (Circuit.gate_count circuit);
  (* odd number of X: ends in |1> *)
  let final = (Sim.run circuit).Sim.state in
  Alcotest.(check (float 1e-9)) "ends in 1" 1.0 (State.prob_one final 0)

let test_openql_cqasm_structure () =
  let init = Openql.kernel ~name:"init" ~qubits:2 in
  Openql.prepare init 0;
  let body = Openql.kernel ~name:"body" ~qubits:2 in
  Openql.h body 0;
  let p = Openql.program ~name:"structured" ~qubits:2 in
  Openql.add_kernel p init;
  Openql.add_kernel ~iterations:4 p body;
  let source = Openql.to_cqasm p in
  let contains needle =
    let nl = String.length needle and hl = String.length source in
    let rec go i = i + nl <= hl && (String.sub source i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ".init" true (contains ".init");
  Alcotest.(check bool) ".body(4)" true (contains ".body(4)");
  (* and the emitted source parses back to the same flattened circuit *)
  let reparsed = Qca_circuit.Cqasm.parse_circuit source in
  Alcotest.(check bool) "roundtrip" true
    (Circuit.instructions reparsed = Circuit.instructions (Openql.to_circuit p))

let test_openql_conditional () =
  let k = Openql.kernel ~name:"feedback" ~qubits:2 in
  Openql.x k 0;
  Openql.measure k 0;
  Openql.cond k ~bit:0 Gate.X [ 1 ];
  Openql.measure k 1;
  let p = Openql.program ~name:"cond" ~qubits:2 in
  Openql.add_kernel p k;
  let hist = Openql.simulate ~rng:(Rng.create 5) ~shots:100 p in
  Alcotest.(check (list (pair string int))) "always 11" [ ("11", 100) ] hist

let test_openql_compile_through_stack () =
  let k = Openql.kernel ~name:"ghz" ~qubits:3 in
  Openql.h k 0;
  Openql.cnot k 0 1;
  Openql.cnot k 1 2;
  let p = Openql.program ~name:"ghz3" ~qubits:3 in
  Openql.add_kernel p k;
  let out =
    Openql.compile ~platform:Platform.superconducting_17 ~mode:Compiler.Realistic p
  in
  Alcotest.(check bool) "eqasm produced" true (out.Compiler.eqasm <> None)

let test_openql_validation () =
  (match Openql.kernel ~name:"bad" ~qubits:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero qubits accepted");
  let k = Openql.kernel ~name:"k" ~qubits:2 in
  (match Openql.gate k Gate.Cnot [ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted");
  let p = Openql.program ~name:"p" ~qubits:3 in
  match Openql.add_kernel p k with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "qubit mismatch accepted"

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_compiler"
    [
      ( "platform",
        [
          Alcotest.test_case "perfect" `Quick test_perfect_platform;
          Alcotest.test_case "superconducting" `Quick test_superconducting_platform;
          Alcotest.test_case "durations" `Quick test_durations;
          Alcotest.test_case "semiconducting differs" `Quick test_semiconducting_differs;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "single-qubit identities" `Quick test_single_qubit_identities;
          Alcotest.test_case "two-qubit identities" `Quick test_two_qubit_identities;
          Alcotest.test_case "toffoli identity" `Quick test_toffoli_identity;
          Alcotest.test_case "identity gate drops" `Quick test_expand_empty_for_identity_gate;
          Alcotest.test_case "primitives only" `Quick test_run_produces_primitives_only;
          Alcotest.test_case "semantics preserved" `Quick test_run_preserves_semantics;
          Alcotest.test_case "noop on perfect" `Quick test_run_noop_on_perfect;
          qtest prop_decompose_preserves_random_circuits;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "cancels pairs" `Quick test_optimize_cancels_pairs;
          Alcotest.test_case "respects interference" `Quick test_optimize_respects_interference;
          Alcotest.test_case "merges rotations" `Quick test_optimize_merges_rotations;
          Alcotest.test_case "drops null rotations" `Quick test_optimize_drops_null_rotations;
          Alcotest.test_case "s/sdag cancel" `Quick test_optimize_sdag_s_cancel;
          qtest prop_optimize_preserves_semantics;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "parallel singles" `Quick test_schedule_parallel_singles;
          Alcotest.test_case "dependency chain" `Quick test_schedule_dependency_chain;
          Alcotest.test_case "durations" `Quick test_schedule_durations_respected;
          Alcotest.test_case "2q limit" `Quick test_schedule_two_qubit_limit;
          Alcotest.test_case "alap same makespan" `Quick test_schedule_alap_same_makespan;
          Alcotest.test_case "barrier" `Quick test_schedule_barrier_synchronises;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "no swaps when adjacent" `Quick test_mapping_no_swaps_when_adjacent;
          Alcotest.test_case "inserts swaps" `Quick test_mapping_inserts_swaps;
          Alcotest.test_case "preserves semantics" `Quick test_mapping_preserves_semantics;
          Alcotest.test_case "lookahead" `Quick test_mapping_lookahead_not_worse_much;
          Alcotest.test_case "by-degree placement" `Quick test_mapping_by_degree_placement;
          Alcotest.test_case "all-to-all no swaps" `Quick test_mapping_all_to_all_no_swaps;
          Alcotest.test_case "rejects toffoli" `Quick test_mapping_rejects_toffoli;
        ] );
      ( "eqasm",
        [
          Alcotest.test_case "structure" `Quick test_eqasm_structure;
          Alcotest.test_case "pre-intervals sum" `Quick test_eqasm_pre_intervals_sum;
        ] );
      ( "pipeline-properties",
        [
          qtest prop_schedule_always_valid;
          qtest prop_eqasm_timing_consistent;
          qtest prop_mapping_preserves_semantics_random;
          qtest prop_full_compile_executes;
        ] );
      ( "openql",
        [
          Alcotest.test_case "bell" `Quick test_openql_bell;
          Alcotest.test_case "for loop" `Quick test_openql_for_loop;
          Alcotest.test_case "cqasm structure" `Quick test_openql_cqasm_structure;
          Alcotest.test_case "conditional feedback" `Quick test_openql_conditional;
          Alcotest.test_case "compile through stack" `Quick test_openql_compile_through_stack;
          Alcotest.test_case "validation" `Quick test_openql_validation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "perfect bell" `Quick test_compile_perfect_bell;
          Alcotest.test_case "realistic bell runs" `Quick test_compile_realistic_bell_runs;
          Alcotest.test_case "report" `Quick test_compile_report_nonempty;
          Alcotest.test_case "semantics via sim" `Quick test_compile_preserves_semantics_via_sim;
        ] );
    ]
