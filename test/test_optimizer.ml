(* Tests for the optimizing pass pipeline (docs/compiler.md): one unit test
   per rewrite rule, Euler-identity properties for the resynthesis helpers,
   distribution preservation through the engine at matched seeds, SABRE
   conformance under the pass-verifier, the engine-fusion interplay, and
   the fixture-corpus depth guard. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Platform = Qca_compiler.Platform
module Optimize = Qca_compiler.Optimize
module Decompose = Qca_compiler.Decompose
module Mapping = Qca_compiler.Mapping
module Compiler = Qca_compiler.Compiler
module Verify = Qca_analysis.Verify
module Diagnostic = Qca_analysis.Diagnostic
module Engine = Qca_qx.Engine
module Matrix = Qca_util.Matrix
module Rng = Qca_util.Rng

let u g ops = Gate.Unitary (g, Array.of_list ops)
let circ n gates = Circuit.of_list n gates

let check_equiv name original optimized =
  Alcotest.(check bool)
    (name ^ ": equivalent")
    true
    (Circuit.gate_count original = 0
     && Circuit.gate_count optimized = 0
    || Decompose.check_equivalent original optimized)

let optimize name c expected_gates =
  let o, stats = Optimize.run c in
  check_equiv name c o;
  Alcotest.(check int) (name ^ ": gate count") expected_gates (Circuit.gate_count o);
  (o, stats)

(* --- one unit test per peephole rewrite rule --- *)

let test_rule_inverse_pair () =
  let c = circ 1 [ u Gate.H [ 0 ]; u Gate.H [ 0 ] ] in
  let _, stats = optimize "h.h" c 0 in
  Alcotest.(check int) "one pair" 1 stats.Optimize.removed_pairs;
  ignore (optimize "t.tdag" (circ 1 [ u Gate.T [ 0 ]; u Gate.Tdag [ 0 ] ]) 0);
  ignore (optimize "cnot.cnot" (circ 2 [ u Gate.Cnot [ 0; 1 ]; u Gate.Cnot [ 0; 1 ] ]) 0)

let test_rule_merge_rotations () =
  let c = circ 1 [ u (Gate.Rz 0.3) [ 0 ]; u (Gate.Rz 0.4) [ 0 ] ] in
  let o, _ = optimize "rz merge" c 1 in
  (match Circuit.instructions o with
  | [ Gate.Unitary (Gate.Rz t, _) ] ->
      Alcotest.(check (float 1e-9)) "angles add" 0.7 t
  | _ -> Alcotest.fail "expected a single rz");
  ignore (optimize "rx merge" (circ 1 [ u (Gate.Rx 1.0) [ 0 ]; u (Gate.Rx 0.5) [ 0 ] ]) 1)

let test_rule_pair_contraction () =
  (* Each like pair contracts to one gate (the pipeline may render it as a
     named gate or an equivalent rotation; equivalence is what matters). *)
  ignore (optimize "s.s -> z" (circ 1 [ u Gate.S [ 0 ]; u Gate.S [ 0 ] ]) 1);
  ignore (optimize "t.t -> s" (circ 1 [ u Gate.T [ 0 ]; u Gate.T [ 0 ] ]) 1);
  ignore (optimize "x90.x90 -> x" (circ 1 [ u Gate.X90 [ 0 ]; u Gate.X90 [ 0 ] ]) 1)

let test_rule_drop_identity () =
  let c = circ 1 [ u Gate.I [ 0 ]; u (Gate.Rz 1e-13) [ 0 ]; u Gate.X [ 0 ] ] in
  let _, stats = optimize "identity drop" c 1 in
  Alcotest.(check int) "two dropped" 2 stats.Optimize.dropped_identities

let test_rule_h_conjugation () =
  let c = circ 1 [ u Gate.H [ 0 ]; u Gate.X [ 0 ]; u Gate.H [ 0 ] ] in
  let _, stats = optimize "h.x.h -> z" c 1 in
  Alcotest.(check int) "one conjugation" 1 stats.Optimize.conjugations;
  (* CNOT target conjugated by H on both sides is a CZ. *)
  let c2 =
    circ 2 [ u Gate.H [ 1 ]; u Gate.Cnot [ 0; 1 ]; u Gate.H [ 1 ] ]
  in
  let o2, _ = optimize "h.cnot.h -> cz" c2 1 in
  match Circuit.instructions o2 with
  | [ Gate.Unitary (Gate.Cz, _) ] -> ()
  | _ -> Alcotest.fail "expected a single cz"

let test_rule_commuting_cancellation () =
  (* The Rz pair cancels through the diagonal CZ it commutes with. *)
  let c =
    circ 2
      [ u (Gate.Rz 0.9) [ 0 ]; u Gate.Cz [ 0; 1 ]; u (Gate.Rz (-0.9)) [ 0 ] ]
  in
  ignore (optimize "rz cancels through cz" c 1)

let test_rule_rz_accumulation_across_cnot () =
  (* Rz on the control commutes past CNOT: the two rotations fold into one. *)
  let c =
    circ 2
      [ u (Gate.Rz 0.4) [ 0 ]; u Gate.Cnot [ 0; 1 ]; u (Gate.Rz 0.5) [ 0 ] ]
  in
  let o, _ = optimize "rz folds across cnot control" c 2 in
  let rz_count =
    List.length
      (List.filter
         (function Gate.Unitary (Gate.Rz _, _) -> true | _ -> false)
         (Circuit.instructions o))
  in
  Alcotest.(check int) "single rz left" 1 rz_count

let test_rule_euler_resynthesis () =
  (* A four-gate 1q run collapses to at most three rotations. *)
  let c =
    circ 1
      [
        u (Gate.Rx 0.3) [ 0 ]; u (Gate.Ry 0.2) [ 0 ]; u (Gate.Rx 0.5) [ 0 ];
        u Gate.T [ 0 ];
      ]
  in
  let o, stats = Optimize.run c in
  check_equiv "euler run" c o;
  Alcotest.(check bool) "at most 3 gates" true (Circuit.gate_count o <= 3);
  Alcotest.(check bool) "euler fired" true (stats.Optimize.euler_runs >= 1)

let test_rule_consolidate_swap () =
  (* Three alternating CNOTs are a SWAP: consolidation re-expresses the
     block with a single two-qubit gate. *)
  let c =
    circ 2
      [ u Gate.Cnot [ 0; 1 ]; u Gate.Cnot [ 1; 0 ]; u Gate.Cnot [ 0; 1 ] ]
  in
  let o, stats = Optimize.run c in
  check_equiv "cnot3 -> swap" c o;
  Alcotest.(check bool) "fewer 2q gates" true
    (Circuit.two_qubit_gate_count o < 3);
  Alcotest.(check bool) "consolidation fired" true
    (stats.Optimize.consolidations >= 1)

let test_barrier_blocks_rewrites () =
  let c =
    Circuit.of_list 1
      [ u Gate.H [ 0 ]; Gate.Barrier [| 0 |]; u Gate.H [ 0 ] ]
  in
  let o, _ = Optimize.run c in
  Alcotest.(check int) "barrier keeps both" 2 (Circuit.gate_count o)

(* --- Euler identity properties for the white-box helpers --- *)

let random_1q_product rng gates =
  let pool =
    [|
      (fun () -> Gate.H); (fun () -> Gate.T); (fun () -> Gate.S);
      (fun () -> Gate.X90); (fun () -> Gate.Ym90);
      (fun () -> Gate.Rx (Rng.float rng 6.28 -. 3.14));
      (fun () -> Gate.Ry (Rng.float rng 6.28 -. 3.14));
      (fun () -> Gate.Rz (Rng.float rng 6.28 -. 3.14));
    |]
  in
  List.init gates (fun _ -> pool.(Rng.int rng (Array.length pool)) ())

let matrix_of_gates gates =
  List.fold_left
    (fun acc g -> Matrix.mul (Gate.matrix g) acc)
    (Matrix.identity 2) gates

let prop_euler_reconstructs =
  QCheck.Test.make ~name:"zyz/pulse resynthesis reconstructs 1q products"
    ~count:200
    (QCheck.make
       ~print:(fun (s, g) -> Printf.sprintf "seed=%d gates=%d" s g)
       QCheck.Gen.(pair (int_range 0 99999) (int_range 1 8)))
    (fun (seed, gates) ->
      let run = random_1q_product (Rng.create seed) gates in
      let m = matrix_of_gates run in
      let angles = Optimize.zyz_angles m in
      let check form =
        let unitaries =
          List.filter_map
            (function Gate.Unitary (g, _) -> Some g | _ -> None)
            (form 0 angles)
        in
        Matrix.equal_up_to_phase ~eps:1e-7 m (matrix_of_gates unitaries)
      in
      check Optimize.gates_zyz && check Optimize.gates_pulse)

let prop_local_factors_sound =
  QCheck.Test.make ~name:"local_factors only reports true tensor products"
    ~count:100
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "seed=%d" s)
       QCheck.Gen.(int_range 0 99999))
    (fun seed ->
      let rng = Rng.create seed in
      let a = matrix_of_gates (random_1q_product rng 3) in
      let b = matrix_of_gates (random_1q_product rng 3) in
      (* local_factors returns (q0 factor, q1 factor) for a matrix in the
         engine's kron order — each factor only up to a complex scale, which
         zyz_angles normalises away; reconstruct through that path. *)
      match Optimize.local_factors (Matrix.kron a b) with
      | None -> false (* a true tensor product must be detected *)
      | Some (a', b') ->
          let unitary m =
            matrix_of_gates
              (List.filter_map
                 (function Gate.Unitary (g, _) -> Some g | _ -> None)
                 (Optimize.gates_zyz 0 (Optimize.zyz_angles m)))
          in
          Matrix.equal_up_to_phase ~eps:1e-7
            (Matrix.kron (unitary b') (unitary a'))
            (Matrix.kron a b))

(* --- distribution preservation at matched seeds (ideal noise) --- *)

let measured n base =
  Circuit.append base
    (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

let histogram ?seed ?shots c =
  (Engine.run ?seed ?shots c).Engine.histogram

let prop_distribution_bit_identical =
  QCheck.Test.make
    ~name:"optimizer preserves sampled distributions bit-identically"
    ~count:30
    (QCheck.make
       ~print:(fun (s, q, g) -> Printf.sprintf "seed=%d q=%d g=%d" s q g)
       QCheck.Gen.(triple (int_range 0 9999) (int_range 2 4) (int_range 1 25)))
    (fun (seed, qubits, gates) ->
      let base =
        measured qubits (Library.random_circuit (Rng.create seed) ~qubits ~gates)
      in
      let optimized = Optimize.run_circuit base in
      histogram ~seed ~shots:300 base = histogram ~seed ~shots:300 optimized)

let test_distribution_teleport () =
  (* Mid-circuit measurement + classical feedback: the trajectory plan
     consumes one RNG draw per measurement, which the optimizer leaves in
     place, so seeded runs stay bit-identical. *)
  let c = Library.teleport () in
  let o = Optimize.run_circuit c in
  Alcotest.(check (list (pair string int)))
    "teleport histogram" (histogram ~seed:11 ~shots:200 c)
    (histogram ~seed:11 ~shots:200 o)

(* --- SABRE conformance: zero verifier diagnostics on fixture platforms --- *)

let test_sabre_conformance () =
  let cases =
    [
      (Platform.superconducting_17, Compiler.Real, measured 4 (Library.ghz 4));
      (Platform.superconducting_17, Compiler.Realistic, measured 4 (Library.qft 4));
      (Platform.superconducting_17, Compiler.Realistic, Library.teleport ());
      (Platform.semiconducting_4, Compiler.Realistic, measured 4 (Library.ghz 4));
      (Platform.semiconducting_4, Compiler.Realistic, measured 3 (Library.qft 3));
    ]
  in
  List.iter
    (fun (platform, mode, circuit) ->
      let _out, report =
        Verify.compile ~strategy:Mapping.Sabre platform mode circuit
      in
      Alcotest.(check (list string))
        (Printf.sprintf "no diagnostics on %s" platform.Platform.name)
        []
        (List.map Diagnostic.to_string report.Verify.final))
    cases

let test_sabre_routes_distant_pair () =
  (* Logical 0 and 16 sit at opposite corners of the 17-qubit lattice;
     SABRE must insert swaps and still preserve the measured marginal. *)
  let c =
    Circuit.of_list 17
      [
        u Gate.X [ 0 ]; u Gate.Cnot [ 0; 16 ]; Gate.Measure 0; Gate.Measure 16;
      ]
  in
  let r = Mapping.run ~strategy:Mapping.Sabre Platform.superconducting_17 c in
  Alcotest.(check bool) "swaps inserted" true (r.Mapping.swaps_added > 0);
  (* One deterministic outcome with both measured (physical) qubits at 1. *)
  match histogram ~seed:3 ~shots:100 r.Mapping.circuit with
  | [ (key, 100) ] ->
      let ones =
        String.fold_left (fun n ch -> if ch = '1' then n + 1 else n) 0 key
      in
      Alcotest.(check int) "two ones" 2 ones
  | hist ->
      Alcotest.fail
        (Printf.sprintf "expected one outcome, got %d" (List.length hist))

(* --- engine fusion must not double-apply resynthesised runs --- *)

let test_fused_1q_after_euler () =
  (* The pulse-form Euler output is exactly the shape the engine's 1q-run
     fusion coalesces; fused and unfused seeded runs must stay
     bit-identical. *)
  let base =
    measured 2
      (circ 2
         [
           u Gate.H [ 0 ]; u (Gate.Rx 0.7) [ 0 ]; u (Gate.Ry 0.4) [ 0 ];
           u Gate.T [ 0 ]; u Gate.Cnot [ 0; 1 ]; u (Gate.Rz 0.5) [ 1 ];
           u (Gate.Rx 1.1) [ 1 ]; u (Gate.Rz (-0.3)) [ 1 ];
         ])
  in
  let optimized = Optimize.run_circuit base in
  let fused = Engine.run ~seed:17 ~shots:400 ~fusion:true optimized in
  let unfused = Engine.run ~seed:17 ~shots:400 ~fusion:false optimized in
  Alcotest.(check (list (pair string int)))
    "fused = unfused" unfused.Engine.histogram fused.Engine.histogram;
  Alcotest.(check (list (pair string int)))
    "optimized = original" (histogram ~seed:17 ~shots:400 base)
    fused.Engine.histogram

(* --- depth guard over the fixture corpus --- *)

let fixture_corpus () =
  [
    ("bell", measured 2 (Library.bell ()));
    ("ghz5", measured 5 (Library.ghz 5));
    ("qft4", measured 4 (Library.qft 4));
    ("teleport", Library.teleport ());
    ("random6x30", measured 6 (Library.random_circuit (Rng.create 77) ~qubits:6 ~gates:30));
  ]

let test_depth_never_increases () =
  List.iter
    (fun (name, c) ->
      let o = Optimize.run_circuit c in
      Alcotest.(check bool)
        (name ^ ": optimized depth <= input depth")
        true
        (Circuit.depth o <= Circuit.depth c))
    (fixture_corpus ())

let test_full_not_worse_than_basic () =
  (* Same router on both sides: the Full pipeline must not produce a
     larger physical circuit than the Basic sweep on the corpus. *)
  List.iter
    (fun (name, c) ->
      let basic =
        Compiler.compile ~strategy:Mapping.Sabre ~optimizer:Optimize.Basic
          Platform.superconducting_17 Compiler.Realistic c
      in
      let full =
        Compiler.compile ~strategy:Mapping.Sabre ~optimizer:Optimize.Full
          Platform.superconducting_17 Compiler.Realistic c
      in
      Alcotest.(check bool)
        (name ^ ": full gates <= basic gates")
        true
        (Circuit.gate_count full.Compiler.physical
        <= Circuit.gate_count basic.Compiler.physical))
    (fixture_corpus ())

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_optimizer"
    [
      ( "rewrite-rules",
        [
          Alcotest.test_case "inverse pairs" `Quick test_rule_inverse_pair;
          Alcotest.test_case "merge rotations" `Quick test_rule_merge_rotations;
          Alcotest.test_case "pair contraction" `Quick test_rule_pair_contraction;
          Alcotest.test_case "drop identities" `Quick test_rule_drop_identity;
          Alcotest.test_case "h conjugation" `Quick test_rule_h_conjugation;
          Alcotest.test_case "commuting cancellation" `Quick test_rule_commuting_cancellation;
          Alcotest.test_case "rz across cnot" `Quick test_rule_rz_accumulation_across_cnot;
          Alcotest.test_case "euler resynthesis" `Quick test_rule_euler_resynthesis;
          Alcotest.test_case "consolidate swap" `Quick test_rule_consolidate_swap;
          Alcotest.test_case "barrier blocks" `Quick test_barrier_blocks_rewrites;
        ] );
      ( "euler-properties",
        [ qtest prop_euler_reconstructs; qtest prop_local_factors_sound ] );
      ( "distributions",
        [
          qtest prop_distribution_bit_identical;
          Alcotest.test_case "teleport" `Quick test_distribution_teleport;
        ] );
      ( "sabre",
        [
          Alcotest.test_case "conformance" `Quick test_sabre_conformance;
          Alcotest.test_case "distant pair" `Quick test_sabre_routes_distant_pair;
        ] );
      ( "fusion",
        [ Alcotest.test_case "no double apply" `Quick test_fused_1q_after_euler ] );
      ( "depth-guard",
        [
          Alcotest.test_case "optimizer" `Quick test_depth_never_increases;
          Alcotest.test_case "full vs basic" `Quick test_full_not_worse_than_basic;
        ] );
    ]
