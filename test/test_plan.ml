(* Simulation-planner suite (`dune build @plan`): classification guards on
   the fixture corpus, forced-plan error surfaces, tableau-vs-state-vector
   seed identity, parallel-vs-sequential trajectory identity, and the
   auto-planner overhead guard. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Engine = Qca_qx.Engine
module Noise = Qca_qx.Noise
module Parallel = Qca_util.Parallel
module Error = Qca_util.Error
module Rng = Qca_util.Rng
module Code = Qca_qec.Code

let canon h = List.sort compare h
let hist = Alcotest.(list (pair string int))

let measured n base =
  Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

(* The cram-fixture shapes (test/fixtures/) rebuilt from the library, plus
   planner-sensitive extremes: an all-Clifford feedback chain and a wide
   QEC cycle. *)
let corpus () =
  [
    ("bell", measured 2 (Library.bell ()));
    ("ghz5", measured 5 (Library.ghz 5));
    ("teleport", Library.teleport ());
    ("teleport-clifford", Library.teleport ~prepare:Gate.H ());
    ("qft4", measured 4 (Library.qft 4));
    ( "random8x40",
      measured 8 (Library.random_circuit (Rng.create 303) ~qubits:8 ~gates:40)
    );
    ("qec-surface17-r2", Qca.Qec_run.cycle_circuit ~rounds:2 Code.surface_17);
  ]

(* --- classification soundness: misclassification is impossible --- *)

(* The planner may only pick Clifford when the tableau can actually execute
   every gate, must never pick it under stochastic noise, and may only pick
   Sampled when a single-pass distribution exists. *)
let test_no_misclassification () =
  List.iter
    (fun (name, circuit) ->
      List.iter
        (fun shots ->
          let plan, reason = Engine.analyse ~shots circuit in
          (match plan with
          | Engine.Clifford ->
              Alcotest.(check (option (pair string int)))
                (name ^ ": clifford plan only on all-Clifford circuits")
                None
                (Engine.clifford_blocker circuit)
          | Engine.Sampled ->
              if Engine.sampled_distribution circuit = None then
                Alcotest.failf "%s: sampled plan without a distribution" name
          | Engine.Trajectory -> ());
          if String.length reason = 0 then
            Alcotest.failf "%s: empty plan reason" name)
        [ 16; 1024; 100_000 ];
      let noisy_plan, _ =
        Engine.analyse ~noise:(Noise.depolarizing 0.01) circuit
      in
      Alcotest.(check bool)
        (name ^ ": stochastic noise forces trajectories")
        true
        (noisy_plan = Engine.Trajectory))
    (corpus ())

(* Wherever the planner picks the tableau, its histogram must be the forced
   single-threaded state-vector trajectory histogram, seed for seed. *)
let test_auto_clifford_matches_state_vector () =
  List.iter
    (fun (name, circuit) ->
      match Engine.analyse circuit with
      | Engine.Clifford, _ ->
          let shots = 16 in
          let auto = Engine.run ~seed:42 ~shots circuit in
          Alcotest.(check bool)
            (name ^ ": auto took the tableau")
            true
            (auto.Engine.report.Engine.plan = Engine.Clifford);
          let saved = Parallel.domain_count () in
          Parallel.set_domain_count 1;
          let sv =
            Engine.run ~seed:42 ~plan:Engine.Trajectory ~shots circuit
          in
          Parallel.set_domain_count saved;
          Alcotest.check hist
            (name ^ ": tableau histogram = state-vector histogram")
            (canon sv.Engine.histogram)
            (canon auto.Engine.histogram)
      | (Engine.Sampled | Engine.Trajectory), _ -> ())
    (corpus ())

(* --- forcing semantics --- *)

let test_forced_clifford_names_blocker () =
  let circuit =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.H, [| 0 |]);
        Gate.Unitary (Gate.T, [| 0 |]);
        Gate.Measure 0;
      ]
  in
  match Engine.run_checked ~seed:1 ~plan:Engine.Clifford ~shots:8 circuit with
  | Ok _ -> Alcotest.fail "forcing clifford on a T gate must fail"
  | Error e ->
      Alcotest.(check (option string))
        "error names the gate"
        (Some (Gate.name Gate.T))
        (List.assoc_opt "gate" e.Error.context);
      Alcotest.(check (option string))
        "error names the instruction index" (Some "1")
        (List.assoc_opt "index" e.Error.context)

let test_forced_clifford_rejects_noise () =
  let circuit = measured 2 (Library.bell ()) in
  match
    Engine.run_checked ~seed:1 ~noise:(Noise.depolarizing 0.01)
      ~plan:Engine.Clifford ~shots:8 circuit
  with
  | Ok _ -> Alcotest.fail "forcing clifford under noise must fail"
  | Error _ -> ()

let test_forced_clifford_accepted_when_sound () =
  let circuit = measured 3 (Library.ghz 3) in
  let r = Engine.run ~seed:5 ~plan:Engine.Clifford ~shots:128 circuit in
  Alcotest.(check bool)
    "plan is clifford" true
    (r.Engine.report.Engine.plan = Engine.Clifford);
  let sv = Engine.run ~seed:5 ~plan:Engine.Trajectory ~shots:128 circuit in
  Alcotest.check hist "ghz3 histograms agree"
    (canon sv.Engine.histogram)
    (canon r.Engine.histogram)

(* --- random Clifford circuits: tableau == state vector, seed for seed --- *)

let clifford_unitaries_1q =
  [| Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdag |]

let random_clifford_circuit seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 4 in
  let gates = 1 + Rng.int rng 40 in
  let instrs = ref [] in
  for _ = 1 to gates do
    let r = Rng.float rng 1.0 in
    if r < 0.15 then instrs := Gate.Measure (Rng.int rng n) :: !instrs
    else if r < 0.25 then begin
      let bit = Rng.int rng n in
      let target = Rng.int rng n in
      let u = if Rng.bool rng then Gate.X else Gate.Z in
      instrs := Gate.Conditional (bit, u, [| target |]) :: !instrs
    end
    else if r < 0.55 then begin
      let a = Rng.int rng n in
      let b = (a + 1 + Rng.int rng (n - 1)) mod n in
      let u = if Rng.bool rng then Gate.Cnot else Gate.Cz in
      instrs := Gate.Unitary (u, [| a; b |]) :: !instrs
    end
    else
      instrs :=
        Gate.Unitary
          ( clifford_unitaries_1q.(Rng.int rng (Array.length clifford_unitaries_1q)),
            [| Rng.int rng n |] )
        :: !instrs
  done;
  List.iter (fun q -> instrs := Gate.Measure q :: !instrs) (List.init n Fun.id);
  Circuit.of_list ~name:(Printf.sprintf "clifford-%d" seed) n (List.rev !instrs)

let prop_clifford_plan_matches_trajectory =
  QCheck.Test.make ~name:"random Clifford circuits: tableau = state vector"
    ~count:25
    QCheck.(int_range 0 9999)
    (fun seed ->
      let circuit = random_clifford_circuit seed in
      assert (Engine.clifford_blocker circuit = None);
      let tab = Engine.run ~seed ~plan:Engine.Clifford ~shots:64 circuit in
      let sv = Engine.run ~seed ~plan:Engine.Trajectory ~shots:64 circuit in
      canon tab.Engine.histogram = canon sv.Engine.histogram)

(* --- parallel batching: bit-identical at every domain-pool size --- *)

let test_parallel_bit_identity () =
  let saved = Parallel.domain_count () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_domain_count saved)
    (fun () ->
      let workloads =
        [
          ( "trajectory-random10x40",
            Engine.Trajectory,
            measured 10
              (Library.random_circuit (Rng.create 505) ~qubits:10 ~gates:40) );
          ( "clifford-teleport-x8",
            Engine.Clifford,
            Circuit.repeat 8 (Library.teleport ~prepare:Gate.H ()) );
        ]
      in
      List.iter
        (fun (name, plan, circuit) ->
          Parallel.set_domain_count 1;
          let reference =
            Engine.run ~seed:9 ~plan ~shots:200 circuit
          in
          List.iter
            (fun domains ->
              Parallel.set_domain_count domains;
              let r = Engine.run ~seed:9 ~plan ~shots:200 circuit in
              Alcotest.check hist
                (Printf.sprintf "%s: %d domains = sequential" name domains)
                (canon reference.Engine.histogram)
                (canon r.Engine.histogram))
            [ 2; 4; 8 ])
        workloads)

(* --- the planner must not tax non-Clifford fixtures --- *)

(* Auto runs the same sampled path plus one O(circuit) classification scan;
   best-of-9 wall clocks keep the guard robust to scheduler noise, and a
   small absolute slack absorbs timer granularity on sub-millisecond runs. *)
let test_auto_overhead_guard () =
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 9 do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  List.iter
    (fun (name, circuit) ->
      let forced_s =
        time_best (fun () ->
            Engine.run ~seed:3 ~plan:Engine.Sampled ~shots:2000 circuit)
      in
      let auto_s =
        time_best (fun () -> Engine.run ~seed:3 ~shots:2000 circuit)
      in
      if auto_s > (forced_s *. 1.05) +. 0.002 then
        Alcotest.failf "%s: auto %.6fs vs forced sampled %.6fs (> 5%%)" name
          auto_s forced_s)
    [
      ("qft8", measured 8 (Library.qft 8));
      ( "random8x40",
        measured 8 (Library.random_circuit (Rng.create 303) ~qubits:8 ~gates:40)
      );
    ]

(* --- the planner-driven QEC cycle runner --- *)

let test_qec_run_ideal_takes_tableau () =
  match Qca.Qec_run.run ~rounds:3 ~shots:256 ~seed:11 (Code.bit_flip_repetition 3) with
  | Error e -> Alcotest.failf "qec run failed: %s" (Error.to_string e)
  | Ok o ->
      Alcotest.(check bool)
        "ideal cycles take the tableau" true
        (o.Qca.Qec_run.plan = Engine.Clifford);
      (* |000> is a codeword of the repetition code: every syndrome is
         trivial under ideal noise. *)
      Alcotest.(check (float 1e-9)) "quiet" 1.0 o.Qca.Qec_run.quiet_fraction

let test_qec_run_noisy_takes_trajectories () =
  match
    Qca.Qec_run.run ~rounds:2 ~shots:64 ~seed:11 ~noise:0.05
      (Code.bit_flip_repetition 3)
  with
  | Error e -> Alcotest.failf "qec run failed: %s" (Error.to_string e)
  | Ok o ->
      Alcotest.(check bool)
        "noisy cycles take trajectories" true
        (o.Qca.Qec_run.plan = Engine.Trajectory)

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_plan"
    [
      ( "classification",
        [
          Alcotest.test_case "no misclassification on corpus" `Quick
            test_no_misclassification;
          Alcotest.test_case "auto clifford = state vector" `Quick
            test_auto_clifford_matches_state_vector;
        ] );
      ( "forcing",
        [
          Alcotest.test_case "clifford blocker named" `Quick
            test_forced_clifford_names_blocker;
          Alcotest.test_case "clifford rejects noise" `Quick
            test_forced_clifford_rejects_noise;
          Alcotest.test_case "clifford accepted when sound" `Quick
            test_forced_clifford_accepted_when_sound;
        ] );
      ( "identity",
        [
          qtest prop_clifford_plan_matches_trajectory;
          Alcotest.test_case "parallel = sequential at 2/4/8 domains" `Quick
            test_parallel_bit_identity;
        ] );
      ( "performance",
        [
          Alcotest.test_case "auto overhead under 5%" `Quick
            test_auto_overhead_guard;
        ] );
      ( "qec-run",
        [
          Alcotest.test_case "ideal takes tableau" `Quick
            test_qec_run_ideal_takes_tableau;
          Alcotest.test_case "noisy takes trajectories" `Quick
            test_qec_run_noisy_takes_trajectories;
        ] );
    ]
