(* Unit and property tests for the qca_util substrate. *)

module Rng = Qca_util.Rng
module Bits = Qca_util.Bits
module Cplx = Qca_util.Cplx
module Matrix = Qca_util.Matrix
module Graph = Qca_util.Graph
module Stats = Qca_util.Stats
module Optimize = Qca_util.Optimize

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-2))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 1.0 in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniformity () =
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int rng 10 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      check_float_loose "roughly uniform" 0.1 freq)
    counts

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check (float 0.02)) "mean 0" 0.0 (Stats.mean xs);
  check_float_loose "stddev 1" 1.0 (Stats.stddev xs)

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  Alcotest.(check bool) "different streams" true (a <> b)

let test_rng_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_float_loose "p=0.3" 0.3 (float_of_int !hits /. 100_000.0)

let test_choose_weighted () =
  let rng = Rng.create 17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 60_000 do
    let k = Rng.choose_weighted rng [| 1.0; 2.0; 3.0 |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_float_loose "w0" (1.0 /. 6.0) (float_of_int counts.(0) /. 60_000.0);
  check_float_loose "w2" 0.5 (float_of_int counts.(2) /. 60_000.0)

let test_shuffle_permutation () =
  let rng = Rng.create 23 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Bits --- *)

let test_bits_basics () =
  Alcotest.(check bool) "test" true (Bits.test 0b1010 1);
  Alcotest.(check bool) "test" false (Bits.test 0b1010 0);
  Alcotest.(check int) "set" 0b1011 (Bits.set 0b1010 0);
  Alcotest.(check int) "clear" 0b1000 (Bits.clear 0b1010 1);
  Alcotest.(check int) "flip" 0b0010 (Bits.flip 0b1010 3);
  Alcotest.(check int) "popcount" 2 (Bits.popcount 0b1010);
  Alcotest.(check int) "parity" 0 (Bits.parity 0b1010);
  Alcotest.(check int) "parity" 1 (Bits.parity 0b1011)

let test_bits_strings () =
  Alcotest.(check string) "to_string" "0101" (Bits.to_string ~width:4 5);
  Alcotest.(check int) "of_string" 5 (Bits.of_string "0101")

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"bits string roundtrip" ~count:200
    QCheck.(int_bound 65535)
    (fun x -> Bits.of_string (Bits.to_string ~width:16 x) = x)

let test_insert_zero () =
  (* inserting a zero at position 1 in 0b11 gives 0b101 *)
  Alcotest.(check int) "insert" 0b101 (Bits.insert_zero 0b11 1)

(* --- Matrix --- *)

let c = Cplx.make

let test_matrix_mul_identity () =
  let m = Matrix.of_arrays [| [| c 1. 2.; c 3. 4. |]; [| c 5. 6.; c 7. 8. |] |] in
  Alcotest.(check bool) "I*m = m" true (Matrix.approx_equal (Matrix.mul (Matrix.identity 2) m) m)

let test_matrix_kron_dims () =
  let a = Matrix.identity 2 and b = Matrix.identity 4 in
  let k = Matrix.kron a b in
  Alcotest.(check int) "rows" 8 (Matrix.rows k);
  Alcotest.(check bool) "I kron I = I" true (Matrix.approx_equal k (Matrix.identity 8))

let test_matrix_adjoint () =
  let m = Matrix.of_arrays [| [| c 1. 2.; c 3. 4. |]; [| c 5. 6.; c 7. 8. |] |] in
  let a = Matrix.adjoint m in
  Alcotest.(check bool) "entry" true (Cplx.approx_equal (Matrix.get a 0 1) (c 5. (-6.)))

let test_matrix_unitary_check () =
  let h = 1.0 /. sqrt 2.0 in
  let m = Matrix.of_arrays [| [| c h 0.; c h 0. |]; [| c h 0.; c (-.h) 0. |] |] in
  Alcotest.(check bool) "H unitary" true (Matrix.is_unitary m);
  let bad = Matrix.of_arrays [| [| c 1. 0.; c 1. 0. |]; [| c 0. 0.; c 1. 0. |] |] in
  Alcotest.(check bool) "not unitary" false (Matrix.is_unitary bad)

let test_matrix_phase_equal () =
  let m = Matrix.identity 2 in
  let phased = Matrix.scale (Cplx.cis 0.7) m in
  Alcotest.(check bool) "equal up to phase" true (Matrix.equal_up_to_phase m phased);
  Alcotest.(check bool) "not plain equal" false (Matrix.approx_equal m phased)

let test_matrix_trace_apply () =
  let m = Matrix.of_arrays [| [| c 1. 0.; c 2. 0. |]; [| c 3. 0.; c 4. 0. |] |] in
  Alcotest.(check bool) "trace" true (Cplx.approx_equal (Matrix.trace m) (c 5. 0.));
  let v = Matrix.apply m [| c 1. 0.; c 1. 0. |] in
  Alcotest.(check bool) "apply" true (Cplx.approx_equal v.(0) (c 3. 0.) && Cplx.approx_equal v.(1) (c 7. 0.))

(* --- Graph --- *)

let test_graph_grid () =
  let g = Graph.grid_2d 3 3 in
  Alcotest.(check int) "size" 9 (Graph.size g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "center degree" 4 (Graph.degree g 4);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_graph_shortest_path () =
  let g = Graph.grid_2d 3 3 in
  match Graph.shortest_path g 0 8 with
  | None -> Alcotest.fail "path expected"
  | Some path ->
      Alcotest.(check int) "path length" 5 (List.length path);
      Alcotest.(check int) "starts" 0 (List.hd path)

let test_graph_hop_distance () =
  let g = Graph.grid_2d 3 3 in
  Alcotest.(check (option int)) "corner to corner" (Some 4) (Graph.hop_distance g 0 8);
  Alcotest.(check (option int)) "self" (Some 0) (Graph.hop_distance g 4 4)

let test_graph_disconnected () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  Alcotest.(check (option int)) "no path" None (Graph.hop_distance g 0 3)

let test_graph_weights () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 2.5;
  Graph.add_edge g 1 2 1.5;
  let d = Graph.distances_from g 0 in
  check_float "dijkstra" 4.0 d.(2)

let test_graph_complete () =
  let g = Graph.complete 5 (fun u v -> float_of_int (u + v)) in
  Alcotest.(check int) "degree" 4 (Graph.degree g 0);
  Alcotest.(check (option (float 1e-9))) "weight" (Some 3.0) (Graph.weight g 1 2)

(* --- Stats --- *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Stats.variance xs);
  check_float "min" 1.0 (Stats.minimum xs);
  check_float "max" 4.0 (Stats.maximum xs)

let test_linear_fit () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept = Stats.linear_fit points in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_exponential_fit () =
  let a = 0.5 and p = 0.9 in
  let points = Array.init 20 (fun i -> (float_of_int i, a *. (p ** float_of_int i))) in
  let a', p' = Stats.exponential_decay_fit points in
  check_float "a" a a';
  check_float "p" p p'

let test_histogram () =
  let xs = [| 0.1; 0.2; 0.55; 0.9; 1.5; -0.5 |] in
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 xs in
  Alcotest.(check (array int)) "bins with clamping" [| 3; 3 |] h

(* --- Optimize --- *)

let rosenbrock v =
  let x = v.(0) and y = v.(1) in
  ((1.0 -. x) ** 2.0) +. (100.0 *. ((y -. (x *. x)) ** 2.0))

let test_nelder_mead_quadratic () =
  let f v = ((v.(0) -. 3.0) ** 2.0) +. ((v.(1) +. 1.0) ** 2.0) in
  let x, fx = Optimize.nelder_mead ~max_iter:2000 f [| 0.0; 0.0 |] in
  check_float_loose "x0" 3.0 x.(0);
  check_float_loose "x1" (-1.0) x.(1);
  Alcotest.(check bool) "near zero" true (fx < 1e-6)

let test_nelder_mead_rosenbrock () =
  let x, _ = Optimize.nelder_mead ~max_iter:5000 ~tolerance:1e-12 rosenbrock [| -1.0; 1.0 |] in
  check_float_loose "x" 1.0 x.(0);
  check_float_loose "y" 1.0 x.(1)

let test_grid_search () =
  let f v = Float.abs (v.(0) -. 0.5) in
  let x, fx = Optimize.grid_search ~lo:[| 0.0 |] ~hi:[| 1.0 |] ~steps:21 f in
  check_float "found" 0.5 x.(0);
  check_float "value" 0.0 fx

let test_coordinate_descent () =
  let f v = ((v.(0) -. 2.0) ** 2.0) +. ((v.(1) -. 1.0) ** 2.0) in
  let x, _ =
    Optimize.coordinate_descent ~rounds:4 ~steps:41 ~lo:[| 0.0; 0.0 |] ~hi:[| 4.0; 4.0 |] f
      [| 0.0; 0.0 |]
  in
  check_float_loose "x0" 2.0 x.(0);
  check_float_loose "x1" 1.0 x.(1)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

(* --- Error / Fault / Resilience --- *)

module Error = Qca_util.Error
module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience

let test_error_to_string () =
  let e =
    Error.make ~site:"Test.site"
      ~context:[ ("qubit", "3") ]
      (Error.Channel_loss { qubit = 3 })
  in
  Alcotest.(check bool) "transient by default" true e.Error.transient;
  let s = Error.to_string e in
  Alcotest.(check bool) "mentions site" true
    (String.length s >= 9 && String.sub s 0 9 = "Test.site");
  Alcotest.(check bool) "mentions context" true
    (String.length s > 0 && s.[String.length s - 1] = ']')

let test_error_of_exn () =
  (match Error.of_exn (Failure "boom") with
  | Some e ->
      Alcotest.(check bool) "failure maps to Invalid" true
        (match e.Error.kind with Error.Invalid _ -> true | _ -> false)
  | None -> Alcotest.fail "Failure not converted");
  Alcotest.(check bool) "unrelated exn ignored" true (Error.of_exn Exit = None)

let test_error_protect () =
  (match Error.protect ~site:"p" (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "value" 42 v
  | Error _ -> Alcotest.fail "unexpected error");
  match
    Error.protect ~site:"p" (fun () ->
        Error.fail ~site:"inner" (Error.Invalid "nope"))
  with
  | Ok _ -> Alcotest.fail "error swallowed"
  | Error e -> Alcotest.(check string) "inner site kept" "inner" e.Error.site

let test_fault_off_consumes_no_randomness () =
  let f = Fault.make ~seed:11 Fault.off in
  Alcotest.(check bool) "disabled" false (Fault.enabled f);
  for _ = 1 to 100 do
    Alcotest.(check bool) "never fires" false (Fault.fires f Fault.Pulse_dropout)
  done;
  Alcotest.(check int) "no fires counted" 0 (Fault.total f)

let test_fault_uniform_counts () =
  let f = Fault.make ~seed:11 (Fault.uniform 1.0) in
  Alcotest.(check bool) "enabled" true (Fault.enabled f);
  for _ = 1 to 5 do
    Alcotest.(check bool) "always fires" true (Fault.fires f Fault.Channel_loss)
  done;
  Alcotest.(check int) "total" 5 (Fault.total f);
  Alcotest.(check (list (pair string int)))
    "per-site counts" [ ("channel-loss", 5) ] (Fault.counts f)

let test_fault_rejects_bad_rate () =
  match Fault.uniform 1.5 with
  | exception Error.Error _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate > 1 accepted"

let test_retry_converges () =
  let counters = Resilience.fresh_counters () in
  let attempts = ref 0 in
  let f () =
    incr attempts;
    if !attempts < 3 then
      Error.fail ~site:"t" (Error.Backend_transient "blip")
    else "ok"
  in
  (match Resilience.with_retries Resilience.default_policy counters f with
  | Ok v -> Alcotest.(check string) "converged" "ok" v
  | Error _ -> Alcotest.fail "retries did not converge");
  Alcotest.(check int) "two retries" 2 counters.Resilience.retries;
  (* 100 lsl 0 + 100 lsl 1 *)
  Alcotest.(check int) "deterministic backoff" 300
    counters.Resilience.backoff_total_ns

let test_retry_exhausts () =
  let counters = Resilience.fresh_counters () in
  let f () = Error.fail ~site:"t" (Error.Backend_transient "always") in
  (match Resilience.with_retries Resilience.default_policy counters f with
  | Ok _ -> Alcotest.fail "impossible success"
  | Error e -> Alcotest.(check bool) "transient error" true e.Error.transient);
  Alcotest.(check int) "max retries" 3 counters.Resilience.retries

let test_retry_permanent_propagates () =
  let counters = Resilience.fresh_counters () in
  let f () = Error.fail ~site:"t" (Error.Invalid "permanent") in
  match Resilience.with_retries Resilience.default_policy counters f with
  | exception Error.Error _ ->
      Alcotest.(check int) "no retries" 0 counters.Resilience.retries
  | Ok _ | Error _ -> Alcotest.fail "permanent error retried or absorbed"

let prop_fault_rate_frequency =
  QCheck.Test.make ~name:"fault fire frequency tracks rate" ~count:20
    QCheck.(float_range 0.1 0.9)
    (fun p ->
      let f = Fault.make ~seed:77 (Fault.uniform p) in
      let n = 2000 in
      let fired = ref 0 in
      for _ = 1 to n do
        if Fault.fires f Fault.Microcode_lookup then incr fired
      done;
      abs_float ((float_of_int !fired /. float_of_int n) -. p) < 0.08)

(* --- Trace --- *)

module Trace = Qca_util.Trace

let span_names nodes = List.map (fun n -> n.Trace.span_name) nodes

let test_trace_disabled_noop () =
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* Every primitive must be callable with no sink and change nothing. *)
  let sp = Trace.begin_span "orphan" in
  Trace.add_attr sp "k" (Trace.Int 1);
  Trace.set_sim_ns sp 5;
  Trace.end_span sp;
  Trace.add_counter "c" 3;
  let thunk_ran = ref false in
  let v =
    Trace.with_span "w" (fun sp ->
        Trace.annotate sp (fun () ->
            thunk_ran := true;
            [ ("k", Trace.Int 1) ]);
        42)
  in
  Alcotest.(check int) "with_span passes value through" 42 v;
  Alcotest.(check bool) "annotate thunk not evaluated when disabled" false !thunk_ran

let test_trace_nesting () =
  let c = Trace.make_collector () in
  Trace.collecting c (fun () ->
      Trace.with_span "a" (fun _ ->
          Trace.with_span "b" (fun _ -> ());
          Trace.with_span "c" (fun _ -> ())));
  match Trace.roots c with
  | [ a ] ->
      Alcotest.(check string) "root" "a" a.Trace.span_name;
      Alcotest.(check (list string)) "children in order" [ "b"; "c" ]
        (span_names a.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_defensive_end () =
  (* Ending an outer span closes any dangling descendants first. *)
  let c = Trace.make_collector () in
  Trace.collecting c (fun () ->
      let a = Trace.begin_span "a" in
      let _b = Trace.begin_span "b" in
      Trace.end_span a;
      Trace.with_span "after" (fun _ -> ()));
  Alcotest.(check (list string)) "a closed with b inside, then a sibling"
    [ "a"; "after" ] (span_names (Trace.roots c));
  match Trace.roots c with
  | [ a; _ ] ->
      Alcotest.(check (list string)) "b became a's child" [ "b" ]
        (span_names a.Trace.children)
  | _ -> Alcotest.fail "expected two roots"

let test_trace_exception_safety () =
  let c = Trace.make_collector () in
  (try
     Trace.collecting c (fun () ->
         Trace.with_span "boom" (fun _ -> failwith "kaput"))
   with Failure _ -> ());
  Alcotest.(check bool) "sink uninstalled after raise" false (Trace.enabled ());
  Alcotest.(check (list string)) "span closed despite raise" [ "boom" ]
    (span_names (Trace.roots c))

let test_trace_attrs_and_counters () =
  let c = Trace.make_collector () in
  Trace.collecting c (fun () ->
      Trace.with_span "s" (fun sp ->
          Trace.add_attr sp "first" (Trace.Int 1);
          Trace.annotate sp (fun () -> [ ("second", Trace.String "x") ]);
          Trace.set_sim_ns sp 120);
      Trace.add_counter "hits" 2;
      Trace.add_counter "hits" 3;
      Trace.add_counter "misses" 1);
  (match Trace.roots c with
  | [ s ] ->
      Alcotest.(check (list string)) "attr order preserved" [ "first"; "second" ]
        (List.map fst s.Trace.attrs);
      Alcotest.(check (option int)) "sim_ns" (Some 120) s.Trace.sim_ns
  | _ -> Alcotest.fail "expected one root");
  Alcotest.(check (list (pair string int))) "counters summed and sorted"
    [ ("hits", 5); ("misses", 1) ] (Trace.counters c)

let test_trace_tree_collapse () =
  let c = Trace.make_collector () in
  Trace.collecting c (fun () ->
      Trace.with_span "parent" (fun _ ->
          for i = 1 to 3 do
            Trace.with_span "shot" (fun sp ->
                Trace.add_attr sp "ops" (Trace.Int i);
                Trace.set_sim_ns sp 100)
          done));
  let tree = Trace.to_tree_string ~show_wall:false c in
  Alcotest.(check bool) "siblings collapsed"
    true
    (let re = "shot x3 ops=6 sim=300ns" in
     let rec contains i =
       i + String.length re <= String.length tree
       && (String.sub tree i (String.length re) = re || contains (i + 1))
     in
     contains 0)

(* Enough JSON checking to catch escaping and nesting mistakes: balanced
   delimiters outside strings, valid escapes inside, no raw control chars. *)
let json_well_formed s =
  let depth = ref 0 and ok = ref true in
  let in_string = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !in_string then
        if !escaped then escaped := false
        else if ch = '\\' then escaped := true
        else if ch = '"' then in_string := false
        else if Char.code ch < 0x20 then ok := false
        else ()
      else
        match ch with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_string

let test_trace_chrome_json () =
  let c = Trace.make_collector () in
  Trace.collecting c (fun () ->
      Trace.with_span "outer" (fun sp ->
          Trace.add_attr sp "label" (Trace.String "quotes \" and \\ and\nnewline");
          Trace.with_span "inner" (fun sp -> Trace.set_sim_ns sp 40));
      Trace.add_counter "qx.apply.h" 7);
  let json = Trace.to_chrome_json c in
  Alcotest.(check bool) "well-formed" true (json_well_formed json);
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length json && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (has "\"traceEvents\"");
  Alcotest.(check bool) "complete events" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "counter events" true (has "\"ph\":\"C\"");
  Alcotest.(check bool) "sim_ns in args" true (has "\"sim_ns\":40");
  Alcotest.(check bool) "escaped newline" true (has "\\nnewline")

let prop_trace_nesting_depth =
  QCheck.Test.make ~name:"trace random begin/end keeps a well-formed forest"
    QCheck.(list (int_range 0 2))
    (fun script ->
      let c = Trace.make_collector () in
      Trace.collecting c (fun () ->
          let open_spans = ref [] in
          List.iter
            (fun op ->
              match op, !open_spans with
              | 0, _ ->
                  open_spans := Trace.begin_span "n" :: !open_spans
              | 1, sp :: rest ->
                  Trace.end_span sp;
                  open_spans := rest
              | _, _ -> Trace.add_counter "k" 1)
            script);
      (* Whatever the open/close sequence, the finished forest contains only
         closed spans and the total span count never exceeds the opens. *)
      let opens = List.length (List.filter (fun op -> op = 0) script) in
      let rec count nodes =
        List.fold_left (fun acc n -> acc + 1 + count n.Trace.children) 0 nodes
      in
      count (Trace.roots c) <= opens)

(* --- Parallel --- *)

module Parallel = Qca_util.Parallel

let with_domains domains f =
  let d0 = Parallel.domain_count () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_domain_count d0)
    (fun () ->
      Parallel.set_domain_count domains;
      f ())

let test_parallel_covers_range () =
  (* Every index visited exactly once, whatever the domain count. *)
  with_domains 3 (fun () ->
      let length = (2 * Parallel.chunk_size) + 777 in
      let seen = Array.make length 0 in
      Parallel.for_range length (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun c -> c = 1) seen))

let test_parallel_dispatch_gating () =
  with_domains 3 (fun () ->
      let before = Parallel.dispatch_count () in
      (* Short ranges stay sequential even with domains available. *)
      Parallel.for_range ((2 * Parallel.chunk_size) - 1) (fun _ _ -> ());
      Alcotest.(check int) "short range sequential" before (Parallel.dispatch_count ());
      Parallel.for_range (2 * Parallel.chunk_size) (fun _ _ -> ());
      Alcotest.(check int) "long range dispatches" (before + 1)
        (Parallel.dispatch_count ());
      (* One domain means the parallel path is off entirely. *)
      Parallel.set_domain_count 1;
      Parallel.for_range (4 * Parallel.chunk_size) (fun _ _ -> ());
      Alcotest.(check int) "single domain sequential" (before + 1)
        (Parallel.dispatch_count ()))

let test_parallel_bit_identical () =
  (* Fixed chunk boundaries: a floating-point map gives bitwise the same
     array with 1 and with 3 domains. *)
  let length = (2 * Parallel.chunk_size) + 123 in
  let init () = Array.init length (fun i -> 1.0 +. (float_of_int i /. 7.0)) in
  let kernel xs lo hi =
    for i = lo to hi - 1 do
      xs.(i) <- (xs.(i) *. 1.000000119) +. (0.25 /. xs.(i))
    done
  in
  let sequential = init () in
  with_domains 1 (fun () -> Parallel.for_range length (kernel sequential));
  let parallel = init () in
  with_domains 3 (fun () -> Parallel.for_range length (kernel parallel));
  let same = ref true in
  for i = 0 to length - 1 do
    if Int64.bits_of_float sequential.(i) <> Int64.bits_of_float parallel.(i) then
      same := false
  done;
  Alcotest.(check bool) "bitwise identical" true !same

let test_parallel_exception_propagates () =
  with_domains 3 (fun () ->
      let length = 4 * Parallel.chunk_size in
      Alcotest.check_raises "body exception re-raised" (Failure "kernel boom")
        (fun () ->
          Parallel.for_range length (fun lo _ ->
              if lo >= Parallel.chunk_size then failwith "kernel boom"));
      (* The pool survives a failed loop. *)
      let total = Atomic.make 0 in
      Parallel.for_range length (fun lo hi -> ignore (Atomic.fetch_and_add total (hi - lo)));
      Alcotest.(check int) "pool usable after failure" length (Atomic.get total))

let test_parallel_clamps_settings () =
  let d0 = Parallel.domain_count () and t0 = Parallel.threshold_qubits () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_domain_count d0;
      Parallel.set_threshold_qubits t0)
    (fun () ->
      Parallel.set_domain_count 0;
      Alcotest.(check int) "domain floor" 1 (Parallel.domain_count ());
      Alcotest.(check bool) "not available at 1" false (Parallel.available ());
      Parallel.set_domain_count 1000;
      Alcotest.(check int) "domain cap" 64 (Parallel.domain_count ());
      Parallel.set_threshold_qubits 21;
      Alcotest.(check int) "threshold stored" 21 (Parallel.threshold_qubits ()))

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_util"
    [
      ( "error",
        [
          Alcotest.test_case "to_string" `Quick test_error_to_string;
          Alcotest.test_case "of_exn" `Quick test_error_of_exn;
          Alcotest.test_case "protect" `Quick test_error_protect;
        ] );
      ( "fault",
        [
          Alcotest.test_case "off consumes no randomness" `Quick
            test_fault_off_consumes_no_randomness;
          Alcotest.test_case "uniform counts" `Quick test_fault_uniform_counts;
          Alcotest.test_case "rejects bad rate" `Quick test_fault_rejects_bad_rate;
          qtest prop_fault_rate_frequency;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "retry converges" `Quick test_retry_converges;
          Alcotest.test_case "retry exhausts" `Quick test_retry_exhausts;
          Alcotest.test_case "permanent propagates" `Quick
            test_retry_permanent_propagates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "defensive end" `Quick test_trace_defensive_end;
          Alcotest.test_case "exception safety" `Quick test_trace_exception_safety;
          Alcotest.test_case "attrs and counters" `Quick test_trace_attrs_and_counters;
          Alcotest.test_case "tree collapse" `Quick test_trace_tree_collapse;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
          qtest prop_trace_nesting_depth;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "bits",
        [
          Alcotest.test_case "basics" `Quick test_bits_basics;
          Alcotest.test_case "strings" `Quick test_bits_strings;
          Alcotest.test_case "insert_zero" `Quick test_insert_zero;
          qtest prop_bits_roundtrip;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "mul identity" `Quick test_matrix_mul_identity;
          Alcotest.test_case "kron dims" `Quick test_matrix_kron_dims;
          Alcotest.test_case "adjoint" `Quick test_matrix_adjoint;
          Alcotest.test_case "unitary check" `Quick test_matrix_unitary_check;
          Alcotest.test_case "phase equality" `Quick test_matrix_phase_equal;
          Alcotest.test_case "trace and apply" `Quick test_matrix_trace_apply;
        ] );
      ( "graph",
        [
          Alcotest.test_case "grid" `Quick test_graph_grid;
          Alcotest.test_case "shortest path" `Quick test_graph_shortest_path;
          Alcotest.test_case "hop distance" `Quick test_graph_hop_distance;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          Alcotest.test_case "weighted dijkstra" `Quick test_graph_weights;
          Alcotest.test_case "complete" `Quick test_graph_complete;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "exponential fit" `Quick test_exponential_fit;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qtest prop_mean_bounds;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "covers range" `Quick test_parallel_covers_range;
          Alcotest.test_case "dispatch gating" `Quick test_parallel_dispatch_gating;
          Alcotest.test_case "bit identical" `Quick test_parallel_bit_identical;
          Alcotest.test_case "exception propagates" `Quick
            test_parallel_exception_propagates;
          Alcotest.test_case "clamps settings" `Quick test_parallel_clamps_settings;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "nelder-mead rosenbrock" `Quick test_nelder_mead_rosenbrock;
          Alcotest.test_case "grid search" `Quick test_grid_search;
          Alcotest.test_case "coordinate descent" `Quick test_coordinate_descent;
        ] );
    ]
