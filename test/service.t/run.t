The job service end to end: qxc submit -> qxd serve -> qxc status over a
file spool (no network; the directory is the protocol, docs/service.md).

  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > h q[0]
  > cnot q[0], q[1]
  > measure q[0]
  > measure q[1]
  > QASM

Two tenants submit concurrently. Alice's third job is bit-identical to
her first (same circuit, same seed), and all three share one circuit
digest, so the daemon simulates the state vector once and every job
samples its own shots from the shared distribution:

  $ qxc submit bell.qasm --spool spool --tenant alice --shots 400 --seed 7
  submitted 000001
  $ qxc submit bell.qasm --spool spool --tenant bob --shots 400 --seed 8
  submitted 000002
  $ qxc submit bell.qasm --spool spool --tenant alice --shots 400 --seed 7
  submitted 000003

Before the daemon runs, the jobs are queued:

  $ qxc status 000001 --spool spool
  000001 queued

Drain the spool once. The verbose log narrates fair admission per tenant;
--stats prints the service counters (note shared_analyses = 2):

  $ qxd serve --spool spool --once --verbose --slice-shots 64 --stats
  qxd: admitted 000001 (alice, 400 shots)
  qxd: admitted 000002 (bob, 400 shots)
  qxd: admitted 000003 (alice, 400 shots)
  qxd: published 000001
  qxd: published 000002
  qxd: published 000003
  {"service":{"submitted":3,"accepted":3,"completed":3,"failed":0,"deadline_exceeded":0,"cancelled":0,"rejected":0,"rejected_estimate":0,"degraded":0,"cache_hits":0,"shared_analyses":2,"slices":21,"tenants":{"alice":2,"bob":1}}}

Results are one JSON line per job; the histogram is deterministic for a
fixed seed:

  $ qxc status 000001 --spool spool | grep -o '"status":"done"'
  "status":"done"

  $ qxc status 000001 --spool spool | grep -o '"histogram":{[^}]*}'
  "histogram":{"00":203,"11":197}

Sharing the analysis never perturbs results: alice's identical resubmit
gets the identical histogram, and bob (different seed) gets his own draw:

  $ qxc status 000003 --spool spool | grep -o '"histogram":{[^}]*}'
  "histogram":{"00":203,"11":197}

  $ qxc status 000002 --spool spool | grep -o '"histogram":{[^}]*}'
  "histogram":{"11":209,"00":191}

Cancellation is a marker file; the daemon honours it before starting the
job:

  $ qxc submit bell.qasm --spool spool --tenant alice --shots 1000 --seed 9
  submitted 000004
  $ qxc cancel 000004 --spool spool
  cancel requested for 000004
  $ qxd serve --spool spool --once
  $ qxc status 000004 --spool spool | grep -o '"status":"cancelled"'
  "status":"cancelled"

Cancelling a finished job is refused:

  $ qxc cancel 000001 --spool spool
  000001 already finished
  [1]

Overload walks the degradation ladder before rejecting: with a backlog
capacity of 4 and degradation above 2, jobs 3 and 4 are admitted with a
capped shot budget and job 5 is refused with a structured error — the
daemon never crashes:

  $ for seed in 1 2 3 4 5; do qxc submit bell.qasm --spool flood --tenant mallory --shots 1000 --seed $seed; done
  submitted 000001
  submitted 000002
  submitted 000003
  submitted 000004
  submitted 000005

  $ qxd serve --spool flood --once --max-queue 4 --degrade-above 2 --stats
  {"service":{"submitted":5,"accepted":4,"completed":4,"failed":0,"deadline_exceeded":0,"cancelled":0,"rejected":1,"rejected_estimate":0,"degraded":2,"cache_hits":0,"shared_analyses":3,"slices":10,"tenants":{"mallory":4}}}

  $ qxc status 000001 --spool flood | grep -o '"degraded":[^,]*'
  "degraded":null}

  $ qxc status 000003 --spool flood | grep -o '"degraded":[^,]*'
  "degraded":"service overload: shot budget capped to 128"}

  $ qxc status 000005 --spool flood | grep -o '"status":"[a-z]*"\|"kind":"[a-z-]*"'
  "status":"rejected"
  "kind":"overloaded"

A malformed job file is rejected as its own result, without stopping the
queue:

  $ mkdir -p spool/inbox
  $ printf 'wibble=1\n---\nversion 1.0\nqubits 1\n' > spool/inbox/000099.job
  $ qxd serve --spool spool --once
  $ qxc status 000099 --spool spool | grep -o '"status":"rejected"'
  "status":"rejected"

A job submitted with an already-exhausted deadline fails with a
structured deadline-exceeded error at its first slice boundary — it never
starts work past its budget (docs/service.md):

  $ qxc submit bell.qasm --spool spool --tenant alice --shots 400 --seed 7 --deadline-ms 0
  submitted 000100
  $ qxd serve --spool spool --once
  $ qxc status 000100 --spool spool | grep -o '"status":"[a-z]*"\|"kind":"[a-z-]*"'
  "status":"failed"
  "kind":"deadline-exceeded"

Status without an id reports the daemon heartbeat and queue depths; the
one-shot daemon above is gone, so its last heartbeat reads dead:

  $ qxc status --spool spool | sed 's/pid [0-9]*/pid PID/'
  daemon: pid PID stopped (dead)
  inbox:  0 queued, active: 0 journaled
