(* Tests for the circuit IR: gate algebra, circuit structure, cQASM. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Cqasm = Qca_circuit.Cqasm
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Rng = Qca_util.Rng

let all_simple_unitaries =
  [
    Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdag; Gate.T; Gate.Tdag;
    Gate.X90; Gate.Xm90; Gate.Y90; Gate.Ym90; Gate.Rx 0.3; Gate.Ry 0.7; Gate.Rz 1.1;
    Gate.Cnot; Gate.Cz; Gate.Swap; Gate.Cphase 0.5; Gate.Crk 3; Gate.Toffoli;
  ]

(* --- gates --- *)

let test_all_matrices_unitary () =
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "%s unitary" (Gate.name u))
        true
        (Matrix.is_unitary (Gate.matrix u)))
    all_simple_unitaries

let test_adjoint_inverts () =
  List.iter
    (fun u ->
      let m = Gate.matrix u and madj = Gate.matrix (Gate.adjoint u) in
      let product = Matrix.mul madj m in
      Alcotest.(check bool)
        (Printf.sprintf "%s adjoint inverts" (Gate.name u))
        true
        (Matrix.equal_up_to_phase product (Matrix.identity (Matrix.rows m))))
    all_simple_unitaries

let test_matrix_dims_match_arity () =
  List.iter
    (fun u ->
      Alcotest.(check int)
        (Gate.name u)
        (1 lsl Gate.arity u)
        (Matrix.rows (Gate.matrix u)))
    all_simple_unitaries

let test_pauli_relations () =
  let x = Gate.matrix Gate.X and y = Gate.matrix Gate.Y and z = Gate.matrix Gate.Z in
  (* XY = iZ *)
  Alcotest.(check bool) "XY = iZ" true
    (Matrix.approx_equal (Matrix.mul x y) (Matrix.scale Cplx.i z));
  (* HXH = Z *)
  let h = Gate.matrix Gate.H in
  Alcotest.(check bool) "HXH = Z" true
    (Matrix.approx_equal (Matrix.mul h (Matrix.mul x h)) z)

let test_s_squared_is_z () =
  let s = Gate.matrix Gate.S in
  Alcotest.(check bool) "S^2 = Z" true
    (Matrix.approx_equal (Matrix.mul s s) (Gate.matrix Gate.Z))

let test_t_squared_is_s () =
  let t = Gate.matrix Gate.T in
  Alcotest.(check bool) "T^2 = S" true
    (Matrix.approx_equal (Matrix.mul t t) (Gate.matrix Gate.S))

let test_x90_squared_is_x () =
  let m = Gate.matrix Gate.X90 in
  Alcotest.(check bool) "X90^2 ~ X" true
    (Matrix.equal_up_to_phase (Matrix.mul m m) (Gate.matrix Gate.X))

let test_crk_is_cphase () =
  Alcotest.(check bool) "crk2 = cphase(pi/2)" true
    (Matrix.approx_equal (Gate.matrix (Gate.Crk 2)) (Gate.matrix (Gate.Cphase (Float.pi /. 2.0))))

let test_diagonal_flags () =
  Alcotest.(check bool) "cz diagonal" true (Gate.is_diagonal Gate.Cz);
  Alcotest.(check bool) "h not diagonal" false (Gate.is_diagonal Gate.H);
  List.iter
    (fun u ->
      if Gate.is_diagonal u then begin
        let m = Gate.matrix u in
        let dim = Matrix.rows m in
        for r = 0 to dim - 1 do
          for c = 0 to dim - 1 do
            if r <> c then
              Alcotest.(check bool)
                (Printf.sprintf "%s off-diagonal zero" (Gate.name u))
                true
                (Cplx.approx_equal (Matrix.get m r c) Cplx.zero)
          done
        done
      end)
    all_simple_unitaries

let test_map_qubits () =
  let instr = Gate.Unitary (Gate.Cnot, [| 0; 1 |]) in
  let mapped = Gate.map_qubits (fun q -> q + 2) instr in
  Alcotest.(check (array int)) "mapped" [| 2; 3 |] (Gate.qubits mapped)

let test_gate_to_string () =
  Alcotest.(check string) "cnot" "cnot q[0], q[1]"
    (Gate.to_string (Gate.Unitary (Gate.Cnot, [| 0; 1 |])));
  Alcotest.(check string) "measure" "measure q[3]" (Gate.to_string (Gate.Measure 3))

(* --- circuits --- *)

let test_circuit_validation () =
  let c = Circuit.create 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Circuit: qubit 2 out of range [0, 2) in 'x q[2]'")
    (fun () -> ignore (Circuit.add c (Gate.Unitary (Gate.X, [| 2 |]))));
  Alcotest.check_raises "duplicate operand"
    (Invalid_argument "Circuit: duplicated operand q[0] in 'cnot q[0], q[0]'") (fun () ->
      ignore (Circuit.add c (Gate.Unitary (Gate.Cnot, [| 0; 0 |]))))

let test_circuit_counts () =
  let c = Library.ghz 4 in
  Alcotest.(check int) "gate count" 4 (Circuit.gate_count c);
  Alcotest.(check int) "2q count" 3 (Circuit.two_qubit_gate_count c);
  Alcotest.(check int) "depth" 4 (Circuit.depth c)

let test_circuit_append_repeat () =
  let b = Library.bell () in
  let twice = Circuit.repeat 2 b in
  Alcotest.(check int) "length" 4 (Circuit.length twice);
  let joined = Circuit.append b b in
  Alcotest.(check bool) "repeat = append" true (Circuit.equal twice joined)

let test_circuit_inverse_identity () =
  let c = Library.qft 3 in
  let id = Circuit.append c (Circuit.inverse c) in
  let m = Circuit.unitary_matrix id in
  Alcotest.(check bool) "qft * qft^-1 = I" true
    (Matrix.equal_up_to_phase m (Matrix.identity 8))

let test_circuit_inverse_rejects_measure () =
  let c = Circuit.of_list 1 [ Gate.Measure 0 ] in
  Alcotest.check_raises "non-unitary"
    (Invalid_argument "Circuit.inverse: circuit contains non-unitary instructions")
    (fun () -> ignore (Circuit.inverse c))

let test_qubits_used () =
  let c = Circuit.of_list 5 [ Gate.Unitary (Gate.Cnot, [| 1; 3 |]) ] in
  Alcotest.(check (list int)) "used" [ 1; 3 ] (Circuit.qubits_used c)

let test_bell_unitary () =
  let m = Circuit.unitary_matrix (Library.bell ()) in
  (* Column 0 should be the Bell state (|00> + |11>)/sqrt2. *)
  let inv_sqrt2 = 1.0 /. sqrt 2.0 in
  Alcotest.(check bool) "amp 00" true
    (Cplx.approx_equal (Matrix.get m 0 0) (Cplx.make inv_sqrt2 0.0));
  Alcotest.(check bool) "amp 11" true
    (Cplx.approx_equal (Matrix.get m 3 0) (Cplx.make inv_sqrt2 0.0));
  Alcotest.(check bool) "amp 01" true (Cplx.approx_equal (Matrix.get m 1 0) Cplx.zero)

(* QFT matrix entry (j,k) = w^{jk} / sqrt(N) with w = exp(2 pi i / N). *)
let test_qft_matrix () =
  let n = 3 in
  let dim = 1 lsl n in
  let m = Circuit.unitary_matrix (Library.qft n) in
  let w = 2.0 *. Float.pi /. float_of_int dim in
  let expected =
    Matrix.make dim dim (fun j k ->
        Cplx.scale (1.0 /. sqrt (float_of_int dim)) (Cplx.cis (w *. float_of_int (j * k))))
  in
  Alcotest.(check bool) "qft matrix" true (Matrix.equal_up_to_phase ~eps:1e-9 m expected)

let test_mcx_truth_table () =
  (* 3 controls, 1 ancilla, target: verify action on every basis state. *)
  let n = 5 in
  let mcx = Library.multi_controlled_x ~controls:[ 0; 1; 2 ] ~ancillas:[ 3 ] ~target:4 n in
  let m = Circuit.unitary_matrix mcx in
  for basis = 0 to (1 lsl n) - 1 do
    if basis land 0b01000 = 0 then begin
      (* ancilla must be clean *)
      let expected =
        if basis land 0b111 = 0b111 then basis lxor 0b10000 else basis
      in
      let amp = Matrix.get m expected basis in
      Alcotest.(check bool)
        (Printf.sprintf "basis %d -> %d" basis expected)
        true
        (Cplx.approx_equal amp Cplx.one)
    end
  done

let test_cuccaro_adds () =
  (* k=2: verify a + b for all 4x4 inputs via the unitary's permutation. *)
  let k = 2 in
  let circ = Library.cuccaro_adder k in
  let m = Circuit.unitary_matrix circ in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let input = a lor (b lsl k) in
      let sum = a + b in
      let expected = a lor ((sum land 3) lsl k) lor ((sum lsr 2) lsl (2 * k + 1)) in
      let amp = Matrix.get m expected input in
      Alcotest.(check bool)
        (Printf.sprintf "%d+%d" a b)
        true
        (Cplx.approx_equal amp Cplx.one)
    done
  done

let test_phase_flip_oracle () =
  let n = 3 in
  let pattern = [| true; false; true |] in
  let oracle = Library.phase_flip_on ~pattern ~qubits:[ 0; 1; 2 ] ~ancillas:[] n in
  let m = Circuit.unitary_matrix oracle in
  (* pattern q0=1,q1=0,q2=1 -> basis index 0b101 = 5 *)
  for basis = 0 to 7 do
    let expected = if basis = 5 then Cplx.make (-1.0) 0.0 else Cplx.one in
    Alcotest.(check bool)
      (Printf.sprintf "basis %d" basis)
      true
      (Cplx.approx_equal (Matrix.get m basis basis) expected)
  done

(* --- conditionals --- *)

let test_conditional_to_string () =
  Alcotest.(check string) "c-x" "c-x b[1], q[2]"
    (Gate.to_string (Gate.Conditional (1, Gate.X, [| 2 |])));
  Alcotest.(check string) "c-rz" "c-rz b[0], q[1], 0.5"
    (Gate.to_string (Gate.Conditional (0, Gate.Rz 0.5, [| 1 |])))

let test_conditional_counts_as_gate () =
  let c = Circuit.of_list 3 [ Gate.Conditional (0, Gate.Cnot, [| 1; 2 |]) ] in
  Alcotest.(check int) "gate count" 1 (Circuit.gate_count c);
  Alcotest.(check int) "2q count" 1 (Circuit.two_qubit_gate_count c)

let test_conditional_cqasm_roundtrip () =
  Alcotest.(check bool) "teleport roundtrips" true
    (Cqasm.roundtrip_equal (Library.teleport ()))

let test_conditional_parse () =
  let src = "version 1.0\nqubits 2\nmeasure q[0]\nc-x b[0], q[1]\n" in
  let c = Cqasm.parse_circuit src in
  match Circuit.instructions c with
  | [ Gate.Measure 0; Gate.Conditional (0, Gate.X, [| 1 |]) ] -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_conditional_rejects_in_inverse () =
  let c = Circuit.of_list 2 [ Gate.Conditional (0, Gate.X, [| 1 |]) ] in
  match Circuit.inverse c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conditional inverse accepted"

(* --- cQASM --- *)

let test_cqasm_emit_contains () =
  let src = Cqasm.emit_circuit (Library.bell ()) in
  Alcotest.(check bool) "version" true (String.length src > 0 && String.sub src 0 11 = "version 1.0");
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "qubits line" true (contains "qubits 2" src);
  Alcotest.(check bool) "cnot line" true (contains "cnot q[0], q[1]" src)

let test_cqasm_roundtrip_library () =
  List.iter
    (fun circ ->
      Alcotest.(check bool) (Circuit.name circ) true (Cqasm.roundtrip_equal circ))
    [ Library.bell (); Library.ghz 5; Library.qft 4; Library.cuccaro_adder 2 ]

let test_cqasm_parse_subcircuits () =
  let src = "version 1.0\nqubits 2\n.init\n  prep_z q[0]\n.body(3)\n  x q[0]\n.meas\n  measure q[0]\n" in
  let program = Cqasm.parse src in
  Alcotest.(check int) "subcircuit count" 3 (List.length program.Cqasm.subcircuits);
  let flat = Cqasm.flatten program in
  (* prep + 3x + measure = 5 instructions *)
  Alcotest.(check int) "flattened length" 5 (Circuit.length flat)

let test_cqasm_parse_angles () =
  let src = "version 1.0\nqubits 1\nrx q[0], 1.5708\nrz q[0], -0.5\n" in
  let c = Cqasm.parse_circuit src in
  match Circuit.instructions c with
  | [ Gate.Unitary (Gate.Rx a, _); Gate.Unitary (Gate.Rz b, _) ] ->
      Alcotest.(check (float 1e-9)) "rx angle" 1.5708 a;
      Alcotest.(check (float 1e-9)) "rz angle" (-0.5) b
  | _ -> Alcotest.fail "unexpected parse"

let test_cqasm_parse_errors () =
  let expect_error src =
    match Cqasm.parse src with
    | exception Qca_util.Error.Error
        { Qca_util.Error.kind = Qca_util.Error.Syntax _; _ } ->
        ()
    | _ -> Alcotest.fail "expected parse error"
  in
  expect_error "qubits 2\nx q[0]\n";
  (* no version *)
  expect_error "version 1.0\nx q[0]\n";
  (* instruction before qubits *)
  expect_error "version 1.0\nqubits 2\nfrobnicate q[0]\n";
  expect_error "version 1.0\nqubits 2\nx q[0], q[1]\n";
  expect_error "version 1.0\nqubits 2\ncnot q[0]\n"

let test_cqasm_comments_and_measure_all () =
  let src = "version 1.0\n# a comment\nqubits 2\nx q[0] # trailing\nmeasure_all\n" in
  let c = Cqasm.parse_circuit src in
  Alcotest.(check int) "x + 2 measures" 3 (Circuit.length c)

let test_cqasm_error_model_roundtrip () =
  let src = "version 1.0\nqubits 1\nerror_model depolarizing_channel, 0.001\nx q[0]\n" in
  let program = Cqasm.parse src in
  Alcotest.(check bool) "parsed" true
    (program.Cqasm.error_model = Some ("depolarizing_channel", 0.001));
  let emitted = Cqasm.emit program in
  let reparsed = Cqasm.parse emitted in
  Alcotest.(check bool) "roundtrips" true
    (reparsed.Cqasm.error_model = Some ("depolarizing_channel", 0.001))

let test_cqasm_out_of_range_rejected () =
  let src = "version 1.0\nqubits 2\nx q[5]\n" in
  match Cqasm.parse src with
  | exception Qca_util.Error.Error
      { Qca_util.Error.kind = Qca_util.Error.Syntax { line; token; _ }; _ } ->
      (* The range error points at the offending line and token. *)
      Alcotest.(check int) "line" 3 line;
      Alcotest.(check string) "token" "x" token
  | _ -> Alcotest.fail "expected failure"

(* --- properties --- *)

let circuit_gen =
  QCheck.Gen.(
    let* qubits = int_range 2 5 in
    let* gates = int_range 0 30 in
    let* seed = int_range 0 10000 in
    return (Library.random_circuit (Rng.create seed) ~qubits ~gates))

let arb_circuit = QCheck.make ~print:Circuit.to_string circuit_gen

let prop_roundtrip = QCheck.Test.make ~name:"cqasm roundtrip random" ~count:100 arb_circuit Cqasm.roundtrip_equal

let prop_depth_bounds =
  QCheck.Test.make ~name:"depth <= length" ~count:100 arb_circuit (fun c ->
      Circuit.depth c <= Circuit.length c)

let prop_inverse_unitary =
  QCheck.Test.make ~name:"inverse composes to identity" ~count:30 arb_circuit (fun c ->
      let id = Circuit.append c (Circuit.inverse c) in
      Matrix.equal_up_to_phase ~eps:1e-7
        (Circuit.unitary_matrix id)
        (Matrix.identity (1 lsl Circuit.qubit_count c)))

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "all matrices unitary" `Quick test_all_matrices_unitary;
          Alcotest.test_case "adjoint inverts" `Quick test_adjoint_inverts;
          Alcotest.test_case "dims match arity" `Quick test_matrix_dims_match_arity;
          Alcotest.test_case "pauli relations" `Quick test_pauli_relations;
          Alcotest.test_case "S^2 = Z" `Quick test_s_squared_is_z;
          Alcotest.test_case "T^2 = S" `Quick test_t_squared_is_s;
          Alcotest.test_case "X90^2 ~ X" `Quick test_x90_squared_is_x;
          Alcotest.test_case "crk = cphase" `Quick test_crk_is_cphase;
          Alcotest.test_case "diagonal flags" `Quick test_diagonal_flags;
          Alcotest.test_case "map qubits" `Quick test_map_qubits;
          Alcotest.test_case "to_string" `Quick test_gate_to_string;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "append/repeat" `Quick test_circuit_append_repeat;
          Alcotest.test_case "inverse identity" `Quick test_circuit_inverse_identity;
          Alcotest.test_case "inverse rejects measure" `Quick test_circuit_inverse_rejects_measure;
          Alcotest.test_case "qubits used" `Quick test_qubits_used;
        ] );
      ( "library",
        [
          Alcotest.test_case "bell unitary" `Quick test_bell_unitary;
          Alcotest.test_case "qft matrix" `Quick test_qft_matrix;
          Alcotest.test_case "mcx truth table" `Quick test_mcx_truth_table;
          Alcotest.test_case "cuccaro adds" `Quick test_cuccaro_adds;
          Alcotest.test_case "phase flip oracle" `Quick test_phase_flip_oracle;
        ] );
      ( "conditional",
        [
          Alcotest.test_case "to_string" `Quick test_conditional_to_string;
          Alcotest.test_case "counts as gate" `Quick test_conditional_counts_as_gate;
          Alcotest.test_case "cqasm roundtrip" `Quick test_conditional_cqasm_roundtrip;
          Alcotest.test_case "parse" `Quick test_conditional_parse;
          Alcotest.test_case "no inverse" `Quick test_conditional_rejects_in_inverse;
        ] );
      ( "cqasm",
        [
          Alcotest.test_case "emit structure" `Quick test_cqasm_emit_contains;
          Alcotest.test_case "roundtrip library" `Quick test_cqasm_roundtrip_library;
          Alcotest.test_case "subcircuits" `Quick test_cqasm_parse_subcircuits;
          Alcotest.test_case "angles" `Quick test_cqasm_parse_angles;
          Alcotest.test_case "parse errors" `Quick test_cqasm_parse_errors;
          Alcotest.test_case "comments and measure_all" `Quick test_cqasm_comments_and_measure_all;
          Alcotest.test_case "error_model directive" `Quick test_cqasm_error_model_roundtrip;
          Alcotest.test_case "out of range" `Quick test_cqasm_out_of_range_rejected;
          qtest prop_roundtrip;
          qtest prop_depth_bounds;
          qtest prop_inverse_unitary;
        ] );
    ]
