(* Tests for the QX simulator: state vector, noise channels, executor. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module State = Qca_qx.State
module Noise = Qca_qx.Noise
module Sim = Qca_qx.Sim
module Rng = Qca_util.Rng
module Cplx = Qca_util.Cplx
module Matrix = Qca_util.Matrix

let check_float = Alcotest.(check (float 1e-9))
let check_loose = Alcotest.(check (float 0.03))

(* --- state basics --- *)

let test_initial_state () =
  let s = State.create 3 in
  check_float "amp 0" 1.0 (State.probability_of s 0);
  check_float "norm" 1.0 (State.norm s);
  Alcotest.(check int) "dim" 8 (State.dimension s)

let test_x_flips () =
  let s = State.create 2 in
  State.apply s Gate.X [| 1 |];
  check_float "now |10>" 1.0 (State.probability_of s 0b10)

let test_h_superposition () =
  let s = State.create 1 in
  State.apply s Gate.H [| 0 |];
  check_float "p0" 0.5 (State.probability_of s 0);
  check_float "p1" 0.5 (State.probability_of s 1)

let test_bell_state () =
  let s = State.create 2 in
  State.apply s Gate.H [| 0 |];
  State.apply s Gate.Cnot [| 0; 1 |];
  check_float "p00" 0.5 (State.probability_of s 0);
  check_float "p11" 0.5 (State.probability_of s 3);
  check_float "p01" 0.0 (State.probability_of s 1)

let test_cnot_control_required () =
  let s = State.create 2 in
  State.apply s Gate.Cnot [| 0; 1 |];
  check_float "|00> unchanged" 1.0 (State.probability_of s 0)

let test_swap () =
  let s = State.create 2 in
  State.apply s Gate.X [| 0 |];
  State.apply s Gate.Swap [| 0; 1 |];
  check_float "now |10>" 1.0 (State.probability_of s 0b10)

let test_toffoli () =
  let s = State.create 3 in
  State.apply s Gate.X [| 0 |];
  State.apply s Gate.X [| 1 |];
  State.apply s Gate.Toffoli [| 0; 1; 2 |];
  check_float "target flipped" 1.0 (State.probability_of s 0b111)

let test_cz_phase () =
  let s = State.create 2 in
  State.apply s Gate.X [| 0 |];
  State.apply s Gate.X [| 1 |];
  State.apply s Gate.Cz [| 0; 1 |];
  Alcotest.(check bool) "phase -1" true
    (Cplx.approx_equal (State.amplitude s 3) (Cplx.make (-1.0) 0.0))

(* Each named gate must act exactly like its matrix (via apply_generic). *)
let test_fast_paths_match_generic () =
  let gates1 = [ Gate.X; Gate.Z; Gate.S; Gate.Sdag; Gate.T; Gate.Tdag; Gate.Rz 0.7 ] in
  let rng = Rng.create 99 in
  List.iter
    (fun u ->
      (* random 2-qubit state, compare fast path against dense embedding *)
      let amps = Array.init 4 (fun _ -> Cplx.make (Rng.gaussian rng) (Rng.gaussian rng)) in
      let s1 = State.of_amplitudes amps in
      let s2 = State.copy s1 in
      State.apply s1 u [| 1 |];
      let c = Circuit.of_list 2 [ Gate.Unitary (u, [| 1 |]) ] in
      let m = Circuit.unitary_matrix c in
      let expected = Matrix.apply m (Array.init 4 (State.amplitude s2)) in
      Array.iteri
        (fun k e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s amp %d" (Gate.name u) k)
            true
            (Cplx.approx_equal ~eps:1e-9 e (State.amplitude s1 k)))
        expected)
    gates1

let test_two_qubit_fast_paths_match () =
  let gates = [ Gate.Cnot; Gate.Cz; Gate.Swap; Gate.Cphase 0.9; Gate.Crk 2 ] in
  let rng = Rng.create 123 in
  List.iter
    (fun u ->
      let amps = Array.init 8 (fun _ -> Cplx.make (Rng.gaussian rng) (Rng.gaussian rng)) in
      let s1 = State.of_amplitudes amps in
      let s2 = State.copy s1 in
      State.apply s1 u [| 2; 0 |];
      let c = Circuit.of_list 3 [ Gate.Unitary (u, [| 2; 0 |]) ] in
      let m = Circuit.unitary_matrix c in
      let expected = Matrix.apply m (Array.init 8 (State.amplitude s2)) in
      Array.iteri
        (fun k e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s amp %d" (Gate.name u) k)
            true
            (Cplx.approx_equal ~eps:1e-9 e (State.amplitude s1 k)))
        expected)
    gates

let test_measure_deterministic () =
  let s = State.create 2 in
  State.apply s Gate.X [| 1 |];
  let rng = Rng.create 1 in
  Alcotest.(check int) "q1 is 1" 1 (State.measure s rng 1);
  Alcotest.(check int) "q0 is 0" 0 (State.measure s rng 0)

let test_measure_collapses_entanglement () =
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let s = State.create 2 in
    State.apply s Gate.H [| 0 |];
    State.apply s Gate.Cnot [| 0; 1 |];
    let m0 = State.measure s rng 0 in
    let m1 = State.measure s rng 1 in
    Alcotest.(check int) "correlated" m0 m1
  done

let test_measure_statistics () =
  let rng = Rng.create 5 in
  let shots = 5000 in
  (* Ry(2*asin(sqrt(0.3))) gives P(1)=0.3. *)
  let theta = 2.0 *. asin (sqrt 0.3) in
  let hits = ref 0 in
  for _ = 1 to shots do
    let s = State.create 1 in
    State.apply s (Gate.Ry theta) [| 0 |];
    if State.measure s rng 0 = 1 then incr hits
  done;
  check_loose "P(1)=0.3" 0.3 (float_of_int !hits /. float_of_int shots)

let test_sample_index_distribution () =
  let s = State.create 2 in
  State.apply s Gate.H [| 0 |];
  let rng = Rng.create 6 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let k = State.sample_index s rng in
    counts.(k) <- counts.(k) + 1
  done;
  check_loose "p0" 0.5 (float_of_int counts.(0) /. 4000.0);
  check_loose "p1" 0.5 (float_of_int counts.(1) /. 4000.0);
  Alcotest.(check int) "p2 zero" 0 counts.(2)

let test_overlap_fidelity () =
  let a = State.create 1 in
  let b = State.create 1 in
  State.apply b Gate.H [| 0 |];
  check_float "fidelity" 0.5 (State.fidelity a b);
  check_float "self" 1.0 (State.fidelity a a)

let test_expectation_diag () =
  let s = State.create 1 in
  State.apply s Gate.H [| 0 |];
  let z = State.expectation_diag s (fun k -> if k = 0 then 1.0 else -1.0) in
  check_float "<Z> = 0" 0.0 z

let test_expectation_pauli () =
  (* Bell state: <XX> = <ZZ> = 1, <XI> = <ZI> = 0, <YY> = -1 *)
  let s = State.create 2 in
  State.apply s Gate.H [| 0 |];
  State.apply s Gate.Cnot [| 0; 1 |];
  check_float "<ZZ>" 1.0 (State.expectation_pauli s [ (0, 'Z'); (1, 'Z') ]);
  check_float "<XX>" 1.0 (State.expectation_pauli s [ (0, 'X'); (1, 'X') ]);
  check_float "<YY>" (-1.0) (State.expectation_pauli s [ (0, 'Y'); (1, 'Y') ]);
  check_float "<ZI>" 0.0 (State.expectation_pauli s [ (0, 'Z') ]);
  (* probe must not disturb the state *)
  check_float "state intact" 0.5 (State.probability_of s 0);
  (* |+> single qubit: <X> = 1, <Y> = <Z> = 0 *)
  let plus = State.create 1 in
  State.apply plus Gate.H [| 0 |];
  check_float "<X>" 1.0 (State.expectation_pauli plus [ (0, 'X') ]);
  check_float "<Y>" 0.0 (State.expectation_pauli plus [ (0, 'Y') ]);
  (* |+i> = S|+>: <Y> = 1 *)
  State.apply plus Gate.S [| 0 |];
  check_float "<Y> of +i" 1.0 (State.expectation_pauli plus [ (0, 'Y') ]);
  match State.expectation_pauli plus [ (0, 'X'); (0, 'Z') ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "repeated qubit accepted"

let test_memory_bytes () =
  Alcotest.(check int) "20 qubits = 16 MiB" (16 * 1024 * 1024) (State.memory_bytes 20)

(* --- ghz scaling sanity (the E5 experiment in miniature) --- *)

let test_ghz_12 () =
  let result = Sim.run (Library.ghz 12) in
  check_float "p(0...0)" 0.5 (State.probability_of result.Sim.state 0);
  check_float "p(1...1)" 0.5 (State.probability_of result.Sim.state ((1 lsl 12) - 1))

(* --- noise --- *)

let test_bit_flip_channel_rate () =
  let rng = Rng.create 21 in
  let flips = ref 0 in
  let shots = 20_000 in
  for _ = 1 to shots do
    let s = State.create 1 in
    Noise.apply (Noise.Bit_flip 0.25) s rng 0;
    if State.prob_one s 0 > 0.5 then incr flips
  done;
  check_loose "flip rate" 0.25 (float_of_int !flips /. float_of_int shots)

let test_amplitude_damping_decays () =
  let rng = Rng.create 31 in
  let shots = 20_000 in
  let excited = ref 0 in
  for _ = 1 to shots do
    let s = State.create 1 in
    State.apply s Gate.X [| 0 |];
    Noise.apply (Noise.Amplitude_damping 0.4) s rng 0;
    if State.prob_one s 0 > 0.5 then incr excited
  done;
  check_loose "survival 0.6" 0.6 (float_of_int !excited /. float_of_int shots)

let test_amplitude_damping_preserves_ground () =
  let rng = Rng.create 32 in
  let s = State.create 1 in
  Noise.apply (Noise.Amplitude_damping 0.9) s rng 0;
  check_float "ground stays" 0.0 (State.prob_one s 0)

let test_depolarizing_mixes () =
  let rng = Rng.create 41 in
  let shots = 30_000 in
  let ones = ref 0 in
  for _ = 1 to shots do
    let s = State.create 1 in
    Noise.apply (Noise.Depolarizing 0.3) s rng 0;
    if State.measure s rng 0 = 1 then incr ones
  done;
  (* X or Y with prob 0.3 * 2/3 = 0.2 flips |0> to |1> *)
  check_loose "P(1) = 0.2" 0.2 (float_of_int !ones /. float_of_int shots)

let test_ideal_model_detected () =
  Alcotest.(check bool) "ideal" true (Noise.is_ideal Noise.ideal);
  Alcotest.(check bool) "depolarizing not ideal" false (Noise.is_ideal (Noise.depolarizing 0.01));
  Alcotest.(check bool) "superconducting not ideal" false (Noise.is_ideal Noise.superconducting)

let test_readout_flip () =
  let rng = Rng.create 51 in
  let m = Noise.depolarizing 0.5 in
  let flips = ref 0 in
  for _ = 1 to 10_000 do
    if Noise.flip_readout m rng 0 = 1 then incr flips
  done;
  check_loose "half flipped" 0.5 (float_of_int !flips /. 10_000.0)

(* --- executor --- *)

let test_run_bell_histogram () =
  let circuit =
    Circuit.append (Library.bell ())
      (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
  in
  let hist = Sim.histogram ~shots:2000 circuit in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "all shots" 2000 total;
  List.iter
    (fun (key, count) ->
      Alcotest.(check bool) ("only correlated keys: " ^ key) true (key = "00" || key = "11");
      check_loose "balanced" 0.5 (float_of_int count /. 2000.0))
    hist

let test_run_prep_resets () =
  let circuit =
    Circuit.of_list 1
      [ Gate.Unitary (Gate.X, [| 0 |]); Gate.Prep 0; Gate.Measure 0 ]
  in
  let result = Sim.run circuit in
  Alcotest.(check int) "reset to 0" 0 result.Sim.classical.(0)

let test_unmeasured_is_minus_one () =
  let result = Sim.run (Library.bell ()) in
  Alcotest.(check int) "no measurement" (-1) result.Sim.classical.(0)

let test_run_cqasm_error_model () =
  (* the embedded error model must be picked up: GHZ with heavy noise shows
     uncorrelated outcomes sometimes *)
  let src =
    "version 1.0\nqubits 3\nerror_model depolarizing_channel, 0.2\nh q[0]\ncnot q[0], \
     q[1]\ncnot q[1], q[2]\nmeasure_all\n"
  in
  let rng = Rng.create 2025 in
  let mismatched = ref 0 in
  for _ = 1 to 300 do
    let result = Sim.run_cqasm ~rng src in
    let c = result.Sim.classical in
    if not (c.(0) = c.(1) && c.(1) = c.(2)) then incr mismatched
  done;
  Alcotest.(check bool) "noise applied from directive" true (!mismatched > 10)

let test_run_cqasm () =
  let src = "version 1.0\nqubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n" in
  let rng = Rng.create 77 in
  let result = Sim.run_cqasm ~rng src in
  Alcotest.(check int) "correlated" result.Sim.classical.(0) result.Sim.classical.(1)

let test_success_probability_ghz () =
  let circuit =
    Circuit.append (Library.ghz 3)
      (Circuit.of_list 3 [ Gate.Measure 0; Gate.Measure 1; Gate.Measure 2 ])
  in
  let accept bits = bits.(0) = bits.(1) && bits.(1) = bits.(2) in
  let p = Sim.success_probability ~shots:500 ~accept circuit in
  check_float "always correlated" 1.0 p

let test_noisy_ghz_degrades () =
  let circuit =
    Circuit.append (Library.ghz 3)
      (Circuit.of_list 3 [ Gate.Measure 0; Gate.Measure 1; Gate.Measure 2 ])
  in
  let accept bits = bits.(0) = bits.(1) && bits.(1) = bits.(2) in
  let rng = Rng.create 88 in
  let p = Sim.success_probability ~noise:(Noise.depolarizing 0.05) ~rng ~shots:800 ~accept circuit in
  Alcotest.(check bool) "degraded below perfect" true (p < 1.0);
  Alcotest.(check bool) "still better than chance" true (p > 0.5)

let test_expectation_z_plus_state () =
  let c = Circuit.of_list 1 [ Gate.Unitary (Gate.X, [| 0 |]) ] in
  check_float "<Z>|1> = -1" (-1.0) (Sim.expectation_z c 0)

let test_fidelity_decreases_with_noise () =
  let circuit = Library.ghz 4 in
  let rng = Rng.create 90 in
  let f_low =
    Sim.state_fidelity_vs_ideal ~noise:(Noise.depolarizing 0.001) ~rng ~shots:30 circuit
  in
  let f_high =
    Sim.state_fidelity_vs_ideal ~noise:(Noise.depolarizing 0.2) ~rng ~shots:30 circuit
  in
  Alcotest.(check bool) "ordering" true (f_low > f_high)

(* --- textbook oracle algorithms --- *)

let test_bernstein_vazirani_recovers_secret () =
  let rng = Rng.create 6 in
  List.iter
    (fun (n, secret) ->
      let circuit = Library.bernstein_vazirani ~secret n in
      let result = Sim.run ~rng circuit in
      let recovered = ref 0 in
      for q = 0 to n - 1 do
        if result.Sim.classical.(q) = 1 then recovered := !recovered lor (1 lsl q)
      done;
      Alcotest.(check int) (Printf.sprintf "secret %d on %d qubits" secret n) secret !recovered)
    [ (3, 0b101); (4, 0b1111); (5, 0b00000); (6, 0b101010) ]

let test_deutsch_jozsa_decides () =
  let rng = Rng.create 8 in
  let all_zero result n =
    let rec go q = q = n || (result.Sim.classical.(q) = 0 && go (q + 1)) in
    go 0
  in
  let constant = Sim.run ~rng (Library.deutsch_jozsa ~balanced:None 4) in
  Alcotest.(check bool) "constant reads all-zero" true (all_zero constant 4);
  let balanced = Sim.run ~rng (Library.deutsch_jozsa ~balanced:(Some 0b0110) 4) in
  Alcotest.(check bool) "balanced reads nonzero" false (all_zero balanced 4)

(* --- density matrix --- *)

module Density = Qca_qx.Density

let test_density_initial () =
  let d = Density.create 2 in
  check_float "trace" 1.0 (Density.trace d);
  check_float "purity" 1.0 (Density.purity d);
  check_float "p00" 1.0 (Density.probabilities d).(0)

let test_density_matches_statevector () =
  let rng = Rng.create 313 in
  for seed = 0 to 9 do
    let circuit = Library.random_circuit (Rng.create seed) ~qubits:3 ~gates:15 in
    let state = (Sim.run circuit).Sim.state in
    let d = Density.run circuit in
    Alcotest.(check (float 1e-9)) "pure evolution agrees" 1.0
      (Density.fidelity_with_state d state);
    check_float "purity 1" 1.0 (Density.purity d)
  done;
  ignore rng

let test_density_of_state () =
  let s = State.create 2 in
  State.apply s Gate.H [| 0 |];
  let d = Density.of_state s in
  check_float "fidelity with itself" 1.0 (Density.fidelity_with_state d s)

let test_depolarizing_exact () =
  (* Full depolarising (p=1 leaves I/2 mixture on Paulis... p chosen so the
     analytic single-qubit result is simple): after Depolarizing p on |0>,
     P(1) = 2p/3. *)
  let d = Density.create 1 in
  Density.apply_channel d (Qca_qx.Noise.Depolarizing 0.3) 0;
  check_float "P(1) = 0.2" 0.2 (Density.prob_one d 0);
  check_float "trace preserved" 1.0 (Density.trace d);
  Alcotest.(check bool) "mixed now" true (Density.purity d < 1.0)

let test_amplitude_damping_exact () =
  let d = Density.create 1 in
  Density.apply_unitary d Gate.X [| 0 |];
  Density.apply_channel d (Qca_qx.Noise.Amplitude_damping 0.4) 0;
  check_float "survival" 0.6 (Density.prob_one d 0);
  check_float "trace" 1.0 (Density.trace d)

let test_phase_damping_kills_coherence () =
  let d = Density.create 1 in
  Density.apply_unitary d Gate.H [| 0 |];
  let coherence_before = Qca_util.Cplx.abs (Density.get d 0 1) in
  Density.apply_channel d (Qca_qx.Noise.Phase_damping 0.75) 0;
  let coherence_after = Qca_util.Cplx.abs (Density.get d 0 1) in
  Alcotest.(check bool) "off-diagonal decays" true (coherence_after < coherence_before);
  (* populations untouched *)
  check_float "P(1) still 0.5" 0.5 (Density.prob_one d 0)

(* The key validation: Monte-Carlo trajectories must reproduce the exact
   density-matrix marginals. *)
let test_trajectories_match_density () =
  let circuit = Library.ghz 3 in
  let noise = Noise.depolarizing 0.05 in
  let exact = Density.run ~noise circuit in
  let rng = Rng.create 999 in
  let shots = 3000 in
  let ones = Array.make 3 0 in
  for _ = 1 to shots do
    let result = Sim.run ~noise ~rng circuit in
    for q = 0 to 2 do
      (* sample each qubit without collapsing correlations across qubits:
         use probabilities of the final state *)
      if Rng.bernoulli rng (State.prob_one result.Sim.state q) then
        ones.(q) <- ones.(q) + 1
    done
  done;
  for q = 0 to 2 do
    let sampled = float_of_int ones.(q) /. float_of_int shots in
    Alcotest.(check (float 0.04))
      (Printf.sprintf "qubit %d marginal" q)
      (Density.prob_one exact q) sampled
  done

let test_density_rejects_measurement () =
  let c = Circuit.of_list 1 [ Gate.Measure 0 ] in
  match Density.run c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "measurement accepted"

(* --- conditionals / teleportation --- *)

let test_conditional_fires_on_one () =
  let c =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.X, [| 0 |]);
        Gate.Measure 0;
        Gate.Conditional (0, Gate.X, [| 1 |]);
        Gate.Measure 1;
      ]
  in
  let result = Sim.run c in
  Alcotest.(check int) "conditional fired" 1 result.Sim.classical.(1)

let test_conditional_skips_on_zero () =
  let c =
    Circuit.of_list 2
      [ Gate.Measure 0; Gate.Conditional (0, Gate.X, [| 1 |]); Gate.Measure 1 ]
  in
  let result = Sim.run c in
  Alcotest.(check int) "conditional skipped" 0 result.Sim.classical.(1)

let test_teleportation_preserves_state () =
  (* Teleport Ry(theta)|0>: P(q2 = 1) must be sin^2(theta/2) regardless of
     the Bell-measurement outcomes. *)
  let theta = 1.234 in
  let expected = sin (theta /. 2.0) ** 2.0 in
  let circuit =
    Circuit.append
      (Library.teleport ~prepare:(Gate.Ry theta) ())
      (Circuit.of_list 3 [ Gate.Measure 2 ])
  in
  let rng = Rng.create 1717 in
  let shots = 4000 in
  let ones = ref 0 in
  for _ = 1 to shots do
    let result = Sim.run ~rng circuit in
    if result.Sim.classical.(2) = 1 then incr ones
  done;
  check_loose "teleported amplitude" expected (float_of_int !ones /. float_of_int shots)

let test_teleportation_exact_state () =
  (* Without the final measurement, Bob's qubit must carry exactly the
     payload state for every measurement branch. *)
  let theta = 0.789 in
  let rng = Rng.create 55 in
  for _ = 1 to 20 do
    let result = Sim.run ~rng (Library.teleport ~prepare:(Gate.Ry theta) ()) in
    let p1 = State.prob_one result.Sim.state 2 in
    Alcotest.(check (float 1e-9)) "P(1) exact" (sin (theta /. 2.0) ** 2.0) p1
  done

(* --- engine: run plans, shot sampling, backends --- *)

module Engine = Qca_qx.Engine

let measured_all n base =
  Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

let test_plan_classification () =
  let check name expected circuit =
    let plan, _ = Engine.analyse circuit in
    Alcotest.(check string) name expected (Engine.plan_to_string plan)
  in
  check "terminal measurements sample" "sampled" (measured_all 3 (Library.ghz 3));
  check "no measurement still samples" "sampled" (Library.ghz 3);
  check "leading prep is harmless" "sampled"
    (Circuit.of_list 2 [ Gate.Prep 0; Gate.Unitary (Gate.H, [| 0 |]); Gate.Measure 0 ]);
  (* All-Clifford circuits whose structure forces per-shot execution now go
     to the tableau; the same shapes with a non-Clifford gate still take
     state-vector trajectories. *)
  check "all-Clifford conditional goes to the tableau" "clifford"
    (Circuit.of_list 2
       [ Gate.Measure 0; Gate.Conditional (0, Gate.X, [| 1 |]); Gate.Measure 1 ]);
  check "non-Clifford conditional forces trajectories" "trajectory"
    (Circuit.of_list 2
       [ Gate.Measure 0; Gate.Conditional (0, Gate.T, [| 1 |]); Gate.Measure 1 ]);
  check "all-Clifford mid-circuit measurement goes to the tableau" "clifford"
    (Circuit.of_list 1 [ Gate.Measure 0; Gate.Unitary (Gate.X, [| 0 |]); Gate.Measure 0 ]);
  check "non-Clifford mid-circuit measurement forces trajectories" "trajectory"
    (Circuit.of_list 1 [ Gate.Measure 0; Gate.Unitary (Gate.T, [| 0 |]); Gate.Measure 0 ]);
  check "all-Clifford mid-circuit reset goes to the tableau" "clifford"
    (Circuit.of_list 1 [ Gate.Unitary (Gate.H, [| 0 |]); Gate.Prep 0; Gate.Measure 0 ]);
  check "non-Clifford mid-circuit reset forces trajectories" "trajectory"
    (Circuit.of_list 1 [ Gate.Unitary (Gate.T, [| 0 |]); Gate.Prep 0; Gate.Measure 0 ]);
  let plan, reason =
    Engine.analyse ~noise:(Noise.depolarizing 0.01) (measured_all 2 (Library.bell ()))
  in
  Alcotest.(check string) "noise forces trajectories" "trajectory" (Engine.plan_to_string plan);
  Alcotest.(check string) "noise reason" "stochastic noise model" reason

let test_forced_sampled_rejected () =
  let c = Circuit.of_list 2 [ Gate.Measure 0; Gate.Conditional (0, Gate.X, [| 1 |]) ] in
  match Engine.run ~plan:Engine.Sampled ~shots:10 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "forced sampled plan accepted on a feedback circuit"

let test_conditional_takes_trajectory_path () =
  (* Feedback must still execute per shot with unchanged results: X, measure,
     conditional X always ends in |11>. *)
  let c =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.X, [| 0 |]);
        Gate.Measure 0;
        Gate.Conditional (0, Gate.X, [| 1 |]);
        Gate.Measure 1;
      ]
  in
  let result = Engine.run ~seed:4 ~shots:64 c in
  Alcotest.(check bool) "per-shot plan (tableau: the circuit is Clifford)" true
    (result.Engine.report.Engine.plan = Engine.Clifford);
  Alcotest.(check (list (pair string int))) "always 11" [ ("11", 64) ] result.Engine.histogram;
  (* Forcing the state-vector trajectory path must agree. *)
  let forced = Engine.run ~seed:4 ~plan:Engine.Trajectory ~shots:64 c in
  Alcotest.(check (list (pair string int)))
    "forced trajectory agrees" [ ("11", 64) ] forced.Engine.histogram

let test_report_metrics () =
  let result = Engine.run ~seed:3 ~shots:100 (measured_all 2 (Library.bell ())) in
  let report = result.Engine.report in
  Alcotest.(check int) "shots" 100 report.Engine.shots;
  Alcotest.(check (option int)) "seed recorded" (Some 3) report.Engine.seed;
  Alcotest.(check int) "measurements = shots x qubits" 200 report.Engine.measurements;
  Alcotest.(check (list (pair string int)))
    "gate applies counted once (single simulation pass)"
    [ ("cnot", 1); ("h", 1) ]
    (List.sort compare report.Engine.gate_applies);
  Alcotest.(check int) "histogram mass" 100
    (List.fold_left (fun acc (_, c) -> acc + c) 0 result.Engine.histogram);
  let json = Engine.report_to_json report in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has plan" true (contains "\"plan\":\"sampled\"");
  Alcotest.(check bool) "json has seed" true (contains "\"seed\":3");
  Alcotest.(check bool) "json has gate applies" true (contains "\"cnot\":1")

let test_plans_agree_deterministic () =
  (* A deterministic circuit must give the identical histogram on both
     plans, whatever the seed. *)
  List.iter
    (fun (n, secret) ->
      let circuit = Library.bernstein_vazirani ~secret n in
      let sampled = Engine.run ~seed:5 ~shots:200 circuit in
      let traj = Engine.run ~seed:99 ~plan:Engine.Trajectory ~shots:200 circuit in
      Alcotest.(check bool) "sampled plan chosen" true
        (sampled.Engine.report.Engine.plan = Engine.Sampled);
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "identical histograms n=%d" n)
        (List.sort compare traj.Engine.histogram)
        (List.sort compare sampled.Engine.histogram))
    [ (3, 0b101); (5, 0b10110) ]

let test_same_seed_reproducible () =
  let circuit = measured_all 3 (Library.ghz 3) in
  let a = Engine.run ~seed:21 ~shots:500 circuit in
  let b = Engine.run ~seed:21 ~shots:500 circuit in
  Alcotest.(check (list (pair string int))) "same seed, same histogram"
    a.Engine.histogram b.Engine.histogram;
  Alcotest.(check bool) "default rng is one shared stream" true
    (Engine.default_rng () == Engine.default_rng ())

let test_backends_agree () =
  (* The state-vector and density backends sample the same distribution with
     the same generator, so with one seed they agree bit for bit. *)
  let bell = measured_all 2 (Library.bell ()) in
  let module Sv = (val (module Sim.Backend : Qca_qx.Backend.S)) in
  let module Dm = (val (module Density.Backend : Qca_qx.Backend.S)) in
  let sv = Sv.run ~shots:2000 ~seed:7 bell in
  let dm = Dm.run ~shots:2000 ~seed:7 bell in
  Alcotest.(check (list (pair string int))) "identical histograms"
    sv.Engine.histogram dm.Engine.histogram;
  Alcotest.(check bool) "names differ" true (Sv.name <> Dm.name)

let test_density_backend_rejects_feedback () =
  let c = Circuit.of_list 2 [ Gate.Measure 0; Gate.Conditional (0, Gate.X, [| 1 |]) ] in
  match Density.Backend.run ~shots:8 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "density backend accepted a feedback circuit"

(* --- resilience --- *)

module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience

let test_fault_rate_zero_bit_identical () =
  (* An attached all-zero injector must not perturb anything: it has its own
     RNG stream and zero-rate sites draw nothing from it. *)
  let bell = measured_all 2 (Library.bell ()) in
  List.iter
    (fun plan ->
      let base = Engine.run ~seed:123 ?plan ~shots:500 bell in
      let off =
        Engine.run ~seed:123 ?plan ~shots:500 ~faults:(Fault.make Fault.off) bell
      in
      Alcotest.(check (list (pair string int))) "identical histograms"
        base.Engine.histogram off.Engine.histogram;
      Alcotest.(check int) "no faulted shots" 0
        off.Engine.report.Engine.resilience.Engine.faulted_shots)
    [ None; Some Engine.Trajectory ]

let test_transient_faults_retry_to_completion () =
  (* At a 0.2 backend fault rate with 8 retries, the chance any of 400 shots
     exhausts its budget is ~400 * 0.2^9 ~ 2e-4: every shot completes. *)
  let bell = measured_all 2 (Library.bell ()) in
  let faults = Fault.make ~seed:5 { Fault.off with Fault.backend = 0.2 } in
  let policy = { Resilience.default_policy with Resilience.max_retries = 8 } in
  let r = Engine.run ~seed:9 ~shots:400 ~faults ~policy bell in
  let res = r.Engine.report.Engine.resilience in
  Alcotest.(check int) "no shot lost" 0 res.Engine.faulted_shots;
  Alcotest.(check bool) "faults actually fired" true (res.Engine.retries > 0);
  Alcotest.(check bool) "backoff recorded" true (res.Engine.backoff_ns > 0);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Engine.histogram in
  Alcotest.(check int) "full histogram" 400 total

let prop_faulted_shots_accounting =
  QCheck.Test.make ~name:"faulted + histogram total = shots" ~count:30
    QCheck.(pair (int_range 0 9999) (float_range 0.0 0.6))
    (fun (seed, rate) ->
      let bell = measured_all 2 (Library.bell ()) in
      let faults = Fault.make ~seed (Fault.uniform rate) in
      let r = Engine.run ~seed ~shots:100 ~faults bell in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Engine.histogram in
      r.Engine.report.Engine.resilience.Engine.faulted_shots + total = 100)

let test_resilient_wrap_degrades () =
  let module Flaky = struct
    let name = "always-fails"

    let run ?shots:_ ?seed:_ _ =
      Qca_util.Error.fail ~site:"Flaky.run" (Qca_util.Error.Invalid "broken")
  end in
  let module Wrapped =
    (val Qca_qx.Resilient.wrap
           ~fallback:(module Sim.Backend)
           (module Flaky : Qca_qx.Backend.S))
  in
  let bell = measured_all 2 (Library.bell ()) in
  let r = Wrapped.run ~shots:200 ~seed:3 bell in
  let res = r.Engine.report.Engine.resilience in
  Alcotest.(check bool) "degradation recorded" true (res.Engine.degraded <> None);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Engine.histogram in
  Alcotest.(check int) "fallback delivered shots" 200 total;
  Alcotest.(check bool) "wrapped name" true
    (Wrapped.name = "resilient(always-fails->qx-statevector)")

let test_resilient_wrap_passthrough () =
  (* A healthy primary passes through untouched, modulo merged counters. *)
  let module Wrapped =
    (val Qca_qx.Resilient.wrap
           ~fallback:(module Density.Backend)
           (module Sim.Backend : Qca_qx.Backend.S))
  in
  let bell = measured_all 2 (Library.bell ()) in
  let direct = Sim.Backend.run ~shots:300 ~seed:11 bell in
  let wrapped = Wrapped.run ~shots:300 ~seed:11 bell in
  Alcotest.(check (list (pair string int))) "same histogram"
    direct.Engine.histogram wrapped.Engine.histogram;
  Alcotest.(check bool) "not degraded" true
    (wrapped.Engine.report.Engine.resilience.Engine.degraded = None)

(* --- properties --- *)

let arb_seeded_circuit =
  QCheck.make
    ~print:(fun (seed, qubits, gates) -> Printf.sprintf "seed=%d q=%d g=%d" seed qubits gates)
    QCheck.Gen.(triple (int_range 0 9999) (int_range 2 6) (int_range 1 40))

let prop_norm_preserved =
  QCheck.Test.make ~name:"unitary evolution preserves norm" ~count:100 arb_seeded_circuit
    (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let result = Sim.run circuit in
      Float.abs (State.norm result.Sim.state -. 1.0) < 1e-9)

let prop_matrix_agrees_with_simulation =
  QCheck.Test.make ~name:"simulator agrees with dense unitary" ~count:50
    arb_seeded_circuit (fun (seed, qubits, gates) ->
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let result = Sim.run circuit in
      let m = Circuit.unitary_matrix circuit in
      let dim = 1 lsl qubits in
      let v0 = Array.init dim (fun k -> if k = 0 then Cplx.one else Cplx.zero) in
      let expected = Qca_util.Matrix.apply m v0 in
      let ok = ref true in
      Array.iteri
        (fun k e ->
          if not (Cplx.approx_equal ~eps:1e-7 e (State.amplitude result.Sim.state k)) then
            ok := false)
        expected;
      !ok)

let prop_measurement_collapse_consistent =
  QCheck.Test.make ~name:"measurement then remeasure is stable" ~count:50
    arb_seeded_circuit (fun (seed, qubits, gates) ->
      let rng = Rng.create (seed + 1) in
      let circuit = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let result = Sim.run ~rng circuit in
      let q = seed mod qubits in
      let first = State.measure result.Sim.state rng q in
      let second = State.measure result.Sim.state rng q in
      first = second)

let prop_plans_agree_statistically =
  QCheck.Test.make ~name:"sampled and trajectory plans draw the same distribution"
    ~count:25 arb_seeded_circuit (fun (seed, qubits, gates) ->
      let base = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let circuit =
        Circuit.append base
          (Circuit.of_list qubits (List.init qubits (fun q -> Gate.Measure q)))
      in
      let shots = 400 in
      let a = (Engine.run ~seed:(seed + 1) ~shots circuit).Engine.histogram in
      let b =
        (Engine.run ~seed:(seed + 2) ~plan:Engine.Trajectory ~shots circuit).Engine.histogram
      in
      (* Two-sample chi-square over the union of keys; the threshold is
         generous (mean + ~8 sigma) so only a genuinely different
         distribution fails, not sampling luck. *)
      let table : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
      List.iter (fun (k, c) -> Hashtbl.replace table k (c, 0)) a;
      List.iter
        (fun (k, c) ->
          let x, _ = Option.value ~default:(0, 0) (Hashtbl.find_opt table k) in
          Hashtbl.replace table k (x, c))
        b;
      let keys = float_of_int (Hashtbl.length table) in
      let stat =
        Hashtbl.fold
          (fun _ (x, y) acc ->
            acc +. (float_of_int ((x - y) * (x - y)) /. float_of_int (x + y)))
          table 0.0
      in
      stat < keys +. (8.0 *. sqrt (2.0 *. keys)) +. 10.0)

(* --- tracing --- *)

module Trace = Qca_util.Trace

let measured_ghz n =
  Circuit.append (Library.ghz n)
    (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

let test_trace_bit_identical () =
  (* Collecting a trace must not touch the RNG stream: histograms of traced
     and untraced runs with the same seed are bit-identical, for both plans. *)
  List.iter
    (fun plan ->
      let run () = (Engine.run ~seed:99 ?plan ~shots:300 (measured_ghz 4)).Engine.histogram in
      let plain = run () in
      let traced = Trace.collecting (Trace.make_collector ()) run in
      Alcotest.(check (list (pair string int))) "identical histograms" plain traced)
    [ None; Some Engine.Trajectory ]

let test_trace_counters_match_report () =
  (* The qx.apply.* counters emitted from the apply loop agree with the
     engine report's own gate tally, and qx.measure with its measurements. *)
  let c = Trace.make_collector () in
  let result =
    Trace.collecting c (fun () ->
        Engine.run ~seed:5 ~plan:Engine.Trajectory ~shots:20 (measured_ghz 3))
  in
  let report = result.Engine.report in
  List.iter
    (fun (gate, count) ->
      Alcotest.(check (option int))
        (Printf.sprintf "counter qx.apply.%s" gate)
        (Some count)
        (List.assoc_opt ("qx.apply." ^ gate) (Trace.counters c)))
    report.Engine.gate_applies;
  Alcotest.(check (option int)) "qx.measure matches report"
    (Some report.Engine.measurements)
    (List.assoc_opt "qx.measure" (Trace.counters c))

let test_trace_span_phases () =
  (* A sampled run produces the engine.run > analyse/fuse/simulate/sample
     tree. *)
  let c = Trace.make_collector () in
  ignore (Trace.collecting c (fun () -> Engine.run ~seed:7 ~shots:100 (measured_ghz 3)));
  match Trace.roots c with
  | [ root ] ->
      Alcotest.(check string) "root" "engine.run" root.Trace.span_name;
      Alcotest.(check (list string)) "phases"
        [ "engine.analyse"; "engine.fuse"; "engine.simulate"; "engine.sample" ]
        (List.map (fun n -> n.Trace.span_name) root.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* --- kernels: fusion and the parallel path --- *)

module Parallel = Qca_util.Parallel

let with_pool ~domains f =
  let d0 = Parallel.domain_count () and t0 = Parallel.threshold_qubits () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_domain_count d0;
      Parallel.set_threshold_qubits t0)
    (fun () ->
      Parallel.set_domain_count domains;
      f ())

let apply_unitaries s instrs =
  List.iter
    (function Gate.Unitary (u, ops) -> State.apply s u ops | _ -> ())
    instrs

let states_bit_identical a b =
  let dim = State.dimension a in
  let same = ref (dim = State.dimension b) in
  for k = 0 to dim - 1 do
    let x = State.amplitude a k and y = State.amplitude b k in
    if
      Int64.bits_of_float (Cplx.re x) <> Int64.bits_of_float (Cplx.re y)
      || Int64.bits_of_float (Cplx.im x) <> Int64.bits_of_float (Cplx.im y)
    then same := false
  done;
  !same

let test_fusion_stats () =
  (* t;t;cz;rz coalesce into one diagonal sweep, h stays a single kernel. *)
  let diag_then_h =
    Circuit.of_list 2
      [
        Gate.Unitary (Gate.T, [| 0 |]); Gate.Unitary (Gate.T, [| 0 |]);
        Gate.Unitary (Gate.Cz, [| 0; 1 |]); Gate.Unitary (Gate.Rz 0.5, [| 1 |]);
        Gate.Unitary (Gate.H, [| 0 |]); Gate.Measure 0; Gate.Measure 1;
      ]
  in
  let fused = Engine.run ~seed:2 ~shots:50 diag_then_h in
  let f = fused.Engine.report.Engine.fusion in
  Alcotest.(check int) "gates in" 5 f.Engine.gates_in;
  Alcotest.(check int) "kernels" 2 f.Engine.kernels;
  Alcotest.(check int) "fused diag runs" 1 f.Engine.fused_diag;
  Alcotest.(check int) "fused 1q runs" 0 f.Engine.fused_1q;
  let unfused = Engine.run ~seed:2 ~fusion:false ~shots:50 diag_then_h in
  let g = unfused.Engine.report.Engine.fusion in
  Alcotest.(check int) "unfused kernels = gates" 5 g.Engine.kernels;
  Alcotest.(check (list (pair string int))) "same histogram"
    fused.Engine.histogram unfused.Engine.histogram;
  (* A same-qubit dense run becomes one fused 1q kernel. *)
  let dense_run =
    Circuit.of_list 1
      [
        Gate.Unitary (Gate.H, [| 0 |]); Gate.Unitary (Gate.Rx 0.3, [| 0 |]);
        Gate.Unitary (Gate.H, [| 0 |]); Gate.Measure 0;
      ]
  in
  let r = Engine.run ~seed:3 ~shots:50 dense_run in
  let f1 = r.Engine.report.Engine.fusion in
  Alcotest.(check int) "1q gates in" 3 f1.Engine.gates_in;
  Alcotest.(check int) "1q kernels" 1 f1.Engine.kernels;
  Alcotest.(check int) "1q fused runs" 1 f1.Engine.fused_1q

let test_parallel_threshold_guard () =
  (* The parallel path must never engage below the qubit threshold, and
     must engage at it (given enough domains and a big enough sweep). *)
  with_pool ~domains:4 (fun () ->
      let sweep16 () =
        let s = State.create 16 in
        State.apply s (Gate.Rz 0.3) [| 0 |];
        State.apply s Gate.H [| 0 |]
      in
      Parallel.set_threshold_qubits 18;
      let before = Parallel.dispatch_count () in
      sweep16 ();
      Alcotest.(check int) "no dispatch below threshold" before
        (Parallel.dispatch_count ());
      Parallel.set_threshold_qubits 16;
      sweep16 ();
      Alcotest.(check bool) "dispatches at threshold" true
        (Parallel.dispatch_count () > before))

let test_fused_not_slower_guard () =
  (* Single-domain fused kernels vs the seed kernels on a smoke circuit.
     The factor is generous — this only catches pathological regressions,
     not noise. *)
  let n = 14 in
  let gates =
    [
      (Gate.T, [| 0 |]); (Gate.Rz 0.3, [| 0 |]); (Gate.Cz, [| 0; 1 |]);
      (Gate.Cphase 0.7, [| 1; 2 |]); (Gate.T, [| 1 |]); (Gate.Rz 0.5, [| 2 |]);
      (Gate.Cz, [| 0; 2 |]); (Gate.S, [| 0 |]); (Gate.H, [| 0 |]);
    ]
  in
  let steps, _ =
    Engine.compile_steps ~fusion:true
      (List.map (fun (u, ops) -> Gate.Unitary (u, ops)) gates)
  in
  let kernels =
    List.filter_map
      (function Engine.Kernel k -> Some k | Engine.Instr _ -> None)
      steps
  in
  let prep () =
    let s = State.create n in
    for q = 0 to n - 1 do
      State.apply s Gate.H [| q |]
    done;
    s
  in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Sys.time () in
      f ();
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let inner = 32 in
  let s_seed = prep () in
  let seed_s =
    time_best (fun () ->
        for _ = 1 to inner do
          List.iter (fun (u, ops) -> State.Reference.apply s_seed u ops) gates
        done)
  in
  let s_fused = prep () in
  let fused_s =
    time_best (fun () ->
        for _ = 1 to inner do
          List.iter (Engine.apply_kernel s_fused) kernels
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fused within 3x of seed (%.2fms vs %.2fms)"
       (fused_s *. 1e3) (seed_s *. 1e3))
    true
    (fused_s <= (3.0 *. seed_s) +. 1e-3)

let prop_fusion_bit_identical =
  QCheck.Test.make ~name:"fusion is bit-identical (state and both engine plans)"
    ~count:30 arb_seeded_circuit (fun (seed, qubits, gates) ->
      let base = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      let instrs = Circuit.instructions base in
      let steps, _ = Engine.compile_steps ~fusion:true instrs in
      let s_fused = State.create qubits in
      List.iter
        (function
          | Engine.Kernel k -> Engine.apply_kernel s_fused k
          | Engine.Instr _ -> ())
        steps;
      let s_ref = State.create qubits in
      apply_unitaries s_ref instrs;
      let measured =
        Circuit.append base
          (Circuit.of_list qubits (List.init qubits (fun q -> Gate.Measure q)))
      in
      let histogram plan fusion =
        (Engine.run ~seed:(seed + 1) ?plan ~fusion ~shots:200 measured).Engine.histogram
      in
      states_bit_identical s_fused s_ref
      && histogram None true = histogram None false
      && histogram (Some Engine.Trajectory) true
         = histogram (Some Engine.Trajectory) false)

let prop_fusion_preserves_measurement_order =
  QCheck.Test.make ~name:"fusion never reorders mid-circuit measurements"
    ~count:30 arb_seeded_circuit (fun (seed, qubits, gates) ->
      (* A mid-circuit measurement forces the trajectory plan and splits
         every fusion run crossing it; same seed, fusion on and off, must
         produce the same histogram shot by shot. *)
      let base = Circuit.instructions (Library.random_circuit (Rng.create seed) ~qubits ~gates) in
      let cut = List.length base / 2 in
      let before = List.filteri (fun i _ -> i < cut) base in
      let after = List.filteri (fun i _ -> i >= cut) base in
      let circuit =
        Circuit.of_list qubits
          (before
          @ (Gate.Measure (seed mod qubits) :: after)
          @ List.init qubits (fun q -> Gate.Measure q))
      in
      let run fusion = (Engine.run ~seed:(seed + 1) ~fusion ~shots:100 circuit) in
      let a = run true and b = run false in
      (* The mid-circuit measurement forces a per-shot plan: state-vector
         trajectories, or the tableau when the random draw happens to be
         all-Clifford. *)
      a.Engine.report.Engine.plan <> Engine.Sampled
      && a.Engine.histogram = b.Engine.histogram
      && a.Engine.report.Engine.measurements = b.Engine.report.Engine.measurements)

let prop_parallel_bit_identical =
  QCheck.Test.make ~name:"parallel kernels bit-identical to sequential" ~count:5
    QCheck.(int_range 0 9999)
    (fun seed ->
      (* 16 qubits puts full sweeps (and 1q pair sweeps) at or above the
         2-chunk dispatch floor, so the pool really runs. *)
      let n = 16 in
      let instrs =
        Circuit.instructions (Library.random_circuit (Rng.create seed) ~qubits:n ~gates:30)
      in
      let sequential = State.create n in
      apply_unitaries sequential instrs;
      let parallel =
        with_pool ~domains:3 (fun () ->
            Parallel.set_threshold_qubits n;
            let s = State.create n in
            apply_unitaries s instrs;
            s)
      in
      states_bit_identical sequential parallel)

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_qx"
    [
      ( "state",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "h superposition" `Quick test_h_superposition;
          Alcotest.test_case "bell" `Quick test_bell_state;
          Alcotest.test_case "cnot control" `Quick test_cnot_control_required;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "toffoli" `Quick test_toffoli;
          Alcotest.test_case "cz phase" `Quick test_cz_phase;
          Alcotest.test_case "fast paths 1q" `Quick test_fast_paths_match_generic;
          Alcotest.test_case "fast paths 2q" `Quick test_two_qubit_fast_paths_match;
          Alcotest.test_case "ghz 12" `Quick test_ghz_12;
          Alcotest.test_case "expectation pauli" `Quick test_expectation_pauli;
          Alcotest.test_case "memory bytes" `Quick test_memory_bytes;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "collapse entanglement" `Quick test_measure_collapses_entanglement;
          Alcotest.test_case "statistics" `Quick test_measure_statistics;
          Alcotest.test_case "sample distribution" `Quick test_sample_index_distribution;
          Alcotest.test_case "overlap fidelity" `Quick test_overlap_fidelity;
          Alcotest.test_case "expectation diag" `Quick test_expectation_diag;
        ] );
      ( "noise",
        [
          Alcotest.test_case "bit flip rate" `Quick test_bit_flip_channel_rate;
          Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping_decays;
          Alcotest.test_case "damping ground" `Quick test_amplitude_damping_preserves_ground;
          Alcotest.test_case "depolarizing" `Quick test_depolarizing_mixes;
          Alcotest.test_case "ideal detection" `Quick test_ideal_model_detected;
          Alcotest.test_case "readout flip" `Quick test_readout_flip;
        ] );
      ( "executor",
        [
          Alcotest.test_case "bell histogram" `Quick test_run_bell_histogram;
          Alcotest.test_case "prep resets" `Quick test_run_prep_resets;
          Alcotest.test_case "unmeasured -1" `Quick test_unmeasured_is_minus_one;
          Alcotest.test_case "run cqasm" `Quick test_run_cqasm;
          Alcotest.test_case "cqasm error_model" `Quick test_run_cqasm_error_model;
          Alcotest.test_case "ghz success" `Quick test_success_probability_ghz;
          Alcotest.test_case "noisy ghz degrades" `Quick test_noisy_ghz_degrades;
          Alcotest.test_case "expectation z" `Quick test_expectation_z_plus_state;
          Alcotest.test_case "fidelity ordering" `Quick test_fidelity_decreases_with_noise;
        ] );
      ( "oracle-algorithms",
        [
          Alcotest.test_case "bernstein-vazirani" `Quick test_bernstein_vazirani_recovers_secret;
          Alcotest.test_case "deutsch-jozsa" `Quick test_deutsch_jozsa_decides;
        ] );
      ( "density",
        [
          Alcotest.test_case "initial" `Quick test_density_initial;
          Alcotest.test_case "matches state vector" `Quick test_density_matches_statevector;
          Alcotest.test_case "of_state" `Quick test_density_of_state;
          Alcotest.test_case "depolarizing exact" `Quick test_depolarizing_exact;
          Alcotest.test_case "amplitude damping exact" `Quick test_amplitude_damping_exact;
          Alcotest.test_case "phase damping coherence" `Quick test_phase_damping_kills_coherence;
          Alcotest.test_case "trajectories match density" `Quick test_trajectories_match_density;
          Alcotest.test_case "rejects measurement" `Quick test_density_rejects_measurement;
        ] );
      ( "conditional",
        [
          Alcotest.test_case "fires on 1" `Quick test_conditional_fires_on_one;
          Alcotest.test_case "skips on 0" `Quick test_conditional_skips_on_zero;
          Alcotest.test_case "teleportation statistics" `Quick test_teleportation_preserves_state;
          Alcotest.test_case "teleportation exact" `Quick test_teleportation_exact_state;
        ] );
      ( "engine",
        [
          Alcotest.test_case "plan classification" `Quick test_plan_classification;
          Alcotest.test_case "forced sampled rejected" `Quick test_forced_sampled_rejected;
          Alcotest.test_case "conditional stays per-shot" `Quick
            test_conditional_takes_trajectory_path;
          Alcotest.test_case "report metrics" `Quick test_report_metrics;
          Alcotest.test_case "plans agree (deterministic)" `Quick
            test_plans_agree_deterministic;
          Alcotest.test_case "seed reproducibility" `Quick test_same_seed_reproducible;
          Alcotest.test_case "backends agree" `Quick test_backends_agree;
          Alcotest.test_case "density backend domain" `Quick
            test_density_backend_rejects_feedback;
        ] );
      ( "trace",
        [
          Alcotest.test_case "traced run bit-identical" `Quick test_trace_bit_identical;
          Alcotest.test_case "counters match report" `Quick
            test_trace_counters_match_report;
          Alcotest.test_case "span phases" `Quick test_trace_span_phases;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "rate 0.0 bit-identical" `Quick
            test_fault_rate_zero_bit_identical;
          Alcotest.test_case "transients retry to completion" `Quick
            test_transient_faults_retry_to_completion;
          Alcotest.test_case "wrap degrades to fallback" `Quick
            test_resilient_wrap_degrades;
          Alcotest.test_case "wrap passthrough" `Quick test_resilient_wrap_passthrough;
          qtest prop_faulted_shots_accounting;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "fusion stats" `Quick test_fusion_stats;
          Alcotest.test_case "parallel threshold guard" `Quick
            test_parallel_threshold_guard;
          Alcotest.test_case "fused perf guard" `Quick test_fused_not_slower_guard;
          qtest prop_fusion_bit_identical;
          qtest prop_fusion_preserves_measurement_order;
          qtest prop_parallel_bit_identical;
        ] );
      ( "properties",
        [
          qtest prop_norm_preserved;
          qtest prop_matrix_agrees_with_simulation;
          qtest prop_measurement_collapse_consistent;
          qtest prop_plans_agree_statistically;
        ] );
    ]
