(* Tests for the static checker: diagnostics core, the three check suites
   and the pass-verifier. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Library = Qca_circuit.Library
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Schedule = Qca_compiler.Schedule
module Eqasm = Qca_compiler.Eqasm
module Rng = Qca_util.Rng
module Diagnostic = Qca_analysis.Diagnostic
module Circuit_checks = Qca_analysis.Circuit_checks
module Platform_checks = Qca_analysis.Platform_checks
module Eqasm_checks = Qca_analysis.Eqasm_checks
module Verify = Qca_analysis.Verify

let codes diags = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) diags)

let check_codes what expected diags =
  Alcotest.(check (list string)) what expected (codes diags)

(* --- diagnostics core --- *)

let test_exit_ladder () =
  let d sev = Diagnostic.make sev ~code:"T00" ~check:"t" ~site:"s" "m" in
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "hints don't gate" 0 (Diagnostic.exit_code [ d Diagnostic.Hint ]);
  Alcotest.(check int) "warnings" 1
    (Diagnostic.exit_code [ d Diagnostic.Hint; d Diagnostic.Warning ]);
  Alcotest.(check int) "errors win" 2
    (Diagnostic.exit_code [ d Diagnostic.Warning; d Diagnostic.Error ]);
  Alcotest.(check string) "summary" "clean" (Diagnostic.summary [])

let test_json_escaping () =
  let d =
    Diagnostic.make Diagnostic.Error ~code:"T00" ~check:"t" ~site:"a\"b"
      "line1\nline2"
  in
  let json = Diagnostic.to_json d in
  Alcotest.(check bool) "escapes quotes" true
    (String.length json > 0
    && not (String.exists (( = ) '\n') json));
  Alcotest.(check string) "list is array" "[]" (Diagnostic.json_of_list [])

(* --- circuit checks --- *)

let parse source = Cqasm.parse source

let bad_source =
  {|version 1.0
qubits 4

.main
  prep_z q[0]
  h q[0]
  h q[0]
  rx q[1], nan
  measure q[1]
  x q[1]
  measure q[1]

.main
  x q[0]
|}

let test_bad_program_codes () =
  let diags = Circuit_checks.check_program (parse bad_source) in
  check_codes "all six codes fire"
    [ "C03"; "C04"; "C05"; "C06"; "C07"; "P03" ]
    diags;
  Alcotest.(check int) "errors exit 2" 2 (Diagnostic.exit_code diags);
  let site code =
    (List.find (fun d -> d.Diagnostic.code = code) diags).Diagnostic.site
  in
  Alcotest.(check string) "C07 at the rx" "circuit[3]" (site "C07");
  Alcotest.(check string) "C03 at the x" "circuit[5]" (site "C03");
  Alcotest.(check string) "C06 at the first h" "circuit[1]" (site "C06");
  Alcotest.(check string) "P03 names the kernel" ".main" (site "P03")

let test_clean_programs () =
  let check name circuit =
    let diags =
      List.filter
        (fun d -> d.Diagnostic.severity = Diagnostic.Error)
        (Circuit_checks.check_circuit circuit)
    in
    Alcotest.(check int) (name ^ " has no errors") 0 (List.length diags)
  in
  check "bell" (Library.bell ());
  check "ghz" (Library.ghz 5);
  check "qft" (Library.qft 4);
  check "teleport" (Library.teleport ())

let test_teleport_feedback_not_flagged () =
  (* Binary-controlled corrections on measured qubits are the legitimate
     fast-feedback pattern: no use-after-measure warning. *)
  let diags = Circuit_checks.check_circuit (Library.teleport ()) in
  Alcotest.(check bool) "no C03" false (List.mem "C03" (codes diags))

let test_range_against_platform () =
  (* Declared wider than the target platform: C01 on the gate, C02 on the
     conditional's classical bit. *)
  let c =
    Circuit.of_list ~name:"wide" 6
      [
        Gate.Unitary (Gate.X, [| 5 |]);
        Gate.Conditional (5, Gate.Z, [| 0 |]);
        Gate.Unitary (Gate.H, [| 1 |]);
        Gate.Unitary (Gate.H, [| 2 |]);
        Gate.Unitary (Gate.H, [| 3 |]);
        Gate.Unitary (Gate.H, [| 4 |]);
      ]
  in
  let diags = Circuit_checks.check_circuit ~platform_qubits:4 c in
  check_codes "C01 and C02" [ "C01"; "C02" ] diags;
  Alcotest.(check string) "C01 site" "wide[0]"
    (List.find (fun d -> d.Diagnostic.code = "C01") diags).Diagnostic.site

(* --- platform checks --- *)

let test_platform_checks () =
  let semi = Platform.semiconducting_4 in
  let c =
    Circuit.of_list ~name:"phys" 4
      [
        Gate.Unitary (Gate.Cz, [| 0; 3 |]);
        (* chain 0-1-2-3: not coupled *)
        Gate.Unitary (Gate.H, [| 1 |]);
        (* not a primitive *)
        Gate.Unitary (Gate.Swap, [| 1; 2 |]);
        (* coupled but not primitive *)
      ]
  in
  check_codes "P01 and P02" [ "P01"; "P02" ]
    (Platform_checks.check_mapped semi c);
  let swaps_ok = Platform_checks.check_mapped ~allow_swap:true semi c in
  Alcotest.(check int) "allow_swap drops one P02" 2 (List.length swaps_ok)

let test_platform_clean_after_compile () =
  let out =
    Compiler.compile Platform.semiconducting_4 Compiler.Realistic (Library.ghz 4)
  in
  Alcotest.(check (list string))
    "physical circuit conforms" []
    (codes (Platform_checks.check_mapped Platform.semiconducting_4 out.Compiler.physical))

(* --- eQASM checks --- *)

let eqasm_program instructions makespan =
  {
    Eqasm.platform_name = "superconducting-17";
    qubit_count = 17;
    cycle_ns = 20;
    instructions;
    makespan_cycles = makespan;
  }

let test_eqasm_clean_lowering () =
  let p = Platform.superconducting_17 in
  let out = Compiler.compile p Compiler.Real (Library.ghz 3) in
  match out.Compiler.eqasm with
  | None -> Alcotest.fail "expected eQASM"
  | Some program ->
      Alcotest.(check (list string)) "lowering is clean" [] (codes (Eqasm_checks.check p program))

let test_eqasm_violations () =
  let p = Platform.superconducting_17 in
  let x90 mask =
    { Eqasm.mnemonic = "x90"; angle = None; mask; two_qubit = false; condition = None }
  in
  (* Unset mask register. *)
  check_codes "E03" [ "E03" ]
    (Eqasm_checks.check p (eqasm_program [ Eqasm.Bundle (0, [ x90 7 ]) ] 1));
  (* Same qubit re-issued before its 1-cycle window ends (pre-interval 0). *)
  let overlapping =
    [ Eqasm.Smis (0, [ 2 ]); Eqasm.Bundle (0, [ x90 0 ]); Eqasm.Bundle (0, [ x90 0 ]) ]
  in
  check_codes "E01" [ "E01" ] (Eqasm_checks.check p (eqasm_program overlapping 2));
  (* measz takes 15 cycles on this platform; makespan of 1 under-declares. *)
  let measure =
    [
      Eqasm.Smis (0, [ 2 ]);
      Eqasm.Bundle
        (0,
         [ { Eqasm.mnemonic = "measz"; angle = None; mask = 0; two_qubit = false; condition = None } ]);
    ]
  in
  check_codes "E02" [ "E02" ] (Eqasm_checks.check p (eqasm_program measure 1));
  (* A correct tail QWAIT silences E02. *)
  Alcotest.(check (list string)) "padded is clean" []
    (codes (Eqasm_checks.check p (eqasm_program (measure @ [ Eqasm.Qwait 15 ]) 15)))

(* --- pass-verifier --- *)

let test_verify_clean_compile () =
  let _out, report =
    Verify.compile Platform.superconducting_17 Compiler.Real (Library.ghz 4)
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes report.Verify.final);
  let names = List.map (fun p -> p.Verify.pass_name) report.Verify.passes in
  (* Fixed stages must appear in order; the Full optimizer may interleave
     per-pass artifacts like "optimize/peephole" depending on what fired. *)
  let fixed =
    List.filter (fun n -> not (String.contains n '/') || n = "map/route") names
  in
  Alcotest.(check (list string)) "observed every pass"
    [
      "input"; "pre-opt"; "decompose"; "map/route"; "expand-swaps"; "optimize";
      "schedule"; "eqasm";
    ]
    fixed

let test_verify_blames_pass () =
  (* Seed a topology violation into the map/route artifact: the verifier
     must name that pass as the one that introduced P01. *)
  let semi = Platform.semiconducting_4 in
  let broken = Circuit.of_list ~name:"phys" 4 [ Gate.Unitary (Gate.Cz, [| 0; 3 |]) ] in
  let stage =
    Verify.check_stage ~mapped:true ~allow_swap:true semi
      (Compiler.Circuit_stage broken)
  in
  let report = Verify.of_stages [ ("input", []); ("decompose", []); ("map/route", stage) ] in
  Alcotest.(check (option string)) "blames map/route" (Some "map/route")
    (Verify.blamed_pass report "P01");
  Alcotest.(check (option string)) "unknown code unblamed" None
    (Verify.blamed_pass report "E01")

let test_verify_schedule_artifact () =
  let p = Platform.perfect 3 in
  let schedule = Schedule.run p (Library.ghz 3) in
  Alcotest.(check (list string)) "valid schedule clean" []
    (codes (Verify.check_stage ~mapped:false ~allow_swap:false p (Compiler.Schedule_stage schedule)))

(* --- properties --- *)

let arb_seeded_circuit =
  QCheck.make
    ~print:(fun (seed, qubits, gates) ->
      Printf.sprintf "seed=%d qubits=%d gates=%d" seed qubits gates)
    QCheck.Gen.(triple (int_range 0 99999) (int_range 2 6) (int_range 1 40))

let prop_random_clean =
  QCheck.Test.make ~name:"well-formed random circuits have no error diagnostics"
    ~count:100 arb_seeded_circuit (fun (seed, qubits, gates) ->
      let c = Library.random_circuit (Rng.create seed) ~qubits ~gates in
      List.for_all
        (fun d -> d.Diagnostic.severity <> Diagnostic.Error)
        (Circuit_checks.check_circuit c))

let prop_out_of_range_flagged =
  QCheck.Test.make ~name:"out-of-range mutation triggers exactly C01" ~count:100
    arb_seeded_circuit (fun (seed, qubits, gates) ->
      let rng = Rng.create seed in
      let c = Library.random_circuit rng ~qubits ~gates in
      (* Re-declare on a platform one qubit narrower and touch the top qubit:
         the only new error must be C01. *)
      let mutated = Circuit.add c (Gate.Unitary (Gate.X, [| qubits - 1 |])) in
      let before = Circuit_checks.check_circuit ~platform_qubits:(qubits - 1) c in
      let after =
        Circuit_checks.check_circuit ~platform_qubits:(qubits - 1) mutated
      in
      let errors diags =
        List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags
      in
      codes (errors after) = [ "C01" ]
      && List.length (errors after) = List.length (errors before) + 1)

let prop_dropped_reset_flagged =
  QCheck.Test.make ~name:"dropped reset mutation triggers exactly C03" ~count:100
    arb_seeded_circuit (fun (seed, qubits, gates) ->
      let rng = Rng.create seed in
      let c = Library.random_circuit rng ~qubits ~gates in
      let q = Rng.int rng qubits in
      let mutated =
        Circuit.add (Circuit.add c (Gate.Measure q)) (Gate.Unitary (Gate.X, [| q |]))
      in
      let new_codes =
        List.filter
          (fun code -> not (List.mem code (codes (Circuit_checks.check_circuit c))))
          (codes (Circuit_checks.check_circuit mutated))
      in
      (* C04 may legitimately ride along when the base circuit measures q
         earlier; C03 must be there and no error-severity code may appear. *)
      List.mem "C03" new_codes
      && List.for_all (fun code -> code = "C03" || code = "C04") new_codes)

let prop_non_adjacent_flagged =
  QCheck.Test.make ~name:"non-adjacent CZ post-mapping triggers exactly P01"
    ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 99999))
    (fun seed ->
      let semi = Platform.semiconducting_4 in
      let rng = Rng.create seed in
      (* Build a chain-respecting random circuit from primitives... *)
      let base =
        List.init 6 (fun _ ->
            let q = Rng.int rng 3 in
            if Rng.bool rng then Gate.Unitary (Gate.Cz, [| q; q + 1 |])
            else Gate.Unitary (Gate.X90, [| q |]))
      in
      let c = Circuit.of_list ~name:"chain" 4 base in
      (* ...then seed one CZ across the chain ends. *)
      let mutated = Circuit.add c (Gate.Unitary (Gate.Cz, [| 0; 3 |])) in
      codes (Platform_checks.check_mapped semi c) = []
      && codes (Platform_checks.check_mapped semi mutated) = [ "P01" ])

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "exit ladder" `Quick test_exit_ladder;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "circuit-checks",
        [
          Alcotest.test_case "bad program codes" `Quick test_bad_program_codes;
          Alcotest.test_case "clean library circuits" `Quick test_clean_programs;
          Alcotest.test_case "teleport feedback exempt" `Quick
            test_teleport_feedback_not_flagged;
          Alcotest.test_case "range vs platform" `Quick test_range_against_platform;
        ] );
      ( "platform-checks",
        [
          Alcotest.test_case "P01/P02" `Quick test_platform_checks;
          Alcotest.test_case "compiled output conforms" `Quick
            test_platform_clean_after_compile;
        ] );
      ( "eqasm-checks",
        [
          Alcotest.test_case "clean lowering" `Quick test_eqasm_clean_lowering;
          Alcotest.test_case "timing violations" `Quick test_eqasm_violations;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean compile" `Quick test_verify_clean_compile;
          Alcotest.test_case "blames the pass" `Quick test_verify_blames_pass;
          Alcotest.test_case "schedule artifact" `Quick test_verify_schedule_artifact;
        ] );
      ( "properties",
        [
          qtest prop_random_clean;
          qtest prop_out_of_range_flagged;
          qtest prop_dropped_reset_flagged;
          qtest prop_non_adjacent_flagged;
        ] );
    ]
