(* Tests for the qca core: qubit models, Amdahl, host runtime, RB and the
   three full-stack instances. *)

module Qubit_model = Qca.Qubit_model
module Amdahl = Qca.Amdahl
module Accelerator = Qca.Accelerator
module Host = Qca.Host
module Rb = Qca.Rb
module Stack = Qca.Stack
module Trl = Qca.Trl
module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Noise = Qca_qx.Noise
module Rng = Qca_util.Rng
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler

let check_float = Alcotest.(check (float 1e-9))

(* --- qubit models --- *)

let test_qubit_models () =
  Alcotest.(check int) "three models" 3 (List.length Qubit_model.all);
  Alcotest.(check bool) "perfect is ideal" true
    (Noise.is_ideal (Qubit_model.noise Qubit_model.Perfect Qca_compiler.Platform.superconducting_17));
  Alcotest.(check bool) "real uses platform noise" false
    (Noise.is_ideal (Qubit_model.noise Qubit_model.Real Qca_compiler.Platform.superconducting_17));
  Alcotest.(check bool) "perfect ignores topology" false
    (Qubit_model.respects_connectivity Qubit_model.Perfect);
  Alcotest.(check bool) "real respects topology" true
    (Qubit_model.respects_connectivity Qubit_model.Real)

(* --- Amdahl --- *)

let test_amdahl_basic () =
  check_float "f=0.5 s=inf -> 2" 2.0 (Amdahl.speedup ~fraction:0.5 ~factor:1e12);
  check_float "f=0 -> 1" 1.0 (Amdahl.speedup ~fraction:0.0 ~factor:100.0);
  check_float "f=0.9 s=10" (1.0 /. (0.1 +. 0.09)) (Amdahl.speedup ~fraction:0.9 ~factor:10.0)

let test_amdahl_limit () =
  check_float "limit f=0.95" 20.0 (Amdahl.limit ~fraction:0.95);
  Alcotest.(check bool) "f=1 unbounded" true (Amdahl.limit ~fraction:1.0 = infinity)

let test_amdahl_overhead () =
  let plain = Amdahl.speedup ~fraction:0.8 ~factor:100.0 in
  let loaded = Amdahl.speedup_with_overhead ~fraction:0.8 ~factor:100.0 ~overhead:0.1 in
  Alcotest.(check bool) "overhead reduces speedup" true (loaded < plain)

let test_amdahl_multi () =
  let single = Amdahl.speedup ~fraction:0.5 ~factor:10.0 in
  let multi = Amdahl.multi_accelerator [ (0.5, 10.0) ] in
  check_float "multi generalises single" single multi;
  let two = Amdahl.multi_accelerator [ (0.4, 10.0); (0.4, 100.0) ] in
  Alcotest.(check bool) "two accelerators help more" true (two > single)

let test_amdahl_break_even () =
  Alcotest.(check bool) "overhead >= fraction -> never" true
    (Amdahl.break_even_factor ~fraction:0.1 ~overhead:0.2 = infinity);
  let s = Amdahl.break_even_factor ~fraction:0.5 ~overhead:0.1 in
  check_float "break even" 1.25 s;
  (* Exactly at break-even, speedup = 1. *)
  check_float "speedup 1 at break-even" 1.0
    (Amdahl.speedup_with_overhead ~fraction:0.5 ~factor:s ~overhead:0.1)

let test_amdahl_validation () =
  (match Amdahl.speedup ~fraction:1.5 ~factor:2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fraction > 1 accepted");
  match Amdahl.multi_accelerator [ (0.7, 2.0); (0.7, 2.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fractions > 1 accepted"

(* --- host runtime --- *)

let test_host_runs_tasks () =
  let accelerators = Accelerator.default_park () in
  let tasks =
    [
      Host.Classical ("setup", 10.0);
      Host.Offload ("gpu0", "matmul", 100.0, "data");
      Host.Classical ("teardown", 5.0);
    ]
  in
  let exec = Host.run ~accelerators tasks in
  Alcotest.(check int) "three events" 3 (List.length exec.Host.timeline);
  check_float "host-only time" 115.0 exec.Host.host_only_time;
  (* 10 + (0.2 + 100/50) + 5 = 17.2 *)
  check_float "accelerated time" 17.2 exec.Host.total_time;
  Alcotest.(check bool) "speedup > 6" true (exec.Host.speedup > 6.0)

let test_host_matches_amdahl () =
  let accelerators = Accelerator.default_park () in
  let tasks =
    [ Host.Classical ("c", 50.0); Host.Offload ("fpga0", "k", 50.0, "x") ]
  in
  let exec = Host.run ~accelerators tasks in
  let predicted = Host.amdahl_prediction ~accelerators tasks in
  check_float "simulation = analytic model" predicted exec.Host.speedup

let test_host_unknown_accelerator () =
  (* Degrades to host execution instead of aborting. *)
  let exec = Host.run ~accelerators:[] [ Host.Offload ("nope", "k", 1.0, "") ] in
  Alcotest.(check int) "one warning" 1 (List.length exec.Host.warnings);
  check_float "ran at host speed" 1.0 exec.Host.total_time;
  check_float "no speedup" 1.0 exec.Host.speedup;
  (match exec.Host.timeline with
  | [ ev ] ->
      Alcotest.(check string) "ran on host" "host" ev.Host.resource;
      Alcotest.(check bool) "event carries warning" true (ev.Host.warning <> None)
  | _ -> Alcotest.fail "expected one event");
  check_float "amdahl consistent" (Host.amdahl_prediction ~accelerators:[]
    [ Host.Offload ("nope", "k", 1.0, "") ]) exec.Host.speedup

let test_host_payload_output () =
  let quantum =
    Accelerator.make
      ~payload:(fun arg -> "result:" ^ arg)
      ~name:"qpu" ~kind:Accelerator.Quantum_gate ~speed_factor:100.0 ~offload_overhead:1.0 ()
  in
  let exec = Host.run ~accelerators:[ quantum ] [ Host.Offload ("qpu", "grover", 10.0, "db") ] in
  Alcotest.(check (list (pair string string))) "output captured" [ ("grover", "result:db") ]
    exec.Host.outputs

(* --- RB --- *)

let test_clifford_group_size () =
  Alcotest.(check int) "24 elements" 24 (Array.length (Rb.group ()))

let test_clifford_inverse () =
  let g = Rb.group () in
  Array.iter
    (fun c ->
      let inv = Rb.inverse c in
      let m =
        List.fold_left
          (fun acc u -> Qca_util.Matrix.mul (Gate.matrix u) acc)
          (Qca_util.Matrix.identity 2)
          (Rb.gates c @ Rb.gates inv)
      in
      Alcotest.(check bool) "c * c^-1 = I" true
        (Qca_util.Matrix.equal_up_to_phase m (Qca_util.Matrix.identity 2)))
    g

let test_rb_sequence_is_identity_ideal () =
  (* Without noise every RB sequence must return |0> with certainty. *)
  let rng = Rng.create 3 in
  for length = 1 to 8 do
    let circuit = Rb.sequence_circuit rng ~qubit:0 ~total_qubits:1 ~length in
    let result = Qca_qx.Sim.run ~rng circuit in
    Alcotest.(check int) (Printf.sprintf "m=%d survives" length) 0 result.Qca_qx.Sim.classical.(0)
  done

let test_rb_decay_with_noise () =
  let rng = Rng.create 5 in
  let decay =
    Rb.run ~lengths:[ 1; 4; 16 ] ~sequences:4 ~shots:64 ~noise:(Noise.depolarizing 0.02) ~rng ()
  in
  (match decay.Rb.points with
  | [ p1; _; p3 ] ->
      Alcotest.(check bool) "longer sequences decay" true (p3.Rb.survival < p1.Rb.survival);
      Alcotest.(check bool) "short sequences survive" true (p1.Rb.survival > 0.8)
  | _ -> Alcotest.fail "expected three points");
  Alcotest.(check bool) "p < 1" true (decay.Rb.p < 1.0);
  Alcotest.(check bool) "error per clifford positive" true (decay.Rb.error_per_clifford > 0.0)

let test_rb_ideal_no_decay () =
  let rng = Rng.create 7 in
  let decay = Rb.run ~lengths:[ 1; 8 ] ~sequences:2 ~shots:32 ~noise:Noise.ideal ~rng () in
  List.iter
    (fun p -> check_float "survival 1" 1.0 p.Rb.survival)
    decay.Rb.points

let test_interleaved_rb () =
  let rng = Rng.create 9 in
  let result =
    Rb.run_interleaved ~lengths:[ 1; 4; 16 ] ~sequences:4 ~shots:64 ~gate:Qca_circuit.Gate.X
      ~noise:(Noise.depolarizing 0.01) ~rng ()
  in
  (* interleaving adds error: p_int <= p_ref *)
  Alcotest.(check bool) "interleaved decays faster" true
    (result.Rb.interleaved.Rb.p <= result.Rb.reference.Rb.p +. 0.01);
  Alcotest.(check bool) "gate error in [0, 0.05]" true
    (result.Rb.gate_error >= 0.0 && result.Rb.gate_error < 0.05)

let test_interleaved_rejects_nonclifford () =
  let rng = Rng.create 10 in
  match
    Rb.run_interleaved ~lengths:[ 1 ] ~sequences:1 ~shots:4 ~gate:Qca_circuit.Gate.T
      ~noise:Noise.ideal ~rng ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "T gate accepted"

(* --- characterisation --- *)

module Characterize = Qca.Characterize

let test_characterize_ideal_device () =
  let rng = Rng.create 21 in
  let c = Characterize.run ~shots:64 ~sequences:2 ~device:Noise.ideal ~rng () in
  check_float "no readout error" 0.0 c.Characterize.readout_error;
  Alcotest.(check bool) "tiny gate error" true (c.Characterize.gate_error < 1e-3)

let test_characterize_recovers_parameters () =
  let rng = Rng.create 23 in
  let true_gate_error = 0.004 and true_readout = 0.03 in
  let device = { (Noise.depolarizing true_gate_error) with Qca_qx.Noise.readout_error = true_readout } in
  let c =
    Characterize.run ~rb_lengths:[ 1; 2; 4; 8; 16; 32; 64 ] ~sequences:8 ~shots:256
      ~device ~rng ()
  in
  (* within a factor ~2 of truth *)
  Alcotest.(check bool)
    (Printf.sprintf "gate error %.5f ~ %.5f" c.Characterize.gate_error true_gate_error)
    true
    (c.Characterize.gate_error > true_gate_error /. 2.5
    && c.Characterize.gate_error < true_gate_error *. 2.5);
  Alcotest.(check bool)
    (Printf.sprintf "readout %.4f ~ %.4f" c.Characterize.readout_error true_readout)
    true
    (Float.abs (c.Characterize.readout_error -. true_readout) < 0.02)

let test_characterize_model_usable () =
  let rng = Rng.create 25 in
  let c = Characterize.run ~shots:64 ~sequences:2 ~device:Noise.superconducting ~rng () in
  Alcotest.(check bool) "model not ideal" false (Noise.is_ideal c.Characterize.model);
  Alcotest.(check bool) "renders" true (String.length (Characterize.to_string c) > 20)

(* --- two-qubit RB --- *)

module Rb2 = Qca.Rb2

let test_rb2_group_order () =
  Alcotest.(check int) "11520 elements" 11520 (Array.length (Rb2.group ()))

let test_rb2_inverses () =
  let g = Rb2.group () in
  let rng = Rng.create 12 in
  (* spot-check 50 random elements *)
  for _ = 1 to 50 do
    let c = g.(Rng.int rng (Array.length g)) in
    let inv = Rb2.inverse c in
    let m gates =
      Qca_circuit.Circuit.unitary_matrix
        (Circuit.of_list 2 (List.map (fun (u, ops) -> Gate.Unitary (u, ops)) gates))
    in
    let product = Qca_util.Matrix.mul (m (Rb2.gates inv)) (m (Rb2.gates c)) in
    Alcotest.(check bool) "inverse composes to identity" true
      (Qca_util.Matrix.equal_up_to_phase product (Qca_util.Matrix.identity 4))
  done

let test_rb2_sequence_ideal () =
  let rng = Rng.create 14 in
  for length = 1 to 5 do
    let circuit = Rb2.sequence_circuit rng ~length in
    let result = Qca_qx.Sim.run ~rng circuit in
    Alcotest.(check int) "q0 survives" 0 result.Qca_qx.Sim.classical.(0);
    Alcotest.(check int) "q1 survives" 0 result.Qca_qx.Sim.classical.(1)
  done

let test_rb2_noisy_decay () =
  let rng = Rng.create 15 in
  let decay =
    Rb2.run ~lengths:[ 1; 4; 8 ] ~sequences:3 ~shots:32 ~noise:(Noise.depolarizing 0.005)
      ~rng ()
  in
  (match decay.Rb2.points with
  | [ (_, s1); _; (_, s8) ] ->
      Alcotest.(check bool) "decays" true (s8 < s1)
  | _ -> Alcotest.fail "expected three points");
  Alcotest.(check bool) "error per clifford > single-gate error" true
    (decay.Rb2.error_per_clifford > 0.005)

(* --- stacks --- *)

let bell_measured () =
  Circuit.append (Library.bell ()) (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])

let test_stack_descriptions () =
  List.iter
    (fun stack ->
      Alcotest.(check bool) (Stack.describe stack) true (String.length (Stack.describe stack) > 10))
    [ Stack.superconducting (); Stack.semiconducting (); Stack.genome (); Stack.optimisation () ]

let test_genome_stack_perfect_bell () =
  let stack = Stack.genome ~qubits:2 () in
  let run = Stack.execute ~shots:300 stack (bell_measured ()) in
  let p =
    Stack.success_probability run ~accept:(fun key ->
        key = "00" || key = "11")
  in
  check_float "perfect correlations" 1.0 p;
  Alcotest.(check bool) "no microarch" true (run.Stack.microarch_stats = None)

let test_superconducting_stack_runs_microarch () =
  let stack = Stack.superconducting () in
  let run = Stack.execute ~shots:60 stack (bell_measured ()) in
  Alcotest.(check bool) "microarch engaged" true (run.Stack.microarch_stats <> None);
  let p =
    Stack.success_probability run ~accept:(fun key ->
        let n = String.length key in
        key.[n - 1] = key.[n - 2] && key.[n - 1] <> '-')
  in
  Alcotest.(check bool) "correlated despite noise" true (p > 0.8)

let test_realistic_of_degrades () =
  let perfect_stack = Stack.genome ~qubits:2 () in
  let realistic = Stack.realistic_of perfect_stack in
  Alcotest.(check bool) "model changed" true (realistic.Stack.model = Qca.Qubit_model.Realistic)

let test_stack_engine_report () =
  let module Engine = Qca_qx.Engine in
  (* Direct-QX perfect stack: terminal measurements take the sampled plan. *)
  let run = Stack.execute ~shots:100 ~seed:8 (Stack.genome ~qubits:2 ()) (bell_measured ()) in
  Alcotest.(check bool) "perfect stack samples" true
    (run.Stack.engine_report.Engine.plan = Engine.Sampled);
  Alcotest.(check int) "shots recorded" 100 run.Stack.engine_report.Engine.shots;
  (* Micro-architecture stack: inherently per-shot. *)
  let run_sc = Stack.execute ~shots:20 ~seed:8 (Stack.superconducting ()) (bell_measured ()) in
  Alcotest.(check bool) "microarch stack is trajectory" true
    (run_sc.Stack.engine_report.Engine.plan = Engine.Trajectory);
  Alcotest.(check bool) "gate applies counted" true
    (run_sc.Stack.engine_report.Engine.gate_applies <> [])

let test_stack_degrades_to_sim () =
  let module Engine = Qca_qx.Engine in
  let module Fault = Qca_util.Fault in
  (* A saturating injector: every shot faults past its retry budget, so the
     micro-architecture run must fall back to direct realistic QX. *)
  let stack = Stack.superconducting () in
  let faults = Fault.make ~seed:4 { Fault.off with Fault.backend = 1.0 } in
  let run = Stack.execute ~shots:80 ~seed:12 ~faults stack (bell_measured ()) in
  let res = run.Stack.engine_report.Engine.resilience in
  Alcotest.(check bool) "degradation recorded" true (res.Engine.degraded <> None);
  Alcotest.(check bool) "no microarch stats after fallback" true
    (run.Stack.microarch_stats = None);
  (* The fallback executes the already-compiled program, so histogram keys
     keep the 17-qubit platform width. *)
  List.iter
    (fun (key, _) ->
      Alcotest.(check int) "platform-width key" 17 (String.length key))
    run.Stack.histogram;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 run.Stack.histogram in
  Alcotest.(check int) "all shots delivered by fallback" 80 total

let test_stack_run_checked () =
  let stack = Stack.genome ~qubits:2 () in
  (match Stack.run_checked ~shots:50 ~seed:3 stack (bell_measured ()) with
  | Ok run ->
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 run.Stack.histogram in
      Alcotest.(check int) "shots" 50 total
  | Error e -> Alcotest.fail (Qca_util.Error.to_string e));
  (* A gate the platform cannot express surfaces as a structured error, not
     an exception. Perfect mode skips decomposition, so use a realistic
     stack whose platform only offers cz. *)
  let tiny =
    {
      Stack.stack_name = "tiny";
      platform = { Platform.superconducting_17 with Platform.primitives = [ "cz" ] };
      model = Qca.Qubit_model.Realistic;
      technology = None;
    }
  in
  match Stack.run_checked ~shots:10 tiny (bell_measured ()) with
  | Ok _ -> Alcotest.fail "unsupported gate accepted"
  | Error e ->
      Alcotest.(check bool) "unsupported-gate kind" true
        (match e.Qca_util.Error.kind with
        | Qca_util.Error.Unsupported_gate _ -> true
        | _ -> false)

(* --- backend swapping (the Backend.S contract) --- *)

let test_backend_swap () =
  let module Engine = Qca_qx.Engine in
  let bell = bell_measured () in
  let targets : (module Qca_qx.Backend.S) list =
    [
      (module Qca_qx.Sim.Backend);
      (module Qca_qx.Density.Backend);
      Qca_microarch.Controller.backend ~platform:Platform.semiconducting_4
        ~technology:Qca_microarch.Controller.semiconducting ();
    ]
  in
  List.iter
    (fun (module B : Qca_qx.Backend.S) ->
      let result = B.run ~shots:200 ~seed:13 bell in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 result.Engine.histogram in
      Alcotest.(check int) (B.name ^ ": histogram mass") 200 total;
      (* The mapper may relocate qubits and noise may leak, but the Bell
         correlation must dominate on every target. *)
      let correlated =
        List.fold_left
          (fun acc (key, c) ->
            let bits = List.filter (fun ch -> ch = '0' || ch = '1') (List.init (String.length key) (String.get key)) in
            match bits with
            | [ a; b ] when a = b -> acc + c
            | _ -> acc)
          0 result.Engine.histogram
      in
      Alcotest.(check bool)
        (B.name ^ ": correlated mass dominates")
        true
        (float_of_int correlated /. float_of_int total > 0.8))
    targets

let test_accelerator_with_backend () =
  let source =
    "version 1.0\nqubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure q[0]\nmeasure q[1]\n"
  in
  let qpu =
    Accelerator.make ~name:"qpu0" ~kind:Accelerator.Quantum_gate ~speed_factor:1000.0
      ~offload_overhead:2.0 ()
  in
  let backed =
    Accelerator.with_backend (module Qca_qx.Sim.Backend) ~shots:300 ~seed:5 qpu
  in
  Alcotest.(check string) "renamed" "qpu0@qx-statevector" backed.Accelerator.name;
  let output = Accelerator.run_payload backed source in
  let entries = String.split_on_char ' ' output in
  let total =
    List.fold_left
      (fun acc entry ->
        match String.split_on_char ':' entry with
        | [ _bits; count ] -> acc + int_of_string count
        | _ -> Alcotest.fail ("unparseable payload entry: " ^ entry))
      0 entries
  in
  Alcotest.(check int) "payload counts sum to shots" 300 total;
  List.iter
    (fun entry ->
      match String.split_on_char ':' entry with
      | [ bits; _ ] ->
          Alcotest.(check bool) ("correlated outcome " ^ bits) true
            (bits = "00" || bits = "11")
      | _ -> ())
    entries

(* --- in-memory (section 5) --- *)

module In_memory = Qca.In_memory

let test_in_memory_ordering () =
  let w = { In_memory.operations = 1000; operands_per_op = 2; locality = 0.8 } in
  let vn = In_memory.data_movements In_memory.Von_neumann w ~movement_per_distant_op:3.0 in
  let im = In_memory.data_movements In_memory.In_memory w ~movement_per_distant_op:3.0 in
  check_float "von neumann moves everything" 2000.0 vn;
  check_float "in-memory moves the non-local 20%" 400.0 im;
  Alcotest.(check bool) "in-memory wins" true (im < vn)

let test_in_memory_full_locality () =
  let w = { In_memory.operations = 100; operands_per_op = 2; locality = 1.0 } in
  check_float "local quantum workload moves nothing" 0.0
    (In_memory.data_movements In_memory.Quantum_nearest_neighbour w
       ~movement_per_distant_op:2.0)

let test_measure_routing () =
  let platform = Platform.superconducting_17 in
  let pressure = In_memory.measure_routing platform (Library.qft 5) in
  Alcotest.(check bool) "some swaps" true (pressure.In_memory.swaps_inserted > 0);
  Alcotest.(check bool) "locality in [0,1]" true
    (pressure.In_memory.locality_measured >= 0.0 && pressure.In_memory.locality_measured <= 1.0);
  (* all-to-all platform: perfect locality *)
  let free = In_memory.measure_routing (Platform.perfect 5) (Library.qft 5) in
  check_float "all-to-all locality 1" 1.0 free.In_memory.locality_measured;
  Alcotest.(check int) "no swaps" 0 free.In_memory.swaps_inserted

let test_comparison_table () =
  let w = { In_memory.operations = 10; operands_per_op = 2; locality = 0.5 } in
  let rows = In_memory.comparison_table w ~movement_per_distant_op:2.0 in
  Alcotest.(check int) "three architectures" 3 (List.length rows)

(* --- error budget --- *)

module Error_budget = Qca.Error_budget

let test_budget_perfect_platform_is_one () =
  let e = Error_budget.of_circuit ~platform:(Platform.perfect 4) (Library.ghz 4) in
  check_float "no loss" 1.0 e.Error_budget.total;
  Alcotest.(check int) "gate count" 4 e.Error_budget.gate_count

let test_budget_decreases_with_depth () =
  let platform = Platform.superconducting_17 in
  let shallow = Compiler.compile platform Compiler.Realistic (Library.ghz 3) in
  let deep = Compiler.compile platform Compiler.Realistic (Library.qft 5) in
  let e_shallow = Error_budget.of_output shallow in
  let e_deep = Error_budget.of_output deep in
  Alcotest.(check bool) "deeper circuit survives less" true
    (e_deep.Error_budget.total < e_shallow.Error_budget.total)

let test_budget_predicts_simulation () =
  (* The analytic estimate should be within a few points of the measured
     state fidelity for a modest circuit. *)
  let platform = Platform.superconducting_17 in
  let out = Compiler.compile platform Compiler.Realistic (Library.ghz 3) in
  let e = Error_budget.of_output out in
  let rng = Rng.create 2024 in
  let measured =
    Qca_qx.Sim.state_fidelity_vs_ideal ~noise:platform.Platform.noise ~rng ~shots:200
      out.Compiler.physical
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 0.08 of measured %.3f" e.Error_budget.total measured)
    true
    (Float.abs (e.Error_budget.total -. measured) < 0.08)

let test_budget_dominant_readout () =
  (* With coherence switched off, an all-measurement circuit is
     readout-dominated. *)
  let base = Platform.superconducting_17 in
  let platform =
    {
      base with
      Platform.noise =
        { base.Platform.noise with Qca_qx.Noise.t1_ns = infinity; t2_ns = infinity };
    }
  in
  let c = Circuit.of_list 17 (List.init 8 (fun q -> Gate.Measure q)) in
  let e = Error_budget.of_circuit ~platform c in
  Alcotest.(check string) "dominant" "readout" e.Error_budget.dominant;
  Alcotest.(check int) "8 measurements" 8 e.Error_budget.measurement_count

let test_budget_to_string () =
  let e = Error_budget.of_circuit ~platform:Platform.superconducting_17 (Library.bell ()) in
  Alcotest.(check bool) "renders" true (String.length (Error_budget.to_string e) > 40)

(* --- Shor --- *)

module Shor = Qca.Shor

let test_shor_helpers () =
  Alcotest.(check int) "gcd" 6 (Shor.gcd 54 24);
  Alcotest.(check int) "mod_pow" 1 (Shor.mod_pow 7 4 15);
  Alcotest.(check int) "mod_pow 2^10 mod 1000" 24 (Shor.mod_pow 2 10 1000);
  Alcotest.(check int) "order of 7 mod 15" 4 (Shor.classical_order 7 15);
  Alcotest.(check int) "order of 2 mod 21" 6 (Shor.classical_order 2 21)

let test_continued_fractions () =
  (* 192/256 = 3/4: denominators 1, 4 appear *)
  let dens = Shor.continued_fraction_denominator ~numerator:192 ~denominator:256 ~limit:15 in
  Alcotest.(check bool) "contains 4" true (List.mem 4 dens);
  (* 85/256 ~ 1/3 *)
  let dens2 = Shor.continued_fraction_denominator ~numerator:85 ~denominator:256 ~limit:15 in
  Alcotest.(check bool) "contains 3" true (List.mem 3 dens2)

let test_shor_order_finding_15 () =
  let rng = Rng.create 1234 in
  List.iter
    (fun (a, expected) ->
      let result = Shor.find_order ~rng ~a ~modulus:15 () in
      Alcotest.(check (option int)) (Printf.sprintf "order of %d mod 15" a) (Some expected)
        result.Shor.order)
    [ (7, 4); (2, 4); (4, 2); (11, 2); (13, 4) ]

let test_shor_order_matches_classical () =
  let rng = Rng.create 4321 in
  List.iter
    (fun (a, modulus) ->
      let result = Shor.find_order ~rng ~a ~modulus () in
      match result.Shor.order with
      | Some r ->
          Alcotest.(check int)
            (Printf.sprintf "a=%d N=%d" a modulus)
            (Shor.classical_order a modulus) r
      | None -> Alcotest.fail "order finding failed")
    [ (3, 7); (2, 9); (5, 13) ]

let test_shor_factors_15 () =
  let rng = Rng.create 31415 in
  let result = Shor.factor ~rng 15 in
  match result.Shor.factors with
  | Some (p, q) ->
      Alcotest.(check int) "product" 15 (p * q);
      Alcotest.(check bool) "nontrivial" true (p > 1 && q > 1)
  | None -> Alcotest.fail "Shor failed to factor 15"

let test_shor_rejects_bad_input () =
  let rng = Rng.create 1 in
  (match Shor.factor ~rng 16 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "even n accepted");
  match Shor.find_order ~rng ~a:5 ~modulus:15 () with
  | exception Invalid_argument _ -> () (* gcd(5,15) = 5 *)
  | _ -> Alcotest.fail "non-coprime base accepted"

(* --- TRL --- *)

let test_trl_monotone () =
  let years = List.init 30 (fun k -> 2019.0 +. float_of_int k) in
  let rec check_pairs = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "accelerator monotone" true
          (Trl.trl Trl.Accelerator_logic ~year:b >= Trl.trl Trl.Accelerator_logic ~year:a);
        Alcotest.(check bool) "chip monotone" true
          (Trl.trl Trl.Quantum_chip ~year:b >= Trl.trl Trl.Quantum_chip ~year:a);
        check_pairs rest
  in
  check_pairs years

let test_trl_accelerator_leads () =
  let y_acc = Trl.year_reaching Trl.Accelerator_logic ~level:Trl.adoption_threshold in
  let y_chip = Trl.year_reaching Trl.Quantum_chip ~level:Trl.adoption_threshold in
  Alcotest.(check bool) "accelerator matures first" true (y_acc < y_chip);
  Alcotest.(check bool) "roughly a decade apart (paper)" true
    (y_chip -. y_acc > 3.0 && y_chip -. y_acc < 15.0)

let test_trl_bounds () =
  Alcotest.(check bool) "floor" true (Trl.trl Trl.Quantum_chip ~year:1990.0 >= 1.0);
  Alcotest.(check bool) "ceiling" true (Trl.trl Trl.Accelerator_logic ~year:2100.0 <= 9.0)

let test_trl_phases_progress () =
  let p2019 = Trl.phase_of ~year:2019.0 in
  let p2060 = Trl.phase_of ~year:2060.0 in
  Alcotest.(check bool) "starts early-phase" true
    (p2019 = Trl.Reflection || p2019 = Trl.Prototyping);
  Alcotest.(check bool) "ends converged" true (p2060 = Trl.Converged)

let test_trl_table_shape () =
  let rows = Trl.table ~first_year:2019 ~last_year:2035 in
  Alcotest.(check int) "17 rows" 17 (List.length rows);
  match rows with
  | (y, a, c, _) :: _ ->
      Alcotest.(check int) "first year" 2019 y;
      Alcotest.(check bool) "accelerator above chip" true (a >= c)
  | [] -> Alcotest.fail "empty table"

let test_year_reaching_inverse () =
  let y = Trl.year_reaching Trl.Accelerator_logic ~level:5.0 in
  check_float "inverse" 5.0 (Trl.trl Trl.Accelerator_logic ~year:y)

let () =
  Alcotest.run "qca_core"
    [
      ( "qubit-model",
        [ Alcotest.test_case "three models" `Quick test_qubit_models ] );
      ( "amdahl",
        [
          Alcotest.test_case "basic" `Quick test_amdahl_basic;
          Alcotest.test_case "limit" `Quick test_amdahl_limit;
          Alcotest.test_case "overhead" `Quick test_amdahl_overhead;
          Alcotest.test_case "multi" `Quick test_amdahl_multi;
          Alcotest.test_case "break even" `Quick test_amdahl_break_even;
          Alcotest.test_case "validation" `Quick test_amdahl_validation;
        ] );
      ( "host",
        [
          Alcotest.test_case "runs tasks" `Quick test_host_runs_tasks;
          Alcotest.test_case "matches amdahl" `Quick test_host_matches_amdahl;
          Alcotest.test_case "unknown accelerator" `Quick test_host_unknown_accelerator;
          Alcotest.test_case "payload output" `Quick test_host_payload_output;
        ] );
      ( "rb",
        [
          Alcotest.test_case "group size 24" `Quick test_clifford_group_size;
          Alcotest.test_case "inverses" `Quick test_clifford_inverse;
          Alcotest.test_case "ideal identity" `Quick test_rb_sequence_is_identity_ideal;
          Alcotest.test_case "noisy decay" `Quick test_rb_decay_with_noise;
          Alcotest.test_case "ideal no decay" `Quick test_rb_ideal_no_decay;
          Alcotest.test_case "interleaved" `Quick test_interleaved_rb;
          Alcotest.test_case "interleaved rejects T" `Quick test_interleaved_rejects_nonclifford;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "ideal device" `Quick test_characterize_ideal_device;
          Alcotest.test_case "recovers parameters" `Quick test_characterize_recovers_parameters;
          Alcotest.test_case "model usable" `Quick test_characterize_model_usable;
        ] );
      ( "rb2",
        [
          Alcotest.test_case "group order 11520" `Quick test_rb2_group_order;
          Alcotest.test_case "inverses" `Quick test_rb2_inverses;
          Alcotest.test_case "ideal sequences" `Quick test_rb2_sequence_ideal;
          Alcotest.test_case "noisy decay" `Quick test_rb2_noisy_decay;
        ] );
      ( "stack",
        [
          Alcotest.test_case "descriptions" `Quick test_stack_descriptions;
          Alcotest.test_case "genome stack bell" `Quick test_genome_stack_perfect_bell;
          Alcotest.test_case "superconducting microarch" `Quick test_superconducting_stack_runs_microarch;
          Alcotest.test_case "realistic_of" `Quick test_realistic_of_degrades;
          Alcotest.test_case "engine report" `Quick test_stack_engine_report;
          Alcotest.test_case "degrades to sim" `Quick test_stack_degrades_to_sim;
          Alcotest.test_case "run_checked" `Quick test_stack_run_checked;
          Alcotest.test_case "backend swap" `Quick test_backend_swap;
          Alcotest.test_case "accelerator with_backend" `Quick test_accelerator_with_backend;
        ] );
      ( "in-memory",
        [
          Alcotest.test_case "ordering" `Quick test_in_memory_ordering;
          Alcotest.test_case "full locality" `Quick test_in_memory_full_locality;
          Alcotest.test_case "measure routing" `Quick test_measure_routing;
          Alcotest.test_case "comparison table" `Quick test_comparison_table;
        ] );
      ( "error-budget",
        [
          Alcotest.test_case "perfect is one" `Quick test_budget_perfect_platform_is_one;
          Alcotest.test_case "decreases with depth" `Quick test_budget_decreases_with_depth;
          Alcotest.test_case "predicts simulation" `Quick test_budget_predicts_simulation;
          Alcotest.test_case "dominant readout" `Quick test_budget_dominant_readout;
          Alcotest.test_case "to_string" `Quick test_budget_to_string;
        ] );
      ( "shor",
        [
          Alcotest.test_case "helpers" `Quick test_shor_helpers;
          Alcotest.test_case "continued fractions" `Quick test_continued_fractions;
          Alcotest.test_case "order finding mod 15" `Quick test_shor_order_finding_15;
          Alcotest.test_case "matches classical" `Quick test_shor_order_matches_classical;
          Alcotest.test_case "factors 15" `Quick test_shor_factors_15;
          Alcotest.test_case "rejects bad input" `Quick test_shor_rejects_bad_input;
        ] );
      ( "trl",
        [
          Alcotest.test_case "monotone" `Quick test_trl_monotone;
          Alcotest.test_case "accelerator leads" `Quick test_trl_accelerator_leads;
          Alcotest.test_case "bounds" `Quick test_trl_bounds;
          Alcotest.test_case "phases" `Quick test_trl_phases_progress;
          Alcotest.test_case "table" `Quick test_trl_table_shape;
          Alcotest.test_case "inverse" `Quick test_year_reaching_inverse;
        ] );
    ]
