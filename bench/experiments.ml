(* One experiment per figure / quantitative claim of the paper; each prints
   the table or series the paper reports. See DESIGN.md's per-experiment
   index and EXPERIMENTS.md for paper-vs-measured. *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module State = Qca_qx.State
module Sim = Qca_qx.Sim
module Engine = Qca_qx.Engine
module Noise = Qca_qx.Noise
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Schedule = Qca_compiler.Schedule
module Mapping = Qca_compiler.Mapping
module Decompose = Qca_compiler.Decompose
module Eqasm = Qca_compiler.Eqasm
module Controller = Qca_microarch.Controller
module Code = Qca_qec.Code
module Decoder = Qca_qec.Decoder
module Qec_experiment = Qca_qec.Qec_experiment
module Qubo = Qca_anneal.Qubo
module Ising = Qca_anneal.Ising
module Sa = Qca_anneal.Sa
module Sqa = Qca_anneal.Sqa
module Chimera = Qca_anneal.Chimera
module Embedding = Qca_anneal.Embedding
module Digital_annealer = Qca_anneal.Digital_annealer
module Qaoa = Qca_qaoa.Qaoa
module Dna = Qca_genome.Dna
module Reference_db = Qca_genome.Reference_db
module Classical_align = Qca_genome.Classical_align
module Grover = Qca_genome.Grover
module Align = Qca_genome.Align
module Tsp = Qca_tsp.Tsp
module Exact = Qca_tsp.Exact
module Heuristic = Qca_tsp.Heuristic
module Encode = Qca_tsp.Encode
module Amdahl = Qca.Amdahl
module Accelerator = Qca.Accelerator
module Host = Qca.Host
module Rb = Qca.Rb
module Stack = Qca.Stack
module Trl = Qca.Trl
module Rng = Qca_util.Rng

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let measured_circuit base =
  let n = Circuit.qubit_count base in
  Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1 + Amdahl's law *)

let e1 () =
  header "E1" "Figure 1 / Amdahl's law: speedup from heterogeneous accelerators";
  Printf.printf "%-10s" "fraction";
  List.iter (fun s -> Printf.printf " s=%-8.0f" s) [ 10.; 100.; 1000. ];
  Printf.printf " s=inf\n";
  List.iter
    (fun f ->
      Printf.printf "%-10.2f" f;
      List.iter
        (fun s -> Printf.printf " %-10.2f" (Amdahl.speedup ~fraction:f ~factor:s))
        [ 10.; 100.; 1000. ];
      Printf.printf " %-10.2f\n" (Amdahl.limit ~fraction:f))
    [ 0.5; 0.75; 0.9; 0.95; 0.99 ];
  (* Host runtime simulation vs the analytic model. *)
  let accelerators = Accelerator.default_park () in
  let tasks =
    [
      Host.Classical ("pre", 10.0);
      Host.Offload ("gpu0", "dense-kernel", 60.0, "");
      Host.Offload ("qpu0", "quantum-kernel", 25.0, "");
      Host.Classical ("post", 5.0);
    ]
  in
  let exec = Host.run ~accelerators tasks in
  Printf.printf
    "host-runtime simulation: host-only %.1f, accelerated %.2f, speedup %.2fx (analytic \
     %.2fx)\n"
    exec.Host.host_only_time exec.Host.total_time exec.Host.speedup
    (Host.amdahl_prediction ~accelerators tasks)

(* ------------------------------------------------------------------ *)
(* E2 — Figures 2 & 3: the two stacks on the same logic *)

let e2 () =
  header "E2" "Figures 2-3: the same quantum logic on the perfect and real stacks";
  let logic = measured_circuit (Library.ghz 3) in
  let ghz_accept key =
    let n = String.length key in
    let bit i = key.[n - 1 - i] in
    bit 0 <> '-' && bit 0 = bit 1 && bit 1 = bit 2
  in
  Printf.printf "%-36s %-10s %-12s %-10s\n" "stack" "qubits" "P(GHZ)" "microarch";
  List.iter
    (fun stack ->
      let run = Stack.execute ~shots:400 ~rng:(Rng.create 42) stack logic in
      let p = Stack.success_probability run ~accept:ghz_accept in
      Printf.printf "%-36s %-10d %-12.3f %-10s\n" stack.Stack.stack_name
        stack.Stack.platform.Platform.qubit_count p
        (match run.Stack.microarch_stats with Some _ -> "yes" | None -> "no"))
    [
      Stack.genome ~qubits:3 ();
      Stack.realistic_of (Stack.genome ~qubits:3 ());
      Stack.superconducting ();
    ];
  print_endline "(perfect stack verifies the logic; the real stack adds noise + timing)"

(* ------------------------------------------------------------------ *)
(* E3 — Figure 4: compiler infrastructure, pass-by-pass *)

let e3 () =
  header "E3" "Figure 4: OpenQL-style compiler, pass-by-pass statistics";
  let kernels =
    [
      Library.bell ();
      Library.ghz 8;
      Library.qft 5;
      Library.cuccaro_adder 3;
      Grover.circuit ~n_qubits:4 ~pattern:11;
    ]
  in
  List.iter
    (fun circuit ->
      let out = Compiler.compile Platform.superconducting_17 Compiler.Realistic circuit in
      print_string (Compiler.report out))
    kernels;
  (* Scheduling-policy ablation. *)
  print_endline "scheduling ablation (qft-5 on superconducting-17):";
  let qft = Decompose.run Platform.superconducting_17
      (Circuit.of_list 17 (Circuit.instructions (Library.qft 5)))
  in
  List.iter
    (fun (name, policy, limit) ->
      let s = Schedule.run ~policy ?max_parallel_two_qubit:limit Platform.superconducting_17 qft in
      Printf.printf "  %-22s makespan %-6d parallelism %-6.2f peak %d\n" name
        s.Schedule.makespan (Schedule.parallelism s) (Schedule.max_concurrency s))
    [
      ("asap", Schedule.Asap, None);
      ("alap", Schedule.Alap, None);
      ("asap, max 1x 2q gate", Schedule.Asap, Some 1);
      ("asap, max 2x 2q gate", Schedule.Asap, Some 2);
    ]

(* ------------------------------------------------------------------ *)
(* E4 — Figures 5-6: micro-architecture execution + retargeting *)

let e4 () =
  header "E4" "Figures 5-6: cycle-accurate micro-architecture, retargeting by config";
  let rb_circuit length =
    Rb.sequence_circuit (Rng.create 5) ~qubit:0 ~total_qubits:1 ~length
  in
  Printf.printf "%-16s %-8s %-9s %-10s %-11s %-10s %-11s\n" "technology" "rb-len" "bundles"
    "micro-ops" "total-ns" "peak-queue" "violations";
  List.iter
    (fun (name, platform, technology) ->
      List.iter
        (fun length ->
          let circuit =
            Circuit.of_list platform.Platform.qubit_count
              (Circuit.instructions (rb_circuit length))
          in
          let out = Compiler.compile platform Compiler.Real circuit in
          match out.Compiler.eqasm with
          | None -> ()
          | Some program ->
              let result = Controller.run technology program in
              let s = result.Controller.stats in
              Printf.printf "%-16s %-8d %-9d %-10d %-11d %-10d %-11d\n" name length
                s.Controller.bundles_issued s.Controller.micro_ops s.Controller.total_ns
                s.Controller.peak_queue_depth s.Controller.timing_violations)
        [ 4; 16; 64 ])
    [
      ("superconducting", Platform.superconducting_17, Controller.superconducting);
      ("semiconducting", Platform.semiconducting_4, Controller.semiconducting);
    ];
  print_endline
    "(same logic, same micro-architecture; only the configuration file and micro-code \
     table changed — the paper's retargeting claim)";
  (* Power-budget view (section 2.5 mentions power consumption): integrated
     pulse energy per technology for the same RB-64 run. *)
  Printf.printf "%-16s %-16s %-18s\n" "technology" "pulses-emitted" "pulse-energy (a.u.)";
  List.iter
    (fun (name, platform, technology) ->
      let circuit =
        Circuit.of_list platform.Platform.qubit_count
          (Circuit.instructions (rb_circuit 64))
      in
      let out = Compiler.compile platform Compiler.Real circuit in
      match out.Compiler.eqasm with
      | None -> ()
      | Some program ->
          let result = Controller.run technology program in
          let lib =
            if name = "semiconducting" then Qca_microarch.Adi.semiconducting_library ()
            else Qca_microarch.Adi.superconducting_library ()
          in
          let energy =
            List.fold_left
              (fun acc e ->
                match Qca_microarch.Adi.find lib e.Controller.pulse_name with
                | Some p -> acc +. Qca_microarch.Adi.energy p
                | None -> acc)
              0.0 result.Controller.trace
          in
          Printf.printf "%-16s %-16d %-18.1f\n" name (List.length result.Controller.trace)
            energy)
    [
      ("superconducting", Platform.superconducting_17, Controller.superconducting);
      ("semiconducting", Platform.semiconducting_4, Controller.semiconducting);
    ]

(* ------------------------------------------------------------------ *)
(* E5 — Section 2.7: QX scaling, "35 fully-entangled qubits on a laptop" *)

let e5 () =
  header "E5" "Section 2.7: QX state-vector scaling (GHZ, fully entangled)";
  Printf.printf "%-8s %-14s %-14s %-12s\n" "qubits" "memory" "time-s" "gates/s";
  let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0) in
  List.iter
    (fun n ->
      let t0 = Sys.time () in
      let result = Sim.run (Library.ghz n) in
      let dt = Sys.time () -. t0 in
      ignore (State.probability_of result.Sim.state 0);
      Printf.printf "%-8d %-14s %-14.4f %-12.0f\n" n
        (Printf.sprintf "%.1f MiB" (mib (State.memory_bytes n)))
        dt
        (float_of_int n /. Float.max 1e-9 dt))
    [ 8; 12; 16; 18; 20; 22; 24 ];
  Printf.printf "extrapolation: 35 qubits needs %.0f GiB of amplitudes "
    (float_of_int (State.memory_bytes 35) /. (1024.0 ** 3.0));
  print_endline "(the paper's laptop figure assumes single precision + compression;";
  print_endline " our double-precision engine reaches ~26-28 qubits per 16 GiB, same shape)";
  (* Shot batching: terminal measurements simulate once and sample, so a
     1000-shot histogram no longer costs 1000 state-vector evolutions. *)
  let circuit = measured_circuit (Library.ghz 16) in
  let result = Engine.run ~seed:42 ~shots:1000 circuit in
  let report = result.Engine.report in
  Printf.printf
    "engine: ghz-16 x 1000 shots -> plan=%s, simulate %.4fs + sample %.4fs, %d gate applies\n"
    (Engine.plan_to_string report.Engine.plan)
    report.Engine.wall.Engine.simulate_s report.Engine.wall.Engine.sample_s
    (List.fold_left (fun acc (_, c) -> acc + c) 0 report.Engine.gate_applies);
  print_endline "(run `bench/main.exe engine` for the sampled-vs-trajectory comparison)"

(* ------------------------------------------------------------------ *)
(* E6 — Section 2.7: error-rate sweep 1e-2 .. 1e-6 *)

let e6 () =
  header "E6" "Section 2.7: success probability vs error rate (1e-2 .. 1e-6)";
  let circuits =
    [ ("ghz-5", measured_circuit (Library.ghz 5), fun bits -> Array.for_all (fun b -> b = bits.(0)) bits);
      ("qft+iqft-4", measured_circuit (Circuit.append (Library.qft 4) (Library.qft_inverse 4)),
       fun bits -> Array.for_all (fun b -> b = 0) bits);
    ]
  in
  Printf.printf "%-12s" "rate";
  List.iter (fun (name, _, _) -> Printf.printf " %-12s" name) circuits;
  print_newline ();
  List.iter
    (fun p ->
      Printf.printf "%-12.0e" p;
      List.iter
        (fun (_, circuit, accept) ->
          let rng = Rng.create 11 in
          let success =
            Sim.success_probability ~noise:(Noise.depolarizing p) ~rng ~shots:1200 ~accept
              circuit
          in
          Printf.printf " %-12.4f" success)
        circuits;
      print_newline ())
    [ 1e-2; 3e-3; 1e-3; 1e-4; 1e-5; 1e-6 ];
  print_endline "(current hardware sits at the 1e-2/1e-3 rows; the paper asks what 1e-5/1e-6 buys)"

(* ------------------------------------------------------------------ *)
(* E7 — QEC: logical error rates and the >90% overhead claim *)

let e7 () =
  header "E7" "Sections 2.1/2.4: QEC — small codes vs Surface-17, overhead";
  let codes =
    [
      Code.bit_flip_repetition 3; Code.bit_flip_repetition 5; Code.steane;
      Code.surface_17; Code.rotated_surface 5;
    ]
  in
  let decoders = List.map (fun c -> (c, Decoder.build ~max_weight:(min 2 c.Code.distance) c)) codes in
  Printf.printf "%-12s" "p_physical";
  List.iter (fun c -> Printf.printf " %-16s" c.Code.name) codes;
  print_newline ();
  List.iter
    (fun p ->
      Printf.printf "%-12.0e" p;
      List.iter
        (fun (code, decoder) ->
          let rng = Rng.create 1301 in
          let rate = Decoder.logical_error_rate ~trials:20000 ~rng code decoder ~physical_error:p in
          Printf.printf " %-16.5f" rate)
        decoders;
      print_newline ())
    [ 3e-2; 1e-2; 3e-3; 1e-3; 3e-4 ];
  (* Circuit-level noise: faults inside the extraction circuit itself. *)
  print_endline "circuit-level (faulty CNOTs/preps/measurements, d rounds) vs code capacity:";
  Printf.printf "%-12s %-18s %-18s\n" "p" "surface17-capacity" "surface17-circuit";
  List.iter
    (fun p ->
      let code = Code.surface_17 in
      let decoder = Decoder.build code in
      let rng = Rng.create 4242 in
      let capacity =
        Decoder.logical_error_rate ~trials:12000 ~rng code decoder ~physical_error:p
      in
      let circuit =
        Qca_qec.Pauli_frame.logical_error_rate ~trials:12000 ~rng code decoder
          ~gate_error:p ~measurement_error:p
      in
      Printf.printf "%-12.0e %-18.5f %-18.5f\n" p capacity circuit)
    [ 1e-2; 3e-3; 1e-3; 3e-4 ];
  (* Faulty measurements: repeated extraction with majority vote. *)
  print_endline "with measurement errors (repetition-3, p=1e-2, majority over rounds):";
  List.iter
    (fun rounds ->
      let code = Code.bit_flip_repetition 3 in
      let decoder = Decoder.build code in
      let rng = Rng.create 7107 in
      let rate =
        Decoder.logical_error_rate_with_measurement ~trials:8000 ~rounds ~rng code decoder
          ~physical_error:0.01 ~measurement_error:0.05
      in
      Printf.printf "  rounds=%d  logical=%.5f\n" rounds rate)
    [ 1; 3; 5; 7 ];
  (* Overhead accounting. *)
  List.iter
    (fun (code, rounds) ->
      let o = Qec_experiment.overhead_of ~rounds_per_logical_op:rounds code in
      Printf.printf
        "%s: %d physical qubits/logical, %d QEC ops per round x%d, QEC share %.1f%%\n"
        code.Code.name o.Qec_experiment.physical_qubits o.Qec_experiment.qec_ops_per_round
        rounds
        (100.0 *. o.Qec_experiment.qec_fraction))
    [ (Code.bit_flip_repetition 3, 1); (Code.surface_17, 1); (Code.surface_17, 3) ];
  print_endline "(paper: guaranteeing fault tolerance \"can easily consume more than 90%\")"

(* ------------------------------------------------------------------ *)
(* E8 — Figure 7 / section 3.2: genome accelerator *)

let e8 () =
  header "E8" "Figure 7 / section 3.2: Grover read alignment vs classical scan";
  let rng = Rng.create 2020 in
  let reference = Dna.markov (Rng.create 7) 512 in
  let width = 12 in
  let db = Reference_db.build reference ~width in
  Printf.printf "reference %d bp -> %d entries, %d index qubits (+%d content)\n"
    (Dna.length reference) (Reference_db.size db) (Reference_db.index_qubits db)
    (Reference_db.content_qubits db);
  (* Alignment accuracy with read errors. *)
  List.iter
    (fun error_rate ->
      let reads =
        List.init 20 (fun i ->
            Dna.mutate rng ~rate:error_rate (Reference_db.entry db ((i * 23) mod Reference_db.size db)))
      in
      let reports, accuracy = Align.align_many ~rng db reads in
      let mean_success =
        List.fold_left (fun acc r -> acc +. r.Align.grover.Grover.success_probability) 0.0 reports
        /. float_of_int (List.length reports)
      in
      Printf.printf "read error %.2f: alignment accuracy %.2f, mean Grover success %.3f\n"
        error_rate accuracy mean_success)
    [ 0.0; 0.05; 0.10 ];
  (* Quadratic speedup shape. *)
  Printf.printf "\n%-10s %-14s %-14s %-10s\n" "entries" "classical" "grover" "speedup";
  List.iter
    (fun bits ->
      let n = 1 lsl bits in
      let classical = Classical_align.expected_queries_classical n in
      let grover = Grover.optimal_iterations ~matches:1 ~size:n in
      Printf.printf "%-10d %-14.0f %-14d %-10.1f\n" n classical grover
        (classical /. float_of_int grover))
    [ 8; 10; 12; 14; 16; 18; 20 ];
  Printf.printf "human-genome logical-qubit estimate: %d (paper: ~150)\n"
    (Align.human_genome_logical_qubit_estimate ());
  (* The other reconstruction mode of section 3.2: de novo assembly as
     graph-based combinatorial optimisation. *)
  print_endline "\nde novo assembly (shotgun reads, no reference):";
  Printf.printf "%-8s %-8s %-14s %-14s %-14s %-10s\n" "reads" "qubits" "greedy-overlap"
    "exact-overlap" "anneal-overlap" "recovered";
  List.iter
    (fun seed ->
      let reference = Qca_genome.Dna.markov (Rng.create (700 + seed)) 48 in
      let reads =
        Qca_genome.Assembly.shotgun (Rng.create (800 + seed)) ~reference ~read_length:14
          ~coverage:2.0
      in
      let g = Qca_genome.Assembly.greedy reads in
      let e = Qca_genome.Assembly.exact reads in
      let a = Qca_genome.Assembly.anneal ~rng:(Rng.create (900 + seed)) reads in
      let recovered =
        Qca_genome.Dna.to_string g.Qca_genome.Assembly.assembled
        = Qca_genome.Dna.to_string reference
        || Qca_genome.Dna.to_string e.Qca_genome.Assembly.assembled
           = Qca_genome.Dna.to_string reference
      in
      Printf.printf "%-8d %-8d %-14d %-14d %-14d %-10s\n" (Array.length reads)
        (Qca_genome.Assembly.qubits_needed (Array.length reads))
        g.Qca_genome.Assembly.total_overlap e.Qca_genome.Assembly.total_overlap
        a.Qca_genome.Assembly.total_overlap
        (if recovered then "yes" else "partial"))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E9 — Figure 9: four-city TSP on every backend *)

let e9 () =
  header "E9" "Figure 9: 4-city Dutch TSP, 16-qubit QUBO, all backends";
  let t = Tsp.netherlands () in
  let tour_str tour =
    tour |> Array.to_list |> List.map (fun c -> t.Tsp.cities.(c)) |> String.concat "->"
  in
  let optimal_tour, optimal_cost = Exact.enumerate t in
  Printf.printf "exact optimum %.4f (paper: 1.42): %s\n" optimal_cost (tour_str optimal_tour);
  let q = Encode.to_qubo t in
  Printf.printf "QUBO: %d variables (paper: 16)\n" (Qubo.size q);
  Printf.printf "%-22s %-10s %-8s\n" "backend" "cost" "optimal?";
  let record name bits =
    let tour =
      match Encode.decode t bits with
      | Some tour -> tour
      | None -> Encode.decode_with_repair t bits
    in
    let cost = Tsp.tour_cost t tour in
    Printf.printf "%-22s %-10.4f %-8s\n" name cost
      (if Float.abs (cost -. optimal_cost) < 1e-9 then "yes" else "no")
  in
  let rng = Rng.create 1234 in
  let sa_bits, _ =
    Sa.minimize_qubo ~params:{ Sa.default_params with Sa.restarts = 8 } ~rng q
  in
  record "simulated annealing" sa_bits;
  let sa_geo_bits, _ =
    Sa.minimize_qubo
      ~params:{ Sa.sweeps = 1500; schedule = Sa.Geometric (0.05, 1.005); restarts = 6 }
      ~rng q
  in
  record "SA (geometric)" sa_geo_bits;
  let sqa_bits, _ =
    Sqa.minimize_qubo ~params:{ Sqa.default_params with Sqa.sweeps = 1200; restarts = 4 } ~rng q
  in
  record "simulated quantum" sqa_bits;
  let da = Digital_annealer.minimize ~steps:4000 ~rng q in
  record "digital annealer" da.Digital_annealer.bits;
  let qaoa_bits, _ = Qaoa.solve_qubo ~layers:2 ~restarts:3 ~shots:4096 ~rng q in
  record "QAOA p=2 (gate)" qaoa_bits;
  let _, nn_cost = Heuristic.nearest_neighbour_two_opt t in
  Printf.printf "%-22s %-10.4f %-8s\n" "NN + 2-opt (classic)" nn_cost
    (if Float.abs (nn_cost -. optimal_cost) < 1e-9 then "yes" else "no");
  (* Annealing-budget ablation: probability of hitting the optimum vs sweeps
     (the time-to-solution view of the same 16-qubit QUBO). *)
  print_endline "success probability vs annealing budget (20 runs each):";
  Printf.printf "%-10s %-12s %-12s\n" "sweeps" "SA-linear" "SA-geometric";
  List.iter
    (fun sweeps ->
      let hit schedule seed =
        let params = { Sa.sweeps; schedule; restarts = 1 } in
        let bits, _ = Sa.minimize_qubo ~params ~rng:(Rng.create seed) q in
        match Encode.decode t bits with
        | Some tour -> Float.abs (Tsp.tour_cost t tour -. optimal_cost) < 1e-9
        | None -> false
      in
      let rate schedule =
        let hits = ref 0 in
        for seed = 1 to 20 do
          if hit schedule (1000 + (seed * 17) + sweeps) then incr hits
        done;
        float_of_int !hits /. 20.0
      in
      Printf.printf "%-10d %-12.2f %-12.2f\n" sweeps
        (rate (Sa.Linear (0.1, 5.0)))
        (rate (Sa.Geometric (0.05, 1.01))))
    [ 20; 50; 100; 300; 1000 ]

(* ------------------------------------------------------------------ *)
(* E10 — Section 3.3: capacity comparison (9 / 90 / 85900, n^2 growth) *)

let e10 () =
  header "E10" "Section 3.3: annealer capacity (qubits grow as n^2)";
  Printf.printf "%-8s %-10s %-22s %-18s\n" "cities" "qubits" "2000Q-embedding" "chain-stats";
  let max_embedded = ref 0 in
  List.iter
    (fun cities ->
      let qubits = Encode.qubits_needed cities in
      let t = Tsp.random (Rng.create (50 + cities)) cities in
      let q = Encode.to_qubo t in
      let logical = Qubo.interaction_graph q in
      let rng = Rng.create (900 + cities) in
      match Embedding.embed_in_chimera ~tries:4 ~rng ~m:16 logical with
      | Some (e, method_used) ->
          max_embedded := cities;
          Printf.printf "%-8d %-10d %-22s used=%d max-chain=%d\n" cities qubits
            (match method_used with
            | Embedding.Heuristic -> "yes (heuristic)"
            | Embedding.Clique -> "yes (clique)")
            e.Embedding.physical_used e.Embedding.max_chain_length
      | None -> Printf.printf "%-8d %-10d %-22s\n" cities qubits "no (embedding failed)")
    [ 4; 5; 6; 7; 8; 9; 10; 11 ];
  Printf.printf
    "largest embeddable on ideal C16: %d cities (paper: 9 with minorminer, fails at 10)\n"
    !max_embedded;
  Printf.printf "clique-embedding guarantee on C16: K%d -> %d cities\n"
    (Chimera.max_clique_minor 16 - 1)
    (Embedding.max_clique_cities ~m:16);
  Printf.printf "Fujitsu DA (8192 fully connected): %d cities (paper: 90)\n"
    (Digital_annealer.max_tsp_cities ());
  print_endline "classical exact record cited by the paper (branch and bound): 85900 cities"

(* ------------------------------------------------------------------ *)
(* E11 — Figure 10: TRL projections *)

let e11 () =
  header "E11" "Figure 10: TRL development projections, both tracks";
  Printf.printf "%-6s %-14s %-12s %s\n" "year" "accelerator" "chip" "phase";
  List.iter
    (fun (year, a, c, phase) ->
      Printf.printf "%-6d %-14.2f %-12.2f %s\n" year a c (Trl.phase_to_string phase))
    (Trl.table ~first_year:2019 ~last_year:2035);
  Printf.printf "accelerator track reaches TRL %.0f in %.1f; chip track in %.1f\n"
    Trl.adoption_threshold
    (Trl.year_reaching Trl.Accelerator_logic ~level:Trl.adoption_threshold)
    (Trl.year_reaching Trl.Quantum_chip ~level:Trl.adoption_threshold)

(* ------------------------------------------------------------------ *)
(* E12 — Section 3.1: randomised benchmarking *)

let e12 () =
  header "E12" "Section 3.1: randomised benchmarking decay";
  List.iter
    (fun (name, noise) ->
      let rng = Rng.create 77 in
      let decay =
        Rb.run ~lengths:[ 1; 2; 4; 8; 16; 32; 64 ] ~sequences:6 ~shots:128 ~noise ~rng ()
      in
      Printf.printf "%s:\n  m:        " name;
      List.iter (fun p -> Printf.printf "%8d" p.Rb.sequence_length) decay.Rb.points;
      Printf.printf "\n  survival: ";
      List.iter (fun p -> Printf.printf "%8.3f" p.Rb.survival) decay.Rb.points;
      Printf.printf "\n  fit p = %.5f -> error/Clifford = %.5f\n" decay.Rb.p
        decay.Rb.error_per_clifford)
    [
      ("depolarizing 1e-3 (paper's ~0.1% rate)", Noise.depolarizing 0.001);
      ("superconducting model (gates + T1/T2 + readout)", Noise.superconducting);
    ];
  (* Two-qubit RB (the paper benchmarks "one or two qubits"). *)
  let rng = Rng.create 78 in
  let decay2 =
    Qca.Rb2.run ~lengths:[ 1; 2; 4; 8; 16 ] ~sequences:4 ~shots:64
      ~noise:(Noise.depolarizing 0.002) ~rng ()
  in
  Printf.printf "two-qubit RB (11520-element Clifford group, depolarizing 2e-3):\n  m:        ";
  List.iter (fun (m, _) -> Printf.printf "%8d" m) decay2.Qca.Rb2.points;
  Printf.printf "\n  survival: ";
  List.iter (fun (_, s) -> Printf.printf "%8.3f" s) decay2.Qca.Rb2.points;
  Printf.printf "\n  fit p = %.5f -> error/2q-Clifford = %.5f (avg %.1f gates per Clifford)\n"
    decay2.Qca.Rb2.p decay2.Qca.Rb2.error_per_clifford
    (Qca.Rb2.average_gate_count ())

(* ------------------------------------------------------------------ *)
(* E13 — Section 2.6: mapping and routing overhead *)

let e13 () =
  header "E13" "Section 2.6: placement & routing overhead (NN topology vs all-to-all)";
  let grid17 = Platform.superconducting_17 in
  let free17 = Platform.perfect 17 in
  let benchmarks =
    [
      ("ghz-8", Library.ghz 8);
      ("qft-5", Library.qft 5);
      ("adder-3", Library.cuccaro_adder 3);
      ("random-10x60", Library.random_circuit (Rng.create 404) ~qubits:10 ~gates:60);
    ]
  in
  Printf.printf "%-14s %-10s %-12s %-12s %-12s %-12s\n" "kernel" "2q-gates" "swaps-greedy"
    "swaps-look4" "gate-ovh" "latency-ovh";
  List.iter
    (fun (name, circuit) ->
      let widened = Circuit.of_list 17 (Circuit.instructions circuit) in
      let lowered = Decompose.run { grid17 with Platform.primitives = "swap" :: grid17.Platform.primitives } widened in
      let greedy = Mapping.run ~strategy:Mapping.Greedy grid17 lowered in
      let look = Mapping.run ~strategy:(Mapping.Lookahead 4) grid17 lowered in
      let gate_ovh, latency_ovh = Mapping.overhead grid17 greedy ~original:lowered in
      ignore free17;
      Printf.printf "%-14s %-10d %-12d %-12d %-12.2f %-12.2f\n" name
        (Circuit.two_qubit_gate_count lowered)
        greedy.Mapping.swaps_added look.Mapping.swaps_added gate_ovh latency_ovh)
    benchmarks;
  (* Placement ablation. *)
  print_endline "placement ablation (random-10x60):";
  let circuit = Library.random_circuit (Rng.create 404) ~qubits:10 ~gates:60 in
  let widened = Circuit.of_list 17 (Circuit.instructions circuit) in
  let lowered =
    Decompose.run { grid17 with Platform.primitives = "swap" :: grid17.Platform.primitives } widened
  in
  List.iter
    (fun (name, placement) ->
      let r = Mapping.run ~placement grid17 lowered in
      Printf.printf "  %-12s swaps=%d\n" name r.Mapping.swaps_added)
    [ ("trivial", Mapping.Trivial); ("by-degree", Mapping.By_degree) ];
  print_endline "(all-to-all / perfect qubits need 0 swaps by definition)";
  (* Section 5: qubit routing as in-memory computing. *)
  print_endline "section 5: data movements per architecture (qft-5 workload on the 17q grid):";
  let pressure = Qca.In_memory.measure_routing grid17 (Library.qft 5) in
  let workload =
    {
      Qca.In_memory.operations = pressure.Qca.In_memory.two_qubit_gates;
      operands_per_op = 2;
      locality = pressure.Qca.In_memory.locality_measured;
    }
  in
  List.iter
    (fun (name, moves) -> Printf.printf "  %-28s %8.1f movements\n" name moves)
    (Qca.In_memory.comparison_table workload
       ~movement_per_distant_op:pressure.Qca.In_memory.swaps_per_interaction);
  Printf.printf
    "  measured: %d 2q interactions, %d swaps, locality %.2f, %.2f swaps/interaction\n"
    pressure.Qca.In_memory.two_qubit_gates pressure.Qca.In_memory.swaps_inserted
    pressure.Qca.In_memory.locality_measured pressure.Qca.In_memory.swaps_per_interaction

let all = [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13 ]

let by_id =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
  ]
