(* Benchmark harness: `dune exec bench/main.exe` prints every experiment
   table (E1-E13, one per paper figure/claim) and then runs the Bechamel
   micro-benchmarks (one Test.make per experiment family).

   `dune exec bench/main.exe -- e9` runs a single experiment;
   `dune exec bench/main.exe -- micro` runs only the micro-benchmarks;
   `dune exec bench/main.exe -- engine` compares the engine's sampled and
   trajectory plans on 1000-shot GHZ histograms and writes
   BENCH_engine.json;
   `dune exec bench/main.exe -- resilience` measures the cost of the fault
   injection hooks when injection is disabled and writes
   BENCH_resilience.json;
   `dune exec bench/main.exe -- kernels` measures the seed state-vector
   kernels against the mask-specialised, fused and parallel ones and
   writes BENCH_kernels.json;
   `dune exec bench/main.exe -- plan` measures the simulation planner's
   Clifford tableau fast path against forced state-vector trajectories and
   the batched-trajectory scaling curve, and writes BENCH_plan.json;
   `dune exec bench/main.exe -- lint` measures static-checker throughput
   and the pass-verifier's compile-time overhead and writes
   BENCH_lint.json;
   `dune exec bench/main.exe -- service` measures multi-tenant job-service
   throughput (distinct vs digest-shared vs cache-hit workloads) and
   writes BENCH_service.json;
   `dune exec bench/main.exe -- estimate` measures static-estimator
   throughput (flat and symbolic) and the admission oracle's overhead on
   cache-hot submissions, and writes BENCH_estimate.json. *)

open Bechamel

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Sim = Qca_qx.Sim
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Code = Qca_qec.Code
module Decoder = Qca_qec.Decoder
module Tableau = Qca_qec.Tableau
module Pauli = Qca_qec.Pauli
module Sa = Qca_anneal.Sa
module Chimera = Qca_anneal.Chimera
module Embedding = Qca_anneal.Embedding
module Qaoa = Qca_qaoa.Qaoa
module Ising = Qca_anneal.Ising
module Grover = Qca_genome.Grover
module Tsp = Qca_tsp.Tsp
module Exact = Qca_tsp.Exact
module Encode = Qca_tsp.Encode
module Rng = Qca_util.Rng

(* --- one Bechamel test per experiment family --- *)

let micro_tests () =
  let rng = Rng.create 9 in
  let park = Qca.Accelerator.default_park () in
  let tasks = [ Qca.Host.Classical ("c", 10.0); Qca.Host.Offload ("gpu0", "k", 50.0, "") ] in
  let t_e1 =
    Test.make ~name:"e1-host-offload"
      (Staged.stage (fun () -> Qca.Host.run ~accelerators:park tasks))
  in
  let t_e5 =
    Test.make ~name:"e5-ghz16-statevector" (Staged.stage (fun () -> Sim.run (Library.ghz 16)))
  in
  let qft5 = Library.qft 5 in
  let t_e3 =
    Test.make ~name:"e3-compile-qft5-realistic"
      (Staged.stage (fun () ->
           Compiler.compile Platform.superconducting_17 Compiler.Realistic qft5))
  in
  let bell_eqasm =
    let circuit =
      Circuit.append (Library.bell ())
        (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
    in
    match
      (Compiler.compile Platform.superconducting_17 Compiler.Real circuit).Compiler.eqasm
    with
    | Some p -> p
    | None -> assert false
  in
  let t_e4 =
    Test.make ~name:"e4-microarch-bell"
      (Staged.stage (fun () ->
           Qca_microarch.Controller.run Qca_microarch.Controller.superconducting bell_eqasm))
  in
  let noisy = Qca_qx.Noise.depolarizing 0.001 in
  let ghz5 = Library.ghz 5 in
  let t_e6 =
    Test.make ~name:"e6-noisy-ghz5-shot"
      (Staged.stage (fun () -> Sim.run ~noise:noisy ~rng ghz5))
  in
  let surface = Code.surface_17 in
  let decoder = Decoder.build surface in
  let t_e7_decode =
    Test.make ~name:"e7-surface17-decode"
      (Staged.stage (fun () ->
           let e = Pauli.depolarizing_error rng 9 0.01 in
           Decoder.decode_outcome surface decoder e))
  in
  let prepared = Qca_qec.Qec_experiment.prepare_logical_zero surface (Rng.create 3) in
  let t_e7_tableau =
    Test.make ~name:"e7-tableau-syndrome-round"
      (Staged.stage (fun () ->
           let t = Tableau.copy prepared in
           Qca_qec.Qec_experiment.extract_syndrome surface t rng))
  in
  let t_e8 =
    Test.make ~name:"e8-grover-10q"
      (Staged.stage (fun () -> Grover.success_after ~n_qubits:10 ~oracle:(fun k -> k = 37) 3))
  in
  let tsp_qubo = Encode.to_qubo (Tsp.netherlands ()) in
  let sa_params = { Sa.default_params with Sa.sweeps = 200; restarts = 1 } in
  let t_e9_sa =
    Test.make ~name:"e9-sa-tsp16"
      (Staged.stage (fun () -> Sa.minimize_qubo ~params:sa_params ~rng tsp_qubo))
  in
  let model, _ = Ising.of_qubo tsp_qubo in
  let params = { Qaoa.gammas = [| 0.4 |]; betas = [| 0.3 |] } in
  let t_e9_qaoa =
    Test.make ~name:"e9-qaoa-expectation-16q"
      (Staged.stage (fun () -> Qaoa.expectation model params))
  in
  let k6 = Qca_util.Graph.complete 6 (fun _ _ -> 1.0) in
  let c4 = Chimera.graph 4 in
  let t_e10 =
    Test.make ~name:"e10-embed-k6-c4"
      (Staged.stage (fun () -> Embedding.embed ~tries:4 ~rng ~logical:k6 c4))
  in
  let tsp12 = Tsp.random (Rng.create 5) 12 in
  let t_e11 =
    Test.make ~name:"e11-held-karp-12" (Staged.stage (fun () -> Exact.held_karp tsp12))
  in
  let t_e12 =
    Test.make ~name:"e12-rb-seq16"
      (Staged.stage (fun () ->
           Sim.run ~noise:noisy ~rng
             (Qca.Rb.sequence_circuit rng ~qubit:0 ~total_qubits:1 ~length:16)))
  in
  let routed_input =
    Qca_compiler.Decompose.run
      {
        Platform.superconducting_17 with
        Platform.primitives = "swap" :: Platform.superconducting_17.Platform.primitives;
      }
      (Circuit.of_list 17
         (Circuit.instructions (Library.random_circuit (Rng.create 404) ~qubits:10 ~gates:60)))
  in
  let t_e13 =
    Test.make ~name:"e13-route-random10x60"
      (Staged.stage (fun () -> Qca_compiler.Mapping.run Platform.superconducting_17 routed_input))
  in
  [
    t_e1; t_e3; t_e4; t_e5; t_e6; t_e7_decode; t_e7_tableau; t_e8; t_e9_sa; t_e9_qaoa;
    t_e10; t_e11; t_e12; t_e13;
  ]

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks (time per run, OLS fit) ===";
  let tests = micro_tests () in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"qca" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some [ e ] -> e | Some _ | None -> nan
      in
      rows := (name, estimate) :: !rows)
    results;
  Printf.printf "%-40s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-40s %16s\n" name human)
    (List.sort compare !rows)

(* --- engine shot-sampling benchmark (BENCH_engine.json) --- *)

let run_engine () =
  let module Engine = Qca_qx.Engine in
  print_endline "=== Engine shot sampling: sampled vs trajectory plan (GHZ + measure) ===";
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Float.max 1e-9 (Sys.time () -. t0))
  in
  (* Trajectory shots shrink with n (each shot is a full state-vector
     evolution); rates are per-shot, so the speedup column still compares
     like with like. *)
  let rows =
    List.map
      (fun (n, shots, traj_shots) ->
        let circuit =
          Circuit.append (Library.ghz n)
            (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
        in
        let result, sampled_s = time (fun () -> Qca_qx.Engine.run ~seed:42 ~shots circuit) in
        let _, traj_s =
          time (fun () ->
              Qca_qx.Engine.run ~seed:42 ~plan:Engine.Trajectory ~shots:traj_shots circuit)
        in
        let sampled_rate = float_of_int shots /. sampled_s in
        let traj_rate = float_of_int traj_shots /. traj_s in
        let speedup = sampled_rate /. traj_rate in
        Printf.printf
          "n=%-3d plan=%-8s sampled %d shots in %.4fs (%.0f sh/s) | trajectory %d shots \
           in %.4fs (%.0f sh/s) | speedup %.1fx\n"
          n
          (Engine.plan_to_string result.Engine.report.Engine.plan)
          shots sampled_s sampled_rate traj_shots traj_s traj_rate speedup;
        (n, shots, sampled_s, sampled_rate, traj_shots, traj_s, traj_rate, speedup))
      [ (10, 1000, 200); (16, 1000, 50); (20, 1000, 10) ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc "{\"benchmark\":\"engine-shot-sampling\",\"circuit\":\"ghz+measure\",";
  output_string oc "\"entries\":[";
  List.iteri
    (fun i (n, shots, sampled_s, sampled_rate, traj_shots, traj_s, traj_rate, speedup) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"n\":%d,\"shots\":%d,\"sampled_s\":%.6f,\"sampled_shots_per_s\":%.1f,\"trajectory_shots\":%d,\"trajectory_s\":%.6f,\"trajectory_shots_per_s\":%.1f,\"speedup\":%.2f}"
           n shots sampled_s sampled_rate traj_shots traj_s traj_rate speedup))
    rows;
  output_string oc "]}\n";
  close_out oc;
  print_endline "wrote BENCH_engine.json"

(* --- resilience overhead benchmark (BENCH_resilience.json) --- *)

let run_resilience () =
  let module Engine = Qca_qx.Engine in
  let module Fault = Qca_util.Fault in
  let module Controller = Qca_microarch.Controller in
  print_endline "=== Resilience: fault-hook overhead with injection disabled ===";
  (* Best-of-N wall times: the comparison is absent hooks (no [?faults])
     vs attached-but-silent hooks (an injector with every rate 0.0). *)
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 7 do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  let bell_program =
    let circuit =
      Circuit.append (Library.bell ())
        (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
    in
    match
      (Compiler.compile Platform.superconducting_17 Compiler.Real circuit).Compiler.eqasm
    with
    | Some p -> p
    | None -> assert false
  in
  let shots = 400 in
  let micro_base =
    time_best (fun () ->
        Controller.run_shots ~seed:7 ~shots Controller.superconducting bell_program)
  in
  let micro_off =
    time_best (fun () ->
        Controller.run_shots ~seed:7 ~shots ~faults:(Fault.make Fault.off)
          Controller.superconducting bell_program)
  in
  let ghz =
    Circuit.append (Library.ghz 10)
      (Circuit.of_list 10 (List.init 10 (fun q -> Gate.Measure q)))
  in
  let engine_base =
    time_best (fun () -> Engine.run ~seed:7 ~plan:Engine.Trajectory ~shots:100 ghz)
  in
  let engine_off =
    time_best (fun () ->
        Engine.run ~seed:7 ~plan:Engine.Trajectory ~shots:100
          ~faults:(Fault.make Fault.off) ghz)
  in
  let pct base off = 100.0 *. ((off -. base) /. base) in
  let report name base off =
    Printf.printf "%-28s baseline %.4fs | hooks-off %.4fs | overhead %+.2f%%\n" name base
      off (pct base off)
  in
  report "microarch-bell-400shots" micro_base micro_off;
  report "engine-trajectory-ghz10" engine_base engine_off;
  let oc = open_out "BENCH_resilience.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"resilience-disabled-overhead\",\"threshold_pct\":5.0,\"entries\":[{\"name\":\"microarch-bell-400shots\",\"baseline_s\":%.6f,\"hooks_off_s\":%.6f,\"overhead_pct\":%.2f},{\"name\":\"engine-trajectory-ghz10\",\"baseline_s\":%.6f,\"hooks_off_s\":%.6f,\"overhead_pct\":%.2f}]}\n"
       micro_base micro_off (pct micro_base micro_off) engine_base engine_off
       (pct engine_base engine_off));
  close_out oc;
  print_endline "wrote BENCH_resilience.json"

(* --- tracing overhead benchmark (BENCH_trace.json) --- *)

let run_trace () =
  let module Engine = Qca_qx.Engine in
  let module Controller = Qca_microarch.Controller in
  let module Trace = Qca_util.Trace in
  print_endline "=== Trace: span/counter hook overhead (disabled vs collecting) ===";
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 7 do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  (* The disabled hooks are compiled in unconditionally, so their cost can't
     be timed by diffing two workload runs (it is below timer noise). Instead
     measure the disabled-path primitive directly — [with_span] +
     [add_counter] with no sink, [iters] times against an empty loop — and
     scale by the number of hook operations the workload actually performs
     (the collector's [event_count] from an enabled run). *)
  let hook_ns =
    let iters = 5_000_000 in
    let empty =
      time_best (fun () ->
          for _ = 1 to iters do
            ignore (Sys.opaque_identity ())
          done)
    in
    let hooks =
      time_best (fun () ->
          for _ = 1 to iters do
            Trace.with_span "bench.hook" (fun sp ->
                Trace.annotate sp (fun () -> [ ("k", Trace.Int 1) ]);
                Trace.add_counter "bench.counter" 1)
          done)
    in
    Float.max 0.0 (hooks -. empty) /. float_of_int iters *. 1e9
  in
  Printf.printf "disabled hook primitive: %.1f ns per span+counter op\n" hook_ns;
  let bell_program =
    let circuit =
      Circuit.append (Library.bell ())
        (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
    in
    match
      (Compiler.compile Platform.superconducting_17 Compiler.Real circuit).Compiler.eqasm
    with
    | Some p -> p
    | None -> assert false
  in
  let ghz =
    Circuit.append (Library.ghz 10)
      (Circuit.of_list 10 (List.init 10 (fun q -> Gate.Measure q)))
  in
  let qft5 = Library.qft 5 in
  let workloads =
    [
      ( "microarch-bell-400shots",
        fun () ->
          ignore (Controller.run_shots ~seed:7 ~shots:400 Controller.superconducting
                    bell_program) );
      ( "engine-trajectory-ghz10",
        fun () -> ignore (Engine.run ~seed:7 ~plan:Engine.Trajectory ~shots:100 ghz) );
      ( "engine-sampled-ghz10",
        fun () -> ignore (Engine.run ~seed:7 ~shots:1000 ghz) );
      ( "compile-qft5-real",
        fun () ->
          ignore (Compiler.compile Platform.superconducting_17 Compiler.Real qft5) );
    ]
  in
  let rows =
    List.map
      (fun (name, work) ->
        let disabled_s = time_best work in
        let enabled_s =
          time_best (fun () -> Trace.collecting (Trace.make_collector ()) work)
        in
        let trace_ops =
          let c = Trace.make_collector () in
          Trace.collecting c work;
          Trace.event_count c
        in
        let enabled_pct = 100.0 *. ((enabled_s -. disabled_s) /. disabled_s) in
        (* Cost of the compiled-in hooks when no sink is installed, as a
           fraction of the untraced run: ops x per-op disabled cost. *)
        let disabled_pct =
          float_of_int trace_ops *. hook_ns /. (disabled_s *. 1e9) *. 100.0
        in
        Printf.printf
          "%-26s untraced %.4fs | collecting %.4fs (%+.1f%%) | %d hook ops -> \
           disabled overhead %.3f%%\n"
          name disabled_s enabled_s enabled_pct trace_ops disabled_pct;
        (name, disabled_s, enabled_s, enabled_pct, trace_ops, disabled_pct))
      workloads
  in
  let worst =
    List.fold_left (fun acc (_, _, _, _, _, pct) -> Float.max acc pct) 0.0 rows
  in
  Printf.printf "worst disabled overhead: %.3f%% (threshold 3%%)\n" worst;
  let oc = open_out "BENCH_trace.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"trace-disabled-overhead\",\"threshold_pct\":3.0,\"hook_ns\":%.2f,\"worst_disabled_overhead_pct\":%.4f,\"entries\":["
       hook_ns worst);
  List.iteri
    (fun i (name, disabled_s, enabled_s, enabled_pct, trace_ops, disabled_pct) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"disabled_s\":%.6f,\"enabled_s\":%.6f,\"enabled_overhead_pct\":%.2f,\"trace_ops\":%d,\"disabled_overhead_pct\":%.4f}"
           name disabled_s enabled_s enabled_pct trace_ops disabled_pct))
    rows;
  output_string oc "]}\n";
  close_out oc;
  print_endline "wrote BENCH_trace.json"

(* --- state-vector kernel benchmark (BENCH_kernels.json) --- *)

let run_kernels () =
  let module State = Qca_qx.State in
  let module Engine = Qca_qx.Engine in
  let module Parallel = Qca_util.Parallel in
  print_endline
    "=== Kernels: seed vs specialised vs fused vs parallel (ns per amplitude per run) ===";
  let time_best ?(reps = 5) f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  let prepared n =
    let s = State.create n in
    for q = 0 to n - 1 do
      State.apply s Gate.H [| q |]
    done;
    s
  in
  (* Each gate class is a run of 8 gates; the timed unit applies the whole
     run [inner] times so the smallest states still get past timer
     resolution. ns/amp is per one application of the run, so a fused
     single-sweep execution shows up directly against 8 seed sweeps. *)
  let classes =
    [
      ("h8", List.init 8 (fun _ -> (Gate.H, [| 0 |])));
      ("t8", List.init 8 (fun _ -> (Gate.T, [| 0 |])));
      ("rz8", List.init 8 (fun i -> (Gate.Rz (0.1 *. float_of_int (i + 1)), [| 0 |])));
      ("cnot8", List.init 8 (fun i -> (Gate.Cnot, [| i mod 2; 2 |])));
      ( "diag8",
        [
          (Gate.T, [| 0 |]); (Gate.Rz 0.3, [| 0 |]); (Gate.Cz, [| 0; 1 |]);
          (Gate.Cphase 0.7, [| 1; 2 |]); (Gate.Tdag, [| 1 |]); (Gate.Rz 0.5, [| 2 |]);
          (Gate.Cz, [| 0; 2 |]); (Gate.S, [| 0 |]);
        ] );
    ]
  in
  let saved_threshold = Parallel.threshold_qubits () in
  let diag_n20_speedup = ref 0.0 in
  let rows =
    List.concat_map
      (fun n ->
        let dim = 1 lsl n in
        let inner = max 1 ((1 lsl 23) / dim) in
        let per_amp seconds = seconds /. float_of_int (inner * dim) *. 1e9 in
        List.map
          (fun (name, run) ->
            let steps, _ =
              Engine.compile_steps ~fusion:true
                (List.map (fun (u, ops) -> Gate.Unitary (u, ops)) run)
            in
            let kernels =
              List.filter_map
                (function Engine.Kernel k -> Some k | Engine.Instr _ -> None)
                steps
            in
            let s = prepared n in
            let loop apply_run () =
              for _ = 1 to inner do
                apply_run ()
              done
            in
            let seed_s =
              time_best
                (loop (fun () ->
                     List.iter (fun (u, ops) -> State.Reference.apply s u ops) run))
            in
            let spec_s =
              time_best
                (loop (fun () -> List.iter (fun (u, ops) -> State.apply s u ops) run))
            in
            let fused_run () = List.iter (Engine.apply_kernel s) kernels in
            let fused_s = time_best (loop fused_run) in
            Parallel.set_threshold_qubits 0;
            let par_s = time_best (loop fused_run) in
            Parallel.set_threshold_qubits saved_threshold;
            let speedup = per_amp seed_s /. per_amp fused_s in
            if name = "diag8" && n = 20 then diag_n20_speedup := speedup;
            Printf.printf
              "n=%-3d %-6s seed %7.2f | specialised %7.2f | fused %7.2f | parallel \
               %7.2f ns/amp | fused speedup %.2fx\n"
              n name (per_amp seed_s) (per_amp spec_s) (per_amp fused_s)
              (per_amp par_s) speedup;
            (name, n, per_amp seed_s, per_amp spec_s, per_amp fused_s, per_amp par_s,
             speedup))
          classes)
      [ 10; 16; 20; 22 ]
  in
  (* End-to-end: full circuits through the seed kernels vs the compiled
     fused plan (state allocation included on both sides). *)
  let end_to_end =
    List.map
      (fun (name, circuit) ->
        let unitaries =
          List.filter_map
            (function Gate.Unitary (u, ops) -> Some (u, ops) | _ -> None)
            (Circuit.instructions circuit)
        in
        let steps, _ =
          Engine.compile_steps ~fusion:true (Circuit.instructions circuit)
        in
        let kernels =
          List.filter_map
            (function Engine.Kernel k -> Some k | Engine.Instr _ -> None)
            steps
        in
        let n = Circuit.qubit_count circuit in
        let seed_s =
          time_best (fun () ->
              let s = State.create n in
              List.iter (fun (u, ops) -> State.Reference.apply s u ops) unitaries)
        in
        let fused_s =
          time_best (fun () ->
              let s = State.create n in
              List.iter (Engine.apply_kernel s) kernels)
        in
        let speedup = seed_s /. fused_s in
        Printf.printf "%-8s seed %.4fs | fused plan %.4fs | speedup %.2fx\n" name
          seed_s fused_s speedup;
        (name, seed_s, fused_s, speedup))
      [ ("ghz-20", Library.ghz 20); ("qft-16", Library.qft 16) ]
  in
  Printf.printf "diag-heavy n=20 fused-vs-seed speedup: %.2fx (target 2x)\n"
    !diag_n20_speedup;
  let oc = open_out "BENCH_kernels.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"state-vector-kernels\",\"unit\":\"ns_per_amplitude_per_run\",\"domains\":%d,\"threshold_qubits\":%d,\"diag_n20_speedup_fused_vs_seed\":%.2f,\"gate_classes\":["
       (Parallel.domain_count ()) saved_threshold !diag_n20_speedup);
  List.iteri
    (fun i (name, n, seed, spec, fused, par, speedup) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"n\":%d,\"seed\":%.3f,\"specialised\":%.3f,\"fused\":%.3f,\"parallel\":%.3f,\"speedup_fused_vs_seed\":%.2f}"
           name n seed spec fused par speedup))
    rows;
  output_string oc "],\"end_to_end\":[";
  List.iteri
    (fun i (name, seed_s, fused_s, speedup) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"seed_s\":%.6f,\"fused_s\":%.6f,\"speedup\":%.2f}" name
           seed_s fused_s speedup))
    end_to_end;
  output_string oc "]}\n";
  close_out oc;
  print_endline "wrote BENCH_kernels.json"

(* --- simulation-planner benchmark (BENCH_plan.json) --- *)

let run_plan () =
  let module Engine = Qca_qx.Engine in
  let module Parallel = Qca_util.Parallel in
  print_endline
    "=== Simulation planner: Clifford tableau fast path + batched trajectories ===";
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Float.max 1e-9 (Sys.time () -. t0))
  in
  let measured n base =
    Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
  in
  let canon h = List.sort compare h in
  (* Clifford-heavy suites: the planner's automatic choice (tableau) against
     the forced single-threaded state-vector trajectory plan — the
     pre-planner path for these feedback/mid-measurement shapes. Trajectory
     shots shrink with n (each shot is a full state-vector evolution); rates
     are per shot, so the speedup column compares like with like. The
     bit-identity column re-runs the auto plan at the trajectory arm's shot
     count and seed and demands the identical histogram. *)
  let suites =
    [
      (* |+> payload keeps the chain all-Clifford (the library default
         teleports an Ry-prepared state). *)
      ( "teleport-x64",
        Circuit.repeat 64 (Library.teleport ~prepare:Gate.H ()),
        1024, 512 );
      ("qec-surface17-r2", Qca.Qec_run.cycle_circuit ~rounds:2 Code.surface_17, 1024, 8);
      ("ghz-22", measured 22 (Library.ghz 22), 1024, 4);
    ]
  in
  let saved_domains = Parallel.domain_count () in
  let clifford_rows =
    List.map
      (fun (name, circuit, shots, traj_shots) ->
        let n = Circuit.qubit_count circuit in
        let auto, auto_s = time (fun () -> Engine.run ~seed:42 ~shots circuit) in
        let plan = auto.Engine.report.Engine.plan in
        if plan <> Engine.Clifford then
          failwith
            (Printf.sprintf "bench plan: %s misclassified as %s" name
               (Engine.plan_to_string plan));
        Parallel.set_domain_count 1;
        let traj, traj_s =
          time (fun () ->
              Engine.run ~seed:42 ~plan:Engine.Trajectory ~shots:traj_shots circuit)
        in
        Parallel.set_domain_count saved_domains;
        let check = Engine.run ~seed:42 ~shots:traj_shots circuit in
        let identical =
          canon check.Engine.histogram = canon traj.Engine.histogram
        in
        if not identical then
          failwith
            (Printf.sprintf
               "bench plan: %s tableau histogram diverges from the state vector"
               name);
        let auto_rate = float_of_int shots /. auto_s in
        let traj_rate = float_of_int traj_shots /. traj_s in
        let speedup = auto_rate /. traj_rate in
        Printf.printf
          "%-18s n=%-3d auto=%s %d shots in %.4fs (%.0f sh/s) | trajectory %d \
           shots in %.4fs (%.1f sh/s) | speedup %.1fx | bit-identical %b\n"
          name n
          (Engine.plan_to_string plan)
          shots auto_s auto_rate traj_shots traj_s traj_rate speedup identical;
        (name, n, shots, auto_s, auto_rate, traj_shots, traj_s, traj_rate, speedup))
      suites
  in
  (* Trajectory scaling: a non-Clifford circuit forced onto the per-shot
     state-vector plan at several domain-pool sizes. Histograms must be
     bit-identical at every size (per-shot derived RNG streams); the curve
     is honest about the machine — on a single-core container every point
     sits near 1x. *)
  let scaling_circuit =
    measured 14 (Library.random_circuit (Rng.create 77) ~qubits:14 ~gates:80)
  in
  let scaling_shots = 96 in
  Parallel.set_domain_count 1;
  let base_run, base_s =
    time (fun () ->
        Engine.run ~seed:42 ~plan:Qca_qx.Engine.Trajectory ~shots:scaling_shots
          scaling_circuit)
  in
  let scaling_rows =
    List.map
      (fun domains ->
        Parallel.set_domain_count domains;
        let r, dt =
          if domains = 1 then (base_run, base_s)
          else
            time (fun () ->
                Engine.run ~seed:42 ~plan:Qca_qx.Engine.Trajectory
                  ~shots:scaling_shots scaling_circuit)
        in
        let identical = canon r.Engine.histogram = canon base_run.Engine.histogram in
        if not identical then
          failwith
            (Printf.sprintf
               "bench plan: trajectory histogram diverges at %d domains" domains);
        let speedup = base_s /. dt in
        Printf.printf
          "trajectory-scaling random14x80 domains=%-2d %d shots in %.4fs \
           (%.1f sh/s) | speedup vs 1 domain %.2fx | bit-identical %b\n"
          domains scaling_shots dt
          (float_of_int scaling_shots /. dt)
          speedup identical;
        (domains, dt, speedup))
      [ 1; 2; 4; 8 ]
  in
  Parallel.set_domain_count saved_domains;
  let oc = open_out "BENCH_plan.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"simulation-planner\",\"cores\":%d,\"default_domains\":%d,\"clifford_suites\":["
       saved_domains saved_domains);
  List.iteri
    (fun i (name, n, shots, auto_s, auto_rate, traj_shots, traj_s, traj_rate, speedup) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"n\":%d,\"plan\":\"clifford\",\"shots\":%d,\"clifford_s\":%.6f,\"clifford_shots_per_s\":%.1f,\"trajectory_shots\":%d,\"trajectory_s\":%.6f,\"trajectory_shots_per_s\":%.2f,\"speedup\":%.2f,\"bit_identical\":true}"
           name n shots auto_s auto_rate traj_shots traj_s traj_rate speedup))
    clifford_rows;
  output_string oc
    (Printf.sprintf
       "],\"trajectory_scaling\":{\"circuit\":\"random14x80\",\"shots\":%d,\"entries\":["
       scaling_shots);
  List.iteri
    (fun i (domains, dt, speedup) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"domains\":%d,\"elapsed_s\":%.6f,\"speedup_vs_1\":%.2f,\"bit_identical\":true}"
           domains dt speedup))
    scaling_rows;
  output_string oc "]}}\n";
  close_out oc;
  print_endline "wrote BENCH_plan.json"

(* --- job-service throughput benchmark (BENCH_service.json) --- *)

let run_service () =
  let module Service = Qca_service.Service in
  let module Job_spec = Qca.Job_spec in
  print_endline "=== Job service: multi-tenant throughput (jobs/s) ===";
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Float.max 1e-9 (Sys.time () -. t0))
  in
  let measured n base =
    Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
  in
  let tenants = [ "alice"; "bob"; "carol" ] in
  (* Jobs arrive in rounds of one per tenant, with the service drained
     between rounds — so later rounds can be served from the result cache
     when they repeat earlier work. *)
  let submit_rounds svc specs =
    List.iteri
      (fun i spec ->
        let tenant = List.nth tenants (i mod List.length tenants) in
        (match Service.submit svc ~tenant spec with
        | Ok _ -> ()
        | Error e -> failwith (Qca_util.Error.to_string e));
        if i mod List.length tenants = List.length tenants - 1 then
          Service.drain svc)
      specs
  in
  (* Three workloads over the same 3-tenant mix:
     - distinct: every job is a different circuit (no sharing possible);
     - batched: every job is the same circuit under a different seed, so
       one state-vector analysis feeds all of them;
     - cached: every job is literally identical, so after the first run
       the rest are result-cache hits. *)
  let jobs = 60 in
  let shots = 2000 in
  let workloads =
    [
      ( "distinct-circuits",
        List.init jobs (fun i ->
            {
              (Job_spec.of_circuit (measured 8 (Library.random_circuit (Rng.create (100 + i)) ~qubits:8 ~gates:40)))
              with
              Job_spec.shots;
              seed = Some i;
            }) );
      ( "shared-digest",
        List.init jobs (fun i ->
            { (Job_spec.of_circuit (measured 12 (Library.ghz 12))) with Job_spec.shots; seed = Some i }) );
      ( "cache-hits",
        List.init jobs (fun _ ->
            { (Job_spec.of_circuit (measured 12 (Library.ghz 12))) with Job_spec.shots; seed = Some 7 }) );
    ]
  in
  let config =
    {
      Service.default_config with
      Service.max_queue = jobs + 1;
      degrade_above = jobs + 1;
      default_quota = { Service.default_quota with Service.max_queued = jobs };
    }
  in
  let rows =
    List.map
      (fun (name, specs) ->
        let svc = Service.create ~config () in
        let (), dt =
          time (fun () ->
              submit_rounds svc specs;
              Service.drain svc)
        in
        let s = Service.stats svc in
        let rate = float_of_int s.Service.completed /. dt in
        Printf.printf
          "%-18s %d jobs x %d shots in %.4fs -> %7.1f jobs/s (shared %d, cache hits %d, slices %d)\n"
          name s.Service.completed shots dt rate s.Service.shared_analyses
          s.Service.cache_hits s.Service.slices;
        (name, s, dt, rate))
      workloads
  in
  (* --- durability scenarios (docs/service.md, docs/resilience.md) --- *)
  let module Spool = Qca_service.Spool in
  let module Fault = Qca_util.Fault in
  let temp_spool name =
    let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
    List.iter
      (fun sub ->
        let d = Filename.concat dir sub in
        if Sys.file_exists d && Sys.is_directory d then
          Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d))
      [ "inbox"; "active"; "results"; "failed"; "cancel"; "tmp" ];
    Spool.init dir;
    dir
  in
  (* Recovery replay: K journaled jobs orphaned by a dead daemon are
     reclaimed and re-executed. The rate is the crash-recovery cost an
     operator pays per journaled job at daemon restart. *)
  let recovery_jobs = 30 in
  let recovery_rate, recovery_dt =
    let dir = temp_spool "qca-bench-recovery" in
    let dead_pid = 999_999_999 in
    let s =
      {
        (Job_spec.of_circuit (measured 10 (Library.ghz 10))) with
        Job_spec.shots = 500;
      }
    in
    List.iter
      (fun i ->
        let id =
          match Spool.submit ~dir ~tenant:"bench" { s with Job_spec.seed = Some i } with
          | Ok id -> id
          | Error e -> failwith (Qca_util.Error.to_string e)
        in
        ignore (Spool.claim ~dir ~pid:dead_pid id))
      (List.init recovery_jobs Fun.id);
    let replayed, dt =
      time (fun () ->
          Spool.recover ~dir ~pid:(Unix.getpid ()) ~max_attempts:3
          |> List.filter_map (function
               | Spool.Replay { id; entry = Ok entry; _ } -> (
                   match Qca.Runner.run entry.Spool.spec with
                   | Ok _ ->
                       Spool.write_result ~dir ~id "{\"status\":\"done\"}";
                       Spool.complete ~dir id;
                       Some id
                   | Error e -> failwith (Qca_util.Error.to_string e))
               | _ -> None))
    in
    assert (List.length replayed = recovery_jobs);
    (float_of_int recovery_jobs /. dt, dt)
  in
  Printf.printf
    "recovery-replay     %d journaled jobs reclaimed+replayed in %.4fs -> %7.1f jobs/s\n"
    recovery_jobs recovery_dt recovery_rate;
  (* Deadline enforcement: jobs with an exhausted budget must fail fast at
     their first slice boundary, without simulating anything. *)
  let deadline_jobs = 200 in
  let deadline_rate, deadline_dt =
    let svc =
      Service.create
        ~config:
          {
            config with
            Service.max_queue = deadline_jobs + 1;
            default_quota =
              { Service.default_quota with Service.max_queued = deadline_jobs };
          }
        ()
    in
    let s =
      {
        (Job_spec.of_circuit (measured 12 (Library.ghz 12))) with
        Job_spec.shots = 2000;
        deadline_ms = Some 0;
      }
    in
    let (), dt =
      time (fun () ->
          List.iter
            (fun i ->
              match
                Service.submit svc ~tenant:"bench" { s with Job_spec.seed = Some i }
              with
              | Ok _ -> ()
              | Error e -> failwith (Qca_util.Error.to_string e))
            (List.init deadline_jobs Fun.id);
          Service.drain svc)
    in
    assert ((Service.stats svc).Service.deadline_exceeded = deadline_jobs);
    (float_of_int deadline_jobs /. dt, dt)
  in
  Printf.printf
    "deadline-exceeded   %d exhausted-budget jobs failed fast in %.4fs -> %7.1f jobs/s\n"
    deadline_jobs deadline_dt deadline_rate;
  (* Disabled kill points must be ~free: their per-call cost against the
     cache-hot per-job cost is the chaos harness's dormant overhead. *)
  Fault.set_crash_at None;
  let calls = 1_000_000 in
  let (), hook_dt =
    time (fun () ->
        for _ = 1 to calls do
          Fault.crash_point "slice"
        done)
  in
  let hook_ns = hook_dt /. float_of_int calls *. 1e9 in
  let hot_ns =
    let svc = Service.create ~config () in
    let s =
      {
        (Job_spec.of_circuit (measured 12 (Library.ghz 12))) with
        Job_spec.shots = 2000;
        seed = Some 7;
      }
    in
    let run_one () =
      (match Service.submit svc ~tenant:"bench" s with
      | Ok _ -> ()
      | Error e -> failwith (Qca_util.Error.to_string e));
      Service.drain svc
    in
    run_one ();
    let n = 200 in
    let (), dt =
      time (fun () ->
          for _ = 1 to n do
            run_one ()
          done)
    in
    dt /. float_of_int n *. 1e9
  in
  let hook_pct = 100.0 *. hook_ns /. hot_ns in
  Printf.printf
    "chaos-hooks-off     %.1f ns/kill-point vs %.0f ns cache-hot job -> %.3f%% dormant overhead (target < 5%%)\n"
    hook_ns hot_ns hook_pct;
  let oc = open_out "BENCH_service.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"service-throughput\",\"jobs\":%d,\"shots\":%d,\"tenants\":%d,\"entries\":["
       jobs shots (List.length tenants));
  List.iteri
    (fun i (name, s, dt, rate) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"completed\":%d,\"elapsed_s\":%.6f,\"jobs_per_s\":%.1f,\"shared_analyses\":%d,\"cache_hits\":%d,\"slices\":%d}"
           name s.Service.completed dt rate s.Service.shared_analyses
           s.Service.cache_hits s.Service.slices))
    rows;
  output_string oc
    (Printf.sprintf
       "],\"durability\":{\"recovery_replay\":{\"jobs\":%d,\"elapsed_s\":%.6f,\"jobs_per_s\":%.1f},\"deadline_enforcement\":{\"jobs\":%d,\"elapsed_s\":%.6f,\"jobs_per_s\":%.1f},\"chaos_hooks_disabled\":{\"ns_per_call\":%.2f,\"cache_hot_job_ns\":%.0f,\"overhead_pct\":%.4f,\"target_pct\":5.0}}}\n"
       recovery_jobs recovery_dt recovery_rate deadline_jobs deadline_dt
       deadline_rate hook_ns hot_ns hook_pct);
  close_out oc;
  print_endline "wrote BENCH_service.json"

(* --- optimizing-compiler benchmark (BENCH_optimizer.json) --- *)

let run_optimizer () =
  let module Mapping = Qca_compiler.Mapping in
  let module Optimize = Qca_compiler.Optimize in
  print_endline
    "=== Optimizer: greedy route + basic sweep vs SABRE + full pipeline ===";
  let measured n base =
    Circuit.append base (Circuit.of_list n (List.init n (fun q -> Gate.Measure q)))
  in
  (* A ring-plus-chords Ising instance: QAOA's cost layers then stress both
     the router (non-local ZZ terms) and the 1q-run resynthesis (each ZZ
     term decomposes through CNOT/Rz sandwiches). *)
  let qaoa n seed =
    let rng = Rng.create seed in
    let ring = List.init n (fun i -> (i, (i + 1) mod n)) in
    let chords = List.init (n / 2) (fun i -> (i, i + (n / 2))) in
    let couplings =
      List.map
        (fun (i, j) ->
          let i, j = if i < j then (i, j) else (j, i) in
          (i, j, Rng.float rng 2.0 -. 1.0))
        (ring @ chords)
    in
    let model =
      { Ising.n; h = Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0); couplings }
    in
    Qaoa.full_circuit model
      { Qaoa.gammas = [| 0.4; 0.7 |]; betas = [| 0.3; 0.2 |] }
  in
  (* The cram-fixture programs (test/fixtures/) rebuilt from the library,
     plus the QFT and QAOA families and routing-heavy random circuits. *)
  let corpus =
    [
      ("bell", measured 2 (Library.bell ()));
      ("ghz5", measured 5 (Library.ghz 5));
      ("teleport", Library.teleport ());
      ("qft4", measured 4 (Library.qft 4));
      ("qft6", Library.qft 6);
      ("qft8", Library.qft 8);
      ("qaoa6-p2", qaoa 6 21);
      ("qaoa8-p2", qaoa 8 22);
      ("random8x40", Library.random_circuit (Rng.create 303) ~qubits:8 ~gates:40);
      ("random10x60", Library.random_circuit (Rng.create 404) ~qubits:10 ~gates:60);
    ]
  in
  let platform = Platform.superconducting_17 in
  let rows =
    List.map
      (fun (name, circuit) ->
        let base =
          Compiler.compile ~strategy:Mapping.Greedy ~optimizer:Optimize.Basic
            platform Compiler.Realistic circuit
        in
        let opt = Compiler.compile platform Compiler.Realistic circuit in
        let bg = Circuit.gate_count base.Compiler.physical in
        let og = Circuit.gate_count opt.Compiler.physical in
        let bd = Circuit.depth base.Compiler.physical in
        let od = Circuit.depth opt.Compiler.physical in
        let b2 = Circuit.two_qubit_gate_count base.Compiler.physical in
        let o2 = Circuit.two_qubit_gate_count opt.Compiler.physical in
        Printf.printf
          "%-12s gates %4d -> %4d (%+5.1f%%) | 2q %3d -> %3d | depth %4d -> %4d \
           (%+5.1f%%)\n"
          name bg og
          (100.0 *. float_of_int (og - bg) /. float_of_int (max 1 bg))
          b2 o2 bd od
          (100.0 *. float_of_int (od - bd) /. float_of_int (max 1 bd));
        (name, bg, og, b2, o2, bd, od))
      corpus
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let total_bg = sum (fun (_, bg, _, _, _, _, _) -> bg) in
  let total_og = sum (fun (_, _, og, _, _, _, _) -> og) in
  let total_bd = sum (fun (_, _, _, _, _, bd, _) -> bd) in
  let total_od = sum (fun (_, _, _, _, _, _, od) -> od) in
  let gate_cut = 100.0 *. float_of_int (total_bg - total_og) /. float_of_int total_bg in
  let depth_cut = 100.0 *. float_of_int (total_bd - total_od) /. float_of_int total_bd in
  Printf.printf
    "total        gates %4d -> %4d (-%.1f%%, target 20%%) | depth %4d -> %4d \
     (-%.1f%%, target 15%%)\n"
    total_bg total_og gate_cut total_bd total_od depth_cut;
  let oc = open_out "BENCH_optimizer.json" in
  output_string oc
    (Printf.sprintf
       "{\"benchmark\":\"optimizing-compiler\",\"baseline\":\"greedy+basic\",\"optimized\":\"sabre+full\",\"platform\":\"%s\",\"mode\":\"realistic\",\"gate_cut_pct\":%.2f,\"depth_cut_pct\":%.2f,\"target_gate_pct\":20.0,\"target_depth_pct\":15.0,\"entries\":["
       platform.Platform.name gate_cut depth_cut);
  List.iteri
    (fun i (name, bg, og, b2, o2, bd, od) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"base_gates\":%d,\"opt_gates\":%d,\"base_2q\":%d,\"opt_2q\":%d,\"base_depth\":%d,\"opt_depth\":%d}"
           name bg og b2 o2 bd od))
    rows;
  output_string oc "]}\n";
  close_out oc;
  print_endline "wrote BENCH_optimizer.json"

(* --- static checker benchmark (BENCH_lint.json) --- *)

let run_lint () =
  let module Checks = Qca_analysis.Circuit_checks in
  let module Verify = Qca_analysis.Verify in
  print_endline "=== Static checker throughput and pass-verifier overhead ===";
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  (* Throughput: the full circuit suite over large random circuits. *)
  let gates = 20_000 in
  let throughput =
    List.map
      (fun n ->
        let c = Library.random_circuit (Rng.create 11) ~qubits:n ~gates in
        let findings = List.length (Checks.check_circuit c) in
        let dt = best_of 3 (fun () -> Checks.check_circuit c) in
        let rate = float_of_int gates /. dt in
        Printf.printf "n=%-3d %d gates checked in %.4fs (%.0f gates/s, %d findings)\n"
          n gates dt rate findings;
        (n, dt, rate))
      [ 10; 16; 20 ]
  in
  (* Overhead: the same program compiled with and without the verifier
     observing every pass. Two plain timings bracket the verified one so
     the hook-off noise floor is visible. *)
  let circuit = Library.random_circuit (Rng.create 12) ~qubits:10 ~gates:2_000 in
  let platform = Platform.superconducting_17 in
  (* Warm up allocator and caches so neither arm pays one-time costs, then
     interleave the arms so clock drift hits both equally; min-of-k is the
     robust CPU-time estimator. The two alternating plain minima double as
     the hook-off noise floor. *)
  ignore (Sys.opaque_identity (Compiler.compile platform Compiler.Real circuit));
  ignore (Sys.opaque_identity (Verify.compile platform Compiler.Real circuit));
  let plain_a = ref infinity and plain_b = ref infinity in
  let verified = ref infinity in
  for t = 1 to 12 do
    let tp = best_of 1 (fun () -> Compiler.compile platform Compiler.Real circuit) in
    let tv = best_of 1 (fun () -> Verify.compile platform Compiler.Real circuit) in
    let slot = if t land 1 = 0 then plain_a else plain_b in
    if tp < !slot then slot := tp;
    if tv < !verified then verified := tv
  done;
  let plain_a = !plain_a and plain_b = !plain_b and verified = !verified in
  let plain = Float.min plain_a plain_b in
  let on_pct = 100.0 *. (verified -. plain) /. plain in
  let off_pct = 100.0 *. Float.abs (plain_a -. plain_b) /. plain in
  Printf.printf
    "pass-verifier: plain %.4fs, verified %.4fs -> %.1f%% overhead enabled (target < \
     5%%), %.1f%% hook-off noise floor (target ~ 0%%)\n"
    plain verified on_pct off_pct;
  let oc = open_out "BENCH_lint.json" in
  output_string oc "{\"benchmark\":\"static-checker\",\"circuit\":\"random\",";
  output_string oc (Printf.sprintf "\"gates\":%d,\"throughput\":[" gates);
  List.iteri
    (fun i (n, dt, rate) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf "{\"n\":%d,\"check_s\":%.6f,\"gates_per_s\":%.1f}" n dt rate))
    throughput;
  output_string oc
    (Printf.sprintf
       "],\"verifier\":{\"compile_gates\":2000,\"plain_s\":%.6f,\"verified_s\":%.6f,\"overhead_enabled_pct\":%.2f,\"overhead_disabled_pct\":%.2f,\"target_enabled_pct\":5.0}}\n"
       plain verified on_pct off_pct);
  close_out oc;
  print_endline "wrote BENCH_lint.json"

(* --- static estimator benchmark (BENCH_estimate.json) --- *)

let run_estimate () =
  let module Estimate = Qca_analysis.Estimate in
  let module Cqasm = Qca_circuit.Cqasm in
  let module Service = Qca_service.Service in
  let module Job_spec = Qca.Job_spec in
  print_endline "=== Static estimator throughput and admission overhead ===";
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let t0 = Sys.time () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    Float.max 1e-9 !best
  in
  (* Throughput over flat circuits: abstract interpretation is one walk,
     so the rate should be flat in n and linear in gates. *)
  let gates = 20_000 in
  let throughput =
    List.map
      (fun n ->
        let c = Library.random_circuit (Rng.create 21) ~qubits:n ~gates in
        let dt = best_of 5 (fun () -> Estimate.of_circuit c) in
        let rate = float_of_int gates /. dt in
        Printf.printf "n=%-3d %d gates estimated in %.5fs (%.2e gates/s)\n" n
          gates dt rate;
        (n, dt, rate))
      [ 10; 16; 20 ]
  in
  (* The symbolic path: a million-round surface-17 cycle program. The
     interesting number is the effective rate over the gates the unrolled
     circuit would have had. *)
  let rounds = 1_000_000 in
  let round = Qca.Qec_run.cycle_circuit ~rounds:1 Code.surface_17 in
  let program =
    { Cqasm.qubit_count = 17; error_model = None;
      subcircuits = [ ("cycle", rounds, round) ] }
  in
  let sym_s = best_of 5 (fun () -> Estimate.of_program program) in
  let est = Estimate.of_program program in
  let sym_rate = float_of_int est.Estimate.gates /. sym_s in
  Printf.printf
    "symbolic: surface-17 x %d rounds (%d unrolled gates) in %.2f ms (%.2e gates/s equivalent)\n"
    rounds est.Estimate.gates (sym_s *. 1e3) sym_rate;
  (* Admission-oracle overhead on the service's hot path: a cache-hot
     workload (identical seeded jobs) submitted with the oracle configured
     on vs off. Cache hits consult the cache before the oracle, so the cap
     should cost nothing once the entry is hot — the guard is < 5%. *)
  let c =
    Circuit.append (Library.ghz 12)
      (Circuit.of_list 12 (List.init 12 (fun q -> Gate.Measure q)))
  in
  let spec = { (Job_spec.of_circuit c) with Job_spec.shots = 500; seed = Some 7 } in
  let hot_jobs = 400 in
  let run_hot config =
    let svc = Service.create ~config () in
    (* Populate the cache, then time the hot submits. *)
    (match Service.submit svc ~tenant:"alice" spec with
    | Ok _ -> Service.drain svc
    | Error e -> failwith (Qca_util.Error.to_string e));
    best_of 3 (fun () ->
        for _ = 1 to hot_jobs do
          match Service.submit svc ~tenant:"alice" spec with
          | Ok _ -> ()
          | Error e -> failwith (Qca_util.Error.to_string e)
        done;
        Service.drain svc)
  in
  let quota = { Service.default_quota with Service.max_queued = hot_jobs + 1 } in
  let base =
    {
      Service.default_config with
      Service.max_queue = hot_jobs + 1;
      degrade_above = hot_jobs + 1;
      default_quota = quota;
    }
  in
  let oracle_off =
    run_hot { base with Service.admission_max_bytes = 0.0; admission_max_ns = 0.0 }
  in
  let oracle_on =
    run_hot
      { base with Service.admission_max_ns = Estimate.budget_ns_default }
  in
  let overhead_pct = 100.0 *. (oracle_on -. oracle_off) /. oracle_off in
  Printf.printf
    "admission oracle on cache-hot submits: off %.4fs, on %.4fs -> %.1f%% overhead (target < 5%%)\n"
    oracle_off oracle_on overhead_pct;
  let oc = open_out "BENCH_estimate.json" in
  output_string oc "{\"benchmark\":\"static-estimator\",";
  output_string oc (Printf.sprintf "\"gates\":%d,\"throughput\":[" gates);
  List.iteri
    (fun i (n, dt, rate) ->
      if i > 0 then output_char oc ',';
      output_string oc
        (Printf.sprintf "{\"n\":%d,\"estimate_s\":%.6f,\"gates_per_s\":%.1f}" n
           dt rate))
    throughput;
  output_string oc
    (Printf.sprintf
       "],\"symbolic\":{\"rounds\":%d,\"unrolled_gates\":%d,\"estimate_s\":%.6f,\"equivalent_gates_per_s\":%.1f},"
       rounds est.Estimate.gates sym_s sym_rate);
  output_string oc
    (Printf.sprintf
       "\"admission\":{\"hot_jobs\":%d,\"oracle_off_s\":%.6f,\"oracle_on_s\":%.6f,\"overhead_pct\":%.2f,\"target_pct\":5.0}}\n"
       hot_jobs oracle_off oracle_on overhead_pct);
  close_out oc;
  print_endline "wrote BENCH_estimate.json"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      List.iter (fun e -> e ()) Experiments.all;
      run_micro ()
  | [ "micro" ] -> run_micro ()
  | [ "engine" ] -> run_engine ()
  | [ "resilience" ] -> run_resilience ()
  | [ "trace" ] -> run_trace ()
  | [ "kernels" ] -> run_kernels ()
  | [ "plan" ] -> run_plan ()
  | [ "lint" ] -> run_lint ()
  | [ "optimizer" ] -> run_optimizer ()
  | [ "service" ] -> run_service ()
  | [ "estimate" ] -> run_estimate ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt (String.lowercase_ascii id) Experiments.by_id with
          | Some e -> e ()
          | None ->
              Printf.eprintf
                "unknown experiment '%s' (use e1..e13, micro, engine, resilience, \
                 trace, kernels, plan, lint, optimizer, service or estimate)\n"
                id;
              exit 1)
        ids
