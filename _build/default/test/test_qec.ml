(* Tests for the QEC substrate: Pauli algebra, stabilizer tableau (validated
   against the state vector), codes, decoder and experiments. *)

module Pauli = Qca_qec.Pauli
module Tableau = Qca_qec.Tableau
module Code = Qca_qec.Code
module Decoder = Qca_qec.Decoder
module Qec_experiment = Qca_qec.Qec_experiment
module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module State = Qca_qx.State
module Rng = Qca_util.Rng

(* --- Pauli --- *)

let test_pauli_strings () =
  let p = Pauli.of_string "XIZY" in
  Alcotest.(check string) "roundtrip" "XIZY" (Pauli.to_string ~width:4 p);
  Alcotest.(check int) "weight" 3 (Pauli.weight p)

let test_pauli_mul () =
  let x = Pauli.single 0 'X' and z = Pauli.single 0 'Z' in
  let y = Pauli.mul x z in
  Alcotest.(check string) "X*Z = Y (mod phase)" "Y" (Pauli.to_string ~width:1 y);
  Alcotest.(check bool) "self-inverse" true (Pauli.is_identity (Pauli.mul x x))

let test_pauli_commutation () =
  let x0 = Pauli.single 0 'X' and z0 = Pauli.single 0 'Z' and z1 = Pauli.single 1 'Z' in
  Alcotest.(check bool) "X0 Z0 anticommute" false (Pauli.commutes x0 z0);
  Alcotest.(check bool) "X0 Z1 commute" true (Pauli.commutes x0 z1);
  let xx = Pauli.of_string "XX" and zz = Pauli.of_string "ZZ" in
  Alcotest.(check bool) "XX ZZ commute" true (Pauli.commutes xx zz)

let test_pauli_support () =
  Alcotest.(check (list int)) "support" [ 0; 2; 3 ] (Pauli.support (Pauli.of_string "XIZY"))

let test_error_sampling_rate () =
  let rng = Rng.create 1 in
  let n = 10 and p = 0.1 and trials = 5000 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Pauli.weight (Pauli.depolarizing_error rng n p)
  done;
  let rate = float_of_int !total /. float_of_int (n * trials) in
  Alcotest.(check (float 0.01)) "error rate" p rate

(* --- tableau vs state vector --- *)

let clifford_gates =
  [
    (Gate.H, 1); (Gate.S, 1); (Gate.Sdag, 1); (Gate.X, 1); (Gate.Y, 1); (Gate.Z, 1);
    (Gate.X90, 1); (Gate.Xm90, 1); (Gate.Y90, 1); (Gate.Ym90, 1);
    (Gate.Cnot, 2); (Gate.Cz, 2); (Gate.Swap, 2);
  ]

(* Run a random Clifford circuit on both simulators and compare Z-measurement
   determinism/outcomes on each qubit. *)
let compare_simulators seed qubits gates =
  let rng = Rng.create seed in
  let tab = Tableau.create qubits in
  let vec = State.create qubits in
  let usable =
    List.filter (fun (_, arity) -> arity <= qubits) clifford_gates
  in
  for _ = 1 to gates do
    let u, arity = List.nth usable (Rng.int rng (List.length usable)) in
    let q1 = Rng.int rng qubits in
    let ops =
      if arity = 1 then [| q1 |]
      else
        let q2 = (q1 + 1 + Rng.int rng (qubits - 1)) mod qubits in
        [| q1; q2 |]
    in
    Tableau.apply_gate tab u ops;
    State.apply vec u ops
  done;
  let ok = ref true in
  for q = 0 to qubits - 1 do
    let p1 = State.prob_one vec q in
    (match Tableau.expectation_z tab q with
    | Some 0 -> if p1 > 1e-9 then ok := false
    | Some 1 -> if p1 < 1.0 -. 1e-9 then ok := false
    | Some _ -> assert false
    | None -> if Float.abs (p1 -. 0.5) > 1e-9 then ok := false)
  done;
  !ok

let prop_tableau_matches_statevector =
  QCheck.Test.make ~name:"tableau matches state vector" ~count:100
    (QCheck.make
       ~print:(fun (s, q, g) -> Printf.sprintf "seed=%d q=%d g=%d" s q g)
       QCheck.Gen.(triple (int_range 0 99999) (int_range 1 5) (int_range 1 60)))
    (fun (seed, qubits, gates) -> compare_simulators seed qubits gates)

let test_tableau_bell () =
  let tab = Tableau.create 2 in
  Tableau.h tab 0;
  Tableau.cnot tab 0 1;
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let t = Tableau.copy tab in
    let a = Tableau.measure t rng 0 in
    let b = Tableau.measure t rng 1 in
    Alcotest.(check int) "correlated" a b
  done

let test_tableau_ghz_stabilizers () =
  let n = 4 in
  let tab = Tableau.create n in
  Tableau.h tab 0;
  for q = 1 to n - 1 do
    Tableau.cnot tab (q - 1) q
  done;
  (* All Z measurements random, but parity fixed: measuring all gives equal bits. *)
  let rng = Rng.create 7 in
  let t = Tableau.copy tab in
  let first = Tableau.measure t rng 0 in
  for q = 1 to n - 1 do
    Alcotest.(check int) "ghz bit" first (Tableau.measure t rng q)
  done

let test_tableau_deterministic_measure () =
  let tab = Tableau.create 1 in
  Tableau.x tab 0;
  Alcotest.(check (option int)) "deterministic 1" (Some 1) (Tableau.expectation_z tab 0);
  let rng = Rng.create 11 in
  Alcotest.(check int) "measure" 1 (Tableau.measure tab rng 0)

let test_tableau_measure_collapses () =
  let tab = Tableau.create 1 in
  Tableau.h tab 0;
  Alcotest.(check (option int)) "random" None (Tableau.expectation_z tab 0);
  let rng = Rng.create 13 in
  let m = Tableau.measure tab rng 0 in
  Alcotest.(check (option int)) "collapsed" (Some m) (Tableau.expectation_z tab 0)

let test_tableau_stabilizer_strings () =
  let tab = Tableau.create 2 in
  Tableau.h tab 0;
  Tableau.cnot tab 0 1;
  let stabs = Tableau.stabilizer_strings tab in
  Alcotest.(check int) "two generators" 2 (List.length stabs);
  Alcotest.(check bool) "contains +XX" true (List.mem "+XX" stabs);
  Alcotest.(check bool) "contains +ZZ" true (List.mem "+ZZ" stabs)

let test_tableau_rejects_nonclifford () =
  let tab = Tableau.create 1 in
  match Tableau.apply_gate tab Gate.T [| 0 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection"

(* --- codes --- *)

let test_codes_valid () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code.Code.name ^ " valid") true (Code.is_valid code))
    [
      Code.bit_flip_repetition 3; Code.bit_flip_repetition 5; Code.phase_flip_repetition 3;
      Code.surface_17; Code.rotated_surface 3; Code.rotated_surface 5; Code.steane;
    ]

let test_rotated_surface_3_is_surface_17 () =
  let a = Code.surface_17 and b = Code.rotated_surface 3 in
  Alcotest.(check int) "same n" a.Code.n b.Code.n;
  Alcotest.(check bool) "same logical z" true (Pauli.equal a.Code.logical_z b.Code.logical_z);
  Alcotest.(check bool) "same logical x" true (Pauli.equal a.Code.logical_x b.Code.logical_x);
  (* same stabilizer sets, regardless of order *)
  let sort c = List.sort compare (Array.to_list (Array.map (Pauli.to_string ~width:9) c.Code.stabilizers)) in
  Alcotest.(check (list string)) "same stabilizers" (sort a) (sort b)

let test_rotated_surface_5_structure () =
  let code = Code.rotated_surface 5 in
  Alcotest.(check int) "25 data" 25 code.Code.n;
  Alcotest.(check int) "24 stabilizers" 24 (Array.length code.Code.stabilizers);
  Alcotest.(check int) "distance" 5 code.Code.distance

let test_steane_structure () =
  let code = Code.steane in
  Alcotest.(check int) "7 data" 7 code.Code.n;
  Alcotest.(check int) "6 stabilizers" 6 (Array.length code.Code.stabilizers);
  (* every single-qubit error detected and corrected *)
  let decoder = Decoder.build code in
  for q = 0 to 6 do
    List.iter
      (fun letter ->
        Alcotest.(check bool)
          (Printf.sprintf "steane corrects %c%d" letter q)
          true
          (Decoder.decode_outcome code decoder (Pauli.single q letter) = `None))
      [ 'X'; 'Y'; 'Z' ]
  done

let test_surface5_beats_surface3 () =
  let rng = Rng.create 8191 in
  let rate code p trials =
    let decoder = Decoder.build ~max_weight:2 code in
    Decoder.logical_error_rate ~trials ~rng code decoder ~physical_error:p
  in
  let r3 = rate (Code.rotated_surface 3) 0.005 6000 in
  let r5 = rate (Code.rotated_surface 5) 0.005 6000 in
  Alcotest.(check bool)
    (Printf.sprintf "d=5 (%.5f) <= d=3 (%.5f) below threshold" r5 r3)
    true (r5 <= r3)

let test_repetition_syndromes () =
  let code = Code.bit_flip_repetition 3 in
  Alcotest.(check int) "no error" 0 (Code.syndrome code Pauli.identity);
  Alcotest.(check int) "X0" 0b01 (Code.syndrome code (Pauli.single 0 'X'));
  Alcotest.(check int) "X1" 0b11 (Code.syndrome code (Pauli.single 1 'X'));
  Alcotest.(check int) "X2" 0b10 (Code.syndrome code (Pauli.single 2 'X'));
  (* Z errors are invisible to the bit-flip code *)
  Alcotest.(check int) "Z0 invisible" 0 (Code.syndrome code (Pauli.single 0 'Z'))

let test_surface17_distance () =
  let code = Code.surface_17 in
  Alcotest.(check int) "9 data" 9 code.Code.n;
  Alcotest.(check int) "8 stabilizers" 8 (Array.length code.Code.stabilizers);
  (* every weight-1 and weight-2 error has nonzero syndrome or is benign *)
  let all_single_detected = ref true in
  for q = 0 to 8 do
    List.iter
      (fun letter ->
        let e = Pauli.single q letter in
        if Code.syndrome code e = 0 then all_single_detected := false)
      [ 'X'; 'Y'; 'Z' ]
  done;
  Alcotest.(check bool) "all single errors detected" true !all_single_detected

let test_logical_effect () =
  let code = Code.surface_17 in
  Alcotest.(check bool) "logical_z is Z effect" true
    (Code.logical_effect code code.Code.logical_z = `Z);
  Alcotest.(check bool) "logical_x is X effect" true
    (Code.logical_effect code code.Code.logical_x = `X);
  Alcotest.(check bool) "stabilizer is none" true
    (Code.logical_effect code code.Code.stabilizers.(0) = `None)

let test_stabilizer_group_membership () =
  let code = Code.bit_flip_repetition 3 in
  let zz01 = Pauli.of_string "ZZI" in
  Alcotest.(check bool) "generator in group" true (Code.in_stabilizer_group code zz01);
  let z0z2 = Pauli.of_string "ZIZ" in
  Alcotest.(check bool) "product in group" true (Code.in_stabilizer_group code z0z2);
  Alcotest.(check bool) "logical not in group" false
    (Code.in_stabilizer_group code code.Code.logical_x)

(* --- decoder --- *)

let test_decoder_corrects_single_errors () =
  List.iter
    (fun code ->
      let decoder = Decoder.build code in
      for q = 0 to code.Code.n - 1 do
        List.iter
          (fun letter ->
            let error = Pauli.single q letter in
            Alcotest.(check bool)
              (Printf.sprintf "%s corrects %c%d" code.Code.name letter q)
              true
              (Decoder.decode_outcome code decoder error = `None))
          [ 'X'; 'Y'; 'Z' ]
      done)
    [ Code.surface_17 ]

let test_repetition_corrects_single_x () =
  let code = Code.bit_flip_repetition 3 in
  let decoder = Decoder.build code in
  for q = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "X%d corrected" q)
      true
      (Decoder.decode_outcome code decoder (Pauli.single q 'X') = `None)
  done;
  (* two X errors exceed (d-1)/2 and cause a logical error *)
  let double = Pauli.mul (Pauli.single 0 'X') (Pauli.single 1 'X') in
  Alcotest.(check bool) "double fails" true
    (Decoder.decode_outcome code decoder double <> `None)

let test_logical_error_rate_scaling () =
  (* Logical rate must fall with physical rate and with distance. *)
  let rng = Rng.create 2718 in
  let rate code p =
    let decoder = Decoder.build code in
    Decoder.logical_error_rate ~trials:4000 ~rng code decoder ~physical_error:p
  in
  let r3_high = rate (Code.bit_flip_repetition 3) 0.1 in
  let r3_low = rate (Code.bit_flip_repetition 3) 0.01 in
  Alcotest.(check bool) "monotone in p" true (r3_low < r3_high);
  let r5_low = rate (Code.bit_flip_repetition 5) 0.01 in
  ignore r5_low;
  (* At p=0.01 the d=5 code has ~10x lower X-failure; but depolarizing noise
     includes Z errors the bit-flip code cannot see, so compare X-only. *)
  let x_only code p =
    let decoder = Decoder.build code in
    let failures = ref 0 and trials = 4000 in
    for _ = 1 to trials do
      let error = Pauli.xz_error rng code.Code.n ~px:p ~pz:0.0 in
      if Decoder.decode_outcome code decoder error <> `None then incr failures
    done;
    float_of_int !failures /. float_of_int trials
  in
  let x3 = x_only (Code.bit_flip_repetition 3) 0.05 in
  let x5 = x_only (Code.bit_flip_repetition 5) 0.05 in
  Alcotest.(check bool) "distance helps" true (x5 < x3)

let test_surface17_below_pseudothreshold () =
  let rng = Rng.create 31415 in
  let code = Code.surface_17 in
  let decoder = Decoder.build code in
  let logical =
    Decoder.logical_error_rate ~trials:20000 ~rng code decoder ~physical_error:0.001
  in
  (* At p = 1e-3 the d=3 surface code must beat the physical qubit. *)
  Alcotest.(check bool) "below physical" true (logical < 0.001)

let test_measurement_errors_handled () =
  let rng = Rng.create 999 in
  let code = Code.bit_flip_repetition 3 in
  let decoder = Decoder.build code in
  let clean =
    Decoder.logical_error_rate_with_measurement ~trials:3000 ~rounds:3 ~rng code decoder
      ~physical_error:0.02 ~measurement_error:0.0
  in
  let noisy =
    Decoder.logical_error_rate_with_measurement ~trials:3000 ~rounds:3 ~rng code decoder
      ~physical_error:0.02 ~measurement_error:0.1
  in
  Alcotest.(check bool) "measurement noise hurts" true (noisy >= clean)

(* --- Pauli frame --- *)

module Pauli_frame = Qca_qec.Pauli_frame

let test_frame_cnot_propagation () =
  let f = { Pauli_frame.x = 0b01; z = 0 } in
  (* X on control 0 copies onto target 1 *)
  Pauli_frame.propagate_cnot f 0 1;
  Alcotest.(check int) "x spread" 0b11 f.Pauli_frame.x;
  let g = { Pauli_frame.x = 0; z = 0b10 } in
  (* Z on target 1 copies onto control 0 *)
  Pauli_frame.propagate_cnot g 0 1;
  Alcotest.(check int) "z spread" 0b11 g.Pauli_frame.z

let test_frame_h_swaps () =
  let f = { Pauli_frame.x = 0b1; z = 0 } in
  Pauli_frame.propagate_h f 0;
  Alcotest.(check int) "x->z" 0 f.Pauli_frame.x;
  Alcotest.(check int) "z set" 1 f.Pauli_frame.z;
  (* Y stays Y *)
  let g = { Pauli_frame.x = 0b1; z = 0b1 } in
  Pauli_frame.propagate_h g 0;
  Alcotest.(check int) "y x" 1 g.Pauli_frame.x;
  Alcotest.(check int) "y z" 1 g.Pauli_frame.z

let test_noise_free_round_matches_algebra () =
  let rng = Rng.create 77 in
  List.iter
    (fun code ->
      for q = 0 to code.Code.n - 1 do
        List.iter
          (fun letter ->
            let e = Pauli.single q letter in
            let f = { Pauli_frame.x = e.Pauli.x; z = e.Pauli.z } in
            let result =
              Pauli_frame.noisy_round ~rng ~gate_error:0.0 ~measurement_error:0.0 code f
            in
            Alcotest.(check int)
              (Printf.sprintf "%s frame syndrome %c%d" code.Code.name letter q)
              (Code.syndrome code e) result.Pauli_frame.syndrome)
          [ 'X'; 'Z' ]
      done)
    [ Code.bit_flip_repetition 3; Code.surface_17; Code.steane ]

let test_circuit_level_zero_noise_is_perfect () =
  let rng = Rng.create 78 in
  let code = Code.surface_17 in
  let decoder = Decoder.build code in
  let rate =
    Pauli_frame.logical_error_rate ~trials:300 ~rng code decoder ~gate_error:0.0
      ~measurement_error:0.0
  in
  Alcotest.(check (float 1e-12)) "no noise no failures" 0.0 rate

let test_circuit_level_worse_than_code_capacity () =
  let rng = Rng.create 79 in
  let code = Code.surface_17 in
  let decoder = Decoder.build code in
  let p = 0.002 in
  let capacity = Decoder.logical_error_rate ~trials:6000 ~rng code decoder ~physical_error:p in
  let circuit_level =
    Pauli_frame.logical_error_rate ~trials:6000 ~rng code decoder ~gate_error:p
      ~measurement_error:p
  in
  Alcotest.(check bool)
    (Printf.sprintf "circuit level (%.5f) > capacity (%.5f)" circuit_level capacity)
    true (circuit_level > capacity)

let test_circuit_level_monotone () =
  let rng = Rng.create 80 in
  let code = Code.bit_flip_repetition 3 in
  let decoder = Decoder.build code in
  let rate p =
    Pauli_frame.logical_error_rate ~trials:4000 ~rng code decoder ~gate_error:p
      ~measurement_error:p
  in
  let low = rate 0.001 and high = rate 0.02 in
  Alcotest.(check bool) "monotone in gate error" true (low < high)

(* --- circuit-level experiments --- *)

let test_syndrome_circuit_structure () =
  let code = Code.surface_17 in
  let circuit = Code.syndrome_circuit code in
  Alcotest.(check int) "9 data + 8 ancilla" 17 (Circuit.qubit_count circuit);
  let measures =
    List.length
      (List.filter
         (fun i -> match i with Gate.Measure _ -> true | _ -> false)
         (Circuit.instructions circuit))
  in
  Alcotest.(check int) "8 measurements" 8 measures

let test_circuit_level_syndrome_matches_algebra () =
  let rng = Rng.create 424242 in
  List.iter
    (fun code ->
      (* check identity + all single-qubit errors *)
      Alcotest.(check bool) (code.Code.name ^ " clean") true
        (Qec_experiment.circuit_level_syndrome_matches code Pauli.identity rng);
      for q = 0 to code.Code.n - 1 do
        List.iter
          (fun letter ->
            Alcotest.(check bool)
              (Printf.sprintf "%s circuit syndrome %c%d" code.Code.name letter q)
              true
              (Qec_experiment.circuit_level_syndrome_matches code (Pauli.single q letter) rng))
          [ 'X'; 'Z' ]
      done)
    [ Code.bit_flip_repetition 3; Code.surface_17 ]

let test_logical_operation_on_code_space () =
  (* Prepare logical |0> of the repetition code on the tableau, apply the
     transversal logical X, and verify logical Z flips sign: a complete
     logical operation cycle at circuit level. *)
  let rng = Rng.create 171717 in
  let code = Code.bit_flip_repetition 3 in
  let tableau = Qec_experiment.prepare_logical_zero code rng in
  (* logical Z readout: measure data qubit 0 (logical_z = Z0) *)
  let before = Tableau.measure (Tableau.copy tableau) rng 0 in
  Alcotest.(check int) "logical zero" 0 before;
  (* transversal logical X = X on every data qubit *)
  Tableau.apply_pauli tableau code.Code.logical_x;
  let syndrome = Qec_experiment.extract_syndrome code tableau rng in
  Alcotest.(check int) "logical op leaves code space" 0 syndrome;
  let after = Tableau.measure (Tableau.copy tableau) rng 0 in
  Alcotest.(check int) "logical one" 1 after

let test_overhead_exceeds_90_percent () =
  let o = Qec_experiment.overhead_of ~rounds_per_logical_op:3 Code.surface_17 in
  Alcotest.(check bool) "paper's >90% claim" true (o.Qec_experiment.qec_fraction > 0.9);
  Alcotest.(check int) "physical qubits" 17 o.Qec_experiment.physical_qubits

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_qec"
    [
      ( "pauli",
        [
          Alcotest.test_case "strings" `Quick test_pauli_strings;
          Alcotest.test_case "mul" `Quick test_pauli_mul;
          Alcotest.test_case "commutation" `Quick test_pauli_commutation;
          Alcotest.test_case "support" `Quick test_pauli_support;
          Alcotest.test_case "sampling rate" `Quick test_error_sampling_rate;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "bell" `Quick test_tableau_bell;
          Alcotest.test_case "ghz stabilizers" `Quick test_tableau_ghz_stabilizers;
          Alcotest.test_case "deterministic measure" `Quick test_tableau_deterministic_measure;
          Alcotest.test_case "measure collapses" `Quick test_tableau_measure_collapses;
          Alcotest.test_case "stabilizer strings" `Quick test_tableau_stabilizer_strings;
          Alcotest.test_case "rejects non-clifford" `Quick test_tableau_rejects_nonclifford;
          qtest prop_tableau_matches_statevector;
        ] );
      ( "codes",
        [
          Alcotest.test_case "valid" `Quick test_codes_valid;
          Alcotest.test_case "surface-3 = surface-17" `Quick test_rotated_surface_3_is_surface_17;
          Alcotest.test_case "surface-5 structure" `Quick test_rotated_surface_5_structure;
          Alcotest.test_case "steane" `Quick test_steane_structure;
          Alcotest.test_case "distance 5 beats 3" `Slow test_surface5_beats_surface3;
          Alcotest.test_case "repetition syndromes" `Quick test_repetition_syndromes;
          Alcotest.test_case "surface17 structure" `Quick test_surface17_distance;
          Alcotest.test_case "logical effect" `Quick test_logical_effect;
          Alcotest.test_case "stabilizer group" `Quick test_stabilizer_group_membership;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "corrects singles (surface)" `Quick test_decoder_corrects_single_errors;
          Alcotest.test_case "repetition singles" `Quick test_repetition_corrects_single_x;
          Alcotest.test_case "rate scaling" `Quick test_logical_error_rate_scaling;
          Alcotest.test_case "surface pseudothreshold" `Quick test_surface17_below_pseudothreshold;
          Alcotest.test_case "measurement errors" `Quick test_measurement_errors_handled;
        ] );
      ( "pauli-frame",
        [
          Alcotest.test_case "cnot propagation" `Quick test_frame_cnot_propagation;
          Alcotest.test_case "h swaps" `Quick test_frame_h_swaps;
          Alcotest.test_case "noise-free matches algebra" `Quick test_noise_free_round_matches_algebra;
          Alcotest.test_case "zero noise perfect" `Quick test_circuit_level_zero_noise_is_perfect;
          Alcotest.test_case "worse than capacity" `Quick test_circuit_level_worse_than_code_capacity;
          Alcotest.test_case "monotone" `Quick test_circuit_level_monotone;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "syndrome circuit" `Quick test_syndrome_circuit_structure;
          Alcotest.test_case "circuit-level syndromes" `Quick test_circuit_level_syndrome_matches_algebra;
          Alcotest.test_case "logical operation" `Quick test_logical_operation_on_code_space;
          Alcotest.test_case "overhead >90%" `Quick test_overhead_exceeds_90_percent;
        ] );
    ]
