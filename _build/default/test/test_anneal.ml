(* Tests for QUBO/Ising models, annealers, Chimera topology and embedding. *)

module Qubo = Qca_anneal.Qubo
module Ising = Qca_anneal.Ising
module Sa = Qca_anneal.Sa
module Sqa = Qca_anneal.Sqa
module Chimera = Qca_anneal.Chimera
module Embedding = Qca_anneal.Embedding
module Digital_annealer = Qca_anneal.Digital_annealer
module Graph = Qca_util.Graph
module Rng = Qca_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* --- QUBO --- *)

let test_qubo_energy () =
  let q = Qubo.create 3 in
  Qubo.add q 0 0 (-1.0);
  Qubo.add q 0 1 2.0;
  Qubo.add q 1 2 (-3.0);
  check_float "000" 0.0 (Qubo.energy q [| 0; 0; 0 |]);
  check_float "100" (-1.0) (Qubo.energy q [| 1; 0; 0 |]);
  check_float "110" 1.0 (Qubo.energy q [| 1; 1; 0 |]);
  check_float "011" (-3.0) (Qubo.energy q [| 0; 1; 1 |])

let test_qubo_symmetric_key () =
  let q = Qubo.create 2 in
  Qubo.add q 1 0 1.5;
  check_float "same entry" 1.5 (Qubo.get q 0 1);
  Qubo.add q 0 1 0.5;
  check_float "accumulated" 2.0 (Qubo.get q 1 0)

let test_qubo_brute_force () =
  let q = Qubo.create 4 in
  (* minimum at x = 1010: reward those bits, punish pairs *)
  Qubo.add q 0 0 (-2.0);
  Qubo.add q 2 2 (-2.0);
  Qubo.add q 1 1 1.0;
  Qubo.add q 3 3 1.0;
  let x, e = Qubo.brute_force q in
  Alcotest.(check (array int)) "argmin" [| 1; 0; 1; 0 |] x;
  check_float "min" (-4.0) e

let test_qubo_interaction_graph () =
  let q = Qubo.create 3 in
  Qubo.add q 0 1 1.0;
  Qubo.add q 1 1 5.0;
  let g = Qubo.interaction_graph q in
  Alcotest.(check bool) "edge 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "no self edge" false (Graph.has_edge g 1 2);
  Alcotest.(check (float 1e-9)) "density" (1.0 /. 3.0) (Qubo.density q)

(* --- Ising / QUBO isomorphism --- *)

let random_qubo rng n density =
  let q = Qubo.create n in
  for i = 0 to n - 1 do
    Qubo.add q i i (Rng.gaussian rng);
    for j = i + 1 to n - 1 do
      if Rng.bernoulli rng density then Qubo.add q i j (Rng.gaussian rng)
    done
  done;
  q

let prop_qubo_ising_isomorphism =
  QCheck.Test.make ~name:"qubo/ising energies agree" ~count:100
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_range 0 99999) (int_range 1 8)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let q = random_qubo rng n 0.6 in
      let model, offset = Ising.of_qubo q in
      let x = Qubo.random_assignment rng q in
      let s = Ising.spins_of_bits x in
      Float.abs (Qubo.energy q x -. (Ising.energy model s +. offset)) < 1e-9)

let prop_ising_roundtrip =
  QCheck.Test.make ~name:"ising -> qubo -> energy roundtrip" ~count:100
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_range 0 99999) (int_range 1 8)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let q0 = random_qubo rng n 0.5 in
      let model, _ = Ising.of_qubo q0 in
      let q1, off2 = Ising.to_qubo model in
      let s = Ising.random_spins rng n in
      let x = Ising.bits_of_spins s in
      Float.abs (Qubo.energy q1 x +. off2 -. Ising.energy model s) < 1e-9)

let test_delta_energy_matches () =
  let rng = Rng.create 42 in
  let q = random_qubo rng 6 0.7 in
  let model, _ = Ising.of_qubo q in
  let neighbour_index = Ising.build_neighbour_index model in
  let s = Ising.random_spins rng 6 in
  for i = 0 to 5 do
    let before = Ising.energy model s in
    let predicted = Ising.delta_energy model ~neighbour_index s i in
    s.(i) <- -s.(i);
    let after = Ising.energy model s in
    s.(i) <- -s.(i);
    check_float (Printf.sprintf "flip %d" i) (after -. before) predicted
  done

(* --- annealers --- *)

let frustrated_triangle () =
  (* h = 0, all J = +1: ground energy -1 (any single unsatisfied edge). *)
  { Ising.n = 3; h = [| 0.0; 0.0; 0.0 |]; couplings = [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ] }

let test_sa_frustrated_triangle () =
  let rng = Rng.create 7 in
  let result = Sa.minimize ~rng (frustrated_triangle ()) in
  check_float "ground state" (-1.0) result.Sa.energy

let test_sa_finds_brute_force_optimum () =
  let rng = Rng.create 11 in
  for seed = 0 to 4 do
    let q = random_qubo (Rng.create seed) 10 0.5 in
    let _, exact = Qubo.brute_force q in
    let _, found = Sa.minimize_qubo ~rng q in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "seed %d" seed) exact found
  done

let test_sa_trace_monotone () =
  let rng = Rng.create 13 in
  let q = random_qubo (Rng.create 99) 8 0.5 in
  let model, _ = Ising.of_qubo q in
  let result = Sa.minimize ~params:{ Sa.default_params with Sa.restarts = 1 } ~rng model in
  let trace = result.Sa.energy_trace in
  for i = 1 to Array.length trace - 1 do
    Alcotest.(check bool) "best-so-far decreases" true (trace.(i) <= trace.(i - 1) +. 1e-12)
  done

let test_sa_geometric_schedule () =
  let rng = Rng.create 17 in
  let params = { Sa.sweeps = 500; schedule = Sa.Geometric (0.05, 1.01); restarts = 2 } in
  let result = Sa.minimize ~params ~rng (frustrated_triangle ()) in
  check_float "geometric also solves" (-1.0) result.Sa.energy

let test_sqa_solves_small () =
  let rng = Rng.create 19 in
  for seed = 0 to 2 do
    let q = random_qubo (Rng.create (100 + seed)) 8 0.5 in
    let _, exact = Qubo.brute_force q in
    let _, found = Sqa.minimize_qubo ~rng q in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "sqa seed %d" seed) exact found
  done

let test_digital_annealer_solves () =
  let rng = Rng.create 23 in
  let q = random_qubo (Rng.create 55) 10 0.6 in
  let _, exact = Qubo.brute_force q in
  let result = Digital_annealer.minimize ~rng q in
  Alcotest.(check (float 1e-6)) "da finds optimum" exact result.Digital_annealer.energy

let test_digital_annealer_capacity () =
  Alcotest.(check int) "8192 nodes" 8192 Digital_annealer.node_count;
  Alcotest.(check int) "90 cities" 90 (Digital_annealer.max_tsp_cities ());
  let big = Qubo.create 9000 in
  Alcotest.(check bool) "too big" false (Digital_annealer.fits big)

(* --- Chimera --- *)

let test_chimera_structure () =
  let g = Chimera.graph 2 in
  Alcotest.(check int) "32 qubits" 32 (Graph.size g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* intra-cell degree: vertical qubit in a corner cell of C2: 4 intra + 1 vertical *)
  let v = Chimera.index ~m:2 ~row:0 ~col:0 ~k:0 in
  Alcotest.(check int) "corner vertical degree" 5 (Graph.degree g v)

let test_chimera_c16_size () =
  Alcotest.(check int) "2048 qubits" 2048 (Chimera.qubit_count 16);
  let g = Chimera.c16 () in
  Alcotest.(check int) "graph size" 2048 (Graph.size g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_chimera_bipartite_cell () =
  let g = Chimera.graph 1 in
  (* no vertical-vertical or horizontal-horizontal edges inside a cell *)
  for a = 0 to 3 do
    for b = 0 to 3 do
      if a <> b then begin
        Alcotest.(check bool) "no v-v" false (Graph.has_edge g a b);
        Alcotest.(check bool) "no h-h" false (Graph.has_edge g (4 + a) (4 + b))
      end
    done
  done

let test_clique_minor_bound () =
  Alcotest.(check int) "C16 clique" 65 (Chimera.max_clique_minor 16)

(* --- embedding --- *)

let test_embed_triangle_in_chimera () =
  let rng = Rng.create 29 in
  let logical = Graph.complete 3 (fun _ _ -> 1.0) in
  let physical = Chimera.graph 2 in
  match Embedding.embed ~rng ~logical physical with
  | None -> Alcotest.fail "triangle must embed in C2"
  | Some e ->
      Alcotest.(check bool) "valid" true (Embedding.is_valid ~logical ~physical e);
      Alcotest.(check bool) "uses >= 3 qubits" true (e.Embedding.physical_used >= 3)

let test_embed_k5_heuristic_in_c4 () =
  let rng = Rng.create 31 in
  let logical = Graph.complete 5 (fun _ _ -> 1.0) in
  let physical = Chimera.graph 4 in
  match Embedding.embed ~tries:32 ~rng ~logical physical with
  | None -> Alcotest.fail "K5 should embed heuristically in C4"
  | Some e -> Alcotest.(check bool) "valid" true (Embedding.is_valid ~logical ~physical e)

let test_clique_embedding_valid () =
  (* Deterministic triangular clique embedding: K_n in C_m for n = 4m. *)
  List.iter
    (fun m ->
      let n = 4 * m in
      let logical = Graph.complete n (fun _ _ -> 1.0) in
      let physical = Chimera.graph m in
      let e = Embedding.chimera_clique ~m ~n in
      Alcotest.(check bool)
        (Printf.sprintf "K%d in C%d" n m)
        true
        (Embedding.is_valid ~logical ~physical e);
      Alcotest.(check int) "chain length 2m" (2 * m) e.Embedding.max_chain_length)
    [ 2; 3; 4 ]

let test_clique_embedding_rejects_too_large () =
  match Embedding.chimera_clique ~m:2 ~n:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n > 4m accepted"

let test_max_clique_cities () =
  (* C16: K64 guaranteed -> 8 cities via the clique route. *)
  Alcotest.(check int) "C16 cities" 8 (Embedding.max_clique_cities ~m:16)

let test_embed_fails_when_too_small () =
  let rng = Rng.create 37 in
  let logical = Graph.complete 12 (fun _ _ -> 1.0) in
  let physical = Chimera.graph 1 in
  (* C1 has only 8 qubits: 12 chains cannot fit *)
  Alcotest.(check bool) "must fail" true
    (Embedding.embed ~tries:4 ~rng ~logical physical = None)

let test_embed_identity_on_matching_graph () =
  let rng = Rng.create 41 in
  let logical = Graph.grid_2d 2 2 in
  let physical = Graph.grid_2d 4 4 in
  match Embedding.embed ~rng ~logical physical with
  | None -> Alcotest.fail "grid in grid must embed"
  | Some e ->
      Alcotest.(check bool) "valid" true (Embedding.is_valid ~logical ~physical e)

(* --- problem encoders --- *)

module Problems = Qca_anneal.Problems

let test_max_cut_square () =
  (* 4-cycle: max cut = 4 (alternating bipartition). *)
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  Graph.add_edge g 2 3 1.0;
  Graph.add_edge g 3 0 1.0;
  let q = Problems.max_cut g in
  let bits, energy = Qubo.brute_force q in
  check_float "energy = -cut" (-4.0) energy;
  check_float "cut value" 4.0 (Problems.cut_value g bits)

let test_max_cut_energy_identity () =
  let rng = Rng.create 71 in
  let g = Problems.random_max_cut_instance rng ~vertices:8 ~edge_probability:0.5 in
  let q = Problems.max_cut g in
  for _ = 1 to 20 do
    let bits = Qubo.random_assignment rng q in
    check_float "energy = -cut for all assignments" (-.Problems.cut_value g bits)
      (Qubo.energy q bits)
  done

let test_max_cut_sa_solves () =
  let rng = Rng.create 73 in
  let g = Problems.random_max_cut_instance (Rng.create 5) ~vertices:10 ~edge_probability:0.4 in
  let q = Problems.max_cut g in
  let _, exact = Qubo.brute_force q in
  let bits, _ = Sa.minimize_qubo ~rng q in
  check_float "sa reaches max cut" exact (-.Problems.cut_value g bits)

let test_number_partition () =
  let numbers = [| 3.0; 1.0; 1.0; 2.0; 2.0; 1.0 |] in
  (* total 10: perfect partition exists (5/5) *)
  let q = Problems.number_partition numbers in
  let bits, energy = Qubo.brute_force q in
  check_float "difference zero" 0.0 (Problems.partition_difference numbers bits);
  (* energy = diff^2 - total^2 *)
  check_float "energy offset" (-100.0) energy

let test_number_partition_energy_identity () =
  let rng = Rng.create 79 in
  let numbers = Array.init 7 (fun _ -> Rng.float rng 10.0) in
  let q = Problems.number_partition numbers in
  let total = Array.fold_left ( +. ) 0.0 numbers in
  for _ = 1 to 20 do
    let bits = Qubo.random_assignment rng q in
    let diff = Problems.partition_difference numbers bits in
    Alcotest.(check (float 1e-6)) "energy = diff^2 - total^2"
      ((diff *. diff) -. (total *. total))
      (Qubo.energy q bits)
  done

let test_vertex_cover_path () =
  (* path 0-1-2: minimum cover = {1} *)
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  let q = Problems.vertex_cover g in
  let bits, _ = Qubo.brute_force q in
  Alcotest.(check bool) "is a cover" true (Problems.is_vertex_cover g bits);
  Alcotest.(check int) "size 1" 1 (Problems.cover_size bits)

let test_vertex_cover_random_valid () =
  let rng = Rng.create 83 in
  let g = Problems.random_max_cut_instance (Rng.create 7) ~vertices:9 ~edge_probability:0.3 in
  let q = Problems.vertex_cover g in
  let bits, _ = Qubo.brute_force q in
  Alcotest.(check bool) "brute-force optimum is a valid cover" true
    (Problems.is_vertex_cover g bits);
  ignore rng

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_anneal"
    [
      ( "qubo",
        [
          Alcotest.test_case "energy" `Quick test_qubo_energy;
          Alcotest.test_case "symmetric key" `Quick test_qubo_symmetric_key;
          Alcotest.test_case "brute force" `Quick test_qubo_brute_force;
          Alcotest.test_case "interaction graph" `Quick test_qubo_interaction_graph;
        ] );
      ( "ising",
        [
          qtest prop_qubo_ising_isomorphism;
          qtest prop_ising_roundtrip;
          Alcotest.test_case "delta energy" `Quick test_delta_energy_matches;
        ] );
      ( "annealers",
        [
          Alcotest.test_case "sa frustrated triangle" `Quick test_sa_frustrated_triangle;
          Alcotest.test_case "sa vs brute force" `Quick test_sa_finds_brute_force_optimum;
          Alcotest.test_case "sa trace monotone" `Quick test_sa_trace_monotone;
          Alcotest.test_case "sa geometric" `Quick test_sa_geometric_schedule;
          Alcotest.test_case "sqa solves" `Quick test_sqa_solves_small;
          Alcotest.test_case "digital annealer solves" `Quick test_digital_annealer_solves;
          Alcotest.test_case "digital annealer capacity" `Quick test_digital_annealer_capacity;
        ] );
      ( "chimera",
        [
          Alcotest.test_case "structure" `Quick test_chimera_structure;
          Alcotest.test_case "c16 size" `Quick test_chimera_c16_size;
          Alcotest.test_case "bipartite cell" `Quick test_chimera_bipartite_cell;
          Alcotest.test_case "clique bound" `Quick test_clique_minor_bound;
        ] );
      ( "problems",
        [
          Alcotest.test_case "max cut square" `Quick test_max_cut_square;
          Alcotest.test_case "max cut identity" `Quick test_max_cut_energy_identity;
          Alcotest.test_case "max cut sa" `Quick test_max_cut_sa_solves;
          Alcotest.test_case "number partition" `Quick test_number_partition;
          Alcotest.test_case "partition identity" `Quick test_number_partition_energy_identity;
          Alcotest.test_case "vertex cover path" `Quick test_vertex_cover_path;
          Alcotest.test_case "vertex cover random" `Quick test_vertex_cover_random_valid;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "triangle in C2" `Quick test_embed_triangle_in_chimera;
          Alcotest.test_case "K5 heuristic in C4" `Quick test_embed_k5_heuristic_in_c4;
          Alcotest.test_case "clique embedding" `Quick test_clique_embedding_valid;
          Alcotest.test_case "clique too large" `Quick test_clique_embedding_rejects_too_large;
          Alcotest.test_case "max clique cities" `Quick test_max_clique_cities;
          Alcotest.test_case "fails when too small" `Quick test_embed_fails_when_too_small;
          Alcotest.test_case "grid in grid" `Quick test_embed_identity_on_matching_graph;
        ] );
    ]
