  $ cat > bell.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > 
  > .entangle
  >   h q[0]
  >   cnot q[0], q[1]
  > 
  > .readout
  >   measure q[0]
  >   measure q[1]
  > QASM
  $ qxc info bell.qasm
  $ qxc run bell.qasm --shots 1000 --seed 7
  $ qxc run bell.qasm --shots 1000 --seed 7 --trajectory | head -2
  $ qxc run bell.qasm --shots 1000 --seed 7 --noise 0.05 | head -2
  $ qxc run bell.qasm --shots 1000 --seed 7 --noise 0.05 | tail -n +3 | wc -l | tr -d ' '
  $ qxc run bell.qasm --shots 1000 --seed 7 --metrics - | tail -1 | tr ',' '\n' | grep -E 'plan|shots|"h"|"cnot"|measurements'
  $ qxc compile bell.qasm --platform superconducting | head -8
  $ qxc compile bell.qasm --platform superconducting --eqasm | grep -c 'SMIS\|SMIT'
  $ qxc exec bell.qasm --shots 50 --seed 3 | head -1
  $ cat > rus.qisa <<'QISA'
  > LDI r0, 0
  > LDI r1, 1
  > SMIS s0, {0}
  > try:
  > ADD r0, r0, r1
  > 1: prepz s0
  > 1: y90 s0
  > 1: measz s0
  > FMR r2, q0
  > CMP r2, r1
  > BR.ne try
  > HALT
  > QISA
  $ qxc qisa rus.qisa --qubits 1 --shots 20 --seed 5 | head -2
  $ cat > bad.qasm <<'QASM'
  > version 1.0
  > qubits 2
  > frobnicate q[0]
  > QASM
  $ qxc run bad.qasm
