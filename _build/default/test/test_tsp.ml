(* Tests for the TSP library: instances, exact solvers, heuristics, QUBO
   encoding — including Figure 9's 1.42-cost Netherlands instance. *)

module Tsp = Qca_tsp.Tsp
module Exact = Qca_tsp.Exact
module Heuristic = Qca_tsp.Heuristic
module Encode = Qca_tsp.Encode
module Qubo = Qca_anneal.Qubo
module Sa = Qca_anneal.Sa
module Rng = Qca_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_make_validation () =
  let bad_distance = [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |] in
  match Tsp.make ~name:"bad" ~cities:[| "a"; "b" |] ~distance:bad_distance with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "asymmetric accepted"

let test_tour_cost_square () =
  let t =
    Tsp.euclidean ~name:"square"
      [| ("a", 0.0, 0.0); ("b", 1.0, 0.0); ("c", 1.0, 1.0); ("d", 0.0, 1.0) |]
  in
  check_float "perimeter" 4.0 (Tsp.tour_cost t [| 0; 1; 2; 3 |]);
  check_float "crossing" (2.0 +. (2.0 *. sqrt 2.0)) (Tsp.tour_cost t [| 0; 2; 1; 3 |])

let test_valid_tour () =
  let t = Tsp.random (Rng.create 1) 5 in
  Alcotest.(check bool) "valid" true (Tsp.is_valid_tour t [| 4; 2; 0; 1; 3 |]);
  Alcotest.(check bool) "repeat invalid" false (Tsp.is_valid_tour t [| 0; 0; 1; 2; 3 |]);
  Alcotest.(check bool) "short invalid" false (Tsp.is_valid_tour t [| 0; 1; 2 |])

let test_canonical () =
  let a = Tsp.canonical [| 2; 3; 0; 1 |] in
  let b = Tsp.canonical [| 0; 1; 2; 3 |] in
  Alcotest.(check (array int)) "rotation" b a;
  let c = Tsp.canonical [| 0; 3; 2; 1 |] in
  Alcotest.(check (array int)) "reflection" b c

(* --- Figure 9 --- *)

let test_netherlands_optimal_is_1_42 () =
  let t = Tsp.netherlands () in
  Alcotest.(check int) "four cities" 4 (Tsp.size t);
  let _, cost = Exact.enumerate t in
  Alcotest.(check (float 1e-9)) "paper's 1.42" 1.42 cost

let test_netherlands_city_names () =
  let t = Tsp.netherlands () in
  Alcotest.(check bool) "Amsterdam present" true (Array.mem "Amsterdam" t.Tsp.cities);
  Alcotest.(check bool) "Eindhoven present" true (Array.mem "Eindhoven" t.Tsp.cities)

(* --- exact solvers agree --- *)

let prop_exact_solvers_agree =
  QCheck.Test.make ~name:"exact solvers agree" ~count:25
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_range 0 9999) (int_range 3 8)))
    (fun (seed, n) ->
      let t = Tsp.random (Rng.create seed) n in
      let _, c1 = Exact.enumerate t in
      let _, c2 = Exact.held_karp t in
      let _, c3 = Exact.branch_and_bound t in
      Float.abs (c1 -. c2) < 1e-9 && Float.abs (c1 -. c3) < 1e-9)

let test_exact_tours_valid () =
  let t = Tsp.random (Rng.create 77) 7 in
  List.iter
    (fun (name, solver) ->
      let tour, cost = solver t in
      Alcotest.(check bool) (name ^ " tour valid") true (Tsp.is_valid_tour t tour);
      Alcotest.(check (float 1e-9)) (name ^ " cost consistent") cost (Tsp.tour_cost t tour))
    Exact.solvers

let test_held_karp_larger () =
  let t = Tsp.random (Rng.create 3) 12 in
  let _, bb = Exact.branch_and_bound t in
  let _, hk = Exact.held_karp t in
  Alcotest.(check (float 1e-9)) "agree at n=12" bb hk

(* --- heuristics --- *)

let test_nearest_neighbour_valid () =
  let t = Tsp.random (Rng.create 5) 10 in
  let tour, cost = Heuristic.nearest_neighbour t in
  Alcotest.(check bool) "valid" true (Tsp.is_valid_tour t tour);
  let _, optimal = Exact.held_karp t in
  Alcotest.(check bool) "not better than optimal" true (cost >= optimal -. 1e-9)

let test_two_opt_improves () =
  let t = Tsp.random (Rng.create 9) 12 in
  let tour0 = Array.init 12 Fun.id in
  let cost0 = Tsp.tour_cost t tour0 in
  let tour1, cost1 = Heuristic.two_opt t tour0 in
  Alcotest.(check bool) "valid" true (Tsp.is_valid_tour t tour1);
  Alcotest.(check bool) "no worse" true (cost1 <= cost0 +. 1e-9)

let test_nn_two_opt_near_optimal () =
  (* On random Euclidean instances NN+2opt is typically within 10%. *)
  let worst = ref 0.0 in
  for seed = 0 to 9 do
    let t = Tsp.random (Rng.create (1000 + seed)) 10 in
    let result = Heuristic.nearest_neighbour_two_opt t in
    let ratio = Heuristic.approximation_ratio t result in
    worst := Float.max !worst ratio
  done;
  Alcotest.(check bool) "within 15%" true (!worst < 1.15)

let test_monte_carlo_valid () =
  let t = Tsp.random (Rng.create 21) 8 in
  let tour, cost = Heuristic.monte_carlo ~samples:500 ~rng:(Rng.create 22) t in
  Alcotest.(check bool) "valid" true (Tsp.is_valid_tour t tour);
  Alcotest.(check (float 1e-9)) "cost consistent" (Tsp.tour_cost t tour) cost

(* --- QUBO encoding --- *)

let test_qubits_needed_quadratic () =
  Alcotest.(check int) "4 cities -> 16 qubits (paper)" 16 (Encode.qubits_needed 4);
  Alcotest.(check int) "9 cities -> 81" 81 (Encode.qubits_needed 9);
  Alcotest.(check int) "90 cities -> 8100" 8100 (Encode.qubits_needed 90)

let test_tour_bits_roundtrip () =
  let t = Tsp.random (Rng.create 31) 4 in
  let tour = [| 2; 0; 3; 1 |] in
  let bits = Encode.tour_bits ~n:4 tour in
  match Encode.decode t bits with
  | Some decoded -> Alcotest.(check (array int)) "roundtrip" tour decoded
  | None -> Alcotest.fail "valid tour must decode"

let test_decode_rejects_invalid () =
  let t = Tsp.random (Rng.create 33) 3 in
  Alcotest.(check bool) "all zeros invalid" true (Encode.decode t (Array.make 9 0) = None);
  Alcotest.(check bool) "all ones invalid" true (Encode.decode t (Array.make 9 1) = None)

let test_decode_with_repair_always_valid () =
  let t = Tsp.random (Rng.create 35) 4 in
  let rng = Rng.create 36 in
  for _ = 1 to 50 do
    let bits = Array.init 16 (fun _ -> Rng.int rng 2) in
    let tour = Encode.decode_with_repair t bits in
    Alcotest.(check bool) "repaired valid" true (Tsp.is_valid_tour t tour)
  done

(* The central correctness property: the QUBO ground state *is* the optimal
   tour. Checked exactly by brute force for n = 3. *)
let test_qubo_ground_state_is_optimal_tour () =
  let t = Tsp.random (Rng.create 41) 3 in
  let q = Encode.to_qubo t in
  let bits, energy = Qubo.brute_force q in
  match Encode.decode t bits with
  | None -> Alcotest.fail "ground state must be a valid tour"
  | Some tour ->
      let _, optimal = Exact.enumerate t in
      Alcotest.(check (float 1e-9)) "tour cost optimal" optimal (Tsp.tour_cost t tour);
      (* QUBO energy = tour cost - 2 n A (both constraint blocks satisfied) *)
      let a = 4.0 *. Array.fold_left (fun m row -> Array.fold_left Float.max m row) 0.0 t.Tsp.distance in
      Alcotest.(check (float 1e-6)) "energy offset" (optimal -. (2.0 *. 3.0 *. a)) energy

let test_qubo_energy_of_encoded_tour () =
  let t = Tsp.netherlands () in
  let q = Encode.to_qubo t in
  let n = 4 in
  let tour, optimal = Exact.enumerate t in
  let bits = Encode.tour_bits ~n tour in
  let a = 4.0 *. Array.fold_left (fun m row -> Array.fold_left Float.max m row) 0.0 t.Tsp.distance in
  Alcotest.(check (float 1e-6)) "encoded optimal energy" (optimal -. (2.0 *. 4.0 *. a))
    (Qubo.energy q bits)

let test_sa_solves_netherlands_qubo () =
  (* The paper's Figure 9 flow: encode the 4-city TSP as a 16-qubit QUBO and
     solve it on an annealer; the optimum (1.42) must be recovered. *)
  let t = Tsp.netherlands () in
  let q = Encode.to_qubo t in
  let rng = Rng.create 4242 in
  let bits, _ = Sa.minimize_qubo ~params:{ Sa.default_params with Sa.restarts = 8 } ~rng q in
  match Encode.decode t bits with
  | None -> Alcotest.fail "annealer must return a valid tour"
  | Some tour -> Alcotest.(check (float 1e-9)) "cost 1.42" 1.42 (Tsp.tour_cost t tour)

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "qca_tsp"
    [
      ( "instances",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "tour cost" `Quick test_tour_cost_square;
          Alcotest.test_case "valid tours" `Quick test_valid_tour;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "netherlands 1.42" `Quick test_netherlands_optimal_is_1_42;
          Alcotest.test_case "netherlands names" `Quick test_netherlands_city_names;
        ] );
      ( "exact",
        [
          qtest prop_exact_solvers_agree;
          Alcotest.test_case "tours valid" `Quick test_exact_tours_valid;
          Alcotest.test_case "held-karp n=12" `Quick test_held_karp_larger;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "nearest neighbour" `Quick test_nearest_neighbour_valid;
          Alcotest.test_case "two-opt improves" `Quick test_two_opt_improves;
          Alcotest.test_case "nn+2opt near optimal" `Quick test_nn_two_opt_near_optimal;
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo_valid;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "qubits quadratic" `Quick test_qubits_needed_quadratic;
          Alcotest.test_case "tour bits roundtrip" `Quick test_tour_bits_roundtrip;
          Alcotest.test_case "decode rejects invalid" `Quick test_decode_rejects_invalid;
          Alcotest.test_case "repair always valid" `Quick test_decode_with_repair_always_valid;
          Alcotest.test_case "ground state = optimal tour" `Quick test_qubo_ground_state_is_optimal_tour;
          Alcotest.test_case "encoded tour energy" `Quick test_qubo_energy_of_encoded_tour;
          Alcotest.test_case "sa solves netherlands" `Quick test_sa_solves_netherlands_qubo;
        ] );
    ]
