(* Tests for the QAOA hybrid optimiser. *)

module Qaoa = Qca_qaoa.Qaoa
module Ising = Qca_anneal.Ising
module Qubo = Qca_anneal.Qubo
module State = Qca_qx.State
module Sim = Qca_qx.Sim
module Circuit = Qca_circuit.Circuit
module Rng = Qca_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let antiferro_pair () =
  (* J = +1 on one pair: ground states |01>, |10> with energy -1. *)
  { Ising.n = 2; h = [| 0.0; 0.0 |]; couplings = [ (0, 1, 1.0) ] }

let field_only () = { Ising.n = 2; h = [| 0.5; -0.8 |]; couplings = [] }

let test_spin_energy_of_basis () =
  let m = antiferro_pair () in
  check_float "00 -> ++ = +1" 1.0 (Qaoa.spin_energy_of_basis m 3);
  check_float "01 -> -+ = -1" (-1.0) (Qaoa.spin_energy_of_basis m 1);
  let f = field_only () in
  (* basis 0: both spins -1: E = -0.5 + 0.8 *)
  check_float "fields" 0.3 (Qaoa.spin_energy_of_basis f 0)

let test_zero_params_uniform () =
  let m = antiferro_pair () in
  let p = { Qaoa.gammas = [| 0.0 |]; betas = [| 0.0 |] } in
  let state = Qaoa.evolve m p in
  for k = 0 to 3 do
    check_float "uniform" 0.25 (State.probability_of state k)
  done;
  (* <H> over uniform distribution: (1 - 1 - 1 + 1)/4 = 0 *)
  check_float "expectation 0" 0.0 (Qaoa.expectation m p)

let test_expectation_bounded_by_ground () =
  let m = antiferro_pair () in
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    let p =
      { Qaoa.gammas = [| Rng.float rng Float.pi |]; betas = [| Rng.float rng Float.pi |] }
    in
    let e = Qaoa.expectation m p in
    Alcotest.(check bool) "above ground energy" true (e >= -1.0 -. 1e-9);
    Alcotest.(check bool) "below max energy" true (e <= 1.0 +. 1e-9)
  done

let test_cost_circuit_matches_diagonal () =
  (* The gate-level cost layer must equal the diagonal evolution up to
     global phase: compare QAOA states built both ways. *)
  let m = { Ising.n = 3; h = [| 0.3; -0.2; 0.0 |]; couplings = [ (0, 1, 0.7); (1, 2, -0.4) ] } in
  let gamma = 0.613 in
  (* way 1: direct diagonal *)
  let s1 = State.create 3 in
  for q = 0 to 2 do
    Qca_qx.State.apply s1 Qca_circuit.Gate.H [| q |]
  done;
  let energies = Array.init 8 (Qaoa.spin_energy_of_basis m) in
  State.apply_diagonal_phase s1 (fun k -> -.gamma *. energies.(k));
  (* way 2: circuit *)
  let c = Qaoa.cost_circuit m gamma in
  let s2 = State.create 3 in
  for q = 0 to 2 do
    Qca_qx.State.apply s2 Qca_circuit.Gate.H [| q |]
  done;
  List.iter
    (fun instr ->
      match instr with
      | Qca_circuit.Gate.Unitary (u, ops) -> State.apply s2 u ops
      | Qca_circuit.Gate.Conditional _ | Qca_circuit.Gate.Prep _
      | Qca_circuit.Gate.Measure _ | Qca_circuit.Gate.Barrier _ -> ())
    (Circuit.instructions c);
  Alcotest.(check (float 1e-9)) "fidelity 1 (phase-insensitive)" 1.0 (State.fidelity s1 s2)

let test_full_circuit_matches_evolve () =
  let m = antiferro_pair () in
  let p = { Qaoa.gammas = [| 0.4; 0.9 |]; betas = [| 0.7; 0.2 |] } in
  let direct = Qaoa.evolve m p in
  let circuit = Qaoa.full_circuit m p in
  let via_circuit = (Sim.run circuit).Sim.state in
  Alcotest.(check (float 1e-9)) "fidelity 1" 1.0 (State.fidelity direct via_circuit)

let test_optimize_antiferro () =
  let rng = Rng.create 7 in
  let result = Qaoa.optimize ~layers:1 ~rng (antiferro_pair ()) in
  (* p=1 QAOA solves a single antiferromagnetic pair exactly. *)
  Alcotest.(check (float 1e-9)) "ground energy found" (-1.0) result.Qaoa.best_energy;
  Alcotest.(check bool) "expectation below 0" true (result.Qaoa.expectation_value < -0.5)

let test_optimize_finds_field_ground () =
  let rng = Rng.create 11 in
  let m = field_only () in
  let result = Qaoa.optimize ~layers:2 ~rng m in
  (* ground: s0 = -1 (h>0), s1 = +1 (h<0): E = -0.5 - 0.8 = -1.3 *)
  Alcotest.(check (float 1e-9)) "ground" (-1.3) result.Qaoa.best_energy

let test_more_layers_no_worse () =
  let rng1 = Rng.create 13 and rng2 = Rng.create 13 in
  let m =
    { Ising.n = 4; h = [| 0.1; -0.3; 0.2; 0.0 |];
      couplings = [ (0, 1, 1.0); (1, 2, -0.5); (2, 3, 0.8); (0, 3, 0.4) ] }
  in
  let r1 = Qaoa.optimize ~layers:1 ~restarts:4 ~rng:rng1 m in
  let r2 = Qaoa.optimize ~layers:2 ~restarts:4 ~rng:rng2 m in
  Alcotest.(check bool) "deeper circuit at least as good (expectation)" true
    (r2.Qaoa.expectation_value <= r1.Qaoa.expectation_value +. 0.05)

let test_solve_qubo_small () =
  let q = Qubo.create 3 in
  Qubo.add q 0 0 (-1.0);
  Qubo.add q 1 1 2.0;
  Qubo.add q 0 2 (-2.0);
  Qubo.add q 2 2 0.5;
  let _, exact = Qubo.brute_force q in
  let rng = Rng.create 17 in
  let _, found = Qaoa.solve_qubo ~layers:2 ~shots:512 ~rng q in
  Alcotest.(check (float 1e-6)) "qaoa finds qubo optimum" exact found

let test_qaoa_through_realistic_stack () =
  (* The full_circuit lowered through the superconducting compiler and run
     with noise must still concentrate probability on the two ground states
     of the antiferromagnetic pair. *)
  let m = antiferro_pair () in
  let rng = Rng.create 808 in
  let tuned = Qaoa.optimize ~layers:1 ~restarts:2 ~rng m in
  let circuit = Qaoa.full_circuit m tuned.Qaoa.params in
  let with_meas =
    Circuit.append circuit
      (Circuit.of_list 2 [ Qca_circuit.Gate.Measure 0; Qca_circuit.Gate.Measure 1 ])
  in
  let out =
    Qca_compiler.Compiler.compile Qca_compiler.Platform.superconducting_17
      Qca_compiler.Compiler.Realistic with_meas
  in
  let hist = Qca_compiler.Compiler.execute ~shots:400 ~rng out in
  let ground_mass =
    List.fold_left
      (fun acc (key, count) ->
        let n = String.length key in
        let b0 = key.[n - 1] and b1 = key.[n - 2] in
        if (b0 = '0' && b1 = '1') || (b0 = '1' && b1 = '0') then acc + count else acc)
      0 hist
  in
  Alcotest.(check bool) "ground states dominate through the stack" true
    (float_of_int ground_mass /. 400.0 > 0.75)

let test_evaluations_counted () =
  let rng = Rng.create 19 in
  let result = Qaoa.optimize ~layers:1 ~restarts:1 ~rng (antiferro_pair ()) in
  Alcotest.(check bool) "evaluations > 10" true (result.Qaoa.evaluations > 10)

let () =
  Alcotest.run "qca_qaoa"
    [
      ( "qaoa",
        [
          Alcotest.test_case "spin energy of basis" `Quick test_spin_energy_of_basis;
          Alcotest.test_case "zero params uniform" `Quick test_zero_params_uniform;
          Alcotest.test_case "expectation bounds" `Quick test_expectation_bounded_by_ground;
          Alcotest.test_case "cost circuit diagonal" `Quick test_cost_circuit_matches_diagonal;
          Alcotest.test_case "full circuit = evolve" `Quick test_full_circuit_matches_evolve;
          Alcotest.test_case "optimize antiferro" `Quick test_optimize_antiferro;
          Alcotest.test_case "optimize fields" `Quick test_optimize_finds_field_ground;
          Alcotest.test_case "layers monotone-ish" `Quick test_more_layers_no_worse;
          Alcotest.test_case "solve qubo" `Quick test_solve_qubo_small;
          Alcotest.test_case "evaluations counted" `Quick test_evaluations_counted;
          Alcotest.test_case "through realistic stack" `Quick test_qaoa_through_realistic_stack;
        ] );
    ]
