(* Tests for the genome-sequencing accelerator: DNA, reference DB, Grover
   search (functional and gate-level), and the alignment pipeline. *)

module Dna = Qca_genome.Dna
module Reference_db = Qca_genome.Reference_db
module Classical_align = Qca_genome.Classical_align
module Grover = Qca_genome.Grover
module Align = Qca_genome.Align
module Rng = Qca_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* --- DNA --- *)

let test_dna_string_roundtrip () =
  let s = "ACGTACGT" in
  Alcotest.(check string) "roundtrip" s (Dna.to_string (Dna.of_string s))

let test_dna_bits_roundtrip () =
  let seq = Dna.of_string "TGCA" in
  let bits = Dna.encode_bits seq in
  Alcotest.(check string) "bits roundtrip" "TGCA" (Dna.to_string (Dna.decode_bits ~len:4 bits))

let test_dna_hamming () =
  let a = Dna.of_string "ACGT" and b = Dna.of_string "ACCA" in
  Alcotest.(check int) "distance 2" 2 (Dna.hamming a b);
  Alcotest.(check int) "self 0" 0 (Dna.hamming a a)

let test_mutate_rate () =
  let rng = Rng.create 1 in
  let seq = Dna.random rng 2000 in
  let mutated = Dna.mutate rng ~rate:0.1 seq in
  let d = float_of_int (Dna.hamming seq mutated) /. 2000.0 in
  Alcotest.(check (float 0.03)) "mutation rate" 0.1 d

let test_markov_statistics () =
  let rng = Rng.create 2 in
  let seq = Dna.markov rng 20000 in
  (* GC content near the profile's ~41% stationary value *)
  let gc = Dna.gc_content seq in
  Alcotest.(check bool) "gc in [0.35, 0.50]" true (gc > 0.35 && gc < 0.50);
  (* CpG depletion: C->G transitions rarer than C->C *)
  let cg = ref 0 and cc = ref 0 in
  for i = 0 to Dna.length seq - 2 do
    match seq.(i), seq.(i + 1) with
    | Dna.C, Dna.G -> incr cg
    | Dna.C, Dna.C -> incr cc
    | _, _ -> ()
  done;
  Alcotest.(check bool) "CpG depleted" true (!cg < !cc)

let test_entropy_preserved () =
  (* The "entropic complexity" claim: the Markov genome's 1-mer entropy is
     close to the iid genome's (both near 2 bits), and its 2-mer entropy is
     below 2x 1-mer (structure exists) but not degenerate. *)
  let rng = Rng.create 3 in
  let markov = Dna.markov rng 10000 in
  let e1 = Dna.shannon_entropy ~k:1 markov in
  let e2 = Dna.shannon_entropy ~k:2 markov in
  Alcotest.(check bool) "1-mer entropy ~2 bits" true (e1 > 1.9 && e1 <= 2.0);
  Alcotest.(check bool) "2-mer structured" true (e2 > 3.5 && e2 < 2.0 *. e1 +. 1e-9)

let test_subsequence_bounds () =
  let seq = Dna.of_string "ACGTACGT" in
  Alcotest.(check string) "mid" "GTAC" (Dna.to_string (Dna.subsequence seq ~pos:2 ~len:4));
  match Dna.subsequence seq ~pos:6 ~len:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range accepted"

(* --- reference DB --- *)

let test_db_build () =
  let reference = Dna.of_string "ACGTACGTAC" in
  let db = Reference_db.build reference ~width:4 in
  Alcotest.(check int) "entries" 7 (Reference_db.size db);
  Alcotest.(check string) "entry 0" "ACGT" (Dna.to_string (Reference_db.entry db 0));
  Alcotest.(check string) "entry 6" "GTAC" (Dna.to_string (Reference_db.entry db 6));
  Alcotest.(check int) "index qubits" 3 (Reference_db.index_qubits db);
  Alcotest.(check int) "content qubits" 8 (Reference_db.content_qubits db)

let test_db_matches_within () =
  let reference = Dna.of_string "AAAACCCCGGGG" in
  let db = Reference_db.build reference ~width:4 in
  let exact = Reference_db.matches_within db (Dna.of_string "CCCC") 0 in
  Alcotest.(check (list int)) "exact match at 4" [ 4 ] exact;
  let near = Reference_db.matches_within db (Dna.of_string "CCCA") 1 in
  Alcotest.(check bool) "near matches include 4" true (List.mem 4 near)

let test_db_best_match () =
  let reference = Dna.of_string "ACGTTTTTACGG" in
  let db = Reference_db.build reference ~width:4 in
  let i, d = Reference_db.best_match db (Dna.of_string "ACGT") in
  Alcotest.(check int) "position" 0 i;
  Alcotest.(check int) "distance" 0 d

(* --- classical baselines --- *)

let test_linear_scan () =
  let reference = Dna.of_string "TTTTACGTTTTT" in
  let db = Reference_db.build reference ~width:4 in
  let stats = Classical_align.linear_scan db (Dna.of_string "ACGT") in
  Alcotest.(check int) "found" 4 stats.Classical_align.index;
  Alcotest.(check int) "distance" 0 stats.Classical_align.distance;
  Alcotest.(check int) "comparisons = N" (Reference_db.size db) stats.Classical_align.comparisons

let test_early_exit_scan () =
  let reference = Dna.of_string "TTTTACGTTTTT" in
  let db = Reference_db.build reference ~width:4 in
  let stats = Classical_align.early_exit_scan db (Dna.of_string "ACGT") in
  Alcotest.(check int) "found" 4 stats.Classical_align.index;
  Alcotest.(check int) "stopped early" 5 stats.Classical_align.comparisons

let test_expected_queries () =
  check_float "classical expectation" 50.5 (Classical_align.expected_queries_classical 100)

(* --- Grover --- *)

let test_optimal_iterations () =
  Alcotest.(check int) "N=4 M=1" 1 (Grover.optimal_iterations ~matches:1 ~size:4);
  Alcotest.(check int) "N=16 M=1" 3 (Grover.optimal_iterations ~matches:1 ~size:16);
  Alcotest.(check int) "N=256 M=1" 12 (Grover.optimal_iterations ~matches:1 ~size:256);
  Alcotest.(check int) "N=16 M=4" 1 (Grover.optimal_iterations ~matches:4 ~size:16)

let test_grover_single_marked () =
  let rng = Rng.create 5 in
  let outcome = Grover.search ~rng ~n_qubits:6 ~oracle:(fun k -> k = 37) () in
  Alcotest.(check bool) "high success" true (outcome.Grover.success_probability > 0.9);
  Alcotest.(check int) "measured the target" 37 outcome.Grover.measured

let test_grover_n4_exact () =
  (* N=4, M=1: one iteration reaches success probability exactly 1. *)
  let p = Grover.success_after ~n_qubits:2 ~oracle:(fun k -> k = 2) 1 in
  check_float "certain" 1.0 p

let test_grover_multiple_marked () =
  let rng = Rng.create 7 in
  let marked k = k = 3 || k = 12 || k = 40 in
  let outcome = Grover.search ~rng ~n_qubits:6 ~oracle:marked () in
  Alcotest.(check bool) "success > 0.85" true (outcome.Grover.success_probability > 0.85);
  Alcotest.(check bool) "measured a marked item" true (marked outcome.Grover.measured)

let test_grover_overrotation_hurts () =
  let oracle k = k = 5 in
  let optimal = Grover.optimal_iterations ~matches:1 ~size:64 in
  let at_opt = Grover.success_after ~n_qubits:6 ~oracle optimal in
  let over = Grover.success_after ~n_qubits:6 ~oracle (2 * optimal) in
  Alcotest.(check bool) "overrotation drops success" true (over < at_opt)

let test_grover_quadratic_scaling () =
  (* iterations ~ pi/4 sqrt(N): doubling qubits (4x N) doubles iterations. *)
  let i8 = Grover.optimal_iterations ~matches:1 ~size:256 in
  let i10 = Grover.optimal_iterations ~matches:1 ~size:1024 in
  Alcotest.(check bool) "doubles" true (abs (i10 - (2 * i8)) <= 1)

let test_search_unknown_finds () =
  let rng = Rng.create 1001 in
  (* unknown match count: 5 marked items out of 256 *)
  let marked = [ 7; 31; 100; 200; 255 ] in
  let oracle k = List.mem k marked in
  let successes = ref 0 and total_queries = ref 0 in
  let trials = 25 in
  for _ = 1 to trials do
    match Grover.search_unknown ~rng ~n_qubits:8 ~oracle () with
    | Some outcome ->
        if oracle outcome.Grover.measured then incr successes;
        total_queries := !total_queries + outcome.Grover.oracle_queries
    | None -> ()
  done;
  Alcotest.(check int) "always finds a marked item" trials !successes;
  (* expected queries ~ sqrt(256/5) ~ 7; allow generous slack but require
     way below the classical N/M ~ 51 *)
  let mean = float_of_int !total_queries /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "sublinear queries (%.1f)" mean) true (mean < 30.0)

let test_search_unknown_single_match () =
  let rng = Rng.create 1003 in
  for _ = 1 to 10 do
    match Grover.search_unknown ~rng ~n_qubits:6 ~oracle:(fun k -> k = 42) () with
    | Some outcome -> Alcotest.(check int) "found 42" 42 outcome.Grover.measured
    | None -> Alcotest.fail "BBHT must find the single match"
  done

let test_search_unknown_no_match_heralds () =
  let rng = Rng.create 1005 in
  Alcotest.(check bool) "returns None" true
    (Grover.search_unknown ~rng ~n_qubits:6 ~oracle:(fun _ -> false) () = None)

let test_grover_circuit_matches_functional () =
  (* Gate-level Grover (with ancillas) must match the functional oracle
     version on small registers. *)
  List.iter
    (fun n_qubits ->
      let pattern = (1 lsl n_qubits) - 2 in
      let circuit_p = Grover.circuit_success_probability ~n_qubits ~pattern in
      let k = Grover.optimal_iterations ~matches:1 ~size:(1 lsl n_qubits) in
      let functional_p = Grover.success_after ~n_qubits ~oracle:(fun x -> x = pattern) k in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=%d" n_qubits)
        functional_p circuit_p)
    [ 2; 3; 4; 5 ]

(* --- alignment pipeline --- *)

let test_align_exact_read () =
  let rng = Rng.create 11 in
  let reference = Dna.markov (Rng.create 99) 128 in
  let db = Reference_db.build reference ~width:8 in
  let read = Reference_db.entry db 42 in
  let report = Align.align ~rng db read in
  Alcotest.(check int) "distance 0" 0 report.Align.distance;
  Alcotest.(check int) "tolerance 0" 0 report.Align.tolerance_used;
  Alcotest.(check bool) "quantum found a perfect site" true
    (Dna.hamming (Reference_db.entry db report.Align.position) read = 0);
  Alcotest.(check bool) "speedup > 1" true (report.Align.speedup_queries > 1.0)

let test_align_noisy_read () =
  let rng = Rng.create 13 in
  let reference = Dna.markov (Rng.create 123) 128 in
  let db = Reference_db.build reference ~width:10 in
  let read = Dna.mutate rng ~rate:0.1 (Reference_db.entry db 17) in
  let report = Align.align ~rng db read in
  Alcotest.(check bool) "tolerance widened or exact" true (report.Align.tolerance_used >= 0);
  Alcotest.(check bool) "aligned within tolerance" true
    (report.Align.distance <= report.Align.tolerance_used
    || report.Align.distance = report.Align.classical.Classical_align.distance)

let test_align_rejects_wrong_width () =
  let rng = Rng.create 17 in
  let db = Reference_db.build (Dna.random (Rng.create 1) 64) ~width:8 in
  match Align.align ~rng db (Dna.of_string "ACGT") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong width accepted"

let test_align_many_accuracy () =
  let rng = Rng.create 19 in
  let reference = Dna.markov (Rng.create 7) 200 in
  let db = Reference_db.build reference ~width:10 in
  let reads =
    List.init 10 (fun i -> Dna.mutate rng ~rate:0.05 (Reference_db.entry db (i * 17)))
  in
  let reports, accuracy = Align.align_many ~rng db reads in
  Alcotest.(check int) "all aligned" 10 (List.length reports);
  Alcotest.(check bool) "accuracy > 0.7" true (accuracy > 0.7)

let test_qubit_budget () =
  let db = Reference_db.build (Dna.random (Rng.create 1) 128) ~width:10 in
  Alcotest.(check int) "index + content" (7 + 20) (Align.qubit_budget db)

let test_human_genome_estimate () =
  (* The paper estimates ~150 logical qubits for human genome search. *)
  let estimate = Align.human_genome_logical_qubit_estimate () in
  Alcotest.(check bool) "within [130, 170]" true (estimate >= 130 && estimate <= 170)

(* --- de novo assembly --- *)

module Assembly = Qca_genome.Assembly

let test_overlap () =
  Alcotest.(check int) "ACGT/GTAC" 2 (Assembly.overlap (Dna.of_string "ACGT") (Dna.of_string "GTAC"));
  Alcotest.(check int) "no overlap" 0 (Assembly.overlap (Dna.of_string "AAAA") (Dna.of_string "CCCC"));
  Alcotest.(check int) "full prefix" 3 (Assembly.overlap (Dna.of_string "TACG") (Dna.of_string "ACGT"))

let test_superstring () =
  let reads = [| Dna.of_string "ACGT"; Dna.of_string "GTAC" |] in
  Alcotest.(check string) "merged" "ACGTAC" (Dna.to_string (Assembly.superstring reads [| 0; 1 |]))

let test_greedy_reassembles () =
  let reference = Dna.of_string "ACGTTGCAACGGT" in
  (* overlapping reads covering the reference in order *)
  let reads =
    [| Dna.subsequence reference ~pos:0 ~len:6;
       Dna.subsequence reference ~pos:4 ~len:6;
       Dna.subsequence reference ~pos:8 ~len:5 |]
  in
  let r = Assembly.greedy reads in
  Alcotest.(check string) "reference recovered" (Dna.to_string reference)
    (Dna.to_string r.Assembly.assembled)

let test_exact_beats_or_ties_greedy () =
  let rng = Rng.create 5150 in
  for seed = 0 to 4 do
    let reference = Dna.markov (Rng.create (400 + seed)) 60 in
    let reads = Assembly.shotgun rng ~reference ~read_length:15 ~coverage:2.0 in
    if Array.length reads <= 12 then begin
      let g = Assembly.greedy reads in
      let e = Assembly.exact reads in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exact (%d) >= greedy (%d)" seed e.Assembly.total_overlap
           g.Assembly.total_overlap)
        true
        (e.Assembly.total_overlap >= g.Assembly.total_overlap)
    end
  done

let test_anneal_assembles_small () =
  let rng = Rng.create 6001 in
  let reference = Dna.of_string "ACGTTGCAACG" in
  let reads =
    [| Dna.subsequence reference ~pos:0 ~len:5;
       Dna.subsequence reference ~pos:3 ~len:5;
       Dna.subsequence reference ~pos:6 ~len:5 |]
  in
  let e = Assembly.exact reads in
  let a =
    Assembly.anneal
      ~params:{ Qca_anneal.Sa.default_params with Qca_anneal.Sa.restarts = 8 }
      ~rng reads
  in
  Alcotest.(check bool)
    (Printf.sprintf "annealer overlap %d vs exact %d" a.Assembly.total_overlap
       e.Assembly.total_overlap)
    true
    (a.Assembly.total_overlap >= e.Assembly.total_overlap - 1);
  Alcotest.(check int) "qubits for 3 reads" 16 (Assembly.qubits_needed 3)

let test_shotgun_properties () =
  let rng = Rng.create 6007 in
  let reference = Dna.markov (Rng.create 9) 100 in
  let reads = Assembly.shotgun rng ~reference ~read_length:20 ~coverage:3.0 in
  Alcotest.(check int) "count = coverage * len / read_len" 15 (Array.length reads);
  Array.iter
    (fun read -> Alcotest.(check int) "read length" 20 (Dna.length read))
    reads

let () =
  Alcotest.run "qca_genome"
    [
      ( "dna",
        [
          Alcotest.test_case "string roundtrip" `Quick test_dna_string_roundtrip;
          Alcotest.test_case "bits roundtrip" `Quick test_dna_bits_roundtrip;
          Alcotest.test_case "hamming" `Quick test_dna_hamming;
          Alcotest.test_case "mutate rate" `Quick test_mutate_rate;
          Alcotest.test_case "markov statistics" `Quick test_markov_statistics;
          Alcotest.test_case "entropy preserved" `Quick test_entropy_preserved;
          Alcotest.test_case "subsequence bounds" `Quick test_subsequence_bounds;
        ] );
      ( "reference-db",
        [
          Alcotest.test_case "build" `Quick test_db_build;
          Alcotest.test_case "matches within" `Quick test_db_matches_within;
          Alcotest.test_case "best match" `Quick test_db_best_match;
        ] );
      ( "classical",
        [
          Alcotest.test_case "linear scan" `Quick test_linear_scan;
          Alcotest.test_case "early exit" `Quick test_early_exit_scan;
          Alcotest.test_case "expected queries" `Quick test_expected_queries;
        ] );
      ( "grover",
        [
          Alcotest.test_case "optimal iterations" `Quick test_optimal_iterations;
          Alcotest.test_case "single marked" `Quick test_grover_single_marked;
          Alcotest.test_case "N=4 exact" `Quick test_grover_n4_exact;
          Alcotest.test_case "multiple marked" `Quick test_grover_multiple_marked;
          Alcotest.test_case "overrotation" `Quick test_grover_overrotation_hurts;
          Alcotest.test_case "quadratic scaling" `Quick test_grover_quadratic_scaling;
          Alcotest.test_case "unknown count finds" `Quick test_search_unknown_finds;
          Alcotest.test_case "unknown single match" `Quick test_search_unknown_single_match;
          Alcotest.test_case "unknown no match" `Quick test_search_unknown_no_match_heralds;
          Alcotest.test_case "circuit matches functional" `Quick test_grover_circuit_matches_functional;
        ] );
      ( "assembly",
        [
          Alcotest.test_case "overlap" `Quick test_overlap;
          Alcotest.test_case "superstring" `Quick test_superstring;
          Alcotest.test_case "greedy reassembles" `Quick test_greedy_reassembles;
          Alcotest.test_case "exact >= greedy" `Quick test_exact_beats_or_ties_greedy;
          Alcotest.test_case "annealer assembles" `Quick test_anneal_assembles_small;
          Alcotest.test_case "shotgun" `Quick test_shotgun_properties;
        ] );
      ( "alignment",
        [
          Alcotest.test_case "exact read" `Quick test_align_exact_read;
          Alcotest.test_case "noisy read" `Quick test_align_noisy_read;
          Alcotest.test_case "wrong width" `Quick test_align_rejects_wrong_width;
          Alcotest.test_case "batch accuracy" `Quick test_align_many_accuracy;
          Alcotest.test_case "qubit budget" `Quick test_qubit_budget;
          Alcotest.test_case "human genome estimate" `Quick test_human_genome_estimate;
        ] );
    ]
