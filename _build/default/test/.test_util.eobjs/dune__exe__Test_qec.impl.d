test/test_qec.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qca_circuit Qca_qec Qca_qx Qca_util
