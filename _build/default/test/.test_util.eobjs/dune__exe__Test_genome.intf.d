test/test_genome.mli:
