test/test_genome.ml: Alcotest Array List Printf Qca_anneal Qca_genome Qca_util
