test/test_circuit.ml: Alcotest Float List Printf QCheck QCheck_alcotest Qca_circuit Qca_util String
