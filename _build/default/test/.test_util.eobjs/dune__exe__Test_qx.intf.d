test/test_qx.mli:
