test/test_compiler.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qca_circuit Qca_compiler Qca_qx Qca_util String
