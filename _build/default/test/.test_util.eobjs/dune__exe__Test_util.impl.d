test/test_util.ml: Alcotest Array Float Fun Gen List QCheck QCheck_alcotest Qca_util
