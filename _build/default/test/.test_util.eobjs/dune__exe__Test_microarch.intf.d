test/test_microarch.mli:
