test/test_qx.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qca_circuit Qca_qx Qca_util
