test/test_qx.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Qca_circuit Qca_qx Qca_util String
