test/test_tsp.mli:
