test/test_anneal.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qca_anneal Qca_util
