test/test_qaoa.ml: Alcotest Array Float List Qca_anneal Qca_circuit Qca_compiler Qca_qaoa Qca_qx Qca_util String
