test/test_tsp.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Qca_anneal Qca_tsp Qca_util
