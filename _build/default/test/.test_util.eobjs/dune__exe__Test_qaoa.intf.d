test/test_qaoa.mli:
