test/test_microarch.ml: Alcotest Array Float List Printf Qca_circuit Qca_compiler Qca_microarch Qca_qx Qca_util String
