bench/main.mli:
