bench/experiments.ml: Array Float List Printf Qca Qca_anneal Qca_circuit Qca_compiler Qca_genome Qca_microarch Qca_qaoa Qca_qec Qca_qx Qca_tsp Qca_util String Sys
