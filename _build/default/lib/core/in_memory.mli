(** Section 5's in-memory computing argument, quantified.

    The paper argues that quantum computing is inherently in-memory: logic
    is applied where the qubits live, and what moves is the occasional qubit
    state for a nearest-neighbour two-qubit gate — exactly the
    data-vs-logic movement trade-off of memristor architectures. This
    module provides the first-order traffic model for the three
    architectures and measures the quantum column directly from the
    routing pass. *)

type architecture =
  | Von_neumann  (** Every operation ships its operands over the bus. *)
  | In_memory  (** Logic moves to data; only non-local intermediates move. *)
  | Quantum_nearest_neighbour
      (** Gates act in place; SWAP chains move states for distant pairs. *)

val architecture_to_string : architecture -> string

type workload = {
  operations : int;  (** Total compute operations. *)
  operands_per_op : int;
  locality : float;  (** Fraction of operations whose operands are local. *)
}

val data_movements : architecture -> workload -> movement_per_distant_op:float -> float
(** Expected operand movements: the von Neumann column ignores locality
    (everything crosses the bus), the in-memory and quantum columns pay
    only for the non-local fraction, the quantum column weighted by the
    measured SWAP cost per distant interaction. *)

type routing_pressure = {
  two_qubit_gates : int;
  swaps_inserted : int;
  swaps_per_interaction : float;  (** The measured movement_per_distant_op. *)
  locality_measured : float;  (** Fraction of 2q gates already adjacent. *)
}

val measure_routing : Qca_compiler.Platform.t -> Qca_circuit.Circuit.t -> routing_pressure
(** Run the mapper and extract the quantum data-movement numbers for a
    circuit on a nearest-neighbour platform. *)

val comparison_table : workload -> movement_per_distant_op:float -> (string * float) list
(** Movements per architecture, for printing. *)
