module State = Qca_qx.State
module Gate = Qca_circuit.Gate
module Rng = Qca_util.Rng

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let mod_pow a k n =
  assert (k >= 0 && n > 0);
  let rec go base k acc =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then acc * base mod n else acc in
      go (base * base mod n) (k lsr 1) acc
  in
  go (a mod n) k 1

let continued_fraction_denominator ~numerator ~denominator ~limit =
  (* Convergent denominators q_k of numerator/denominator. *)
  let rec expand num den acc =
    if den = 0 then List.rev acc
    else expand den (num mod den) ((num / den) :: acc)
  in
  let coefficients = expand numerator denominator [] in
  (* q_0 = 1 (the integer part a_0 has denominator 1); thereafter
     q_k = a_k q_{k-1} + q_{k-2}. *)
  let rec convergents coeffs q_prev q_prev2 acc =
    match coeffs with
    | [] -> List.rev acc
    | a :: rest ->
        let q = (a * q_prev) + q_prev2 in
        if q > limit then List.rev acc else convergents rest q q_prev (q :: acc)
  in
  match coefficients with
  | [] -> []
  | _a0 :: rest -> convergents rest 1 0 [ 1 ]

let classical_order a n =
  if gcd a n <> 1 then invalid_arg "Shor.classical_order: gcd(a, n) <> 1";
  let rec go r value = if value = 1 then r else go (r + 1) (value * a mod n) in
  go 1 (a mod n)

type order_result = {
  order : int option;
  measured_phase : int;
  counting_qubits : int;
  work_qubits : int;
  attempts : int;
}

let bits_needed n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 1

(* One phase-estimation run; returns the measured counting value. *)
let phase_estimation rng ~a ~modulus ~counting ~work =
  let total = counting + work in
  let state = State.create total in
  (* counting register: qubits 0 .. counting-1; work: counting .. total-1 *)
  for q = 0 to counting - 1 do
    State.apply state Gate.H [| q |]
  done;
  (* work register starts in |1> *)
  State.apply state Gate.X [| counting |];
  let work_mask = ((1 lsl work) - 1) lsl counting in
  let multiply_by m basis =
    let w = (basis land work_mask) lsr counting in
    if w >= modulus then basis (* values outside Z_N are fixed points *)
    else begin
      let w' = w * m mod modulus in
      (basis land lnot work_mask) lor (w' lsl counting)
    end
  in
  for k = 0 to counting - 1 do
    let m = mod_pow a (1 lsl k) modulus in
    State.apply_controlled_permutation state ~control:k (multiply_by m)
  done;
  (* inverse QFT on the counting register (little-endian convention of
     Library.qft, restricted to the first [counting] qubits) *)
  let iqft = Qca_circuit.Circuit.inverse (Qca_circuit.Library.qft counting) in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary (u, ops) -> State.apply state u ops
      | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Qca_circuit.Circuit.instructions iqft);
  (* measure the counting register *)
  let result = ref 0 in
  for q = 0 to counting - 1 do
    if State.measure state rng q = 1 then result := !result lor (1 lsl q)
  done;
  !result

let find_order ?(max_attempts = 10) ~rng ~a ~modulus () =
  if modulus < 3 then invalid_arg "Shor.find_order: modulus too small";
  if gcd a modulus <> 1 then invalid_arg "Shor.find_order: gcd(a, modulus) <> 1";
  let work = bits_needed modulus in
  let counting = 2 * work in
  if counting + work > 22 then invalid_arg "Shor.find_order: register too large to simulate";
  let dim = 1 lsl counting in
  let rec attempt k last_phase =
    if k > max_attempts then
      {
        order = None;
        measured_phase = last_phase;
        counting_qubits = counting;
        work_qubits = work;
        attempts = k - 1;
      }
    else begin
      let phase = phase_estimation rng ~a ~modulus ~counting ~work in
      if phase = 0 then attempt (k + 1) phase
      else begin
        let candidates =
          continued_fraction_denominator ~numerator:phase ~denominator:dim ~limit:modulus
        in
        (* accept the first candidate (or small multiple) that is a real order *)
        let verified =
          List.find_map
            (fun r ->
              List.find_map
                (fun mult ->
                  let candidate = r * mult in
                  if candidate > 0 && candidate < modulus && mod_pow a candidate modulus = 1
                  then Some candidate
                  else None)
                [ 1; 2; 3; 4 ])
            candidates
        in
        match verified with
        | Some r ->
            {
              order = Some r;
              measured_phase = phase;
              counting_qubits = counting;
              work_qubits = work;
              attempts = k;
            }
        | None -> attempt (k + 1) phase
      end
    end
  in
  attempt 1 0

type factor_result = { factors : (int * int) option; a_used : int; order_runs : int }

let factor ?(max_rounds = 8) ~rng n =
  if n < 4 then invalid_arg "Shor.factor: n too small";
  if n mod 2 = 0 then invalid_arg "Shor.factor: n must be odd (trivial factor 2)";
  let total_runs = ref 0 in
  let rec round k =
    if k > max_rounds then { factors = None; a_used = 0; order_runs = !total_runs }
    else begin
      let a = 2 + Rng.int rng (n - 3) in
      let g = gcd a n in
      if g > 1 then { factors = Some (g, n / g); a_used = a; order_runs = !total_runs }
      else begin
        let result = find_order ~rng ~a ~modulus:n () in
        total_runs := !total_runs + result.attempts;
        match result.order with
        | Some r when r mod 2 = 0 ->
            let half = mod_pow a (r / 2) n in
            if half <> n - 1 then begin
              let f1 = gcd (half + 1) n and f2 = gcd (half - 1) n in
              let candidate = if f1 > 1 && f1 < n then Some f1 else if f2 > 1 && f2 < n then Some f2 else None in
              match candidate with
              | Some f -> { factors = Some (f, n / f); a_used = a; order_runs = !total_runs }
              | None -> round (k + 1)
            end
            else round (k + 1)
        | Some _ | None -> round (k + 1)
      end
    end
  in
  round 1
