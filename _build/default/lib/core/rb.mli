(** Single-qubit randomised benchmarking (section 3.1): the experimental
    workload the superconducting full stack was demonstrated on.

    Random Clifford sequences of increasing length are closed with the
    recovery Clifford and measured; the survival probability decays as
    0.5 + A p^m, and the error per Clifford is (1 - p) / 2. *)

type clifford
(** One of the 24 single-qubit Clifford group elements. *)

val group : unit -> clifford array
(** The full group, built by closing {H, S} products and deduplicating
    matrices up to global phase. *)

val gates : clifford -> Qca_circuit.Gate.unitary list
(** A gate realisation of the element. *)

val inverse : clifford -> clifford
(** Group inverse (table lookup). *)

val average_gate_count : unit -> float
(** Mean {H, S} generator count per group element in this presentation —
    converts error-per-Clifford into error-per-gate. *)

val sequence_circuit : Qca_util.Rng.t -> qubit:int -> total_qubits:int -> length:int -> Qca_circuit.Circuit.t
(** [length] random Cliffords followed by the recovery element and a
    measurement on [qubit]. *)

type point = { sequence_length : int; survival : float; sequences : int; shots_each : int }

type decay = {
  points : point list;
  amplitude : float;  (** Fitted A. *)
  p : float;  (** Depolarising parameter per Clifford. *)
  error_per_clifford : float;  (** (1 - p) / 2. *)
}

val run :
  ?lengths:int list ->
  ?sequences:int ->
  ?shots:int ->
  noise:Qca_qx.Noise.model ->
  rng:Qca_util.Rng.t ->
  unit ->
  decay
(** Full RB experiment on one qubit under the given error model.
    Defaults: lengths [1; 2; 4; 8; 16; 32], 8 sequences, 64 shots. *)

type interleaved = {
  reference : decay;  (** Plain RB. *)
  interleaved : decay;  (** Sequences with the target gate after each Clifford. *)
  gate_error : float;  (** (1 - p_int / p_ref) / 2: the target gate's error. *)
}

val run_interleaved :
  ?lengths:int list ->
  ?sequences:int ->
  ?shots:int ->
  gate:Qca_circuit.Gate.unitary ->
  noise:Qca_qx.Noise.model ->
  rng:Qca_util.Rng.t ->
  unit ->
  interleaved
(** Interleaved randomised benchmarking: isolates the error of one specific
    Clifford gate by comparing the decay of interleaved sequences against
    the reference decay. Raises [Invalid_argument] for non-Clifford gates
    (the recovery element would not exist in the group). *)
