let check_fraction f = if f < 0.0 || f > 1.0 then invalid_arg "Amdahl: fraction in [0,1]"

let speedup ~fraction ~factor =
  check_fraction fraction;
  if factor <= 0.0 then invalid_arg "Amdahl: factor must be positive";
  1.0 /. (1.0 -. fraction +. (fraction /. factor))

let speedup_with_overhead ~fraction ~factor ~overhead =
  check_fraction fraction;
  if overhead < 0.0 then invalid_arg "Amdahl: negative overhead";
  1.0 /. (1.0 -. fraction +. (fraction /. factor) +. overhead)

let multi_accelerator kernels =
  let total_fraction = List.fold_left (fun acc (f, _) -> acc +. f) 0.0 kernels in
  if total_fraction > 1.0 +. 1e-12 then invalid_arg "Amdahl: fractions exceed 1";
  let accelerated =
    List.fold_left
      (fun acc (f, s) ->
        check_fraction f;
        if s <= 0.0 then invalid_arg "Amdahl: factor must be positive";
        acc +. (f /. s))
      0.0 kernels
  in
  1.0 /. (1.0 -. total_fraction +. accelerated)

let limit ~fraction =
  check_fraction fraction;
  if fraction >= 1.0 then infinity else 1.0 /. (1.0 -. fraction)

let break_even_factor ~fraction ~overhead =
  check_fraction fraction;
  (* speedup > 1 iff f/s + overhead < f iff s > f / (f - overhead) *)
  if overhead >= fraction then infinity else fraction /. (fraction -. overhead)
