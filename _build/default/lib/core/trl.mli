(** Figure 10's development-time-frame projection: Technology Readiness
    Level trajectories for the two tracks (quantum-accelerator logic on
    simulators vs. quantum-chip manufacturing), with the phase boundaries
    I-III the paper draws as vertical lines. *)

type track =
  | Accelerator_logic  (** Top curve: applications on perfect qubits / QX. *)
  | Quantum_chip  (** Bottom curve: experimental hardware. *)

val trl : track -> year:float -> float
(** Logistic TRL trajectory clamped to [1, 9]. The accelerator track crosses
    TRL 8 (the paper's adoption threshold) years before the chip track. *)

val adoption_threshold : float
(** TRL 8, "high enough for commercial interest". *)

val year_reaching : track -> level:float -> float
(** Inverse of {!trl} (level strictly between 1 and 9). *)

type phase =
  | Reflection  (** Phase I: identify the concrete need. *)
  | Prototyping  (** Phase II: express logic in OpenQL, run on QX. *)
  | Implementation  (** Phase III: build and execute the accelerator. *)
  | Converged  (** Both tracks mature; stacks merge (Figure 10b). *)

val phase_of : year:float -> phase
val phase_to_string : phase -> string

val table : first_year:int -> last_year:int -> (int * float * float * phase) list
(** (year, accelerator TRL, chip TRL, phase) rows — the data behind both
    panels of Figure 10. *)
