(** Amdahl's-law accelerator model (section 1): the formal justification for
    offloading computational kernels to co-processors, quantum ones
    included. *)

val speedup : fraction:float -> factor:float -> float
(** Classic Amdahl: overall speedup when [fraction] of the work accelerates
    by [factor]. *)

val speedup_with_overhead :
  fraction:float -> factor:float -> overhead:float -> float
(** Offload is never free: [overhead] is extra time (as a fraction of the
    original total) spent shipping data to the accelerator. *)

val multi_accelerator : (float * float) list -> float
(** [multi_accelerator [(f1, s1); (f2, s2); ...]] generalises to disjoint
    kernel fractions each with its own accelerator (fractions must sum to
    at most 1). *)

val limit : fraction:float -> float
(** Asymptotic speedup for an infinitely fast accelerator: 1 / (1 - f). *)

val break_even_factor : fraction:float -> overhead:float -> float
(** Minimum accelerator factor for which offloading wins at all (speedup > 1);
    [infinity] when the overhead already exceeds the accelerable work. *)
