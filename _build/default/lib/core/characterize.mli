(** Device characterisation: estimate an error model from experiments alone.

    The paper's stack descriptions (and the Qiskit Ignis layer it surveys in
    section 4.3) include a characterisation step: run known experiments on
    the device, extract error parameters, and feed them back into the
    compiler's platform configuration. This module closes that loop against
    the QX "device": readout errors from prepare-and-measure statistics,
    gate errors from randomised benchmarking — without ever reading the true
    model, which the test suite then compares against. *)

type calibration = {
  readout_error : float;  (** From |0>/|1> prepare-measure asymmetry. *)
  gate_error : float;  (** Per {H, S} generator, from the RB decay. *)
  error_per_clifford : float;
  shots_used : int;
  model : Qca_qx.Noise.model;
      (** A depolarising model built from the estimates, usable as a
          platform error model. *)
}

val run :
  ?rb_lengths:int list ->
  ?sequences:int ->
  ?shots:int ->
  device:Qca_qx.Noise.model ->
  rng:Qca_util.Rng.t ->
  unit ->
  calibration
(** Characterise a (simulated) device. Defaults: RB lengths
    [1; 2; 4; 8; 16; 32], 6 sequences, 128 shots per point. *)

val to_string : calibration -> string
