lib/core/characterize.mli: Qca_qx Qca_util
