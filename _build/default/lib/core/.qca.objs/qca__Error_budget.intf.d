lib/core/error_budget.mli: Qca_circuit Qca_compiler
