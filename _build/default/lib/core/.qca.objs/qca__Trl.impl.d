lib/core/trl.ml: Float List
