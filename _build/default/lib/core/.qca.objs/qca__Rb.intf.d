lib/core/rb.mli: Qca_circuit Qca_qx Qca_util
