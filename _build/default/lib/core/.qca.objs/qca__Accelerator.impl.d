lib/core/accelerator.ml:
