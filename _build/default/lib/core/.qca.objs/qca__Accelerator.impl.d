lib/core/accelerator.ml: List Printf Qca_circuit Qca_qx String
