lib/core/trl.mli:
