lib/core/in_memory.ml: List Qca_circuit Qca_compiler
