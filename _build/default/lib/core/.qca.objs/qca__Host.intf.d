lib/core/host.mli: Accelerator
