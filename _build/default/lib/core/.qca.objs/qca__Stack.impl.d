lib/core/stack.ml: List Printf Qca_circuit Qca_compiler Qca_microarch Qca_qx Qubit_model
