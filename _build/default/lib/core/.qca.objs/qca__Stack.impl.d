lib/core/stack.ml: Array Hashtbl List Option Printf Qca_circuit Qca_compiler Qca_microarch Qca_qx Qca_util Qubit_model String
