lib/core/qubit_model.ml: Qca_compiler Qca_qx
