lib/core/host.ml: Accelerator List Printf
