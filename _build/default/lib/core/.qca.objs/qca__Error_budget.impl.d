lib/core/error_budget.ml: Array Float List Printf Qca_circuit Qca_compiler Qca_qx
