lib/core/accelerator.mli:
