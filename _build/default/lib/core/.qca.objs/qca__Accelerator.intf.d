lib/core/accelerator.mli: Qca_qx
