lib/core/in_memory.mli: Qca_circuit Qca_compiler
