lib/core/stack.mli: Qca_circuit Qca_compiler Qca_microarch Qca_qx Qca_util Qubit_model
