lib/core/shor.mli: Qca_util
