lib/core/characterize.ml: Array List Printf Qca_circuit Qca_qx Qca_util Rb
