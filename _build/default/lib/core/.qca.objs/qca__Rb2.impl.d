lib/core/rb2.ml: Array Buffer Float Hashtbl Lazy List Printf Qca_circuit Qca_qx Qca_util
