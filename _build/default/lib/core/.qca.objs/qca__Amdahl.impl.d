lib/core/amdahl.ml: List
