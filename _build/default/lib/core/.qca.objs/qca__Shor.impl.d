lib/core/shor.ml: List Qca_circuit Qca_qx Qca_util
