lib/core/amdahl.mli:
