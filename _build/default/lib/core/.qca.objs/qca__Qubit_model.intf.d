lib/core/qubit_model.mli: Qca_compiler Qca_qx
