lib/core/rb2.mli: Qca_circuit Qca_qx Qca_util
