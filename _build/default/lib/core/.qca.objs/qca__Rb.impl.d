lib/core/rb.ml: Array Float Lazy List Printf Qca_circuit Qca_qx Qca_util
