type t = Perfect | Realistic | Real

let to_string = function
  | Perfect -> "perfect"
  | Realistic -> "realistic"
  | Real -> "real"

let description = function
  | Perfect ->
      "ideal qubits: no decoherence, no gate errors; algorithm logic can be \
       verified functionally on the QX simulator"
  | Realistic ->
      "simulated qubits with configurable error models, coherence times and \
       topology; used to study QEC, routing and error budgets"
  | Real ->
      "experimentally calibrated qubits executed through the \
       micro-architecture with nanosecond timing"

let compiler_mode = function
  | Perfect -> Qca_compiler.Compiler.Perfect
  | Realistic -> Qca_compiler.Compiler.Realistic
  | Real -> Qca_compiler.Compiler.Real

let noise model platform =
  match model with
  | Perfect -> Qca_qx.Noise.ideal
  | Realistic | Real -> platform.Qca_compiler.Platform.noise

let respects_connectivity = function Perfect -> false | Realistic | Real -> true

let all = [ Perfect; Realistic; Real ]
