(** Analytic error budgeting for compiled circuits.

    Sections 2.5-2.7 repeatedly ask which error source dominates a given
    design (gate errors vs decoherence vs readout, and how routing makes all
    three worse). This module produces the architect's first-order estimate
    from a compiled circuit and its platform error model — validated against
    full QX simulation in the test suite. *)

type estimate = {
  gate_survival : float;
      (** Product of per-operand depolarising survival over all gates. *)
  decoherence_survival : float;
      (** exp(-T (1/T1 + 1/Tphi)) accumulated over each used qubit's
          makespan exposure. *)
  readout_survival : float;  (** (1 - p_readout)^measurements. *)
  total : float;  (** Product of the three. *)
  dominant : string;  (** Which factor costs the most fidelity. *)
  makespan_ns : int;
  gate_count : int;
  measurement_count : int;
}

val of_output : Qca_compiler.Compiler.output -> estimate
(** Estimate for a compiled circuit, using the platform noise model and the
    schedule's makespan. *)

val of_circuit :
  platform:Qca_compiler.Platform.t -> Qca_circuit.Circuit.t -> estimate
(** Convenience: schedule with platform timing, then estimate. *)

val to_string : estimate -> string
