(** Shor's algorithm: order finding by quantum phase estimation and integer
    factoring — the cryptography application of section 2.3 ("a quantum
    computer can break any RSA-based encryption").

    The modular-exponentiation unitary is executed as a basis permutation
    (a classical reversible circuit from the simulator's viewpoint), with
    the counting register processed by an inverse QFT. Sizes up to N ~ 32
    simulate comfortably (2 log2 N counting + log2 N work qubits). *)

val gcd : int -> int -> int
val mod_pow : int -> int -> int -> int
(** [mod_pow a k n] = a^k mod n (k >= 0). *)

val continued_fraction_denominator : numerator:int -> denominator:int -> limit:int -> int list
(** Convergent denominators of numerator/denominator up to [limit] — the
    classical post-processing of the measured phase. *)

val classical_order : int -> int -> int
(** [classical_order a n]: smallest r > 0 with a^r = 1 (mod n); requires
    gcd(a, n) = 1. The reference the quantum result is checked against. *)

type order_result = {
  order : int option;  (** Verified multiplicative order, when recovered. *)
  measured_phase : int;  (** Raw counting-register measurement. *)
  counting_qubits : int;
  work_qubits : int;
  attempts : int;  (** Phase-estimation runs used. *)
}

val find_order :
  ?max_attempts:int -> rng:Qca_util.Rng.t -> a:int -> modulus:int -> unit -> order_result
(** Quantum order finding: 2 log2 N counting qubits, phase estimation over
    controlled multiply-by-a permutations, inverse QFT, continued
    fractions; retries until a verified order emerges (default 10 attempts).
    Raises [Invalid_argument] when gcd(a, modulus) <> 1 or the register
    would exceed the simulator's range. *)

type factor_result = {
  factors : (int * int) option;
  a_used : int;
  order_runs : int;  (** Total phase-estimation invocations. *)
}

val factor : ?max_rounds:int -> rng:Qca_util.Rng.t -> int -> factor_result
(** Full Shor: random base, quantum order finding, even-order + square-root
    extraction. [None] when every round failed (rare for small semiprimes).
    Raises on even, prime-power-free trivial inputs (n < 4 or even n). *)
