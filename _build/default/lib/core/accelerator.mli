(** Heterogeneous accelerator registry (Figure 1): FPGAs, GPUs, NPUs and the
    two new classes the paper adds — gate-based quantum accelerators and
    quantum annealers. *)

type kind =
  | Fpga
  | Gpu
  | Npu
  | Quantum_gate
  | Quantum_annealer

val kind_to_string : kind -> string

type t = {
  name : string;
  kind : kind;
  speed_factor : float;
      (** Throughput on suitable kernels relative to the host CPU. *)
  offload_overhead : float;
      (** Fixed time units per offload (data shipping, Figure 1's bus). *)
  payload : (string -> string) option;
      (** Optional real computation: maps a kernel argument string to an
          output (used to back quantum kernels with actual simulator runs). *)
}

val make :
  ?payload:(string -> string) ->
  name:string ->
  kind:kind ->
  speed_factor:float ->
  offload_overhead:float ->
  unit ->
  t

val default_park : unit -> t list
(** Figure 1's accelerator park: one of each kind, with representative
    speed factors. *)

val run_payload : t -> string -> string
(** Execute the payload (identity when none is attached). *)
