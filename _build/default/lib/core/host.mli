(** The classical host processor that "keeps control over the total system
    and delegates the execution of certain parts to the available
    accelerators" (section 1). *)

type task =
  | Classical of string * float  (** (name, work units) run on the host. *)
  | Offload of string * string * float * string
      (** (accelerator name, kernel name, work units, kernel argument). *)

type event = {
  task_name : string;
  resource : string;  (** "host" or the accelerator name. *)
  start_time : float;
  finish_time : float;
  output : string option;  (** Payload output for offloaded kernels. *)
}

type execution = {
  timeline : event list;  (** In execution order. *)
  total_time : float;
  host_only_time : float;  (** Same workload with no accelerators. *)
  speedup : float;
  outputs : (string * string) list;  (** (kernel name, payload output). *)
}

val run : accelerators:Accelerator.t list -> task list -> execution
(** Sequential offload model (matching Amdahl's assumptions): the host
    blocks while an accelerator runs. Raises [Invalid_argument] for offloads
    to unknown accelerators. *)

val amdahl_prediction : accelerators:Accelerator.t list -> task list -> float
(** The analytic speedup for the same workload via {!Amdahl.multi_accelerator}
    (overheads folded in); tests check [run] against this. *)
