type track = Accelerator_logic | Quantum_chip

(* Logistic curves calibrated to the paper's qualitative picture (published
   2019): accelerator logic maturing on simulators roughly a decade before
   manufactured chips, both starting from lab-level TRL ~2-3 around 2019 and
   the paper's "research still needed for at least a decade". *)
let parameters = function
  | Accelerator_logic -> (2026.0, 0.45) (* midpoint year, steepness *)
  | Quantum_chip -> (2033.0, 0.35)

let trl track ~year =
  let midpoint, steepness = parameters track in
  let raw = 1.0 +. (8.0 /. (1.0 +. exp (-.steepness *. (year -. midpoint)))) in
  Float.max 1.0 (Float.min 9.0 raw)

let adoption_threshold = 8.0

let year_reaching track ~level =
  if level <= 1.0 || level >= 9.0 then invalid_arg "Trl.year_reaching: level in (1, 9)";
  let midpoint, steepness = parameters track in
  (* level = 1 + 8 / (1 + e^{-s (y - m)}) *)
  midpoint -. (log ((8.0 /. (level -. 1.0)) -. 1.0) /. steepness)

type phase = Reflection | Prototyping | Implementation | Converged

let phase_of ~year =
  let a = trl Accelerator_logic ~year in
  let c = trl Quantum_chip ~year in
  if c >= adoption_threshold then Converged
  else if a >= adoption_threshold then Implementation
  else if a >= 4.0 then Prototyping
  else Reflection

let phase_to_string = function
  | Reflection -> "I: reflection on the concrete need"
  | Prototyping -> "II: logic in OpenQL, prototyping on QX"
  | Implementation -> "III: accelerator implementation"
  | Converged -> "converged: experimental and simulated stacks merge"

let table ~first_year ~last_year =
  assert (last_year >= first_year);
  List.init
    (last_year - first_year + 1)
    (fun k ->
      let year = first_year + k in
      let y = float_of_int year in
      (year, trl Accelerator_logic ~year:y, trl Quantum_chip ~year:y, phase_of ~year:y))
