module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Controller = Qca_microarch.Controller
module Circuit = Qca_circuit.Circuit
module Rng = Qca_util.Rng
module Sim = Qca_qx.Sim

type t = {
  stack_name : string;
  platform : Platform.t;
  model : Qubit_model.t;
  technology : Controller.technology option;
}

let superconducting () =
  {
    stack_name = "superconducting-full-stack";
    platform = Platform.superconducting_17;
    model = Qubit_model.Real;
    technology = Some Controller.superconducting;
  }

let semiconducting () =
  {
    stack_name = "semiconducting-full-stack";
    platform = Platform.semiconducting_4;
    model = Qubit_model.Real;
    technology = Some Controller.semiconducting;
  }

let genome ?(qubits = 12) () =
  {
    stack_name = "genome-sequencing-accelerator";
    platform = Platform.perfect qubits;
    model = Qubit_model.Perfect;
    technology = None;
  }

let optimisation ?(qubits = 16) () =
  {
    stack_name = "hybrid-optimisation-accelerator";
    platform = Platform.perfect qubits;
    model = Qubit_model.Perfect;
    technology = None;
  }

let realistic_of stack =
  (* A perfect platform carries an ideal error model; realistic execution
     needs a real one, so fall back to the transmon defaults. *)
  let platform =
    if Qca_qx.Noise.is_ideal stack.platform.Platform.noise then
      { stack.platform with Platform.noise = Qca_qx.Noise.superconducting }
    else stack.platform
  in
  {
    stack with
    platform;
    model = Qubit_model.Realistic;
    stack_name = stack.stack_name ^ "-realistic";
  }

type run = {
  compiled : Compiler.output;
  histogram : (string * int) list;
  microarch_stats : Controller.run_stats option;
}

let bitstring classical =
  let n = Array.length classical in
  String.init n (fun i ->
      match classical.(n - 1 - i) with
      | -1 -> '-'
      | 0 -> '0'
      | 1 -> '1'
      | _ -> assert false)

let execute ?(shots = 512) ?rng stack circuit =
  let rng = match rng with Some r -> r | None -> Rng.create 0xACCE1 in
  let mode = Qubit_model.compiler_mode stack.model in
  let compiled = Compiler.compile stack.platform mode circuit in
  let noise = Qubit_model.noise stack.model stack.platform in
  match stack.technology, compiled.Compiler.eqasm with
  | Some technology, Some program ->
      (* Execute every shot through the micro-architecture. *)
      let table = Hashtbl.create 32 in
      let last_stats = ref None in
      for _ = 1 to shots do
        let result = Controller.run ~noise ~rng technology program in
        last_stats := Some result.Controller.stats;
        let key = bitstring result.Controller.outcome.Sim.classical in
        Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
      done;
      let histogram =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      { compiled; histogram; microarch_stats = !last_stats }
  | None, _ | _, None ->
      let histogram = Compiler.execute ~shots ~rng compiled in
      { compiled; histogram; microarch_stats = None }

let success_probability run ~accept =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 run.histogram in
  let hits =
    List.fold_left (fun acc (key, c) -> if accept key then acc + c else acc) 0 run.histogram
  in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let describe stack =
  Printf.sprintf "%s: platform=%s qubits=%s model=%s microarch=%s" stack.stack_name
    stack.platform.Platform.name
    (string_of_int stack.platform.Platform.qubit_count)
    (Qubit_model.to_string stack.model)
    (match stack.technology with
    | Some t -> t.Controller.tech_name
    | None -> "direct-qx")
