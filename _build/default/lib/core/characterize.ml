module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Sim = Qca_qx.Sim
module Noise = Qca_qx.Noise
module Rng = Qca_util.Rng

type calibration = {
  readout_error : float;
  gate_error : float;
  error_per_clifford : float;
  shots_used : int;
  model : Noise.model;
}

(* Prepare |0> (resp. |1>) and measure; the mismatch rates estimate readout
   error (the |1> branch also absorbs the X gate's error, so average). *)
let estimate_readout ~device ~rng ~shots =
  let measure_zero = Circuit.of_list 1 [ Gate.Prep 0; Gate.Measure 0 ] in
  let measure_one =
    Circuit.of_list 1 [ Gate.Prep 0; Gate.Unitary (Gate.X, [| 0 |]); Gate.Measure 0 ]
  in
  let mismatch circuit expected =
    let bad = ref 0 in
    for _ = 1 to shots do
      let result = Sim.run ~noise:device ~rng circuit in
      if result.Sim.classical.(0) <> expected then incr bad
    done;
    float_of_int !bad /. float_of_int shots
  in
  (mismatch measure_zero 0 +. mismatch measure_one 1) /. 2.0

let run ?(rb_lengths = [ 1; 2; 4; 8; 16; 32 ]) ?(sequences = 6) ?(shots = 128) ~device
    ~rng () =
  let readout_error = estimate_readout ~device ~rng ~shots in
  let decay = Rb.run ~lengths:rb_lengths ~sequences ~shots ~noise:device ~rng () in
  let per_gate = decay.Rb.error_per_clifford /. Rb.average_gate_count () in
  let rb_shots = sequences * shots * List.length rb_lengths in
  {
    readout_error;
    gate_error = per_gate;
    error_per_clifford = decay.Rb.error_per_clifford;
    shots_used = (2 * shots) + rb_shots;
    model =
      {
        Noise.ideal with
        Noise.single_qubit_error = per_gate;
        two_qubit_error = 5.0 *. per_gate;
        readout_error;
        prep_error = readout_error /. 2.0;
      };
  }

let to_string c =
  Printf.sprintf
    "readout %.4f, gate %.5f (per Clifford %.5f), from %d shots" c.readout_error
    c.gate_error c.error_per_clifford c.shots_used
