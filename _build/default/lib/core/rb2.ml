module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Rng = Qca_util.Rng
module Stats = Qca_util.Stats
module Sim = Qca_qx.Sim

let group_order = 11520

type clifford = {
  gates : (Gate.unitary * int array) list;
  matrix : Matrix.t;
  mutable inverse_index : int;
}

(* Phase-canonical fingerprint of a 4x4 unitary: divide by the phase of the
   first entry with significant modulus, round, and serialise. *)
let canonical_key m =
  let dim = Matrix.rows m in
  let phase = ref Cplx.one in
  (try
     for r = 0 to dim - 1 do
       for c = 0 to dim - 1 do
         let z = Matrix.get m r c in
         if Cplx.abs z > 1e-6 then begin
           phase := Cplx.scale (1.0 /. Cplx.abs z) z;
           raise Exit
         end
       done
     done
   with Exit -> ());
  let inv_phase = Cplx.conj !phase in
  (* Adding 0.0 maps IEEE negative zero to positive zero so "-0.0000" and
     "0.0000" cannot split a key. *)
  let clean x = (Float.round (x *. 10000.) /. 10000.) +. 0.0 in
  let buffer = Buffer.create 256 in
  for r = 0 to dim - 1 do
    for c = 0 to dim - 1 do
      let z = Cplx.mul inv_phase (Matrix.get m r c) in
      Buffer.add_string buffer
        (Printf.sprintf "%.4f,%.4f;" (clean (Cplx.re z)) (clean (Cplx.im z)))
    done
  done;
  Buffer.contents buffer

let circuit_matrix gates =
  let instrs = List.map (fun (u, ops) -> Gate.Unitary (u, ops)) gates in
  Circuit.unitary_matrix (Circuit.of_list 2 instrs)

let generators =
  [
    (Gate.H, [| 0 |]);
    (Gate.H, [| 1 |]);
    (Gate.S, [| 0 |]);
    (Gate.S, [| 1 |]);
    (Gate.Cz, [| 0; 1 |]);
  ]

let build_group () =
  let table = Hashtbl.create 16384 in
  let identity = { gates = []; matrix = Matrix.identity 4; inverse_index = -1 } in
  Hashtbl.replace table (canonical_key identity.matrix) 0;
  let elements = ref [ identity ] in
  let count = ref 1 in
  let frontier = ref [ identity ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun element ->
        List.iter
          (fun ((u, ops) as g) ->
            let gate_matrix = circuit_matrix [ g ] in
            ignore u;
            ignore ops;
            let m = Matrix.mul gate_matrix element.matrix in
            let key = canonical_key m in
            if not (Hashtbl.mem table key) then begin
              let fresh = { gates = element.gates @ [ g ]; matrix = m; inverse_index = -1 } in
              Hashtbl.replace table key !count;
              incr count;
              elements := fresh :: !elements;
              next := fresh :: !next
            end)
          generators)
      !frontier;
    frontier := !next
  done;
  let arr = Array.of_list (List.rev !elements) in
  if Array.length arr <> group_order then
    failwith (Printf.sprintf "Rb2: generated %d elements, expected %d" (Array.length arr) group_order);
  (* inverse table via the hash *)
  Array.iteri
    (fun i element ->
      let key = canonical_key (Matrix.adjoint element.matrix) in
      match Hashtbl.find_opt table key with
      | Some j -> arr.(i).inverse_index <- j
      | None -> failwith "Rb2: inverse not found")
    arr;
  (arr, table)

let cached = lazy (build_group ())

let group () = fst (Lazy.force cached)
let lookup_table () = snd (Lazy.force cached)

let gates c = c.gates

let inverse c =
  let arr = group () in
  arr.(c.inverse_index)

let average_gate_count () =
  let arr = group () in
  let total = Array.fold_left (fun acc c -> acc + List.length c.gates) 0 arr in
  float_of_int total /. float_of_int (Array.length arr)

let sequence_circuit rng ~length =
  let arr = group () in
  let table = lookup_table () in
  let chosen = List.init length (fun _ -> arr.(Rng.int rng (Array.length arr))) in
  let net =
    List.fold_left (fun acc c -> Matrix.mul c.matrix acc) (Matrix.identity 4) chosen
  in
  let recovery =
    match Hashtbl.find_opt table (canonical_key (Matrix.adjoint net)) with
    | Some j -> arr.(j)
    | None -> failwith "Rb2: recovery not found"
  in
  let all = chosen @ [ recovery ] in
  let instrs =
    List.concat_map (fun c -> List.map (fun (u, ops) -> Gate.Unitary (u, ops)) c.gates) all
    @ [ Gate.Measure 0; Gate.Measure 1 ]
  in
  Circuit.of_list ~name:(Printf.sprintf "rb2-%d" length) 2 instrs

type decay = { points : (int * float) list; p : float; error_per_clifford : float }

let run ?(lengths = [ 1; 2; 4; 8; 16 ]) ?(sequences = 6) ?(shots = 48) ~noise ~rng () =
  let survival_at length =
    let per_sequence =
      Array.init sequences (fun _ ->
          let circuit = sequence_circuit rng ~length in
          let zeros = ref 0 in
          for _ = 1 to shots do
            let result = Sim.run ~noise ~rng circuit in
            if result.Sim.classical.(0) = 0 && result.Sim.classical.(1) = 0 then incr zeros
          done;
          float_of_int !zeros /. float_of_int shots)
    in
    Stats.mean per_sequence
  in
  let points = List.map (fun m -> (m, survival_at m)) lengths in
  (* survival = 1/4 + A p^m for two qubits *)
  let usable =
    List.filter_map
      (fun (m, s) ->
        let y = s -. 0.25 in
        if y > 1e-3 then Some (float_of_int m, y) else None)
      points
  in
  let p =
    if List.length usable >= 2 then snd (Stats.exponential_decay_fit (Array.of_list usable))
    else 1.0
  in
  let p = Float.min 1.0 p in
  { points; p; error_per_clifford = 3.0 *. (1.0 -. p) /. 4.0 }
