module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Schedule = Qca_compiler.Schedule
module Noise = Qca_qx.Noise

type estimate = {
  gate_survival : float;
  decoherence_survival : float;
  readout_survival : float;
  total : float;
  dominant : string;
  makespan_ns : int;
  gate_count : int;
  measurement_count : int;
}

let of_schedule platform (schedule : Schedule.t) circuit =
  let noise = platform.Platform.noise in
  let gate_survival = ref 1.0 in
  let measurement_count = ref 0 in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops) ->
          let p =
            if Gate.arity u >= 2 then noise.Noise.two_qubit_error
            else noise.Noise.single_qubit_error
          in
          gate_survival := !gate_survival *. ((1.0 -. p) ** float_of_int (Array.length ops))
      | Gate.Measure _ -> incr measurement_count
      | Gate.Prep _ -> gate_survival := !gate_survival *. (1.0 -. noise.Noise.prep_error)
      | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  let makespan_ns = schedule.Schedule.makespan * platform.Platform.cycle_ns in
  let qubits_used = List.length (Circuit.qubits_used circuit) in
  let decoherence_survival =
    if noise.Noise.t1_ns = infinity && noise.Noise.t2_ns = infinity then 1.0
    else begin
      let t1_rate = if noise.Noise.t1_ns = infinity then 0.0 else 1.0 /. noise.Noise.t1_ns in
      let t2_rate = if noise.Noise.t2_ns = infinity then 0.0 else 1.0 /. noise.Noise.t2_ns in
      let phi_rate = Float.max 0.0 (t2_rate -. (t1_rate /. 2.0)) in
      let per_qubit = exp (-.float_of_int makespan_ns *. (t1_rate +. phi_rate)) in
      per_qubit ** float_of_int qubits_used
    end
  in
  let readout_survival =
    (1.0 -. noise.Noise.readout_error) ** float_of_int !measurement_count
  in
  let total = !gate_survival *. decoherence_survival *. readout_survival in
  let dominant =
    let worst = Float.min !gate_survival (Float.min decoherence_survival readout_survival) in
    if worst = !gate_survival then "gate errors"
    else if worst = decoherence_survival then "decoherence"
    else "readout"
  in
  {
    gate_survival = !gate_survival;
    decoherence_survival;
    readout_survival;
    total;
    dominant;
    makespan_ns;
    gate_count = Circuit.gate_count circuit;
    measurement_count = !measurement_count;
  }

let of_output (output : Compiler.output) =
  of_schedule output.Compiler.platform output.Compiler.schedule output.Compiler.physical

let of_circuit ~platform circuit =
  let schedule = Schedule.run platform circuit in
  of_schedule platform schedule circuit

let to_string e =
  Printf.sprintf
    "gates %.4f x decoherence %.4f x readout %.4f = %.4f  (dominant: %s; %d gates, %d \
     measurements, %d ns)"
    e.gate_survival e.decoherence_survival e.readout_survival e.total e.dominant
    e.gate_count e.measurement_count e.makespan_ns
