(** Two-qubit randomised benchmarking (section 3.1 benchmarks "one or two
    qubits").

    The full 11520-element two-qubit Clifford group is generated once by
    closing {H, S} on each qubit plus CZ under composition (deduplicating
    matrices up to global phase); sequences of uniform group elements are
    closed with the exact group inverse and the 00-survival decay fitted as
    in the single-qubit case. The two-qubit depolarising parameter relates
    to the error per Clifford as r = (1 - p) (1 - 1/4) = 3(1 - p)/4. *)

val group_order : int
(** 11520. *)

type clifford

val group : unit -> clifford array
(** Generated lazily on first use (a few hundred ms). *)

val gates : clifford -> (Qca_circuit.Gate.unitary * int array) list
(** A realisation over qubits {0, 1}. *)

val inverse : clifford -> clifford

val average_gate_count : unit -> float
(** Mean primitive gates per group element in this presentation. *)

val sequence_circuit :
  Qca_util.Rng.t -> length:int -> Qca_circuit.Circuit.t
(** [length] random two-qubit Cliffords, the recovery element, and
    measurements on both qubits. *)

type decay = {
  points : (int * float) list;  (** (sequence length, 00-survival). *)
  p : float;
  error_per_clifford : float;  (** 3 (1 - p) / 4. *)
}

val run :
  ?lengths:int list ->
  ?sequences:int ->
  ?shots:int ->
  noise:Qca_qx.Noise.model ->
  rng:Qca_util.Rng.t ->
  unit ->
  decay
(** Defaults: lengths [1; 2; 4; 8; 16], 6 sequences, 48 shots. *)
