module Circuit = Qca_circuit.Circuit
module Platform = Qca_compiler.Platform
module Mapping = Qca_compiler.Mapping
module Decompose = Qca_compiler.Decompose

type architecture = Von_neumann | In_memory | Quantum_nearest_neighbour

let architecture_to_string = function
  | Von_neumann -> "von Neumann (data to logic)"
  | In_memory -> "in-memory (logic to data)"
  | Quantum_nearest_neighbour -> "quantum NN (state routing)"

type workload = { operations : int; operands_per_op : int; locality : float }

let data_movements architecture w ~movement_per_distant_op =
  if w.locality < 0.0 || w.locality > 1.0 then invalid_arg "In_memory: locality in [0,1]";
  let ops = float_of_int w.operations in
  let operands = float_of_int w.operands_per_op in
  match architecture with
  | Von_neumann -> ops *. operands
  | In_memory -> ops *. operands *. (1.0 -. w.locality)
  | Quantum_nearest_neighbour -> ops *. (1.0 -. w.locality) *. movement_per_distant_op

type routing_pressure = {
  two_qubit_gates : int;
  swaps_inserted : int;
  swaps_per_interaction : float;
  locality_measured : float;
}

let measure_routing platform circuit =
  let widened =
    Circuit.of_list ~name:(Circuit.name circuit) platform.Platform.qubit_count
      (Circuit.instructions circuit)
  in
  let swap_capable =
    { platform with Platform.primitives = "swap" :: platform.Platform.primitives }
  in
  let lowered = Decompose.run swap_capable widened in
  let result = Mapping.run platform lowered in
  let two_qubit_gates = Circuit.two_qubit_gate_count lowered in
  let swaps = result.Mapping.swaps_added in
  (* Interactions that needed no routing were already nearest-neighbour. *)
  let distant =
    (* Each routed interaction consumed at least one swap; approximate the
       distant count by the interactions that triggered routing. *)
    min two_qubit_gates swaps
  in
  {
    two_qubit_gates;
    swaps_inserted = swaps;
    swaps_per_interaction =
      (if two_qubit_gates = 0 then 0.0
       else float_of_int swaps /. float_of_int two_qubit_gates);
    locality_measured =
      (if two_qubit_gates = 0 then 1.0
       else 1.0 -. (float_of_int distant /. float_of_int two_qubit_gates));
  }

let comparison_table w ~movement_per_distant_op =
  List.map
    (fun a -> (architecture_to_string a, data_movements a w ~movement_per_distant_op))
    [ Von_neumann; In_memory; Quantum_nearest_neighbour ]
