(** The paper's three qubit models (section 2.1): real, realistic and
    perfect qubits, and how each configures the rest of the stack. *)

type t =
  | Perfect
      (** No decoherence, no gate errors, connectivity at the designer's
          discretion — the application-development model (Figure 2b). *)
  | Realistic
      (** Simulated qubits with tunable error models and topology — for
          studying error rates, QEC and routing beyond current hardware. *)
  | Real
      (** Parameters pinned to an experimental device; executed through the
          micro-architecture with strict timing (Figure 2a). *)

val to_string : t -> string
val description : t -> string

val compiler_mode : t -> Qca_compiler.Compiler.mode

val noise : t -> Qca_compiler.Platform.t -> Qca_qx.Noise.model
(** Effective error model: ideal for Perfect, the platform's model
    otherwise. *)

val respects_connectivity : t -> bool
(** Whether the mapping pass must honour the topology (always for
    Realistic/Real; Perfect leaves it to the designer, default free). *)

val all : t list
