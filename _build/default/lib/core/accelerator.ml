type kind = Fpga | Gpu | Npu | Quantum_gate | Quantum_annealer

let kind_to_string = function
  | Fpga -> "FPGA"
  | Gpu -> "GPU"
  | Npu -> "NPU"
  | Quantum_gate -> "quantum-gate"
  | Quantum_annealer -> "quantum-annealer"

type t = {
  name : string;
  kind : kind;
  speed_factor : float;
  offload_overhead : float;
  payload : (string -> string) option;
}

let make ?payload ~name ~kind ~speed_factor ~offload_overhead () =
  if speed_factor <= 0.0 then invalid_arg "Accelerator.make: speed_factor must be positive";
  if offload_overhead < 0.0 then invalid_arg "Accelerator.make: negative overhead";
  { name; kind; speed_factor; offload_overhead; payload }

let default_park () =
  [
    make ~name:"fpga0" ~kind:Fpga ~speed_factor:20.0 ~offload_overhead:0.5 ();
    make ~name:"gpu0" ~kind:Gpu ~speed_factor:50.0 ~offload_overhead:0.2 ();
    make ~name:"npu0" ~kind:Npu ~speed_factor:80.0 ~offload_overhead:0.3 ();
    make ~name:"qpu0" ~kind:Quantum_gate ~speed_factor:1000.0 ~offload_overhead:2.0 ();
    make ~name:"annealer0" ~kind:Quantum_annealer ~speed_factor:500.0 ~offload_overhead:1.0 ();
  ]

let run_payload t arg = match t.payload with Some f -> f arg | None -> arg

let with_backend (module B : Qca_qx.Backend.S) ?(shots = 1024) ?seed t =
  let payload source =
    let circuit = Qca_circuit.Cqasm.parse_circuit source in
    let result = B.run ~shots ?seed circuit in
    result.Qca_qx.Engine.histogram
    |> List.map (fun (key, count) -> Printf.sprintf "%s:%d" key count)
    |> String.concat " "
  in
  { t with name = t.name ^ "@" ^ B.name; payload = Some payload }
