module type S = sig
  val name : string
  val run : ?shots:int -> ?seed:int -> Qca_circuit.Circuit.t -> Engine.result
end
