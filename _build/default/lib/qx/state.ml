module Gate = Qca_circuit.Gate
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Rng = Qca_util.Rng

type t = { qubit_count : int; re : float array; im : float array }

let create n =
  if n < 1 || n > 30 then invalid_arg "State.create: qubit count out of range [1, 30]";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { qubit_count = n; re; im }

let qubit_count s = s.qubit_count
let dimension s = Array.length s.re

let copy s = { s with re = Array.copy s.re; im = Array.copy s.im }

let norm s =
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    acc := !acc +. (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))
  done;
  sqrt !acc

let normalize s =
  let n = norm s in
  if n <= 0.0 then invalid_arg "State.normalize: zero vector";
  let inv = 1.0 /. n in
  for k = 0 to dimension s - 1 do
    s.re.(k) <- s.re.(k) *. inv;
    s.im.(k) <- s.im.(k) *. inv
  done

let of_amplitudes amplitudes =
  let dim = Array.length amplitudes in
  let n =
    let rec log2 d acc = if d = 1 then acc else log2 (d / 2) (acc + 1) in
    if dim < 2 || dim land (dim - 1) <> 0 then
      invalid_arg "State.of_amplitudes: length must be a power of two >= 2"
    else log2 dim 0
  in
  let s =
    {
      qubit_count = n;
      re = Array.map Cplx.re amplitudes;
      im = Array.map Cplx.im amplitudes;
    }
  in
  normalize s;
  s

let amplitude s k = Cplx.make s.re.(k) s.im.(k)

let probabilities s =
  Array.init (dimension s) (fun k -> (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k)))

let probability_of s k = (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))

(* --- single-qubit kernels --------------------------------------------- *)

(* Iterate over all (i0, i1) amplitude pairs differing only in bit q. *)
let iter_pairs s q f =
  let step = 1 lsl q in
  let dim = dimension s in
  let block = ref 0 in
  while !block < dim do
    for offset = !block to !block + step - 1 do
      f offset (offset + step)
    done;
    block := !block + (2 * step)
  done

let apply_matrix1 s m q =
  assert (Matrix.rows m = 2 && Matrix.cols m = 2);
  let a = Matrix.get m 0 0 and b = Matrix.get m 0 1 in
  let c = Matrix.get m 1 0 and d = Matrix.get m 1 1 in
  let ar = Cplx.re a and ai = Cplx.im a in
  let br = Cplx.re b and bi = Cplx.im b in
  let cr = Cplx.re c and ci = Cplx.im c in
  let dr = Cplx.re d and di = Cplx.im d in
  let re = s.re and im = s.im in
  let rotate i0 i1 =
    let x0r = re.(i0) and x0i = im.(i0) in
    let x1r = re.(i1) and x1i = im.(i1) in
    re.(i0) <- (ar *. x0r) -. (ai *. x0i) +. (br *. x1r) -. (bi *. x1i);
    im.(i0) <- (ar *. x0i) +. (ai *. x0r) +. (br *. x1i) +. (bi *. x1r);
    re.(i1) <- (cr *. x0r) -. (ci *. x0i) +. (dr *. x1r) -. (di *. x1i);
    im.(i1) <- (cr *. x0i) +. (ci *. x0r) +. (dr *. x1i) +. (di *. x1r)
  in
  iter_pairs s q rotate

let apply_x s q =
  let swap i0 i1 =
    let tr = s.re.(i0) and ti = s.im.(i0) in
    s.re.(i0) <- s.re.(i1);
    s.im.(i0) <- s.im.(i1);
    s.re.(i1) <- tr;
    s.im.(i1) <- ti
  in
  iter_pairs s q swap

let apply_phase_if s predicate re_phase im_phase =
  (* Multiply amplitude k by (re_phase + i im_phase) whenever predicate k. *)
  let re = s.re and im = s.im in
  for k = 0 to dimension s - 1 do
    if predicate k then begin
      let r = re.(k) and i = im.(k) in
      re.(k) <- (r *. re_phase) -. (i *. im_phase);
      im.(k) <- (r *. im_phase) +. (i *. re_phase)
    end
  done

let apply_cnot s control target =
  let cmask = 1 lsl control in
  let swap i0 i1 =
    if i0 land cmask <> 0 then begin
      let tr = s.re.(i0) and ti = s.im.(i0) in
      s.re.(i0) <- s.re.(i1);
      s.im.(i0) <- s.im.(i1);
      s.re.(i1) <- tr;
      s.im.(i1) <- ti
    end
  in
  iter_pairs s target swap

let apply_swap s q1 q2 =
  let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
  let dim = dimension s in
  for k = 0 to dim - 1 do
    (* swap amplitudes for 01 <-> 10 patterns, visiting each pair once *)
    if k land m1 <> 0 && k land m2 = 0 then begin
      let j = k lxor m1 lxor m2 in
      let tr = s.re.(k) and ti = s.im.(k) in
      s.re.(k) <- s.re.(j);
      s.im.(k) <- s.im.(j);
      s.re.(j) <- tr;
      s.im.(j) <- ti
    end
  done

let apply_toffoli s c1 c2 target =
  let m1 = 1 lsl c1 and m2 = 1 lsl c2 in
  let swap i0 i1 =
    if i0 land m1 <> 0 && i0 land m2 <> 0 then begin
      let tr = s.re.(i0) and ti = s.im.(i0) in
      s.re.(i0) <- s.re.(i1);
      s.im.(i0) <- s.im.(i1);
      s.re.(i1) <- tr;
      s.im.(i1) <- ti
    end
  in
  iter_pairs s target swap

(* Generic k-qubit dense application (fallback, k <= 3 in practice). *)
let apply_generic s u ops =
  let m = Gate.matrix u in
  let k = Array.length ops in
  let small_dim = 1 lsl k in
  assert (Matrix.rows m = small_dim);
  (* Enumerate assignments of the non-operand qubits, then mix the 2^k
     amplitudes addressed by the operand qubits. Operand order is
     most-significant-first in the small matrix. *)
  let masks = Array.map (fun q -> 1 lsl q) ops in
  let op_mask = Array.fold_left ( lor ) 0 masks in
  let dim = dimension s in
  let scratch_re = Array.make small_dim 0.0 and scratch_im = Array.make small_dim 0.0 in
  let index_for base sub =
    (* sub's bit (k-1-i) corresponds to ops.(i) because ops are MSB-first. *)
    let idx = ref base in
    for i = 0 to k - 1 do
      if sub land (1 lsl (k - 1 - i)) <> 0 then idx := !idx lor masks.(i)
    done;
    !idx
  in
  let base = ref 0 in
  while !base < dim do
    if !base land op_mask = 0 then begin
      for sub = 0 to small_dim - 1 do
        let idx = index_for !base sub in
        scratch_re.(sub) <- s.re.(idx);
        scratch_im.(sub) <- s.im.(idx)
      done;
      for row = 0 to small_dim - 1 do
        let acc_r = ref 0.0 and acc_i = ref 0.0 in
        for col = 0 to small_dim - 1 do
          let e = Matrix.get m row col in
          let er = Cplx.re e and ei = Cplx.im e in
          if er <> 0.0 || ei <> 0.0 then begin
            acc_r := !acc_r +. (er *. scratch_re.(col)) -. (ei *. scratch_im.(col));
            acc_i := !acc_i +. (er *. scratch_im.(col)) +. (ei *. scratch_re.(col))
          end
        done;
        let idx = index_for !base row in
        s.re.(idx) <- !acc_r;
        s.im.(idx) <- !acc_i
      done
    end;
    incr base
  done

let apply s u ops =
  Array.iter
    (fun q ->
      if q < 0 || q >= s.qubit_count then invalid_arg "State.apply: qubit out of range")
    ops;
  match u, ops with
  | Gate.I, _ -> ()
  | Gate.X, [| q |] -> apply_x s q
  | Gate.Z, [| q |] ->
      let mask = 1 lsl q in
      apply_phase_if s (fun k -> k land mask <> 0) (-1.0) 0.0
  | Gate.S, [| q |] ->
      let mask = 1 lsl q in
      apply_phase_if s (fun k -> k land mask <> 0) 0.0 1.0
  | Gate.Sdag, [| q |] ->
      let mask = 1 lsl q in
      apply_phase_if s (fun k -> k land mask <> 0) 0.0 (-1.0)
  | Gate.T, [| q |] ->
      let mask = 1 lsl q in
      let c = cos (Float.pi /. 4.0) and si = sin (Float.pi /. 4.0) in
      apply_phase_if s (fun k -> k land mask <> 0) c si
  | Gate.Tdag, [| q |] ->
      let mask = 1 lsl q in
      let c = cos (Float.pi /. 4.0) and si = sin (Float.pi /. 4.0) in
      apply_phase_if s (fun k -> k land mask <> 0) c (-.si)
  | Gate.Rz theta, [| q |] ->
      (* Diagonal: e^{-i t/2} on |0>, e^{+i t/2} on |1>. *)
      let mask = 1 lsl q in
      let h = theta /. 2.0 in
      apply_phase_if s (fun k -> k land mask <> 0) (cos h) (sin h);
      apply_phase_if s (fun k -> k land mask = 0) (cos h) (-.sin h)
  | (Gate.Y | Gate.H | Gate.X90 | Gate.Xm90 | Gate.Y90 | Gate.Ym90 | Gate.Rx _ | Gate.Ry _), [| q |]
    ->
      apply_matrix1 s (Gate.matrix u) q
  | Gate.Cnot, [| control; target |] -> apply_cnot s control target
  | Gate.Cz, [| q1; q2 |] ->
      let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
      apply_phase_if s (fun k -> k land m1 <> 0 && k land m2 <> 0) (-1.0) 0.0
  | Gate.Swap, [| q1; q2 |] -> apply_swap s q1 q2
  | Gate.Cphase phi, [| q1; q2 |] ->
      let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
      apply_phase_if s (fun k -> k land m1 <> 0 && k land m2 <> 0) (cos phi) (sin phi)
  | Gate.Crk k, [| q1; q2 |] ->
      let phi = 2.0 *. Float.pi /. float_of_int (1 lsl k) in
      let m1 = 1 lsl q1 and m2 = 1 lsl q2 in
      apply_phase_if s (fun idx -> idx land m1 <> 0 && idx land m2 <> 0) (cos phi) (sin phi)
  | Gate.Toffoli, [| c1; c2; target |] -> apply_toffoli s c1 c2 target
  | _, _ -> apply_generic s u ops

(* --- measurement ------------------------------------------------------ *)

let prob_one s q =
  let mask = 1 lsl q in
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    if k land mask <> 0 then acc := !acc +. (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))
  done;
  !acc

let collapse s q outcome =
  assert (outcome = 0 || outcome = 1);
  let mask = 1 lsl q in
  let keep k = if outcome = 1 then k land mask <> 0 else k land mask = 0 in
  for k = 0 to dimension s - 1 do
    if not (keep k) then begin
      s.re.(k) <- 0.0;
      s.im.(k) <- 0.0
    end
  done;
  normalize s

let measure s rng q =
  let p1 = prob_one s q in
  let outcome = if Rng.float rng 1.0 < p1 then 1 else 0 in
  collapse s q outcome;
  outcome

let sample_index s rng =
  let target = Rng.float rng 1.0 in
  let dim = dimension s in
  let rec scan k acc =
    if k = dim - 1 then k
    else
      let acc = acc +. probability_of s k in
      if target < acc then k else scan (k + 1) acc
  in
  scan 0 0.0

let overlap a b =
  assert (dimension a = dimension b);
  let acc_r = ref 0.0 and acc_i = ref 0.0 in
  for k = 0 to dimension a - 1 do
    (* conj(a_k) * b_k *)
    acc_r := !acc_r +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    acc_i := !acc_i +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cplx.make !acc_r !acc_i

let fidelity a b = Cplx.norm2 (overlap a b)

let expectation_diag s f =
  let acc = ref 0.0 in
  for k = 0 to dimension s - 1 do
    acc := !acc +. (f k *. probability_of s k)
  done;
  !acc

let apply_diagonal_phase s f =
  for k = 0 to dimension s - 1 do
    let phi = f k in
    let c = cos phi and si = sin phi in
    let r = s.re.(k) and i = s.im.(k) in
    s.re.(k) <- (r *. c) -. (i *. si);
    s.im.(k) <- (r *. si) +. (i *. c)
  done

let expectation_pauli s terms =
  let qubits = List.map fst terms in
  let sorted = List.sort_uniq compare qubits in
  if List.length sorted <> List.length qubits then
    invalid_arg "State.expectation_pauli: repeated qubit";
  let probe = copy s in
  (* Rotate each qubit's basis so the operator becomes diagonal (Z). *)
  List.iter
    (fun (q, letter) ->
      match letter with
      | 'Z' -> ()
      | 'X' -> apply probe Gate.H [| q |]
      | 'Y' ->
          apply probe Gate.Sdag [| q |];
          apply probe Gate.H [| q |]
      | c -> invalid_arg (Printf.sprintf "State.expectation_pauli: '%c'" c))
    terms;
  let mask = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qubits in
  expectation_diag probe (fun k ->
      if Qca_util.Bits.parity (k land mask) = 0 then 1.0 else -1.0)

let apply_permutation s f =
  let dim = dimension s in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  let hit = Array.make dim false in
  for k = 0 to dim - 1 do
    let j = f k in
    if j < 0 || j >= dim || hit.(j) then
      invalid_arg "State.apply_permutation: not a bijection";
    hit.(j) <- true;
    re.(j) <- s.re.(k);
    im.(j) <- s.im.(k)
  done;
  Array.blit re 0 s.re 0 dim;
  Array.blit im 0 s.im 0 dim

let apply_controlled_permutation s ~control f =
  let mask = 1 lsl control in
  let guarded k =
    if k land mask = 0 then k
    else begin
      let j = f k in
      if j land mask = 0 then
        invalid_arg "State.apply_controlled_permutation: permutation clears the control";
      j
    end
  in
  apply_permutation s guarded

let memory_bytes n = 2 * 8 * (1 lsl n)
