(** Error channels for realistic qubits.

    Noise is simulated by Monte-Carlo trajectories: Pauli channels sample an
    error operator, amplitude damping samples a Kraus branch with the correct
    state-dependent probability. This reproduces density-matrix statistics in
    expectation over shots. *)

type channel =
  | Depolarizing of float
      (** With probability p, apply X, Y or Z uniformly at random. *)
  | Bit_flip of float
  | Phase_flip of float
  | Bit_phase_flip of float  (** Y errors. *)
  | Amplitude_damping of float  (** Energy relaxation with decay prob gamma. *)
  | Phase_damping of float

val apply : channel -> State.t -> Qca_util.Rng.t -> int -> unit
(** Apply one channel to one qubit of a state. *)

type model = {
  single_qubit_error : float;  (** Depolarising probability after 1q gates. *)
  two_qubit_error : float;  (** Depolarising probability (per operand) after 2q+ gates. *)
  readout_error : float;  (** Probability of flipping a measurement outcome. *)
  prep_error : float;  (** Probability a prep leaves |1> instead of |0>. *)
  t1_ns : float;  (** Relaxation time; [infinity] disables damping. *)
  t2_ns : float;  (** Dephasing time; [infinity] disables. T2 <= 2 T1. *)
  cycle_ns : float;  (** Wall time per circuit step, for T1/T2 decay. *)
}

val ideal : model
(** Perfect qubits: all rates zero, infinite coherence. *)

val depolarizing : float -> model
(** Uniform depolarising model at the given error rate (paper's baseline
    "simplistic" model of section 2.7), readout at the same rate. *)

val superconducting : model
(** Transmon-flavoured defaults quoted in the paper: ~0.1% gate error
    [Kelly et al.], T1/T2 in the tens of microseconds. *)

val is_ideal : model -> bool

val after_gate : model -> State.t -> Qca_util.Rng.t -> Qca_circuit.Gate.unitary -> int array -> unit
(** Apply the model's post-gate errors (depolarising + decoherence over one
    cycle) to the gate's operand qubits. *)

val idle_decay : model -> State.t -> Qca_util.Rng.t -> int -> unit
(** Apply one cycle of T1/T2 decay to a qubit that sat idle. *)

val flip_readout : model -> Qca_util.Rng.t -> int -> int
(** Apply classical readout error to an outcome bit. *)
