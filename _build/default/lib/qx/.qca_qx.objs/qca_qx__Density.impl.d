lib/qx/density.ml: Array Backend Engine Float Hashtbl List Noise Option Qca_circuit Qca_util State Sys
