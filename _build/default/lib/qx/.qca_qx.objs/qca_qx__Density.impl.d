lib/qx/density.ml: Array Float List Noise Qca_circuit Qca_util State
