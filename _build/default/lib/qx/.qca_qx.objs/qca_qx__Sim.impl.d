lib/qx/sim.ml: Array Hashtbl List Noise Option Printf Qca_circuit Qca_util State String
