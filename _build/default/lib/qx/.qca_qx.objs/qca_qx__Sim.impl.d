lib/qx/sim.ml: Backend Engine Noise Printf Qca_circuit Qca_util State
