lib/qx/state.ml: Array Float List Printf Qca_circuit Qca_util
