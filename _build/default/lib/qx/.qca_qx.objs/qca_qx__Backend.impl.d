lib/qx/backend.ml: Engine Qca_circuit
