lib/qx/state.mli: Qca_circuit Qca_util
