lib/qx/engine.ml: Array Buffer Hashtbl List Noise Option Printf Qca_circuit Qca_util State String Sys
