lib/qx/density.mli: Noise Qca_circuit Qca_util State
