lib/qx/density.mli: Backend Noise Qca_circuit Qca_util State
