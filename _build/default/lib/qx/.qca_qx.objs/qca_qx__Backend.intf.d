lib/qx/backend.mli: Engine Qca_circuit
