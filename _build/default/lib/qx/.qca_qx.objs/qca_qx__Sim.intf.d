lib/qx/sim.mli: Noise Qca_circuit Qca_util State
