lib/qx/sim.mli: Backend Noise Qca_circuit Qca_util State
