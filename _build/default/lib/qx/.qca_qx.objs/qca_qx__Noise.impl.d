lib/qx/noise.ml: Array Float List Qca_circuit Qca_util State
