lib/qx/engine.mli: Noise Qca_circuit Qca_util State
