lib/qx/noise.mli: Qca_circuit Qca_util State
