module Circuit = Qca_circuit.Circuit
module Gate = Qca_circuit.Gate
module Cqasm = Qca_circuit.Cqasm
module Rng = Qca_util.Rng

type outcome = { state : State.t; classical : int array }

let default_rng () = Rng.create 0x5EED

let run ?(noise = Noise.ideal) ?rng circuit =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let n = Circuit.qubit_count circuit in
  let state = State.create n in
  let classical = Array.make n (-1) in
  let ideal = Noise.is_ideal noise in
  let execute instr =
    match instr with
    | Gate.Unitary (u, ops) ->
        State.apply state u ops;
        if not ideal then Noise.after_gate noise state rng u ops
    | Gate.Conditional (bit, u, ops) ->
        if classical.(bit) = 1 then begin
          State.apply state u ops;
          if not ideal then Noise.after_gate noise state rng u ops
        end
    | Gate.Prep q ->
        let current = State.measure state rng q in
        if current = 1 then State.apply state Gate.X [| q |];
        if (not ideal) && Rng.bernoulli rng noise.Noise.prep_error then
          State.apply state Gate.X [| q |]
    | Gate.Measure q ->
        let outcome = State.measure state rng q in
        classical.(q) <- (if ideal then outcome else Noise.flip_readout noise rng outcome)
    | Gate.Barrier _ -> ()
  in
  List.iter execute (Circuit.instructions circuit);
  { state; classical }

let noise_of_error_model = function
  | None -> None
  | Some (model, rate) -> begin
      match model with
      | "depolarizing_channel" -> Some (Noise.depolarizing rate)
      | other -> invalid_arg (Printf.sprintf "Sim: unknown error model '%s'" other)
    end

let run_cqasm ?noise ?rng source =
  let program = Cqasm.parse source in
  let noise =
    match noise with
    | Some n -> Some n
    | None -> noise_of_error_model program.Cqasm.error_model
  in
  run ?noise ?rng (Cqasm.flatten program)

let bitstring classical =
  let n = Array.length classical in
  String.init n (fun i ->
      match classical.(n - 1 - i) with
      | -1 -> '-'
      | 0 -> '0'
      | 1 -> '1'
      | _ -> assert false)

let histogram ?(noise = Noise.ideal) ?rng ~shots circuit =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let table = Hashtbl.create 64 in
  for _ = 1 to shots do
    let result = run ~noise ~rng circuit in
    let key = bitstring result.classical in
    Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  done;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let success_probability ?(noise = Noise.ideal) ?rng ~shots ~accept circuit =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let hits = ref 0 in
  for _ = 1 to shots do
    let result = run ~noise ~rng circuit in
    if accept result.classical then incr hits
  done;
  float_of_int !hits /. float_of_int shots

let expectation_z ?(noise = Noise.ideal) ?rng circuit q =
  let result = run ~noise ?rng circuit in
  let mask = 1 lsl q in
  State.expectation_diag result.state (fun k -> if k land mask = 0 then 1.0 else -1.0)

let state_fidelity_vs_ideal ~noise ~rng ~shots circuit =
  let reference = (run ~noise:Noise.ideal circuit).state in
  let acc = ref 0.0 in
  for _ = 1 to shots do
    let noisy = (run ~noise ~rng circuit).state in
    acc := !acc +. State.fidelity reference noisy
  done;
  !acc /. float_of_int shots
