(** QX simulator front end: execute circuits on perfect or realistic qubits.

    The paper's QX engine executes cQASM, measures, and returns results to
    the micro-architecture; this module is that execution engine. *)

type outcome = {
  state : State.t;  (** Final state vector. *)
  classical : int array;
      (** One classical bit per qubit, holding the latest measurement of that
          qubit (-1 when never measured). *)
}

val run :
  ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> Qca_circuit.Circuit.t -> outcome
(** Execute a circuit once. [noise] defaults to {!Noise.ideal} (perfect
    qubits); [rng] defaults to a fixed-seed generator. *)

val run_cqasm : ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> string -> outcome
(** Parse cQASM source and run it. When the source carries an
    [error_model depolarizing_channel, p] directive (the QX convention) and
    no [noise] is passed, that model is used. *)

val histogram :
  ?noise:Noise.model ->
  ?rng:Qca_util.Rng.t ->
  shots:int ->
  Qca_circuit.Circuit.t ->
  (string * int) list
(** Re-execute [shots] times and count measured bitstrings (qubit 0 is the
    rightmost character; unmeasured qubits render as '-'). Sorted by
    decreasing count. *)

val success_probability :
  ?noise:Noise.model ->
  ?rng:Qca_util.Rng.t ->
  shots:int ->
  accept:(int array -> bool) ->
  Qca_circuit.Circuit.t ->
  float
(** Fraction of shots whose classical record satisfies [accept]. *)

val expectation_z :
  ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> Qca_circuit.Circuit.t -> int -> float
(** <Z> on one qubit of the final state of a single (noisy) run. *)

val state_fidelity_vs_ideal :
  noise:Noise.model -> rng:Qca_util.Rng.t -> shots:int -> Qca_circuit.Circuit.t -> float
(** Average over trajectories of |<psi_noisy|psi_ideal>|^2 for a
    measurement-free circuit. *)
