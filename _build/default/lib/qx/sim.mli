(** QX simulator front end: execute circuits on perfect or realistic qubits.

    The paper's QX engine executes cQASM, measures, and returns results to
    the micro-architecture; this module is that execution engine. Shot
    estimators ({!histogram}, {!success_probability}) are routed through
    {!Engine}, which simulates terminal-measurement circuits once and
    samples all shots from the final distribution; per-shot trajectory
    loops are the fallback for feedback, mid-circuit measurement and noise
    (see [docs/engine.md]).

    Seed semantics: every entry point that omits [?rng] draws from the
    engine's process-wide default stream, which advances across calls —
    repeated calls see fresh randomness, whole-program runs stay
    reproducible. Pass [?rng] (or use {!Engine.run} with [?seed]) for
    call-level reproducibility. *)

type outcome = {
  state : State.t;  (** Final state vector. *)
  classical : int array;
      (** One classical bit per qubit, holding the latest measurement of that
          qubit (-1 when never measured). *)
}

val run :
  ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> Qca_circuit.Circuit.t -> outcome
(** Execute a circuit once (one trajectory). [noise] defaults to
    {!Noise.ideal} (perfect qubits). *)

val run_cqasm : ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> string -> outcome
(** Parse cQASM source and run it. When the source carries an
    [error_model depolarizing_channel, p] directive (the QX convention) and
    no [noise] is passed, that model is used. *)

val histogram :
  ?noise:Noise.model ->
  ?rng:Qca_util.Rng.t ->
  shots:int ->
  Qca_circuit.Circuit.t ->
  (string * int) list
(** Count measured bitstrings over [shots] executions (qubit 0 is the
    rightmost character; unmeasured qubits render as '-'). Sorted by
    decreasing count. Routed through {!Engine.run}: terminal-measurement
    circuits under ideal noise are simulated once and sampled in a single
    pass. *)

val success_probability :
  ?noise:Noise.model ->
  ?rng:Qca_util.Rng.t ->
  shots:int ->
  accept:(int array -> bool) ->
  Qca_circuit.Circuit.t ->
  float
(** Fraction of shots whose classical record satisfies [accept]. Routed
    through {!Engine.run} like {!histogram}. *)

val expectation_z :
  ?noise:Noise.model -> ?rng:Qca_util.Rng.t -> Qca_circuit.Circuit.t -> int -> float
(** <Z> on one qubit of the final state of a single (noisy) run. *)

val state_fidelity_vs_ideal :
  noise:Noise.model -> rng:Qca_util.Rng.t -> shots:int -> Qca_circuit.Circuit.t -> float
(** Average over trajectories of |<psi_noisy|psi_ideal>|^2 for a
    measurement-free circuit (via {!Engine.fold_trajectories}). *)

val backend : ?noise:Noise.model -> unit -> (module Backend.S)
(** An execution target with a fixed noise model baked in. *)

module Backend : Backend.S
(** Ideal-qubit state-vector execution target ("qx-statevector"). *)
