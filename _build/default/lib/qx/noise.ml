module Gate = Qca_circuit.Gate
module Rng = Qca_util.Rng
module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx

type channel =
  | Depolarizing of float
  | Bit_flip of float
  | Phase_flip of float
  | Bit_phase_flip of float
  | Amplitude_damping of float
  | Phase_damping of float

let apply_pauli state which q =
  match which with
  | 0 -> State.apply state Gate.X [| q |]
  | 1 -> State.apply state Gate.Y [| q |]
  | 2 -> State.apply state Gate.Z [| q |]
  | _ -> assert false

let kraus_damping gamma =
  let k0 =
    Matrix.of_arrays
      [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.make (sqrt (1.0 -. gamma)) 0.0 |] |]
  in
  let k1 =
    Matrix.of_arrays
      [| [| Cplx.zero; Cplx.make (sqrt gamma) 0.0 |]; [| Cplx.zero; Cplx.zero |] |]
  in
  (k0, k1)

(* Trajectory step for amplitude damping: branch probabilities depend on the
   current state (p_decay = gamma * P[q = 1]). *)
let apply_amplitude_damping state rng gamma q =
  let p_decay = gamma *. State.prob_one state q in
  let k0, k1 = kraus_damping gamma in
  let chosen = if Rng.float rng 1.0 < p_decay then k1 else k0 in
  State.apply_matrix1 state chosen q;
  State.normalize state

let apply channel state rng q =
  match channel with
  | Depolarizing p ->
      if Rng.bernoulli rng p then apply_pauli state (Rng.int rng 3) q
  | Bit_flip p -> if Rng.bernoulli rng p then apply_pauli state 0 q
  | Phase_flip p -> if Rng.bernoulli rng p then apply_pauli state 2 q
  | Bit_phase_flip p -> if Rng.bernoulli rng p then apply_pauli state 1 q
  | Amplitude_damping gamma -> if gamma > 0.0 then apply_amplitude_damping state rng gamma q
  | Phase_damping lambda ->
      (* Phase damping is equivalent to a phase flip with p = (1-sqrt(1-l))/2. *)
      let p = (1.0 -. sqrt (1.0 -. lambda)) /. 2.0 in
      if Rng.bernoulli rng p then apply_pauli state 2 q

type model = {
  single_qubit_error : float;
  two_qubit_error : float;
  readout_error : float;
  prep_error : float;
  t1_ns : float;
  t2_ns : float;
  cycle_ns : float;
}

let ideal =
  {
    single_qubit_error = 0.0;
    two_qubit_error = 0.0;
    readout_error = 0.0;
    prep_error = 0.0;
    t1_ns = infinity;
    t2_ns = infinity;
    cycle_ns = 20.0;
  }

let depolarizing p =
  {
    ideal with
    single_qubit_error = p;
    two_qubit_error = p;
    readout_error = p;
    prep_error = p;
  }

let superconducting =
  {
    single_qubit_error = 0.001;
    two_qubit_error = 0.005;
    readout_error = 0.01;
    prep_error = 0.002;
    t1_ns = 30_000.0;
    t2_ns = 20_000.0;
    cycle_ns = 20.0;
  }

let is_ideal m =
  m.single_qubit_error = 0.0 && m.two_qubit_error = 0.0 && m.readout_error = 0.0
  && m.prep_error = 0.0 && m.t1_ns = infinity && m.t2_ns = infinity

let decay_channels m =
  if m.t1_ns = infinity && m.t2_ns = infinity then []
  else begin
    let gamma = if m.t1_ns = infinity then 0.0 else 1.0 -. exp (-.m.cycle_ns /. m.t1_ns) in
    (* Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1). *)
    let t1_rate = if m.t1_ns = infinity then 0.0 else 1.0 /. (2.0 *. m.t1_ns) in
    let t2_rate = if m.t2_ns = infinity then 0.0 else 1.0 /. m.t2_ns in
    let phi_rate = Float.max 0.0 (t2_rate -. t1_rate) in
    let lambda = 1.0 -. exp (-2.0 *. m.cycle_ns *. phi_rate) in
    [ Amplitude_damping gamma; Phase_damping lambda ]
  end

let idle_decay m state rng q =
  List.iter (fun ch -> apply ch state rng q) (decay_channels m)

let after_gate m state rng u ops =
  let p = if Gate.arity u >= 2 then m.two_qubit_error else m.single_qubit_error in
  Array.iter
    (fun q ->
      apply (Depolarizing p) state rng q;
      idle_decay m state rng q)
    ops

let flip_readout m rng outcome =
  if Rng.bernoulli rng m.readout_error then 1 - outcome else outcome
