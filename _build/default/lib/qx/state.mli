(** State-vector backend of the QX simulator.

    Amplitudes are stored little-endian: qubit 0 is the least-significant bit
    of the basis index, matching {!Qca_circuit.Circuit.unitary_matrix}. *)

type t

val create : int -> t
(** [create n] is |0...0> on [n] qubits. Raises for n < 1 or n > 30. *)

val qubit_count : t -> int
val dimension : t -> int

val copy : t -> t

val of_amplitudes : Qca_util.Cplx.t array -> t
(** Length must be a power of two; the vector is normalised on entry. *)

val amplitude : t -> int -> Qca_util.Cplx.t

val probabilities : t -> float array
(** Full measurement distribution (length [dimension]). *)

val probability_of : t -> int -> float
(** Probability of one basis state. *)

val norm : t -> float
(** 2-norm (1.0 for a valid state). *)

val normalize : t -> unit

val apply : t -> Qca_circuit.Gate.unitary -> int array -> unit
(** Apply a gate in place; operands as in {!Qca_circuit.Gate.t}. *)

val apply_matrix1 : t -> Qca_util.Matrix.t -> int -> unit
(** Apply an arbitrary 2x2 matrix (not necessarily unitary — used for Kraus
    operators; renormalisation is the caller's concern). *)

val prob_one : t -> int -> float
(** Probability that measuring qubit [q] yields 1. *)

val collapse : t -> int -> int -> unit
(** [collapse s q outcome] projects qubit [q] onto [outcome] (0 or 1) and
    renormalises. The projected branch must have nonzero probability. *)

val measure : t -> Qca_util.Rng.t -> int -> int
(** Sample and collapse one qubit; returns the outcome. *)

val sample_index : t -> Qca_util.Rng.t -> int
(** Sample a basis index from the current distribution without collapsing. *)

val overlap : t -> t -> Qca_util.Cplx.t
(** Inner product <a|b>. *)

val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val expectation_diag : t -> (int -> float) -> float
(** Expectation of a computational-basis-diagonal observable. *)

val expectation_pauli : t -> (int * char) list -> float
(** Expectation of a Pauli string, e.g. [[(0, 'X'); (2, 'Z')]] for X0 Z2.
    Letters X, Y, Z; qubits must be distinct. Leaves the state untouched
    (works on a rotated copy). *)

val apply_diagonal_phase : t -> (int -> float) -> unit
(** Multiply each amplitude k by exp(i * f k) — the efficient path for
    diagonal cost Hamiltonians (QAOA phase separation). *)

val apply_permutation : t -> (int -> int) -> unit
(** Classical reversible function as a basis permutation: amplitude of |x>
    moves to |f x|. [f] must be a bijection on the basis range (checked). *)

val apply_controlled_permutation : t -> control:int -> (int -> int) -> unit
(** Apply the permutation only on basis states whose [control] bit is 1;
    [f] must fix the control bit and be a bijection on that subspace —
    the controlled-U_a^2^k building block of order finding. *)

val memory_bytes : int -> int
(** Bytes required by a state on [n] qubits (used by the E5 scaling table). *)
