lib/util/cplx.ml: Complex Float Printf
