lib/util/rng.mli:
