lib/util/optimize.ml: Array Float
