lib/util/bits.ml: String
