lib/util/cplx.mli: Complex
