lib/util/bits.mli:
