lib/util/matrix.mli: Cplx
