lib/util/graph.mli:
