lib/util/matrix.ml: Array Buffer Complex Cplx Float
