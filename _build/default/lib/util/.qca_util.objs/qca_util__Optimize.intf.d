lib/util/optimize.mli:
