lib/util/stats.mli:
