lib/util/graph.ml: Array Int Map Queue Set
