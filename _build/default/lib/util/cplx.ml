type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i

let make re im : t = { Complex.re; im }
let re (z : t) = z.Complex.re
let im (z : t) = z.Complex.im

let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let neg = Complex.neg
let conj = Complex.conj
let scale s (z : t) : t = { Complex.re = s *. z.Complex.re; im = s *. z.Complex.im }

let cis theta : t = { Complex.re = cos theta; im = sin theta }

let norm2 (z : t) = (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im)
let abs = Complex.norm

let approx_equal ?(eps = 1e-9) (a : t) (b : t) =
  Float.abs (a.Complex.re -. b.Complex.re) <= eps
  && Float.abs (a.Complex.im -. b.Complex.im) <= eps

let to_string (z : t) = Printf.sprintf "%.6g%+.6gi" z.Complex.re z.Complex.im
