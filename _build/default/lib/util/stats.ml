let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let sum = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sum /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let minimum xs = Array.fold_left Float.min infinity xs
let maximum xs = Array.fold_left Float.max neg_infinity xs

let histogram ~bins ~lo ~hi xs =
  assert (bins > 0 && hi > lo);
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bin_of x =
    let b = int_of_float (Float.floor ((x -. lo) /. width)) in
    if b < 0 then 0 else if b >= bins then bins - 1 else b
  in
  Array.iter (fun x -> counts.(bin_of x) <- counts.(bin_of x) + 1) xs;
  counts

let linear_fit points =
  let n = float_of_int (Array.length points) in
  assert (n >= 2.0);
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  assert (Float.abs denom > 1e-12);
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

let exponential_decay_fit points =
  let logged =
    Array.map
      (fun (x, y) ->
        assert (y > 0.0);
        (x, log y))
      points
  in
  let slope, intercept = linear_fit logged in
  (exp intercept, exp slope)

let binomial_stderr p n =
  assert (n > 0);
  sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n)
