(** Small dense complex matrices: gate unitaries and Kraus operators. *)

type t
(** Immutable complex matrix. *)

val make : int -> int -> (int -> int -> Cplx.t) -> t
(** [make rows cols f] fills entry (r, c) with [f r c]. *)

val of_arrays : Cplx.t array array -> t
(** From a rectangular row-major array of rows. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cplx.t

val identity : int -> t
val zero : int -> int -> t

val add : t -> t -> t
val mul : t -> t -> t
val scale : Cplx.t -> t -> t
val kron : t -> t -> t
(** Kronecker (tensor) product. *)

val adjoint : t -> t
(** Conjugate transpose. *)

val trace : t -> Cplx.t

val apply : t -> Cplx.t array -> Cplx.t array
(** Matrix-vector product. *)

val approx_equal : ?eps:float -> t -> t -> bool

val equal_up_to_phase : ?eps:float -> t -> t -> bool
(** True when [a = exp(i phi) b] for some global phase [phi]. *)

val is_unitary : ?eps:float -> t -> bool

val is_hermitian : ?eps:float -> t -> bool

val exp_diag : t -> t
(** Exponential of a diagonal matrix: [exp_diag d] has entries
    [exp d_kk] on the diagonal; off-diagonal entries must be zero. *)

val to_string : t -> string
