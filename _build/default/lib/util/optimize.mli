(** Derivative-free optimisers for variational quantum algorithms. *)

val nelder_mead :
  ?max_iter:int ->
  ?tolerance:float ->
  ?step:float ->
  (float array -> float) ->
  float array ->
  float array * float
(** [nelder_mead f x0] minimises [f] from the initial point [x0] using the
    Nelder-Mead simplex method. Returns the best point and its value. *)

val grid_search :
  lo:float array ->
  hi:float array ->
  steps:int ->
  (float array -> float) ->
  float array * float
(** Exhaustive search over a regular grid of [steps] points per dimension
    (inclusive of both bounds). Intended for low dimensions (p <= 2). *)

val coordinate_descent :
  ?rounds:int ->
  ?steps:int ->
  lo:float array ->
  hi:float array ->
  (float array -> float) ->
  float array ->
  float array * float
(** Cyclic one-dimensional grid refinement around the current point. *)
