(** Bit-level helpers used by the state-vector simulator and QEC codes. *)

val test : int -> int -> bool
(** [test x i] is the [i]-th bit of [x]. *)

val set : int -> int -> int
(** [set x i] sets bit [i]. *)

val clear : int -> int -> int
(** [clear x i] clears bit [i]. *)

val flip : int -> int -> int
(** [flip x i] toggles bit [i]. *)

val popcount : int -> int
(** Number of set bits. *)

val parity : int -> int
(** Parity (0 or 1) of the set-bit count. *)

val insert_zero : int -> int -> int
(** [insert_zero x i] inserts a zero bit at position [i], shifting higher
    bits left: used to enumerate amplitude pairs for single-qubit gates. *)

val to_string : width:int -> int -> string
(** Binary rendering, most-significant bit first, padded to [width]. *)

val of_string : string -> int
(** Inverse of [to_string] (ignores width). *)
