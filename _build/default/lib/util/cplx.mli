(** Helpers over [Stdlib.Complex] for quantum amplitudes. *)

type t = Complex.t

val zero : t
val one : t
val i : t

val make : float -> float -> t
(** [make re im]. *)

val re : t -> float
val im : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

val cis : float -> t
(** [cis theta] is [exp (i * theta)]. *)

val norm2 : t -> float
(** Squared modulus. *)

val abs : t -> float
(** Modulus. *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with tolerance (default 1e-9). *)

val to_string : t -> string
(** Human-readable "a+bi" rendering. *)
