module Int_map = Map.Make (Int)

type t = { size : int; mutable adjacency : float Int_map.t array }

let create size =
  assert (size >= 0);
  { size; adjacency = Array.make size Int_map.empty }

let size g = g.size

let check g v = assert (v >= 0 && v < g.size)

let add_edge g u v w =
  check g u;
  check g v;
  assert (u <> v);
  g.adjacency.(u) <- Int_map.add v w g.adjacency.(u);
  g.adjacency.(v) <- Int_map.add u w g.adjacency.(v)

let has_edge g u v =
  check g u;
  check g v;
  Int_map.mem v g.adjacency.(u)

let weight g u v =
  check g u;
  check g v;
  Int_map.find_opt v g.adjacency.(u)

let neighbours g v =
  check g v;
  Int_map.bindings g.adjacency.(v)

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    Int_map.iter (fun v w -> if u < v then acc := (u, v, w) :: !acc) g.adjacency.(u)
  done;
  !acc

let degree g v =
  check g v;
  Int_map.cardinal g.adjacency.(v)

let complete n w =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v (w u v)
    done
  done;
  g

let grid_2d rows cols =
  let g = create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then add_edge g v (v + 1) 1.0;
      if r + 1 < rows then add_edge g v (v + cols) 1.0
    done
  done;
  g

(* Dijkstra with a simple module-level priority queue on (distance, vertex). *)
module Pq = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let dijkstra g source =
  let dist = Array.make g.size infinity in
  let prev = Array.make g.size (-1) in
  dist.(source) <- 0.0;
  let queue = ref (Pq.singleton (0.0, source)) in
  while not (Pq.is_empty !queue) do
    let ((d, u) as entry) = Pq.min_elt !queue in
    queue := Pq.remove entry !queue;
    if d <= dist.(u) then
      Int_map.iter
        (fun v w ->
          let candidate = d +. w in
          if candidate < dist.(v) then begin
            dist.(v) <- candidate;
            prev.(v) <- u;
            queue := Pq.add (candidate, v) !queue
          end)
        g.adjacency.(u)
  done;
  (dist, prev)

let distances_from g source =
  check g source;
  fst (dijkstra g source)

let shortest_path g source target =
  check g source;
  check g target;
  let dist, prev = dijkstra g source in
  if dist.(target) = infinity then None
  else
    let rec build v acc = if v = source then source :: acc else build prev.(v) (v :: acc) in
    Some (build target [])

let hop_distance g source target =
  check g source;
  check g target;
  let dist = Array.make g.size (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  let rec loop () =
    if Queue.is_empty queue then None
    else
      let u = Queue.pop queue in
      if u = target then Some dist.(u)
      else begin
        Int_map.iter
          (fun v _ ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v queue
            end)
          g.adjacency.(u);
        loop ()
      end
  in
  if source = target then Some 0 else loop ()

let is_connected g =
  if g.size = 0 then true
  else begin
    let seen = Array.make g.size false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Int_map.iter
        (fun v _ ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v queue
          end)
        g.adjacency.(u)
    done;
    !count = g.size
  end
