(** Weighted undirected graphs: qubit topologies and TSP instances. *)

type t
(** Graph over vertices [0 .. size - 1] with float edge weights. *)

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val size : t -> int

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds (or overwrites) an undirected edge. *)

val has_edge : t -> int -> int -> bool

val weight : t -> int -> int -> float option

val neighbours : t -> int -> (int * float) list
(** Sorted by vertex id. *)

val edges : t -> (int * int * float) list
(** Each undirected edge once, with [u < v]. *)

val degree : t -> int -> int

val complete : int -> (int -> int -> float) -> t
(** [complete n w] is the complete graph with weights [w u v]. *)

val grid_2d : int -> int -> t
(** [grid_2d rows cols] is the unit-weight nearest-neighbour lattice; vertex
    [(r, c)] has index [r * cols + c]. *)

val shortest_path : t -> int -> int -> int list option
(** Dijkstra path (inclusive of both endpoints), [None] if unreachable. *)

val distances_from : t -> int -> float array
(** Single-source Dijkstra distances; [infinity] when unreachable. *)

val hop_distance : t -> int -> int -> int option
(** Unweighted BFS distance. *)

val is_connected : t -> bool
