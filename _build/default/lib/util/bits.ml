let test x i = x land (1 lsl i) <> 0
let set x i = x lor (1 lsl i)
let clear x i = x land lnot (1 lsl i)
let flip x i = x lxor (1 lsl i)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let parity x = popcount x land 1

let insert_zero x i =
  let low_mask = (1 lsl i) - 1 in
  let low = x land low_mask in
  let high = (x land lnot low_mask) lsl 1 in
  high lor low

let to_string ~width x =
  String.init width (fun i -> if test x (width - 1 - i) then '1' else '0')

let of_string s =
  String.fold_left (fun acc c -> (acc lsl 1) lor (if c = '1' then 1 else 0)) 0 s
