type t = { rows : int; cols : int; data : Cplx.t array }

let make rows cols f =
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let of_arrays arr =
  let rows = Array.length arr in
  assert (rows > 0);
  let cols = Array.length arr.(0) in
  Array.iter (fun row -> assert (Array.length row = cols)) arr;
  make rows cols (fun r c -> arr.(r).(c))

let rows m = m.rows
let cols m = m.cols
let get m r c = m.data.((r * m.cols) + c)

let identity n = make n n (fun r c -> if r = c then Cplx.one else Cplx.zero)
let zero rows cols = make rows cols (fun _ _ -> Cplx.zero)

let add a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  make a.rows a.cols (fun r c -> Cplx.add (get a r c) (get b r c))

let mul a b =
  assert (a.cols = b.rows);
  let dot r c =
    let acc = ref Cplx.zero in
    for k = 0 to a.cols - 1 do
      acc := Cplx.add !acc (Cplx.mul (get a r k) (get b k c))
    done;
    !acc
  in
  make a.rows b.cols dot

let scale s m = make m.rows m.cols (fun r c -> Cplx.mul s (get m r c))

let kron a b =
  make (a.rows * b.rows) (a.cols * b.cols) (fun r c ->
      let ra = r / b.rows and rb = r mod b.rows in
      let ca = c / b.cols and cb = c mod b.cols in
      Cplx.mul (get a ra ca) (get b rb cb))

let adjoint m = make m.cols m.rows (fun r c -> Cplx.conj (get m c r))

let trace m =
  assert (m.rows = m.cols);
  let acc = ref Cplx.zero in
  for k = 0 to m.rows - 1 do
    acc := Cplx.add !acc (get m k k)
  done;
  !acc

let apply m v =
  assert (m.cols = Array.length v);
  Array.init m.rows (fun r ->
      let acc = ref Cplx.zero in
      for c = 0 to m.cols - 1 do
        acc := Cplx.add !acc (Cplx.mul (get m r c) v.(c))
      done;
      !acc)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cplx.approx_equal ~eps x y) a.data b.data

let equal_up_to_phase ?(eps = 1e-9) a b =
  if a.rows <> b.rows || a.cols <> b.cols then false
  else
    (* Find the first entry of b with significant modulus to fix the phase. *)
    let n = Array.length a.data in
    let rec find k =
      if k = n then None
      else if Cplx.abs b.data.(k) > eps then Some k
      else if Cplx.abs a.data.(k) > eps then (* a nonzero where b zero *) None
      else find (k + 1)
    in
    match find 0 with
    | None -> approx_equal ~eps a b
    | Some k ->
        let phase = Complex.div a.data.(k) b.data.(k) in
        if Float.abs (Cplx.abs phase -. 1.0) > eps then false
        else approx_equal ~eps a (scale phase b)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && approx_equal ~eps (mul (adjoint m) m) (identity m.rows)

let is_hermitian ?(eps = 1e-9) m = m.rows = m.cols && approx_equal ~eps (adjoint m) m

let exp_diag m =
  assert (m.rows = m.cols);
  make m.rows m.cols (fun r c ->
      if r = c then Complex.exp (get m r c)
      else begin
        assert (Cplx.approx_equal (get m r c) Cplx.zero);
        Cplx.zero
      end)

let to_string m =
  let buffer = Buffer.create 128 in
  for r = 0 to m.rows - 1 do
    for c = 0 to m.cols - 1 do
      Buffer.add_string buffer (Cplx.to_string (get m r c));
      if c < m.cols - 1 then Buffer.add_string buffer "  "
    done;
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer
