let nelder_mead ?(max_iter = 500) ?(tolerance = 1e-8) ?(step = 0.5) f x0 =
  let n = Array.length x0 in
  assert (n > 0);
  (* Simplex of n+1 vertices, each paired with its function value. *)
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      v.(i - 1) <- v.(i - 1) +. step;
      v
    end
  in
  let simplex = Array.init (n + 1) (fun i -> let v = vertex i in (v, f v)) in
  let alpha = 1.0 and gamma = 2.0 and rho = 0.5 and sigma = 0.5 in
  let sort () = Array.sort (fun (_, a) (_, b) -> compare a b) simplex in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* exclude the worst vertex (last after sorting) *)
      let v, _ = simplex.(i) in
      Array.iteri (fun j x -> c.(j) <- c.(j) +. x) v
    done;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine c v coef = Array.init n (fun j -> c.(j) +. (coef *. (c.(j) -. v.(j)))) in
  let iter = ref 0 in
  let spread () =
    let _, best = simplex.(0) and _, worst = simplex.(n) in
    Float.abs (worst -. best)
  in
  sort ();
  while !iter < max_iter && spread () > tolerance do
    incr iter;
    let c = centroid () in
    let worst_v, worst_f = simplex.(n) in
    let _, best_f = simplex.(0) in
    let reflected = combine c worst_v alpha in
    let fr = f reflected in
    if fr < best_f then begin
      let expanded = combine c worst_v gamma in
      let fe = f expanded in
      if fe < fr then simplex.(n) <- (expanded, fe) else simplex.(n) <- (reflected, fr)
    end
    else if fr < snd simplex.(n - 1) then simplex.(n) <- (reflected, fr)
    else begin
      let contracted = combine c worst_v (-.rho) in
      let fc = f contracted in
      if fc < worst_f then simplex.(n) <- (contracted, fc)
      else begin
        (* Shrink toward the best vertex. *)
        let best_v, _ = simplex.(0) in
        for i = 1 to n do
          let v, _ = simplex.(i) in
          let shrunk = Array.init n (fun j -> best_v.(j) +. (sigma *. (v.(j) -. best_v.(j)))) in
          simplex.(i) <- (shrunk, f shrunk)
        done
      end
    end;
    sort ()
  done;
  simplex.(0)

let grid_search ~lo ~hi ~steps f =
  let n = Array.length lo in
  assert (Array.length hi = n && steps >= 2);
  let best_x = ref (Array.copy lo) and best_f = ref infinity in
  let point = Array.make n 0.0 in
  let value d k =
    lo.(d) +. (float_of_int k *. (hi.(d) -. lo.(d)) /. float_of_int (steps - 1))
  in
  let rec enumerate d =
    if d = n then begin
      let fx = f point in
      if fx < !best_f then begin
        best_f := fx;
        best_x := Array.copy point
      end
    end
    else
      for k = 0 to steps - 1 do
        point.(d) <- value d k;
        enumerate (d + 1)
      done
  in
  enumerate 0;
  (!best_x, !best_f)

let coordinate_descent ?(rounds = 3) ?(steps = 25) ~lo ~hi f x0 =
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let best = ref (f x) in
  for _ = 1 to rounds do
    for d = 0 to n - 1 do
      let saved = x.(d) in
      let best_here = ref saved in
      for k = 0 to steps - 1 do
        let candidate =
          lo.(d) +. (float_of_int k *. (hi.(d) -. lo.(d)) /. float_of_int (steps - 1))
        in
        x.(d) <- candidate;
        let fx = f x in
        if fx < !best then begin
          best := fx;
          best_here := candidate
        end
      done;
      x.(d) <- !best_here
    done
  done;
  (x, !best)
