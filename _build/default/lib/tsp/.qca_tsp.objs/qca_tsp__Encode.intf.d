lib/tsp/encode.mli: Qca_anneal Tsp
