lib/tsp/tsp.ml: Array Float Fun Printf Qca_util
