lib/tsp/tsp.mli: Qca_util
