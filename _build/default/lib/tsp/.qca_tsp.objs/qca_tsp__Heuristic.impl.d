lib/tsp/heuristic.ml: Array Exact Fun Qca_util Tsp
