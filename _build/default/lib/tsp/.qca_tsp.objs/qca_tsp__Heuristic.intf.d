lib/tsp/heuristic.mli: Qca_util Tsp
