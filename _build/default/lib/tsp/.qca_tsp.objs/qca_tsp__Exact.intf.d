lib/tsp/exact.mli: Tsp
