lib/tsp/exact.ml: Array Float Fun Tsp
