lib/tsp/encode.ml: Array Float Qca_anneal Tsp
