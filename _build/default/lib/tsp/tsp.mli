(** Travelling Salesman Problem instances (section 3.3, Figure 9). *)

type t = {
  name : string;
  cities : string array;
  distance : float array array;  (** Symmetric, zero diagonal. *)
}

val size : t -> int

val make : name:string -> cities:string array -> distance:float array array -> t
(** Validates symmetry and the zero diagonal. *)

val euclidean :
  name:string -> ?scale:float -> (string * float * float) array -> t
(** Instance from planar coordinates; distances scaled by [scale] (default 1). *)

val netherlands : unit -> t
(** Figure 9's four-city Dutch instance (Amsterdam, Den Haag, Utrecht,
    Eindhoven) built from scaled Euclidean map distances; the scale is chosen
    so the optimal tour costs exactly 1.42, matching the paper. *)

val random : Qca_util.Rng.t -> int -> t
(** Uniform random points in the unit square. *)

val tour_cost : t -> int array -> float
(** Cost of the closed tour visiting cities in the given order. *)

val is_valid_tour : t -> int array -> bool
(** A permutation of all cities. *)

val canonical : int array -> int array
(** Normalise a cyclic tour: rotate to start at city 0 and orient so the
    second city has the smaller index — for comparing tours. *)
