(** Exact TSP solvers: the classical baselines of section 3.3 (the paper
    cites branch and bound as the exact-record method). *)

val enumerate : Tsp.t -> int array * float
(** Full enumeration with city 0 fixed; feasible to ~10 cities. *)

val held_karp : Tsp.t -> int array * float
(** Dynamic programming in O(n^2 2^n); feasible to ~18 cities. *)

val branch_and_bound : Tsp.t -> int array * float
(** Depth-first search pruned by a cheapest-outgoing-edge bound. *)

val solvers : (string * (Tsp.t -> int array * float)) list
(** Named list of all exact solvers (for cross-checking). *)
