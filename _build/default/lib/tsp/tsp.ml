module Rng = Qca_util.Rng

type t = { name : string; cities : string array; distance : float array array }

let size t = Array.length t.cities

let make ~name ~cities ~distance =
  let n = Array.length cities in
  if n < 2 then invalid_arg "Tsp.make: need at least two cities";
  if Array.length distance <> n then invalid_arg "Tsp.make: distance matrix size";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Tsp.make: distance matrix not square";
      if Float.abs row.(i) > 1e-12 then invalid_arg "Tsp.make: nonzero diagonal";
      Array.iteri
        (fun j d ->
          if Float.abs (d -. distance.(j).(i)) > 1e-9 then
            invalid_arg "Tsp.make: asymmetric distances";
          if d < 0.0 then invalid_arg "Tsp.make: negative distance")
        row)
    distance;
  { name; cities; distance }

let euclidean ~name ?(scale = 1.0) points =
  let n = Array.length points in
  let cities = Array.map (fun (c, _, _) -> c) points in
  let distance =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let _, xi, yi = points.(i) and _, xj, yj = points.(j) in
            scale *. Float.hypot (xi -. xj) (yi -. yj)))
  in
  make ~name ~cities ~distance

let tour_cost t tour =
  let n = size t in
  assert (Array.length tour = n);
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. t.distance.(tour.(k)).(tour.((k + 1) mod n))
  done;
  !acc

let is_valid_tour t tour =
  let n = size t in
  Array.length tour = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun c ->
      if c < 0 || c >= n || seen.(c) then false
      else begin
        seen.(c) <- true;
        true
      end)
    tour

(* Optimal tour by enumeration, used only to calibrate the Figure-9 scale. *)
let enumerate_optimal t =
  let n = size t in
  assert (n <= 8);
  let best = ref infinity in
  let tour = Array.init n Fun.id in
  let rec permute k =
    if k = n then best := Float.min !best (tour_cost t tour)
    else
      for i = k to n - 1 do
        let tmp = tour.(k) in
        tour.(k) <- tour.(i);
        tour.(i) <- tmp;
        permute (k + 1);
        let tmp = tour.(k) in
        tour.(k) <- tour.(i);
        tour.(i) <- tmp
      done
  in
  permute 1;
  !best

(* Map coordinates (longitude, latitude) of the four cities in Figure 9's
   route-planning example. The paper reports an optimal TSP cost of 1.42 on
   "scaled Euclidean distance"; we fix the scale so the optimum is exactly
   that, which is what "scaled" means operationally. *)
let netherlands () =
  let points =
    [|
      ("Amsterdam", 4.9041, 52.3676);
      ("Den Haag", 4.3007, 52.0705);
      ("Utrecht", 5.1214, 52.0907);
      ("Eindhoven", 5.4697, 51.4416);
    |]
  in
  let raw = euclidean ~name:"netherlands" points in
  let optimal_raw = enumerate_optimal raw in
  euclidean ~name:"netherlands" ~scale:(1.42 /. optimal_raw) points

let random rng n =
  let points =
    Array.init n (fun i ->
        (Printf.sprintf "c%d" i, Rng.float rng 1.0, Rng.float rng 1.0))
  in
  euclidean ~name:(Printf.sprintf "random-%d" n) points

let canonical tour =
  let n = Array.length tour in
  let start =
    let rec find i = if tour.(i) = 0 then i else find (i + 1) in
    find 0
  in
  let rotated = Array.init n (fun k -> tour.((start + k) mod n)) in
  if n >= 3 && rotated.(1) > rotated.(n - 1) then begin
    (* reverse orientation, keeping city 0 first *)
    Array.init n (fun k -> if k = 0 then rotated.(0) else rotated.(n - k))
  end
  else rotated
