(** TSP -> QUBO encoding (section 3.3).

    Binary variable x_(c,t) means "city c is visited at time t"; with n
    cities the encoding needs n^2 qubits (the paper's quadratic growth).
    The QUBO combines, exactly as enumerated in the paper:
    (i) a reward for assigning every node,
    (ii) a penalty for one city in two time slots,
    (iii) a penalty for two cities in one time slot,
    (iv) the travel cost of consecutive assignments. *)

val qubits_needed : int -> int
(** n^2. *)

val variable : n:int -> city:int -> time:int -> int
(** Flat index of x_(city, time). *)

val to_qubo : ?penalty:float -> Tsp.t -> Qca_anneal.Qubo.t
(** [penalty] defaults to 4x the largest distance — strictly larger than any
    cost gain a constraint violation could buy. *)

val decode : Tsp.t -> int array -> int array option
(** Read a tour from a bit assignment; [None] if constraints are violated. *)

val decode_with_repair : Tsp.t -> int array -> int array
(** Greedy repair: every time slot gets the highest-scoring city not yet
    used, then unused cities fill the gaps. Always returns a valid tour. *)

val tour_bits : n:int -> int array -> int array
(** Bits encoding a given tour (for energy comparisons). *)
