module Qubo = Qca_anneal.Qubo

let qubits_needed n = n * n

let variable ~n ~city ~time =
  assert (city >= 0 && city < n && time >= 0 && time < n);
  (city * n) + time

let max_distance t =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    0.0 t.Tsp.distance

let to_qubo ?penalty t =
  let n = Tsp.size t in
  let a = match penalty with Some p -> p | None -> 4.0 *. max_distance t in
  let q = Qubo.create (qubits_needed n) in
  let v ~city ~time = variable ~n ~city ~time in
  (* (i)+(ii): each city in exactly one slot: A (1 - sum_t x_ct)^2.
     Expanding with x^2 = x gives -A on each diagonal and +2A on pairs. *)
  for city = 0 to n - 1 do
    for time = 0 to n - 1 do
      Qubo.add q (v ~city ~time) (v ~city ~time) (-.a);
      for time' = time + 1 to n - 1 do
        Qubo.add q (v ~city ~time) (v ~city ~time:time') (2.0 *. a)
      done
    done
  done;
  (* (iii): each slot hosts exactly one city. *)
  for time = 0 to n - 1 do
    for city = 0 to n - 1 do
      Qubo.add q (v ~city ~time) (v ~city ~time) (-.a);
      for city' = city + 1 to n - 1 do
        Qubo.add q (v ~city ~time) (v ~city:city' ~time) (2.0 *. a)
      done
    done
  done;
  (* (iv): travel cost between consecutive slots (cyclically). *)
  for time = 0 to n - 1 do
    let time' = (time + 1) mod n in
    for city = 0 to n - 1 do
      for city' = 0 to n - 1 do
        if city <> city' then
          Qubo.add q (v ~city ~time) (v ~city:city' ~time:time')
            t.Tsp.distance.(city).(city')
      done
    done
  done;
  q

let decode t bits =
  let n = Tsp.size t in
  assert (Array.length bits = n * n);
  let tour = Array.make n (-1) in
  let used = Array.make n false in
  let ok = ref true in
  for time = 0 to n - 1 do
    let assigned = ref [] in
    for city = 0 to n - 1 do
      if bits.(variable ~n ~city ~time) = 1 then assigned := city :: !assigned
    done;
    match !assigned with
    | [ city ] when not used.(city) ->
        tour.(time) <- city;
        used.(city) <- true
    | _ -> ok := false
  done;
  if !ok then Some tour else None

let decode_with_repair t bits =
  let n = Tsp.size t in
  let tour = Array.make n (-1) in
  let used = Array.make n false in
  (* First pass: honour unambiguous, unused assignments. *)
  for time = 0 to n - 1 do
    for city = 0 to n - 1 do
      if
        tour.(time) = -1
        && (not used.(city))
        && bits.(variable ~n ~city ~time) = 1
      then begin
        tour.(time) <- city;
        used.(city) <- true
      end
    done
  done;
  (* Fill the gaps with unused cities in order. *)
  let next_unused = ref 0 in
  for time = 0 to n - 1 do
    if tour.(time) = -1 then begin
      while used.(!next_unused) do
        incr next_unused
      done;
      tour.(time) <- !next_unused;
      used.(!next_unused) <- true
    end
  done;
  tour

let tour_bits ~n tour =
  let bits = Array.make (n * n) 0 in
  Array.iteri (fun time city -> bits.(variable ~n ~city ~time) <- 1) tour;
  bits
