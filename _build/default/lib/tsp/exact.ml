let enumerate t =
  let n = Tsp.size t in
  if n > 10 then invalid_arg "Exact.enumerate: too many cities";
  let best_cost = ref infinity and best_tour = ref (Array.init n Fun.id) in
  let tour = Array.init n Fun.id in
  let rec permute k =
    if k = n then begin
      let c = Tsp.tour_cost t tour in
      if c < !best_cost then begin
        best_cost := c;
        best_tour := Array.copy tour
      end
    end
    else
      for i = k to n - 1 do
        let tmp = tour.(k) in
        tour.(k) <- tour.(i);
        tour.(i) <- tmp;
        permute (k + 1);
        let tmp = tour.(k) in
        tour.(k) <- tour.(i);
        tour.(i) <- tmp
      done
  in
  permute 1;
  (!best_tour, !best_cost)

(* Held-Karp: dp.(mask).(last) = cheapest path visiting exactly the cities
   in mask (always containing 0), starting at 0 and ending at last. *)
let held_karp t =
  let n = Tsp.size t in
  if n > 18 then invalid_arg "Exact.held_karp: too many cities";
  let full = 1 lsl n in
  let dp = Array.make_matrix full n infinity in
  let parent = Array.make_matrix full n (-1) in
  dp.(1).(0) <- 0.0;
  for mask = 1 to full - 1 do
    if mask land 1 = 1 then
      for last = 0 to n - 1 do
        if mask land (1 lsl last) <> 0 && dp.(mask).(last) < infinity then
          for next = 1 to n - 1 do
            if mask land (1 lsl next) = 0 then begin
              let mask' = mask lor (1 lsl next) in
              let cost = dp.(mask).(last) +. t.Tsp.distance.(last).(next) in
              if cost < dp.(mask').(next) then begin
                dp.(mask').(next) <- cost;
                parent.(mask').(next) <- last
              end
            end
          done
      done
  done;
  let all = full - 1 in
  let best_last = ref 1 and best_cost = ref infinity in
  for last = 1 to n - 1 do
    let cost = dp.(all).(last) +. t.Tsp.distance.(last).(0) in
    if cost < !best_cost then begin
      best_cost := cost;
      best_last := last
    end
  done;
  (* Reconstruct. *)
  let tour = Array.make n 0 in
  let rec walk mask last k =
    tour.(k) <- last;
    if k > 0 then begin
      let prev = parent.(mask).(last) in
      walk (mask lxor (1 lsl last)) prev (k - 1)
    end
  in
  walk all !best_last (n - 1);
  (tour, !best_cost)

let branch_and_bound t =
  let n = Tsp.size t in
  (* Lower bound helper: cheapest edge leaving each unvisited city. *)
  let cheapest_out = Array.make n infinity in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then cheapest_out.(i) <- Float.min cheapest_out.(i) t.Tsp.distance.(i).(j)
    done
  done;
  let best_cost = ref infinity and best_tour = ref (Array.init n Fun.id) in
  let tour = Array.make n 0 in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec search depth cost bound_rest =
    if cost +. bound_rest >= !best_cost then ()
    else if depth = n then begin
      let total = cost +. t.Tsp.distance.(tour.(n - 1)).(0) in
      if total < !best_cost then begin
        best_cost := total;
        best_tour := Array.copy tour
      end
    end
    else
      for next = 1 to n - 1 do
        if not visited.(next) then begin
          visited.(next) <- true;
          tour.(depth) <- next;
          let edge = t.Tsp.distance.(tour.(depth - 1)).(next) in
          search (depth + 1) (cost +. edge) (bound_rest -. cheapest_out.(next));
          visited.(next) <- false
        end
      done
  in
  let initial_bound = Array.fold_left ( +. ) 0.0 cheapest_out -. cheapest_out.(0) in
  search 1 0.0 initial_bound;
  (!best_tour, !best_cost)

let solvers =
  [ ("enumerate", enumerate); ("held-karp", held_karp); ("branch-and-bound", branch_and_bound) ]
