(** Heuristic TSP solvers — the "much lesser complexity" methods section 3.3
    notes are used when exact solutions are out of reach (Monte Carlo is the
    method the paper names for large inputs). *)

val nearest_neighbour : ?start:int -> Tsp.t -> int array * float

val two_opt : Tsp.t -> int array -> int array * float
(** Local improvement of an existing tour until no 2-opt move helps. *)

val nearest_neighbour_two_opt : Tsp.t -> int array * float
(** The standard construct-then-improve pipeline. *)

val monte_carlo : ?samples:int -> rng:Qca_util.Rng.t -> Tsp.t -> int array * float
(** Best of random permutations. *)

val approximation_ratio : Tsp.t -> (int array * float) -> float
(** Heuristic cost over exact optimum (Held-Karp; instance must be small
    enough for it). *)
