module Rng = Qca_util.Rng

let nearest_neighbour ?(start = 0) t =
  let n = Tsp.size t in
  let visited = Array.make n false in
  let tour = Array.make n start in
  visited.(start) <- true;
  for k = 1 to n - 1 do
    let from = tour.(k - 1) in
    let best = ref (-1) and best_d = ref infinity in
    for c = 0 to n - 1 do
      if (not visited.(c)) && t.Tsp.distance.(from).(c) < !best_d then begin
        best := c;
        best_d := t.Tsp.distance.(from).(c)
      end
    done;
    tour.(k) <- !best;
    visited.(!best) <- true
  done;
  (tour, Tsp.tour_cost t tour)

let two_opt t tour0 =
  let n = Tsp.size t in
  let tour = Array.copy tour0 in
  let d i j = t.Tsp.distance.(i).(j) in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        (* Reverse segment tour[i+1..j]: replaces edges (i, i+1) and
           (j, j+1) with (i, j) and (i+1, j+1). *)
        let a = tour.(i) and b = tour.((i + 1) mod n) in
        let c = tour.(j) and e = tour.((j + 1) mod n) in
        if a <> c && b <> e then begin
          let delta = d a c +. d b e -. d a b -. d c e in
          if delta < -1e-12 then begin
            let lo = ref (i + 1) and hi = ref j in
            while !lo < !hi do
              let tmp = tour.(!lo) in
              tour.(!lo) <- tour.(!hi);
              tour.(!hi) <- tmp;
              incr lo;
              decr hi
            done;
            improved := true
          end
        end
      done
    done
  done;
  (tour, Tsp.tour_cost t tour)

let nearest_neighbour_two_opt t =
  let tour, _ = nearest_neighbour t in
  two_opt t tour

let monte_carlo ?(samples = 1000) ~rng t =
  let n = Tsp.size t in
  let best_tour = ref (Array.init n Fun.id) in
  let best_cost = ref (Tsp.tour_cost t !best_tour) in
  let candidate = Array.init n Fun.id in
  for _ = 1 to samples do
    Rng.shuffle rng candidate;
    let c = Tsp.tour_cost t candidate in
    if c < !best_cost then begin
      best_cost := c;
      best_tour := Array.copy candidate
    end
  done;
  (!best_tour, !best_cost)

let approximation_ratio t (_, cost) =
  let _, optimal = Exact.held_karp t in
  cost /. optimal
