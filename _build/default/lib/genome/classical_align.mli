(** Classical read-alignment baselines: what the GPU/FPGA/Hadoop pipelines
    of section 2.3 fundamentally do per read — scan the reference. *)

type stats = {
  index : int;  (** Best-match offset. *)
  distance : int;
  comparisons : int;  (** Window comparisons performed (the query-count
                          currency for the Grover speedup comparison). *)
}

val linear_scan : Reference_db.t -> Dna.t -> stats
(** Full scan, tracking the best match. *)

val early_exit_scan : ?max_distance:int -> Reference_db.t -> Dna.t -> stats
(** Stop at the first window within [max_distance] (default 0); falls back
    to the full-scan best when nothing qualifies. *)

val expected_queries_classical : int -> float
(** Average comparisons for unstructured search with a single match:
    (N + 1) / 2. *)
