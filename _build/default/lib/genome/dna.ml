module Rng = Qca_util.Rng

type base = A | C | G | T

let base_of_char = function
  | 'A' | 'a' -> A
  | 'C' | 'c' -> C
  | 'G' | 'g' -> G
  | 'T' | 't' -> T
  | c -> invalid_arg (Printf.sprintf "Dna.base_of_char: '%c'" c)

let char_of_base = function A -> 'A' | C -> 'C' | G -> 'G' | T -> 'T'

let base_to_bits = function A -> 0 | C -> 1 | G -> 2 | T -> 3

let base_of_bits = function
  | 0 -> A
  | 1 -> C
  | 2 -> G
  | 3 -> T
  | b -> invalid_arg (Printf.sprintf "Dna.base_of_bits: %d" b)

type t = base array

let of_string s = Array.init (String.length s) (fun i -> base_of_char s.[i])
let to_string seq = String.init (Array.length seq) (fun i -> char_of_base seq.(i))
let length = Array.length

let all_bases = [| A; C; G; T |]

let random rng n = Array.init n (fun _ -> all_bases.(Rng.int rng 4))

(* Row = current base, column = next base, order A C G T. The profile gives
   ~41% GC and a depleted C->G (CpG) transition, as in mammalian genomes. *)
let transition = function
  | A -> [| 0.33; 0.19; 0.27; 0.21 |]
  | C -> [| 0.31; 0.29; 0.06; 0.34 |]
  | G -> [| 0.27; 0.23; 0.27; 0.23 |]
  | T -> [| 0.22; 0.20; 0.28; 0.30 |]

let markov rng n =
  assert (n >= 1);
  let seq = Array.make n A in
  seq.(0) <- all_bases.(Rng.int rng 4);
  for i = 1 to n - 1 do
    let row = transition seq.(i - 1) in
    seq.(i) <- all_bases.(Rng.choose_weighted rng row)
  done;
  seq

let subsequence seq ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length seq then
    invalid_arg "Dna.subsequence: out of range";
  Array.sub seq pos len

let mutate rng ~rate seq =
  Array.map
    (fun b ->
      if Rng.bernoulli rng rate then begin
        (* substitute with one of the three other bases *)
        let others = Array.of_list (List.filter (fun x -> x <> b) (Array.to_list all_bases)) in
        Rng.pick rng others
      end
      else b)
    seq

let hamming a b =
  if Array.length a <> Array.length b then invalid_arg "Dna.hamming: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let gc_content seq =
  let gc = Array.fold_left (fun acc b -> match b with G | C -> acc + 1 | A | T -> acc) 0 seq in
  float_of_int gc /. float_of_int (max 1 (Array.length seq))

let shannon_entropy ~k seq =
  assert (k >= 1 && k <= 10);
  let n = Array.length seq in
  if n < k then 0.0
  else begin
    let counts = Hashtbl.create 64 in
    for i = 0 to n - k do
      let kmer = to_string (Array.sub seq i k) in
      Hashtbl.replace counts kmer (1 + Option.value ~default:0 (Hashtbl.find_opt counts kmer))
    done;
    let total = float_of_int (n - k + 1) in
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. total in
        acc -. (p *. (log p /. log 2.0)))
      counts 0.0
  end

let encode_bits seq =
  let n = Array.length seq in
  if n > 31 then invalid_arg "Dna.encode_bits: sequence too long";
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    acc := (!acc lsl 2) lor base_to_bits seq.(i)
  done;
  !acc

let decode_bits ~len bits =
  Array.init len (fun i -> base_of_bits ((bits lsr (2 * i)) land 3))
