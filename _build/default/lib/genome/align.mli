(** The quantum read-alignment pipeline of section 3.2 / Figure 7.

    Combines the sliced reference database (quantum associative memory view)
    with Grover amplification: the oracle marks database indices whose entry
    approximately matches the read, and measuring the amplified index
    register returns the alignment position. Read errors are handled by
    widening the Hamming tolerance until the oracle marks something
    ("approximate optimal matching"). *)

type report = {
  position : int;  (** Aligned offset in the reference. *)
  distance : int;  (** Hamming distance at that offset. *)
  tolerance_used : int;  (** Final Hamming tolerance of the oracle. *)
  grover : Grover.outcome;
  classical : Classical_align.stats;  (** Baseline scan on the same input. *)
  speedup_queries : float;
      (** Expected classical comparisons over Grover oracle queries. *)
}

val align :
  ?max_tolerance:int ->
  rng:Qca_util.Rng.t ->
  Reference_db.t ->
  Dna.t ->
  report
(** Align one read. Raises [Invalid_argument] when the read width differs
    from the database width. *)

val align_many :
  ?max_tolerance:int ->
  rng:Qca_util.Rng.t ->
  Reference_db.t ->
  Dna.t list ->
  report list * float
(** Batch alignment; also returns the fraction of reads whose measured
    position is a true best match. *)

val qubit_budget : Reference_db.t -> int
(** Index + content qubits for the associative-memory encoding — the
    resource the paper's ~150-logical-qubit estimate is about. *)

val human_genome_logical_qubit_estimate : unit -> int
(** The paper's own estimate (~150 logical qubits) recomputed from the human
    genome size (3.1 Gbp): index qubits for 2 * 3.1e9 positions + 2 bits per
    base for a 50 bp short read. *)
