(** De novo genome assembly (section 3.2's second reconstruction mode:
    "graph-based combinatorial optimisation").

    Reads are stitched without a reference by finding the order maximising
    suffix-prefix overlaps — a maximum-weight Hamiltonian path on the
    overlap graph, the shortest-common-superstring problem. The path
    problem is encoded as a QUBO (via a zero-cost depot converting it to a
    tour) so the annealing and QAOA backends of section 3.3 apply; a greedy
    merge baseline is included. *)

val overlap : Dna.t -> Dna.t -> int
(** Longest suffix of the first read equal to a prefix of the second. *)

val overlap_matrix : Dna.t array -> int array array
(** [m.(i).(j)] = overlap of read i into read j (diagonal 0). *)

val superstring : Dna.t array -> int array -> Dna.t
(** Merge reads in the given order, collapsing pairwise overlaps. *)

type result = {
  order : int array;  (** Read order used. *)
  assembled : Dna.t;
  total_overlap : int;  (** Sum of consumed overlaps (larger = shorter assembly). *)
}

val greedy : Dna.t array -> result
(** Classical baseline: repeatedly merge the pair with the largest overlap. *)

val exact : Dna.t array -> result
(** Optimal order by Held-Karp on the overlap graph (reads <= ~15). *)

val anneal :
  ?params:Qca_anneal.Sa.params -> rng:Qca_util.Rng.t -> Dna.t array -> result
(** Quantum-accelerator route: encode the path problem as a QUBO
    ((reads+1)^2 binary variables) and solve with simulated annealing;
    invalid assignments are repaired. *)

val qubits_needed : int -> int
(** QUBO variables for [n] reads: (n+1)^2 (depot included). *)

val shotgun : Qca_util.Rng.t -> reference:Dna.t -> read_length:int -> coverage:float -> Dna.t array
(** Sample overlapping reads uniformly from a reference (shotgun
    sequencing); coverage ~ total read bases / reference length. *)
