type stats = { index : int; distance : int; comparisons : int }

let linear_scan db read =
  let best_i = ref 0 and best_d = ref max_int in
  let n = Reference_db.size db in
  for i = 0 to n - 1 do
    let d = Dna.hamming (Reference_db.entry db i) read in
    if d < !best_d then begin
      best_d := d;
      best_i := i
    end
  done;
  { index = !best_i; distance = !best_d; comparisons = n }

let early_exit_scan ?(max_distance = 0) db read =
  let n = Reference_db.size db in
  let rec scan i best_i best_d =
    if i = n then { index = best_i; distance = best_d; comparisons = n }
    else
      let d = Dna.hamming (Reference_db.entry db i) read in
      if d <= max_distance then { index = i; distance = d; comparisons = i + 1 }
      else if d < best_d then scan (i + 1) i d
      else scan (i + 1) best_i best_d
  in
  scan 0 0 max_int

let expected_queries_classical n = float_of_int (n + 1) /. 2.0
