(** Grover's unstructured search (reference 28): the provably optimal
    quantum search primitive behind the alignment accelerator.

    Two implementations are provided:
    - {!search}: the index-register simulation used for realistic database
      sizes — the oracle is a classical predicate applied as a phase flip,
      exactly how QX executes a compiled oracle, without materialising its
      gate decomposition;
    - {!circuit}: a full gate-level construction (X-conjugated
      multi-controlled Z oracle + diffusion) for small registers, executable
      through the compiler and micro-architecture stack. *)

val optimal_iterations : matches:int -> size:int -> int
(** round(pi/4 sqrt(N/M)), at least 1. *)

type outcome = {
  measured : int;  (** Index measured at the end. *)
  success_probability : float;  (** Exact probability mass on marked states. *)
  iterations : int;
  oracle_queries : int;  (** = iterations (one oracle call each). *)
}

val search :
  ?iterations:int ->
  rng:Qca_util.Rng.t ->
  n_qubits:int ->
  oracle:(int -> bool) ->
  unit ->
  outcome
(** Run Grover on [2^n_qubits] indices. [iterations] defaults to the optimal
    count for the oracle's actual match count (counted classically — the
    simulation stand-in for quantum counting). *)

val success_after : n_qubits:int -> oracle:(int -> bool) -> int -> float
(** Exact success probability after k iterations (no measurement). *)

val search_unknown :
  ?max_queries:int ->
  rng:Qca_util.Rng.t ->
  n_qubits:int ->
  oracle:(int -> bool) ->
  unit ->
  outcome option
(** Boyer-Brassard-Hoyer-Tapp exponential search for an {e unknown} number
    of matches: repeatedly run Grover with a uniformly random iteration
    count below a growing bound until a measurement satisfies the oracle.
    Expected O(sqrt(N/M)) total oracle queries; [None] when [max_queries]
    (default 9 sqrt N) is exhausted — the heralded "no match" answer.
    This removes the classical match-count the fixed-iteration interface
    needs, as required for genuinely unknown read alignments. *)

val circuit : n_qubits:int -> pattern:int -> Qca_circuit.Circuit.t
(** Gate-level Grover marking the single basis state [pattern]: uses
    [n_qubits] index qubits plus [max 0 (n_qubits - 3)] ancillas for the
    Toffoli ladders; runs the optimal iteration count. Index register is
    qubits 0..n_qubits-1. *)

val circuit_success_probability : n_qubits:int -> pattern:int -> float
(** Simulate {!circuit} and return the probability of measuring [pattern]
    on the index register. *)
