(** The sliced, indexed reference database of section 3.2: "the reference DNA
    is sliced and stored as indexed entries in a superposed quantum database".

    Classically this is the array of all width-w windows of the reference;
    the quantum view holds index and content entangled in superposition, so
    amplifying a content match amplifies its index. *)

type t = {
  width : int;
  entries : Dna.t array;  (** [entries.(i)] = reference window at offset i. *)
}

val build : Dna.t -> width:int -> t
(** All overlapping windows (stride 1). *)

val size : t -> int

val index_qubits : t -> int
(** Qubits needed for the index register: ceil(log2 size). *)

val entry : t -> int -> Dna.t

val matches_within : t -> Dna.t -> int -> int list
(** Indices whose entry is within the given Hamming distance of the read. *)

val best_match : t -> Dna.t -> int * int
(** (index, distance) of the closest entry (smallest index on ties). *)

val content_qubits : t -> int
(** Qubits to store one entry at 2 bits per base — the paper's exponential
    capacity argument counts [index_qubits + content_qubits]. *)
