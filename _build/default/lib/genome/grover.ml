module State = Qca_qx.State
module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Sim = Qca_qx.Sim
module Rng = Qca_util.Rng

let optimal_iterations ~matches ~size =
  assert (matches >= 1 && matches <= size);
  let angle = asin (sqrt (float_of_int matches /. float_of_int size)) in
  max 1 (int_of_float (Float.round ((Float.pi /. (4.0 *. angle)) -. 0.5)))

type outcome = {
  measured : int;
  success_probability : float;
  iterations : int;
  oracle_queries : int;
}

let hadamard_wall state n =
  for q = 0 to n - 1 do
    State.apply state Gate.H [| q |]
  done

let grover_iteration state n oracle =
  (* Oracle: phase flip on marked indices. *)
  State.apply_diagonal_phase state (fun k -> if oracle k then Float.pi else 0.0);
  (* Diffusion: H^n, flip |0>, H^n. *)
  hadamard_wall state n;
  State.apply_diagonal_phase state (fun k -> if k = 0 then Float.pi else 0.0);
  hadamard_wall state n

let marked_mass state oracle =
  let dim = State.dimension state in
  let acc = ref 0.0 in
  for k = 0 to dim - 1 do
    if oracle k then acc := !acc +. State.probability_of state k
  done;
  !acc

let count_matches n_qubits oracle =
  let count = ref 0 in
  for k = 0 to (1 lsl n_qubits) - 1 do
    if oracle k then incr count
  done;
  !count

let search ?iterations ~rng ~n_qubits ~oracle () =
  let size = 1 lsl n_qubits in
  let iterations =
    match iterations with
    | Some k -> k
    | None ->
        let matches = count_matches n_qubits oracle in
        if matches = 0 then invalid_arg "Grover.search: oracle marks nothing"
        else optimal_iterations ~matches ~size
  in
  let state = State.create n_qubits in
  hadamard_wall state n_qubits;
  for _ = 1 to iterations do
    grover_iteration state n_qubits oracle
  done;
  let success_probability = marked_mass state oracle in
  let measured = State.sample_index state rng in
  { measured; success_probability; iterations; oracle_queries = iterations }

let success_after ~n_qubits ~oracle k =
  let state = State.create n_qubits in
  hadamard_wall state n_qubits;
  for _ = 1 to k do
    grover_iteration state n_qubits oracle
  done;
  marked_mass state oracle

let search_unknown ?max_queries ~rng ~n_qubits ~oracle () =
  let size = 1 lsl n_qubits in
  let sqrt_n = sqrt (float_of_int size) in
  let max_queries =
    match max_queries with Some q -> q | None -> int_of_float (9.0 *. sqrt_n) + 3
  in
  let lambda = 6.0 /. 5.0 in
  let rec round m spent total_iterations =
    if spent >= max_queries then None
    else begin
      let j = Rng.int rng (max 1 (int_of_float m)) in
      let state = State.create n_qubits in
      hadamard_wall state n_qubits;
      for _ = 1 to j do
        grover_iteration state n_qubits oracle
      done;
      let measured = State.sample_index state rng in
      if oracle measured then
        Some
          {
            measured;
            success_probability = marked_mass state oracle;
            iterations = total_iterations + j;
            oracle_queries = spent + j + 1;
          }
      else round (Float.min (lambda *. m) sqrt_n) (spent + j + 1) (total_iterations + j)
    end
  in
  round 1.0 0 0

let circuit ~n_qubits ~pattern =
  assert (n_qubits >= 2);
  assert (pattern >= 0 && pattern < 1 lsl n_qubits);
  let ancilla_count = max 0 (n_qubits - 3) in
  let total = n_qubits + ancilla_count in
  let index_qubits = List.init n_qubits Fun.id in
  let ancillas = List.init ancilla_count (fun i -> n_qubits + i) in
  let bits = Array.init n_qubits (fun q -> pattern land (1 lsl q) <> 0) in
  let walls =
    Circuit.of_list ~name:"grover" total
      (List.map (fun q -> Gate.Unitary (Gate.H, [| q |])) index_qubits)
  in
  let oracle = Library.phase_flip_on ~pattern:bits ~qubits:index_qubits ~ancillas total in
  let diffusion = Library.grover_diffusion ~qubits:index_qubits ~ancillas total in
  let iteration = Circuit.append oracle diffusion in
  let k = optimal_iterations ~matches:1 ~size:(1 lsl n_qubits) in
  Circuit.append walls (Circuit.repeat k iteration)

let circuit_success_probability ~n_qubits ~pattern =
  let c = circuit ~n_qubits ~pattern in
  let result = Sim.run c in
  (* Marginal probability that the index register reads [pattern]. *)
  let mask = (1 lsl n_qubits) - 1 in
  let acc = ref 0.0 in
  for k = 0 to State.dimension result.Sim.state - 1 do
    if k land mask = pattern then acc := !acc +. State.probability_of result.Sim.state k
  done;
  !acc
