(** DNA sequences and synthetic genome generation.

    Section 3.2 tests the genome accelerator on "artificial DNA sequences
    that preserve the statistical and entropic complexity of the base pairs
    in biological genomes"; {!markov} generates exactly that, with an
    order-1 transition profile exhibiting the classic CpG depletion. *)

type base = A | C | G | T

val base_of_char : char -> base
val char_of_base : base -> char
val base_to_bits : base -> int
(** 2-bit encoding: A=00, C=01, G=10, T=11. *)

val base_of_bits : int -> base

type t = base array

val of_string : string -> t
val to_string : t -> string
val length : t -> int

val random : Qca_util.Rng.t -> int -> t
(** Uniform iid bases. *)

val markov : Qca_util.Rng.t -> int -> t
(** Order-1 Markov chain with a biologically-flavoured transition matrix
    (GC content ~41%, CpG dinucleotide depletion). *)

val subsequence : t -> pos:int -> len:int -> t

val mutate : Qca_util.Rng.t -> rate:float -> t -> t
(** Point substitutions at the given per-base rate — sequencing read
    errors ("inherent read errors in the sequence", section 3.2). *)

val hamming : t -> t -> int
(** Distance between equal-length sequences. *)

val gc_content : t -> float

val shannon_entropy : k:int -> t -> float
(** Entropy (bits) of the k-mer distribution; used to verify the synthetic
    genome preserves entropic complexity. *)

val encode_bits : t -> int
(** Pack a short sequence (<= 31 bases) into an int, 2 bits per base,
    base 0 in the least-significant bits. *)

val decode_bits : len:int -> int -> t
