module Rng = Qca_util.Rng

type report = {
  position : int;
  distance : int;
  tolerance_used : int;
  grover : Grover.outcome;
  classical : Classical_align.stats;
  speedup_queries : float;
}

let align ?(max_tolerance = 4) ~rng db read =
  if Dna.length read <> db.Reference_db.width then
    invalid_arg "Align.align: read width differs from database width";
  let n_qubits = Reference_db.index_qubits db in
  let db_size = Reference_db.size db in
  (* Widen the tolerance until the oracle marks at least one entry. *)
  let rec find_tolerance t =
    if t > max_tolerance then None
    else if Reference_db.matches_within db read t <> [] then Some t
    else find_tolerance (t + 1)
  in
  let tolerance =
    match find_tolerance 0 with
    | Some t -> t
    | None -> max_tolerance
  in
  let oracle k = k < db_size && Dna.hamming (Reference_db.entry db k) read <= tolerance in
  let matches = Reference_db.matches_within db read tolerance in
  let grover =
    if matches = [] then
      (* Nothing within tolerance: a single undriven iteration, measured at
         random — the pipeline reports the classical fallback position. *)
      Grover.search ~iterations:1 ~rng ~n_qubits ~oracle:(fun k -> k = 0) ()
    else Grover.search ~rng ~n_qubits ~oracle ()
  in
  let classical = Classical_align.linear_scan db read in
  let position = if matches = [] then classical.Classical_align.index else grover.Grover.measured in
  let distance =
    if position < db_size then Dna.hamming (Reference_db.entry db position) read else max_int
  in
  {
    position;
    distance;
    tolerance_used = tolerance;
    grover;
    classical;
    speedup_queries =
      Classical_align.expected_queries_classical db_size
      /. float_of_int (max 1 grover.Grover.oracle_queries);
  }

let align_many ?max_tolerance ~rng db reads =
  let reports = List.map (fun read -> align ?max_tolerance ~rng db read) reads in
  (* A report is correct when its measured position matches the read at
     least as well as the classical scan's best offset. *)
  let correct =
    List.fold_left
      (fun acc r -> if r.distance <= r.classical.Classical_align.distance then acc + 1 else acc)
      0 reports
  in
  (reports, float_of_int correct /. float_of_int (max 1 (List.length reports)))

let qubit_budget db = Reference_db.index_qubits db + Reference_db.content_qubits db

let human_genome_logical_qubit_estimate () =
  let positions = 2.0 *. 3.1e9 in
  let index_qubits = int_of_float (Float.ceil (Float.log positions /. Float.log 2.0)) in
  let read_length = 50 in
  index_qubits + (2 * read_length)
