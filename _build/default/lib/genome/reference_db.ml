type t = { width : int; entries : Dna.t array }

let build reference ~width =
  let n = Dna.length reference in
  if width < 1 || width > n then invalid_arg "Reference_db.build: bad width";
  let count = n - width + 1 in
  { width; entries = Array.init count (fun i -> Dna.subsequence reference ~pos:i ~len:width) }

let size db = Array.length db.entries

let index_qubits db =
  let n = size db in
  let rec bits k acc = if 1 lsl acc >= k then acc else bits k (acc + 1) in
  max 1 (bits n 0)

let entry db i = db.entries.(i)

let matches_within db read distance =
  let acc = ref [] in
  for i = size db - 1 downto 0 do
    if Dna.hamming db.entries.(i) read <= distance then acc := i :: !acc
  done;
  !acc

let best_match db read =
  let best_i = ref 0 and best_d = ref max_int in
  Array.iteri
    (fun i e ->
      let d = Dna.hamming e read in
      if d < !best_d then begin
        best_d := d;
        best_i := i
      end)
    db.entries;
  (!best_i, !best_d)

let content_qubits db = 2 * db.width
