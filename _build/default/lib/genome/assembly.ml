module Rng = Qca_util.Rng

let overlap a b =
  let la = Dna.length a and lb = Dna.length b in
  let max_k = min la lb in
  (* longest k such that a's suffix of length k equals b's prefix *)
  let matches k =
    let rec go i = i = k || (a.(la - k + i) = b.(i) && go (i + 1)) in
    go 0
  in
  let rec search k = if k = 0 then 0 else if matches k then k else search (k - 1) in
  search max_k

let overlap_matrix reads =
  let n = Array.length reads in
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then 0 else overlap reads.(i) reads.(j)))

let superstring reads order =
  let n = Array.length order in
  assert (n > 0);
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Dna.to_string reads.(order.(0)));
  for k = 1 to n - 1 do
    let prev = reads.(order.(k - 1)) and next = reads.(order.(k)) in
    let o = overlap prev next in
    let s = Dna.to_string next in
    Buffer.add_string buffer (String.sub s o (String.length s - o))
  done;
  Dna.of_string (Buffer.contents buffer)

type result = { order : int array; assembled : Dna.t; total_overlap : int }

let path_overlap m order =
  let acc = ref 0 in
  for k = 1 to Array.length order - 1 do
    acc := !acc + m.(order.(k - 1)).(order.(k))
  done;
  !acc

let result_of_order reads m order =
  { order; assembled = superstring reads order; total_overlap = path_overlap m order }

let greedy reads =
  let n = Array.length reads in
  if n = 0 then invalid_arg "Assembly.greedy: no reads";
  let m = overlap_matrix reads in
  (* chains: each read starts as its own chain; repeatedly join the pair of
     chain-ends with the biggest overlap. *)
  let next = Array.make n (-1) and prev = Array.make n (-1) in
  let chain_of = Array.init n Fun.id in
  (* chain_of.(i) = representative (head) of i's chain *)
  let rec head i = if chain_of.(i) = i then i else head chain_of.(i) in
  let joined = ref 0 in
  while !joined < n - 1 do
    (* best (tail i, head j) with distinct chains *)
    let best = ref None in
    for i = 0 to n - 1 do
      if next.(i) = -1 then
        for j = 0 to n - 1 do
          if prev.(j) = -1 && i <> j && head i <> head j then begin
            match !best with
            | Some (_, _, o) when o >= m.(i).(j) -> ()
            | Some _ | None -> best := Some (i, j, m.(i).(j))
          end
        done
    done;
    match !best with
    | None -> joined := n - 1 (* disconnected; stop *)
    | Some (i, j, _) ->
        next.(i) <- j;
        prev.(j) <- i;
        chain_of.(head j) <- head i;
        incr joined
  done;
  (* collect the chain(s) head-first; concatenate leftover chains in order *)
  let order = ref [] in
  for start = n - 1 downto 0 do
    if prev.(start) = -1 then begin
      let rec walk i acc = if i = -1 then acc else walk next.(i) (i :: acc) in
      order := List.rev (walk start []) @ !order
    end
  done;
  result_of_order reads m (Array.of_list !order)

(* Held-Karp for max-overlap Hamiltonian path. *)
let exact reads =
  let n = Array.length reads in
  if n = 0 then invalid_arg "Assembly.exact: no reads";
  if n > 15 then invalid_arg "Assembly.exact: too many reads";
  let m = overlap_matrix reads in
  let full = 1 lsl n in
  let dp = Array.make_matrix full n min_int in
  let parent = Array.make_matrix full n (-1) in
  for s = 0 to n - 1 do
    dp.(1 lsl s).(s) <- 0
  done;
  for mask = 1 to full - 1 do
    for last = 0 to n - 1 do
      if mask land (1 lsl last) <> 0 && dp.(mask).(last) > min_int then
        for nxt = 0 to n - 1 do
          if mask land (1 lsl nxt) = 0 then begin
            let mask' = mask lor (1 lsl nxt) in
            let value = dp.(mask).(last) + m.(last).(nxt) in
            if value > dp.(mask').(nxt) then begin
              dp.(mask').(nxt) <- value;
              parent.(mask').(nxt) <- last
            end
          end
        done
    done
  done;
  let all = full - 1 in
  let best_last = ref 0 in
  for last = 1 to n - 1 do
    if dp.(all).(last) > dp.(all).(!best_last) then best_last := last
  done;
  let order = Array.make n 0 in
  let rec walk mask last k =
    order.(k) <- last;
    if k > 0 then walk (mask lxor (1 lsl last)) parent.(mask).(last) (k - 1)
  in
  walk all !best_last (n - 1);
  result_of_order reads m order

let qubits_needed n = (n + 1) * (n + 1)

(* Encode max-overlap Hamiltonian path as a TSP over reads plus a zero-cost
   depot: cost(i, j) = max_overlap - overlap(i, j) makes short superstrings
   cheap tours; depot edges cost 0 so the cycle constraint does not distort
   the path. *)
let anneal ?params ~rng reads =
  let n = Array.length reads in
  if n < 2 then invalid_arg "Assembly.anneal: need at least two reads";
  let m = overlap_matrix reads in
  let max_o =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 1 m
  in
  let cities = Array.init (n + 1) (fun i -> if i = n then "depot" else Printf.sprintf "r%d" i) in
  let distance =
    Array.init (n + 1) (fun i ->
        Array.init (n + 1) (fun j ->
            if i = j then 0.0
            else if i = n || j = n then 0.0
            else
              (* symmetrise: our Tsp type is symmetric, so use the better of
                 the two directions (the decoder re-orients greedily) *)
              float_of_int (max_o - max m.(i).(j) m.(j).(i))))
  in
  let tsp = Qca_tsp.Tsp.make ~name:"assembly" ~cities ~distance in
  let q = Qca_tsp.Encode.to_qubo tsp in
  let bits, _ = Qca_anneal.Sa.minimize_qubo ?params ~rng q in
  let tour = Qca_tsp.Encode.decode_with_repair tsp bits in
  (* cut the cycle at the depot to recover the path *)
  let depot_pos =
    let rec find i = if tour.(i) = n then i else find (i + 1) in
    find 0
  in
  let path = Array.init n (fun k -> tour.((depot_pos + 1 + k) mod (n + 1))) in
  (* orient the path by total overlap *)
  let reversed = Array.init n (fun k -> path.(n - 1 - k)) in
  let choose = if path_overlap m path >= path_overlap m reversed then path else reversed in
  result_of_order reads m choose

let shotgun rng ~reference ~read_length ~coverage =
  let ref_len = Dna.length reference in
  if read_length > ref_len then invalid_arg "Assembly.shotgun: reads longer than reference";
  let count =
    max 2 (int_of_float (Float.round (coverage *. float_of_int ref_len /. float_of_int read_length)))
  in
  Array.init count (fun _ ->
      let pos = Rng.int rng (ref_len - read_length + 1) in
      Dna.subsequence reference ~pos ~len:read_length)
