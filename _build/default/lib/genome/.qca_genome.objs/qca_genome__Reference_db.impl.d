lib/genome/reference_db.ml: Array Dna
