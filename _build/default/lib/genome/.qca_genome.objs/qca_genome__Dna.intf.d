lib/genome/dna.mli: Qca_util
