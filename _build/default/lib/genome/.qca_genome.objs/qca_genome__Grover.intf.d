lib/genome/grover.mli: Qca_circuit Qca_util
