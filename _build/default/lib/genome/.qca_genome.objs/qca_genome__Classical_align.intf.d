lib/genome/classical_align.mli: Dna Reference_db
