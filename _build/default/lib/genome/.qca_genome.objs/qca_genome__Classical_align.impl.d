lib/genome/classical_align.ml: Dna Reference_db
