lib/genome/align.mli: Classical_align Dna Grover Qca_util Reference_db
