lib/genome/assembly.ml: Array Buffer Dna Float Fun List Printf Qca_anneal Qca_tsp Qca_util String
