lib/genome/align.ml: Classical_align Dna Float Grover List Qca_util Reference_db
