lib/genome/grover.ml: Array Float Fun List Qca_circuit Qca_qx Qca_util
