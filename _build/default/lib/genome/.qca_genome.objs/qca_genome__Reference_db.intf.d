lib/genome/reference_db.mli: Dna
