lib/genome/dna.ml: Array Hashtbl List Option Printf Qca_util String
