lib/genome/assembly.mli: Dna Qca_anneal Qca_util
