(** Gate algebra: the unitary set shared by OpenQL, cQASM and the QX
    simulator, with exact matrices and adjoints. *)

type unitary =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdag
  | T
  | Tdag
  | X90  (** +90 degree X rotation: the RB/eQASM primitive. *)
  | Xm90
  | Y90
  | Ym90
  | Rx of float
  | Ry of float
  | Rz of float
  | Cnot
  | Cz
  | Swap
  | Cphase of float  (** Controlled phase by an arbitrary angle. *)
  | Crk of int  (** Controlled phase by [2 pi / 2^k]: the QFT primitive. *)
  | Toffoli

type t =
  | Unitary of unitary * int array
      (** A unitary applied to operand qubits; the operand count must equal
          [arity]. For controlled gates, controls come first. *)
  | Conditional of int * unitary * int array
      (** [Conditional (bit, u, ops)]: apply [u] only when classical bit
          [bit] (the latest measurement of that qubit index) is 1 — cQASM's
          binary-controlled gates ([c-x b[0], q[1]]), the fast-feedback
          primitive of the paper's hybrid quantum-classical loop (§3.3). *)
  | Prep of int  (** Initialise a qubit to |0> (cQASM [prep_z]). *)
  | Measure of int  (** Z-basis measurement into the classical bit of the same index. *)
  | Barrier of int array  (** Scheduling barrier across the listed qubits. *)

val arity : unitary -> int
(** Number of qubit operands. *)

val matrix : unitary -> Qca_util.Matrix.t
(** Unitary matrix of dimension [2^arity], operands ordered
    most-significant-first (control qubits in the high bits). *)

val adjoint : unitary -> unitary
(** Inverse unitary (as a named gate). *)

val is_diagonal : unitary -> bool
(** True when the matrix is diagonal in the computational basis (these
    commute through control structure and are cheap for the simulator). *)

val is_two_qubit : unitary -> bool
val is_clifford : unitary -> bool
(** True for generators of the Clifford group (used by RB and QEC). *)

val name : unitary -> string
(** Lower-case cQASM mnemonic, without angle arguments. *)

val qubits : t -> int array
(** Operand qubits of an instruction (copy). *)

val map_qubits : (int -> int) -> t -> t
(** Rewrite operand qubits (used by mapping/routing). *)

val equal : t -> t -> bool
(** Structural equality with floating-point angle tolerance 1e-12. *)

val to_string : t -> string
(** cQASM-style rendering, e.g. ["cnot q[0], q[1]"]. *)
