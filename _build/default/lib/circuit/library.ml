module Rng = Qca_util.Rng

let bell () =
  Circuit.of_list ~name:"bell" 2
    [ Gate.Unitary (Gate.H, [| 0 |]); Gate.Unitary (Gate.Cnot, [| 0; 1 |]) ]

let ghz n =
  assert (n >= 2);
  let c = Circuit.add (Circuit.create ~name:"ghz" n) (Gate.Unitary (Gate.H, [| 0 |])) in
  let rec chain c q =
    if q = n then c else chain (Circuit.add c (Gate.Unitary (Gate.Cnot, [| q - 1; q |]))) (q + 1)
  in
  chain c 1

(* Little-endian QFT: |x> -> sum_y exp(2 pi i x y / 2^n) |y> / sqrt(2^n).
   Qubit n-1 is processed first; final swaps reverse qubit order. *)
let qft n =
  assert (n >= 1);
  let c = ref (Circuit.create ~name:"qft" n) in
  for q = n - 1 downto 0 do
    c := Circuit.add !c (Gate.Unitary (Gate.H, [| q |]));
    for j = q - 1 downto 0 do
      let k = q - j + 1 in
      c := Circuit.add !c (Gate.Unitary (Gate.Crk k, [| j; q |]))
    done
  done;
  for q = 0 to (n / 2) - 1 do
    c := Circuit.add !c (Gate.Unitary (Gate.Swap, [| q; n - 1 - q |]))
  done;
  !c

let qft_inverse n = Circuit.inverse (qft n)

let multi_controlled_x ~controls ~ancillas ~target n =
  let k = List.length controls in
  let c = Circuit.create ~name:"mcx" n in
  match controls with
  | [] -> Circuit.add c (Gate.Unitary (Gate.X, [| target |]))
  | [ ctl ] -> Circuit.add c (Gate.Unitary (Gate.Cnot, [| ctl; target |]))
  | [ c1; c2 ] -> Circuit.add c (Gate.Unitary (Gate.Toffoli, [| c1; c2; target |]))
  | c1 :: c2 :: rest ->
      if List.length ancillas < k - 2 then
        invalid_arg "Library.multi_controlled_x: not enough ancillas";
      let ancillas = Array.of_list ancillas in
      (* Compute ladder: a.(i) accumulates the AND of the first i+2 controls. *)
      let forward = ref [ Gate.Unitary (Gate.Toffoli, [| c1; c2; ancillas.(0) |]) ] in
      List.iteri
        (fun i ctl ->
          if i < List.length rest - 1 then
            forward :=
              Gate.Unitary (Gate.Toffoli, [| ctl; ancillas.(i); ancillas.(i + 1) |])
              :: !forward)
        rest;
      let last_control = List.nth rest (List.length rest - 1) in
      let compute = List.rev !forward in
      let apex =
        Gate.Unitary (Gate.Toffoli, [| last_control; ancillas.(k - 3); target |])
      in
      let uncompute = !forward in
      Circuit.of_list ~name:"mcx" n (compute @ [ apex ] @ uncompute)

let multi_controlled_z ~controls ~ancillas ~target n =
  let h = Circuit.of_list n [ Gate.Unitary (Gate.H, [| target |]) ] in
  Circuit.append (Circuit.append h (multi_controlled_x ~controls ~ancillas ~target n)) h

let phase_flip_on ~pattern ~qubits ~ancillas n =
  assert (Array.length pattern = List.length qubits);
  let flips =
    List.filteri (fun i _ -> not pattern.(i)) qubits
    |> List.map (fun q -> Gate.Unitary (Gate.X, [| q |]))
  in
  let conjugate = Circuit.of_list ~name:"oracle" n flips in
  match List.rev qubits with
  | [] -> invalid_arg "Library.phase_flip_on: empty register"
  | target :: rev_controls ->
      let controls = List.rev rev_controls in
      let mcz = multi_controlled_z ~controls ~ancillas ~target n in
      Circuit.append (Circuit.append conjugate mcz) conjugate

let grover_diffusion ~qubits ~ancillas n =
  let hs = List.map (fun q -> Gate.Unitary (Gate.H, [| q |])) qubits in
  let walls = Circuit.of_list ~name:"diffusion" n hs in
  let zero_flip =
    phase_flip_on ~pattern:(Array.make (List.length qubits) false) ~qubits ~ancillas n
  in
  Circuit.append (Circuit.append walls zero_flip) walls

(* Cuccaro ripple-carry adder using MAJ / UMA three-gate blocks. *)
let cuccaro_adder k =
  assert (k >= 1);
  let n = (2 * k) + 2 in
  let a i = i and b i = k + i in
  let carry_in = 2 * k and carry_out = (2 * k) + 1 in
  let maj x y z =
    [
      Gate.Unitary (Gate.Cnot, [| z; y |]);
      Gate.Unitary (Gate.Cnot, [| z; x |]);
      Gate.Unitary (Gate.Toffoli, [| x; y; z |]);
    ]
  in
  let uma x y z =
    [
      Gate.Unitary (Gate.Toffoli, [| x; y; z |]);
      Gate.Unitary (Gate.Cnot, [| z; x |]);
      Gate.Unitary (Gate.Cnot, [| x; y |]);
    ]
  in
  let rec majs i acc =
    if i = k then acc
    else
      let prev = if i = 0 then carry_in else a (i - 1) in
      majs (i + 1) (acc @ maj prev (b i) (a i))
  in
  let rec umas i acc =
    if i < 0 then acc
    else
      let prev = if i = 0 then carry_in else a (i - 1) in
      umas (i - 1) (acc @ uma prev (b i) (a i))
  in
  let middle = [ Gate.Unitary (Gate.Cnot, [| a (k - 1); carry_out |]) ] in
  Circuit.of_list ~name:"cuccaro_adder" n (majs 0 [] @ middle @ umas (k - 1) [])

(* Oracle for f(x) = parity(x land mask) as CNOTs into the ancilla. *)
let parity_oracle n mask ancilla =
  List.filter_map
    (fun q -> if mask land (1 lsl q) <> 0 then Some (Gate.Unitary (Gate.Cnot, [| q; ancilla |])) else None)
    (List.init n Fun.id)

let bernstein_vazirani ~secret n =
  assert (n >= 1 && secret >= 0 && secret < 1 lsl n);
  let ancilla = n in
  let walls = List.init n (fun q -> Gate.Unitary (Gate.H, [| q |])) in
  let instrs =
    (* ancilla in |-> *)
    [ Gate.Unitary (Gate.X, [| ancilla |]); Gate.Unitary (Gate.H, [| ancilla |]) ]
    @ walls
    @ parity_oracle n secret ancilla
    @ walls
    @ List.init n (fun q -> Gate.Measure q)
  in
  Circuit.of_list ~name:"bernstein-vazirani" (n + 1) instrs

let deutsch_jozsa ~balanced n =
  assert (n >= 1);
  let ancilla = n in
  let oracle =
    match balanced with
    | Some mask ->
        if mask = 0 || mask >= 1 lsl n then
          invalid_arg "Library.deutsch_jozsa: balanced mask must be nonzero and in range";
        parity_oracle n mask ancilla
    | None -> [] (* constant f = 0: the oracle does nothing *)
  in
  let walls = List.init n (fun q -> Gate.Unitary (Gate.H, [| q |])) in
  let instrs =
    [ Gate.Unitary (Gate.X, [| ancilla |]); Gate.Unitary (Gate.H, [| ancilla |]) ]
    @ walls @ oracle @ walls
    @ List.init n (fun q -> Gate.Measure q)
  in
  Circuit.of_list ~name:"deutsch-jozsa" (n + 1) instrs

let teleport ?(prepare = Gate.Ry 1.047) () =
  Circuit.of_list ~name:"teleport" 3
    [
      (* payload on q0 *)
      Gate.Unitary (prepare, [| 0 |]);
      (* Bell pair between q1 (Alice) and q2 (Bob) *)
      Gate.Unitary (Gate.H, [| 1 |]);
      Gate.Unitary (Gate.Cnot, [| 1; 2 |]);
      (* Bell measurement on q0, q1 *)
      Gate.Unitary (Gate.Cnot, [| 0; 1 |]);
      Gate.Unitary (Gate.H, [| 0 |]);
      Gate.Measure 0;
      Gate.Measure 1;
      (* classically controlled corrections on Bob's qubit *)
      Gate.Conditional (1, Gate.X, [| 2 |]);
      Gate.Conditional (0, Gate.Z, [| 2 |]);
    ]

let random_circuit rng ~qubits ~gates =
  assert (qubits >= 2);
  let singles = [| Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.T |] in
  let rec build c remaining =
    if remaining = 0 then c
    else if Rng.bernoulli rng 0.4 then begin
      let q1 = Rng.int rng qubits in
      let q2 = (q1 + 1 + Rng.int rng (qubits - 1)) mod qubits in
      let u = if Rng.bool rng then Gate.Cnot else Gate.Cz in
      build (Circuit.add c (Gate.Unitary (u, [| q1; q2 |]))) (remaining - 1)
    end
    else begin
      let u = Rng.pick rng singles in
      let q = Rng.int rng qubits in
      build (Circuit.add c (Gate.Unitary (u, [| q |]))) (remaining - 1)
    end
  in
  build (Circuit.create ~name:"random" qubits) gates
