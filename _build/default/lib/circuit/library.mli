(** Standard circuit constructions used by examples, tests and benchmarks. *)

val bell : unit -> Circuit.t
(** Two-qubit Bell pair preparation (H; CNOT). *)

val ghz : int -> Circuit.t
(** [ghz n] prepares the n-qubit GHZ state. *)

val qft : int -> Circuit.t
(** Quantum Fourier transform on [n] qubits (with final swaps), little-endian
    convention matching {!Circuit.unitary_matrix}. *)

val qft_inverse : int -> Circuit.t

val multi_controlled_x :
  controls:int list -> ancillas:int list -> target:int -> int -> Circuit.t
(** [multi_controlled_x ~controls ~ancillas ~target n] is a C^k X on an
    [n]-qubit register using a Toffoli ladder. Needs
    [max 0 (k - 2)] clean ancillas (returned to |0>). *)

val multi_controlled_z :
  controls:int list -> ancillas:int list -> target:int -> int -> Circuit.t
(** As {!multi_controlled_x} conjugated by H on the target. *)

val phase_flip_on :
  pattern:bool array -> qubits:int list -> ancillas:int list -> int -> Circuit.t
(** Oracle that flips the phase of exactly the computational-basis state
    whose bits on [qubits] equal [pattern] (X-conjugated multi-controlled Z).
    [pattern.(i)] corresponds to [List.nth qubits i]. *)

val grover_diffusion : qubits:int list -> ancillas:int list -> int -> Circuit.t
(** Inversion-about-the-mean operator on the listed register. *)

val cuccaro_adder : int -> Circuit.t
(** [cuccaro_adder k] is the ripple-carry adder on registers a (qubits
    [0..k-1]), b ([k..2k-1]), carry-in ancilla [2k] and carry-out [2k+1]; the
    sum replaces register b. Total [2k + 2] qubits. *)

val bernstein_vazirani : secret:int -> int -> Circuit.t
(** [bernstein_vazirani ~secret n]: recover an n-bit hidden string in one
    oracle query. Qubits 0..n-1 are the input register (measured at the
    end), qubit n is the phase ancilla; the measured bits equal [secret]. *)

val deutsch_jozsa : balanced:int option -> int -> Circuit.t
(** [deutsch_jozsa ~balanced n]: decide constant vs balanced in one query.
    [balanced = Some mask] uses the balanced function f(x) = parity(x land
    mask) (mask must be nonzero); [None] uses a constant function. All-zero
    measurement of the input register means constant. Uses n + 1 qubits. *)

val teleport : ?prepare:Gate.unitary -> unit -> Circuit.t
(** Quantum teleportation on 3 qubits: [prepare] (default Ry 1.047) sets the
    payload on qubit 0, which is teleported to qubit 2 using mid-circuit
    measurement and binary-controlled X/Z corrections — the canonical
    exercise of the stack's classical fast-feedback path. *)

val random_circuit : Qca_util.Rng.t -> qubits:int -> gates:int -> Circuit.t
(** Random circuit of single- and two-qubit gates (used by mapping and
    scheduling benchmarks). *)
