(** Quantum circuit intermediate representation.

    A circuit is an ordered instruction list over [qubit_count] qubits. It is
    the exchange format between the OpenQL-style compiler passes, the cQASM
    printer/parser, the micro-architecture and the QX simulator. *)

type t

val create : ?name:string -> int -> t
(** [create n] is the empty circuit on [n] qubits. *)

val of_list : ?name:string -> int -> Gate.t list -> t
(** Validates every instruction (see {!validate_instruction}). *)

val name : t -> string
val qubit_count : t -> int
val instructions : t -> Gate.t list
val length : t -> int

val add : t -> Gate.t -> t
(** Append one instruction, validating operands. *)

val append : t -> t -> t
(** Concatenate; qubit counts must agree. *)

val repeat : int -> t -> t
(** [repeat k c] concatenates [k] copies of [c]. *)

val map_qubits : (int -> int) -> t -> t
(** Rewrite all operand qubits (the function must stay within range). *)

val inverse : t -> t
(** Reverse with adjoint gates. Raises [Invalid_argument] if the circuit
    contains non-unitary instructions. *)

val gate_count : t -> int
(** Unitary instructions only. *)

val two_qubit_gate_count : t -> int

val depth : t -> int
(** Circuit depth counting each instruction as one cycle, with barriers
    synchronising their operand set. *)

val qubits_used : t -> int list
(** Sorted list of qubits touched by at least one instruction. *)

val validate_instruction : int -> Gate.t -> unit
(** Raises [Invalid_argument] when operands are out of range, duplicated, or
    of the wrong count for the unitary's arity. *)

val unitary_matrix : t -> Qca_util.Matrix.t
(** Full [2^n] unitary of a measurement-free circuit (little-endian basis:
    qubit 0 is the least-significant bit). Only sensible for small [n];
    raises [Invalid_argument] beyond 10 qubits or on non-unitary content. *)

val equal : t -> t -> bool
val to_string : t -> string
