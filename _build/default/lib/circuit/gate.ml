module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx

type unitary =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdag
  | T
  | Tdag
  | X90
  | Xm90
  | Y90
  | Ym90
  | Rx of float
  | Ry of float
  | Rz of float
  | Cnot
  | Cz
  | Swap
  | Cphase of float
  | Crk of int
  | Toffoli

type t =
  | Unitary of unitary * int array
  | Conditional of int * unitary * int array
  | Prep of int
  | Measure of int
  | Barrier of int array

let arity = function
  | I | X | Y | Z | H | S | Sdag | T | Tdag | X90 | Xm90 | Y90 | Ym90 | Rx _ | Ry _
  | Rz _ ->
      1
  | Cnot | Cz | Swap | Cphase _ | Crk _ -> 2
  | Toffoli -> 3

let c re im = Cplx.make re im
let inv_sqrt2 = 1.0 /. sqrt 2.0

let rotation_x theta =
  let h = theta /. 2.0 in
  Matrix.of_arrays
    [| [| c (cos h) 0.0; c 0.0 (-.sin h) |]; [| c 0.0 (-.sin h); c (cos h) 0.0 |] |]

let rotation_y theta =
  let h = theta /. 2.0 in
  Matrix.of_arrays
    [| [| c (cos h) 0.0; c (-.sin h) 0.0 |]; [| c (sin h) 0.0; c (cos h) 0.0 |] |]

let rotation_z theta =
  let h = theta /. 2.0 in
  Matrix.of_arrays
    [| [| Cplx.cis (-.h); Cplx.zero |]; [| Cplx.zero; Cplx.cis h |] |]

let controlled_phase phi =
  Matrix.make 4 4 (fun r col ->
      if r <> col then Cplx.zero else if r = 3 then Cplx.cis phi else Cplx.one)

let matrix = function
  | I -> Matrix.identity 2
  | X -> Matrix.of_arrays [| [| Cplx.zero; Cplx.one |]; [| Cplx.one; Cplx.zero |] |]
  | Y -> Matrix.of_arrays [| [| Cplx.zero; c 0.0 (-1.0) |]; [| Cplx.i; Cplx.zero |] |]
  | Z -> Matrix.of_arrays [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; c (-1.0) 0.0 |] |]
  | H ->
      Matrix.of_arrays
        [|
          [| c inv_sqrt2 0.0; c inv_sqrt2 0.0 |];
          [| c inv_sqrt2 0.0; c (-.inv_sqrt2) 0.0 |];
        |]
  | S -> Matrix.of_arrays [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.i |] |]
  | Sdag ->
      Matrix.of_arrays [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; c 0.0 (-1.0) |] |]
  | T ->
      Matrix.of_arrays
        [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.cis (Float.pi /. 4.0) |] |]
  | Tdag ->
      Matrix.of_arrays
        [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.cis (-.Float.pi /. 4.0) |] |]
  | X90 -> rotation_x (Float.pi /. 2.0)
  | Xm90 -> rotation_x (-.Float.pi /. 2.0)
  | Y90 -> rotation_y (Float.pi /. 2.0)
  | Ym90 -> rotation_y (-.Float.pi /. 2.0)
  | Rx theta -> rotation_x theta
  | Ry theta -> rotation_y theta
  | Rz theta -> rotation_z theta
  | Cnot ->
      (* Control is the high bit: basis order 00,01,10,11. *)
      Matrix.make 4 4 (fun r col ->
          let target r = if r < 2 then r else if r = 2 then 3 else 2 in
          if col = target r then Cplx.one else Cplx.zero)
  | Cz ->
      Matrix.make 4 4 (fun r col ->
          if r <> col then Cplx.zero
          else if r = 3 then c (-1.0) 0.0
          else Cplx.one)
  | Swap ->
      Matrix.make 4 4 (fun r col ->
          let target = function 0 -> 0 | 1 -> 2 | 2 -> 1 | _ -> 3 in
          if col = target r then Cplx.one else Cplx.zero)
  | Cphase phi -> controlled_phase phi
  | Crk k -> controlled_phase (2.0 *. Float.pi /. float_of_int (1 lsl k))
  | Toffoli ->
      Matrix.make 8 8 (fun r col ->
          let target r = if r = 6 then 7 else if r = 7 then 6 else r in
          if col = target r then Cplx.one else Cplx.zero)

let adjoint = function
  | I -> I
  | X -> X
  | Y -> Y
  | Z -> Z
  | H -> H
  | S -> Sdag
  | Sdag -> S
  | T -> Tdag
  | Tdag -> T
  | X90 -> Xm90
  | Xm90 -> X90
  | Y90 -> Ym90
  | Ym90 -> Y90
  | Rx theta -> Rx (-.theta)
  | Ry theta -> Ry (-.theta)
  | Rz theta -> Rz (-.theta)
  | Cnot -> Cnot
  | Cz -> Cz
  | Swap -> Swap
  | Cphase phi -> Cphase (-.phi)
  | Crk k -> Cphase (-.(2.0 *. Float.pi /. float_of_int (1 lsl k)))
  | Toffoli -> Toffoli

let is_diagonal = function
  | I | Z | S | Sdag | T | Tdag | Rz _ | Cz | Cphase _ | Crk _ -> true
  | X | Y | H | X90 | Xm90 | Y90 | Ym90 | Rx _ | Ry _ | Cnot | Swap | Toffoli -> false

let is_two_qubit u = arity u = 2

let is_clifford = function
  | I | X | Y | Z | H | S | Sdag | X90 | Xm90 | Y90 | Ym90 | Cnot | Cz | Swap -> true
  | T | Tdag | Rx _ | Ry _ | Rz _ | Cphase _ | Crk _ | Toffoli -> false

let name = function
  | I -> "i"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdag -> "sdag"
  | T -> "t"
  | Tdag -> "tdag"
  | X90 -> "x90"
  | Xm90 -> "mx90"
  | Y90 -> "y90"
  | Ym90 -> "my90"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | Cnot -> "cnot"
  | Cz -> "cz"
  | Swap -> "swap"
  | Cphase _ -> "cphase"
  | Crk _ -> "cr"
  | Toffoli -> "toffoli"

let qubits = function
  | Unitary (_, operands) | Conditional (_, _, operands) -> Array.copy operands
  | Prep q | Measure q -> [| q |]
  | Barrier qs -> Array.copy qs

let map_qubits f = function
  | Unitary (u, operands) -> Unitary (u, Array.map f operands)
  | Conditional (bit, u, operands) ->
      (* The classical bit is indexed by the measured qubit, so a uniform
         renumbering applies to it too. *)
      Conditional (f bit, u, Array.map f operands)
  | Prep q -> Prep (f q)
  | Measure q -> Measure (f q)
  | Barrier qs -> Barrier (Array.map f qs)

let angle_equal a b = Float.abs (a -. b) <= 1e-12

let unitary_equal a b =
  match a, b with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | Cphase x, Cphase y -> angle_equal x y
  | Crk j, Crk k -> j = k
  | ( ( I | X | Y | Z | H | S | Sdag | T | Tdag | X90 | Xm90 | Y90 | Ym90 | Cnot | Cz
      | Swap | Toffoli ),
      _ ) ->
      a = b
  | (Rx _ | Ry _ | Rz _ | Cphase _ | Crk _), _ -> false

let equal a b =
  match a, b with
  | Unitary (u, ops), Unitary (v, ops') -> unitary_equal u v && ops = ops'
  | Conditional (bit, u, ops), Conditional (bit', v, ops') ->
      bit = bit' && unitary_equal u v && ops = ops'
  | Prep q, Prep q' | Measure q, Measure q' -> q = q'
  | Barrier qs, Barrier qs' -> qs = qs'
  | (Unitary _ | Conditional _ | Prep _ | Measure _ | Barrier _), _ -> false

let operand_string operands =
  operands |> Array.to_list
  |> List.map (Printf.sprintf "q[%d]")
  |> String.concat ", "

let unitary_to_string u operands =
  let operand_part = operand_string operands in
  match u with
  | Rx theta | Ry theta | Rz theta | Cphase theta ->
      Printf.sprintf "%s %s, %.10g" (name u) operand_part theta
  | Crk k -> Printf.sprintf "cr %s, %d" operand_part k
  | I | X | Y | Z | H | S | Sdag | T | Tdag | X90 | Xm90 | Y90 | Ym90 | Cnot | Cz
  | Swap | Toffoli ->
      Printf.sprintf "%s %s" (name u) operand_part

let to_string = function
  | Unitary (u, operands) -> unitary_to_string u operands
  | Conditional (bit, u, operands) ->
      let base = unitary_to_string u operands in
      (match String.index_opt base ' ' with
      | Some i ->
          Printf.sprintf "c-%s b[%d],%s" (String.sub base 0 i) bit
            (String.sub base i (String.length base - i))
      | None -> Printf.sprintf "c-%s b[%d]" base bit)
  | Prep q -> Printf.sprintf "prep_z q[%d]" q
  | Measure q -> Printf.sprintf "measure q[%d]" q
  | Barrier qs -> Printf.sprintf "barrier %s" (operand_string qs)
