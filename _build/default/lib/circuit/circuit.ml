module Matrix = Qca_util.Matrix
module Cplx = Qca_util.Cplx
module Bits = Qca_util.Bits

type t = { name : string; qubit_count : int; rev_instructions : Gate.t list; length : int }

let validate_instruction qubit_count instr =
  let operands = Gate.qubits instr in
  Array.iter
    (fun q ->
      if q < 0 || q >= qubit_count then
        invalid_arg
          (Printf.sprintf "Circuit: qubit %d out of range [0, %d) in '%s'" q qubit_count
             (Gate.to_string instr)))
    operands;
  let sorted = Array.copy operands in
  Array.sort compare sorted;
  for i = 0 to Array.length sorted - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg
        (Printf.sprintf "Circuit: duplicated operand q[%d] in '%s'" sorted.(i)
           (Gate.to_string instr))
  done;
  match instr with
  | Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops) ->
      if Array.length ops <> Gate.arity u then
        invalid_arg
          (Printf.sprintf "Circuit: gate '%s' expects %d operands, got %d" (Gate.name u)
             (Gate.arity u) (Array.length ops))
  | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> ()

let create ?(name = "circuit") qubit_count =
  if qubit_count <= 0 then invalid_arg "Circuit.create: qubit_count must be positive";
  { name; qubit_count; rev_instructions = []; length = 0 }

let add c instr =
  validate_instruction c.qubit_count instr;
  { c with rev_instructions = instr :: c.rev_instructions; length = c.length + 1 }

let of_list ?name qubit_count instrs =
  List.fold_left add (create ?name qubit_count) instrs

let name c = c.name
let qubit_count c = c.qubit_count
let instructions c = List.rev c.rev_instructions
let length c = c.length

let append a b =
  if a.qubit_count <> b.qubit_count then
    invalid_arg "Circuit.append: mismatched qubit counts";
  {
    a with
    rev_instructions = b.rev_instructions @ a.rev_instructions;
    length = a.length + b.length;
  }

let repeat k c =
  if k < 0 then invalid_arg "Circuit.repeat: negative count";
  let rec go acc k = if k = 0 then acc else go (append acc c) (k - 1) in
  go { c with rev_instructions = []; length = 0 } k

let map_qubits f c =
  let mapped = List.rev_map (Gate.map_qubits f) c.rev_instructions in
  List.fold_left add (create ~name:c.name c.qubit_count) mapped

let inverse c =
  let invert = function
    | Gate.Unitary (u, ops) -> Gate.Unitary (Gate.adjoint u, ops)
    | Gate.Barrier qs -> Gate.Barrier qs
    | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ ->
        invalid_arg "Circuit.inverse: circuit contains non-unitary instructions"
  in
  (* rev_instructions is already reversed order, which is what inversion needs. *)
  List.fold_left
    (fun acc instr -> add acc (invert instr))
    (create ~name:(c.name ^ "_inv") c.qubit_count)
    c.rev_instructions

let gate_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Gate.Unitary _ | Gate.Conditional _ -> acc + 1
      | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> acc)
    0 c.rev_instructions

let two_qubit_gate_count c =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Gate.Unitary (u, _) | Gate.Conditional (_, u, _) when Gate.arity u >= 2 -> acc + 1
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ ->
          acc)
    0 c.rev_instructions

let depth c =
  let ready = Array.make c.qubit_count 0 in
  let finish instr =
    let operands = Gate.qubits instr in
    let start = Array.fold_left (fun acc q -> max acc ready.(q)) 0 operands in
    Array.iter (fun q -> ready.(q) <- start + 1) operands;
    start + 1
  in
  List.fold_left (fun acc instr -> max acc (finish instr)) 0 (instructions c)

let qubits_used c =
  let used = Array.make c.qubit_count false in
  List.iter (fun instr -> Array.iter (fun q -> used.(q) <- true) (Gate.qubits instr))
    c.rev_instructions;
  let acc = ref [] in
  for q = c.qubit_count - 1 downto 0 do
    if used.(q) then acc := q :: !acc
  done;
  !acc

(* Expand a k-qubit unitary into the full 2^n space. Operand order in
   [ops] is most-significant-first to match Gate.matrix conventions. *)
let embed qubit_count u ops =
  let small = Gate.matrix u in
  let k = Array.length ops in
  let dim = 1 lsl qubit_count in
  let index_of_basis basis =
    (* Map global basis state to the small matrix's row index. *)
    let rec go i acc =
      if i = k then acc
      else go (i + 1) ((acc lsl 1) lor if Bits.test basis ops.(i) then 1 else 0)
    in
    go 0 0
  in
  Matrix.make dim dim (fun row col ->
      (* Nonzero only when row and col agree outside the operand qubits. *)
      let mask = Array.fold_left (fun m q -> m lor (1 lsl q)) 0 ops in
      if row land lnot mask <> col land lnot mask then Cplx.zero
      else Matrix.get small (index_of_basis row) (index_of_basis col))

let unitary_matrix c =
  if c.qubit_count > 10 then invalid_arg "Circuit.unitary_matrix: too many qubits";
  let dim = 1 lsl c.qubit_count in
  let accumulate acc instr =
    match instr with
    | Gate.Unitary (u, ops) -> Matrix.mul (embed c.qubit_count u ops) acc
    | Gate.Barrier _ -> acc
    | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ ->
        invalid_arg "Circuit.unitary_matrix: non-unitary instruction"
  in
  List.fold_left accumulate (Matrix.identity dim) (instructions c)

let equal a b =
  a.qubit_count = b.qubit_count
  && a.length = b.length
  && List.for_all2 Gate.equal a.rev_instructions b.rev_instructions

let to_string c =
  let body = instructions c |> List.map Gate.to_string |> String.concat "\n" in
  Printf.sprintf "# %s (%d qubits)\n%s" c.name c.qubit_count body
