lib/circuit/library.ml: Array Circuit Fun Gate List Qca_util
