lib/circuit/circuit.ml: Array Gate List Printf Qca_util String
