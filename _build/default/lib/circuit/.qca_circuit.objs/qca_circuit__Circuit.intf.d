lib/circuit/circuit.mli: Gate Qca_util
