lib/circuit/cqasm.mli: Circuit
