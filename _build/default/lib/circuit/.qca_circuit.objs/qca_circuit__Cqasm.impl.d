lib/circuit/cqasm.ml: Array Buffer Circuit Gate List Printf String
