lib/circuit/gate.mli: Qca_util
