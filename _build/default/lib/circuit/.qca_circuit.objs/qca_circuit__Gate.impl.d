lib/circuit/gate.ml: Array Float List Printf Qca_util String
