lib/circuit/library.mli: Circuit Gate Qca_util
