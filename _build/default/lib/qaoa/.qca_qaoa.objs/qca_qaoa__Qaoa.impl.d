lib/qaoa/qaoa.ml: Array Float List Qca_anneal Qca_circuit Qca_qx Qca_util
