lib/qaoa/qaoa.mli: Qca_anneal Qca_circuit Qca_qx Qca_util
