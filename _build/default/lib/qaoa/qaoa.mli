(** Quantum Approximate Optimisation Algorithm (section 3.3): the gate-based
    route to QUBO problems, run as a hybrid quantum-classical loop — a
    shallow parameterised circuit iterated while a classical optimiser in
    the host CPU updates the parameters (Figure 8).

    Spin convention: basis-state bit b encodes spin s = 2b - 1. *)

type params = { gammas : float array; betas : float array }
(** One (gamma, beta) pair per QAOA layer. *)

val layers : params -> int

val spin_energy_of_basis : Qca_anneal.Ising.t -> int -> float
(** Ising energy of the spin configuration encoded by a basis index. *)

val evolve : Qca_anneal.Ising.t -> params -> Qca_qx.State.t
(** Prepare |+...+>, then alternate cost-phase and mixer layers; the direct
    state-vector implementation (exact, no Trotter error). *)

val expectation : Qca_anneal.Ising.t -> params -> float
(** <H_cost> of the evolved state: the value the classical optimiser sees. *)

val cost_circuit : Qca_anneal.Ising.t -> float -> Qca_circuit.Circuit.t
(** Gate-level phase-separation layer (Rz + CNOT conjugation), equivalent to
    the diagonal evolution up to global phase — used when executing QAOA
    through the compiler/micro-architecture stack. *)

val mixer_circuit : int -> float -> Qca_circuit.Circuit.t
(** Rx(2 beta) on every qubit. *)

val full_circuit : Qca_anneal.Ising.t -> params -> Qca_circuit.Circuit.t
(** Hadamard wall + alternating layers, as one circuit. *)

type result = {
  params : params;
  expectation_value : float;
  best_bits : int array;
  best_energy : float;  (** Ising energy of the best sampled configuration. *)
  evaluations : int;  (** Classical-loop circuit evaluations used. *)
}

val optimize :
  ?layers:int ->
  ?restarts:int ->
  ?shots:int ->
  rng:Qca_util.Rng.t ->
  Qca_anneal.Ising.t ->
  result
(** The full hybrid loop: Nelder-Mead over the 2p angles from random starts,
    then sample the optimised state [shots] times and keep the best
    configuration. Defaults: 1 layer, 3 restarts, 256 shots. *)

val solve_qubo :
  ?layers:int -> ?restarts:int -> ?shots:int -> rng:Qca_util.Rng.t -> Qca_anneal.Qubo.t ->
  int array * float
(** QAOA on a QUBO; returns bits and QUBO energy. *)
