module Rng = Qca_util.Rng

type t = { n : int; h : float array; couplings : (int * int * float) list }

let energy m s =
  assert (Array.length s = m.n);
  let acc = ref 0.0 in
  Array.iteri
    (fun i hi ->
      assert (s.(i) = 1 || s.(i) = -1);
      acc := !acc +. (hi *. float_of_int s.(i)))
    m.h;
  List.iter
    (fun (i, j, w) -> acc := !acc +. (w *. float_of_int (s.(i) * s.(j))))
    m.couplings;
  !acc

(* x_i = (1 + s_i) / 2:
   Q_ii x_i            -> Q_ii (1 + s_i) / 2
   Q_ij x_i x_j        -> Q_ij (1 + s_i + s_j + s_i s_j) / 4 *)
let of_qubo q =
  let n = Qubo.size q in
  let h = Array.make n 0.0 in
  let couplings = ref [] in
  let offset = ref 0.0 in
  for i = 0 to n - 1 do
    let qii = Qubo.get q i i in
    if qii <> 0.0 then begin
      offset := !offset +. (qii /. 2.0);
      h.(i) <- h.(i) +. (qii /. 2.0)
    end
  done;
  List.iter
    (fun (i, j) ->
      let w = Qubo.get q i j in
      offset := !offset +. (w /. 4.0);
      h.(i) <- h.(i) +. (w /. 4.0);
      h.(j) <- h.(j) +. (w /. 4.0);
      couplings := (i, j, w /. 4.0) :: !couplings)
    (Qubo.variables_interacting q);
  ({ n; h; couplings = List.rev !couplings }, !offset)

let to_qubo m =
  let q = Qubo.create m.n in
  let offset = ref 0.0 in
  (* s_i = 2 x_i - 1: h_i s_i = 2 h_i x_i - h_i
     J s_i s_j = J (4 x_i x_j - 2 x_i - 2 x_j + 1) *)
  Array.iteri
    (fun i hi ->
      if hi <> 0.0 then begin
        Qubo.add q i i (2.0 *. hi);
        offset := !offset -. hi
      end)
    m.h;
  List.iter
    (fun (i, j, w) ->
      Qubo.add q i j (4.0 *. w);
      Qubo.add q i i (-2.0 *. w);
      Qubo.add q j j (-2.0 *. w);
      offset := !offset +. w)
    m.couplings;
  (q, !offset)

let spins_of_bits = Array.map (fun b -> if b = 1 then 1 else -1)
let bits_of_spins = Array.map (fun s -> if s = 1 then 1 else 0)

let random_spins rng n = Array.init n (fun _ -> if Rng.bool rng then 1 else -1)

let brute_force m =
  if m.n > 24 then invalid_arg "Ising.brute_force: too many spins";
  let best_s = ref (Array.make m.n 1) and best_e = ref infinity in
  let s = Array.make m.n 1 in
  for assignment = 0 to (1 lsl m.n) - 1 do
    for i = 0 to m.n - 1 do
      s.(i) <- (if (assignment lsr i) land 1 = 1 then 1 else -1)
    done;
    let e = energy m s in
    if e < !best_e then begin
      best_e := e;
      best_s := Array.copy s
    end
  done;
  (!best_s, !best_e)

let build_neighbour_index m =
  let table = Array.make m.n [] in
  List.iter
    (fun (i, j, w) ->
      table.(i) <- (j, w) :: table.(i);
      table.(j) <- (i, w) :: table.(j))
    m.couplings;
  fun i -> table.(i)

let delta_energy m ~neighbour_index s i =
  let si = float_of_int s.(i) in
  let local = m.h.(i) in
  let coupling =
    List.fold_left (fun acc (j, w) -> acc +. (w *. float_of_int s.(j))) 0.0 (neighbour_index i)
  in
  (* Flip s_i -> -s_i: dE = -2 s_i (h_i + sum_j J_ij s_j) *)
  -2.0 *. si *. (local +. coupling)
