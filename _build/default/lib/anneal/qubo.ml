module Rng = Qca_util.Rng
module Graph = Qca_util.Graph

type t = { n : int; weights : (int * int, float) Hashtbl.t }

let create n =
  assert (n > 0);
  { n; weights = Hashtbl.create 64 }

let size q = q.n

let key i j = if i <= j then (i, j) else (j, i)

let add q i j w =
  assert (i >= 0 && i < q.n && j >= 0 && j < q.n);
  let k = key i j in
  let current = Option.value ~default:0.0 (Hashtbl.find_opt q.weights k) in
  let updated = current +. w in
  if Float.abs updated < 1e-15 then Hashtbl.remove q.weights k
  else Hashtbl.replace q.weights k updated

let get q i j = Option.value ~default:0.0 (Hashtbl.find_opt q.weights (key i j))

let energy q x =
  assert (Array.length x = q.n);
  Hashtbl.fold
    (fun (i, j) w acc ->
      assert (x.(i) = 0 || x.(i) = 1);
      acc +. (w *. float_of_int (x.(i) * x.(j))))
    q.weights 0.0

let variables_interacting q =
  Hashtbl.fold (fun (i, j) _ acc -> if i <> j then (i, j) :: acc else acc) q.weights []
  |> List.sort compare

let interaction_graph q =
  let g = Graph.create q.n in
  List.iter
    (fun (i, j) -> Graph.add_edge g i j (Float.abs (get q i j)))
    (variables_interacting q);
  g

let brute_force q =
  if q.n > 24 then invalid_arg "Qubo.brute_force: too many variables";
  let best_x = ref (Array.make q.n 0) and best_e = ref infinity in
  let x = Array.make q.n 0 in
  for assignment = 0 to (1 lsl q.n) - 1 do
    for i = 0 to q.n - 1 do
      x.(i) <- (assignment lsr i) land 1
    done;
    let e = energy q x in
    if e < !best_e then begin
      best_e := e;
      best_x := Array.copy x
    end
  done;
  (!best_x, !best_e)

let random_assignment rng q = Array.init q.n (fun _ -> if Rng.bool rng then 1 else 0)

let density q =
  let pairs = q.n * (q.n - 1) / 2 in
  if pairs = 0 then 0.0
  else float_of_int (List.length (variables_interacting q)) /. float_of_int pairs
