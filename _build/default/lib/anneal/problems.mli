(** Standard optimisation problems as QUBO models — the "optimisation
    problems pervasive in operations research" of section 3.3 beyond the
    TSP use-case (the paper lists planning, scheduling, logistics, packing,
    network protocols...). Each encoder comes with a decoder/checker so the
    annealers and QAOA can be validated end to end. *)

val max_cut : Qca_util.Graph.t -> Qubo.t
(** Minimising the QUBO maximises the cut: energy = -(cut weight). *)

val cut_value : Qca_util.Graph.t -> int array -> float
(** Total weight of edges crossing the bipartition given by the bits. *)

val number_partition : float array -> Qubo.t
(** Partition numbers into two sets with equal sums; the QUBO minimum is
    (difference)^2 up to constant offset. *)

val partition_difference : float array -> int array -> float
(** |sum(set 1) - sum(set 0)| for a bit assignment. *)

val vertex_cover : ?penalty:float -> Qca_util.Graph.t -> Qubo.t
(** Minimum vertex cover: x_i = 1 keeps vertex i in the cover; [penalty]
    (default 2x max degree) enforces edge coverage. *)

val is_vertex_cover : Qca_util.Graph.t -> int array -> bool
val cover_size : int array -> int

val random_max_cut_instance : Qca_util.Rng.t -> vertices:int -> edge_probability:float -> Qca_util.Graph.t
(** Erdos-Renyi instance with unit weights for benchmarking. *)
