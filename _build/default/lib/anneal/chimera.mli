(** D-Wave Chimera topology: an m x m grid of K4,4 unit cells.

    The D-Wave 2000Q of section 3.3 is Chimera C16 (2048 qubits). Cell
    (r, c) holds 8 qubits; the 4 "vertical" qubits couple to the same index
    in the cells north/south, the 4 "horizontal" ones east/west, and every
    vertical qubit couples to every horizontal qubit within the cell. *)

val qubit_count : int -> int
(** [qubit_count m] = 8 m^2. *)

val graph : int -> Qca_util.Graph.t
(** [graph m] is C_m. *)

val c16 : unit -> Qca_util.Graph.t
(** The 2000Q working graph (ideal, no dead qubits). *)

val index : m:int -> row:int -> col:int -> k:int -> int
(** Qubit index of position k (0-3 vertical, 4-7 horizontal) in cell (row, col). *)

val max_clique_minor : int -> int
(** Largest complete graph known to embed in C_m with the standard triangular
    clique embedding: K_{4m+1}. *)
