(** Graph minor embedding: map each logical QUBO variable onto a connected
    chain of physical qubits so that every logical interaction is realised
    by at least one physical coupler.

    Finding a minor embedding is NP-hard (section 4.2); this is the standard
    greedy BFS heuristic with random vertex orders and restarts, in the
    spirit of D-Wave's minorminer. *)

type t = {
  chains : int list array;  (** [chains.(logical)] = physical qubits of its chain. *)
  physical_used : int;  (** Total physical qubits consumed. *)
  max_chain_length : int;
}

val embed :
  ?tries:int ->
  rng:Qca_util.Rng.t ->
  logical:Qca_util.Graph.t ->
  Qca_util.Graph.t ->
  t option
(** [embed ~rng ~logical physical] attempts the embedding; [None] when all
    tries fail. *)

val is_valid : logical:Qca_util.Graph.t -> physical:Qca_util.Graph.t -> t -> bool
(** Chains are connected, pairwise disjoint, and every logical edge has a
    physical coupler between the two chains. *)

val embed_qubo :
  ?tries:int -> rng:Qca_util.Rng.t -> Qubo.t -> physical:Qca_util.Graph.t -> t option
(** Embed the QUBO's interaction graph. *)

val chimera_clique : m:int -> n:int -> t
(** The standard deterministic triangular clique embedding of K_n into
    Chimera C_m (n <= 4m): logical 4a+b occupies the cross of vertical lane
    b in column a and horizontal lane b in row a, joined in cell (a, a).
    Every chain has length 2m. Raises [Invalid_argument] when n > 4m. *)

val max_clique_cities : m:int -> int
(** Largest TSP city count whose n^2-variable QUBO is guaranteed embeddable
    via {!chimera_clique}: floor(sqrt(4m)). *)

type method_used = Heuristic | Clique

val embed_in_chimera :
  ?tries:int ->
  rng:Qca_util.Rng.t ->
  m:int ->
  Qca_util.Graph.t ->
  (t * method_used) option
(** Production embedding strategy for Chimera C_m (what D-Wave tooling does
    for dense problems): try the greedy heuristic, then fall back to the
    clique embedding when the vertex count fits K_{4m}. *)
