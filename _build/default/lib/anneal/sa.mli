(** Classical simulated annealing over Ising models — the baseline heuristic
    the paper contrasts with quantum annealing, and the engine inside the
    digital-annealer model. *)

type schedule =
  | Linear of float * float  (** Inverse temperature swept linearly beta_0 -> beta_1. *)
  | Geometric of float * float  (** beta multiplied by a fixed ratio each sweep. *)

type params = {
  sweeps : int;  (** Full single-spin-flip passes. *)
  schedule : schedule;
  restarts : int;  (** Independent runs; best result kept. *)
}

val default_params : params
(** 1000 sweeps, Linear (0.1, 5.0), 4 restarts. *)

type result = {
  spins : int array;
  energy : float;
  energy_trace : float array;  (** Best-so-far energy after each sweep (last restart). *)
}

val minimize : ?params:params -> rng:Qca_util.Rng.t -> Ising.t -> result

val minimize_qubo : ?params:params -> rng:Qca_util.Rng.t -> Qubo.t -> int array * float
(** Convenience: anneal the Ising image of a QUBO and return bits + QUBO energy. *)
