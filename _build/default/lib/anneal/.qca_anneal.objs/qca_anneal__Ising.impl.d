lib/anneal/ising.ml: Array List Qca_util Qubo
