lib/anneal/digital_annealer.mli: Qca_util Qubo
