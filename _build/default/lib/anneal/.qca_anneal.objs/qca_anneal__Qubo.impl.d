lib/anneal/qubo.ml: Array Float Hashtbl List Option Qca_util
