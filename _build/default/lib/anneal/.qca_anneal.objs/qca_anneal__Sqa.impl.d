lib/anneal/sqa.ml: Array Ising Qca_util
