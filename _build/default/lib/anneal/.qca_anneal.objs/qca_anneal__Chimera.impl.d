lib/anneal/chimera.ml: Qca_util
