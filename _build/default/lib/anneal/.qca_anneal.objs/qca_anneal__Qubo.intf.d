lib/anneal/qubo.mli: Qca_util
