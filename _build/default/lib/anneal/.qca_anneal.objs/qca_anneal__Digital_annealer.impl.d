lib/anneal/digital_annealer.ml: Array Float Ising List Qca_util Qubo
