lib/anneal/chimera.mli: Qca_util
