lib/anneal/sqa.mli: Ising Qca_util Qubo
