lib/anneal/embedding.mli: Qca_util Qubo
