lib/anneal/embedding.ml: Array Chimera Float Fun Hashtbl List Printf Qca_util Qubo Queue Sys
