lib/anneal/sa.mli: Ising Qca_util Qubo
