lib/anneal/sa.ml: Array Ising Qca_util
