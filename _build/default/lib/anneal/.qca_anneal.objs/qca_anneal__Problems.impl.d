lib/anneal/problems.ml: Array Float Fun List Qca_util Qubo
