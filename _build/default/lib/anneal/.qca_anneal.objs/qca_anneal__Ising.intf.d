lib/anneal/ising.mli: Qca_util Qubo
