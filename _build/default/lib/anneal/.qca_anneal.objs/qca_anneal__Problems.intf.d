lib/anneal/problems.mli: Qca_util Qubo
