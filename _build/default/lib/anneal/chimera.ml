module Graph = Qca_util.Graph

let qubit_count m = 8 * m * m

let index ~m ~row ~col ~k =
  assert (row >= 0 && row < m && col >= 0 && col < m && k >= 0 && k < 8);
  (8 * ((row * m) + col)) + k

let graph m =
  assert (m >= 1);
  let g = Graph.create (qubit_count m) in
  for row = 0 to m - 1 do
    for col = 0 to m - 1 do
      (* intra-cell K4,4 *)
      for kv = 0 to 3 do
        for kh = 4 to 7 do
          Graph.add_edge g (index ~m ~row ~col ~k:kv) (index ~m ~row ~col ~k:kh) 1.0
        done
      done;
      (* vertical inter-cell couplers *)
      if row + 1 < m then
        for kv = 0 to 3 do
          Graph.add_edge g (index ~m ~row ~col ~k:kv)
            (index ~m ~row:(row + 1) ~col ~k:kv)
            1.0
        done;
      (* horizontal inter-cell couplers *)
      if col + 1 < m then
        for kh = 4 to 7 do
          Graph.add_edge g (index ~m ~row ~col ~k:kh)
            (index ~m ~row ~col:(col + 1) ~k:kh)
            1.0
        done
    done
  done;
  g

let c16 () = graph 16

let max_clique_minor m = (4 * m) + 1
