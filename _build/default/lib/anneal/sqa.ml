module Rng = Qca_util.Rng

type params = {
  trotter_slices : int;
  temperature : float;
  gamma_start : float;
  gamma_end : float;
  sweeps : int;
  restarts : int;
}

let default_params =
  {
    trotter_slices = 16;
    temperature = 0.05;
    gamma_start = 3.0;
    gamma_end = 0.01;
    sweeps = 600;
    restarts = 2;
  }

type result = { spins : int array; energy : float; tunnelling_events : int }

let run_once params rng model =
  let n = model.Ising.n in
  let p = params.trotter_slices in
  let t = params.temperature in
  let neighbour_index = Ising.build_neighbour_index model in
  (* replicas.(k).(i): spin i in Trotter slice k *)
  let replicas = Array.init p (fun _ -> Ising.random_spins rng n) in
  let tunnelling = ref 0 in
  let classical_delta k i = Ising.delta_energy model ~neighbour_index replicas.(k) i in
  let slice_coupling_delta j_perp k i =
    let up = replicas.((k + 1) mod p).(i) and down = replicas.((k + p - 1) mod p).(i) in
    let si = float_of_int replicas.(k).(i) in
    (* Ferromagnetic coupling -J_perp s_k (s_{k-1} + s_{k+1}); flipping s_k
       changes it by +2 J_perp s_k (s_{k-1} + s_{k+1}). *)
    2.0 *. j_perp *. si *. float_of_int (up + down)
  in
  for sweep = 0 to params.sweeps - 1 do
    let progress = float_of_int sweep /. float_of_int (max 1 (params.sweeps - 1)) in
    let gamma =
      params.gamma_start *. ((params.gamma_end /. params.gamma_start) ** progress)
    in
    let j_perp =
      let x = gamma /. (float_of_int p *. t) in
      -.(t /. 2.0) *. log (tanh x)
    in
    for k = 0 to p - 1 do
      for _ = 1 to n do
        let i = Rng.int rng n in
        (* The classical part is divided by P in the Trotter decomposition. *)
        let d = (classical_delta k i /. float_of_int p) +. slice_coupling_delta j_perp k i in
        if d <= 0.0 || Rng.float rng 1.0 < exp (-.d /. t) then begin
          let up = replicas.((k + 1) mod p).(i) in
          let down = replicas.((k + p - 1) mod p).(i) in
          if replicas.(k).(i) = up || replicas.(k).(i) = down then incr tunnelling;
          replicas.(k).(i) <- -replicas.(k).(i)
        end
      done
    done
  done;
  (* Pick the best slice. *)
  let best = ref (Ising.energy model replicas.(0)) and best_k = ref 0 in
  for k = 1 to p - 1 do
    let e = Ising.energy model replicas.(k) in
    if e < !best then begin
      best := e;
      best_k := k
    end
  done;
  { spins = Array.copy replicas.(!best_k); energy = !best; tunnelling_events = !tunnelling }

let minimize ?(params = default_params) ~rng model =
  let rec go k acc =
    if k = 0 then acc
    else
      let candidate = run_once params rng model in
      go (k - 1) (if candidate.energy < acc.energy then candidate else acc)
  in
  let first = run_once params rng model in
  go (params.restarts - 1) first

let minimize_qubo ?params ~rng q =
  let model, offset = Ising.of_qubo q in
  let result = minimize ?params ~rng model in
  (Ising.bits_of_spins result.spins, result.energy +. offset)
