module Rng = Qca_util.Rng

type schedule = Linear of float * float | Geometric of float * float

type params = { sweeps : int; schedule : schedule; restarts : int }

let default_params = { sweeps = 1000; schedule = Linear (0.1, 5.0); restarts = 4 }

type result = { spins : int array; energy : float; energy_trace : float array }

let beta_at schedule sweeps k =
  match schedule with
  | Linear (b0, b1) ->
      if sweeps <= 1 then b1
      else b0 +. ((b1 -. b0) *. float_of_int k /. float_of_int (sweeps - 1))
  | Geometric (b0, ratio) -> b0 *. (ratio ** float_of_int k)

let run_once params rng model =
  let n = model.Ising.n in
  let neighbour_index = Ising.build_neighbour_index model in
  let s = Ising.random_spins rng n in
  let current = ref (Ising.energy model s) in
  let best = ref !current and best_s = ref (Array.copy s) in
  let trace = Array.make params.sweeps 0.0 in
  for sweep = 0 to params.sweeps - 1 do
    let beta = beta_at params.schedule params.sweeps sweep in
    for _ = 1 to n do
      let i = Rng.int rng n in
      let d = Ising.delta_energy model ~neighbour_index s i in
      if d <= 0.0 || Rng.float rng 1.0 < exp (-.beta *. d) then begin
        s.(i) <- -s.(i);
        current := !current +. d;
        if !current < !best then begin
          best := !current;
          best_s := Array.copy s
        end
      end
    done;
    trace.(sweep) <- !best
  done;
  { spins = !best_s; energy = !best; energy_trace = trace }

let minimize ?(params = default_params) ~rng model =
  assert (params.restarts >= 1 && params.sweeps >= 1);
  let rec go k acc =
    if k = 0 then acc
    else
      let candidate = run_once params rng model in
      let acc = if candidate.energy < acc.energy then candidate else acc in
      go (k - 1) acc
  in
  let first = run_once params rng model in
  go (params.restarts - 1) first

let minimize_qubo ?params ~rng q =
  let model, offset = Ising.of_qubo q in
  let result = minimize ?params ~rng model in
  (Ising.bits_of_spins result.spins, result.energy +. offset)
