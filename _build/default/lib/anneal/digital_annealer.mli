(** Fujitsu-style Digital Annealer model (section 4.2): a fully-connected
    quantum-inspired CMOS annealer with 8192 nodes — no embedding needed.

    The algorithm follows the published DA scheme: each step evaluates ALL
    single-bit flips in parallel, accepts one of the admissible flips
    uniformly at random, and applies a growing dynamic offset when stuck to
    escape local minima. *)

val node_count : int
(** 8192 (the capacity quoted in the paper). *)

val fits : Qubo.t -> bool
(** Does the problem fit without embedding? *)

type result = {
  bits : int array;
  energy : float;
  steps : int;
  offset_escapes : int;  (** Times the dynamic offset unlocked an uphill move. *)
}

val minimize :
  ?steps:int -> ?beta:float -> ?offset_increment:float -> rng:Qca_util.Rng.t -> Qubo.t -> result
(** Raises [Invalid_argument] when the QUBO exceeds {!node_count}. *)

val max_tsp_cities : unit -> int
(** Largest TSP (n^2 encoding) solvable without embedding: floor(sqrt 8192) = 90,
    the paper's headline capacity comparison. *)
