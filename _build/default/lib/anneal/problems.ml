module Graph = Qca_util.Graph
module Rng = Qca_util.Rng

(* cut(x) = sum_{(i,j) in E} w_ij (x_i + x_j - 2 x_i x_j); minimise -cut. *)
let max_cut g =
  let q = Qubo.create (Graph.size g) in
  List.iter
    (fun (i, j, w) ->
      Qubo.add q i i (-.w);
      Qubo.add q j j (-.w);
      Qubo.add q i j (2.0 *. w))
    (Graph.edges g);
  q

let cut_value g bits =
  List.fold_left
    (fun acc (i, j, w) -> if bits.(i) <> bits.(j) then acc +. w else acc)
    0.0 (Graph.edges g)

(* (sum_i a_i s_i)^2 with s = 2x - 1: expanding in x gives the QUBO below
   (constant sum_i a_i^2 + (sum a)^2 terms dropped). *)
let number_partition numbers =
  let n = Array.length numbers in
  if n < 2 then invalid_arg "Problems.number_partition: need at least two numbers";
  let total = Array.fold_left ( +. ) 0.0 numbers in
  let q = Qubo.create n in
  Array.iteri
    (fun i ai ->
      Qubo.add q i i (4.0 *. ai *. (ai -. total));
      for j = i + 1 to n - 1 do
        Qubo.add q i j (8.0 *. ai *. numbers.(j))
      done)
    numbers;
  q

let partition_difference numbers bits =
  let s1 = ref 0.0 and s0 = ref 0.0 in
  Array.iteri (fun i a -> if bits.(i) = 1 then s1 := !s1 +. a else s0 := !s0 +. a) numbers;
  Float.abs (!s1 -. !s0)

let vertex_cover ?penalty g =
  let n = Graph.size g in
  let max_degree = List.fold_left (fun acc v -> max acc (Graph.degree g v)) 1 (List.init n Fun.id) in
  let a = match penalty with Some p -> p | None -> 2.0 *. float_of_int max_degree in
  let q = Qubo.create n in
  (* minimise cover size + A * sum_{(i,j)} (1 - x_i)(1 - x_j) *)
  for v = 0 to n - 1 do
    Qubo.add q v v 1.0
  done;
  List.iter
    (fun (i, j, _) ->
      (* (1 - x_i)(1 - x_j) = 1 - x_i - x_j + x_i x_j; constant dropped *)
      Qubo.add q i i (-.a);
      Qubo.add q j j (-.a);
      Qubo.add q i j a)
    (Graph.edges g);
  q

let is_vertex_cover g bits =
  List.for_all (fun (i, j, _) -> bits.(i) = 1 || bits.(j) = 1) (Graph.edges g)

let cover_size bits = Array.fold_left ( + ) 0 bits

let random_max_cut_instance rng ~vertices ~edge_probability =
  let g = Graph.create vertices in
  for i = 0 to vertices - 1 do
    for j = i + 1 to vertices - 1 do
      if Rng.bernoulli rng edge_probability then Graph.add_edge g i j 1.0
    done
  done;
  g
