(** Simulated quantum annealing: path-integral Monte Carlo for the
    transverse-field Ising model.

    The quantum annealer of Figure 3/8 is simulated by the standard
    Suzuki-Trotter mapping: [trotter_slices] replicas of the classical model
    coupled along the imaginary-time direction with strength
    J_perp = -(T/2) ln tanh(Gamma / (P T)), with the transverse field Gamma
    swept from [gamma_start] to ~0 while tunnelling events flip whole chain
    segments. *)

type params = {
  trotter_slices : int;
  temperature : float;
  gamma_start : float;
  gamma_end : float;
  sweeps : int;
  restarts : int;
}

val default_params : params
(** 16 slices, T = 0.05, Gamma 3.0 -> 0.01, 600 sweeps, 2 restarts. *)

type result = {
  spins : int array;  (** Best slice at the end of the anneal. *)
  energy : float;
  tunnelling_events : int;
      (** Accepted moves that flipped a spin against its slice neighbours —
          a proxy for quantum tunnelling activity. *)
}

val minimize : ?params:params -> rng:Qca_util.Rng.t -> Ising.t -> result

val minimize_qubo : ?params:params -> rng:Qca_util.Rng.t -> Qubo.t -> int array * float
