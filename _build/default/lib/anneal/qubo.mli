(** Quadratic Unconstrained Binary Optimisation models (section 3.3):
    minimise y = x^T Q x over binary x, with Q upper-triangular. *)

type t

val create : int -> t
(** Zero model on n variables. *)

val size : t -> int

val add : t -> int -> int -> float -> unit
(** [add q i j w] accumulates weight onto entry (min i j, max i j); [i = j]
    addresses the linear (diagonal) term. *)

val get : t -> int -> int -> float

val energy : t -> int array -> float
(** [energy q x] with [x.(i)] in {0, 1}. *)

val variables_interacting : t -> (int * int) list
(** Off-diagonal pairs with nonzero weight (the QUBO interaction graph). *)

val interaction_graph : t -> Qca_util.Graph.t

val brute_force : t -> int array * float
(** Exact minimiser by enumeration; requires [size <= 24]. *)

val random_assignment : Qca_util.Rng.t -> t -> int array

val density : t -> float
(** Fraction of possible off-diagonal pairs with nonzero weight. *)
