module Graph = Qca_util.Graph
module Rng = Qca_util.Rng

type t = { chains : int list array; physical_used : int; max_chain_length : int }

(* BFS distances over free physical qubits, seeded at distance 1 from the
   free neighbours of an existing chain. Used qubits are impassable. *)
let distances_from_chain physical used chain =
  let n = Graph.size physical in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun p ->
      List.iter
        (fun (q, _) ->
          if (not used.(q)) && dist.(q) > 1 then begin
            dist.(q) <- 1;
            Queue.add q queue
          end)
        (Graph.neighbours physical p))
    chain;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (w, _) ->
        if (not used.(w)) && dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.neighbours physical v)
  done;
  dist

(* Multi-source BFS from the free neighbours of the growing chain, through
   free qubits, until reaching a qubit adjacent to the target chain. Returns
   the connecting path of free qubits (possibly empty when the chains are
   already adjacent), or None. *)
let connect physical used blocked chain_v target_chain =
  let in_target = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace in_target p ()) target_chain;
  let adjacent_to_target p =
    List.exists (fun (q, _) -> Hashtbl.mem in_target q) (Graph.neighbours physical p)
  in
  if List.exists adjacent_to_target chain_v then Some []
  else begin
    let n = Graph.size physical in
    let parent = Array.make n (-2) in
    (* -2 = unvisited, -1 = BFS source *)
    let queue = Queue.create () in
    List.iter
      (fun p ->
        List.iter
          (fun (q, _) ->
            if (not used.(q)) && (not (blocked q)) && parent.(q) = -2 then begin
              parent.(q) <- -1;
              Queue.add q queue
            end)
          (Graph.neighbours physical p))
      chain_v;
    let rec build_path p acc =
      if parent.(p) = -1 then p :: acc else build_path parent.(p) (p :: acc)
    in
    let rec search () =
      if Queue.is_empty queue then begin
        if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then begin
          let free_target =
            List.fold_left
              (fun acc p ->
                acc
                + List.length
                    (List.filter (fun (q, _) -> not used.(q)) (Graph.neighbours physical p)))
              0 target_chain
          in
          Printf.eprintf "connect: BFS exhausted; target free-nbrs=%d chain_v=%d\n"
            free_target (List.length chain_v)
        end;
        None
      end
      else begin
        let p = Queue.pop queue in
        if adjacent_to_target p then Some (build_path p [])
        else begin
          List.iter
            (fun (q, _) ->
              if (not used.(q)) && (not (blocked q)) && parent.(q) = -2 then begin
                parent.(q) <- p;
                Queue.add q queue
              end)
            (Graph.neighbours physical p);
          search ()
        end
      end
    in
    search ()
  end

let try_embed rng logical physical =
  let ln = Graph.size logical and pn = Graph.size physical in
  let used = Array.make pn false in
  let chains = Array.make ln [] in
  (* Vertex order: decreasing degree, random tiebreak. *)
  let order = Array.init ln Fun.id in
  Rng.shuffle rng order;
  Array.sort (fun a b -> compare (Graph.degree logical b) (Graph.degree logical a)) order;
  let mark p = used.(p) <- true in
  (* Enclosure avoidance: a free qubit is "reserved" when it is the unique
     free neighbour of a chain that still needs couplers to vertices not yet
     embedded; consuming it would wall that chain in and doom the try. *)
  let reserved ~current =
    let table = Hashtbl.create 16 in
    Array.iteri
      (fun u chain ->
        if chain <> [] then begin
          let pending =
            List.exists
              (fun (w, _) -> w <> current && chains.(w) = [])
              (Graph.neighbours logical u)
          in
          if pending then begin
            let free_neighbours = Hashtbl.create 8 in
            List.iter
              (fun p ->
                List.iter
                  (fun (q, _) -> if not used.(q) then Hashtbl.replace free_neighbours q ())
                  (Graph.neighbours physical p))
              chain;
            if Hashtbl.length free_neighbours = 1 then
              Hashtbl.iter (fun q () -> Hashtbl.replace table q ()) free_neighbours
          end
        end)
      chains;
    table
  in
  let free_qubits () =
    let acc = ref [] in
    for p = pn - 1 downto 0 do
      if not used.(p) then acc := p :: !acc
    done;
    !acc
  in
  let embed_vertex v =
    let embedded_neighbours =
      List.filter (fun (u, _) -> chains.(u) <> []) (Graph.neighbours logical v)
      |> List.map fst
    in
    let blocked_set = reserved ~current:v in
    let blocked q = Hashtbl.mem blocked_set q in
    if embedded_neighbours = [] then begin
      match List.filter (fun p -> not (blocked p)) (free_qubits ()) with
      | [] ->
          if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then
            Printf.eprintf "embed: no free seed for v%d\n" v;
          raise Exit
      | free ->
          let p = List.nth free (Rng.int rng (List.length free)) in
          chains.(v) <- [ p ];
          mark p
    end
    else begin
      let dists =
        List.map (fun u -> (u, distances_from_chain physical used chains.(u))) embedded_neighbours
      in
      (* Root: free qubit minimising total distance to the neighbour chains,
         counting unreachable chains with a large penalty (the chain will
         snake toward them from any of its qubits later). *)
      let penalty = 4 * pn in
      let best = ref None in
      for p = 0 to pn - 1 do
        if (not used.(p)) && not (blocked p) then begin
          let reachable_any = List.exists (fun (_, d) -> d.(p) < max_int) dists in
          if reachable_any then begin
            let cost =
              List.fold_left
                (fun acc (_, d) -> acc + if d.(p) < max_int then d.(p) else penalty)
                0 dists
            in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | Some _ | None -> best := Some (p, cost)
          end
        end
      done;
      let free_neighbours_of_chain chain =
        let table = Hashtbl.create 8 in
        List.iter
          (fun p ->
            List.iter
              (fun (q, _) -> if not used.(q) then Hashtbl.replace table q ())
              (Graph.neighbours physical p))
          chain;
        Hashtbl.fold (fun q () acc -> q :: acc) table []
      in
      (* Chain extension: when a target chain is nearly walled in, absorb its
         remaining free neighbours into the chain until it exposes enough
         fresh couplers for this connection plus its future pending edges. *)
      let rec ensure_open u needed budget =
        if budget = 0 then raise Exit;
        let free = free_neighbours_of_chain chains.(u) in
        if List.length free >= needed then ()
        else
          match free with
          | [] -> raise Exit
          | q :: _ ->
              mark q;
              chains.(u) <- q :: chains.(u);
              ensure_open u needed (budget - 1)
      in
      match !best with
      | None ->
          if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then
            Printf.eprintf "embed: no root for v%d (%d nbrs)\n" v
              (List.length embedded_neighbours);
          raise Exit
      | Some (root, _) ->
          let chain = ref [ root ] in
          mark root;
          (* Connect the growing chain to every neighbour chain in turn. *)
          List.iter
            (fun (u, _) ->
              let pending_other =
                List.exists
                  (fun (w, _) -> w <> v && chains.(w) = [])
                  (Graph.neighbours logical u)
              in
              ensure_open u (if pending_other then 2 else 1) 64;
              (* Recompute reservations as chains grow. *)
              let blocked_set = reserved ~current:v in
              let blocked q = Hashtbl.mem blocked_set q in
              match connect physical used blocked !chain chains.(u) with
              | None ->
                  if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then
                    Printf.eprintf "embed: cannot connect v%d to u%d\n" v u;
                  raise Exit
              | Some path ->
                  List.iter
                    (fun p ->
                      mark p;
                      chain := p :: !chain)
                    path)
            dists;
          chains.(v) <- !chain
    end
  in
  try
    Array.iter embed_vertex order;
    let physical_used = Array.fold_left (fun acc c -> acc + List.length c) 0 chains in
    let max_chain_length = Array.fold_left (fun acc c -> max acc (List.length c)) 0 chains in
    Some { chains; physical_used; max_chain_length }
  with Exit -> None

let is_valid ~logical ~physical embedding =
  let pn = Graph.size physical in
  let owner = Array.make pn (-1) in
  let ok = ref true in
  (* Disjoint and connected chains. *)
  Array.iteri
    (fun v chain ->
      if chain = [] then ok := false;
      List.iter
        (fun p ->
          if owner.(p) <> -1 then ok := false;
          owner.(p) <- v)
        chain;
      (* connectivity via BFS within the chain *)
      match chain with
      | [] -> ()
      | start :: _ ->
          let in_chain p = List.mem p chain in
          let seen = Hashtbl.create 8 in
          let queue = Queue.create () in
          Queue.add start queue;
          Hashtbl.replace seen start ();
          while not (Queue.is_empty queue) do
            let p = Queue.pop queue in
            List.iter
              (fun (q, _) ->
                if in_chain q && not (Hashtbl.mem seen q) then begin
                  Hashtbl.replace seen q ();
                  Queue.add q queue
                end)
              (Graph.neighbours physical p)
          done;
          if Hashtbl.length seen <> List.length chain then ok := false)
    embedding.chains;
  (* Every logical edge must have a physical coupler between chains. *)
  List.iter
    (fun (u, v, _) ->
      let coupled =
        List.exists
          (fun p ->
            List.exists (fun (q, _) -> List.mem q embedding.chains.(v)) (Graph.neighbours physical p))
          embedding.chains.(u)
      in
      if not coupled then ok := false)
    (Graph.edges logical);
  !ok

let embed ?(tries = 8) ~rng ~logical physical =
  if Graph.size logical = 0 then None
  else
    let rec attempt k =
      if k = 0 then None
      else
        match try_embed rng logical physical with
        | Some e when is_valid ~logical ~physical e -> Some e
        | Some _ ->
            if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then
              prerr_endline "embedding: candidate failed validation";
            attempt (k - 1)
        | None ->
            if Sys.getenv_opt "QCA_EMBED_DEBUG" <> None then
              prerr_endline "embedding: construction failed";
            attempt (k - 1)
    in
    attempt tries

let embed_qubo ?tries ~rng q ~physical =
  embed ?tries ~rng ~logical:(Qubo.interaction_graph q) physical

(* Triangular clique embedding: logical i = 4a + b occupies the vertical
   lane b of every cell in column a plus the horizontal lane b of every cell
   in row a; the two arms couple inside cell (a, a), and the arms of any two
   logicals cross in exactly one cell, where an intra-cell coupler links
   them. *)
let chimera_clique ~m ~n =
  if n > 4 * m then invalid_arg "Embedding.chimera_clique: n > 4m";
  if n < 1 then invalid_arg "Embedding.chimera_clique: n < 1";
  let chains =
    Array.init n (fun i ->
        let a = i / 4 and b = i mod 4 in
        let vertical = List.init m (fun row -> Chimera.index ~m ~row ~col:a ~k:b) in
        let horizontal = List.init m (fun col -> Chimera.index ~m ~row:a ~col ~k:(4 + b)) in
        vertical @ horizontal)
  in
  let physical_used = Array.fold_left (fun acc c -> acc + List.length c) 0 chains in
  { chains; physical_used; max_chain_length = 2 * m }

let max_clique_cities ~m = int_of_float (Float.sqrt (float_of_int (4 * m)))

type method_used = Heuristic | Clique

let embed_in_chimera ?tries ~rng ~m logical =
  let physical = Chimera.graph m in
  match embed ?tries ~rng ~logical physical with
  | Some e -> Some (e, Heuristic)
  | None ->
      let n = Graph.size logical in
      if n <= 4 * m then Some (chimera_clique ~m ~n, Clique) else None
