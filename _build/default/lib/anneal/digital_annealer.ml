module Rng = Qca_util.Rng

let node_count = 8192

let fits q = Qubo.size q <= node_count

type result = { bits : int array; energy : float; steps : int; offset_escapes : int }

let minimize ?(steps = 2000) ?(beta = 3.0) ?(offset_increment = 0.1) ~rng q =
  if not (fits q) then invalid_arg "Digital_annealer.minimize: exceeds 8192 nodes";
  let model, offset = Ising.of_qubo q in
  let n = model.Ising.n in
  let neighbour_index = Ising.build_neighbour_index model in
  let s = Ising.random_spins rng n in
  let current = ref (Ising.energy model s) in
  let best = ref !current and best_s = ref (Array.copy s) in
  let dynamic_offset = ref 0.0 in
  let escapes = ref 0 in
  for _ = 1 to steps do
    (* Parallel trial: evaluate every flip, collect the admissible ones. *)
    let admissible = ref [] in
    for i = 0 to n - 1 do
      let d = Ising.delta_energy model ~neighbour_index s i -. !dynamic_offset in
      if d <= 0.0 || Rng.float rng 1.0 < exp (-.beta *. d) then admissible := i :: !admissible
    done;
    match !admissible with
    | [] ->
        (* Stuck: raise the dynamic offset to admit uphill moves next step. *)
        dynamic_offset := !dynamic_offset +. offset_increment
    | choices ->
        if !dynamic_offset > 0.0 then incr escapes;
        dynamic_offset := 0.0;
        let pick = List.nth choices (Rng.int rng (List.length choices)) in
        let d = Ising.delta_energy model ~neighbour_index s pick in
        s.(pick) <- -s.(pick);
        current := !current +. d;
        if !current < !best then begin
          best := !current;
          best_s := Array.copy s
        end
  done;
  {
    bits = Ising.bits_of_spins !best_s;
    energy = !best +. offset;
    steps;
    offset_escapes = !escapes;
  }

let max_tsp_cities () = int_of_float (Float.sqrt (float_of_int node_count))
