(** Ising spin models: the annealer's native abstraction, isomorphic to QUBO
    via x = (1 + s) / 2 (section 3.3). *)

type t = {
  n : int;
  h : float array;  (** Local fields. *)
  couplings : (int * int * float) list;  (** Each pair once, [i < j]. *)
}

val energy : t -> int array -> float
(** [energy m s] with spins in {-1, +1}: sum h_i s_i + sum J_ij s_i s_j. *)

val of_qubo : Qubo.t -> t * float
(** Ising model plus constant offset: [qubo_energy x = ising_energy s + offset]. *)

val to_qubo : t -> Qubo.t * float
(** Inverse transformation. *)

val spins_of_bits : int array -> int array
(** 0 -> -1, 1 -> +1. *)

val bits_of_spins : int array -> int array

val random_spins : Qca_util.Rng.t -> int -> int array

val brute_force : t -> int array * float
(** Exact ground state by enumeration ([n <= 24]). *)

val delta_energy : t -> neighbour_index:(int -> (int * float) list) -> int array -> int -> float
(** Energy change from flipping one spin, given an adjacency accessor (see
    {!build_neighbour_index}); O(degree). *)

val build_neighbour_index : t -> int -> (int * float) list
(** Precomputed adjacency lookup for {!delta_energy} and the annealers. *)
