(** Analogue-digital interface (ADI): the pulse store of Figure 6.

    The micro-code unit's codewords index into this library; each entry is a
    sampled analogue envelope that would be fed to the AWG driving a qubit
    control line. *)

type channel_kind =
  | Microwave  (** Single-qubit XY drive. *)
  | Flux  (** Two-qubit flux pulses (CZ). *)
  | Readout  (** Measurement probe tone. *)

type pulse = {
  name : string;
  channel : channel_kind;
  duration_ns : int;
  amplitude : float;  (** Normalised peak amplitude in [-1, 1]. *)
  phase : float;  (** Drive phase in radians (IQ rotation). *)
  samples : float array;  (** Envelope sampled at 1 GS/s. *)
}

val gaussian_envelope : duration_ns:int -> amplitude:float -> float array
(** Truncated-Gaussian envelope (standard for microwave pulses). *)

val square_envelope : duration_ns:int -> amplitude:float -> float array
(** Flat-top envelope (flux and readout pulses). *)

val make :
  name:string -> channel:channel_kind -> duration_ns:int -> amplitude:float -> phase:float -> pulse

type library
(** Pulse store keyed by pulse name. *)

val empty : library
val add : library -> pulse -> library
val find : library -> string -> pulse option
val names : library -> string list
val size : library -> int

val superconducting_library : unit -> library
(** Pulses for the transmon platform: 20 ns Gaussians for x90/y90 family,
    40 ns flux pulse for cz, 300 ns readout tone. *)

val semiconducting_library : unit -> library
(** Pulses for the spin-qubit platform: 500 ns ESR bursts, 2 us exchange
    pulse, 6 us readout. *)

val energy : pulse -> float
(** Integrated squared amplitude — a proxy for the power budget discussion
    in section 2.5. *)
