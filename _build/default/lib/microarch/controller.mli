(** Cycle-accurate micro-architecture controller (Figure 6).

    Executes an eQASM program: maintains the timing grid, resolves mask
    registers, runs every quantum operation through the micro-code unit into
    per-channel timing queues, and drives the QX simulator as the "quantum
    chip" at the end of the pipeline (the pink block of Figure 7). *)

type technology = {
  tech_name : string;
  microcode : Microcode.table;
  pulses : Adi.library;
}

val superconducting : technology
val semiconducting : technology

type trace_event = {
  time_ns : int;
  qubit : int;
  opcode : int;
  pulse_name : string;
  duration_ns : int;
}

type run_stats = {
  total_ns : int;  (** Wall-clock length of the pulse schedule. *)
  bundles_issued : int;
  micro_ops : int;
  peak_queue_depth : int;
  timing_violations : int;
  software_phase_updates : int;  (** rz frame updates (no pulse emitted). *)
}

type result = {
  outcome : Qca_qx.Sim.outcome;  (** QX execution result. *)
  trace : trace_event list;  (** Pulse-level timeline, time-ordered. *)
  stats : run_stats;
}

val run :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  technology ->
  Qca_compiler.Eqasm.program ->
  result
(** Execute. Raises [Failure] on mnemonics missing from the micro-code
    table or pulses missing from the ADI library. [noise] defaults to ideal
    qubits so that functional behaviour can be checked separately from error
    modelling. *)

(** {2 Stepwise execution}

    The QISA interpreter (Figure 5) interleaves classical instructions with
    quantum ones, so it needs to feed the controller one instruction at a
    time and read measurement results back (FMR). *)

type session

val start :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  technology ->
  qubit_count:int ->
  cycle_ns:int ->
  session

val step : session -> Qca_compiler.Eqasm.instruction -> unit
(** Execute one eQASM instruction in the session. *)

val classical_bit : session -> int -> int
(** Latest measurement result of a qubit (-1 when never measured): the FMR
    (fetch measurement result) path. *)

val elapsed_cycles : session -> int

val finish : session -> result
(** Close the session and collect trace + statistics. *)

val trace_to_string : result -> string
(** Tabular pulse timeline (one line per micro-op). *)
