type event = { time_ns : int; micro_op : Microcode.micro_op }

type t = {
  channel : int;
  mutable events : event list;  (* sorted ascending by time *)
  mutable last_drained_ns : int;
  mutable peak : int;
  mutable violations : int;
  mutable pushed : int;
}

let create ~channel =
  { channel; events = []; last_drained_ns = -1; peak = 0; violations = 0; pushed = 0 }

let channel q = q.channel

let push q micro_op =
  let ev = { time_ns = micro_op.Microcode.time_ns; micro_op } in
  if ev.time_ns <= q.last_drained_ns then q.violations <- q.violations + 1;
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest -> if e.time_ns <= ev.time_ns then e :: insert rest else ev :: e :: rest
  in
  q.events <- insert q.events;
  q.pushed <- q.pushed + 1;
  q.peak <- max q.peak (List.length q.events)

let drain_until q deadline =
  let ready, pending = List.partition (fun e -> e.time_ns <= deadline) q.events in
  q.events <- pending;
  (match List.rev ready with
  | last :: _ -> q.last_drained_ns <- max q.last_drained_ns last.time_ns
  | [] -> ());
  ready

let drain_all q = drain_until q max_int

let pending q = List.length q.events
let peak_depth q = q.peak
let violations q = q.violations
let total_pushed q = q.pushed

type pool = t array

let create_pool ~channels = Array.init channels (fun channel -> create ~channel)
let queue pool c = pool.(c)
let push_pool pool micro_op = push pool.(micro_op.Microcode.qubit) micro_op

let drain_pool pool =
  Array.to_list (Array.map (fun q -> (q.channel, drain_all q)) pool)

let drain_pool_until pool deadline =
  Array.fold_left (fun acc q -> acc + List.length (drain_until q deadline)) 0 pool

let pool_stats pool =
  Array.fold_left
    (fun (total, peak, viol) q -> (total + q.pushed, max peak q.peak, viol + q.violations))
    (0, 0, 0) pool
