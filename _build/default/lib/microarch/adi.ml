type channel_kind = Microwave | Flux | Readout

type pulse = {
  name : string;
  channel : channel_kind;
  duration_ns : int;
  amplitude : float;
  phase : float;
  samples : float array;
}

let gaussian_envelope ~duration_ns ~amplitude =
  let n = max 1 duration_ns in
  let sigma = float_of_int n /. 4.0 in
  let mid = float_of_int (n - 1) /. 2.0 in
  Array.init n (fun i ->
      let x = (float_of_int i -. mid) /. sigma in
      amplitude *. exp (-0.5 *. x *. x))

let square_envelope ~duration_ns ~amplitude =
  let n = max 1 duration_ns in
  (* 2 ns linear rise/fall to avoid spectral splatter. *)
  let ramp = min 2 (n / 2) in
  Array.init n (fun i ->
      if i < ramp then amplitude *. float_of_int (i + 1) /. float_of_int (ramp + 1)
      else if i >= n - ramp then
        amplitude *. float_of_int (n - i) /. float_of_int (ramp + 1)
      else amplitude)

let make ~name ~channel ~duration_ns ~amplitude ~phase =
  let samples =
    match channel with
    | Microwave -> gaussian_envelope ~duration_ns ~amplitude
    | Flux | Readout -> square_envelope ~duration_ns ~amplitude
  in
  { name; channel; duration_ns; amplitude; phase; samples }

module String_map = Map.Make (String)

type library = pulse String_map.t

let empty = String_map.empty
let add lib p = String_map.add p.name p lib
let find lib name = String_map.find_opt name lib
let names lib = List.map fst (String_map.bindings lib)
let size lib = String_map.cardinal lib

let of_list pulses = List.fold_left add empty pulses

let superconducting_library () =
  of_list
    [
      make ~name:"x90" ~channel:Microwave ~duration_ns:20 ~amplitude:0.5 ~phase:0.0;
      make ~name:"mx90" ~channel:Microwave ~duration_ns:20 ~amplitude:0.5 ~phase:Float.pi;
      make ~name:"y90" ~channel:Microwave ~duration_ns:20 ~amplitude:0.5
        ~phase:(Float.pi /. 2.0);
      make ~name:"my90" ~channel:Microwave ~duration_ns:20 ~amplitude:0.5
        ~phase:(-.Float.pi /. 2.0);
      make ~name:"cz" ~channel:Flux ~duration_ns:40 ~amplitude:0.8 ~phase:0.0;
      make ~name:"measz" ~channel:Readout ~duration_ns:300 ~amplitude:0.3 ~phase:0.0;
      make ~name:"prepz" ~channel:Readout ~duration_ns:200 ~amplitude:0.1 ~phase:0.0;
    ]

let semiconducting_library () =
  of_list
    [
      make ~name:"x90" ~channel:Microwave ~duration_ns:500 ~amplitude:0.9 ~phase:0.0;
      make ~name:"mx90" ~channel:Microwave ~duration_ns:500 ~amplitude:0.9 ~phase:Float.pi;
      make ~name:"y90" ~channel:Microwave ~duration_ns:500 ~amplitude:0.9
        ~phase:(Float.pi /. 2.0);
      make ~name:"my90" ~channel:Microwave ~duration_ns:500 ~amplitude:0.9
        ~phase:(-.Float.pi /. 2.0);
      make ~name:"cz" ~channel:Flux ~duration_ns:2000 ~amplitude:0.6 ~phase:0.0;
      make ~name:"measz" ~channel:Readout ~duration_ns:6000 ~amplitude:0.2 ~phase:0.0;
      make ~name:"prepz" ~channel:Readout ~duration_ns:4000 ~amplitude:0.1 ~phase:0.0;
    ]

let energy p = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 p.samples
