lib/microarch/qisa.mli: Controller Qca_compiler Qca_qx Qca_util
