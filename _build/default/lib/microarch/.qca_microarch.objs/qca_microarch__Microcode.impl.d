lib/microarch/microcode.ml: List Map Printf String
