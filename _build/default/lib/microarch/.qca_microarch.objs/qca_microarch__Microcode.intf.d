lib/microarch/microcode.mli:
