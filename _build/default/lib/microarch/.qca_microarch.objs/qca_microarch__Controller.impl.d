lib/microarch/controller.ml: Adi Array Buffer Hashtbl List Microcode Option Printf Qca_circuit Qca_compiler Qca_qx Qca_util Sys Timing_queue
