lib/microarch/controller.ml: Adi Array Buffer List Microcode Option Printf Qca_circuit Qca_compiler Qca_qx Qca_util Timing_queue
