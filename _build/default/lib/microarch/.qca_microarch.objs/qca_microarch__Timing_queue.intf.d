lib/microarch/timing_queue.mli: Microcode
