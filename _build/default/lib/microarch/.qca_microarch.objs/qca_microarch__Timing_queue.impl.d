lib/microarch/timing_queue.ml: Array List Microcode
