lib/microarch/adi.mli:
