lib/microarch/adi.ml: Array Float List Map String
