lib/microarch/qisa.ml: Array Controller Hashtbl List Option Printf Qca_compiler String
