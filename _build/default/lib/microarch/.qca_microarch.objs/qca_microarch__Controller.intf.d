lib/microarch/controller.mli: Adi Microcode Qca_compiler Qca_qx Qca_util
