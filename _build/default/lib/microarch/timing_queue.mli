(** Per-channel timing queues (the "queues" block of Figures 5-7).

    Micro-operations are enqueued with absolute nanosecond trigger times;
    the queue drains them in time order and tracks occupancy statistics and
    timing violations (an event issued for a time already in the past —
    section 3.1's "precise up to the nanosecond" requirement). *)

type event = { time_ns : int; micro_op : Microcode.micro_op }

type t

val create : channel:int -> t
val channel : t -> int

val push : t -> Microcode.micro_op -> unit
(** Enqueue; records a violation if the op's trigger time precedes the last
    drained event on this channel. *)

val drain_until : t -> int -> event list
(** Pop all events with [time_ns <= deadline], in time order. *)

val drain_all : t -> event list

val pending : t -> int
val peak_depth : t -> int
(** Maximum number of simultaneously queued events seen. *)

val violations : t -> int
val total_pushed : t -> int

type pool
(** One queue per channel. *)

val create_pool : channels:int -> pool
val queue : pool -> int -> t
val push_pool : pool -> Microcode.micro_op -> unit
val drain_pool : pool -> (int * event list) list
(** Drain every queue; returns (channel, events) pairs. *)

val drain_pool_until : pool -> int -> int
(** Release every event due by the deadline across all queues (the
    controller calls this as the timing grid advances); returns how many
    events fired. *)

val pool_stats : pool -> int * int * int
(** (total events, peak depth over all queues, total violations). *)
