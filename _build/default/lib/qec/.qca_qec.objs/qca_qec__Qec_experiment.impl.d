lib/qec/qec_experiment.ml: Array Code List Pauli Qca_circuit Qca_util Tableau
