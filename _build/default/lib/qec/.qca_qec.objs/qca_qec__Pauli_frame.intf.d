lib/qec/pauli_frame.mli: Code Decoder Qca_util
