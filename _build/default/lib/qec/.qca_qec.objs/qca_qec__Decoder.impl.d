lib/qec/decoder.ml: Array Code Hashtbl List Option Pauli Qca_util
