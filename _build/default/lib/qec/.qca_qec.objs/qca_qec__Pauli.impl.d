lib/qec/pauli.ml: Array List Printf Qca_util String
