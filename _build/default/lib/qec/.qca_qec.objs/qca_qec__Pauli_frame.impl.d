lib/qec/pauli_frame.ml: Array Code Decoder List Option Pauli Qca_util
