lib/qec/pauli.mli: Qca_util
