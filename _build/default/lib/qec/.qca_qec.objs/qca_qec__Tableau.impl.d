lib/qec/tableau.ml: Array List Pauli Qca_circuit Qca_util String
