lib/qec/code.mli: Pauli Qca_circuit
