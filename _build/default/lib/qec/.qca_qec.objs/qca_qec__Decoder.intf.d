lib/qec/decoder.mli: Code Pauli Qca_util
