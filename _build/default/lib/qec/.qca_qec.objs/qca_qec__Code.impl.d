lib/qec/code.ml: Array Fun List Pauli Printf Qca_circuit Qca_util
