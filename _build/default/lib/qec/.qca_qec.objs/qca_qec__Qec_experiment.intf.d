lib/qec/qec_experiment.mli: Code Pauli Qca_util Tableau
