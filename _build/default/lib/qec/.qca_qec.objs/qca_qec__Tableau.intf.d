lib/qec/tableau.mli: Pauli Qca_circuit Qca_util
