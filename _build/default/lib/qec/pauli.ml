module Bits = Qca_util.Bits
module Rng = Qca_util.Rng

type t = { x : int; z : int }

let identity = { x = 0; z = 0 }

let single q = function
  | 'X' -> { x = 1 lsl q; z = 0 }
  | 'Y' -> { x = 1 lsl q; z = 1 lsl q }
  | 'Z' -> { x = 0; z = 1 lsl q }
  | c -> invalid_arg (Printf.sprintf "Pauli.single: unknown Pauli '%c'" c)

let of_string s =
  let acc = ref identity in
  String.iteri
    (fun q c ->
      match c with
      | 'I' -> ()
      | 'X' | 'Y' | 'Z' -> acc := { x = !acc.x lor (single q c).x; z = !acc.z lor (single q c).z }
      | _ -> invalid_arg (Printf.sprintf "Pauli.of_string: unknown Pauli '%c'" c))
    s;
  !acc

let to_string ~width p =
  String.init width (fun q ->
      match Bits.test p.x q, Bits.test p.z q with
      | false, false -> 'I'
      | true, false -> 'X'
      | true, true -> 'Y'
      | false, true -> 'Z')

let mul a b = { x = a.x lxor b.x; z = a.z lxor b.z }

let weight p = Bits.popcount (p.x lor p.z)

let commutes a b = Bits.parity ((a.x land b.z) lxor (a.z land b.x)) = 0

let is_identity p = p.x = 0 && p.z = 0
let equal a b = a.x = b.x && a.z = b.z

let support p =
  let mask = p.x lor p.z in
  let rec go q acc =
    if 1 lsl q > mask then List.rev acc
    else if Bits.test mask q then go (q + 1) (q :: acc)
    else go (q + 1) acc
  in
  go 0 []

let depolarizing_error rng n p =
  let acc = ref identity in
  for q = 0 to n - 1 do
    if Rng.bernoulli rng p then begin
      let which = [| 'X'; 'Y'; 'Z' |].(Rng.int rng 3) in
      acc := mul !acc (single q which)
    end
  done;
  !acc

let xz_error rng n ~px ~pz =
  let acc = ref identity in
  for q = 0 to n - 1 do
    if Rng.bernoulli rng px then acc := mul !acc (single q 'X');
    if Rng.bernoulli rng pz then acc := mul !acc (single q 'Z')
  done;
  !acc
