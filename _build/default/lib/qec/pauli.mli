(** n-qubit Pauli operators in symplectic (X-bits, Z-bits) representation,
    ignoring global phase. Supports up to 62 qubits. *)

type t = { x : int; z : int }
(** Qubit [q] carries X iff bit [q] of [x] is set, Z iff bit [q] of [z]; both
    set means Y. *)

val identity : t

val single : int -> char -> t
(** [single q 'X'|'Y'|'Z'] is the weight-one Pauli on qubit [q]. *)

val of_string : string -> t
(** ["XIZY"] reads left-to-right as qubits 0, 1, 2, 3. *)

val to_string : width:int -> t -> string

val mul : t -> t -> t
(** Product, phase discarded. *)

val weight : t -> int
(** Number of qubits acted on non-trivially. *)

val commutes : t -> t -> bool
(** Symplectic form: true iff the operators commute. *)

val is_identity : t -> bool
val equal : t -> t -> bool

val support : t -> int list
(** Sorted list of touched qubits. *)

val depolarizing_error : Qca_util.Rng.t -> int -> float -> t
(** [depolarizing_error rng n p]: iid error; each of the [n] qubits suffers
    X, Y or Z with probability [p/3] each. *)

val xz_error : Qca_util.Rng.t -> int -> px:float -> pz:float -> t
(** Independent X and Z flips per qubit. *)
