(** Circuit-level QEC simulation by Pauli-frame propagation.

    The code-capacity experiments in {!Decoder} put errors only on data
    qubits between perfect syndrome measurements. Real syndrome extraction
    (section 2.1) is itself built from noisy gates, and a single faulty CNOT
    spreads errors from ancilla to data — the reason thresholds drop an
    order of magnitude at circuit level. This module propagates a Pauli
    frame through the ancilla-based extraction circuit with depolarising
    gate errors and measurement flips, all in O(gates) per round. *)

type frame = { mutable x : int; mutable z : int }
(** Accumulated Pauli error, one bit per qubit (data then ancillas). *)

val propagate_cnot : frame -> int -> int -> unit
(** Standard Clifford propagation: X copies control -> target, Z copies
    target -> control. *)

val propagate_h : frame -> int -> unit
(** Exchange X and Z components on one qubit. *)

val inject_1q : Qca_util.Rng.t -> frame -> float -> int -> unit
(** Depolarising fault after a single-qubit location. *)

val inject_2q : Qca_util.Rng.t -> frame -> float -> int -> int -> unit
(** Uniform two-qubit depolarising fault (one of the 15 non-identity
    two-qubit Paulis). *)

type round_result = {
  syndrome : int;  (** Measured (noisy) syndrome bits. *)
  frame : frame;  (** Frame after the round (ancilla bits reset). *)
}

val noisy_round :
  rng:Qca_util.Rng.t ->
  gate_error:float ->
  measurement_error:float ->
  Code.t ->
  frame ->
  round_result
(** One ancilla-based syndrome-extraction round with faulty preps, CNOTs,
    Hadamards and measurements, starting from (and updating) the given data
    frame. *)

val logical_error_rate :
  ?rounds:int ->
  ?trials:int ->
  rng:Qca_util.Rng.t ->
  Code.t ->
  Decoder.t ->
  gate_error:float ->
  measurement_error:float ->
  float
(** Monte-Carlo circuit-level logical error rate: [rounds] (default =
    distance) noisy extraction rounds accumulate gate faults, then a final
    perfect round feeds the lookup decoder; a trial fails when the residual
    operator acts as a logical. *)
