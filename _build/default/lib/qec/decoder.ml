module Rng = Qca_util.Rng
module Bits = Qca_util.Bits

type t = { table : (int, Pauli.t) Hashtbl.t }

(* Enumerate all Paulis of exactly weight w on n qubits, calling f on each. *)
let iter_weight n w f =
  let paulis = [| 'X'; 'Y'; 'Z' |] in
  (* choose w qubit positions, then a Pauli letter for each *)
  let rec choose start remaining acc =
    if remaining = 0 then assign acc Pauli.identity
    else
      for q = start to n - remaining do
        choose (q + 1) (remaining - 1) (q :: acc)
      done
  and assign positions partial =
    match positions with
    | [] -> f partial
    | q :: rest ->
        Array.iter (fun letter -> assign rest (Pauli.mul partial (Pauli.single q letter))) paulis
  in
  choose 0 w []

let build ?max_weight code =
  let max_weight = Option.value ~default:code.Code.distance max_weight in
  let table = Hashtbl.create 256 in
  Hashtbl.replace table 0 Pauli.identity;
  for w = 1 to max_weight do
    iter_weight code.Code.n w (fun error ->
        let s = Code.syndrome code error in
        if not (Hashtbl.mem table s) then Hashtbl.replace table s error)
  done;
  { table }

let correction decoder syndrome =
  Option.value ~default:Pauli.identity (Hashtbl.find_opt decoder.table syndrome)

let covered_syndromes decoder = Hashtbl.length decoder.table

let decode_outcome code decoder error =
  let s = Code.syndrome code error in
  let fix = correction decoder s in
  let residual = Pauli.mul error fix in
  Code.logical_effect code residual

let logical_error_rate ?(trials = 2000) ~rng code decoder ~physical_error =
  let failures = ref 0 in
  for _ = 1 to trials do
    let error = Pauli.depolarizing_error rng code.Code.n physical_error in
    match decode_outcome code decoder error with
    | `None -> ()
    | `X | `Z | `Y -> incr failures
  done;
  float_of_int !failures /. float_of_int trials

let majority_syndrome syndromes bit_count =
  let rounds = List.length syndromes in
  let result = ref 0 in
  for b = 0 to bit_count - 1 do
    let votes = List.fold_left (fun acc s -> acc + if Bits.test s b then 1 else 0) 0 syndromes in
    if 2 * votes > rounds then result := Bits.set !result b
  done;
  !result

let logical_error_rate_with_measurement ?(trials = 2000) ?(rounds = 3) ~rng code decoder
    ~physical_error ~measurement_error =
  let bit_count = Array.length code.Code.stabilizers in
  let failures = ref 0 in
  for _ = 1 to trials do
    let error = Pauli.depolarizing_error rng code.Code.n physical_error in
    let true_syndrome = Code.syndrome code error in
    let noisy_round () =
      let s = ref true_syndrome in
      for b = 0 to bit_count - 1 do
        if Rng.bernoulli rng measurement_error then s := Bits.flip !s b
      done;
      !s
    in
    let observed = List.init rounds (fun _ -> noisy_round ()) in
    let voted = majority_syndrome observed bit_count in
    let fix = correction decoder voted in
    let residual = Pauli.mul error fix in
    (match Code.logical_effect code residual with
    | `None ->
        (* The residual may still carry a nonzero syndrome (wrong vote):
           count that as failure too, since the state left the code space. *)
        if Code.syndrome code residual <> 0 then incr failures
    | `X | `Z | `Y -> incr failures)
  done;
  float_of_int !failures /. float_of_int trials
