(** Stabilizer (CHP) simulator after Aaronson & Gottesman, "Improved
    simulation of stabilizer circuits".

    Simulates Clifford circuits in polynomial time — the workhorse for
    circuit-level QEC where the state-vector simulator would be too small.
    Cross-validated against the QX state vector in the test suite. *)

type t

val create : int -> t
(** |0...0> on n qubits. *)

val qubit_count : t -> int
val copy : t -> t

val h : t -> int -> unit
val s : t -> int -> unit
val sdag : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cnot : t -> int -> int -> unit
(** [cnot tab control target]. *)

val cz : t -> int -> int -> unit
val swap : t -> int -> int -> unit

val apply_pauli : t -> Pauli.t -> unit
(** Apply an error operator. *)

val apply_gate : t -> Qca_circuit.Gate.unitary -> int array -> unit
(** Apply any Clifford from the shared gate set; raises [Invalid_argument]
    for non-Clifford gates. *)

val measure : t -> Qca_util.Rng.t -> int -> int
(** Z-basis measurement with collapse; deterministic outcomes are returned
    without consuming randomness. *)

val expectation_z : t -> int -> int option
(** [Some 0]/[Some 1] when the Z measurement of the qubit is deterministic
    (+1/-1 eigenstate), [None] when random. *)

val stabilizer_strings : t -> string list
(** Current stabilizer generators, with sign prefix, e.g. ["+XX"; "-ZZ"]. *)
