(** QEC experiment harnesses: circuit-level syndrome extraction on the
    stabilizer simulator and the fault-tolerance overhead accounting behind
    the paper's "more than 90% of the computational activity" claim. *)

val prepare_logical_zero : Code.t -> Qca_util.Rng.t -> Tableau.t
(** Project |0...0> into the code space (and the +1 logical-Z eigenstate) by
    measuring every stabilizer and applying frame corrections for -1
    outcomes, using the lookup decoder's machinery. The returned tableau has
    [n + ancilla_count] qubits (ancillas reset to |0>). *)

val extract_syndrome : Code.t -> Tableau.t -> Qca_util.Rng.t -> int
(** Run one circuit-level syndrome round (ancilla-based, {!Code.syndrome_circuit})
    and return the measured syndrome bits. *)

val circuit_level_syndrome_matches : Code.t -> Pauli.t -> Qca_util.Rng.t -> bool
(** Inject a data error into a fresh logical zero and check the measured
    circuit-level syndrome equals the algebraic {!Code.syndrome}. *)

type overhead = {
  qec_ops_per_round : int;  (** Gates + preps + measures in one round. *)
  logical_op_cost : int;  (** Physical ops for one transversal logical op. *)
  rounds_per_logical_op : int;
  qec_fraction : float;  (** Share of physical ops spent on error correction. *)
  physical_qubits : int;  (** Data + ancilla per logical qubit. *)
}

val overhead_of : ?rounds_per_logical_op:int -> Code.t -> overhead
(** The paper quotes >90% of activity going to fault tolerance; this
    computes the exact share for a given code (default one round per
    logical op, the minimum for repeated stabilization). *)
