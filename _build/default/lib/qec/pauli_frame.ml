module Rng = Qca_util.Rng
module Bits = Qca_util.Bits

type frame = { mutable x : int; mutable z : int }

let propagate_cnot f control target =
  if Bits.test f.x control then f.x <- Bits.flip f.x target;
  if Bits.test f.z target then f.z <- Bits.flip f.z control

let propagate_h f q =
  let had_x = Bits.test f.x q and had_z = Bits.test f.z q in
  if had_x <> had_z then begin
    f.x <- Bits.flip f.x q;
    f.z <- Bits.flip f.z q
  end

let inject_1q rng f p q =
  if Rng.bernoulli rng p then begin
    match Rng.int rng 3 with
    | 0 -> f.x <- Bits.flip f.x q
    | 1 ->
        f.x <- Bits.flip f.x q;
        f.z <- Bits.flip f.z q
    | _ -> f.z <- Bits.flip f.z q
  end

let inject_2q rng f p a b =
  if Rng.bernoulli rng p then begin
    (* pick one of the 15 non-identity two-qubit Paulis: encode each
       single-qubit part as 0=I 1=X 2=Y 3=Z, skipping (0, 0) *)
    let k = 1 + Rng.int rng 15 in
    let part q code =
      match code with
      | 0 -> ()
      | 1 -> f.x <- Bits.flip f.x q
      | 2 ->
          f.x <- Bits.flip f.x q;
          f.z <- Bits.flip f.z q
      | _ -> f.z <- Bits.flip f.z q
    in
    part a (k / 4);
    part b (k mod 4)
  end

type round_result = { syndrome : int; frame : frame }

let noisy_round ~rng ~gate_error ~measurement_error code f =
  let n = code.Code.n in
  let syndrome = ref 0 in
  Array.iteri
    (fun i stab ->
      let ancilla = n + i in
      (* fresh ancilla (prep fault = X error) *)
      f.x <- Bits.clear f.x ancilla;
      f.z <- Bits.clear f.z ancilla;
      inject_1q rng f gate_error ancilla;
      let support = Pauli.support stab in
      let is_x = stab.Pauli.x <> 0 in
      if is_x then begin
        propagate_h f ancilla;
        inject_1q rng f gate_error ancilla;
        List.iter
          (fun q ->
            propagate_cnot f ancilla q;
            inject_2q rng f gate_error ancilla q)
          support;
        propagate_h f ancilla;
        inject_1q rng f gate_error ancilla
      end
      else
        List.iter
          (fun q ->
            propagate_cnot f q ancilla;
            inject_2q rng f gate_error ancilla q)
          support;
      (* Z-basis measurement reads the ancilla's X-frame bit *)
      let raw = if Bits.test f.x ancilla then 1 else 0 in
      let observed = if Rng.bernoulli rng measurement_error then 1 - raw else raw in
      if observed = 1 then syndrome := Bits.set !syndrome i)
    code.Code.stabilizers;
  { syndrome = !syndrome; frame = f }

let data_error_of_frame code f =
  let mask = (1 lsl code.Code.n) - 1 in
  { Pauli.x = f.x land mask; z = f.z land mask }

let logical_error_rate ?rounds ?(trials = 2000) ~rng code decoder ~gate_error
    ~measurement_error =
  let rounds = Option.value ~default:code.Code.distance rounds in
  let failures = ref 0 in
  for _ = 1 to trials do
    let f = { x = 0; z = 0 } in
    for _ = 1 to rounds do
      ignore (noisy_round ~rng ~gate_error ~measurement_error code f)
    done;
    (* final perfect extraction: the true syndrome of the data frame *)
    let error = data_error_of_frame code f in
    let syndrome = Code.syndrome code error in
    let fix = Decoder.correction decoder syndrome in
    let residual = Pauli.mul error fix in
    (match Code.logical_effect code residual with
    | `None -> if Code.syndrome code residual <> 0 then incr failures
    | `X | `Z | `Y -> incr failures)
  done;
  float_of_int !failures /. float_of_int trials
