(** Minimum-weight lookup decoder.

    Built by enumerating Pauli errors in order of increasing weight and
    recording the first (hence minimal-weight) error producing each
    syndrome — exact minimum-weight decoding for the small codes here. *)

type t

val build : ?max_weight:int -> Code.t -> t
(** Enumerate errors up to [max_weight] (default: the code distance). *)

val correction : t -> int -> Pauli.t
(** Correction operator for a syndrome; the identity for syndrome 0 or for
    syndromes outside the table (heralded failure). *)

val covered_syndromes : t -> int
(** Number of distinct syndromes in the table. *)

val decode_outcome : Code.t -> t -> Pauli.t -> [ `None | `X | `Z | `Y ]
(** Full cycle on a given data error: syndrome, correction, classify the
    residual's logical effect. [`None] means successful correction. *)

val logical_error_rate :
  ?trials:int ->
  rng:Qca_util.Rng.t ->
  Code.t ->
  t ->
  physical_error:float ->
  float
(** Monte-Carlo code-capacity logical error rate under iid depolarising
    noise at the given physical rate. *)

val logical_error_rate_with_measurement :
  ?trials:int ->
  ?rounds:int ->
  rng:Qca_util.Rng.t ->
  Code.t ->
  t ->
  physical_error:float ->
  measurement_error:float ->
  float
(** Repeated syndrome extraction with faulty measurements: each round's
    syndrome bits flip independently with [measurement_error]; the decoder
    acts on the majority-vote syndrome over [rounds] (default 3). *)
