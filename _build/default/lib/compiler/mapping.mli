(** Qubit placement and routing (section 2.6 "placement and routing").

    Real and realistic qubits only couple to nearest neighbours, so two-qubit
    gates on distant logical qubits require routing the qubit state across
    the topology with SWAPs (the compiler-inserted MOVE operations of
    sections 2.6 and 3.2). *)

type strategy =
  | Greedy  (** Walk one endpoint along the shortest path. *)
  | Lookahead of int
      (** Choose which endpoint to move by scoring the next [k] two-qubit
          gates' total distance. *)

type placement =
  | Trivial  (** Logical qubit i starts on physical qubit i. *)
  | By_degree
      (** Most-interacting logical qubits on best-connected physical qubits. *)

type result = {
  circuit : Qca_circuit.Circuit.t;  (** Physical-operand circuit with SWAPs. *)
  initial_layout : int array;  (** [initial_layout.(logical) = physical]. *)
  final_layout : int array;
  swaps_added : int;
}

val run :
  ?strategy:strategy ->
  ?placement:placement ->
  Platform.t ->
  Qca_circuit.Circuit.t ->
  result
(** Route a circuit onto the platform topology. The input circuit may use at
    most [Platform.qubit_count] qubits; the result uses physical indices.
    Raises [Invalid_argument] if the circuit needs more qubits than the
    platform offers or contains >2-qubit unitaries (decompose first). *)

val overhead : Platform.t -> result -> original:Qca_circuit.Circuit.t -> float * float
(** [(gate_overhead, latency_overhead)]: ratios of routed/original two-qubit
    gate count and of routed/original ASAP makespan. *)
