(** Operation scheduling (section 2.6 "scheduling of operations").

    Maps an instruction list onto cycle-accurate start times while respecting
    qubit dependencies, gate durations from the platform, and optionally a
    limit on simultaneously executing two-qubit gates (the paper's "number of
    available frequencies" constraint). *)

type entry = { start_cycle : int; duration : int; instr : Qca_circuit.Gate.t }

type t = {
  entries : entry list;  (** Sorted by start cycle, ties in program order. *)
  makespan : int;  (** Total cycles to drain the schedule. *)
  qubit_count : int;
}

type policy =
  | Asap  (** Earliest start respecting dependencies. *)
  | Alap  (** Latest start that does not stretch the ASAP makespan. *)

val run :
  ?policy:policy -> ?max_parallel_two_qubit:int -> Platform.t -> Qca_circuit.Circuit.t -> t
(** Schedule a circuit. [max_parallel_two_qubit] bounds how many two-qubit
    gates may overlap in any cycle (unbounded when omitted). *)

val parallelism : t -> float
(** Average number of instructions in flight per busy cycle. *)

val max_concurrency : t -> int
(** Peak number of instructions overlapping in one cycle. *)

val validate : t -> bool
(** No two entries overlap on a qubit; program dependencies preserved. *)

val to_string : t -> string
(** One line per entry: cycle, instruction. *)
