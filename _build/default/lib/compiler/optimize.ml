module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit

type stats = { removed_pairs : int; merged_rotations : int; dropped_identities : int }

let two_pi = 2.0 *. Float.pi

(* Normalise a rotation angle into (-pi, pi]. *)
let normalize_angle theta =
  let t = Float.rem theta two_pi in
  let t = if t > Float.pi then t -. two_pi else t in
  if t <= -.Float.pi then t +. two_pi else t

let is_null_rotation theta = Float.abs (normalize_angle theta) < 1e-12

let is_droppable = function
  | Gate.Unitary (Gate.I, _) -> true
  | Gate.Unitary (Gate.Rx theta, _) | Gate.Unitary (Gate.Ry theta, _)
  | Gate.Unitary (Gate.Rz theta, _) | Gate.Unitary (Gate.Cphase theta, _) ->
      is_null_rotation theta
  | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ ->
      false

(* Merge two same-axis rotations into one; None when not mergeable. *)
let merge a b =
  match a, b with
  | Gate.Unitary (Gate.Rx t1, ops), Gate.Unitary (Gate.Rx t2, ops') when ops = ops' ->
      Some (Gate.Unitary (Gate.Rx (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Ry t1, ops), Gate.Unitary (Gate.Ry t2, ops') when ops = ops' ->
      Some (Gate.Unitary (Gate.Ry (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Rz t1, ops), Gate.Unitary (Gate.Rz t2, ops') when ops = ops' ->
      Some (Gate.Unitary (Gate.Rz (normalize_angle (t1 +. t2)), ops))
  | Gate.Unitary (Gate.Cphase t1, ops), Gate.Unitary (Gate.Cphase t2, ops') when ops = ops'
    ->
      Some (Gate.Unitary (Gate.Cphase (normalize_angle (t1 +. t2)), ops))
  | _, _ -> None

let cancels a b =
  match a, b with
  | Gate.Unitary (u, ops), Gate.Unitary (v, ops') ->
      ops = ops' && Gate.equal (Gate.Unitary (Gate.adjoint u, ops)) (Gate.Unitary (v, ops'))
  | _, _ -> false

let shares_qubit a b =
  let qa = Gate.qubits a and qb = Gate.qubits b in
  Array.exists (fun q -> Array.exists (( = ) q) qb) qa

(* One sweep over the instruction array. For each instruction, find its
   dependency successor (next instruction sharing a qubit); cancel or merge
   when possible. Returns the new list and whether anything changed. *)
let sweep instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let removed = Array.make n false in
  let removed_pairs = ref 0 and merged_rotations = ref 0 and dropped = ref 0 in
  (* Drop identities first. *)
  Array.iteri
    (fun i instr ->
      if is_droppable instr then begin
        removed.(i) <- true;
        incr dropped
      end)
    arr;
  for i = 0 to n - 1 do
    if not removed.(i) then begin
      (* Find the next live instruction sharing a qubit with arr.(i). *)
      let rec successor j =
        if j >= n then None
        else if (not removed.(j)) && shares_qubit arr.(i) arr.(j) then Some j
        else successor (j + 1)
      in
      match successor (i + 1) with
      | None -> ()
      | Some j ->
          if cancels arr.(i) arr.(j) then begin
            removed.(i) <- true;
            removed.(j) <- true;
            incr removed_pairs
          end
          else begin
            match merge arr.(i) arr.(j) with
            | Some combined ->
                removed.(i) <- true;
                incr merged_rotations;
                if is_droppable combined then begin
                  removed.(j) <- true;
                  incr dropped
                end
                else arr.(j) <- combined
            | None -> ()
          end
    end
  done;
  let result = ref [] in
  for i = n - 1 downto 0 do
    if not removed.(i) then result := arr.(i) :: !result
  done;
  let stats =
    {
      removed_pairs = !removed_pairs;
      merged_rotations = !merged_rotations;
      dropped_identities = !dropped;
    }
  in
  (!result, stats)

let add_stats a b =
  {
    removed_pairs = a.removed_pairs + b.removed_pairs;
    merged_rotations = a.merged_rotations + b.merged_rotations;
    dropped_identities = a.dropped_identities + b.dropped_identities;
  }

let no_change s = s.removed_pairs = 0 && s.merged_rotations = 0 && s.dropped_identities = 0

let run circuit =
  let rec fixpoint instrs acc budget =
    if budget = 0 then (instrs, acc)
    else
      let instrs', stats = sweep instrs in
      if no_change stats then (instrs', acc)
      else fixpoint instrs' (add_stats acc stats) (budget - 1)
  in
  let zero = { removed_pairs = 0; merged_rotations = 0; dropped_identities = 0 } in
  let instrs, stats = fixpoint (Circuit.instructions circuit) zero 64 in
  ( Circuit.of_list ~name:(Circuit.name circuit) (Circuit.qubit_count circuit) instrs,
    stats )

let run_circuit circuit = fst (run circuit)
