lib/compiler/mapping.mli: Platform Qca_circuit
