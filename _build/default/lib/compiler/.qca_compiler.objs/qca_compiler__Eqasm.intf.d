lib/compiler/eqasm.mli: Platform Schedule
