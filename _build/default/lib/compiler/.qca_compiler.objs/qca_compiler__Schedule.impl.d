lib/compiler/schedule.ml: Array List Platform Printf Qca_circuit String
