lib/compiler/compiler.ml: Buffer Decompose Eqasm List Mapping Optimize Platform Printf Qca_circuit Qca_qx Schedule
