lib/compiler/decompose.ml: Float List Platform Printf Qca_circuit Qca_util
