lib/compiler/platform.mli: Qca_circuit Qca_qx Qca_util
