lib/compiler/openql.mli: Compiler Mapping Platform Qca_circuit Qca_qx Qca_util
