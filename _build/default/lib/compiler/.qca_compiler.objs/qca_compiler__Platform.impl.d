lib/compiler/platform.ml: List Printf Qca_circuit Qca_qx Qca_util
