lib/compiler/decompose.mli: Platform Qca_circuit
