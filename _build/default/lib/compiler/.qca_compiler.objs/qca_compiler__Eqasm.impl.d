lib/compiler/eqasm.ml: Array Buffer Hashtbl List Option Platform Printf Qca_circuit Schedule String
