lib/compiler/schedule.mli: Platform Qca_circuit
