lib/compiler/optimize.mli: Qca_circuit
