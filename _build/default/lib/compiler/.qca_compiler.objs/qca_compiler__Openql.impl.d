lib/compiler/openql.ml: Array Compiler List Qca_circuit Qca_qx
