lib/compiler/compiler.mli: Eqasm Mapping Platform Qca_circuit Qca_qx Qca_util Schedule
