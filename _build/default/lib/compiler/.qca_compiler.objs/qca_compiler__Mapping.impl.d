lib/compiler/mapping.ml: Array Fun List Platform Qca_circuit Qca_util Queue Schedule
