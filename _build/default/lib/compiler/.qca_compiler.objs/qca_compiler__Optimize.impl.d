lib/compiler/optimize.ml: Array Float Qca_circuit
