(** OpenQL-style programming frontend (section 2.4).

    Mirrors the OpenQL API the paper describes: a [program] owns named
    [kernel]s; kernels accumulate gates imperatively; classical structure
    (loops, measurement-conditioned gates) wraps the quantum logic; the
    program lowers to cQASM and compiles through the pass manager.

    {[
      let k = Openql.kernel ~name:"entangle" ~qubits:2 in
      Openql.h k 0;
      Openql.cnot k 0 1;
      Openql.measure_all k;
      let p = Openql.program ~name:"bell" ~qubits:2 in
      Openql.add_kernel p k;
      let histogram = Openql.simulate ~shots:1000 p in
      ...
    ]} *)

type kernel
type program

(* --- kernels --- *)

val kernel : name:string -> qubits:int -> kernel
val kernel_name : kernel -> string

val gate : kernel -> Qca_circuit.Gate.unitary -> int list -> unit
(** Append any unitary by operand list; raises on arity mismatch. *)

val x : kernel -> int -> unit
val y : kernel -> int -> unit
val z : kernel -> int -> unit
val h : kernel -> int -> unit
val s : kernel -> int -> unit
val t : kernel -> int -> unit
val rx : kernel -> int -> float -> unit
val ry : kernel -> int -> float -> unit
val rz : kernel -> int -> float -> unit
val cnot : kernel -> int -> int -> unit
val cz : kernel -> int -> int -> unit
val toffoli : kernel -> int -> int -> int -> unit

val prepare : kernel -> int -> unit
val measure : kernel -> int -> unit
val measure_all : kernel -> unit
val barrier : kernel -> int list -> unit

val cond : kernel -> bit:int -> Qca_circuit.Gate.unitary -> int list -> unit
(** Measurement-conditioned gate (classical decision construct). *)

val circuit_of_kernel : kernel -> Qca_circuit.Circuit.t

(* --- programs --- *)

val program : name:string -> qubits:int -> program
val program_name : program -> string
val qubit_count : program -> int

val add_kernel : ?iterations:int -> program -> kernel -> unit
(** Append a kernel; [iterations] > 1 is the classical for-loop construct
    (lowered to a cQASM subcircuit repetition). Kernel qubit count must
    match the program's. *)

val for_loop : program -> count:int -> kernel -> unit
(** [add_kernel ~iterations:count]. *)

val to_cqasm_program : program -> Qca_circuit.Cqasm.program
val to_cqasm : program -> string
val to_circuit : program -> Qca_circuit.Circuit.t
(** Flattened (loops unrolled). *)

val compile :
  ?strategy:Mapping.strategy ->
  ?placement:Mapping.placement ->
  platform:Platform.t ->
  mode:Compiler.mode ->
  program ->
  Compiler.output

val simulate :
  ?noise:Qca_qx.Noise.model ->
  ?rng:Qca_util.Rng.t ->
  ?shots:int ->
  program ->
  (string * int) list
(** Execute the flattened program on QX (default 1024 shots, ideal qubits). *)
