module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Graph = Qca_util.Graph

type strategy = Greedy | Lookahead of int
type placement = Trivial | By_degree

type result = {
  circuit : Circuit.t;
  initial_layout : int array;
  final_layout : int array;
  swaps_added : int;
}

(* Interaction count per logical qubit, for the placement heuristic. *)
let interaction_degrees circuit =
  let n = Circuit.qubit_count circuit in
  let deg = Array.make n 0 in
  List.iter
    (fun instr ->
      match instr with
      | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u >= 2 ->
          Array.iter (fun q -> deg.(q) <- deg.(q) + 1) ops
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ ->
          ())
    (Circuit.instructions circuit);
  deg

(* BFS order from the best-connected physical qubit. *)
let physical_order coupling =
  let n = Graph.size coupling in
  let start = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree coupling v > Graph.degree coupling !start then start := v
  done;
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add !start queue;
  seen.(!start) <- true;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun (u, _) ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.add u queue
        end)
      (Graph.neighbours coupling v)
  done;
  (* Disconnected leftovers, if any. *)
  for v = 0 to n - 1 do
    if not seen.(v) then order := v :: !order
  done;
  List.rev !order

let initial_layout placement coupling circuit physical_count =
  let logical_count = Circuit.qubit_count circuit in
  match placement with
  | Trivial -> Array.init logical_count Fun.id
  | By_degree ->
      let deg = interaction_degrees circuit in
      let logical_by_degree =
        List.sort
          (fun a b -> compare (deg.(b), a) (deg.(a), b))
          (List.init logical_count Fun.id)
      in
      let phys = physical_order coupling in
      let layout = Array.make logical_count (-1) in
      List.iteri
        (fun i l -> if i < physical_count then layout.(l) <- List.nth phys i)
        logical_by_degree;
      layout

type state = {
  mutable layout : int array;  (** logical -> physical *)
  mutable occupant : int array;  (** physical -> logical, or -1 *)
}

let swap_physical st p1 p2 =
  let l1 = st.occupant.(p1) and l2 = st.occupant.(p2) in
  st.occupant.(p1) <- l2;
  st.occupant.(p2) <- l1;
  if l1 >= 0 then st.layout.(l1) <- p2;
  if l2 >= 0 then st.layout.(l2) <- p1

(* Remaining two-qubit interactions, used by the lookahead scorer. *)
let upcoming_pairs instrs =
  List.filter_map
    (fun instr ->
      match instr with
      | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u = 2 ->
          Some (ops.(0), ops.(1))
      | Gate.Unitary _ | Gate.Conditional _ | Gate.Prep _ | Gate.Measure _
      | Gate.Barrier _ ->
          None)
    instrs

let hop coupling a b =
  match Graph.hop_distance coupling a b with
  | Some d -> d
  | None -> invalid_arg "Mapping: physical topology is disconnected"

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let lookahead_score coupling st pairs =
  List.fold_left
    (fun acc (l1, l2) -> acc + hop coupling st.layout.(l1) st.layout.(l2))
    0 pairs

let run ?(strategy = Greedy) ?(placement = Trivial) platform circuit =
  let physical_count = platform.Platform.qubit_count in
  if Circuit.qubit_count circuit > physical_count then
    invalid_arg "Mapping.run: circuit larger than platform";
  let coupling = Platform.connectivity platform in
  let layout = initial_layout placement coupling circuit physical_count in
  let st =
    {
      layout = Array.copy layout;
      occupant =
        (let occ = Array.make physical_count (-1) in
         Array.iteri (fun l p -> occ.(p) <- l) layout;
         occ);
    }
  in
  let out = ref (Circuit.create ~name:(Circuit.name circuit ^ "_mapped") physical_count) in
  (* Classical bits are indexed by the physical qubit that was measured, so
     record where each logical qubit sat when it was last measured. *)
  let measured_at = Array.make (Circuit.qubit_count circuit) (-1) in
  let swaps = ref 0 in
  let emit instr = out := Circuit.add !out instr in
  let emit_swap p1 p2 =
    emit (Gate.Unitary (Gate.Swap, [| p1; p2 |]));
    swap_physical st p1 p2;
    incr swaps
  in
  (* Route logical pair (l1, l2) until their physical homes are coupled. *)
  let route future l1 l2 =
    let rec step () =
      let p1 = st.layout.(l1) and p2 = st.layout.(l2) in
      if not (Platform.are_coupled platform p1 p2) then begin
        match Graph.shortest_path coupling p1 p2 with
        | None | Some ([] | [ _ ]) ->
            invalid_arg "Mapping: no route between physical qubits"
        | Some (_ :: next_from_p1 :: _ as path) ->
            let move_from_p1 () = emit_swap p1 next_from_p1 in
            let move_from_p2 () =
              match List.rev path with
              | _ :: next_from_p2 :: _ -> emit_swap p2 next_from_p2
              | [] | [ _ ] -> assert false
            in
            begin
              match strategy with
              | Greedy -> move_from_p1 ()
              | Lookahead k ->
                  (* Try both endpoints; keep the swap that minimises the
                     summed distance of the next k interactions. *)
                  let pairs = take k (upcoming_pairs future) in
                  move_from_p1 ();
                  let score1 = lookahead_score coupling st pairs in
                  (* undo and try the other end *)
                  swap_physical st p1 next_from_p1;
                  (match List.rev path with
                  | _ :: next_from_p2 :: _ ->
                      swap_physical st p2 next_from_p2;
                      let score2 = lookahead_score coupling st pairs in
                      swap_physical st p2 next_from_p2;
                      (* Remove the provisional swap instruction we emitted. *)
                      let instrs = Circuit.instructions !out in
                      let without_last = List.filteri (fun i _ -> i < List.length instrs - 1) instrs in
                      out := Circuit.of_list ~name:(Circuit.name !out) physical_count without_last;
                      decr swaps;
                      if score1 <= score2 then emit_swap p1 next_from_p1
                      else move_from_p2 ()
                  | [] | [ _ ] -> assert false)
            end;
            step ()
      end
    in
    step ()
  in
  let rec process = function
    | [] -> ()
    | instr :: future ->
        begin
          match instr with
          | (Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops)) when Gate.arity u = 2 ->
              route future ops.(0) ops.(1);
              emit (Gate.map_qubits (fun l -> st.layout.(l)) instr)
          | (Gate.Unitary (u, _) | Gate.Conditional (_, u, _)) when Gate.arity u > 2 ->
              invalid_arg "Mapping.run: decompose >2-qubit gates before mapping"
          | Gate.Conditional (bit, u, ops) ->
              let physical_bit =
                if measured_at.(bit) >= 0 then measured_at.(bit) else st.layout.(bit)
              in
              emit
                (Gate.Conditional (physical_bit, u, Array.map (fun l -> st.layout.(l)) ops))
          | Gate.Measure q ->
              measured_at.(q) <- st.layout.(q);
              emit (Gate.Measure st.layout.(q))
          | Gate.Unitary _ | Gate.Prep _ | Gate.Barrier _ ->
              emit (Gate.map_qubits (fun l -> st.layout.(l)) instr)
        end;
        process future
  in
  process (Circuit.instructions circuit);
  { circuit = !out; initial_layout = layout; final_layout = Array.copy st.layout; swaps_added = !swaps }

let overhead platform result ~original =
  let routed_2q = Circuit.two_qubit_gate_count result.circuit in
  let original_2q = max 1 (Circuit.two_qubit_gate_count original) in
  let gate_overhead = float_of_int routed_2q /. float_of_int original_2q in
  let widened =
    Circuit.of_list ~name:(Circuit.name original) platform.Platform.qubit_count
      (Circuit.instructions original)
  in
  let t_original = (Schedule.run platform widened).Schedule.makespan in
  let t_routed = (Schedule.run platform result.circuit).Schedule.makespan in
  let latency_overhead = float_of_int t_routed /. float_of_int (max 1 t_original) in
  (gate_overhead, latency_overhead)
