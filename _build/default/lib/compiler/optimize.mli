(** Peephole circuit optimisation: gate cancellation and rotation merging. *)

type stats = {
  removed_pairs : int;  (** Adjacent U, U-dagger pairs cancelled. *)
  merged_rotations : int;  (** Same-axis rotation pairs folded into one. *)
  dropped_identities : int;  (** I gates and ~0-angle rotations removed. *)
}

val run : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t * stats
(** Iterate cancellation, merging and identity removal to a fixed point.
    Cancellation only fires when two gates are adjacent in the dependency
    order (no intervening instruction shares a qubit with them). *)

val run_circuit : Qca_circuit.Circuit.t -> Qca_circuit.Circuit.t
(** [run] without the statistics. *)
