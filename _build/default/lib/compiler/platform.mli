(** Platform configuration files.

    The paper's key retargeting claim (section 3.1) is that moving the same
    micro-architecture between superconducting and semiconducting technologies
    only required a new compiler configuration file and micro-code table.
    This module is that configuration file. *)

type topology =
  | All_to_all  (** Perfect qubits: no connectivity constraint. *)
  | Grid of int * int  (** rows x cols nearest-neighbour lattice. *)
  | Custom of Qca_util.Graph.t

type t = {
  name : string;
  qubit_count : int;
  topology : topology;
  primitives : string list;
      (** Mnemonics the hardware executes natively (see {!Qca_circuit.Gate.name}). *)
  durations_ns : (string * int) list;
      (** Gate duration lookup; ["*"] provides the default. *)
  cycle_ns : int;  (** Clock cycle of the micro-architecture timing grid. *)
  noise : Qca_qx.Noise.model;  (** Error model used for realistic execution. *)
}

val connectivity : t -> Qca_util.Graph.t
(** Materialised coupling graph (complete graph for {!All_to_all}). *)

val supports : t -> Qca_circuit.Gate.unitary -> bool
(** Is the gate a native primitive? *)

val duration_ns : t -> Qca_circuit.Gate.t -> int
val duration_cycles : t -> Qca_circuit.Gate.t -> int
(** Ceiling of duration over the cycle time; at least 1. *)

val are_coupled : t -> int -> int -> bool
(** Can a two-qubit primitive act on this physical pair? *)

val perfect : int -> t
(** Perfect-qubit platform on [n] qubits: every gate native, all-to-all,
    no noise (Figure 2b's simulated full stack). *)

val superconducting_17 : t
(** 17-qubit transmon-style platform: Surface-17 style 2-D grid slice,
    primitives {x90, mx90, y90, my90, rz, cz}, paper-quoted error rates
    (Figure 2a's experimental full stack). *)

val semiconducting_4 : t
(** 4-qubit spin-qubit platform: linear chain, slower two-qubit gates —
    the second technology of the paper's retargeting demonstration. *)

val dwave_like : t
(** 2048-qubit annealer-substrate stand-in (topology only; gates unused). *)
