module Gate = Qca_circuit.Gate

type quantum_op = {
  mnemonic : string;
  angle : float option;
  mask : int;
  two_qubit : bool;
  condition : int option;
}

type instruction =
  | Smis of int * int list
  | Smit of int * (int * int) list
  | Qwait of int
  | Bundle of int * quantum_op list

type program = {
  platform_name : string;
  qubit_count : int;
  cycle_ns : int;
  instructions : instruction list;
  makespan_cycles : int;
}

type stats = {
  bundle_count : int;
  mask_registers_used : int;
  total_quantum_ops : int;
  peak_parallelism : int;
  duration_ns : int;
}

let register_limit = 32

(* Mask register allocator with reuse by content. *)
type 'a allocator = {
  mutable table : ('a * int) list;
  mutable next : int;
  mutable emitted : instruction list;  (* reversed *)
  make_instr : int -> 'a -> instruction;
}

let allocate alloc key =
  match List.assoc_opt key alloc.table with
  | Some reg -> reg
  | None ->
      if alloc.next >= register_limit then
        invalid_arg "Eqasm: mask registers exhausted (32)";
      let reg = alloc.next in
      alloc.next <- reg + 1;
      alloc.table <- (key, reg) :: alloc.table;
      alloc.emitted <- alloc.make_instr reg key :: alloc.emitted;
      reg

let unitary_op single_alloc pair_alloc ?condition u (ops : int array) =
  let base = Gate.name u in
  let angle = match u with Gate.Rz t -> Some t | _ -> None in
  if Gate.arity u = 1 then
    let mask = allocate single_alloc [ ops.(0) ] in
    Some { mnemonic = base; angle; mask; two_qubit = false; condition }
  else if Gate.arity u = 2 then
    let mask = allocate pair_alloc [ (ops.(0), ops.(1)) ] in
    Some { mnemonic = base; angle; mask; two_qubit = true; condition }
  else invalid_arg "Eqasm: >2-qubit gate reached lowering (decompose first)"

let op_of_instr single_alloc pair_alloc instr =
  match instr with
  | Gate.Unitary (u, ops) -> unitary_op single_alloc pair_alloc u ops
  | Gate.Conditional (bit, u, ops) ->
      unitary_op single_alloc pair_alloc ~condition:bit u ops
  | Gate.Prep q ->
      let mask = allocate single_alloc [ q ] in
      Some { mnemonic = "prepz"; angle = None; mask; two_qubit = false; condition = None }
  | Gate.Measure q ->
      let mask = allocate single_alloc [ q ] in
      Some { mnemonic = "measz"; angle = None; mask; two_qubit = false; condition = None }
  | Gate.Barrier _ -> None

let of_schedule platform (schedule : Schedule.t) =
  let single_alloc =
    { table = []; next = 0; emitted = []; make_instr = (fun r qs -> Smis (r, qs)) }
  in
  let pair_alloc =
    { table = []; next = 0; emitted = []; make_instr = (fun r ps -> Smit (r, ps)) }
  in
  (* Group entries by start cycle. *)
  let by_cycle = Hashtbl.create 64 in
  List.iter
    (fun (e : Schedule.entry) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_cycle e.Schedule.start_cycle) in
      Hashtbl.replace by_cycle e.Schedule.start_cycle (e :: existing))
    schedule.Schedule.entries;
  let cycles = Hashtbl.fold (fun c _ acc -> c :: acc) by_cycle [] |> List.sort compare in
  let bundles = ref [] in
  let previous = ref 0 in
  List.iter
    (fun cycle ->
      let entries = List.rev (Hashtbl.find by_cycle cycle) in
      let ops =
        List.filter_map (fun (e : Schedule.entry) -> op_of_instr single_alloc pair_alloc e.Schedule.instr) entries
      in
      if ops <> [] then begin
        let pre_interval = cycle - !previous in
        previous := cycle;
        bundles := Bundle (pre_interval, ops) :: !bundles
      end)
    cycles;
  let tail_wait = schedule.Schedule.makespan - !previous in
  let bundles = if tail_wait > 0 then Qwait tail_wait :: !bundles else !bundles in
  let mask_setup = List.rev_append single_alloc.emitted (List.rev pair_alloc.emitted) in
  {
    platform_name = platform.Platform.name;
    qubit_count = platform.Platform.qubit_count;
    cycle_ns = platform.Platform.cycle_ns;
    instructions = mask_setup @ List.rev bundles;
    makespan_cycles = schedule.Schedule.makespan;
  }

let stats program =
  let bundle_count = ref 0 and ops = ref 0 and peak = ref 0 in
  let single_regs = ref 0 and pair_regs = ref 0 in
  List.iter
    (fun instr ->
      match instr with
      | Bundle (_, ops_list) ->
          incr bundle_count;
          ops := !ops + List.length ops_list;
          peak := max !peak (List.length ops_list)
      | Smis _ -> incr single_regs
      | Smit _ -> incr pair_regs
      | Qwait _ -> ())
    program.instructions;
  {
    bundle_count = !bundle_count;
    mask_registers_used = !single_regs + !pair_regs;
    total_quantum_ops = !ops;
    peak_parallelism = !peak;
    duration_ns = program.makespan_cycles * program.cycle_ns;
  }

let op_to_string op =
  let target = if op.two_qubit then Printf.sprintf "t%d" op.mask else Printf.sprintf "s%d" op.mask in
  let prefix =
    match op.condition with
    | Some bit -> Printf.sprintf "[if r%d] " bit
    | None -> ""
  in
  match op.angle with
  | Some a -> Printf.sprintf "%s%s %s, %.6g" prefix op.mnemonic target a
  | None -> Printf.sprintf "%s%s %s" prefix op.mnemonic target

let to_string program =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Printf.sprintf "# eQASM for %s (%d qubits, cycle %d ns)\n" program.platform_name
       program.qubit_count program.cycle_ns);
  List.iter
    (fun instr ->
      (match instr with
      | Smis (r, qs) ->
          Buffer.add_string buffer
            (Printf.sprintf "SMIS s%d, {%s}" r
               (String.concat ", " (List.map string_of_int qs)))
      | Smit (r, ps) ->
          Buffer.add_string buffer
            (Printf.sprintf "SMIT t%d, {%s}" r
               (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps)))
      | Qwait n -> Buffer.add_string buffer (Printf.sprintf "QWAIT %d" n)
      | Bundle (pre, ops) ->
          Buffer.add_string buffer
            (Printf.sprintf "%d: %s" pre (String.concat " | " (List.map op_to_string ops))));
      Buffer.add_char buffer '\n')
    program.instructions;
  Buffer.contents buffer
