module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit

type entry = { start_cycle : int; duration : int; instr : Gate.t }
type t = { entries : entry list; makespan : int; qubit_count : int }
type policy = Asap | Alap

let is_two_qubit_unitary = function
  | Gate.Unitary (u, _) | Gate.Conditional (_, u, _) -> Gate.arity u >= 2
  | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> false

(* Scheduling footprint: a conditional gate also depends on the classical
   bit written by the measurement of that qubit index, so it participates in
   that qubit's timeline too (read-after-write and write-after-read hazards
   on the measurement-result register). *)
let scheduling_qubits instr =
  match instr with
  | Gate.Conditional (bit, _, ops) ->
      if Array.exists (( = ) bit) ops then Array.copy ops
      else Array.append [| bit |] ops
  | Gate.Unitary _ | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> Gate.qubits instr

(* Count how many scheduled two-qubit gates overlap cycle range [start, start+d). *)
let two_qubit_load entries start duration =
  List.fold_left
    (fun acc e ->
      if
        is_two_qubit_unitary e.instr
        && e.start_cycle < start + duration
        && start < e.start_cycle + e.duration
      then acc + 1
      else acc)
    0 entries

let asap ?max_parallel_two_qubit platform circuit =
  let n = Circuit.qubit_count circuit in
  let ready = Array.make n 0 in
  let schedule_one (entries, makespan) instr =
    let duration = Platform.duration_cycles platform instr in
    let operands = scheduling_qubits instr in
    let earliest = Array.fold_left (fun acc q -> max acc ready.(q)) 0 operands in
    let start =
      match max_parallel_two_qubit with
      | Some limit when is_two_qubit_unitary instr ->
          (* Push the start until the 2q-parallelism budget admits it. *)
          let rec probe s =
            if two_qubit_load entries s duration < limit then s else probe (s + 1)
          in
          probe earliest
      | Some _ | None -> earliest
    in
    Array.iter (fun q -> ready.(q) <- start + duration) operands;
    let entry = { start_cycle = start; duration; instr } in
    (entry :: entries, max makespan (start + duration))
  in
  let rev_entries, makespan =
    List.fold_left schedule_one ([], 0) (Circuit.instructions circuit)
  in
  { entries = List.rev rev_entries; makespan; qubit_count = n }

(* ALAP: run ASAP on the reversed instruction list, then mirror times. The
   reversed dependency structure is identical, so mirroring preserves
   validity and the makespan. *)
let alap ?max_parallel_two_qubit platform circuit =
  let reversed =
    Circuit.of_list ~name:(Circuit.name circuit) (Circuit.qubit_count circuit)
      (List.rev (Circuit.instructions circuit))
  in
  let s = asap ?max_parallel_two_qubit platform reversed in
  let mirrored =
    List.map
      (fun e -> { e with start_cycle = s.makespan - (e.start_cycle + e.duration) })
      s.entries
  in
  let entries =
    List.sort (fun a b -> compare a.start_cycle b.start_cycle) (List.rev mirrored)
  in
  { s with entries }

let run ?(policy = Asap) ?max_parallel_two_qubit platform circuit =
  match policy with
  | Asap -> asap ?max_parallel_two_qubit platform circuit
  | Alap -> alap ?max_parallel_two_qubit platform circuit

let parallelism s =
  let busy = Array.make (max 1 s.makespan) 0 in
  List.iter
    (fun e ->
      for c = e.start_cycle to e.start_cycle + e.duration - 1 do
        busy.(c) <- busy.(c) + 1
      done)
    s.entries;
  let busy_cycles = Array.fold_left (fun acc b -> if b > 0 then acc + 1 else acc) 0 busy in
  let work = Array.fold_left ( + ) 0 busy in
  if busy_cycles = 0 then 0.0 else float_of_int work /. float_of_int busy_cycles

let max_concurrency s =
  let busy = Array.make (max 1 s.makespan) 0 in
  List.iter
    (fun e ->
      for c = e.start_cycle to e.start_cycle + e.duration - 1 do
        busy.(c) <- busy.(c) + 1
      done)
    s.entries;
  Array.fold_left max 0 busy

let validate s =
  let per_qubit = Array.make s.qubit_count [] in
  let ok = ref true in
  List.iter
    (fun e ->
      let operands = scheduling_qubits e.instr in
      Array.iter
        (fun q ->
          List.iter
            (fun (start, stop) ->
              if e.start_cycle < stop && start < e.start_cycle + e.duration then ok := false)
            per_qubit.(q);
          per_qubit.(q) <- (e.start_cycle, e.start_cycle + e.duration) :: per_qubit.(q))
        operands;
      if e.start_cycle + e.duration > s.makespan then ok := false)
    s.entries;
  (* Program order on shared qubits must be respected. *)
  let rec pairs = function
    | [] -> ()
    | e :: rest ->
        List.iter
          (fun later ->
            let qa = scheduling_qubits e.instr and qb = scheduling_qubits later.instr in
            let shared = Array.exists (fun q -> Array.exists (( = ) q) qb) qa in
            if shared && later.start_cycle < e.start_cycle + e.duration then ok := false)
          rest;
        pairs rest
  in
  pairs s.entries;
  !ok

let to_string s =
  s.entries
  |> List.map (fun e ->
         Printf.sprintf "%6d  %-4d %s" e.start_cycle e.duration (Gate.to_string e.instr))
  |> String.concat "\n"
