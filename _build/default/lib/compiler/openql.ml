module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm

type kernel = { kernel_name : string; qubits : int; mutable rev_instrs : Gate.t list }

type program = {
  program_name : string;
  program_qubits : int;
  mutable rev_kernels : (string * int * kernel) list;
}

let kernel ~name ~qubits =
  if qubits <= 0 then invalid_arg "Openql.kernel: qubits must be positive";
  { kernel_name = name; qubits; rev_instrs = [] }

let kernel_name k = k.kernel_name

let push k instr =
  Circuit.validate_instruction k.qubits instr;
  k.rev_instrs <- instr :: k.rev_instrs

let gate k u operands = push k (Gate.Unitary (u, Array.of_list operands))

let x k q = gate k Gate.X [ q ]
let y k q = gate k Gate.Y [ q ]
let z k q = gate k Gate.Z [ q ]
let h k q = gate k Gate.H [ q ]
let s k q = gate k Gate.S [ q ]
let t k q = gate k Gate.T [ q ]
let rx k q theta = gate k (Gate.Rx theta) [ q ]
let ry k q theta = gate k (Gate.Ry theta) [ q ]
let rz k q theta = gate k (Gate.Rz theta) [ q ]
let cnot k c tq = gate k Gate.Cnot [ c; tq ]
let cz k a b = gate k Gate.Cz [ a; b ]
let toffoli k a b c = gate k Gate.Toffoli [ a; b; c ]

let prepare k q = push k (Gate.Prep q)
let measure k q = push k (Gate.Measure q)

let measure_all k =
  for q = 0 to k.qubits - 1 do
    measure k q
  done

let barrier k qs = push k (Gate.Barrier (Array.of_list qs))

let cond k ~bit u operands = push k (Gate.Conditional (bit, u, Array.of_list operands))

let circuit_of_kernel k =
  Circuit.of_list ~name:k.kernel_name k.qubits (List.rev k.rev_instrs)

let program ~name ~qubits =
  if qubits <= 0 then invalid_arg "Openql.program: qubits must be positive";
  { program_name = name; program_qubits = qubits; rev_kernels = [] }

let program_name p = p.program_name
let qubit_count p = p.program_qubits

let add_kernel ?(iterations = 1) p k =
  if iterations < 1 then invalid_arg "Openql.add_kernel: iterations must be >= 1";
  if k.qubits <> p.program_qubits then
    invalid_arg "Openql.add_kernel: kernel qubit count differs from program";
  p.rev_kernels <- (k.kernel_name, iterations, k) :: p.rev_kernels

let for_loop p ~count k = add_kernel ~iterations:count p k

let to_cqasm_program p =
  {
    Cqasm.qubit_count = p.program_qubits;
    error_model = None;
    subcircuits =
      List.rev_map
        (fun (name, iterations, k) -> (name, iterations, circuit_of_kernel k))
        p.rev_kernels;
  }

let to_cqasm p = Cqasm.emit (to_cqasm_program p)

let to_circuit p =
  let flat = Cqasm.flatten (to_cqasm_program p) in
  Circuit.of_list ~name:p.program_name p.program_qubits (Circuit.instructions flat)

let compile ?strategy ?placement ~platform ~mode p =
  Compiler.compile ?strategy ?placement platform mode (to_circuit p)

let simulate ?noise ?rng ?(shots = 1024) p =
  Qca_qx.Sim.histogram ?noise ?rng ~shots (to_circuit p)
