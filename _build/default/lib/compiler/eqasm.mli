(** eQASM lowering: the executable QASM level of Figure 6.

    The second backend pass of section 3.1: translate a scheduled circuit
    into timed, mask-register-based instructions executable by the
    micro-architecture. The format follows Fu et al.'s eQASM: SMIS/SMIT set
    single/two-qubit mask registers, QWAIT advances the timing grid, and
    bundles issue quantum operations with a pre-interval relative to the
    previous bundle. *)

type quantum_op = {
  mnemonic : string;  (** Platform primitive name, e.g. "x90", "cz", "measure". *)
  angle : float option;  (** For rz: the rotation angle resolved via a LUT. *)
  mask : int;  (** Mask register index (s-register for 1q ops, t-register for 2q). *)
  two_qubit : bool;
  condition : int option;
      (** Classical bit gating the op (eQASM's fast conditional execution,
          fed by the measurement-result registers via FMR). *)
}

type instruction =
  | Smis of int * int list  (** [Smis (s, qubits)]: set single-qubit mask. *)
  | Smit of int * (int * int) list  (** [Smit (t, pairs)]: set two-qubit mask. *)
  | Qwait of int  (** Idle for the given number of cycles. *)
  | Bundle of int * quantum_op list
      (** [Bundle (pre_interval, ops)]: after [pre_interval] cycles from the
          previous quantum issue, fire all ops in parallel. *)

type program = {
  platform_name : string;
  qubit_count : int;
  cycle_ns : int;
  instructions : instruction list;
  makespan_cycles : int;
}

type stats = {
  bundle_count : int;
  mask_registers_used : int;
  total_quantum_ops : int;
  peak_parallelism : int;
  duration_ns : int;
}

val of_schedule : Platform.t -> Schedule.t -> program
(** Lower a schedule. Raises [Invalid_argument] if mask registers are
    exhausted (32 of each kind, as in the eQASM paper). *)

val stats : program -> stats

val to_string : program -> string
(** Assembly rendering, one instruction per line. *)
