module Graph = Qca_util.Graph
module Gate = Qca_circuit.Gate
module Noise = Qca_qx.Noise

type topology = All_to_all | Grid of int * int | Custom of Graph.t

type t = {
  name : string;
  qubit_count : int;
  topology : topology;
  primitives : string list;
  durations_ns : (string * int) list;
  cycle_ns : int;
  noise : Noise.model;
}

let connectivity p =
  match p.topology with
  | All_to_all -> Graph.complete p.qubit_count (fun _ _ -> 1.0)
  | Grid (rows, cols) ->
      assert (rows * cols >= p.qubit_count);
      Graph.grid_2d rows cols
  | Custom g -> g

let supports p u = List.mem (Gate.name u) p.primitives

let lookup_duration p mnemonic =
  match List.assoc_opt mnemonic p.durations_ns with
  | Some d -> d
  | None -> (
      match List.assoc_opt "*" p.durations_ns with
      | Some d -> d
      | None -> p.cycle_ns)

let duration_ns p instr =
  match instr with
  | Gate.Unitary (u, _) | Gate.Conditional (_, u, _) -> lookup_duration p (Gate.name u)
  | Gate.Prep _ -> lookup_duration p "prep_z"
  | Gate.Measure _ -> lookup_duration p "measure"
  | Gate.Barrier _ -> 0

let duration_cycles p instr =
  let ns = duration_ns p instr in
  max 1 ((ns + p.cycle_ns - 1) / p.cycle_ns)

let are_coupled p u v =
  match p.topology with
  | All_to_all -> u <> v
  | Grid _ | Custom _ -> Graph.has_edge (connectivity p) u v

let all_gate_names =
  [
    "i"; "x"; "y"; "z"; "h"; "s"; "sdag"; "t"; "tdag"; "x90"; "mx90"; "y90"; "my90";
    "rx"; "ry"; "rz"; "cnot"; "cz"; "swap"; "cphase"; "cr"; "toffoli";
  ]

let perfect n =
  {
    name = Printf.sprintf "perfect-%d" n;
    qubit_count = n;
    topology = All_to_all;
    primitives = all_gate_names;
    durations_ns = [ ("*", 1) ];
    cycle_ns = 1;
    noise = Noise.ideal;
  }

(* Surface-17 style slice: 17 qubits arranged on a 2-D grid fragment.
   We model it as the 17 first vertices of a 5x4 grid with grid coupling. *)
let surface_17_graph () =
  let g = Graph.create 17 in
  let full = Graph.grid_2d 5 4 in
  List.iter
    (fun (u, v, w) -> if u < 17 && v < 17 then Graph.add_edge g u v w)
    (Graph.edges full);
  g

let superconducting_17 =
  {
    name = "superconducting-17";
    qubit_count = 17;
    topology = Custom (surface_17_graph ());
    primitives = [ "i"; "x90"; "mx90"; "y90"; "my90"; "rz"; "cz" ];
    durations_ns =
      [ ("x90", 20); ("mx90", 20); ("y90", 20); ("my90", 20); ("rz", 0);
        ("cz", 40); ("prep_z", 200); ("measure", 300); ("*", 20) ];
    cycle_ns = 20;
    noise = Noise.superconducting;
  }

let semiconducting_4 =
  let chain = Graph.create 4 in
  Graph.add_edge chain 0 1 1.0;
  Graph.add_edge chain 1 2 1.0;
  Graph.add_edge chain 2 3 1.0;
  {
    name = "semiconducting-4";
    qubit_count = 4;
    topology = Custom chain;
    primitives = [ "i"; "x90"; "mx90"; "y90"; "my90"; "rz"; "cz" ];
    durations_ns =
      [ ("x90", 500); ("mx90", 500); ("y90", 500); ("my90", 500); ("rz", 0);
        ("cz", 2000); ("prep_z", 4000); ("measure", 6000); ("*", 500) ];
    cycle_ns = 100;
    noise =
      {
        Noise.single_qubit_error = 0.002;
        two_qubit_error = 0.01;
        readout_error = 0.02;
        prep_error = 0.005;
        t1_ns = 100_000.0;
        t2_ns = 60_000.0;
        cycle_ns = 100.0;
      };
  }

let dwave_like =
  {
    name = "dwave-2048";
    qubit_count = 2048;
    topology = Grid (64, 32);
    primitives = [];
    durations_ns = [ ("*", 1) ];
    cycle_ns = 1;
    noise = Noise.ideal;
  }
