(* Section 3.1's experimental workload: single-qubit randomised benchmarking
   through the superconducting and semiconducting stacks, demonstrating the
   retargeting story (same micro-architecture, different configuration).

     dune exec examples/rb_experiment.exe *)

module Rb = Qca.Rb
module Noise = Qca_qx.Noise
module Rng = Qca_util.Rng
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Controller = Qca_microarch.Controller

let () =
  (* RB decay under the paper's ~0.1% gate-error regime. *)
  let noise = Noise.superconducting in
  let rng = Rng.create 77 in
  let decay =
    Rb.run ~lengths:[ 1; 2; 4; 8; 16; 32; 64 ] ~sequences:6 ~shots:128 ~noise ~rng ()
  in
  print_endline "randomised benchmarking (superconducting error model):";
  Printf.printf "%-10s %-10s\n" "length" "survival";
  List.iter
    (fun p -> Printf.printf "%-10d %-10.4f\n" p.Rb.sequence_length p.Rb.survival)
    decay.Rb.points;
  Printf.printf "fit: survival = 0.5 + %.3f * %.5f^m  ->  error per Clifford = %.5f\n\n"
    decay.Rb.amplitude decay.Rb.p decay.Rb.error_per_clifford;

  (* One RB sequence pushed through both technologies' micro-architectures:
     identical logic, different codewords, pulses and wall-clock. *)
  let circuit = Rb.sequence_circuit (Rng.create 5) ~qubit:0 ~total_qubits:1 ~length:8 in
  let widen platform =
    Qca_circuit.Circuit.of_list platform.Platform.qubit_count
      (Qca_circuit.Circuit.instructions circuit)
  in
  let run name platform technology =
    let out = Compiler.compile platform Compiler.Real (widen platform) in
    match out.Compiler.eqasm with
    | None -> ()
    | Some program ->
        let result = Controller.run technology program in
        let s = result.Controller.stats in
        Printf.printf "%-16s %6d bundles %6d micro-ops %9d ns  peak queue %d\n" name
          s.Controller.bundles_issued s.Controller.micro_ops s.Controller.total_ns
          s.Controller.peak_queue_depth
  in
  print_endline "retargeting the same RB sequence (Figure 6):";
  run "superconducting" Platform.superconducting_17 Controller.superconducting;
  run "semiconducting" Platform.semiconducting_4 Controller.semiconducting
