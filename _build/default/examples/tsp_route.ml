(* Figure 9's route-planning accelerator: the four-city Dutch TSP, encoded
   as a 16-qubit QUBO and solved on every backend of section 3.3 — exact
   enumeration, simulated annealing, simulated quantum annealing, the
   digital-annealer model and gate-based QAOA.

     dune exec examples/tsp_route.exe *)

module Tsp = Qca_tsp.Tsp
module Exact = Qca_tsp.Exact
module Heuristic = Qca_tsp.Heuristic
module Encode = Qca_tsp.Encode
module Qubo = Qca_anneal.Qubo
module Sa = Qca_anneal.Sa
module Sqa = Qca_anneal.Sqa
module Digital_annealer = Qca_anneal.Digital_annealer
module Qaoa = Qca_qaoa.Qaoa
module Rng = Qca_util.Rng

let tour_string t tour =
  tour |> Array.to_list
  |> List.map (fun c -> t.Tsp.cities.(c))
  |> String.concat " -> "

let () =
  let t = Tsp.netherlands () in
  Printf.printf "instance: %s (%d cities)\n" t.Tsp.name (Tsp.size t);

  let optimal_tour, optimal_cost = Exact.enumerate t in
  Printf.printf "exact optimum: %s, cost %.2f (paper: 1.42)\n\n" (tour_string t optimal_tour)
    optimal_cost;

  let q = Encode.to_qubo t in
  Printf.printf "QUBO encoding: %d binary variables (paper: 16 qubits), density %.2f\n\n"
    (Qubo.size q) (Qubo.density q);

  let evaluate name bits =
    match Encode.decode t bits with
    | Some tour ->
        Printf.printf "%-18s %-44s cost %.4f\n" name (tour_string t tour) (Tsp.tour_cost t tour)
    | None ->
        let repaired = Encode.decode_with_repair t bits in
        Printf.printf "%-18s (constraints violated; repaired) cost %.4f\n" name
          (Tsp.tour_cost t repaired)
  in

  let rng = Rng.create 1234 in
  let sa_bits, _ = Sa.minimize_qubo ~params:{ Sa.default_params with Sa.restarts = 8 } ~rng q in
  evaluate "annealer (SA)" sa_bits;

  let sqa_bits, _ = Sqa.minimize_qubo ~rng q in
  evaluate "quantum (SQA)" sqa_bits;

  let da = Digital_annealer.minimize ~steps:4000 ~rng q in
  evaluate "digital annealer" da.Digital_annealer.bits;

  let qaoa_bits, _ = Qaoa.solve_qubo ~layers:2 ~restarts:2 ~shots:2048 ~rng q in
  evaluate "gate-based QAOA" qaoa_bits;

  (* Classical heuristics for comparison. *)
  let nn_tour, nn_cost = Heuristic.nearest_neighbour_two_opt t in
  Printf.printf "%-18s %-44s cost %.4f\n" "NN + 2-opt" (tour_string t nn_tour) nn_cost;

  (* Capacity comparison (section 3.3). *)
  print_newline ();
  Printf.printf "capacity: qubits needed grow as n^2\n";
  Printf.printf "  D-Wave 2000Q (Chimera C16, 2048 qubits): clique-guaranteed %d cities;\n"
    (Qca_anneal.Embedding.max_clique_cities ~m:16);
  Printf.printf "  heuristic embedding reaches ~9 (paper: 9)\n";
  Printf.printf "  Fujitsu DA (8192 nodes, fully connected): %d cities (paper: 90)\n"
    (Digital_annealer.max_tsp_cities ());
  Printf.printf "  classical exact record (branch and bound): 85900 cities (paper)\n"
