(* Section 2.7: sweep error rates from today's 1e-2 down to 1e-6 and watch
   algorithm success probability recover — the error-model study the QX
   simulator exists for, plus the QEC view of the same budget.

     dune exec examples/noise_sweep.exe *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Sim = Qca_qx.Sim
module Noise = Qca_qx.Noise
module Rng = Qca_util.Rng
module Code = Qca_qec.Code
module Decoder = Qca_qec.Decoder
module Qec_experiment = Qca_qec.Qec_experiment

let () =
  let rates = [ 1e-2; 3e-3; 1e-3; 1e-4; 1e-5; 1e-6 ] in
  let ghz =
    Circuit.append (Library.ghz 5)
      (Circuit.of_list 5 (List.init 5 (fun q -> Gate.Measure q)))
  in
  let accept bits = Array.for_all (fun b -> b = bits.(0)) bits in
  print_endline "GHZ-5 success probability vs depolarising error rate:";
  Printf.printf "%-10s %-10s\n" "rate" "success";
  List.iter
    (fun p ->
      let rng = Rng.create 11 in
      let success =
        Sim.success_probability ~noise:(Noise.depolarizing p) ~rng ~shots:1500 ~accept ghz
      in
      Printf.printf "%-10.0e %-10.4f\n" p success)
    rates;

  (* QEC: logical error rates for the small codes vs Surface-17. *)
  print_newline ();
  print_endline "logical error rate (code capacity, depolarising):";
  Printf.printf "%-12s" "p_physical";
  let codes = [ Code.bit_flip_repetition 3; Code.bit_flip_repetition 5; Code.surface_17 ] in
  List.iter (fun c -> Printf.printf " %-16s" c.Code.name) codes;
  print_newline ();
  let decoders = List.map (fun c -> (c, Decoder.build c)) codes in
  List.iter
    (fun p ->
      Printf.printf "%-12.0e" p;
      List.iter
        (fun (code, decoder) ->
          let rng = Rng.create 13 in
          let rate =
            Decoder.logical_error_rate ~trials:8000 ~rng code decoder ~physical_error:p
          in
          Printf.printf " %-16.5f" rate)
        decoders;
      print_newline ())
    [ 3e-2; 1e-2; 3e-3; 1e-3 ];

  (* The paper's ">90% of computational activity" claim. *)
  print_newline ();
  let o = Qec_experiment.overhead_of ~rounds_per_logical_op:3 Code.surface_17 in
  Printf.printf
    "surface-17 fault-tolerance overhead: %d QEC ops per round, %d rounds per logical op, \
     %d physical ops per transversal logical op\n"
    o.Qec_experiment.qec_ops_per_round o.Qec_experiment.rounds_per_logical_op
    o.Qec_experiment.logical_op_cost;
  Printf.printf "fraction of activity spent on QEC: %.1f%% (paper: >90%%)\n"
    (100.0 *. o.Qec_experiment.qec_fraction)
