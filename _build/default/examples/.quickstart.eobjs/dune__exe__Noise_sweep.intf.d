examples/noise_sweep.mli:
