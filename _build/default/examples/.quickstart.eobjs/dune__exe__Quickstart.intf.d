examples/quickstart.mli:
