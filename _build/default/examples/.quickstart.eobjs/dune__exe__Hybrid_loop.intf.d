examples/hybrid_loop.mli:
