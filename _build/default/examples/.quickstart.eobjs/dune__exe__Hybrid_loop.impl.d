examples/hybrid_loop.ml: Array Lazy List Printf Qca Qca_anneal Qca_qaoa Qca_qx Qca_util String
