examples/noise_sweep.ml: Array List Printf Qca_circuit Qca_qec Qca_qx Qca_util
