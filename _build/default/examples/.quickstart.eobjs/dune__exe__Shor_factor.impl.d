examples/shor_factor.ml: List Printf Qca Qca_util
