examples/tsp_route.ml: Array List Printf Qca_anneal Qca_qaoa Qca_tsp Qca_util String
