examples/tsp_route.mli:
