examples/rb_experiment.mli:
