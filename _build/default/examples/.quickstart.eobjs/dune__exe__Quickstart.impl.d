examples/quickstart.ml: List Printf Qca Qca_circuit Qca_compiler Qca_microarch Qca_qx Qca_util String
