examples/genome_search.mli:
