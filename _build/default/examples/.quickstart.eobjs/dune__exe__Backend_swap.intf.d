examples/backend_swap.mli:
