examples/genome_search.ml: List Printf Qca_genome Qca_util
