examples/shor_factor.mli:
