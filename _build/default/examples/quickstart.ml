(* Quickstart: build a circuit with the public API, compile it for the
   perfect-qubit stack and for the superconducting full stack, and run both.

     dune exec examples/quickstart.exe *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Cqasm = Qca_circuit.Cqasm
module Stack = Qca.Stack
module Rng = Qca_util.Rng

let () =
  (* 1. Describe the quantum logic: a GHZ state with measurement. *)
  let ghz =
    Circuit.append (Library.ghz 3)
      (Circuit.of_list 3 [ Gate.Measure 0; Gate.Measure 1; Gate.Measure 2 ])
  in
  print_endline "=== quantum logic (cQASM) ===";
  print_string (Cqasm.emit_circuit ghz);

  (* 2. Perfect qubits: verify the algorithm functionally (Figure 2b). *)
  let perfect = Stack.genome ~qubits:3 () in
  let run = Stack.execute ~shots:1000 ~rng:(Rng.create 1) perfect ghz in
  print_endline "\n=== perfect-qubit stack ===";
  Printf.printf "%s\n" (Stack.describe perfect);
  Printf.printf "execution plan: %s (%s)\n"
    (Qca_qx.Engine.plan_to_string run.Stack.engine_report.Qca_qx.Engine.plan)
    run.Stack.engine_report.Qca_qx.Engine.plan_reason;
  List.iter (fun (key, count) -> Printf.printf "  %s : %d\n" key count) run.Stack.histogram;

  (* 3. Real qubits: the same logic through compiler, eQASM and the
     micro-architecture on the superconducting platform (Figure 2a). *)
  let sc = Stack.superconducting () in
  let run_sc = Stack.execute ~shots:300 ~rng:(Rng.create 2) sc ghz in
  print_endline "\n=== superconducting full stack ===";
  Printf.printf "%s\n" (Stack.describe sc);
  print_string (Qca_compiler.Compiler.report run_sc.Stack.compiled);
  (match run_sc.Stack.microarch_stats with
  | Some s ->
      Printf.printf "micro-architecture: %d bundles, %d micro-ops, %d ns wall clock\n"
        s.Qca_microarch.Controller.bundles_issued s.Qca_microarch.Controller.micro_ops
        s.Qca_microarch.Controller.total_ns
  | None -> ());
  let top = match run_sc.Stack.histogram with (k, c) :: _ -> Printf.sprintf "%s (%d)" k c | [] -> "-" in
  Printf.printf "most frequent outcome: %s\n" top;
  let ghz_mass =
    Stack.success_probability run_sc ~accept:(fun key ->
        let n = String.length key in
        let bit i = key.[n - 1 - i] in
        bit 0 = bit 1 && bit 1 = bit 2 && bit 0 <> '-')
  in
  Printf.printf "GHZ-correlated fraction under realistic noise: %.3f\n" ghz_mass
