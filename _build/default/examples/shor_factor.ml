(* Section 2.3's cryptography motivation made concrete: Shor's algorithm
   factoring small RSA-style semiprimes on the perfect-qubit stack, with
   quantum order finding by phase estimation over the QX simulator.

     dune exec examples/shor_factor.exe *)

module Shor = Qca.Shor
module Rng = Qca_util.Rng

let () =
  let rng = Rng.create 20250706 in

  print_endline "quantum order finding (phase estimation + continued fractions):";
  Printf.printf "%-6s %-6s %-18s %-10s %-10s %-9s\n" "a" "N" "qubits (count+work)" "order"
    "classical" "attempts";
  List.iter
    (fun (a, modulus) ->
      let r = Shor.find_order ~rng ~a ~modulus () in
      Printf.printf "%-6d %-6d %d + %-14d %-10s %-10d %-9d\n" a modulus
        r.Shor.counting_qubits r.Shor.work_qubits
        (match r.Shor.order with Some o -> string_of_int o | None -> "-")
        (Shor.classical_order a modulus) r.Shor.attempts)
    [ (7, 15); (2, 15); (2, 21); (5, 21); (3, 25) ];

  print_newline ();
  print_endline "full factoring runs:";
  List.iter
    (fun n ->
      let result = Shor.factor ~rng n in
      match result.Shor.factors with
      | Some (p, q) ->
          Printf.printf "N = %d  ->  %d x %d   (base a = %d, %d phase estimations)\n" n p q
            result.Shor.a_used result.Shor.order_runs
      | None -> Printf.printf "N = %d  ->  no factors found this run\n" n)
    [ 15; 21 ];

  print_newline ();
  print_endline
    "(the paper's point: at scale this breaks RSA; at simulator scale it breaks 15 and 21 -\n\
    \ the full stack runs the same logic either way)"
