(* Backend swapping: the same circuit on every execution target through the
   one Backend.S contract — state-vector engine, exact density matrix, and
   the cycle-accurate micro-architecture.

     dune exec examples/backend_swap.exe *)

module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Library = Qca_circuit.Library
module Engine = Qca_qx.Engine

let () =
  let bell =
    Circuit.append (Library.bell ())
      (Circuit.of_list 2 [ Gate.Measure 0; Gate.Measure 1 ])
  in
  let targets : (module Qca_qx.Backend.S) list =
    [
      (module Qca_qx.Sim.Backend);
      (module Qca_qx.Density.Backend);
      Qca_qx.Sim.backend ~noise:(Qca_qx.Noise.depolarizing 0.01) ();
      Qca_microarch.Controller.backend
        ~platform:Qca_compiler.Platform.semiconducting_4
        ~technology:Qca_microarch.Controller.semiconducting ();
    ]
  in
  List.iter
    (fun (module B : Qca_qx.Backend.S) ->
      let result = B.run ~shots:2000 ~seed:7 bell in
      let report = result.Engine.report in
      Printf.printf "%-24s plan=%-10s  " B.name (Engine.plan_to_string report.Engine.plan);
      (* Micro-architecture keys are platform-width; show the top outcomes. *)
      List.iteri
        (fun i (key, count) -> if i < 2 then Printf.printf "%s:%d  " key count)
        result.Engine.histogram;
      Printf.printf "(%.4fs)\n"
        (report.Engine.wall.Engine.simulate_s +. report.Engine.wall.Engine.sample_s))
    targets;
  print_endline "same Backend.S contract; the caller never changes."
