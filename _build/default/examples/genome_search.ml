(* The quantum genome-sequencing accelerator of section 3.2: build a
   synthetic reference genome, slice it into an indexed database, and align
   noisy reads with Grover search, comparing against the classical scan.

     dune exec examples/genome_search.exe *)

module Dna = Qca_genome.Dna
module Reference_db = Qca_genome.Reference_db
module Align = Qca_genome.Align
module Classical_align = Qca_genome.Classical_align
module Grover = Qca_genome.Grover
module Rng = Qca_util.Rng

let () =
  let rng = Rng.create 2020 in
  (* Synthetic genome preserving biological base statistics (section 3.2). *)
  let reference = Dna.markov (Rng.create 7) 512 in
  Printf.printf "reference genome: %d bp, GC content %.2f, 2-mer entropy %.2f bits\n"
    (Dna.length reference) (Dna.gc_content reference)
    (Dna.shannon_entropy ~k:2 reference);

  let width = 12 in
  let db = Reference_db.build reference ~width in
  Printf.printf "sliced database: %d entries of %d bp -> %d index qubits + %d content qubits\n\n"
    (Reference_db.size db) width (Reference_db.index_qubits db)
    (Reference_db.content_qubits db);

  (* Take reads from known positions, corrupt them with sequencing errors. *)
  let positions = [ 17; 101; 256; 384; 470 ] in
  let error_rate = 0.05 in
  Printf.printf "%-6s %-6s %-10s %-10s %-12s %-10s\n" "true" "found" "distance" "tolerance"
    "P(success)" "speedup";
  List.iter
    (fun pos ->
      let read = Dna.mutate rng ~rate:error_rate (Reference_db.entry db pos) in
      let report = Align.align ~rng db read in
      Printf.printf "%-6d %-6d %-10d %-10d %-12.3f %-10.1f\n" pos report.Align.position
        report.Align.distance report.Align.tolerance_used
        report.Align.grover.Grover.success_probability report.Align.speedup_queries)
    positions;

  (* The quadratic-speedup shape (section 2.3): queries vs database size. *)
  print_newline ();
  Printf.printf "%-10s %-14s %-14s %-10s\n" "entries" "classical~N/2" "grover~sqrt(N)" "ratio";
  List.iter
    (fun bits ->
      let n = 1 lsl bits in
      let classical = Classical_align.expected_queries_classical n in
      let grover = Grover.optimal_iterations ~matches:1 ~size:n in
      Printf.printf "%-10d %-14.0f %-14d %-10.1f\n" n classical grover
        (classical /. float_of_int grover))
    [ 6; 8; 10; 12; 14; 16 ];

  Printf.printf "\npaper's logical-qubit estimate for a human genome: ~150; recomputed: %d\n"
    (Align.human_genome_logical_qubit_estimate ())
