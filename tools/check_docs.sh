#!/bin/sh
# Documentation checks:
#   1. lint relative links between the markdown docs (always),
#   2. build the odoc API docs (when odoc is installed).
#
# The link lint also runs as part of `dune runtest` (tools/dune, alias
# lint-docs). The odoc build is gated on the tool being present so the
# script works in minimal containers; install odoc via opam to enable it.
set -e
cd "$(dirname "$0")/.."

echo "== docs link lint"
dune build @lint-docs
echo "ok"

if command -v odoc >/dev/null 2>&1; then
  echo "== odoc API docs (dune build @doc)"
  dune build @doc
  echo "ok: _build/default/_doc/_html/index.html"
else
  echo "== odoc not installed; skipping 'dune build @doc' (opam install odoc to enable)"
fi
