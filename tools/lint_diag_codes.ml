(* Diagnostic-code lint: the check catalogue in docs/analysis.md must stay
   in lockstep with the code. Every `~code:"Xnn"` literal passed to
   Diagnostic.make in the sources must have a `| Xnn | ... |` table row in
   the docs, and every documented code must still be emitted somewhere —
   both directions fail `dune runtest` (via the lint-docs alias).

   Usage: lint_diag_codes.exe DOCS.md SOURCE.ml... *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

module S = Set.Make (String)

let is_code s =
  String.length s >= 2
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

(* Every ~code:"..." literal in an .ml file. The attribute and its string
   always sit on one line in this codebase; a split one would simply not
   match and surface as a missing-in-source failure, which is loud. *)
let source_codes content =
  let acc = ref S.empty in
  let marker = "~code:\"" in
  let mlen = String.length marker in
  let n = String.length content in
  let i = ref 0 in
  while !i + mlen <= n do
    if String.sub content !i mlen = marker then begin
      (match String.index_from_opt content (!i + mlen) '"' with
      | Some close ->
          let code = String.sub content (!i + mlen) (close - !i - mlen) in
          if is_code code then acc := S.add code !acc
      | None -> ());
      i := !i + mlen
    end
    else incr i
  done;
  !acc

(* Every `| Xnn |` first-column cell of a markdown table row. *)
let doc_codes content =
  let acc = ref S.empty in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
         match String.split_on_char '|' line with
         | "" :: cell :: _ ->
             let code = String.trim cell in
             if is_code code then acc := S.add code !acc
         | _ -> ());
  !acc

let () =
  match Array.to_list Sys.argv with
  | _ :: docs :: sources when sources <> [] ->
      let documented = doc_codes (read_file docs) in
      let emitted =
        List.fold_left
          (fun acc f -> S.union acc (source_codes (read_file f)))
          S.empty sources
      in
      let failures = ref 0 in
      S.iter
        (fun c ->
          if not (S.mem c documented) then begin
            incr failures;
            Printf.eprintf
              "%s: diagnostic code %s is emitted but has no table row\n" docs c
          end)
        emitted;
      S.iter
        (fun c ->
          if not (S.mem c emitted) then begin
            incr failures;
            Printf.eprintf
              "%s: diagnostic code %s is documented but never emitted\n" docs c
          end)
        documented;
      if !failures > 0 then begin
        Printf.eprintf "diagnostic-code lint: %d mismatch(es)\n" !failures;
        exit 1
      end
  | argv0 :: _ ->
      Printf.eprintf "usage: %s DOCS.md SOURCE.ml...\n"
        (Filename.basename argv0);
      exit 2
  | [] -> exit 2
