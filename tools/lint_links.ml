(* Docs link lint: check that every relative markdown link in the given
   files points at an existing file. External links (http/https/mailto) and
   pure in-page anchors are skipped; a [path#anchor] target is checked as
   [path]. Runs under `dune runtest` via the lint-docs alias. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

(* Extract inline-link targets: every "](target)" occurrence. Reference
   definitions and autolinks don't use this shape, so this stays simple and
   has no false negatives for the repo's docs style. *)
let targets content =
  let acc = ref [] in
  let line = ref 1 in
  let n = String.length content in
  let i = ref 0 in
  while !i < n do
    (match content.[!i] with
    | '\n' -> incr line
    | ']' when !i + 1 < n && content.[!i + 1] = '(' -> (
        match String.index_from_opt content (!i + 2) ')' with
        | Some close when close > !i + 2 ->
            acc := (!line, String.sub content (!i + 2) (close - !i - 2)) :: !acc
        | Some _ | None -> ())
    | _ -> ());
    incr i
  done;
  List.rev !acc

let external_target t =
  let prefixed p =
    String.length t >= String.length p && String.sub t 0 (String.length p) = p
  in
  prefixed "http://" || prefixed "https://" || prefixed "mailto:"

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  let broken = ref 0 in
  List.iter
    (fun file ->
      let dir = Filename.dirname file in
      List.iter
        (fun (line, target) ->
          if not (external_target target || target = "" || target.[0] = '#') then begin
            let path =
              match String.index_opt target '#' with
              | Some h -> String.sub target 0 h
              | None -> target
            in
            if path <> "" && not (Sys.file_exists (Filename.concat dir path)) then begin
              incr broken;
              Printf.eprintf "%s:%d: broken link: %s\n" file line target
            end
          end)
        (targets (read_file file)))
    files;
  if !broken > 0 then begin
    Printf.eprintf "docs link lint: %d broken link(s)\n" !broken;
    exit 1
  end
