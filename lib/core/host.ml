type task =
  | Classical of string * float
  | Offload of string * string * float * string

type event = {
  task_name : string;
  resource : string;
  start_time : float;
  finish_time : float;
  output : string option;
  warning : string option;
}

type execution = {
  timeline : event list;
  total_time : float;
  host_only_time : float;
  speedup : float;
  outputs : (string * string) list;
  warnings : string list;
}

let find_accelerator accelerators name =
  List.find_opt (fun a -> a.Accelerator.name = name) accelerators

let task_work = function Classical (_, w) | Offload (_, _, w, _) -> w

let run ~accelerators tasks =
  let clock = ref 0.0 in
  let timeline = ref [] in
  let outputs = ref [] in
  let warnings = ref [] in
  List.iter
    (fun task ->
      match task with
      | Classical (name, work) ->
          if work < 0.0 then
            Qca_util.Error.fail ~site:"Host.run"
              ~context:[ ("task", name) ]
              (Qca_util.Error.Invalid "negative work");
          let start = !clock in
          clock := !clock +. work;
          timeline :=
            { task_name = name; resource = "host"; start_time = start; finish_time = !clock; output = None; warning = None }
            :: !timeline
      | Offload (accel_name, kernel, work, arg) ->
          if work < 0.0 then
            Qca_util.Error.fail ~site:"Host.run"
              ~context:[ ("task", kernel); ("accelerator", accel_name) ]
              (Qca_util.Error.Invalid "negative work");
          let start = !clock in
          (match find_accelerator accelerators accel_name with
          | Some accel ->
              let duration = accel.Accelerator.offload_overhead +. (work /. accel.Accelerator.speed_factor) in
              clock := !clock +. duration;
              let output = Accelerator.run_payload accel arg in
              outputs := (kernel, output) :: !outputs;
              timeline :=
                {
                  task_name = kernel;
                  resource = accel_name;
                  start_time = start;
                  finish_time = !clock;
                  output = Some output;
                  warning = None;
                }
                :: !timeline
          | None ->
              (* Degrade rather than abort: the kernel runs on the host at
                 speed 1.0 with no offload overhead, and the event records
                 why the accelerator was bypassed. *)
              let warning =
                Printf.sprintf
                  "unknown accelerator '%s'; kernel '%s' degraded to host execution"
                  accel_name kernel
              in
              warnings := warning :: !warnings;
              clock := !clock +. work;
              timeline :=
                {
                  task_name = kernel;
                  resource = "host";
                  start_time = start;
                  finish_time = !clock;
                  output = None;
                  warning = Some warning;
                }
                :: !timeline))
    tasks;
  let host_only_time = List.fold_left (fun acc t -> acc +. task_work t) 0.0 tasks in
  {
    timeline = List.rev !timeline;
    total_time = !clock;
    host_only_time;
    speedup = (if !clock > 0.0 then host_only_time /. !clock else 1.0);
    outputs = List.rev !outputs;
    warnings = List.rev !warnings;
  }

let amdahl_prediction ~accelerators tasks =
  let total = List.fold_left (fun acc t -> acc +. task_work t) 0.0 tasks in
  if total <= 0.0 then 1.0
  else begin
    (* Group offloaded fractions per accelerator, folding fixed overheads in
       as extra time relative to the original total. Offloads to unknown
       accelerators degrade to host execution in [run], so they count as
       classical time here to keep the prediction consistent. *)
    let classical =
      List.fold_left
        (fun acc t ->
          match t with
          | Classical (_, w) -> acc +. w
          | Offload (name, _, w, _) ->
              if find_accelerator accelerators name = None then acc +. w else acc)
        0.0 tasks
    in
    let accelerated_time =
      List.fold_left
        (fun acc t ->
          match t with
          | Classical _ -> acc
          | Offload (name, _, w, _) -> (
              match find_accelerator accelerators name with
              | Some a ->
                  acc +. a.Accelerator.offload_overhead
                  +. (w /. a.Accelerator.speed_factor)
              | None -> acc))
        0.0 tasks
    in
    total /. (classical +. accelerated_time)
  end
