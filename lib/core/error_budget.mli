(** Analytic error budgeting for compiled circuits.

    Sections 2.5-2.7 repeatedly ask which error source dominates a given
    design (gate errors vs decoherence vs readout, and how routing makes all
    three worse). This module produces the architect's first-order estimate
    from a compiled circuit and its platform error model — validated against
    full QX simulation in the test suite. *)

type estimate = {
  gate_survival : float;
      (** Product of per-operand depolarising survival over all gates. *)
  decoherence_survival : float;
      (** exp(-T (1/T1 + 1/Tphi)) accumulated over each used qubit's
          makespan exposure. *)
  readout_survival : float;  (** (1 - p_readout)^measurements. *)
  total : float;  (** Product of the three. *)
  dominant : string;  (** Which factor costs the most fidelity. *)
  makespan_ns : int;
  gate_count : int;
  measurement_count : int;
}

val of_output : Qca_compiler.Compiler.output -> estimate
(** Estimate for a compiled circuit, using the platform noise model and the
    schedule's makespan. *)

val of_circuit :
  platform:Qca_compiler.Platform.t -> Qca_circuit.Circuit.t -> estimate
(** Convenience: schedule with platform timing, then estimate. *)

val to_string : estimate -> string

(** {2 Fault-tolerant cost model}

    The forward-looking half of the resource question (section 2.1's
    fault-tolerance discussion): given a target logical error rate and the
    physical error rate, what surface-code distance does the program need,
    and what does that cost in physical qubits and syndrome cycles? Uses
    the standard threshold scaling [p_L(d) = A (p/p_th)^((d+1)/2)] with
    A = 0.1, p_th = 1% and the rotated-surface footprint
    ({!Qca_qec.Code.physical_qubits}, [2 d^2 - 1] per logical qubit).
    Driven by the static estimator via [qxc estimate]
    ([docs/estimate.md]). *)

type ft_estimate = {
  code : string;  (** Code family, ["rotated-surface"]. *)
  distance : int;  (** Smallest odd distance meeting [target]. *)
  logical_qubits : int;
  ft_physical_qubits : int;  (** [logical_qubits * (2 d^2 - 1)]. *)
  cycles : int;  (** Syndrome-extraction cycles: [depth * distance]. *)
  runtime_ns : float;  (** [cycles * cycle_ns]. *)
  logical_error : float;
      (** Predicted total failure probability at [distance]:
          [logical_qubits * depth * p_L(d)]. *)
  target : float;
  physical_error : float;
  feasible : bool;
      (** [false] when no distance up to [max_distance] meets the target
          (in particular whenever [physical_error >= p_th]); the report
          then shows the best (largest) distance tried. *)
}

val fault_tolerant :
  ?max_distance:int ->
  ?cycle_ns:float ->
  target:float ->
  physical_error:float ->
  logical_qubits:int ->
  depth:int ->
  unit ->
  ft_estimate
(** [max_distance] defaults to 101; [cycle_ns] (default 1000) is the wall
    time of one syndrome-extraction cycle. *)

val ft_to_string : ft_estimate -> string
val ft_to_json : ft_estimate -> string
