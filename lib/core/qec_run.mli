(** Planner-driven QEC-cycle execution: repeated circuit-level syndrome
    extraction ({!Qca_qec.Code.syndrome_circuit}) run through the QX
    simulation planner.

    Syndrome-extraction rounds are pure Clifford with mid-circuit
    preparation and measurement, so ideal runs take the tableau fast path
    (plan [Clifford], polynomial in qubit count) while noisy runs fall
    back to state-vector trajectories — the dispatch that makes repeated
    stabilization affordable above the simulator layer. The
    algebraic/tableau-level harnesses stay in {!Qca_qec.Qec_experiment};
    this module is the circuit-level, engine-routed counterpart (the QEC
    layer cannot depend on the engine). *)

val cycle_circuit : ?rounds:int -> Qca_qec.Code.t -> Qca_circuit.Circuit.t
(** [rounds] (default 1) concatenated syndrome-extraction rounds on data
    qubits [0 .. n-1] with one ancilla per stabilizer at [n + i]; each
    round re-prepares its ancillas, so the classical record after the run
    holds the last round's syndrome. Raises [Invalid_argument] on
    [rounds < 1]. *)

type outcome = {
  rounds : int;
  shots : int;
  plan : Qca_qx.Engine.plan;  (** What the planner actually chose. *)
  quiet_fraction : float;
      (** Fraction of shots whose final-round syndrome is trivial (all
          ancilla bits 0). 1.0 for a stabilized state under ideal noise;
          codes whose stabilizers do not fix |0...0> (e.g. surface codes)
          project on the first round and stay below 1.0 even ideally. *)
  histogram : (string * int) list;
  report : Qca_qx.Engine.run_report;
}

val run :
  ?rounds:int ->
  ?shots:int ->
  ?seed:int ->
  ?noise:float ->
  ?plan:Qca_qx.Engine.plan ->
  Qca_qec.Code.t ->
  (outcome, Qca_util.Error.t) result
(** Run [shots] (default 1024) shots of {!cycle_circuit} through
    {!Qca_qx.Engine.run_checked}. [noise] is a depolarising rate ([None] =
    ideal, which the planner sends to the tableau); [plan] forces a
    backend exactly as [qxc run --plan] does, structured errors
    included. *)
