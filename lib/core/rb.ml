module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Matrix = Qca_util.Matrix
module Rng = Qca_util.Rng
module Stats = Qca_util.Stats
module Sim = Qca_qx.Sim

type clifford = { gates : Gate.unitary list; matrix : Matrix.t; mutable inverse_index : int }

let matrix_of_gates gates =
  List.fold_left (fun acc g -> Matrix.mul (Gate.matrix g) acc) (Matrix.identity 2) gates

(* Close {H, S} under products, deduplicating up to global phase: yields the
   24-element single-qubit Clifford group. *)
let build_group () =
  let seen : clifford list ref = ref [] in
  let known m = List.exists (fun c -> Matrix.equal_up_to_phase ~eps:1e-9 c.matrix m) !seen in
  let frontier = ref [ { gates = []; matrix = Matrix.identity 2; inverse_index = -1 } ] in
  seen := !frontier;
  let generators = [ Gate.H; Gate.S ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun c ->
        List.iter
          (fun g ->
            let gates = c.gates @ [ g ] in
            let m = matrix_of_gates gates in
            if not (known m) then begin
              let element = { gates; matrix = m; inverse_index = -1 } in
              seen := element :: !seen;
              next := element :: !next
            end)
          generators)
      !frontier;
    frontier := !next
  done;
  let arr = Array.of_list (List.rev !seen) in
  (* Fill inverse table. *)
  Array.iteri
    (fun i c ->
      let adj = Matrix.adjoint c.matrix in
      let rec find j =
        if j = Array.length arr then failwith "Rb: inverse not found"
        else if Matrix.equal_up_to_phase ~eps:1e-9 arr.(j).matrix adj then j
        else find (j + 1)
      in
      arr.(i).inverse_index <- find 0)
    arr;
  arr

let cached_group = lazy (build_group ())

let group () = Lazy.force cached_group

let gates c = c.gates

let inverse c =
  let g = group () in
  g.(c.inverse_index)

let average_gate_count () =
  let g = group () in
  let total = Array.fold_left (fun acc c -> acc + List.length c.gates) 0 g in
  float_of_int total /. float_of_int (Array.length g)

let interleaved_sequence_circuit ?interleave rng ~qubit ~total_qubits ~length =
  let g = group () in
  let chosen0 = List.init length (fun _ -> g.(Rng.int rng (Array.length g))) in
  (* When interleaving, the target gate follows every random Clifford. *)
  let interleave_element =
    match interleave with
    | None -> None
    | Some u ->
        if not (Gate.is_clifford u) then
          invalid_arg "Rb: interleaved gate must be a Clifford";
        Some { gates = [ u ]; matrix = matrix_of_gates [ u ]; inverse_index = -1 }
  in
  let chosen =
    match interleave_element with
    | None -> chosen0
    | Some e -> List.concat_map (fun c -> [ c; e ]) chosen0
  in
  let net =
    List.fold_left (fun acc c -> Matrix.mul c.matrix acc) (Matrix.identity 2) chosen
  in
  (* Recovery: the group element equal to the adjoint of the net product. *)
  let adj = Matrix.adjoint net in
  let recovery =
    let rec find j =
      if j = Array.length g then failwith "Rb: recovery not found"
      else if Matrix.equal_up_to_phase ~eps:1e-9 g.(j).matrix adj then g.(j)
      else find (j + 1)
    in
    find 0
  in
  let all = chosen @ [ recovery ] in
  let instrs =
    List.concat_map (fun c -> List.map (fun u -> Gate.Unitary (u, [| qubit |])) c.gates) all
    @ [ Gate.Measure qubit ]
  in
  Circuit.of_list ~name:(Printf.sprintf "rb-%d" length) total_qubits instrs

type point = { sequence_length : int; survival : float; sequences : int; shots_each : int }

type decay = {
  points : point list;
  amplitude : float;
  p : float;
  error_per_clifford : float;
}

let sequence_circuit rng ~qubit ~total_qubits ~length =
  interleaved_sequence_circuit rng ~qubit ~total_qubits ~length

let run_with ?interleave ~lengths ~sequences ~shots ~noise ~rng () =
  let survival_at length =
    let per_sequence =
      Array.init sequences (fun _ ->
          let circuit =
            interleaved_sequence_circuit ?interleave rng ~qubit:0 ~total_qubits:1 ~length
          in
          Sim.success_probability ~noise ~rng ~shots
            ~accept:(fun bits -> bits.(0) = 0)
            circuit)
    in
    Stats.mean per_sequence
  in
  let points =
    List.map
      (fun m -> { sequence_length = m; survival = survival_at m; sequences; shots_each = shots })
      lengths
  in
  (* survival = 0.5 + A p^m; fit (survival - 0.5) as exponential decay. *)
  let usable =
    List.filter_map
      (fun pt ->
        let y = pt.survival -. 0.5 in
        if y > 1e-3 then Some (float_of_int pt.sequence_length, y) else None)
      points
  in
  let amplitude, p =
    if List.length usable >= 2 then Stats.exponential_decay_fit (Array.of_list usable)
    else (0.5, 1.0)
  in
  let p = Float.min 1.0 p in
  { points; amplitude; p; error_per_clifford = (1.0 -. p) /. 2.0 }

let run ?(lengths = [ 1; 2; 4; 8; 16; 32 ]) ?(sequences = 8) ?(shots = 64) ~noise ~rng () =
  run_with ~lengths ~sequences ~shots ~noise ~rng ()

type interleaved = { reference : decay; interleaved : decay; gate_error : float }

let run_interleaved ?(lengths = [ 1; 2; 4; 8; 16; 32 ]) ?(sequences = 8) ?(shots = 64)
    ~gate ~noise ~rng () =
  let reference = run_with ~lengths ~sequences ~shots ~noise ~rng () in
  let inter = run_with ~interleave:gate ~lengths ~sequences ~shots ~noise ~rng () in
  let ratio = inter.p /. Float.max 1e-9 reference.p in
  { reference; interleaved = inter; gate_error = Float.max 0.0 ((1.0 -. ratio) /. 2.0) }
