(** The three full-stack accelerator instances of section 3, with one
    uniform execution path: OpenQL-style compile, cQASM, then either direct
    QX execution (perfect qubits) or eQASM through the cycle-accurate
    micro-architecture driving QX (real/realistic qubits). *)

type t = {
  stack_name : string;
  platform : Qca_compiler.Platform.t;
  model : Qubit_model.t;
  technology : Qca_microarch.Controller.technology option;
      (** Micro-architecture configuration; required for Real stacks. *)
}

val superconducting : unit -> t
(** Section 3.1: real superconducting qubits on the 17-qubit platform,
    executed through the micro-architecture. *)

val semiconducting : unit -> t
(** Section 3.1's retargeting partner: the same micro-architecture with the
    semiconducting configuration file and micro-code table. *)

val genome : ?qubits:int -> unit -> t
(** Section 3.2: quantum genome sequencing on perfect qubits (default 12). *)

val optimisation : ?qubits:int -> unit -> t
(** Section 3.3: hybrid optimisation on perfect qubits (default 16 — the
    four-city TSP QUBO). *)

val realistic_of : t -> t
(** The same stack with realistic (simulated, noisy) qubits — Figure 2's
    third dimension. *)

type run = {
  compiled : Qca_compiler.Compiler.output;
  histogram : (string * int) list;
  microarch_stats : Qca_microarch.Controller.run_stats option;
      (** Last-shot pipeline stats when the stack has a micro-architecture. *)
  engine_report : Qca_qx.Engine.run_report;
      (** Per-run execution metrics: plan chosen, gate applies, phase
          timings. Micro-architecture stacks always report the trajectory
          plan; direct-QX stacks take the sampled plan when the circuit
          allows it. *)
}

val execute :
  ?shots:int ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  t ->
  Qca_circuit.Circuit.t ->
  run
(** Push a circuit through the whole stack. Default 512 shots. Seed
    semantics follow {!Qca_qx.Engine.run}: [?rng] wins over [?seed]; with
    neither, a process-wide stream advances across calls.

    With a [faults] injector attached to a micro-architecture stack, shots
    are retried per [policy] (default
    {!Qca_util.Resilience.default_policy}). When the faulted-shot ratio
    exceeds [policy.degrade_threshold] — or the controller fails outright —
    the stack degrades: the already-compiled program re-executes directly
    on QX (realistic simulation), [microarch_stats] is [None], and
    [engine_report.resilience.degraded] records the event. Histogram keys
    stay platform-width across the fallback. *)

val run_checked :
  ?shots:int ->
  ?seed:int ->
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  ?policy:Qca_util.Resilience.policy ->
  t ->
  Qca_circuit.Circuit.t ->
  (run, Qca_util.Error.t) result
(** [execute] with structured errors instead of exceptions (compilation
    failures included).

    @deprecated Thin compatibility wrapper: new callers should build a
    {!Job_spec.t} and go through {!Runner.run} (or {!run_spec}), the
    canonical execution path. *)

(** {2 Job-spec surface}

    [execute] is itself a thin client of this path: it builds a
    {!Job_spec.t} from its arguments and calls {!execute_spec}. The
    [Runner.Stack_runner] instance and the job service enter here. *)

val execute_spec :
  ?rng:Qca_util.Rng.t -> ?faults:Qca_util.Fault.t -> t -> Job_spec.t -> run
(** Run a job spec through this stack. The stack's platform/model/
    technology decide the route ([spec.route] is not consulted); the spec
    contributes payload, shots, seed and the fault/retry policy. An
    explicit [?faults] injector wins over the spec's [fault_rate] (so a
    caller can thread one injector across several calls). Raises
    {!Qca_util.Error.Error} on unresolvable payloads. *)

val run_spec :
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  t ->
  Job_spec.t ->
  (run, Qca_util.Error.t) result
(** [execute_spec] with structured errors instead of exceptions. *)

val success_probability : run -> accept:(string -> bool) -> float
(** Fraction of histogram mass on accepted bitstrings. *)

val describe : t -> string
