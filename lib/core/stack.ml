module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Controller = Qca_microarch.Controller
module Circuit = Qca_circuit.Circuit
module Engine = Qca_qx.Engine
module Trace = Qca_util.Trace

type t = {
  stack_name : string;
  platform : Platform.t;
  model : Qubit_model.t;
  technology : Controller.technology option;
}

let superconducting () =
  {
    stack_name = "superconducting-full-stack";
    platform = Platform.superconducting_17;
    model = Qubit_model.Real;
    technology = Some Controller.superconducting;
  }

let semiconducting () =
  {
    stack_name = "semiconducting-full-stack";
    platform = Platform.semiconducting_4;
    model = Qubit_model.Real;
    technology = Some Controller.semiconducting;
  }

let genome ?(qubits = 12) () =
  {
    stack_name = "genome-sequencing-accelerator";
    platform = Platform.perfect qubits;
    model = Qubit_model.Perfect;
    technology = None;
  }

let optimisation ?(qubits = 16) () =
  {
    stack_name = "hybrid-optimisation-accelerator";
    platform = Platform.perfect qubits;
    model = Qubit_model.Perfect;
    technology = None;
  }

let realistic_of stack =
  (* A perfect platform carries an ideal error model; realistic execution
     needs a real one, so fall back to the transmon defaults. *)
  let platform =
    if Qca_qx.Noise.is_ideal stack.platform.Platform.noise then
      { stack.platform with Platform.noise = Qca_qx.Noise.superconducting }
    else stack.platform
  in
  {
    stack with
    platform;
    model = Qubit_model.Realistic;
    stack_name = stack.stack_name ^ "-realistic";
  }

type run = {
  compiled : Compiler.output;
  histogram : (string * int) list;
  microarch_stats : Controller.run_stats option;
  engine_report : Engine.run_report;
}

let with_degraded report msg =
  let r = report.Engine.resilience in
  { report with Engine.resilience = { r with Engine.degraded = Some msg } }

(* The spec-consuming executor: the one canonical code path. [execute] and
   [Runner.Stack_runner] are both thin clients of it. The stack's own
   platform/model/technology decide the route; the spec contributes the
   run parameters (shots, seed, retry policy, payload). *)
let execute_spec ?rng ?faults stack (spec : Job_spec.t) =
  let shots = spec.Job_spec.shots in
  let seed = spec.Job_spec.seed in
  let policy = Job_spec.retry_policy spec in
  let faults =
    match faults with Some _ as f -> f | None -> Job_spec.faults spec
  in
  let circuit =
    match Job_spec.resolve spec with
    | Ok c -> c
    | Error e -> raise (Qca_util.Error.Error e)
  in
  Trace.with_span "stack.execute" (fun stack_sp ->
  Trace.annotate stack_sp (fun () ->
      [
        ("stack", Trace.String stack.stack_name);
        ("platform", Trace.String stack.platform.Platform.name);
        ("model", Trace.String (Qubit_model.to_string stack.model));
      ]);
  let mode = Qubit_model.compiler_mode stack.model in
  let strategy = Job_spec.route_router spec.Job_spec.route in
  let compiled = Compiler.compile ~strategy stack.platform mode circuit in
  let noise = Qubit_model.noise stack.model stack.platform in
  (* Realistic-Sim fallback: execute the already-compiled output directly on
     QX. Same platform width as the micro-architecture path, so histogram
     keys stay comparable after a degradation. *)
  let fallback reason =
    (match reason with
    | Some msg -> Trace.add_attr stack_sp "degraded" (Trace.String msg)
    | None -> ());
    let result = Compiler.execute_result ~shots ?seed ?rng compiled in
    {
      compiled;
      histogram = result.Engine.histogram;
      microarch_stats = None;
      engine_report =
        (match reason with
        | None -> result.Engine.report
        | Some msg -> with_degraded result.Engine.report msg);
    }
  in
  match stack.technology, compiled.Compiler.eqasm with
  | Some technology, Some program -> (
      (* Execute every shot through the micro-architecture; if the injected
         fault load exceeds the policy threshold (or every shot faults), the
         stack degrades to direct realistic-QX execution of the same
         compiled program. *)
      match
        Qca_util.Error.protect ~site:"Stack.execute" (fun () ->
            Controller.run_shots ~noise ?seed ?rng ~shots ?faults ~policy
              technology program)
      with
      | Ok r ->
          let faulted =
            r.Controller.report.Engine.resilience.Engine.faulted_shots
          in
          let ratio = float_of_int faulted /. float_of_int (max 1 shots) in
          if ratio > policy.Qca_util.Resilience.degrade_threshold then
            fallback
              (Some
                 (Printf.sprintf
                    "microarch faulted %d/%d shots (threshold %.0f%%); fell \
                     back to realistic QX simulation"
                    faulted shots
                    (100.0 *. policy.Qca_util.Resilience.degrade_threshold)))
          else
            {
              compiled;
              histogram = r.Controller.histogram;
              microarch_stats = Some r.Controller.last.Controller.stats;
              engine_report = r.Controller.report;
            }
      | Error e ->
          fallback
            (Some
               (Printf.sprintf
                  "microarch failed (%s); fell back to realistic QX simulation"
                  (Qca_util.Error.to_string e))))
  | None, _ | _, None -> fallback None)

let run_spec ?rng ?faults stack spec =
  Qca_util.Error.protect ~site:"Stack.run_spec" (fun () ->
      execute_spec ?rng ?faults stack spec)

let spec_of ?(shots = 512) ?seed ?(policy = Qca_util.Resilience.default_policy)
    circuit =
  Job_spec.make ~label:(Circuit.name circuit) ~shots ?seed
    ~max_retries:policy.Qca_util.Resilience.max_retries
    ~backoff_ns:policy.Qca_util.Resilience.backoff_ns
    ~degrade_threshold:policy.Qca_util.Resilience.degrade_threshold
    (Job_spec.Circuit circuit)

let execute ?shots ?seed ?rng ?faults ?policy stack circuit =
  execute_spec ?rng ?faults stack (spec_of ?shots ?seed ?policy circuit)

let run_checked ?shots ?seed ?rng ?faults ?policy stack circuit =
  Qca_util.Error.protect ~site:"Stack.run_checked" (fun () ->
      execute ?shots ?seed ?rng ?faults ?policy stack circuit)

let success_probability run ~accept =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 run.histogram in
  let hits =
    List.fold_left (fun acc (key, c) -> if accept key then acc + c else acc) 0 run.histogram
  in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let describe stack =
  Printf.sprintf "%s: platform=%s qubits=%s model=%s microarch=%s" stack.stack_name
    stack.platform.Platform.name
    (string_of_int stack.platform.Platform.qubit_count)
    (Qubit_model.to_string stack.model)
    (match stack.technology with
    | Some t -> t.Controller.tech_name
    | None -> "direct-qx")
