module Engine = Qca_qx.Engine
module Compiler = Qca_compiler.Compiler
module Platform = Qca_compiler.Platform
module Controller = Qca_microarch.Controller
module Error = Qca_util.Error

type outcome = {
  histogram : (string * int) list;
  report : Engine.run_report;
  compiled : Compiler.output option;
  microarch_stats : Controller.run_stats option;
}

module type RUNNER = sig
  val runner_name : string

  val run :
    ?rng:Qca_util.Rng.t ->
    ?faults:Qca_util.Fault.t ->
    Job_spec.t ->
    (outcome, Qca_util.Error.t) result
end

let wrong_route ~site spec =
  Stdlib.Error
    (Error.make ~site
       ~context:[ ("route", Job_spec.route_description spec) ]
       (Error.Invalid "job spec routed to the wrong runner"))

module Engine_runner = struct
  let runner_name = "engine"

  let run ?rng ?faults (spec : Job_spec.t) =
    match spec.Job_spec.route with
    | Job_spec.Compiled _ -> wrong_route ~site:"Runner.Engine_runner" spec
    | Job_spec.Direct -> (
        match Job_spec.resolve spec with
        | Error e -> Stdlib.Error e
        | Ok circuit -> (
            let faults =
              match faults with
              | Some _ as f -> f
              | None -> Job_spec.faults spec
            in
            match
              Engine.run_checked ~noise:(Job_spec.noise_model spec)
                ?seed:spec.Job_spec.seed ?rng ?plan:spec.Job_spec.plan
                ~shots:spec.Job_spec.shots
                ?faults ~policy:(Job_spec.retry_policy spec)
                ~fusion:spec.Job_spec.fusion circuit
            with
            | Error e -> Stdlib.Error e
            | Ok result ->
                Ok
                  {
                    histogram = result.Engine.histogram;
                    report = result.Engine.report;
                    compiled = None;
                    microarch_stats = None;
                  }))
end

module Microarch_runner = struct
  let runner_name = "microarch"

  let run ?rng ?faults (spec : Job_spec.t) =
    match spec.Job_spec.route with
    | Job_spec.Compiled
        {
          platform;
          mode = Compiler.Real;
          technology = Some technology;
          router;
          _;
        }
      -> (
        match Job_spec.resolve spec with
        | Error e -> Stdlib.Error e
        | Ok circuit ->
            let faults =
              match faults with
              | Some _ as f -> f
              | None -> Job_spec.faults spec
            in
            Error.protect ~site:"Runner.Microarch_runner" (fun () ->
                let out =
                  Compiler.compile ~strategy:router platform Compiler.Real
                    circuit
                in
                match out.Compiler.eqasm with
                | None ->
                    Error.fail ~site:"Runner.Microarch_runner"
                      ~context:[ ("platform", platform.Platform.name) ]
                      (Error.Invalid "compiler produced no eQASM")
                | Some program ->
                    let r =
                      Controller.run_shots ~noise:platform.Platform.noise
                        ?seed:spec.Job_spec.seed ?rng
                        ~shots:spec.Job_spec.shots ?faults
                        ~policy:(Job_spec.retry_policy spec) technology program
                    in
                    {
                      histogram = r.Controller.histogram;
                      report = r.Controller.report;
                      compiled = Some out;
                      microarch_stats = Some r.Controller.last.Controller.stats;
                    }))
    | _ -> wrong_route ~site:"Runner.Microarch_runner" spec
end

module Stack_runner = struct
  let runner_name = "stack"

  let model_of_mode = function
    | Compiler.Perfect -> Qubit_model.Perfect
    | Compiler.Realistic -> Qubit_model.Realistic
    | Compiler.Real -> Qubit_model.Real

  let run ?rng ?faults (spec : Job_spec.t) =
    match spec.Job_spec.route with
    | Job_spec.Direct -> wrong_route ~site:"Runner.Stack_runner" spec
    | Job_spec.Compiled { platform; mode; technology; _ } -> (
        let stack =
          {
            Stack.stack_name = spec.Job_spec.label ^ "-stack";
            platform;
            model = model_of_mode mode;
            technology;
          }
        in
        match Stack.run_spec ?rng ?faults stack spec with
        | Error e -> Stdlib.Error e
        | Ok r ->
            Ok
              {
                histogram = r.Stack.histogram;
                report = r.Stack.engine_report;
                compiled = Some r.Stack.compiled;
                microarch_stats = r.Stack.microarch_stats;
              })
end

let select (spec : Job_spec.t) : (module RUNNER) =
  match spec.Job_spec.route with
  | Job_spec.Direct -> (module Engine_runner)
  | Job_spec.Compiled
      { mode = Compiler.Real; technology = Some _; ladder = false; _ } ->
      (module Microarch_runner)
  | Job_spec.Compiled _ -> (module Stack_runner)

let run ?rng ?faults spec =
  let (module R) = select spec in
  R.run ?rng ?faults spec
