module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Gate = Qca_circuit.Gate
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Mapping = Qca_compiler.Mapping
module Controller = Qca_microarch.Controller
module Error = Qca_util.Error
module Fault = Qca_util.Fault
module Resilience = Qca_util.Resilience

type payload =
  | Circuit of Circuit.t
  | Source of { name : string; text : string }

type route =
  | Direct
  | Compiled of {
      platform : Platform.t;
      mode : Compiler.mode;
      technology : Controller.technology option;
      ladder : bool;
      router : Mapping.strategy;
    }

type t = {
  label : string;
  payload : payload;
  route : route;
  shots : int;
  seed : int option;
  noise : float option;
  plan : Qca_qx.Engine.plan option;
  fusion : bool;
  fault_rate : float option;
  fault_seed : int;
  max_retries : int;
  backoff_ns : int;
  degrade_threshold : float;
  priority : int;
  deadline_ms : int option;
}

let make ?(label = "job") ?(route = Direct) ?(shots = 1024) ?seed ?noise
    ?plan ?(fusion = true) ?fault_rate
    ?(fault_seed = Fault.default_seed)
    ?(max_retries = Resilience.default_policy.Resilience.max_retries)
    ?(backoff_ns = Resilience.default_policy.Resilience.backoff_ns)
    ?(degrade_threshold =
      Resilience.default_policy.Resilience.degrade_threshold) ?deadline_ms
    payload =
  if shots < 1 then invalid_arg "Job_spec.make: shots must be positive";
  (match deadline_ms with
  | Some d when d < 0 ->
      invalid_arg "Job_spec.make: deadline_ms must be non-negative"
  | _ -> ());
  {
    label;
    payload;
    route;
    shots;
    seed;
    noise;
    plan;
    fusion;
    fault_rate;
    fault_seed;
    max_retries;
    backoff_ns;
    degrade_threshold;
    priority = 0;
    deadline_ms;
  }

let of_circuit ?label circuit = make ?label (Circuit circuit)

let of_source ?(label = "job") text =
  make ~label (Source { name = label; text })

let resolve spec =
  match spec.payload with
  | Circuit c -> Ok c
  | Source { name; text } ->
      Error.protect ~site:("Job_spec.resolve(" ^ name ^ ")") (fun () ->
          Cqasm.parse_circuit text)

(* The one estimation semantics shared by qxc, the service's admission
   oracle and qxd's pre-claim gate: Source payloads are parsed but NOT
   flattened, so repeated subcircuits estimate symbolically in O(body). *)
let estimate spec =
  let noisy =
    match spec.route with
    | Direct -> spec.noise <> None
    | Compiled { platform; _ } -> not (Qca_qx.Noise.is_ideal platform.Platform.noise)
  in
  let run () =
    match spec.payload with
    | Circuit c ->
        Qca_analysis.Estimate.of_circuit ~shots:spec.shots ~noisy
          ?plan:spec.plan c
    | Source { text; _ } ->
        Qca_analysis.Estimate.of_program ~shots:spec.shots ~noisy
          ?plan:spec.plan (Cqasm.parse text)
  in
  Error.protect ~site:("Job_spec.estimate(" ^ spec.label ^ ")") run

(* The digest covers the semantic content only: qubit count plus the
   instruction list. The circuit's name is presentation, not semantics —
   two identically-shaped circuits submitted under different labels must
   share a distribution. *)
let digest circuit =
  let body =
    Circuit.instructions circuit
    |> List.map Gate.to_string
    |> String.concat "\n"
  in
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d\n%s" (Circuit.qubit_count circuit) body))

let route_router = function
  | Direct -> Mapping.Sabre
  | Compiled { router; _ } -> router

(* The router participates so compiled results produced by different
   routing strategies never share a cache entry. The default ([Sabre])
   adds no suffix, keeping historical fingerprints stable. *)
let route_fingerprint = function
  | Direct -> "direct"
  | Compiled { platform; mode; technology; ladder; router } ->
      Printf.sprintf "%s/%s/%s%s%s" platform.Platform.name
        (match mode with
        | Compiler.Perfect -> "perfect"
        | Compiler.Realistic -> "realistic"
        | Compiler.Real -> "real")
        (match technology with
        | Some t -> t.Controller.tech_name
        | None -> "direct-qx")
        (if ladder then "+ladder" else "")
        (match router with
        | Mapping.Sabre -> ""
        | r -> "+" ^ Mapping.strategy_to_string r)

let route_description spec = route_fingerprint spec.route

(* The plan override participates like the router: the historical [traj=%b]
   field keeps every pre-planner fingerprint stable (auto was [false],
   --trajectory was [true]), and only the two new forces — sampled and
   clifford — append a suffix. *)
let plan_fingerprint = function
  | None | Some Qca_qx.Engine.Trajectory -> ""
  | Some Qca_qx.Engine.Sampled -> "|plan=sampled"
  | Some Qca_qx.Engine.Clifford -> "|plan=clifford"

let cache_key spec circuit =
  match spec.seed with
  | None -> None
  | Some seed ->
      Some
        (Printf.sprintf "%s|%s|shots=%d|seed=%d|noise=%s|traj=%b|faults=%s%s"
           (digest circuit)
           (route_fingerprint spec.route)
           spec.shots seed
           (match spec.noise with
           | None -> "ideal"
           | Some p -> Printf.sprintf "%.17g" p)
           (spec.plan = Some Qca_qx.Engine.Trajectory)
           (match spec.fault_rate with
           | None -> "off"
           | Some p ->
               Printf.sprintf "%.17g:%d:%d:%d:%.17g" p spec.fault_seed
                 spec.max_retries spec.backoff_ns spec.degrade_threshold)
           (plan_fingerprint spec.plan))

let noise_model spec =
  match spec.noise with
  | None -> Qca_qx.Noise.ideal
  | Some p -> Qca_qx.Noise.depolarizing p

let faults spec =
  match spec.fault_rate with
  | None -> None
  | Some p -> Some (Fault.make ~seed:spec.fault_seed (Fault.uniform p))

let retry_policy spec =
  {
    Resilience.max_retries = spec.max_retries;
    backoff_ns = spec.backoff_ns;
    degrade_threshold = spec.degrade_threshold;
  }
