module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Schedule = Qca_compiler.Schedule
module Noise = Qca_qx.Noise

type estimate = {
  gate_survival : float;
  decoherence_survival : float;
  readout_survival : float;
  total : float;
  dominant : string;
  makespan_ns : int;
  gate_count : int;
  measurement_count : int;
}

let of_schedule platform (schedule : Schedule.t) circuit =
  let noise = platform.Platform.noise in
  let gate_survival = ref 1.0 in
  let measurement_count = ref 0 in
  List.iter
    (fun instr ->
      match instr with
      | Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops) ->
          let p =
            if Gate.arity u >= 2 then noise.Noise.two_qubit_error
            else noise.Noise.single_qubit_error
          in
          gate_survival := !gate_survival *. ((1.0 -. p) ** float_of_int (Array.length ops))
      | Gate.Measure _ -> incr measurement_count
      | Gate.Prep _ -> gate_survival := !gate_survival *. (1.0 -. noise.Noise.prep_error)
      | Gate.Barrier _ -> ())
    (Circuit.instructions circuit);
  let makespan_ns = schedule.Schedule.makespan * platform.Platform.cycle_ns in
  let qubits_used = List.length (Circuit.qubits_used circuit) in
  let decoherence_survival =
    if noise.Noise.t1_ns = infinity && noise.Noise.t2_ns = infinity then 1.0
    else begin
      let t1_rate = if noise.Noise.t1_ns = infinity then 0.0 else 1.0 /. noise.Noise.t1_ns in
      let t2_rate = if noise.Noise.t2_ns = infinity then 0.0 else 1.0 /. noise.Noise.t2_ns in
      let phi_rate = Float.max 0.0 (t2_rate -. (t1_rate /. 2.0)) in
      let per_qubit = exp (-.float_of_int makespan_ns *. (t1_rate +. phi_rate)) in
      per_qubit ** float_of_int qubits_used
    end
  in
  let readout_survival =
    (1.0 -. noise.Noise.readout_error) ** float_of_int !measurement_count
  in
  let total = !gate_survival *. decoherence_survival *. readout_survival in
  let dominant =
    let worst = Float.min !gate_survival (Float.min decoherence_survival readout_survival) in
    if worst = !gate_survival then "gate errors"
    else if worst = decoherence_survival then "decoherence"
    else "readout"
  in
  {
    gate_survival = !gate_survival;
    decoherence_survival;
    readout_survival;
    total;
    dominant;
    makespan_ns;
    gate_count = Circuit.gate_count circuit;
    measurement_count = !measurement_count;
  }

let of_output (output : Compiler.output) =
  of_schedule output.Compiler.platform output.Compiler.schedule output.Compiler.physical

let of_circuit ~platform circuit =
  let schedule = Schedule.run platform circuit in
  of_schedule platform schedule circuit

let to_string e =
  Printf.sprintf
    "gates %.4f x decoherence %.4f x readout %.4f = %.4f  (dominant: %s; %d gates, %d \
     measurements, %d ns)"
    e.gate_survival e.decoherence_survival e.readout_survival e.total e.dominant
    e.gate_count e.measurement_count e.makespan_ns

(* ------------------------------------------------------------------ *)
(* Fault-tolerant cost model.                                          *)

type ft_estimate = {
  code : string;
  distance : int;
  logical_qubits : int;
  ft_physical_qubits : int;
  cycles : int;
  runtime_ns : float;
  logical_error : float;
  target : float;
  physical_error : float;
  feasible : bool;
}

let ft_scale_a = 0.1
let ft_threshold = 0.01

(* Per logical qubit, per logical time step (d syndrome cycles). *)
let logical_error_rate ~physical_error d =
  ft_scale_a *. ((physical_error /. ft_threshold) ** (float_of_int (d + 1) /. 2.0))

let fault_tolerant ?(max_distance = 101) ?(cycle_ns = 1000.0) ~target
    ~physical_error ~logical_qubits ~depth () =
  let volume = float_of_int logical_qubits *. float_of_int (max 1 depth) in
  let total d = volume *. logical_error_rate ~physical_error d in
  let rec search d =
    if total d <= target then (d, true)
    else if d + 2 > max_distance then (d, false)
    else search (d + 2)
  in
  let distance, feasible = search 3 in
  (* Rotated-surface footprint: d^2 data + d^2 - 1 ancillas per logical
     qubit — the closed form of Qca_qec.Code.physical_qubits
     (rotated_surface d), kept closed-form so scanning distances never
     materialises O(d^4) stabilizer tables. *)
  let per_logical = (2 * distance * distance) - 1 in
  let cycles = max 1 depth * distance in
  {
    code = "rotated-surface";
    distance;
    logical_qubits;
    ft_physical_qubits = logical_qubits * per_logical;
    cycles;
    runtime_ns = float_of_int cycles *. cycle_ns;
    logical_error = total distance;
    target;
    physical_error;
    feasible;
  }

let ft_to_string ft =
  Printf.sprintf
    "%s d=%d%s: %d logical -> %d physical qubits, %d cycles (%.3g ns), p_L \
     %.3g (target %.3g at p=%.3g)"
    ft.code ft.distance
    (if ft.feasible then "" else " [target unreachable]")
    ft.logical_qubits ft.ft_physical_qubits ft.cycles ft.runtime_ns
    ft.logical_error ft.target ft.physical_error

let ft_to_json ft =
  Printf.sprintf
    "{\"code\":\"%s\",\"distance\":%d,\"logical_qubits\":%d,\
     \"physical_qubits\":%d,\"cycles\":%d,\"runtime_ns\":%.6g,\
     \"logical_error\":%.6g,\"target\":%.6g,\"physical_error\":%.6g,\
     \"feasible\":%b}"
    ft.code ft.distance ft.logical_qubits ft.ft_physical_qubits ft.cycles
    ft.runtime_ns ft.logical_error ft.target ft.physical_error ft.feasible
