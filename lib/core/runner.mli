(** The one execution entry point: dispatch a {!Job_spec.t} to the right
    backend surface.

    Historically the stack grew three parallel result-typed entry points —
    [Qca_qx.Engine.run_checked], [Qca_microarch.Controller.run_checked] and
    {!Stack.run_checked} — each with its own argument list. They remain as
    thin compatibility wrappers, but the canonical path is now: build a
    {!Job_spec.t}, call {!run}. [qxc run]/[exec], the examples and the job
    service ({!Qca_service.Service}) all go through here, so every consumer
    sees the same seed semantics, fault handling and report schema
    ([docs/service.md]). *)

type outcome = {
  histogram : (string * int) list;
      (** Measured bitstrings, count-descending (see
          {!Qca_qx.Engine.result}). *)
  report : Qca_qx.Engine.run_report;
  compiled : Qca_compiler.Compiler.output option;
      (** Present for [Compiled] routes. *)
  microarch_stats : Qca_microarch.Controller.run_stats option;
      (** Last-shot pipeline stats for micro-architecture execution. *)
}

(** The shared shape of an execution surface. [?rng] overrides the spec's
    seed (engine precedence rules); [?faults] threads an existing injector
    through instead of building one from the spec — both exist so the job
    service can slice a job across scheduler ticks while keeping the
    merged result bit-identical to one uninterrupted run. *)
module type RUNNER = sig
  val runner_name : string

  val run :
    ?rng:Qca_util.Rng.t ->
    ?faults:Qca_util.Fault.t ->
    Job_spec.t ->
    (outcome, Qca_util.Error.t) result
end

module Engine_runner : RUNNER
(** [Direct] routes: straight QX engine execution ({!Qca_qx.Engine.run});
    rejects [Compiled] specs. *)

module Microarch_runner : RUNNER
(** [Compiled] routes with a technology, Real mode and [ladder = false]:
    compile to eQASM and execute every shot through the cycle-accurate
    controller, failing fast on structured errors (the [qxc exec]
    semantics). *)

module Stack_runner : RUNNER
(** Every other [Compiled] route: full-stack execution via
    {!Stack.execute_spec}, including the micro-architecture -> realistic-QX
    degradation ladder when [ladder = true]. *)

val select : Job_spec.t -> (module RUNNER)
(** The runner {!run} would dispatch to. *)

val run :
  ?rng:Qca_util.Rng.t ->
  ?faults:Qca_util.Fault.t ->
  Job_spec.t ->
  (outcome, Qca_util.Error.t) result
(** [run spec] = [let (module R) = select spec in R.run spec]. *)
