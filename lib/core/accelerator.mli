(** Heterogeneous accelerator registry (Figure 1): FPGAs, GPUs, NPUs and the
    two new classes the paper adds — gate-based quantum accelerators and
    quantum annealers. *)

type kind =
  | Fpga
  | Gpu
  | Npu
  | Quantum_gate
  | Quantum_annealer

val kind_to_string : kind -> string

type t = {
  name : string;
  kind : kind;
  speed_factor : float;
      (** Throughput on suitable kernels relative to the host CPU. *)
  offload_overhead : float;
      (** Fixed time units per offload (data shipping, Figure 1's bus). *)
  payload : (string -> string) option;
      (** Optional real computation: maps a kernel argument string to an
          output (used to back quantum kernels with actual simulator runs). *)
}

val make :
  ?payload:(string -> string) ->
  name:string ->
  kind:kind ->
  speed_factor:float ->
  offload_overhead:float ->
  unit ->
  t

val default_park : unit -> t list
(** Figure 1's accelerator park: one of each kind, with representative
    speed factors. *)

val run_payload : t -> string -> string
(** Execute the payload (identity when none is attached). *)

val with_backend :
  (module Qca_qx.Backend.S) -> ?shots:int -> ?seed:int -> t -> t
(** Attach an execution-target payload: kernel arguments are parsed as
    cQASM, run on the backend for [shots] (default 1024), and the
    measured-bitstring histogram comes back as space-separated
    ["bits:count"] pairs (count-descending). The accelerator is renamed
    ["<name>@<backend-name>"] so host traces show which target served the
    kernel. *)
