(** The canonical "run request" record of the stack.

    Every execution surface — [qxc run]/[exec], {!Stack.execute}, the
    {!Runner} entry points and the multi-tenant job service
    ({!Qca_service.Service}) — is a consumer of this one record: what to
    run (a circuit, or cQASM source to parse), where to run it (the
    {!route}), and the run parameters (shots, seed, noise, plan override,
    fusion, fault-injection and retry policy). The CLI and the daemon are
    therefore thin clients of the same code path; see [docs/service.md].

    All fields are plain data (no RNG or injector state), so a spec can be
    serialised over the service's spool protocol and re-hydrated
    bit-identically: {!faults} builds a fresh, deterministic injector from
    [fault_rate]/[fault_seed] on every call. *)

type payload =
  | Circuit of Qca_circuit.Circuit.t  (** An already-built circuit. *)
  | Source of { name : string; text : string }
      (** cQASM source, parsed by {!resolve} (errors are structured
          {!Qca_util.Error.t} values, not exceptions). *)

type route =
  | Direct
      (** Straight to the QX engine ({!Qca_qx.Engine.run}): no compiler,
          topology or micro-architecture — the [qxc run] path. *)
  | Compiled of {
      platform : Qca_compiler.Platform.t;
      mode : Qca_compiler.Compiler.mode;
      technology : Qca_microarch.Controller.technology option;
          (** Required for micro-architecture (Real-mode) execution. *)
      ladder : bool;
          (** [true]: walk the degradation ladder on failure
              (micro-architecture -> realistic QX, the {!Stack.execute}
              semantics). [false]: fail fast with the structured error
              (the [qxc exec] semantics). *)
      router : Qca_compiler.Mapping.strategy;
          (** Routing strategy forwarded to
              {!Qca_compiler.Compiler.compile} ([Sabre] is the default;
              [Greedy] is the historical baseline). Participates in
              {!cache_key} — differently-routed results are never
              shared. *)
    }

type t = {
  label : string;  (** Job name, used in reports and service logs. *)
  payload : payload;
  route : route;
  shots : int;
  seed : int option;
      (** Explicit seed: required for result-cache eligibility. *)
  noise : float option;
      (** Depolarising error rate for [Direct] runs ([None] = ideal);
          [Compiled] routes use the platform's own model. *)
  plan : Qca_qx.Engine.plan option;
      (** Simulation-plan override ([qxc run --plan]): [None] is the
          planner's automatic choice; [Some Trajectory] is the historical
          [--trajectory] force; [Some Sampled]/[Some Clifford] force those
          plans (rejected with a structured error when unsound). *)
  fusion : bool;  (** Gate-fusion pre-pass (default on). *)
  fault_rate : float option;
      (** Per-site fault-injection probability ([None] = injection off). *)
  fault_seed : int;  (** Seed of the injector's own RNG stream. *)
  max_retries : int;  (** Retries per shot before it counts as faulted. *)
  backoff_ns : int;  (** Base simulated backoff per retry. *)
  degrade_threshold : float;
      (** Faulted-shot fraction beyond which the ladder degrades. *)
  priority : int;  (** Service scheduling priority (lower runs sooner). *)
  deadline_ms : int option;
      (** Wall-clock budget from job start, enforced cooperatively at
          scheduler slice boundaries; exceeding it is a terminal
          {!Qca_util.Error.Deadline_exceeded} failure ([None] = no
          deadline). A deadline of [0] fails at the first slice boundary —
          the deterministic form used by tests. *)
}

val make :
  ?label:string ->
  ?route:route ->
  ?shots:int ->
  ?seed:int ->
  ?noise:float ->
  ?plan:Qca_qx.Engine.plan ->
  ?fusion:bool ->
  ?fault_rate:float ->
  ?fault_seed:int ->
  ?max_retries:int ->
  ?backoff_ns:int ->
  ?degrade_threshold:float ->
  ?deadline_ms:int ->
  payload ->
  t
(** Defaults mirror [qxc run]: route [Direct], 1024 shots, no explicit
    seed, ideal noise, automatic plan, fusion on, injection off,
    {!Qca_util.Resilience.default_policy} retry parameters, priority 0,
    no deadline. Raises [Invalid_argument] on [shots < 1] or a negative
    [deadline_ms]. *)

val of_circuit : ?label:string -> Qca_circuit.Circuit.t -> t
(** [make (Circuit c)] with the defaults. *)

val of_source : ?label:string -> string -> t
(** [make (Source ...)] with the defaults. *)

val resolve : t -> (Qca_circuit.Circuit.t, Qca_util.Error.t) result
(** The payload as a circuit: [Circuit c] unwrapped, [Source] parsed and
    flattened (parse failures become [Error]). *)

val estimate : t -> (Qca_analysis.Estimate.t, Qca_util.Error.t) result
(** Static resource estimate of the job ({!Qca_analysis.Estimate}): the
    shared semantics behind [qxc estimate], [qxc run --metrics] and the
    service's admission oracle. [Source] payloads are parsed but {e not}
    flattened, so repeated subcircuits estimate symbolically in O(body);
    the spec's shots, plan override and noise (platform noise for
    [Compiled] routes) feed the prediction. Parse failures become
    [Error]. *)

val digest : Qca_circuit.Circuit.t -> string
(** Hex digest of the circuit's canonical form (qubit count +
    instruction list; the circuit's name does not participate). Two jobs
    whose resolved circuits share a digest can share one
    {!Qca_qx.Engine.sampled_distribution}. *)

val cache_key : t -> Qca_circuit.Circuit.t -> string option
(** Result-cache key: circuit digest plus every semantic run parameter
    (route fingerprint, shots, seed, noise, plan, fault/retry policy).
    [None] when the spec has no explicit seed — an unseeded run draws from
    the process-wide stream and is not reproducible, so it must not be
    cached. [fusion] deliberately does not participate: fused and unfused
    runs are bit-identical. The plan override participates like the router:
    the automatic plan (and the historical [--trajectory] force, which kept
    its [traj=true] field) add no suffix, so pre-planner fingerprints stay
    stable; forcing [sampled] or [clifford] appends a [|plan=...] suffix. *)

val noise_model : t -> Qca_qx.Noise.model
(** [noise] as an engine noise model (ideal when [None]). *)

val faults : t -> Qca_util.Fault.t option
(** A fresh injector per call, seeded from [fault_seed]: equal specs give
    identical fault patterns. [None] when [fault_rate] is [None]. *)

val retry_policy : t -> Qca_util.Resilience.policy

val route_router : route -> Qca_compiler.Mapping.strategy
(** The route's routing strategy ([Sabre] for [Direct] routes, where it is
    never consulted). *)

val route_description : t -> string
(** One-line route summary for logs, e.g. ["direct"] or
    ["superconducting-17/real/microarch+ladder"]; non-default routers
    append ["+greedy"] / ["+lookahead:K"]. *)
