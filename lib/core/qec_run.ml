module Circuit = Qca_circuit.Circuit
module Code = Qca_qec.Code
module Engine = Qca_qx.Engine
module Noise = Qca_qx.Noise

let cycle_circuit ?(rounds = 1) code =
  if rounds < 1 then
    invalid_arg "Qec_run.cycle_circuit: rounds must be positive";
  Circuit.repeat rounds (Code.syndrome_circuit code)

type outcome = {
  rounds : int;
  shots : int;
  plan : Engine.plan;
  quiet_fraction : float;
  histogram : (string * int) list;
  report : Engine.run_report;
}

(* Histogram keys put qubit 0 rightmost, so the ancillas — the
   highest-numbered qubits — occupy the first [ancillas] characters. *)
let trivial_syndrome ~ancillas key =
  let ok = ref true in
  for i = 0 to ancillas - 1 do
    if key.[i] = '1' then ok := false
  done;
  !ok

let run ?(rounds = 1) ?(shots = 1024) ?seed ?noise ?plan code =
  let circuit = cycle_circuit ~rounds code in
  let noise_model =
    match noise with None -> Noise.ideal | Some p -> Noise.depolarizing p
  in
  match Engine.run_checked ~noise:noise_model ?seed ?plan ~shots circuit with
  | Error e -> Error e
  | Ok r ->
      let ancillas = Code.ancilla_count code in
      let quiet =
        List.fold_left
          (fun acc (key, count) ->
            if trivial_syndrome ~ancillas key then acc + count else acc)
          0 r.Engine.histogram
      in
      Ok
        {
          rounds;
          shots;
          plan = r.Engine.report.Engine.plan;
          quiet_fraction = float_of_int quiet /. float_of_int shots;
          histogram = r.Engine.histogram;
          report = r.Engine.report;
        }
