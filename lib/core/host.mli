(** The classical host processor that "keeps control over the total system
    and delegates the execution of certain parts to the available
    accelerators" (section 1). *)

type task =
  | Classical of string * float  (** (name, work units) run on the host. *)
  | Offload of string * string * float * string
      (** (accelerator name, kernel name, work units, kernel argument). *)

type event = {
  task_name : string;
  resource : string;  (** "host" or the accelerator name. *)
  start_time : float;
  finish_time : float;
  output : string option;  (** Payload output for offloaded kernels. *)
  warning : string option;
      (** Degradation note (e.g. unknown accelerator bypassed). *)
}

type execution = {
  timeline : event list;  (** In execution order. *)
  total_time : float;
  host_only_time : float;  (** Same workload with no accelerators. *)
  speedup : float;
  outputs : (string * string) list;  (** (kernel name, payload output). *)
  warnings : string list;  (** Degradation warnings, in execution order. *)
}

val run : accelerators:Accelerator.t list -> task list -> execution
(** Sequential offload model (matching Amdahl's assumptions): the host
    blocks while an accelerator runs. An offload naming an accelerator that
    is not attached does not abort the run: the kernel degrades to host
    execution (speed 1.0, no offload overhead, no payload output) and the
    event — and [execution.warnings] — records why. Raises
    {!Qca_util.Error.Error} with [Invalid] for negative work. *)

val amdahl_prediction : accelerators:Accelerator.t list -> task list -> float
(** The analytic speedup for the same workload via {!Amdahl.multi_accelerator}
    (overheads folded in); tests check [run] against this. Offloads to
    unknown accelerators count as classical host time, matching the
    degradation in {!run}. *)
