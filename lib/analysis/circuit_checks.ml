module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm

let site_of name i = Printf.sprintf "%s[%d]" name i

(* --- invariants: C01/C02 operand ranges, C07 finite angles, C03 use
   after measure. One fused walk: the pass-verifier re-runs this after
   every compiler pass on every instruction, so it is written imperatively
   with no per-instruction list building. --- *)

let invariant_walk ?on_instr ~bound ~qubit_count name instrs =
  let measured = Array.make (max qubit_count 1) false in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let out_of_range i instr q =
    add
      (Diagnostic.make Diagnostic.Error ~code:"C01" ~check:"qubit-out-of-range"
         ~site:(site_of name i)
         ~fixit:(Printf.sprintf "target a platform with at least %d qubits" (q + 1))
         (Printf.sprintf "%s addresses qubit %d but the platform range is 0..%d"
            (Gate.to_string instr) q (bound - 1)))
  in
  let check_unitary i instr u ops ~feedback =
    for k = 0 to Array.length ops - 1 do
      if ops.(k) < 0 || ops.(k) >= bound then out_of_range i instr ops.(k)
    done;
    (match u with
    | (Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.Cphase a)
      when not (Float.is_finite a) ->
        add
          (Diagnostic.make Diagnostic.Error ~code:"C07" ~check:"non-finite-angle"
             ~site:(site_of name i)
             ~fixit:"replace the angle with a finite value"
             (Printf.sprintf "%s has a non-finite rotation angle (%s)" (Gate.name u)
                (if Float.is_nan a then "nan" else "inf")))
    | _ -> ());
    (* Conditional gates are classical feedback — the legitimate way to
       touch a measured qubit — so only plain unitaries warn. *)
    if not feedback then
      for k = 0 to Array.length ops - 1 do
        let q = ops.(k) in
        if q >= 0 && q < qubit_count && measured.(q) then begin
          add
            (Diagnostic.make Diagnostic.Warning ~code:"C03" ~check:"use-after-measure"
               ~site:(site_of name i)
               ~fixit:(Printf.sprintf "insert 'prep_z q[%d]' before reuse" q)
               (Printf.sprintf
                  "%s acts on qubit %d after it was measured, without a reset"
                  (Gate.to_string instr) q));
          (* One warning per collapsed lifetime, not per later gate. *)
          measured.(q) <- false
        end
      done
  in
  let notify =
    match on_instr with Some f -> f | None -> fun _ _ -> ()
  in
  List.iteri
    (fun i instr ->
      notify i instr;
      match instr with
      | Gate.Unitary (u, ops) -> check_unitary i instr u ops ~feedback:false
      | Gate.Conditional (bit, u, ops) ->
          if bit < 0 || bit >= bound then
            add
              (Diagnostic.make Diagnostic.Error ~code:"C02" ~check:"bit-out-of-range"
                 ~site:(site_of name i)
                 ~fixit:"branch on a measured qubit's bit index"
                 (Printf.sprintf
                    "%s reads classical bit %d but the platform range is 0..%d"
                    (Gate.to_string instr) bit (bound - 1)));
          check_unitary i instr u ops ~feedback:true
      | Gate.Prep q ->
          if q < 0 || q >= bound then out_of_range i instr q;
          if q >= 0 && q < qubit_count then measured.(q) <- false
      | Gate.Measure q ->
          if q < 0 || q >= bound then out_of_range i instr q;
          if q >= 0 && q < qubit_count then measured.(q) <- true
      | Gate.Barrier qs ->
          Array.iter (fun q -> if q < 0 || q >= bound then out_of_range i instr q) qs)
    instrs;
  List.rev !diags

(* --- C04: measurement results that are overwritten before being read --- *)

let check_measure_never_read ~qubit_count name instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let diags = ref [] in
  for i = 0 to n - 1 do
    match arr.(i) with
    | Gate.Measure q when q >= 0 && q < qubit_count ->
        let rec scan j =
          if j >= n then () (* terminal result: feeds the histogram *)
          else
            match arr.(j) with
            | Gate.Conditional (bit, _, _) when bit = q -> ()
            | Gate.Measure q' when q' = q ->
                diags :=
                  Diagnostic.make Diagnostic.Hint ~code:"C04"
                    ~check:"measure-never-read" ~site:(site_of name i)
                    ~fixit:
                      (Printf.sprintf
                         "drop this measurement or branch on b[%d] before re-measuring" q)
                    (Printf.sprintf
                       "result of measuring qubit %d is overwritten at %s before being read"
                       q (site_of name j))
                  :: !diags
            | _ -> scan (j + 1)
        in
        scan (i + 1)
    | _ -> ()
  done;
  List.rev !diags

(* --- C05: declared but untouched qubits --- *)

let check_unused_qubits name circuit =
  let used = Circuit.qubits_used circuit in
  let unused =
    List.filter
      (fun q -> not (List.mem q used))
      (List.init (Circuit.qubit_count circuit) Fun.id)
  in
  if unused = [] then []
  else
    [
      Diagnostic.make Diagnostic.Hint ~code:"C05" ~check:"unused-qubit" ~site:name
        ~fixit:
          (Printf.sprintf "declare 'qubits %d' or use the idle qubits"
             (List.length used))
        (Printf.sprintf "%d of %d declared qubits never used: {%s}"
           (List.length unused)
           (Circuit.qubit_count circuit)
           (String.concat ", " (List.map string_of_int unused)));
    ]

(* --- C06: adjacent self-inverse pairs --- *)

let self_inverse = function
  | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.Cnot | Gate.Cz | Gate.Swap
  | Gate.Toffoli ->
      true
  | _ -> false

let check_redundant_pairs name instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let diags = ref [] in
  let touches ops instr =
    let qs = Gate.qubits instr in
    Array.exists (fun q -> Array.exists (( = ) q) qs) ops
  in
  let i = ref 0 in
  while !i < n - 1 do
    (match arr.(!i) with
    | Gate.Unitary (u, ops) when self_inverse u ->
        (* The partner is the next instruction touching any operand. *)
        let rec next j = if j >= n then None else if touches ops arr.(j) then Some j else next (j + 1) in
        (match next (!i + 1) with
        | Some j when arr.(j) = Gate.Unitary (u, ops) ->
            diags :=
              Diagnostic.make Diagnostic.Hint ~code:"C06" ~check:"redundant-pair"
                ~site:(site_of name !i)
                ~fixit:"remove both gates"
                (Printf.sprintf "adjacent self-inverse pair: %s here and at %s cancel"
                   (Gate.to_string arr.(!i))
                   (site_of name j))
              :: !diags;
            (* Skip past the pair so H;H;H;H reports twice, not thrice. *)
            i := j
        | _ -> ())
    | _ -> ());
    incr i
  done;
  List.rev !diags

let check_invariants ?platform_qubits circuit =
  let bound =
    match platform_qubits with Some b -> b | None -> Circuit.qubit_count circuit
  in
  let name = Circuit.name circuit in
  let instrs = Circuit.instructions circuit in
  invariant_walk ~bound ~qubit_count:(Circuit.qubit_count circuit) name instrs

let check_invariants_instrs = invariant_walk

let check_circuit ?platform_qubits circuit =
  let name = Circuit.name circuit in
  let instrs = Circuit.instructions circuit in
  check_invariants ?platform_qubits circuit
  @ check_measure_never_read ~qubit_count:(Circuit.qubit_count circuit) name instrs
  @ check_unused_qubits name circuit
  @ check_redundant_pairs name instrs

let check_program ?platform_qubits (program : Cqasm.program) =
  let duplicates =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (kernel, _, _) ->
        if Hashtbl.mem seen kernel then
          Some
            (Diagnostic.make Diagnostic.Warning ~code:"P03" ~check:"duplicate-kernel"
               ~site:("." ^ kernel)
               ~fixit:"rename one of the subcircuits"
               (Printf.sprintf "subcircuit name '%s' is declared more than once" kernel))
        else begin
          Hashtbl.add seen kernel ();
          None
        end)
      program.Cqasm.subcircuits
  in
  check_circuit ?platform_qubits (Cqasm.flatten program) @ duplicates
