module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Gate = Qca_circuit.Gate
module Engine = Qca_qx.Engine
module Platform = Qca_compiler.Platform
module Noise = Qca_qx.Noise

type classes = {
  t_count : int;
  toffoli : int;
  cnot : int;
  clifford_1q : int;
  rotations : int;
}

let classes_total c =
  c.t_count + c.toffoli + c.cnot + c.clifford_1q + c.rotations

type t = {
  qubits : int;
  qubits_used : int;
  instructions : int;
  gates : int;
  classes : classes;
  conditionals : int;
  measurements : int;
  preps : int;
  barriers : int;
  depth : int;
  depth_exact : bool;
  clifford_fraction : float;
  plan : Engine.plan;
  plan_reason : string;
  shots : int;
  amplitudes : float;
  state_bytes : float;
  sim_ns : float;
}

type calibration = {
  ns_1q : float;
  ns_diag : float;
  ns_2q : float;
  ns_3q : float;
  ns_sample : float;
  ns_measure : float;
  ns_row : float;
}

(* BENCH_kernels.json, fused kernels at n = 20 on the reference container:
   h ~19.4 ns/amp, t ~9.6, rz/diag ~13-18, cnot ~6.1. Toffoli touches dim/8
   and sampling/collapse are sweep-shaped; see docs/estimate.md. *)
let default_calibration =
  {
    ns_1q = 20.0;
    ns_diag = 14.0;
    ns_2q = 6.0;
    ns_3q = 4.0;
    ns_sample = 25.0;
    ns_measure = 40.0;
    ns_row = 1.0;
  }

(* ------------------------------------------------------------------ *)
(* Gate-class tally: one mutable accumulator per body, scaled linearly
   across subcircuit iterations.                                       *)

type tally = {
  mutable n_t : int;
  mutable n_toffoli : int;
  mutable n_cnot : int;
  mutable n_clifford_1q : int;
  mutable n_rotations : int;
  mutable n_conditionals : int;
  mutable n_measurements : int;
  mutable n_preps : int;
  mutable n_barriers : int;
  mutable n_instructions : int;
}

let tally_zero () =
  {
    n_t = 0;
    n_toffoli = 0;
    n_cnot = 0;
    n_clifford_1q = 0;
    n_rotations = 0;
    n_conditionals = 0;
    n_measurements = 0;
    n_preps = 0;
    n_barriers = 0;
    n_instructions = 0;
  }

let tally_unitary t = function
  | Gate.T | Gate.Tdag -> t.n_t <- t.n_t + 1
  | Gate.Toffoli -> t.n_toffoli <- t.n_toffoli + 1
  | Gate.Cnot | Gate.Cz | Gate.Swap -> t.n_cnot <- t.n_cnot + 1
  | Gate.I | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdag
  | Gate.X90 | Gate.Xm90 | Gate.Y90 | Gate.Ym90 ->
      t.n_clifford_1q <- t.n_clifford_1q + 1
  | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Cphase _ | Gate.Crk _ ->
      t.n_rotations <- t.n_rotations + 1

let tally_instr t instr =
  t.n_instructions <- t.n_instructions + 1;
  match instr with
  | Gate.Unitary (u, _) -> tally_unitary t u
  | Gate.Conditional (_, u, _) ->
      t.n_conditionals <- t.n_conditionals + 1;
      tally_unitary t u
  | Gate.Prep _ -> t.n_preps <- t.n_preps + 1
  | Gate.Measure _ -> t.n_measurements <- t.n_measurements + 1
  | Gate.Barrier _ -> t.n_barriers <- t.n_barriers + 1

let tally_scale_into ~into ~times src =
  into.n_t <- into.n_t + (times * src.n_t);
  into.n_toffoli <- into.n_toffoli + (times * src.n_toffoli);
  into.n_cnot <- into.n_cnot + (times * src.n_cnot);
  into.n_clifford_1q <- into.n_clifford_1q + (times * src.n_clifford_1q);
  into.n_rotations <- into.n_rotations + (times * src.n_rotations);
  into.n_conditionals <- into.n_conditionals + (times * src.n_conditionals);
  into.n_measurements <- into.n_measurements + (times * src.n_measurements);
  into.n_preps <- into.n_preps + (times * src.n_preps);
  into.n_barriers <- into.n_barriers + (times * src.n_barriers);
  into.n_instructions <- into.n_instructions + (times * src.n_instructions)

(* ------------------------------------------------------------------ *)
(* Depth: the same per-qubit busy-until walk as Circuit.depth. A
   zero-operand instruction finishes at cycle 1 without busying any qubit
   (the walk's floor); everything else starts after its operands and
   busies them for one cycle.                                          *)

let walk_instrs profile base instrs =
  List.iter
    (fun instr ->
      let ops = Gate.qubits instr in
      if Array.length ops = 0 then (if !base < 1 then base := 1)
      else begin
        let start =
          Array.fold_left
            (fun acc q -> if profile.(q) > acc then profile.(q) else acc)
            0 ops
        in
        Array.iter (fun q -> profile.(q) <- start + 1) ops
      end)
    instrs

(* Interaction components of a body: operands of one instruction are
   mutually dependent, so a per-iteration profile shift that repeats and is
   constant within every component persists forever (the walk is a max-plus
   translation on each component), making linear extrapolation exact. *)
let component_of qubit_count instrs =
  let parent = Array.init qubit_count (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let root = find parent.(i) in
      parent.(i) <- root;
      root
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter
    (fun instr ->
      let ops = Gate.qubits instr in
      for i = 1 to Array.length ops - 1 do
        union ops.(0) ops.(i)
      done)
    instrs;
  find

(* Direct-iteration budget per repeated body. Below it we just iterate
   (always exact); above it we iterate until the shift provably stabilises
   and extrapolate, falling back to a best-effort extrapolation from the
   last observed shift (depth_exact = false) for pathological bodies. *)
let iteration_cap = 256

let used_qubits qubit_count instrs =
  let seen = Array.make qubit_count false in
  List.iter
    (fun instr -> Array.iter (fun q -> seen.(q) <- true) (Gate.qubits instr))
    instrs;
  seen

(* Apply [iters] repetitions of [instrs] to [profile]; returns true when the
   resulting profile is exact. *)
let walk_repeat profile base qubit_count instrs iters =
  if iters <= iteration_cap then begin
    for _ = 1 to iters do
      walk_instrs profile base instrs
    done;
    true
  end
  else begin
    let seen = used_qubits qubit_count instrs in
    let used = ref [] in
    for q = qubit_count - 1 downto 0 do
      if seen.(q) then used := q :: !used
    done;
    let used = Array.of_list !used in
    let k = Array.length used in
    let comp = component_of qubit_count instrs in
    let prev = Array.make k 0 in
    let shift = Array.make k 0 in
    let last_shift = Array.make k min_int in
    let stable () =
      (* Shift repeated and is constant within every interaction component. *)
      let ok = ref (Array.for_all2 ( = ) shift last_shift) in
      if !ok then begin
        let per_root = Hashtbl.create 16 in
        Array.iteri
          (fun i q ->
            let root = comp q in
            match Hashtbl.find_opt per_root root with
            | None -> Hashtbl.add per_root root shift.(i)
            | Some s -> if s <> shift.(i) then ok := false)
          used
      end;
      !ok
    in
    let applied = ref 0 in
    let converged = ref false in
    (try
       for _ = 1 to iteration_cap do
         Array.iteri (fun i q -> prev.(i) <- profile.(q)) used;
         walk_instrs profile base instrs;
         incr applied;
         Array.iteri (fun i q -> shift.(i) <- profile.(q) - prev.(i)) used;
         if stable () then begin
           converged := true;
           raise Exit
         end;
         Array.blit shift 0 last_shift 0 k
       done
     with Exit -> ());
    let remaining = iters - !applied in
    Array.iteri
      (fun i q -> profile.(q) <- profile.(q) + (remaining * shift.(i)))
      used;
    !converged || remaining = 0
  end

(* ------------------------------------------------------------------ *)
(* Plan prediction: Engine.analyse's decision table evaluated on symbolic
   totals. Structure and total-Clifford verdicts are invariant under
   truncating every subcircuit repetition at 2 (the walk's monotone flags
   saturate in the first copy and first violations happen within two), so a
   cheap probe stands in for the unrolled circuit while the shots-monotone
   cost model gets the exact symbolic gate/measure totals.              *)

let probe_of_program (p : Cqasm.program) =
  List.fold_left
    (fun acc (_, iters, body) ->
      Circuit.append acc (Circuit.repeat (min iters 2) body))
    (Circuit.create p.Cqasm.qubit_count)
    p.Cqasm.subcircuits

let predict_plan ~noisy ~shots ~gates ~measures probe =
  if noisy then (Engine.Trajectory, "stochastic noise model")
  else begin
    let structure, structure_reason = Engine.structure probe in
    match Engine.clifford_blocker probe with
    | Some _ -> (structure, structure_reason)
    | None -> (
        let n = Circuit.qubit_count probe in
        match structure with
        | Engine.Trajectory ->
            (Engine.Clifford, "all-Clifford gates; " ^ structure_reason)
        | Engine.Sampled ->
            if Engine.clifford_wins ~n ~gates ~measures ~shots then
              ( Engine.Clifford,
                Printf.sprintf
                  "all-Clifford gates; tableau cheaper than the \
                   2^%d-amplitude state vector"
                  n )
            else (Engine.Sampled, structure_reason)
        | Engine.Clifford -> assert false)
  end

(* ------------------------------------------------------------------ *)
(* Cost model (docs/estimate.md): state-vector plans hold 2^n complex
   amplitudes at 16 bytes each; one evolution pass sweeps the state once
   per gate at the calibrated per-amplitude rate. The sampled plan pays one
   pass plus O(n) per shot of sampling; trajectories pay the pass (plus
   measurement collapses) per shot; the tableau plan pays O(n) per gate and
   O(n^2) per measurement per shot over ~16n(2n+1) bytes of rows.       *)

let pass_ns cal classes dim =
  dim
  *. ((float_of_int classes.t_count *. cal.ns_diag)
     +. (float_of_int classes.toffoli *. cal.ns_3q)
     +. (float_of_int classes.cnot *. cal.ns_2q)
     +. (float_of_int classes.clifford_1q *. cal.ns_1q)
     +. (float_of_int classes.rotations *. cal.ns_1q))

let cost cal ~plan ~n ~shots ~classes ~measures =
  let dim = ldexp 1.0 n in
  let fn = float_of_int n in
  let fshots = float_of_int shots in
  let fmeasures = float_of_int measures in
  match plan with
  | Engine.Clifford ->
      let rows = (2.0 *. fn) +. 1.0 in
      let bytes = (16.0 *. fn *. rows) +. (8.0 *. rows) in
      let gates = float_of_int (classes_total classes) in
      let ns =
        fshots *. cal.ns_row
        *. ((2.0 *. fn *. gates) +. (4.0 *. fn *. fn *. fmeasures))
      in
      (0.0, bytes, ns)
  | Engine.Sampled ->
      let ns = pass_ns cal classes dim +. (fshots *. fn *. cal.ns_sample) in
      (dim, dim *. 16.0, ns)
  | Engine.Trajectory ->
      let ns =
        fshots *. (pass_ns cal classes dim +. (fmeasures *. dim *. cal.ns_measure))
      in
      (dim, dim *. 16.0, ns)

(* ------------------------------------------------------------------ *)

let of_program ?(calibration = default_calibration) ?(shots = 1024)
    ?(noisy = false) ?plan (p : Cqasm.program) =
  let qubit_count = p.Cqasm.qubit_count in
  let total = tally_zero () in
  let profile = Array.make (max qubit_count 1) 0 in
  let base = ref 0 in
  let exact = ref true in
  let seen = Array.make (max qubit_count 1) false in
  List.iter
    (fun (_, iters, body) ->
      let iters = max 1 iters in
      let instrs = Circuit.instructions body in
      let body_tally = tally_zero () in
      List.iter (tally_instr body_tally) instrs;
      tally_scale_into ~into:total ~times:iters body_tally;
      List.iter
        (fun instr ->
          Array.iter (fun q -> seen.(q) <- true) (Gate.qubits instr))
        instrs;
      if not (walk_repeat profile base qubit_count instrs iters) then
        exact := false)
    p.Cqasm.subcircuits;
  let depth =
    Array.fold_left (fun acc v -> if v > acc then v else acc) !base profile
  in
  let qubits_used =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
  in
  let classes =
    {
      t_count = total.n_t;
      toffoli = total.n_toffoli;
      cnot = total.n_cnot;
      clifford_1q = total.n_clifford_1q;
      rotations = total.n_rotations;
    }
  in
  let gates = classes_total classes in
  let measures = total.n_measurements + total.n_preps in
  let plan, plan_reason =
    match plan with
    | Some forced -> (forced, "forced")
    | None ->
        predict_plan ~noisy ~shots ~gates ~measures (probe_of_program p)
  in
  let amplitudes, state_bytes, sim_ns =
    cost calibration ~plan ~n:qubit_count ~shots ~classes ~measures
  in
  let clifford_fraction =
    if gates = 0 then 1.0
    else float_of_int (classes.cnot + classes.clifford_1q) /. float_of_int gates
  in
  {
    qubits = qubit_count;
    qubits_used;
    instructions = total.n_instructions;
    gates;
    classes;
    conditionals = total.n_conditionals;
    measurements = total.n_measurements;
    preps = total.n_preps;
    barriers = total.n_barriers;
    depth;
    depth_exact = !exact;
    clifford_fraction;
    plan;
    plan_reason;
    shots;
    amplitudes;
    state_bytes;
    sim_ns;
  }

let of_circuit ?calibration ?shots ?noisy ?plan circuit =
  of_program ?calibration ?shots ?noisy ?plan (Cqasm.of_circuit circuit)

(* ------------------------------------------------------------------ *)
(* Resource diagnostics (R01-R04, docs/analysis.md).                   *)

let host_bytes_default = 8.0 *. 1024.0 *. 1024.0 *. 1024.0
let budget_ns_default = 60e9

let human_bytes b =
  if b >= 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.1f GiB" (b /. (1024.0 *. 1024.0 *. 1024.0))
  else if b >= 1024.0 *. 1024.0 then
    Printf.sprintf "%.1f MiB" (b /. (1024.0 *. 1024.0))
  else if b >= 1024.0 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let human_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let check ?platform ?(host_bytes = host_bytes_default)
    ?(budget_ns = budget_ns_default) est =
  let out = ref [] in
  let add d = out := d :: !out in
  (match platform with
  | None -> ()
  | Some p ->
      if est.qubits > p.Platform.qubit_count then
        add
          (Diagnostic.make Diagnostic.Error ~code:"R01"
             ~check:"estimated-width" ~site:"estimate"
             (Printf.sprintf
                "program declares %d qubits but platform %s has %d"
                est.qubits p.Platform.name p.Platform.qubit_count)
             ~fixit:
               (Printf.sprintf
                  "retarget a platform with at least %d qubits or narrow \
                   the register"
                  est.qubits));
      let t2 = p.Platform.noise.Noise.t2_ns in
      let runtime_ns = float_of_int est.depth *. float_of_int p.Platform.cycle_ns in
      if Float.is_finite t2 && runtime_ns > t2 then
        add
          (Diagnostic.make Diagnostic.Warning ~code:"R02"
             ~check:"estimated-coherence" ~site:"estimate"
             (Printf.sprintf
                "estimated depth %d at %d ns/cycle (%s) exceeds platform \
                 %s T2 (%s)"
                est.depth p.Platform.cycle_ns (human_ns runtime_ns)
                p.Platform.name (human_ns t2))
             ~fixit:"shorten the circuit or enable optimization passes"));
  if est.state_bytes > host_bytes then
    add
      (Diagnostic.make Diagnostic.Error ~code:"R03" ~check:"estimated-memory"
         ~site:"estimate"
         (Printf.sprintf
            "estimated %s plan needs %s of state but the host budget is %s"
            (Engine.plan_to_string est.plan)
            (human_bytes est.state_bytes)
            (human_bytes host_bytes))
         ~fixit:
           (Printf.sprintf
              "reduce the register below %d qubits (or keep the circuit \
               all-Clifford for the tableau plan)"
              (int_of_float (Float.log2 (host_bytes /. 16.0)) + 1)));
  if est.sim_ns > budget_ns then
    add
      (Diagnostic.make Diagnostic.Warning ~code:"R04"
         ~check:"estimated-runtime" ~site:"estimate"
         (Printf.sprintf
            "estimated simulation time %s exceeds the %s budget"
            (human_ns est.sim_ns) (human_ns budget_ns))
         ~fixit:"reduce shots or gate count");
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Renderers.                                                          *)

let json_number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_json est =
  Printf.sprintf
    "{\"qubits\":%d,\"qubits_used\":%d,\"instructions\":%d,\"gates\":%d,\
     \"classes\":{\"t\":%d,\"toffoli\":%d,\"cnot\":%d,\"clifford_1q\":%d,\
     \"rotations\":%d},\"conditionals\":%d,\"measurements\":%d,\"preps\":%d,\
     \"barriers\":%d,\"depth\":%d,\"depth_exact\":%b,\
     \"clifford_fraction\":%s,\"plan\":\"%s\",\"plan_reason\":\"%s\",\
     \"shots\":%d,\"amplitudes\":%s,\"state_bytes\":%s,\"sim_ns\":%s}"
    est.qubits est.qubits_used est.instructions est.gates
    est.classes.t_count est.classes.toffoli est.classes.cnot
    est.classes.clifford_1q est.classes.rotations est.conditionals
    est.measurements est.preps est.barriers est.depth est.depth_exact
    (json_number est.clifford_fraction)
    (Engine.plan_to_string est.plan)
    (Diagnostic.json_escape est.plan_reason)
    est.shots
    (json_number est.amplitudes)
    (json_number est.state_bytes)
    (json_number est.sim_ns)

let render est =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "qubits:             %d (%d used)" est.qubits est.qubits_used;
  line "instructions:       %d" est.instructions;
  line "gates:              %d" est.gates;
  line "  t:                %d" est.classes.t_count;
  line "  toffoli:          %d" est.classes.toffoli;
  line "  2q clifford:      %d" est.classes.cnot;
  line "  1q clifford:      %d" est.classes.clifford_1q;
  line "  rotations:        %d" est.classes.rotations;
  line "conditionals:       %d" est.conditionals;
  line "measurements:       %d" est.measurements;
  line "preps:              %d" est.preps;
  line "depth:              %d%s" est.depth
    (if est.depth_exact then "" else " (extrapolated)");
  line "clifford fraction:  %.1f%%" (est.clifford_fraction *. 100.0);
  line "plan:               %s (%s)" (Engine.plan_to_string est.plan)
    est.plan_reason;
  line "shots:              %d" est.shots;
  line "state memory:       %s" (human_bytes est.state_bytes);
  line "est sim time:       %s" (human_ns est.sim_ns);
  Buffer.contents b
