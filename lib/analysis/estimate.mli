(** Static resource estimation — abstract interpretation over the circuit
    IR.

    Answers "what will this program cost?" without simulating it: per
    gate-class counts, logical depth (a per-qubit busy-until walk mirroring
    {!Qca_circuit.Circuit.depth} exactly), the run plan the simulation
    planner would choose (reproducing {!Qca_qx.Engine.analyse}'s decision
    table from symbolic totals), and the peak classical simulation cost
    (amplitudes, bytes, kernel nanoseconds calibrated from
    [BENCH_kernels.json]).

    Programs with repeated subcircuits ([.cycle(1000000)]) are evaluated
    {e symbolically}: counts scale linearly and the depth walk extrapolates
    once the per-qubit busy profile advances by a stable shift per
    iteration, so a QEC-cycle program estimates in O(body), not
    O(body * rounds). Model and calibration constants are documented in
    [docs/estimate.md]; the admission-control oracle built on this module
    lives in {!Qca_service} / [qxd]. *)

type classes = {
  t_count : int;  (** T and Tdag. *)
  toffoli : int;
  cnot : int;  (** Two-qubit Clifford: cnot, cz, swap. *)
  clifford_1q : int;  (** Other Clifford: i x y z h s sdag x90 mx90 y90 my90. *)
  rotations : int;  (** Non-Clifford rotations: rx ry rz cphase crk. *)
}

val classes_total : classes -> int

type t = {
  qubits : int;  (** Declared register width. *)
  qubits_used : int;  (** Qubits actually named by an operand. *)
  instructions : int;  (** Total instructions after (symbolic) repetition. *)
  gates : int;  (** Unitary + conditional applications ({!classes_total}). *)
  classes : classes;
  conditionals : int;  (** Subset of [gates] that is classically gated. *)
  measurements : int;
  preps : int;
  barriers : int;
  depth : int;  (** Logical depth; equals {!Qca_circuit.Circuit.depth}. *)
  depth_exact : bool;
      (** [false] only when a repeated body's busy profile never stabilised
          within the iteration cap and the depth is a linear extrapolation
          from the last observed shift (see [docs/estimate.md]). *)
  clifford_fraction : float;  (** Clifford gates / total gates; 1.0 if no gates. *)
  plan : Qca_qx.Engine.plan;  (** Predicted (or forced) run plan. *)
  plan_reason : string;
  shots : int;
  amplitudes : float;  (** State-vector amplitudes (2^n); 0 on the tableau plan. *)
  state_bytes : float;  (** Peak simulation state memory, bytes. *)
  sim_ns : float;  (** Estimated kernel time for all [shots], nanoseconds. *)
}

type calibration = {
  ns_1q : float;  (** ns per amplitude, general single-qubit kernel. *)
  ns_diag : float;  (** ns per amplitude, diagonal/phase kernels (T, Rz). *)
  ns_2q : float;  (** ns per amplitude, two-qubit kernels. *)
  ns_3q : float;  (** ns per amplitude, Toffoli. *)
  ns_sample : float;  (** ns per shot per qubit, sampled-plan readout. *)
  ns_measure : float;  (** ns per amplitude, trajectory-plan collapse. *)
  ns_row : float;  (** ns per tableau row element, Clifford plan. *)
}

val default_calibration : calibration
(** Constants measured on the reference container ([BENCH_kernels.json],
    fused kernels at n = 20); see [docs/estimate.md]. *)

val of_circuit :
  ?calibration:calibration ->
  ?shots:int ->
  ?noisy:bool ->
  ?plan:Qca_qx.Engine.plan ->
  Qca_circuit.Circuit.t ->
  t
(** Estimate a flat circuit. [shots] defaults to 1024 (the planner's
    default); [noisy] (default false) marks that execution will run under a
    stochastic noise model, which forces the trajectory plan exactly as
    {!Qca_qx.Engine.analyse} does; [plan] forces the plan instead of
    predicting it (the cost model then prices the forced backend). *)

val of_program :
  ?calibration:calibration ->
  ?shots:int ->
  ?noisy:bool ->
  ?plan:Qca_qx.Engine.plan ->
  Qca_circuit.Cqasm.program ->
  t
(** Estimate a parsed program {e without flattening it}: subcircuit
    iteration counts are handled symbolically. Agrees exactly with
    [of_circuit (Cqasm.flatten p)] on counts and (when [depth_exact]) on
    depth — the property pinned by the [@estimate] test suite. *)

val check :
  ?platform:Qca_compiler.Platform.t ->
  ?host_bytes:float ->
  ?budget_ns:float ->
  t ->
  Diagnostic.t list
(** Resource diagnostics (codes R01-R04, [docs/analysis.md]):

    - [R01] (error, needs [platform]): estimated width exceeds the
      platform's qubit count.
    - [R02] (warning, needs [platform] with finite T2): estimated depth at
      the platform cycle time exceeds the coherence time.
    - [R03] (error): estimated state memory exceeds [host_bytes]
      (default 8 GiB).
    - [R04] (warning): estimated simulation time exceeds [budget_ns]
      (default 60 s). *)

val host_bytes_default : float
(** 8 GiB — the [R03] / admission-control default cap. *)

val budget_ns_default : float
(** 60 s in nanoseconds — the [R04] default budget. *)

val to_json : t -> string
(** One stable JSON object (schema in [docs/estimate.md]); keys
    [qubits, qubits_used, instructions, gates, classes{...}, conditionals,
    measurements, preps, barriers, depth, depth_exact, clifford_fraction,
    plan, plan_reason, shots, amplitudes, state_bytes, sim_ns]. *)

val render : t -> string
(** Human-readable table, one [key: value] line per field group (the
    [qxc estimate] text output). *)
