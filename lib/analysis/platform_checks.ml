module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Platform = Qca_compiler.Platform

(* One representative per unitary constructor; [Gate.name] ignores the
   parameter, so membership in the primitive set is per-constructor. *)
let representatives =
  Gate.
    [|
      I; X; Y; Z; H; S; Sdag; T; Tdag; X90; Xm90; Y90; Ym90; Rx 0.; Ry 0.; Rz 0.;
      Cnot; Cz; Swap; Cphase 0.; Crk 0; Toffoli;
    |]

let tag = function
  | Gate.I -> 0
  | Gate.X -> 1
  | Gate.Y -> 2
  | Gate.Z -> 3
  | Gate.H -> 4
  | Gate.S -> 5
  | Gate.Sdag -> 6
  | Gate.T -> 7
  | Gate.Tdag -> 8
  | Gate.X90 -> 9
  | Gate.Xm90 -> 10
  | Gate.Y90 -> 11
  | Gate.Ym90 -> 12
  | Gate.Rx _ -> 13
  | Gate.Ry _ -> 14
  | Gate.Rz _ -> 15
  | Gate.Cnot -> 16
  | Gate.Cz -> 17
  | Gate.Swap -> 18
  | Gate.Cphase _ -> 19
  | Gate.Crk _ -> 20
  | Gate.Toffoli -> 21

(* Imperative walk for the same reason as [Circuit_checks.invariant_walk]:
   the pass-verifier runs this on every post-mapping artifact, so the clean
   path must not allocate per instruction. *)
let stream_checker ?(allow_swap = false) platform name =
  let site i = Printf.sprintf "%s[%d]" name i in
  let diags = ref [] in
  (* [Platform.supports] scans the primitive name list per call; resolve
     each unitary constructor against it once so the clean path costs a
     match plus an array index per instruction. *)
  let supported_tab =
    Array.map
      (fun u -> Platform.supports platform u || (allow_swap && u = Gate.Swap))
      representatives
  in
  (* [Platform.are_coupled] re-materialises Grid topologies per query;
     resolve the graph once. *)
  let coupled =
    match platform.Platform.topology with
    | Platform.All_to_all -> fun u v -> u <> v
    | Platform.Grid _ | Platform.Custom _ ->
        let graph = Platform.connectivity platform in
        fun u v -> Qca_util.Graph.has_edge graph u v
  in
  let on_instr i instr =
    match instr with
      | Gate.Unitary (u, ops) | Gate.Conditional (_, u, ops) ->
          (* One constructor match per gate: the tag answers both the
             primitive lookup and the two-qubit test (tags 16..20). *)
          let t = tag u in
          if
            t >= 16 && t <= 20
            && ops.(0) >= 0
            && ops.(1) >= 0
            && ops.(0) < platform.Platform.qubit_count
            && ops.(1) < platform.Platform.qubit_count
            && not (coupled ops.(0) ops.(1))
          then
            diags :=
              Diagnostic.make Diagnostic.Error ~code:"P01"
                ~check:"non-adjacent-two-qubit" ~site:(site i)
                ~fixit:"route the pair through coupled neighbours (insert swaps)"
                (Printf.sprintf
                   "%s acts on qubits (%d, %d) which the %s topology does not couple"
                   (Gate.name u) ops.(0) ops.(1) platform.Platform.name)
              :: !diags;
          if not supported_tab.(t) then
            diags :=
              Diagnostic.make Diagnostic.Error ~code:"P02"
                ~check:"non-primitive-gate" ~site:(site i)
                ~fixit:
                  (Printf.sprintf "decompose %s to {%s}" (Gate.name u)
                     (String.concat ", " platform.Platform.primitives))
                (Printf.sprintf "%s is not in %s's primitive set" (Gate.name u)
                   platform.Platform.name)
              :: !diags
      | Gate.Prep _ | Gate.Measure _ | Gate.Barrier _ -> ()
  in
  (on_instr, fun () -> List.rev !diags)

let check_mapped_instrs ?allow_swap platform name instrs =
  let on_instr, finish = stream_checker ?allow_swap platform name in
  List.iteri on_instr instrs;
  finish ()

let check_mapped ?allow_swap platform circuit =
  check_mapped_instrs ?allow_swap platform (Circuit.name circuit)
    (Circuit.instructions circuit)
