(** Pass-verifier: re-check the program after every compiler pass and blame
    the pass that introduced a violation.

    Drives {!Qca_compiler.Compiler.compile}'s [?observer] hook: after each
    pass the matching check suite runs on the pass's artifact
    ({!Circuit_checks.check_invariants} for circuit stages — plus
    {!Platform_checks.check_mapped} from ["map/route"] onwards — a linear
    qubit-exclusivity walk ([S01]) for the schedule, and
    {!Eqasm_checks.check} for the eQASM program). A check code is
    {e introduced} by the first pass whose artifact exhibits it. *)

type pass_report = {
  pass_name : string;
  diagnostics : Diagnostic.t list;
  introduced : string list;
      (** Check codes seen at this pass but at no earlier pass. *)
}

type report = {
  passes : pass_report list;  (** In pipeline order. *)
  final : Diagnostic.t list;
      (** Union of all diagnostics, deduplicated by (code, site, message). *)
}

val check_stage :
  mapped:bool ->
  allow_swap:bool ->
  Qca_compiler.Platform.t ->
  Qca_compiler.Compiler.pass_artifact ->
  Diagnostic.t list
(** The suite applied to one artifact. [mapped] enables the platform
    conformance checks (physical circuit stages only); [allow_swap] exempts
    routing-inserted swaps from P02. *)

val of_stages : (string * Diagnostic.t list) list -> report
(** Fold per-pass diagnostics (in pipeline order) into a report, computing
    [introduced] sets and the deduplicated final list. *)

val compile :
  ?strategy:Qca_compiler.Mapping.strategy ->
  ?placement:Qca_compiler.Mapping.placement ->
  ?schedule_policy:Qca_compiler.Schedule.policy ->
  ?optimizer:Qca_compiler.Optimize.level ->
  Qca_compiler.Platform.t ->
  Qca_compiler.Compiler.mode ->
  Qca_circuit.Circuit.t ->
  Qca_compiler.Compiler.output * report
(** Compile with the verifier observing every pass (including the [Full]
    optimizer's individual ["pre-opt/<pass>"]/["optimize/<pass>"] rewrite
    stages, so a single unsound rewrite is blamed by name). Never raises on
    diagnostics — inspect the report. *)

val source_check :
  ?platform:Qca_compiler.Platform.t ->
  Qca_circuit.Cqasm.program ->
  Diagnostic.t list
(** Pre-compilation source suite ({!Circuit_checks.check_program}), with the
    operand range taken from [platform] when given. *)

val blamed_pass : report -> string -> string option
(** [blamed_pass report code] names the pass that introduced [code]. *)

val render : report -> string
(** One block per pass with its verdict, then the deduplicated summary. *)
