type severity = Error | Warning | Hint

type t = {
  severity : severity;
  code : string;
  check : string;
  site : string;
  message : string;
  fixit : string option;
}

let make ?fixit severity ~code ~check ~site message =
  { severity; code; check; site; message; fixit }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 2 | Warning -> 1 | Hint -> 0

let counts diags =
  List.fold_left
    (fun (e, w, h) d ->
      match d.severity with
      | Error -> (e + 1, w, h)
      | Warning -> (e, w + 1, h)
      | Hint -> (e, w, h + 1))
    (0, 0, 0) diags

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s -> if severity_rank d.severity > severity_rank s then Some d.severity else acc)
    None diags

(* Hints inform but never gate: the ladder is clean(0) / warnings(1) /
   errors(2), matching `qxc check`'s documented exit codes. *)
let exit_code diags =
  match max_severity diags with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Hint | None -> 0

let to_string d =
  Printf.sprintf "%s[%s %s] %s: %s%s" (severity_label d.severity) d.code d.check
    d.site d.message
    (match d.fixit with None -> "" | Some f -> Printf.sprintf " (fix: %s)" f)

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary diags =
  match counts diags with
  | 0, 0, 0 -> "clean"
  | e, w, h ->
      Printf.sprintf "%s, %s, %s" (plural e "error") (plural w "warning")
        (plural h "hint")

let render diags =
  String.concat "" (List.map (fun d -> to_string d ^ "\n") diags) ^ summary diags ^ "\n"

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json d =
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"check\":\"%s\",\"site\":\"%s\",\"message\":\"%s\"%s}"
    (severity_label d.severity) (json_escape d.code) (json_escape d.check)
    (json_escape d.site) (json_escape d.message)
    (match d.fixit with
    | None -> ""
    | Some f -> Printf.sprintf ",\"fixit\":\"%s\"" (json_escape f))

let json_of_list diags =
  "[" ^ String.concat "," (List.map to_json diags) ^ "]"
