(** Diagnostic records for the static checker ({!Qca_analysis}).

    Every check in the suite reports findings as values of {!t}: a severity,
    a stable check code (listed in [docs/analysis.md]), a site string using
    the same convention as {!Qca_util.Error.t} ([site]), a human-readable
    message and an optional mechanical fix-it. Text and JSON renderers keep
    the CLI ([qxc check], [--lint], [--lint-json]) and tooling in sync. *)

type severity = Error | Warning | Hint

type t = {
  severity : severity;
  code : string;  (** Stable check code, e.g. ["C03"]. *)
  check : string;  (** Kebab-case check name, e.g. ["use-after-measure"]. *)
  site : string;
      (** Where the finding is anchored, reusing the {!Qca_util.Error.t}
          [site] convention, e.g. ["circuit[4]"] (instruction index) or
          ["eqasm[7]"] (instruction index in the eQASM stream). *)
  message : string;
  fixit : string option;  (** Suggested fix, when one is mechanical. *)
}

val make :
  ?fixit:string -> severity -> code:string -> check:string -> site:string -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["hint"]. *)

val counts : t list -> int * int * int
(** [(errors, warnings, hints)]. *)

val max_severity : t list -> severity option

val exit_code : t list -> int
(** CLI contract: [0] when clean (hints do not gate), [1] when the worst
    finding is a warning, [2] when any error is present. *)

val to_string : t -> string
(** One line: [severity[CODE check-name] site: message (fix: ...)]. *)

val summary : t list -> string
(** E.g. ["2 errors, 1 warning, 0 hints"] (or ["clean"]). *)

val render : t list -> string
(** One {!to_string} line per diagnostic, then the {!summary} line. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (no quotes added). *)

val to_json : t -> string
(** One diagnostic as a JSON object. *)

val json_of_list : t list -> string
(** JSON array of {!to_json} objects. *)
