(** Circuit-level static checks (codes C01–C07, P03).

    These run on the {!Qca_circuit.Circuit} IR — a freshly parsed cQASM
    program, or any circuit-level artifact of the compiler pipeline. The
    full catalogue lives in [docs/analysis.md].

    - [C01] qubit-out-of-range (error): operand index beyond the platform's
      qubit range.
    - [C02] bit-out-of-range (error): conditional gate reads a classical
      bit outside the range.
    - [C03] use-after-measure (warning): a unitary acts on a measured qubit
      with no [prep_z] reset in between (conditional gates are exempt —
      classical feedback on the measured qubit is the legitimate pattern).
    - [C04] measure-never-read (hint): a measurement result is overwritten
      by a re-measurement before any conditional gate reads it.
    - [C05] unused-qubit (hint): declared qubits no instruction touches.
    - [C06] redundant-pair (hint): adjacent self-inverse pair (H;H,
      CNOT;CNOT, ...) with no intervening operation on the operands.
    - [C07] non-finite-angle (error): NaN or infinite rotation angle.
    - [P03] duplicate-kernel (warning): two subcircuits share a name. *)

val check_circuit :
  ?platform_qubits:int -> Qca_circuit.Circuit.t -> Diagnostic.t list
(** Run the full circuit suite. [platform_qubits] is the operand range
    bound (default: the circuit's own qubit count); sites are
    ["<name>[<instruction index>]"]. *)

val check_invariants :
  ?platform_qubits:int -> Qca_circuit.Circuit.t -> Diagnostic.t list
(** Correctness subset used by the pass-verifier after each compiler pass:
    C01, C02, C03 and C07. The declaration-level checks (C04–C06) are
    source-level hints and would only add noise mid-pipeline. *)

val check_invariants_instrs :
  ?on_instr:(int -> Qca_circuit.Gate.t -> unit) ->
  bound:int ->
  qubit_count:int ->
  string ->
  Qca_circuit.Gate.t list ->
  Diagnostic.t list
(** As {!check_invariants} on an already-materialised instruction list
    (sites use the given name, operand range bound is [bound]). [on_instr]
    is called once per instruction during the same traversal, so another
    suite (e.g. {!Platform_checks.stream_checker}) can ride along without a
    second walk over the artifact. *)

val check_program :
  ?platform_qubits:int -> Qca_circuit.Cqasm.program -> Diagnostic.t list
(** {!check_circuit} over the flattened program (instruction indices are
    global, post-flattening) plus the P03 duplicate-kernel check. *)
