module Gate = Qca_circuit.Gate
module Circuit = Qca_circuit.Circuit
module Cqasm = Qca_circuit.Cqasm
module Platform = Qca_compiler.Platform
module Compiler = Qca_compiler.Compiler
module Schedule = Qca_compiler.Schedule

type pass_report = {
  pass_name : string;
  diagnostics : Diagnostic.t list;
  introduced : string list;
}

type report = { passes : pass_report list; final : Diagnostic.t list }

(* Linear qubit-exclusivity walk over the entries (sorted by start cycle).
   [Schedule.validate] is exact but quadratic in the entry count — far too
   slow to run after every compile of a large program; this walk never
   false-positives on a valid schedule and stays O(entries · operands). *)
let check_schedule (schedule : Schedule.t) =
  let busy = Array.make (max schedule.Schedule.qubit_count 1) 0 in
  let diags = ref [] in
  let completion = ref 0 in
  (* Hoisted so the per-entry path allocates nothing when the schedule is
     clean. *)
  let touch i (e : Schedule.entry) stop q =
    if q >= 0 && q < Array.length busy then begin
      if e.Schedule.start_cycle < busy.(q) then
        diags :=
          Diagnostic.make Diagnostic.Error ~code:"S01" ~check:"schedule-overlap"
            ~site:(Printf.sprintf "schedule[%d]" i)
            ~fixit:"re-run the scheduler; report a compiler bug if it persists"
            (Printf.sprintf
               "%s starts at cycle %d on qubit %d which is busy until cycle %d"
               (Gate.to_string e.Schedule.instr) e.Schedule.start_cycle q busy.(q))
          :: !diags;
      busy.(q) <- max busy.(q) stop
    end
  in
  List.iteri
    (fun i (e : Schedule.entry) ->
      let stop = e.Schedule.start_cycle + e.Schedule.duration in
      completion := max !completion stop;
      (* Iterate operands in place — [Gate.qubits] copies the array. *)
      match e.Schedule.instr with
      | Gate.Unitary (_, ops) | Gate.Conditional (_, _, ops) ->
          for k = 0 to Array.length ops - 1 do
            touch i e stop ops.(k)
          done
      | Gate.Prep q | Gate.Measure q -> touch i e stop q
      | Gate.Barrier qs ->
          for k = 0 to Array.length qs - 1 do
            touch i e stop qs.(k)
          done)
    schedule.Schedule.entries;
  if !completion > schedule.Schedule.makespan then
    diags :=
      Diagnostic.make Diagnostic.Error ~code:"S01" ~check:"schedule-overlap"
        ~site:"schedule"
        ~fixit:"re-run the scheduler; report a compiler bug if it persists"
        (Printf.sprintf
           "declared makespan is %d cycles but the last entry completes at cycle %d"
           schedule.Schedule.makespan !completion)
      :: !diags;
  List.rev !diags

let check_stage ~mapped ~allow_swap platform artifact =
  match artifact with
  | Compiler.Circuit_stage circuit ->
      (* Materialise the instruction list once and walk it once: the
         platform suite streams along the invariant traversal. *)
      let name = Circuit.name circuit in
      let instrs = Circuit.instructions circuit in
      let bound = platform.Platform.qubit_count in
      let qubit_count = Circuit.qubit_count circuit in
      if mapped then begin
        let on_instr, finish =
          Platform_checks.stream_checker ~allow_swap platform name
        in
        let invariants =
          Circuit_checks.check_invariants_instrs ~on_instr ~bound ~qubit_count
            name instrs
        in
        invariants @ finish ()
      end
      else Circuit_checks.check_invariants_instrs ~bound ~qubit_count name instrs
  | Compiler.Schedule_stage schedule -> check_schedule schedule
  | Compiler.Eqasm_stage program -> Eqasm_checks.check platform program

let codes diags =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) diags)

let of_stages stages =
  let seen = Hashtbl.create 16 in
  let passes =
    List.map
      (fun (pass_name, diagnostics) ->
        let introduced =
          List.filter (fun c -> not (Hashtbl.mem seen c)) (codes diagnostics)
        in
        List.iter (fun c -> Hashtbl.replace seen c ()) introduced;
        { pass_name; diagnostics; introduced })
      stages
  in
  let final =
    let dedup = Hashtbl.create 16 in
    List.concat_map (fun p -> p.diagnostics) passes
    |> List.filter (fun d ->
           let key = (d.Diagnostic.code, d.Diagnostic.site, d.Diagnostic.message) in
           if Hashtbl.mem dedup key then false
           else begin
             Hashtbl.replace dedup key ();
             true
           end)
  in
  { passes; final }

let compile ?strategy ?placement ?schedule_policy ?optimizer platform mode
    circuit =
  let stages = ref [] in
  let mapped = ref false in
  let observer pass_name artifact =
    if pass_name = "map/route" then mapped := true;
    let diagnostics =
      check_stage ~mapped:!mapped
        ~allow_swap:(pass_name = "map/route")
        platform artifact
    in
    stages := (pass_name, diagnostics) :: !stages
  in
  let output =
    Compiler.compile ?strategy ?placement ?schedule_policy ?optimizer ~observer
      platform mode circuit
  in
  (output, of_stages (List.rev !stages))

let source_check ?platform program =
  let platform_qubits =
    Option.map (fun p -> p.Platform.qubit_count) platform
  in
  Circuit_checks.check_program ?platform_qubits program

let blamed_pass report code =
  List.find_map
    (fun p -> if List.mem code p.introduced then Some p.pass_name else None)
    report.passes

let render report =
  let buffer = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buffer
        (Printf.sprintf "pass %-12s %s%s\n" p.pass_name
           (Diagnostic.summary p.diagnostics)
           (if p.introduced = [] then ""
            else Printf.sprintf " (introduced: %s)" (String.concat ", " p.introduced)));
      List.iter
        (fun d -> Buffer.add_string buffer ("  " ^ Diagnostic.to_string d ^ "\n"))
        p.diagnostics)
    report.passes;
  Buffer.add_string buffer
    (Printf.sprintf "verifier: %s\n" (Diagnostic.summary report.final));
  Buffer.contents buffer
