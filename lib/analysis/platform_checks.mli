(** Platform-conformance checks on mapped circuits (codes P01–P02).

    These only make sense after place & route: every two-qubit gate must sit
    on a coupled physical pair and every gate must be in the platform's
    primitive set. The pass-verifier ({!Verify}) applies them from the
    ["map/route"] pass onwards.

    - [P01] non-adjacent-two-qubit (error): two-qubit gate on a physical
      pair the topology does not couple.
    - [P02] non-primitive-gate (error): gate outside the platform's
      primitive set ([prep_z]/[measure]/[barrier] are always allowed). *)

val check_mapped :
  ?allow_swap:bool ->
  Qca_compiler.Platform.t ->
  Qca_circuit.Circuit.t ->
  Diagnostic.t list
(** [allow_swap] (default [false]) exempts [swap] from P02 — the routing
    pass legitimately emits swaps that a later pass expands to primitives. *)

val check_mapped_instrs :
  ?allow_swap:bool ->
  Qca_compiler.Platform.t ->
  string ->
  Qca_circuit.Gate.t list ->
  Diagnostic.t list
(** As {!check_mapped} on an already-materialised instruction list (sites
    use [name]). The pass-verifier walks each artifact with several suites;
    this entry point lets it materialise the list once. *)

val stream_checker :
  ?allow_swap:bool ->
  Qca_compiler.Platform.t ->
  string ->
  (int -> Qca_circuit.Gate.t -> unit) * (unit -> Diagnostic.t list)
(** Streaming form: a per-instruction callback plus a finisher returning the
    accumulated diagnostics in program order. Lets the pass-verifier ride
    along another suite's traversal instead of walking the artifact twice. *)
