module Platform = Qca_compiler.Platform
module Eqasm = Qca_compiler.Eqasm

let site i = Printf.sprintf "eqasm[%d]" i

(* The lowering writes "measz"/"prepz" mnemonics while the platform duration
   table is keyed on the circuit-level names. *)
let duration_key = function
  | "measz" -> "measure"
  | "prepz" -> "prep_z"
  | m -> m

let duration_cycles (platform : Platform.t) mnemonic =
  let ns =
    match List.assoc_opt (duration_key mnemonic) platform.Platform.durations_ns with
    | Some d -> d
    | None -> (
        match List.assoc_opt "*" platform.Platform.durations_ns with
        | Some d -> d
        | None -> platform.Platform.cycle_ns)
  in
  max 1 ((ns + platform.Platform.cycle_ns - 1) / platform.Platform.cycle_ns)

(* Mask registers are capped at 32 by the lowering; direct-indexed arrays
   keep the per-operation lookup at an array load. The qubit lists are
   flattened to arrays at SMIS/SMIT time (rare) so the per-operation loop
   needs no closure. Registers outside 0..31 — only possible in hand-built
   programs — spill to a hashtable. *)
let register_limit = 32

let check platform (program : Eqasm.program) =
  let s_regs = Array.make register_limit [||] in
  let s_set = Array.make register_limit false in
  let t_regs = Array.make register_limit [||] in
  let t_set = Array.make register_limit false in
  let spill : (bool * int, int array) Hashtbl.t = Hashtbl.create 4 in
  let flatten_pairs pairs =
    let arr = Array.make (2 * List.length pairs) 0 in
    List.iteri
      (fun k (a, b) ->
        arr.(2 * k) <- a;
        arr.((2 * k) + 1) <- b)
      pairs;
    arr
  in
  let lookup ~two_qubit r =
    if r >= 0 && r < register_limit then
      if (if two_qubit then t_set.(r) else s_set.(r)) then
        if two_qubit then t_regs.(r) else s_regs.(r)
      else raise Not_found
    else Hashtbl.find spill (two_qubit, r)
  in
  let busy_until = Array.make (max program.Eqasm.qubit_count 1) 0 in
  let clock = ref 0 in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* The duration table is an assoc list keyed by strings, and the lowering
     reuses [Gate.name]'s constant strings as mnemonics — so a tiny
     physical-equality cache resolves a mnemonic without hashing it. The
     cache is capped in case a hand-built program uses fresh strings. *)
  let cycles_cache : (string * int) list ref = ref [] in
  let cycles_cache_size = ref 0 in
  let rec cached mnemonic = function
    | [] -> -1
    | (k, c) :: tl -> if k == mnemonic then c else cached mnemonic tl
  in
  let cycles_of mnemonic =
    match cached mnemonic !cycles_cache with
    | -1 ->
        let c = duration_cycles platform mnemonic in
        if !cycles_cache_size < 64 then begin
          cycles_cache := (mnemonic, c) :: !cycles_cache;
          incr cycles_cache_size
        end;
        c
    | c -> c
  in
  (* Hoisted so the per-operation loop allocates nothing on the clean path. *)
  let mask_unset i (op : Eqasm.quantum_op) =
    add
      (Diagnostic.make Diagnostic.Error ~code:"E03" ~check:"mask-unset"
         ~site:(site i)
         ~fixit:
           (Printf.sprintf "emit SM%s %c%d, {...} before this bundle"
              (if op.Eqasm.two_qubit then "IT" else "IS")
              (if op.Eqasm.two_qubit then 't' else 's')
              op.Eqasm.mask)
         (Printf.sprintf "%s reads mask register %c%d before it is set"
            op.Eqasm.mnemonic
            (if op.Eqasm.two_qubit then 't' else 's')
            op.Eqasm.mask))
  in
  let touch i mnemonic start cycles q =
    if q >= 0 && q < program.Eqasm.qubit_count then begin
      if start < busy_until.(q) then
        add
          (Diagnostic.make Diagnostic.Error ~code:"E01" ~check:"overlapping-window"
             ~site:(site i)
             ~fixit:
               (Printf.sprintf
                  "delay the bundle by %d cycle(s) (QWAIT or larger pre-interval)"
                  (busy_until.(q) - start))
             (Printf.sprintf
                "%s starts on qubit %d at cycle %d while it is busy until cycle %d"
                mnemonic q start busy_until.(q)));
      busy_until.(q) <- max busy_until.(q) (start + cycles)
    end
  in
  (* Explicit recursion instead of [List.iter (fun op -> ...)] — the latter
     would allocate a closure per bundle. *)
  let rec do_ops i start = function
    | [] -> ()
    | (op : Eqasm.quantum_op) :: tl ->
        (match lookup ~two_qubit:op.Eqasm.two_qubit op.Eqasm.mask with
        | qs ->
            let cycles = cycles_of op.Eqasm.mnemonic in
            for k = 0 to Array.length qs - 1 do
              touch i op.Eqasm.mnemonic start cycles qs.(k)
            done
        | exception Not_found -> mask_unset i op);
        do_ops i start tl
  in
  List.iteri
    (fun i instr ->
      match instr with
      | Eqasm.Smis (r, qubits) ->
          if r >= 0 && r < register_limit then begin
            s_regs.(r) <- Array.of_list qubits;
            s_set.(r) <- true
          end
          else Hashtbl.replace spill (false, r) (Array.of_list qubits)
      | Eqasm.Smit (r, pairs) ->
          if r >= 0 && r < register_limit then begin
            t_regs.(r) <- flatten_pairs pairs;
            t_set.(r) <- true
          end
          else Hashtbl.replace spill (true, r) (flatten_pairs pairs)
      | Eqasm.Qwait n -> clock := !clock + n
      | Eqasm.Bundle (pre_interval, ops) ->
          clock := !clock + pre_interval;
          do_ops i !clock ops)
    program.Eqasm.instructions;
  let completion = Array.fold_left max 0 busy_until in
  if program.Eqasm.makespan_cycles < completion then
    add
      (Diagnostic.make Diagnostic.Error ~code:"E02" ~check:"qwait-underflow"
         ~site:"eqasm"
         ~fixit:
           (Printf.sprintf "pad the tail QWAIT so the makespan reaches %d cycles"
              completion)
         (Printf.sprintf
            "declared makespan is %d cycles but the last operation completes at cycle %d"
            program.Eqasm.makespan_cycles completion));
  List.rev !diags
