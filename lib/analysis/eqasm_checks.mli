(** Timing and mask-discipline checks on lowered eQASM (codes E01–E03).

    The checker replays the program on the micro-architecture's timing grid:
    SMIS/SMIT define mask registers, QWAIT and bundle pre-intervals advance
    the clock, and each quantum op occupies its mask's qubits for the
    platform duration of its mnemonic.

    - [E01] overlapping-window (error): a bundle issues an op on a qubit
      that is still busy executing an earlier op.
    - [E02] qwait-underflow (error): the declared makespan (what the tail
      QWAIT pads to) is shorter than the last op's completion, so the
      program hands back control mid-gate.
    - [E03] mask-unset (error): a bundle op reads an s/t mask register
      before any SMIS/SMIT defined it. *)

val check : Qca_compiler.Platform.t -> Qca_compiler.Eqasm.program -> Diagnostic.t list
(** Sites are ["eqasm[<instruction index>]"] (or ["eqasm"] for the
    program-level E02). *)
